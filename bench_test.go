// Package jstar_test holds the benchmark harness that regenerates the
// paper's evaluation (§6) as Go benchmarks: one benchmark (family) per
// figure and table, plus ablations for the design choices called out in
// DESIGN.md. cmd/jstar-bench prints the same experiments as formatted
// paper-style tables; these benches integrate with `go test -bench`.
//
// Sizes are scaled down from the paper's (192MB CSV, 1000x1000 matrices,
// 1M-vertex graphs, 100M doubles) so a full -bench=. run stays in minutes;
// the cmd/jstar-bench flags raise them for shape studies.
package jstar_test

import (
	"context"
	"fmt"
	jstar "github.com/jstar-lang/jstar"
	"sync/atomic"
	"testing"

	"github.com/jstar-lang/jstar/internal/apps/matmult"
	"github.com/jstar-lang/jstar/internal/apps/median"
	"github.com/jstar-lang/jstar/internal/apps/pvwatts"
	"github.com/jstar-lang/jstar/internal/apps/shortestpath"
	"github.com/jstar-lang/jstar/internal/delta"
	"github.com/jstar-lang/jstar/internal/disruptor"
	"github.com/jstar-lang/jstar/internal/forkjoin"
	"github.com/jstar-lang/jstar/internal/order"
	"github.com/jstar-lang/jstar/internal/tuple"
)

// Scaled-down workload sizes shared by all benches.
const (
	benchPvYears = 2
	benchMatN    = 64
	benchSPV     = 4000
	benchMedianN = 200000
)

var benchCSV = pvwatts.GenerateCSV(benchPvYears, false, 42)
var benchCSVSorted = pvwatts.GenerateCSV(benchPvYears, true, 42)

// --- Fig 6: sequential JStar vs hand-coded baselines -------------------------

func BenchmarkFig06_PvWattsJStarSeq(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := pvwatts.RunJStar(benchCSV, pvwatts.RunOpts{
			Sequential: true, NoDelta: true, Gamma: pvwatts.GammaArrayOfHash}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig06_PvWattsBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := pvwatts.RunBaseline(benchCSV); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig06_MatMultJStarSeq(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := matmult.RunJStar(matmult.RunOpts{
			N: benchMatN, Sequential: true, Seed: 42}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig06_MatMultJStarBoxed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := matmult.RunJStar(matmult.RunOpts{
			N: benchMatN, Sequential: true, Boxed: true, Seed: 42}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig06_MatMultNaive(b *testing.B) {
	a, bb := matmult.Inputs(benchMatN, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matmult.Naive(a, bb, benchMatN)
	}
}

func BenchmarkFig06_MatMultTransposed(b *testing.B) {
	a, bb := matmult.Inputs(benchMatN, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matmult.Transposed(a, bb, benchMatN)
	}
}

func BenchmarkFig06_DijkstraJStarSeq(b *testing.B) {
	gen := shortestpath.GenOpts{Vertices: benchSPV, Extra: 2 * benchSPV, Tasks: 24, Seed: 42}
	for i := 0; i < b.N; i++ {
		if _, err := shortestpath.RunJStar(shortestpath.RunOpts{
			Gen: gen, Sequential: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig06_DijkstraBaseline(b *testing.B) {
	gen := shortestpath.GenOpts{Vertices: benchSPV, Extra: 2 * benchSPV, Tasks: 24, Seed: 42}
	for i := 0; i < b.N; i++ {
		shortestpath.Baseline(shortestpath.Generate(gen), gen.Vertices)
	}
}

func BenchmarkFig06_MedianJStarSeq(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := median.RunJStar(median.RunOpts{
			N: benchMedianN, Regions: 24, Sequential: true, Seed: 42}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig06_MedianSortBaseline(b *testing.B) {
	vals := median.Values(benchMedianN, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		median.SortBaseline(vals)
	}
}

func BenchmarkFig06_MedianQuickselect(b *testing.B) {
	vals := median.Values(benchMedianN, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		median.Quickselect(vals, 42)
	}
}

// --- §6.2: the -noDelta optimisation -----------------------------------------

func BenchmarkSec62_NoDeltaOff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := pvwatts.RunJStar(benchCSV, pvwatts.RunOpts{
			Sequential: true, NoDelta: false}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSec62_NoDeltaOn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := pvwatts.RunJStar(benchCSV, pvwatts.RunOpts{
			Sequential: true, NoDelta: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig 8: PvWatts thread sweep per Gamma structure --------------------------

func BenchmarkFig08_Gamma(b *testing.B) {
	for _, g := range []pvwatts.GammaKind{
		pvwatts.GammaDefault, pvwatts.GammaHash, pvwatts.GammaArrayOfHash,
	} {
		for _, threads := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/threads=%d", g.Name(), threads), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := pvwatts.RunJStar(benchCSV, pvwatts.RunOpts{
						Threads: threads, NoDelta: true, Gamma: g}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- Table 1: Disruptor tuning -------------------------------------------------

func BenchmarkTable1_Disruptor(b *testing.B) {
	waits := map[string]func() disruptor.WaitStrategy{
		"blocking": func() disruptor.WaitStrategy { return &disruptor.BlockingWait{} },
		"yielding": func() disruptor.WaitStrategy { return disruptor.YieldingWait{} },
		"busyspin": func() disruptor.WaitStrategy { return disruptor.BusySpinWait{} },
	}
	for _, ring := range []int{256, 1024, 4096} {
		for wname, mk := range waits {
			for _, batch := range []int{1, 256} {
				b.Run(fmt.Sprintf("ring=%d/wait=%s/batch=%d", ring, wname, batch),
					func(b *testing.B) {
						for i := 0; i < b.N; i++ {
							opts := disruptor.Options{RingSize: ring, ClaimBatch: batch,
								Consumers: 12, Wait: mk()}
							if _, err := pvwatts.RunDisruptor(benchCSV, opts); err != nil {
								b.Fatal(err)
							}
						}
					})
			}
		}
	}
}

// --- Fig 10: Disruptor sorted vs unsorted --------------------------------------

func BenchmarkFig10_DisruptorUnsorted(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := pvwatts.RunDisruptor(benchCSV, disruptor.Defaults()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10_DisruptorSorted(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := pvwatts.RunDisruptor(benchCSVSorted, disruptor.Defaults()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig 11/12/13: thread sweeps ------------------------------------------------

func BenchmarkFig11_MatMult(b *testing.B) {
	for _, threads := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := matmult.RunJStar(matmult.RunOpts{
					N: benchMatN, Threads: threads, Seed: 42}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig12_Dijkstra(b *testing.B) {
	gen := shortestpath.GenOpts{Vertices: benchSPV, Extra: 2 * benchSPV, Tasks: 24, Seed: 42}
	for _, threads := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := shortestpath.RunJStar(shortestpath.RunOpts{
					Gen: gen, Threads: threads}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig13_Median(b *testing.B) {
	for _, threads := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := median.RunJStar(median.RunOpts{
					N: benchMedianN, Regions: 24, Threads: threads, Seed: 42}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Dispatch overhead ---------------------------------------------------------

// BenchmarkDispatch_PerFiring isolates the engine's per-firing dispatch cost:
// one step whose batch holds dispatchBatch trivial-bodied firings, so the
// measured time is dominated by rule lookup, stats accounting, Ctx setup and
// scheduling hand-off rather than rule work. The reported ns/firing metric is
// the number the batched FireBatch path exists to shrink.
func BenchmarkDispatch_PerFiring(b *testing.B) {
	const dispatchBatch = 4096
	for _, strat := range []jstar.Strategy{
		jstar.StrategySequential, jstar.StrategyForkJoin, jstar.StrategyPipelined,
	} {
		b.Run(strat.String(), func(b *testing.B) {
			var sink2 atomic.Int64 // rule bodies fire concurrently
			for i := 0; i < b.N; i++ {
				p := jstar.NewProgram()
				src := p.Table("Src", jstar.Cols(jstar.IntCol("n")),
					jstar.OrderBy(jstar.Lit("Src")))
				work := p.Table("Work", jstar.Cols(jstar.IntCol("i")),
					jstar.OrderBy(jstar.Lit("Work")))
				p.Order("Src", "Work")
				p.Rule("fanout", src, func(c *jstar.Ctx, t *jstar.Tuple) {
					for j := int64(0); j < t.Int("n"); j++ {
						c.PutNew(work, jstar.Int(j))
					}
				})
				p.Rule("noop", work, func(c *jstar.Ctx, t *jstar.Tuple) {
					sink2.Add(t.Int("i"))
				})
				p.Put(jstar.New(src, jstar.Int(dispatchBatch)))
				run, err := p.Execute(jstar.Options{Strategy: strat, Threads: 4, Quiet: true})
				if err != nil {
					b.Fatal(err)
				}
				if got := run.Stats().TotalFired; got != dispatchBatch+1 {
					b.Fatalf("TotalFired = %d, want %d", got, dispatchBatch+1)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/dispatchBatch, "ns/firing")
		})
	}
}

// --- Step boundary ---------------------------------------------------------------

// BenchmarkStepBoundary isolates the step boundary itself: a fan-out step
// whose rule firings spread across the worker slots and each put one tuple,
// so the measured run is dominated by the boundary pipeline — BeginStep's
// sort + Gamma insert, the per-slot seal sorts, the k-way merge and the
// Delta bulk load — rather than rule work. The sweep crosses slot counts
// (threads) with batch sizes; boundary% reports the serial-boundary
// fraction (RunStats.SerialBoundaryFraction) the CI smoke gate watches.
func BenchmarkStepBoundary(b *testing.B) {
	for _, threads := range []int{1, 2, 4, 8} {
		for _, batch := range []int{1 << 10, 1 << 13} {
			strat := jstar.StrategyForkJoin
			if threads == 1 {
				strat = jstar.StrategySequential
			}
			b.Run(fmt.Sprintf("threads=%d/batch=%d", threads, batch), func(b *testing.B) {
				var fracSum float64
				for i := 0; i < b.N; i++ {
					p := jstar.NewProgram()
					src := p.Table("Src", jstar.Cols(jstar.IntCol("n")),
						jstar.OrderBy(jstar.Lit("Src")))
					work := p.Table("Work", jstar.Cols(jstar.IntCol("i")),
						jstar.OrderBy(jstar.Lit("Work")))
					out := p.Table("Out", jstar.Cols(jstar.IntCol("i")),
						jstar.OrderBy(jstar.Lit("Out")))
					p.Order("Src", "Work", "Out")
					p.Rule("fanout", src, func(c *jstar.Ctx, t *jstar.Tuple) {
						for j := int64(0); j < t.Int("n"); j++ {
							c.PutNew(work, jstar.Int(j))
						}
					})
					p.Rule("emit", work, func(c *jstar.Ctx, t *jstar.Tuple) {
						c.PutNew(out, t.Get("i"))
					})
					p.Put(jstar.New(src, jstar.Int(int64(batch))))
					run, err := p.Execute(jstar.Options{
						Strategy: strat, Threads: threads, Quiet: true, PhaseStats: true})
					if err != nil {
						b.Fatal(err)
					}
					st := run.Stats()
					if st.TotalLive != int64(2*batch+1) {
						b.Fatalf("TotalLive = %d, want %d", st.TotalLive, 2*batch+1)
					}
					fracSum += st.SerialBoundaryFraction()
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(2*batch), "ns/tuple")
				b.ReportMetric(100*fracSum/float64(b.N), "boundary%")
			})
		}
	}
}

// --- Session ingestion ----------------------------------------------------------

// BenchmarkSessionIngest measures the streaming event path end to end:
// the benchmark goroutine is a non-coordinator producer calling
// Session.Put — each event passes through the multi-producer ingress
// ring, is absorbed at a step boundary and fires one rule — while the
// session's coordinator drains concurrently. The reported events/sec is
// the ingestion throughput number the CI BENCH_*.json artifact tracks
// (cmd/jstar-bench -smoke measures the same workload as session-ingest);
// that Put never waits for quiescence is what keeps it flat as rule work
// grows.
func BenchmarkSessionIngest(b *testing.B) {
	for _, strat := range []jstar.Strategy{
		jstar.StrategySequential, jstar.StrategyForkJoin, jstar.StrategyPipelined,
	} {
		b.Run(strat.String(), func(b *testing.B) {
			p := jstar.NewProgram()
			ev := p.Table("Event", jstar.Cols(jstar.IntCol("n")),
				jstar.OrderBy(jstar.Lit("Event")))
			out := p.Table("Out", jstar.Cols(jstar.IntCol("n"), jstar.IntCol("v")),
				jstar.OrderBy(jstar.Lit("Out")))
			p.Order("Event", "Out")
			p.Rule("double", ev, func(c *jstar.Ctx, t *jstar.Tuple) {
				c.PutNew(out, t.Get("n"), jstar.Int(2*t.Int("n")))
			})
			sess, err := p.Start(context.Background(), jstar.Options{
				Strategy: strat, Threads: 4, Quiet: true})
			if err != nil {
				b.Fatal(err)
			}
			defer sess.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sess.Put(jstar.New(ev, jstar.Int(int64(i)))); err != nil {
					b.Fatal(err)
				}
			}
			if err := sess.Quiesce(context.Background()); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/sec")
			if got := int64(len(sess.Snapshot(out))); got != int64(b.N) {
				b.Fatalf("Out has %d tuples, want %d", got, b.N)
			}
		})
	}
}

// --- Ablations (DESIGN.md) ------------------------------------------------------

// BenchmarkAblation_DeltaBackend compares the sequential (red-black tree)
// and concurrent (skip list) Delta tree backends on the same insert/drain
// workload — the source of Fig 8's relative-vs-absolute speedup gap.
func BenchmarkAblation_DeltaBackend(b *testing.B) {
	s := tuple.MustSchema("E",
		[]tuple.Column{{Name: "t", Kind: tuple.KindInt}, {Name: "v", Kind: tuple.KindInt}},
		[]tuple.OrderEntry{tuple.Lit("Int"), tuple.Seq("t")})
	mk := map[string]func() *delta.Tree{
		"sequential": func() *delta.Tree { return delta.NewSequential(order.NewPartialOrder()) },
		"concurrent": func() *delta.Tree { return delta.NewConcurrent(order.NewPartialOrder()) },
	}
	for name, newTree := range mk {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tr := newTree()
				for j := int64(0); j < 5000; j++ {
					tr.Put(tuple.New(s, tuple.Int(j%512), tuple.Int(j)))
				}
				for tr.TakeMinBatch() != nil {
				}
			}
		})
	}
}

// BenchmarkAblation_Scheduler compares work-stealing parallel-for against a
// plain serial loop on the rule-firing granularity the engine uses.
func BenchmarkAblation_Scheduler(b *testing.B) {
	work := func(i int) {
		x := i
		for k := 0; k < 200; k++ {
			x = x*1664525 + 1013904223
		}
		sink = x
	}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j := 0; j < 1024; j++ {
				work(j)
			}
		}
	})
	for _, threads := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("pool=%d", threads), func(b *testing.B) {
			p := forkjoin.NewPool(threads)
			defer p.Shutdown()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.For(1024, 8, work)
			}
		})
	}
}

var sink int

// BenchmarkAblation_ParallelReduce measures the §5.2 extension: running
// each SumMonth reducer loop as a parallel tree reduction instead of a
// sequential fold inside one task.
func BenchmarkAblation_ParallelReduce(b *testing.B) {
	for _, on := range []bool{false, true} {
		name := "off"
		if on {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := pvwatts.RunJStar(benchCSV, pvwatts.RunOpts{
					Threads: 4, NoDelta: true, Gamma: pvwatts.GammaArrayOfHash,
					ParallelReduce: on}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_BoxedVsPrimitive isolates the §6.1 boxed-Integer effect
// on the dot-product inner loop.
func BenchmarkAblation_BoxedVsPrimitive(b *testing.B) {
	b.Run("boxed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := matmult.RunJStar(matmult.RunOpts{
				N: 32, Sequential: true, Boxed: true, Seed: 42}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("primitive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := matmult.RunJStar(matmult.RunOpts{
				N: 32, Sequential: true, Seed: 42}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
