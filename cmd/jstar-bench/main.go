// Command jstar-bench regenerates every table and figure of the paper's
// evaluation (§6). Each experiment prints the paper's reference numbers
// next to the measured ones so the *shape* (who wins, by what factor,
// where scaling saturates) can be compared directly; absolute times differ
// because the workloads are scaled and the host differs from the paper's
// Xeons.
//
//	jstar-bench -fig 6          # sequential JStar vs hand-coded (Fig 6)
//	jstar-bench -fig 6.2        # -noDelta effect (§6.2 text)
//	jstar-bench -fig 6.3        # PvWatts phase breakdown + Amdahl bound
//	jstar-bench -fig 8          # PvWatts thread sweep x Gamma structures
//	jstar-bench -table 1        # Disruptor tuning sweep (Table 1)
//	jstar-bench -fig 10         # Disruptor sorted vs unsorted
//	jstar-bench -fig 11|12|13   # MatMult / Dijkstra / Median sweeps
//	jstar-bench -all            # everything
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"github.com/jstar-lang/jstar/internal/apps/drift"
	"github.com/jstar-lang/jstar/internal/apps/matmult"
	"github.com/jstar-lang/jstar/internal/apps/median"
	"github.com/jstar-lang/jstar/internal/apps/pvwatts"
	"github.com/jstar-lang/jstar/internal/apps/shortestpath"
	"github.com/jstar-lang/jstar/internal/core"
	"github.com/jstar-lang/jstar/internal/disruptor"
	"github.com/jstar-lang/jstar/internal/exec"
	"github.com/jstar-lang/jstar/internal/fastcsv"
	"github.com/jstar-lang/jstar/internal/gamma"
	"github.com/jstar-lang/jstar/internal/stats"
	"github.com/jstar-lang/jstar/internal/tuple"
	"github.com/jstar-lang/jstar/internal/wal"
)

type config struct {
	pvYears     int
	matN        int
	spVertices  int
	spExtra     int
	medianN     int
	threadSteps []int
	procsLadder []int // -procs GOMAXPROCS ladder, stamped into every artifact
	repeats     int
	strategy    exec.Strategy // engine for the parallel JStar sweeps
}

func main() {
	fig := flag.String("fig", "", "figure to regenerate: 6, 6.2, 6.3, 8, 10, 11, 12, 13, strategies")
	table := flag.String("table", "", "table to regenerate: 1")
	all := flag.Bool("all", false, "run every experiment")
	years := flag.Int("pv-years", 10, "PvWatts synthetic years (paper: ~1000)")
	matN := flag.Int("mat-n", 192, "matrix dimension (paper: 1000)")
	spV := flag.Int("sp-vertices", 20000, "Dijkstra vertices (paper: 1,000,000)")
	medN := flag.Int("median-n", 1000000, "median array size (paper: 100,000,000)")
	repeats := flag.Int("repeats", 3, "measurement repetitions (min taken)")
	strategyFlag := flag.String("strategy", "auto",
		"execution strategy for parallel sweeps: "+strings.Join(exec.StrategyNames(), "|"))
	maxThreads := flag.Int("max-threads", 2*runtime.NumCPU(), "largest pool size in sweeps")
	smoke := flag.Bool("smoke", false, "quick CI smoke run; with -json it writes the perf-trajectory artifact")
	speedup := flag.Bool("speedup", false,
		"run the multi-core speedup sweep (apps + dispatch/step-boundary microbenches across a GOMAXPROCS sweep); with -json the per-point rows join the artifact")
	procsFlag := flag.String("procs", "1,2,4,8",
		"comma-separated GOMAXPROCS values for the -speedup sweep")
	minDispatchSpeedup := flag.Float64("min-dispatch-speedup", 0,
		"with -speedup: exit 1 if the parallel dispatch microbench at 4 procs (or the largest swept) is below this multiple of the sequential baseline (0 disables; CI's scaling gate)")
	minAffinityRatio := flag.Float64("min-affinity-ratio", 0,
		"with -speedup: exit 1 if the affinity-on dispatch speedup at 4 procs (or the largest swept) is below this multiple of the affinity-off dispatch speedup at the same procs (0 disables; CI's table-affinity gate)")
	jsonPath := flag.String("json", "", "write smoke results as JSON (strategy, GOMAXPROCS, batch-size histogram) to this file")
	savePlan := flag.String("save-plan", "",
		"run the store-plan tuning pass (pvwatts, matmult, shortestpath, median) and write the suggested per-app plans as JSON")
	storePlan := flag.String("store-plan", "",
		"apply a -save-plan JSON file to the tuning pass (the replay half of the two-run tuning loop)")
	adaptive := flag.Bool("adaptive", false,
		"run the adaptive-session drift comparison (frozen plan vs -ReplanEvery live re-planning) and gate on store-plan convergence; with -json the report joins the artifact")
	minAdaptiveSpeedup := flag.Float64("min-adaptive-speedup", 0,
		"with -adaptive: exit 1 if the adaptive session's mean phase-2 window latency is not this many times better than the frozen run's (0 disables; timing gate for dedicated hosts)")
	phases := flag.Bool("phases", false,
		"print the per-phase step breakdown (fire/insert/merge/delta + serial-boundary fraction) for the four apps")
	serveLoad := flag.Bool("serve-load", false,
		"drive a jstar-serve instance with concurrent clients over real sockets; reports ingest and quiesce-visibility latency histograms")
	serveAddr := flag.String("serve-addr", "",
		"base URL of a running jstar-serve for -serve-load (empty: start one in-process on a loopback socket)")
	serveClients := flag.Int("serve-clients", 4, "concurrent -serve-load clients")
	serveBatches := flag.Int("serve-batches", 25, "batches per -serve-load client")
	serveBatchRows := flag.Int("serve-batch-rows", 64, "tuples per -serve-load batch")
	maxBoundaryFrac := flag.Float64("max-boundary-frac", 0,
		"with -smoke: exit 1 if any app run's serial-boundary fraction exceeds this (0 disables; CI's regression gate)")
	walSmoke := flag.Bool("wal", false,
		"run the streaming-ingest workload WAL-off and WAL-on over a real log directory and report the durability overhead (schema 8)")
	minWALRatio := flag.Float64("min-wal-ratio", 0.7,
		"with -wal: exit 1 if WAL-on ingest throughput falls below this fraction of WAL-off (0 disables; CI's durability gate)")
	flag.Parse()

	// Validate before running anything: an unknown -strategy must abort
	// with the legal names, never fall back to Auto silently.
	strat, err := exec.ParseStrategy(*strategyFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *repeats < 1 {
		fmt.Fprintf(os.Stderr, "jstar-bench: -repeats %d: need at least one measurement repetition\n", *repeats)
		os.Exit(2)
	}
	cfg := config{
		strategy:   strat,
		pvYears:    *years,
		matN:       *matN,
		spVertices: *spV,
		spExtra:    2 * *spV,
		medianN:    *medN,
		repeats:    *repeats,
	}
	for th := 1; th <= *maxThreads; th *= 2 {
		cfg.threadSteps = append(cfg.threadSteps, th)
	}
	// The procs ladder is parsed up front (not just under -speedup) because
	// every artifact header records it: trajectory tooling uses the ladder
	// plus numcpu to reject cross-host comparisons.
	procs, err := parseProcs(*procsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg.procsLadder = procs

	fmt.Printf("host: GOMAXPROCS=%d NumCPU=%d\n\n", runtime.GOMAXPROCS(0), runtime.NumCPU())
	ran := false
	want := func(name string) bool {
		if *all {
			return true
		}
		if *fig == name || *table == name {
			ran = true
			return true
		}
		return false
	}
	if *all {
		ran = true
	}
	if want("6") {
		fig6(cfg)
	}
	if want("6.2") {
		fig62(cfg)
	}
	if want("6.3") {
		fig63(cfg)
	}
	if want("1") {
		table1(cfg)
	}
	if want("8") {
		fig8(cfg)
	}
	if want("10") {
		fig10(cfg)
	}
	if want("11") {
		fig11(cfg)
	}
	if want("12") {
		fig12(cfg)
	}
	if want("13") {
		fig13(cfg)
	}
	if want("strategies") {
		strategiesTable(cfg)
	}
	if *phases {
		ran = true
		phasesTable(cfg)
	}
	// The smoke pass, the speedup sweep, the adaptive comparison and the
	// serve load all fill one shared artifact, so a CI job running them
	// uploads a single schema-6 BENCH file.
	var art *smokeArtifact
	ensureArt := func() {
		if art == nil {
			art = newArtifact(cfg)
		}
	}
	var gateFailures []string
	if *smoke {
		ran = true
		ensureArt()
		gateFailures = append(gateFailures, smokeRun(cfg, art, *maxBoundaryFrac)...)
	}
	if *speedup {
		ran = true
		ensureArt()
		gateFailures = append(gateFailures,
			speedupSweep(cfg, art, procs, *minDispatchSpeedup, *minAffinityRatio)...)
	}
	if *adaptive {
		ran = true
		ensureArt()
		gateFailures = append(gateFailures, adaptiveRun(cfg, art, *minAdaptiveSpeedup)...)
	}
	if *serveLoad {
		ran = true
		ensureArt()
		gateFailures = append(gateFailures,
			serveLoadRun(art, *serveAddr, *serveClients, *serveBatches, *serveBatchRows)...)
	}
	if *walSmoke {
		ran = true
		ensureArt()
		gateFailures = append(gateFailures, walRun(cfg, art, *minWALRatio)...)
	}
	if art != nil && *jsonPath != "" {
		data, err := json.MarshalIndent(art, "", "  ")
		must(err)
		must(os.WriteFile(*jsonPath, append(data, '\n'), 0o644))
		fmt.Printf("wrote %s\n", *jsonPath)
	}
	// Gates fire after the artifact is written: a failed gate still leaves
	// the measurements on disk for the trajectory.
	for _, f := range gateFailures {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(gateFailures) > 0 {
		os.Exit(1)
	}
	if *savePlan != "" || *storePlan != "" {
		ran = true
		tunePass(cfg, *storePlan, *savePlan)
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

// parseProcs parses the -procs list ("1,2,4,8") into GOMAXPROCS values.
func parseProcs(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		var n int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &n); err != nil || n < 1 {
			return nil, fmt.Errorf("jstar-bench: -procs %q: %q is not a positive integer", s, part)
		}
		out = append(out, n)
	}
	return out, nil
}

// timeIt returns the minimum elapsed time of cfg.repeats runs of fn.
func timeIt(repeats int, fn func()) time.Duration {
	best := time.Duration(1<<62 - 1)
	for i := 0; i < repeats; i++ {
		start := time.Now()
		fn()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// --- Fig 6: absolute sequential speed, JStar vs hand-coded ------------------

func fig6(cfg config) {
	fmt.Println("== Fig 6: absolute sequential speed, JStar vs hand-coded baseline ==")
	fmt.Println("paper (seconds): PvWatts 4.7 vs 5.9 | MatMult 21.9 (boxed) / 8.1 (fixed) vs 7.5 naive / 1.0 transposed | Dijkstra 3.8 vs 1.8 | Median 6.8 vs 13.4")
	fmt.Printf("%-22s %14s %14s %8s\n", "program", "jstar-seq", "baseline", "ratio")

	csv := pvwatts.GenerateCSV(cfg.pvYears, false, 42)
	tj := timeIt(cfg.repeats, func() {
		_, err := pvwatts.RunJStar(csv, pvwatts.RunOpts{
			Sequential: true, NoDelta: true, Gamma: pvwatts.GammaArrayOfHash})
		must(err)
	})
	tb := timeIt(cfg.repeats, func() {
		_, err := pvwatts.RunBaseline(csv)
		must(err)
	})
	row("PvWatts", tj, tb)

	a, b := matmult.Inputs(cfg.matN, 42)
	tjBoxed := timeIt(1, func() {
		_, err := matmult.RunJStar(matmult.RunOpts{N: cfg.matN, Sequential: true, Boxed: true, Seed: 42})
		must(err)
	})
	tj = timeIt(cfg.repeats, func() {
		_, err := matmult.RunJStar(matmult.RunOpts{N: cfg.matN, Sequential: true, Seed: 42})
		must(err)
	})
	tb = timeIt(cfg.repeats, func() { matmult.Naive(a, b, cfg.matN) })
	tt := timeIt(cfg.repeats, func() { matmult.Transposed(a, b, cfg.matN) })
	row("MatMult (boxed)", tjBoxed, tb)
	row("MatMult (primitive)", tj, tb)
	row("MatMult vs transposed", tj, tt)

	gen := shortestpath.GenOpts{Vertices: cfg.spVertices, Extra: cfg.spExtra, Tasks: 24, Seed: 42}
	tj = timeIt(cfg.repeats, func() {
		_, err := shortestpath.RunJStar(shortestpath.RunOpts{Gen: gen, Sequential: true})
		must(err)
	})
	tb = timeIt(cfg.repeats, func() {
		shortestpath.Baseline(shortestpath.Generate(gen), gen.Vertices)
	})
	row("Dijkstra", tj, tb)

	vals := median.Values(cfg.medianN, 42)
	tj = timeIt(cfg.repeats, func() {
		_, err := median.RunJStar(median.RunOpts{N: cfg.medianN, Regions: 24, Sequential: true, Seed: 42})
		must(err)
	})
	tb = timeIt(cfg.repeats, func() { median.SortBaseline(vals) })
	row("Median (vs sort)", tj, tb)
	fmt.Println()
}

func row(name string, jstar, base time.Duration) {
	fmt.Printf("%-22s %14v %14v %7.2fx\n", name,
		jstar.Round(time.Microsecond), base.Round(time.Microsecond),
		float64(jstar)/float64(base))
}

// --- §6.2: the -noDelta optimisation ----------------------------------------

func fig62(cfg config) {
	fmt.Println("== §6.2: -noDelta PvWatts optimisation (paper: 23.0s -> 8.44s, 2.7x) ==")
	csv := pvwatts.GenerateCSV(cfg.pvYears, false, 42)
	without := timeIt(cfg.repeats, func() {
		_, err := pvwatts.RunJStar(csv, pvwatts.RunOpts{Sequential: true, NoDelta: false})
		must(err)
	})
	with := timeIt(cfg.repeats, func() {
		_, err := pvwatts.RunJStar(csv, pvwatts.RunOpts{Sequential: true, NoDelta: true})
		must(err)
	})
	fmt.Printf("without -noDelta: %12v\n", without.Round(time.Microsecond))
	fmt.Printf("with    -noDelta: %12v\n", with.Round(time.Microsecond))
	fmt.Printf("speedup: %.2fx (paper: 2.73x)\n\n", float64(without)/float64(with))
}

// --- §6.3: phase breakdown and Amdahl bound ---------------------------------

func fig63(cfg config) {
	fmt.Println("== §6.3: PvWatts phase breakdown (paper: 16.9% read / 63.7% insert / 3.8% delta / 15.6% reduce) ==")
	csv := pvwatts.GenerateCSV(cfg.pvYears, false, 42)
	// Calibration pass: parse only, no tuple creation.
	timer := stats.NewPhaseTimer()
	var parseOnly time.Duration
	{
		start := time.Now()
		var sink int64
		err := fastcsv.ReadRegion(csv, fastcsv.Region{Start: 0, End: len(csv)},
			func(rec *fastcsv.Record) error {
				v, err := rec.Int(4)
				sink += v
				return err
			})
		must(err)
		parseOnly = time.Since(start)
		_ = sink
	}
	res, err := pvwatts.RunJStar(csv, pvwatts.RunOpts{
		Sequential: true, NoDelta: true, Gamma: pvwatts.GammaArrayOfHash})
	must(err)
	rn := res.Run.Stats().RuleNanos
	readTotal := time.Duration(rn["readCSV"].Load())
	monthly := time.Duration(rn["monthly"].Load())
	reduceT := time.Duration(rn["reduce"].Load())
	// readCSV's rule time includes creating PvWatts tuples, inserting them
	// into Gamma and firing the monthly rule inline (-noDelta); subtract
	// the nested pieces and the calibrated parse to split the phases.
	insert := readTotal - parseOnly - monthly
	if insert < 0 {
		insert = 0
	}
	timer.Add("reading and parsing the input", parseOnly)
	timer.Add("creating PvWatts tuples + Gamma insert", insert)
	timer.Add("creating SumMonth tuples (Delta tree)", monthly)
	timer.Add("SumMonth reducer loops", reduceT)
	fmt.Print(timer.Report())
	serial := timer.Share("reading and parsing the input")
	fmt.Printf("Amdahl max speedup with 1 reader + 12 consumers: %.2fx (paper: 4.2x)\n\n",
		stats.AmdahlMax(serial, 12))
}

// --- Table 1: Disruptor tuning ----------------------------------------------

func table1(cfg config) {
	fmt.Println("== Table 1: Disruptor options sweep (paper best: ring 1024, Blocking, batch 256, 12 consumers) ==")
	csv := pvwatts.GenerateCSV(cfg.pvYears, false, 42)
	fmt.Printf("%-10s %-26s %8s %12s\n", "ring", "wait", "batch", "time")
	type best struct {
		opts disruptor.Options
		t    time.Duration
	}
	var b *best
	for _, ring := range []int{256, 1024, 4096} {
		for _, wait := range []func() disruptor.WaitStrategy{
			func() disruptor.WaitStrategy { return &disruptor.BlockingWait{} },
			func() disruptor.WaitStrategy { return disruptor.YieldingWait{} },
			func() disruptor.WaitStrategy { return disruptor.BusySpinWait{} },
		} {
			for _, batch := range []int{1, 64, 256} {
				opts := disruptor.Options{RingSize: ring, ClaimBatch: batch,
					Consumers: 12, Wait: wait()}
				t := timeIt(cfg.repeats, func() {
					_, err := pvwatts.RunDisruptor(csv, opts)
					must(err)
				})
				fmt.Printf("%-10d %-26s %8d %12v\n", ring, opts.Wait.Name(), batch,
					t.Round(time.Microsecond))
				if b == nil || t < b.t {
					b = &best{opts: opts, t: t}
				}
			}
		}
	}
	fmt.Printf("best: %s (%v)\n\n", b.opts.String(), b.t.Round(time.Microsecond))
}

// --- Fig 8: PvWatts thread sweep with alternative Gamma structures ----------

func fig8(cfg config) {
	fmt.Println("== Fig 8: PvWatts speedup vs fork/join pool size, per Gamma structure ==")
	fmt.Println("paper: ~4x relative at 8 threads; absolute ~35% lower (concurrent structures cost)")
	csv := pvwatts.GenerateCSV(cfg.pvYears, false, 42)
	seq := timeIt(cfg.repeats, func() {
		_, err := pvwatts.RunJStar(csv, pvwatts.RunOpts{
			Sequential: true, NoDelta: true, Gamma: pvwatts.GammaArrayOfHash})
		must(err)
	})
	fmt.Printf("sequential baseline (array-of-hashsets): %v\n", seq.Round(time.Microsecond))
	for _, g := range []pvwatts.GammaKind{
		pvwatts.GammaDefault, pvwatts.GammaHash, pvwatts.GammaArrayOfHash,
	} {
		fmt.Printf("--- Gamma = %s ---\n", g.Name())
		var elapsed []time.Duration
		for _, th := range cfg.threadSteps {
			t := timeIt(cfg.repeats, func() {
				_, err := pvwatts.RunJStar(csv, pvwatts.RunOpts{
					Strategy: cfg.strategy, Threads: th, NoDelta: true, Gamma: g})
				must(err)
			})
			elapsed = append(elapsed, t)
		}
		fmt.Print(stats.FormatSpeedups(stats.SpeedupTable(cfg.threadSteps, elapsed, seq)))
	}
	fmt.Println()
}

// --- Fig 10: Disruptor PvWatts, sorted vs unsorted input --------------------

func fig10(cfg config) {
	fmt.Println("== Fig 10: Disruptor PvWatts, unsorted vs sorted input ==")
	fmt.Println("paper: 3.31x over sequential (unsorted), 2.52x (sorted; sorted is faster absolutely)")
	for _, sorted := range []bool{false, true} {
		label := "unsorted"
		if sorted {
			label = "sorted"
		}
		csv := pvwatts.GenerateCSV(cfg.pvYears, sorted, 42)
		seq := timeIt(cfg.repeats, func() {
			_, err := pvwatts.RunJStar(csv, pvwatts.RunOpts{
				Sequential: true, NoDelta: true, Gamma: pvwatts.GammaArrayOfHash})
			must(err)
		})
		fmt.Printf("--- %s input (sequential JStar: %v) ---\n", label, seq.Round(time.Microsecond))
		fmt.Printf("%10s %14s %10s\n", "consumers", "time", "speedup")
		for _, consumers := range cfg.threadSteps {
			opts := disruptor.Defaults()
			opts.Consumers = consumers
			t := timeIt(cfg.repeats, func() {
				_, err := pvwatts.RunDisruptor(csv, opts)
				must(err)
			})
			fmt.Printf("%10d %14v %9.2fx\n", consumers, t.Round(time.Microsecond),
				float64(seq)/float64(t))
		}
	}
	fmt.Println()
}

// --- Fig 11/12/13: thread sweeps --------------------------------------------

func sweep(name, paper string, cfg config, seq func() time.Duration, par func(threads int) time.Duration) {
	fmt.Printf("== %s ==\n%s\n", name, paper)
	s := seq()
	fmt.Printf("sequential: %v\n", s.Round(time.Microsecond))
	var elapsed []time.Duration
	for _, th := range cfg.threadSteps {
		elapsed = append(elapsed, par(th))
	}
	fmt.Print(stats.FormatSpeedups(stats.SpeedupTable(cfg.threadSteps, elapsed, s)))
	fmt.Println()
}

func fig11(cfg config) {
	sweep("Fig 11: MatrixMult speedup vs pool size",
		"paper: embarrassingly parallel, good speedup up to ~20 of 32 cores", cfg,
		func() time.Duration {
			return timeIt(cfg.repeats, func() {
				_, err := matmult.RunJStar(matmult.RunOpts{N: cfg.matN, Sequential: true, Seed: 42})
				must(err)
			})
		},
		func(th int) time.Duration {
			return timeIt(cfg.repeats, func() {
				_, err := matmult.RunJStar(matmult.RunOpts{
					N: cfg.matN, Strategy: cfg.strategy, Threads: th, Seed: 42})
				must(err)
			})
		})
}

func fig12(cfg config) {
	gen := shortestpath.GenOpts{Vertices: cfg.spVertices, Extra: cfg.spExtra, Tasks: 24, Seed: 42}
	sweep("Fig 12: Dijkstra speedup vs pool size",
		"paper: mediocre, max 4.0x at 8 cores (Delta-tree contention on Estimate batches)", cfg,
		func() time.Duration {
			return timeIt(cfg.repeats, func() {
				_, err := shortestpath.RunJStar(shortestpath.RunOpts{Gen: gen, Sequential: true})
				must(err)
			})
		},
		func(th int) time.Duration {
			return timeIt(cfg.repeats, func() {
				_, err := shortestpath.RunJStar(shortestpath.RunOpts{
					Gen: gen, Strategy: cfg.strategy, Threads: th})
				must(err)
			})
		})
}

func fig13(cfg config) {
	sweep("Fig 13: Median speedup vs pool size",
		"paper: 8.6x at 12 cores, ~14x at 32 (rolling native-array Gamma)", cfg,
		func() time.Duration {
			return timeIt(cfg.repeats, func() {
				_, err := median.RunJStar(median.RunOpts{
					N: cfg.medianN, Regions: 24, Sequential: true, Seed: 42})
				must(err)
			})
		},
		func(th int) time.Duration {
			return timeIt(cfg.repeats, func() {
				_, err := median.RunJStar(median.RunOpts{
					N: cfg.medianN, Regions: 24, Strategy: cfg.strategy, Threads: th, Seed: 42})
				must(err)
			})
		})
}

// --- CI smoke artifact -------------------------------------------------------

// smokeResult is one measured program in the benchmark-smoke JSON artifact.
type smokeResult struct {
	Name          string  `json:"name"`
	Threads       int     `json:"threads"`
	ElapsedNs     int64   `json:"elapsed_ns"` // min over repeats
	Steps         int64   `json:"steps"`
	TotalFired    int64   `json:"total_fired"`
	FireBatches   int64   `json:"fire_batches"`
	MeanFireChunk float64 `json:"mean_fire_chunk"`
	NsPerFiring   float64 `json:"ns_per_firing"`
	// EventsPerSec is the Session streaming-ingestion throughput (Put →
	// ingress ring → absorb → fire), reported by the session-ingest run
	// only — the perf trajectory of the async event path.
	EventsPerSec float64          `json:"events_per_sec,omitempty"`
	BatchHist    map[string]int64 `json:"batch_hist"`
	// Per-phase step breakdown (schema 3): coordinator nanos in rule
	// dispatch vs the three boundary phases, plus the serial-boundary
	// fraction — the Amdahl number the CI gate watches per commit.
	FireNs       int64   `json:"fire_ns"`
	InsertNs     int64   `json:"insert_ns"`
	MergeNs      int64   `json:"merge_ns"`
	DeltaNs      int64   `json:"delta_ns"`
	BoundaryFrac float64 `json:"boundary_frac"`
	// Tables records, per table, the store kind the run chose, the usage
	// counters, and the kind the planner would pick next time — so the
	// perf trajectory captures planner decisions commit over commit.
	Tables []smokeTableRow `json:"tables"`
}

// smokeTableRow is one table's planner-relevant row in the artifact.
type smokeTableRow struct {
	Table     string `json:"table"`
	Kind      string `json:"kind"`
	Puts      int64  `json:"puts"`
	Dups      int64  `json:"dups"`
	Queries   int64  `json:"queries"`
	Suggested string `json:"suggested,omitempty"`
}

// tableRows renders a run's per-table planner view, sorted by table name.
func tableRows(st *core.RunStats) []smokeTableRow {
	plan := st.SuggestStorePlan()
	rows := make([]smokeTableRow, 0, len(st.Tables))
	for name, ts := range st.Tables {
		rows = append(rows, smokeTableRow{
			Table:     name,
			Kind:      st.StoreKinds[name],
			Puts:      ts.Puts.Load(),
			Dups:      ts.Duplicates.Load(),
			Queries:   ts.Queries.Load(),
			Suggested: plan[name],
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Table < rows[j].Table })
	return rows
}

// boundaryRow is one point of the step-boundary microbench sweep in the
// artifact (the cmd twin of BenchmarkStepBoundary): a fan-out step whose
// firings each put one tuple, crossed over slot counts and batch sizes,
// so the boundary pipeline — sort, seal, merge, Delta load — dominates.
type boundaryRow struct {
	Threads      int     `json:"threads"`
	Batch        int     `json:"batch"`
	ElapsedNs    int64   `json:"elapsed_ns"` // min over repeats
	NsPerTuple   float64 `json:"ns_per_tuple"`
	FireNs       int64   `json:"fire_ns"`
	InsertNs     int64   `json:"insert_ns"`
	MergeNs      int64   `json:"merge_ns"`
	DeltaNs      int64   `json:"delta_ns"`
	BoundaryFrac float64 `json:"boundary_frac"`
}

// speedupRow is one point of the -speedup GOMAXPROCS sweep (schema 4):
// one workload at one processor count under one strategy, with its speedup
// over the workload's sequential single-proc baseline.
type speedupRow struct {
	Name       string `json:"name"`
	Strategy   string `json:"strategy"`
	Gomaxprocs int    `json:"gomaxprocs"`
	Threads    int    `json:"threads"`
	ElapsedNs  int64  `json:"elapsed_ns"` // min over repeats
	// Speedup is sequential-baseline time / this time (1.0 for the
	// baseline row itself).
	Speedup float64 `json:"speedup"`
	// Affinity marks a schema-7 row measured with Options.TableAffinity on;
	// it shares the sequential baseline of the same-named affinity-off rows,
	// so on/off speedups compare directly.
	Affinity bool `json:"affinity,omitempty"`
}

// benchSchema is the BENCH_*.json artifact version. History:
// 1 app runs + batch histograms; 2 per-table planner rows; 3 per-phase
// step breakdown + step-boundary microbench sweep; 4 multi-core speedup
// rows (the -speedup GOMAXPROCS sweep); 5 adaptive drift report (the
// -adaptive frozen-vs-re-planning session comparison); 6 serve-load
// latency report (the -serve-load ingest/quiesce-visibility histograms
// measured over real sockets against jstar-serve); 7 table-affinity sweep
// rows (the dispatch/step-boundary microbenches re-run with
// Options.TableAffinity on, marked affinity=true) plus the host's
// procs_ladder in the header so trajectory diffs can reject artifacts
// from mismatched hosts; 8 durability report (the -wal WAL-off/WAL-on
// ingest overhead comparison plus a timed checkpoint+replay recovery over
// the directory the WAL-on run left behind).
const benchSchema = 8

// smokeArtifact is the BENCH_*.json schema CI uploads per run, so the
// perf trajectory (and the batch-size distributions feeding store
// auto-tuning) accumulates across commits.
type smokeArtifact struct {
	Schema     int    `json:"schema"`
	Strategy   string `json:"strategy"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"numcpu"`
	// ProcsLadder is the GOMAXPROCS ladder sweeps on this host step
	// through (schema 7); with NumCPU it fingerprints the measurement host.
	ProcsLadder []int         `json:"procs_ladder"`
	GoVersion   string        `json:"go_version"`
	Repeats     int           `json:"repeats"`
	Runs        []smokeResult `json:"runs"`
	// StepBoundary is the boundary microbench sweep (schema 3).
	StepBoundary []boundaryRow `json:"step_boundary"`
	// Speedup is the multi-core sweep (schema 4; -speedup only).
	Speedup []speedupRow `json:"speedup,omitempty"`
	// Adaptive is the drift comparison (schema 5; -adaptive only).
	Adaptive *adaptiveReport `json:"adaptive,omitempty"`
	// Serve is the network-load latency report (schema 6; -serve-load only).
	Serve *serveReport `json:"serve,omitempty"`
	// Durability is the WAL overhead + recovery report (schema 8; -wal only).
	Durability *durabilityReport `json:"durability,omitempty"`
}

// migrationRow is one live store migration in the adaptive report.
type migrationRow struct {
	Table   string `json:"table"`
	From    string `json:"from"`
	To      string `json:"to"`
	Quiesce int64  `json:"quiesce"`
	Tuples  int    `json:"tuples"`
	Nanos   int64  `json:"nanos"`
}

// adaptiveReport is the -adaptive comparison (schema 5): the drifting
// two-phase workload run twice — once with the plan frozen at start, once
// with ReplanEvery live re-planning — with per-window phase-2 latencies,
// the adaptive run's migration/strategy event log, and the headline
// speedup (frozen mean / adaptive mean over the probe-burst windows).
type adaptiveReport struct {
	Keys            int    `json:"keys"`
	IngestWindows   int    `json:"ingest_windows"`
	ProbeWindows    int    `json:"probe_windows"`
	ProbesPerWindow int    `json:"probes_per_window"`
	ReplanEvery     int    `json:"replan_every"`
	FrozenKind      string `json:"frozen_kind"`   // Reading's store, frozen run
	AdaptiveKind    string `json:"adaptive_kind"` // Reading's store after migration
	// KindAfterIngest is Reading's backend in the adaptive run at the
	// phase-1/phase-2 boundary — the convergence gate's input.
	KindAfterIngest  string         `json:"kind_after_ingest"`
	FrozenProbeNs    []int64        `json:"frozen_probe_ns"`
	AdaptiveProbeNs  []int64        `json:"adaptive_probe_ns"`
	FrozenMeanNs     float64        `json:"frozen_mean_ns"`
	AdaptiveMeanNs   float64        `json:"adaptive_mean_ns"`
	Speedup          float64        `json:"speedup"`
	Migrations       []migrationRow `json:"migrations"`
	StrategySwitches int            `json:"strategy_switches"`
	// ConvergeQuiesce is the quiescent boundary at which Reading migrated
	// onto its point-probe backend (0 = never; the convergence gate).
	ConvergeQuiesce int64 `json:"converge_quiesce"`
}

// newArtifact stamps an empty artifact with the host and run configuration.
func newArtifact(cfg config) *smokeArtifact {
	return &smokeArtifact{
		Schema:      benchSchema,
		Strategy:    cfg.strategy.String(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		ProcsLadder: cfg.procsLadder,
		GoVersion:   runtime.Version(),
		Repeats:     cfg.repeats,
	}
}

// smokeRun measures small fixed workloads under the configured strategy,
// filling art's runs and boundary sweep. Counters come from the
// minimum-elapsed run, so ns_per_firing matches elapsed_ns. A non-zero
// maxBoundaryFrac is the CI regression gate: if any app run spends a larger
// fraction of its step loop inside the serial step boundary, the returned
// failures make main exit 1 (after the artifact is written).
func smokeRun(cfg config, art *smokeArtifact, maxBoundaryFrac float64) []string {
	fmt.Println("== Benchmark smoke (CI artifact) ==")
	threads := runtime.NumCPU()
	csv := pvwatts.GenerateCSV(1, false, 42)
	// measure times one workload cfg.repeats times, keeps the fastest
	// repetition's stats, and records it as one artifact row. events > 0
	// marks a streaming-ingestion workload: the row additionally reports
	// events/sec over the fastest repetition.
	measure := func(name string, events int, run func() (*core.RunStats, time.Duration)) {
		var best time.Duration = 1<<62 - 1
		var stats *core.RunStats
		for i := 0; i < cfg.repeats; i++ {
			st, d := run()
			if d < best {
				best = d
				stats = st
			}
		}
		res := smokeResult{
			Name:          name,
			Threads:       threads,
			ElapsedNs:     best.Nanoseconds(),
			Steps:         stats.Steps,
			TotalFired:    stats.TotalFired,
			FireBatches:   stats.FireBatches.Load(),
			MeanFireChunk: stats.MeanFireChunk(),
			BatchHist:     stats.BatchHistogram(),
			Tables:        tableRows(stats),
			FireNs:        stats.FireNanos,
			InsertNs:      stats.InsertNanos,
			MergeNs:       stats.MergeNanos,
			DeltaNs:       stats.DeltaNanos,
			BoundaryFrac:  stats.SerialBoundaryFraction(),
		}
		if stats.TotalFired > 0 {
			res.NsPerFiring = float64(best.Nanoseconds()) / float64(stats.TotalFired)
		}
		rate := fmt.Sprintf("ns/firing=%.0f", res.NsPerFiring)
		if events > 0 {
			res.EventsPerSec = float64(events) / best.Seconds()
			rate = fmt.Sprintf("events/sec=%.0f", res.EventsPerSec)
		}
		art.Runs = append(art.Runs, res)
		fmt.Printf("%-14s %12v  fired=%d  chunks=%d  mean-chunk=%.1f  boundary=%.1f%%  %s\n",
			name, best.Round(time.Microsecond), res.TotalFired, res.FireBatches,
			res.MeanFireChunk, 100*res.BoundaryFrac, rate)
	}
	measure("matmult", 0, func() (*core.RunStats, time.Duration) {
		start := time.Now()
		r, err := matmult.RunJStar(matmult.RunOpts{
			N: 96, Strategy: cfg.strategy, Threads: threads, Seed: 42, PhaseStats: true})
		must(err)
		return r.Run.Stats(), time.Since(start)
	})
	measure("median", 0, func() (*core.RunStats, time.Duration) {
		start := time.Now()
		r, err := median.RunJStar(median.RunOpts{
			N: 100_000, Regions: 24, Strategy: cfg.strategy, Threads: threads, Seed: 42, PhaseStats: true})
		must(err)
		return r.Run.Stats(), time.Since(start)
	})
	measure("pvwatts", 0, func() (*core.RunStats, time.Duration) {
		// Without -noDelta so the readings flow through the Delta set and the
		// batched dispatch path (with -noDelta they fire inline per §5.1).
		start := time.Now()
		r, err := pvwatts.RunJStar(csv, pvwatts.RunOpts{
			Strategy: cfg.strategy, Threads: threads, PhaseStats: true})
		must(err)
		return r.Run.Stats(), time.Since(start)
	})
	// Session streaming ingestion: the main goroutine is a producer
	// Putting external events through the ingress ring while the session
	// coordinator drains concurrently, one quiescence at the end — the
	// async event path whose throughput the artifact tracks (the
	// test-suite twin is BenchmarkSessionIngest).
	const ingestEvents = 100_000
	measure("session-ingest", ingestEvents, func() (*core.RunStats, time.Duration) {
		p, ev := ingestProgram()
		sess, err := p.Start(context.Background(), core.Options{
			Strategy: cfg.strategy, Threads: threads, Quiet: true, PhaseStats: true})
		must(err)
		start := time.Now()
		for j := int64(0); j < ingestEvents; j++ {
			must(sess.Put(tuple.New(ev, tuple.Int(j))))
		}
		must(sess.Quiesce(context.Background()))
		d := time.Since(start)
		must(sess.Close())
		return sess.Stats(), d
	})
	art.StepBoundary = stepBoundarySweep(cfg)
	var failures []string
	if maxBoundaryFrac > 0 {
		for _, r := range art.Runs {
			if r.BoundaryFrac > maxBoundaryFrac {
				failures = append(failures, fmt.Sprintf(
					"jstar-bench: %s serial-boundary fraction %.1f%% exceeds the -max-boundary-frac gate (%.1f%%)",
					r.Name, 100*r.BoundaryFrac, 100*maxBoundaryFrac))
			}
		}
		if len(failures) == 0 {
			fmt.Printf("boundary gate: all runs within %.0f%%\n", 100*maxBoundaryFrac)
		}
	}
	fmt.Println()
	return failures
}

// ingestProgram builds the streaming-ingestion workload shared by the
// session-ingest smoke row and the -wal durability report: external
// Event(n) puts fanned out to Out(n, 2n) by one rule.
func ingestProgram() (*core.Program, *tuple.Schema) {
	p := core.NewProgram()
	ev := p.Table("Event", []tuple.Column{{Name: "n", Kind: tuple.KindInt}},
		[]tuple.OrderEntry{tuple.Lit("Event")})
	out := p.Table("Out",
		[]tuple.Column{{Name: "n", Kind: tuple.KindInt}, {Name: "v", Kind: tuple.KindInt}},
		[]tuple.OrderEntry{tuple.Lit("Out")})
	p.Order("Event", "Out")
	p.Rule("double", ev, func(c *core.Ctx, t *tuple.Tuple) {
		c.PutNew(out, tuple.Int(t.Int("n")), tuple.Int(2*t.Int("n")))
	})
	return p, ev
}

// --- durability overhead + recovery (-wal) ----------------------------------

// durabilityReport is the -wal report (schema 8): the streaming-ingest
// workload measured with the WAL off and on (real directory, real fsyncs),
// the log's counters after the durable run, and a timed recovery — newest
// checkpoint plus tail replay — over the directory that run left behind.
type durabilityReport struct {
	Events          int     `json:"events"`
	WalOffEventsSec float64 `json:"wal_off_events_per_sec"`
	WalOnEventsSec  float64 `json:"wal_on_events_per_sec"`
	// Ratio is WAL-on / WAL-off throughput — the CI gate's number.
	Ratio         float64 `json:"ratio"`
	GroupCommits  int64   `json:"group_commits"`
	WALBytes      int64   `json:"wal_bytes"`
	Segments      int     `json:"segments"`
	CheckpointSeq uint64  `json:"checkpoint_seq"`
	// RecoverNs is Start-to-quiesced over the logged directory; the
	// recovery rows say what that time paid for.
	RecoverNs        int64  `json:"recover_ns"`
	RecoveredTuples  int    `json:"recovered_tuples"`
	ReplayedEvents   int    `json:"replayed_events"`
	RecoveryDurable  uint64 `json:"recovery_durable_seq"`
	TruncatedBytes   int64  `json:"truncated_bytes"`
	CheckpointTables int    `json:"checkpoint_tables"`
}

// walRun measures the durability tier: ingest throughput WAL-off vs
// WAL-on, then a timed recovery. A non-zero minRatio is the CI overhead
// gate — the durable path must keep at least that fraction of the
// in-memory path's throughput.
func walRun(cfg config, art *smokeArtifact, minRatio float64) []string {
	fmt.Println("== Durability smoke (-wal) ==")
	threads := runtime.NumCPU()
	const events = 100_000
	ctx := context.Background()

	runIngest := func(dur *core.DurabilityOptions, checkpoint bool) (time.Duration, wal.Stats) {
		p, ev := ingestProgram()
		sess, err := p.Start(ctx, core.Options{
			Strategy: cfg.strategy, Threads: threads, Quiet: true, Durability: dur})
		must(err)
		start := time.Now()
		for j := int64(0); j < events; j++ {
			must(sess.Put(tuple.New(ev, tuple.Int(j))))
		}
		must(sess.Quiesce(ctx))
		d := time.Since(start)
		if checkpoint {
			_, err := sess.Checkpoint(ctx)
			must(err)
		}
		st, _ := sess.WALStats()
		must(sess.Close())
		return d, st
	}

	var off time.Duration = 1<<62 - 1
	for i := 0; i < cfg.repeats; i++ {
		if d, _ := runIngest(nil, false); d < off {
			off = d
		}
	}

	var (
		on    time.Duration = 1<<62 - 1
		onSt  wal.Stats
		onDir string
	)
	for i := 0; i < cfg.repeats; i++ {
		dir, err := os.MkdirTemp("", "jstar-wal-bench")
		must(err)
		d, st := runIngest(&core.DurabilityOptions{Dir: dir, Identity: "bench"}, true)
		if d < on {
			on, onSt = d, st
			if onDir != "" {
				os.RemoveAll(onDir)
			}
			onDir = dir
		} else {
			os.RemoveAll(dir)
		}
	}
	defer os.RemoveAll(onDir)

	// Recovery: a fresh program over the best run's directory, timed from
	// Start to the first quiescent boundary (checkpoint load + tail replay
	// + re-derivation all included).
	p2, _ := ingestProgram()
	t0 := time.Now()
	sess2, err := p2.Start(ctx, core.Options{
		Strategy: cfg.strategy, Threads: threads, Quiet: true,
		Durability: &core.DurabilityOptions{Dir: onDir, Identity: "bench"}})
	must(err)
	must(sess2.Quiesce(ctx))
	recoverNs := time.Since(t0).Nanoseconds()
	rec := sess2.Recovery()
	recoveredOut := len(sess2.Snapshot(p2.Schema("Out")))
	must(sess2.Close())
	if rec == nil {
		must(fmt.Errorf("jstar-bench: recovery over %s reported nothing", onDir))
	}
	if recoveredOut != events {
		must(fmt.Errorf("jstar-bench: recovered %d Out rows, want %d", recoveredOut, events))
	}

	rep := &durabilityReport{
		Events:           events,
		WalOffEventsSec:  float64(events) / off.Seconds(),
		WalOnEventsSec:   float64(events) / on.Seconds(),
		GroupCommits:     onSt.GroupCommits,
		WALBytes:         onSt.Bytes,
		Segments:         onSt.Segments,
		CheckpointSeq:    onSt.CheckpointSeq,
		RecoverNs:        recoverNs,
		RecoveredTuples:  rec.CheckpointTuples,
		ReplayedEvents:   rec.Replayed,
		RecoveryDurable:  rec.DurableSeq,
		TruncatedBytes:   rec.TruncatedBytes,
		CheckpointTables: rec.CheckpointTables,
	}
	rep.Ratio = rep.WalOnEventsSec / rep.WalOffEventsSec
	art.Durability = rep
	fmt.Printf("wal-off %11.0f events/sec\nwal-on  %11.0f events/sec  ratio=%.2f  commits=%d  bytes=%d  ckpt-seq=%d\nrecover %11v  (%d ckpt tuples + %d replayed)\n\n",
		rep.WalOffEventsSec, rep.WalOnEventsSec, rep.Ratio, rep.GroupCommits,
		rep.WALBytes, rep.CheckpointSeq, time.Duration(recoverNs).Round(time.Microsecond),
		rep.RecoveredTuples, rep.ReplayedEvents)

	var failures []string
	if minRatio > 0 && rep.Ratio < minRatio {
		failures = append(failures, fmt.Sprintf(
			"jstar-bench: WAL-on ingest throughput is %.2fx WAL-off, below the -min-wal-ratio gate (%.2f)",
			rep.Ratio, minRatio))
	} else if minRatio > 0 {
		fmt.Printf("durability gate: WAL overhead within budget (%.2fx >= %.2fx)\n", rep.Ratio, minRatio)
	}
	return failures
}

// boundaryProgram builds the step-boundary microbench program: one Src
// tuple fans out `batch` Work tuples, and every Work firing puts one Out
// tuple, so each step's boundary handles a batch-sized flush while the
// rule bodies do almost nothing.
func boundaryProgram(batch int) *core.Program {
	p := core.NewProgram()
	icol := func(n string) []tuple.Column { return []tuple.Column{{Name: n, Kind: tuple.KindInt}} }
	src := p.Table("Src", icol("n"), []tuple.OrderEntry{tuple.Lit("Src")})
	work := p.Table("Work", icol("i"), []tuple.OrderEntry{tuple.Lit("Work")})
	out := p.Table("Out", icol("i"), []tuple.OrderEntry{tuple.Lit("Out")})
	p.Order("Src", "Work", "Out")
	p.Rule("fanout", src, func(c *core.Ctx, t *tuple.Tuple) {
		for j := int64(0); j < t.Int("n"); j++ {
			c.PutNew(work, tuple.Int(j))
		}
	})
	p.Rule("emit", work, func(c *core.Ctx, t *tuple.Tuple) {
		c.PutNew(out, t.Get("i"))
	})
	p.Put(tuple.New(src, tuple.Int(int64(batch))))
	return p
}

// dispatchProgram builds the dispatch microbench program (the cmd twin of
// BenchmarkDispatch_PerFiring): one Src tuple fans out `batch` Work tuples
// whose rule bodies do nothing but a counter add, so the measured time is
// rule lookup, Ctx setup and scheduling hand-off — the per-firing dispatch
// cost the parallel strategies must amortise to scale.
func dispatchProgram(batch int, sink *atomic.Int64) *core.Program {
	p := core.NewProgram()
	icol := func(n string) []tuple.Column { return []tuple.Column{{Name: n, Kind: tuple.KindInt}} }
	src := p.Table("Src", icol("n"), []tuple.OrderEntry{tuple.Lit("Src")})
	work := p.Table("Work", icol("i"), []tuple.OrderEntry{tuple.Lit("Work")})
	p.Order("Src", "Work")
	p.Rule("fanout", src, func(c *core.Ctx, t *tuple.Tuple) {
		for j := int64(0); j < t.Int("n"); j++ {
			c.PutNew(work, tuple.Int(j))
		}
	})
	p.Rule("noop", work, func(c *core.Ctx, t *tuple.Tuple) {
		sink.Add(t.Int("i"))
	})
	p.Put(tuple.New(src, tuple.Int(int64(batch))))
	return p
}

// speedupSweep is the -speedup mode: the four paper apps plus the
// dispatch and step-boundary microbenches, each run sequentially once
// (the baseline) and then under the parallel strategy across the -procs
// GOMAXPROCS values, with per-point speedup-vs-serial emitted as schema-4
// artifact rows. A non-zero minDispatch is the CI scaling gate: the
// parallel dispatch microbench at 4 procs (or the largest swept value)
// must reach that multiple of the sequential baseline.
// A non-zero minAffinityRatio additionally gates the schema-7 affinity
// re-run: the affinity-on dispatch speedup at 4 procs must reach that
// multiple of the affinity-off dispatch speedup at the same point.
func speedupSweep(cfg config, art *smokeArtifact, procs []int, minDispatch, minAffinityRatio float64) []string {
	strat := cfg.strategy
	if strat == exec.Auto {
		strat = exec.ForkJoin
	}
	fmt.Printf("== Multi-core speedup sweep (strategy=%s, procs=%v) ==\n", strat, procs)
	fmt.Printf("%-14s %-12s %6s %12s %10s\n", "workload", "strategy", "procs", "time", "speedup")
	origProcs := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(origProcs)

	csv := pvwatts.GenerateCSV(cfg.pvYears, false, 42)
	gen := shortestpath.GenOpts{Vertices: cfg.spVertices, Extra: cfg.spExtra, Tasks: 24, Seed: 42}
	// The microbench programs are too short to time once; iterate inside
	// one measurement so a sweep point is tens of milliseconds.
	const dispatchBatch = 4096
	const dispatchIters = 30
	const boundaryBatch = 1 << 13
	const boundaryIters = 5
	var sink atomic.Int64
	workloads := []struct {
		name string
		run  func(seq bool, threads int)
	}{
		{"pvwatts", func(seq bool, th int) {
			_, err := pvwatts.RunJStar(csv, pvwatts.RunOpts{
				Sequential: seq, Strategy: pick(seq, strat), Threads: th, NoDelta: true})
			must(err)
		}},
		{"matmult", func(seq bool, th int) {
			_, err := matmult.RunJStar(matmult.RunOpts{
				N: cfg.matN, Sequential: seq, Strategy: pick(seq, strat), Threads: th, Seed: 42})
			must(err)
		}},
		{"shortestpath", func(seq bool, th int) {
			_, err := shortestpath.RunJStar(shortestpath.RunOpts{
				Gen: gen, Sequential: seq, Strategy: pick(seq, strat), Threads: th})
			must(err)
		}},
		{"median", func(seq bool, th int) {
			_, err := median.RunJStar(median.RunOpts{
				N: cfg.medianN, Regions: 24, Sequential: seq, Strategy: pick(seq, strat),
				Threads: th, Seed: 42})
			must(err)
		}},
		{"dispatch", func(seq bool, th int) {
			for i := 0; i < dispatchIters; i++ {
				_, err := dispatchProgram(dispatchBatch, &sink).Execute(core.Options{
					Sequential: seq, Strategy: pick(seq, strat), Threads: th, Quiet: true})
				must(err)
			}
		}},
		{"step-boundary", func(seq bool, th int) {
			for i := 0; i < boundaryIters; i++ {
				_, err := boundaryProgram(boundaryBatch).Execute(core.Options{
					Sequential: seq, Strategy: pick(seq, strat), Threads: th, Quiet: true})
				must(err)
			}
		}},
	}
	point := func(name, strategy string, nproc, threads int, d time.Duration, base time.Duration, aff bool) {
		art.Speedup = append(art.Speedup, speedupRow{
			Name: name, Strategy: strategy, Gomaxprocs: nproc, Threads: threads,
			ElapsedNs: d.Nanoseconds(), Speedup: float64(base) / float64(d), Affinity: aff,
		})
		label := strategy
		if aff {
			label += "+aff"
		}
		fmt.Printf("%-14s %-12s %6d %12v %9.2fx\n",
			name, label, nproc, d.Round(time.Microsecond), float64(base)/float64(d))
	}
	bases := map[string]time.Duration{}
	for _, w := range workloads {
		w := w
		runtime.GOMAXPROCS(1)
		base := timeIt(cfg.repeats, func() { w.run(true, 1) })
		bases[w.name] = base
		point(w.name, "sequential", 1, 1, base, base, false)
		for _, np := range procs {
			np := np
			runtime.GOMAXPROCS(np)
			d := timeIt(cfg.repeats, func() { w.run(false, np) })
			point(w.name, strat.String(), np, np, d, base, false)
		}
	}
	// Table-affinity re-run (schema 7): the two microbenches again with
	// Options.TableAffinity on, against the same sequential baselines. The
	// apps are skipped — their firing work dwarfs boundary flushes, so
	// affinity would be in the noise; dispatch and step-boundary are exactly
	// the shard-routed fire/flush paths the mode rewires.
	for _, w := range []struct {
		name  string
		iters int
		prog  func() *core.Program
	}{
		{"dispatch", dispatchIters, func() *core.Program { return dispatchProgram(dispatchBatch, &sink) }},
		{"step-boundary", boundaryIters, func() *core.Program { return boundaryProgram(boundaryBatch) }},
	} {
		w := w
		for _, np := range procs {
			np := np
			runtime.GOMAXPROCS(np)
			d := timeIt(cfg.repeats, func() {
				for i := 0; i < w.iters; i++ {
					_, err := w.prog().Execute(core.Options{
						Strategy: strat, Threads: np, Quiet: true, TableAffinity: true})
					must(err)
				}
			})
			point(w.name, strat.String(), np, np, d, bases[w.name], true)
		}
	}
	runtime.GOMAXPROCS(origProcs)
	fmt.Println()

	var failures []string
	if minDispatch > 0 {
		gate := speedupRow{}
		for _, r := range art.Speedup {
			if r.Name != "dispatch" || r.Strategy == "sequential" || r.Affinity {
				continue
			}
			// Prefer the 4-proc point (the CI gate's contract); otherwise
			// keep the largest swept value.
			if r.Gomaxprocs == 4 || (gate.Gomaxprocs != 4 && r.Gomaxprocs > gate.Gomaxprocs) {
				gate = r
			}
		}
		switch {
		case gate.Name == "":
			failures = append(failures, "jstar-bench: -min-dispatch-speedup set but the sweep produced no parallel dispatch rows")
		case gate.Speedup < minDispatch:
			failures = append(failures, fmt.Sprintf(
				"jstar-bench: dispatch %s at %d procs is %.2fx sequential, below the -min-dispatch-speedup gate (%.2fx)",
				gate.Strategy, gate.Gomaxprocs, gate.Speedup, minDispatch))
		default:
			fmt.Printf("dispatch gate: %s at %d procs = %.2fx sequential (>= %.2fx)\n\n",
				gate.Strategy, gate.Gomaxprocs, gate.Speedup, minDispatch)
		}
	}
	if minAffinityRatio > 0 {
		var on, off speedupRow
		for _, r := range art.Speedup {
			if r.Name != "dispatch" || r.Strategy == "sequential" {
				continue
			}
			tgt := &off
			if r.Affinity {
				tgt = &on
			}
			if r.Gomaxprocs == 4 || (tgt.Gomaxprocs != 4 && r.Gomaxprocs > tgt.Gomaxprocs) {
				*tgt = r
			}
		}
		switch {
		case on.Name == "" || off.Name == "" || on.Gomaxprocs != off.Gomaxprocs:
			failures = append(failures,
				"jstar-bench: -min-affinity-ratio set but the sweep lacks matching affinity-on/off dispatch rows")
		case on.Speedup < minAffinityRatio*off.Speedup:
			failures = append(failures, fmt.Sprintf(
				"jstar-bench: affinity-on dispatch at %d procs is %.2fx sequential vs %.2fx affinity-off — below the -min-affinity-ratio gate (%.2f)",
				on.Gomaxprocs, on.Speedup, off.Speedup, minAffinityRatio))
		default:
			fmt.Printf("affinity gate: dispatch at %d procs = %.2fx on vs %.2fx off (ratio %.2f >= %.2f)\n\n",
				on.Gomaxprocs, on.Speedup, off.Speedup, on.Speedup/off.Speedup, minAffinityRatio)
		}
	}
	return failures
}

// pick resolves the sweep strategy for one point: Auto (the zero value,
// letting the Sequential flag rule) for baseline runs, the configured
// parallel strategy otherwise.
func pick(seq bool, strat exec.Strategy) exec.Strategy {
	if seq {
		return exec.Auto
	}
	return strat
}

// adaptiveRun is the -adaptive pass: the drifting two-phase workload
// (put-dominated ingest, then point-probe bursts against the accumulated
// table) executed once with the store plan frozen at start and once with
// ReplanEvery live re-planning, compared on mean per-window latency over
// the probe-burst phase. Each side keeps the best of cfg.repeats runs.
//
// The convergence gate always applies: the adaptive run must migrate
// Reading onto a hash-family point-probe backend, and must do so within
// the ingest phase plus two probe windows' worth of quiescent boundaries —
// a re-planner that converges later than that isn't following the drift.
// minSpeedup > 0 additionally gates on the measured latency win; CI leaves
// that off on shared runners and the artifact records the numbers instead.
func adaptiveRun(cfg config, art *smokeArtifact, minSpeedup float64) []string {
	fmt.Println("== Adaptive session (drift workload) ==")
	base := drift.RunOpts{
		Keys:            20_000,
		IngestWindows:   4,
		ProbeWindows:    6,
		ProbesPerWindow: 4_000,
		Strategy:        cfg.strategy,
		Threads:         runtime.NumCPU(),
		Seed:            42,
	}
	measure := func(replanEvery int) *drift.Result {
		var best *drift.Result
		for i := 0; i < cfg.repeats; i++ {
			opts := base
			opts.ReplanEvery = replanEvery
			res, err := drift.Run(opts)
			must(err)
			if best == nil || res.ProbeNanosMean() < best.ProbeNanosMean() {
				best = res
			}
		}
		return best
	}
	frozen := measure(0)
	adaptive := measure(1)

	rep := &adaptiveReport{
		Keys:             base.Keys,
		IngestWindows:    base.IngestWindows,
		ProbeWindows:     base.ProbeWindows,
		ProbesPerWindow:  base.ProbesPerWindow,
		ReplanEvery:      1,
		FrozenKind:       frozen.ReadingKind,
		AdaptiveKind:     adaptive.ReadingKind,
		KindAfterIngest:  adaptive.KindAfterIngest,
		FrozenProbeNs:    frozen.ProbeNanos,
		AdaptiveProbeNs:  adaptive.ProbeNanos,
		FrozenMeanNs:     frozen.ProbeNanosMean(),
		AdaptiveMeanNs:   adaptive.ProbeNanosMean(),
		StrategySwitches: len(adaptive.Stats.StrategySwitches),
	}
	if rep.AdaptiveMeanNs > 0 {
		rep.Speedup = rep.FrozenMeanNs / rep.AdaptiveMeanNs
	}
	for _, m := range adaptive.Stats.Migrations {
		rep.Migrations = append(rep.Migrations, migrationRow{
			Table: m.Table, From: m.From, To: m.To,
			Quiesce: m.Quiesce, Tuples: m.Tuples, Nanos: m.Nanos,
		})
		if m.Table == "Reading" && rep.ConvergeQuiesce == 0 {
			rep.ConvergeQuiesce = m.Quiesce
		}
	}
	art.Adaptive = rep

	fmt.Printf("frozen   Reading=%-10s probe-window mean %10v\n",
		rep.FrozenKind, time.Duration(rep.FrozenMeanNs).Round(time.Microsecond))
	fmt.Printf("adaptive Reading=%-10s probe-window mean %10v  (x%.2f, %d migrations, %d strategy switches)\n",
		rep.AdaptiveKind, time.Duration(rep.AdaptiveMeanNs).Round(time.Microsecond),
		rep.Speedup, len(rep.Migrations), rep.StrategySwitches)
	for _, m := range rep.Migrations {
		fmt.Printf("  quiesce %-3d %-8s %s -> %s (%d tuples, %v)\n",
			m.Quiesce, m.Table, m.From, m.To, m.Tuples,
			time.Duration(m.Nanos).Round(time.Microsecond))
	}

	var failures []string
	if frozen.Answers != adaptive.Answers || frozen.Checksum != adaptive.Checksum {
		failures = append(failures, fmt.Sprintf(
			"jstar-bench: adaptive drift run diverged from frozen (answers %d vs %d, checksum %d vs %d)",
			adaptive.Answers, frozen.Answers, adaptive.Checksum, frozen.Checksum))
	}
	if kn := gamma.KindName(rep.AdaptiveKind); kn != "hash" && kn != "inthash" {
		failures = append(failures, fmt.Sprintf(
			"jstar-bench: adaptive drift run left Reading on %q, want a hash-family point-probe backend",
			rep.AdaptiveKind))
	}
	// Convergence gate: the probe trickle must have pulled Reading onto a
	// point-probe backend before the probe bursts started — a re-planner
	// that only reacts once phase 2 hammers it isn't following the drift.
	if kn := gamma.KindName(rep.KindAfterIngest); kn != "hash" && kn != "inthash" {
		failures = append(failures, fmt.Sprintf(
			"jstar-bench: adaptive drift run entered the probe phase with Reading on %q, want a hash-family backend by the end of ingest",
			rep.KindAfterIngest))
	}
	if minSpeedup > 0 && rep.Speedup < minSpeedup {
		failures = append(failures, fmt.Sprintf(
			"jstar-bench: adaptive phase-2 speedup x%.2f below the -min-adaptive-speedup gate (x%.2f)",
			rep.Speedup, minSpeedup))
	}
	if len(failures) == 0 {
		fmt.Printf("adaptive gate: converged at quiesce %d, phase-2 x%.2f\n", rep.ConvergeQuiesce, rep.Speedup)
	}
	fmt.Println()
	return failures
}

// stepBoundarySweep runs the boundary microbench over slot counts and
// batch sizes (the cmd twin of BenchmarkStepBoundary) and prints/returns
// the rows for the artifact.
func stepBoundarySweep(cfg config) []boundaryRow {
	fmt.Println("-- step-boundary microbench (fan-out flush; boundary = insert+merge+delta share) --")
	fmt.Printf("%8s %8s %12s %10s %10s %10s %10s %10s\n",
		"threads", "batch", "time", "ns/tuple", "fire", "insert", "merge", "delta")
	var rows []boundaryRow
	threadSteps := []int{1, runtime.NumCPU()}
	if threadSteps[1] == 1 {
		threadSteps = threadSteps[:1]
	}
	for _, th := range threadSteps {
		for _, batch := range []int{1 << 10, 1 << 13} {
			strat := exec.ForkJoin
			if th == 1 {
				strat = exec.Sequential
			}
			var best time.Duration = 1<<62 - 1
			var st *core.RunStats
			for i := 0; i < cfg.repeats; i++ {
				start := time.Now()
				run, err := boundaryProgram(batch).Execute(core.Options{
					Strategy: strat, Threads: th, Quiet: true, PhaseStats: true})
				must(err)
				if d := time.Since(start); d < best {
					best, st = d, run.Stats()
				}
			}
			row := boundaryRow{
				Threads:      th,
				Batch:        batch,
				ElapsedNs:    best.Nanoseconds(),
				NsPerTuple:   float64(best.Nanoseconds()) / float64(2*batch),
				FireNs:       st.FireNanos,
				InsertNs:     st.InsertNanos,
				MergeNs:      st.MergeNanos,
				DeltaNs:      st.DeltaNanos,
				BoundaryFrac: st.SerialBoundaryFraction(),
			}
			rows = append(rows, row)
			d := func(ns int64) time.Duration { return time.Duration(ns).Round(time.Microsecond) }
			fmt.Printf("%8d %8d %12v %10.1f %10v %10v %10v %10v\n",
				th, batch, best.Round(time.Microsecond), row.NsPerTuple,
				d(row.FireNs), d(row.InsertNs), d(row.MergeNs), d(row.DeltaNs))
		}
	}
	return rows
}

// phasesTable prints the per-phase step breakdown for the three apps —
// where each strategy's time goes at the step boundary, and the serial
// fraction capping its speedup (the §6.3 breakdown generalised).
func phasesTable(cfg config) {
	fmt.Println("== Per-phase step breakdown (fire | insert | merge | delta, boundary = serial share) ==")
	threads := runtime.NumCPU()
	csv := pvwatts.GenerateCSV(cfg.pvYears, false, 42)
	gen := shortestpath.GenOpts{Vertices: cfg.spVertices, Extra: cfg.spExtra, Tasks: 24, Seed: 42}
	apps := []struct {
		name string
		run  func() *core.RunStats
	}{
		{"pvwatts", func() *core.RunStats {
			res, err := pvwatts.RunJStar(csv, pvwatts.RunOpts{
				Strategy: cfg.strategy, Threads: threads, PhaseStats: true})
			must(err)
			return res.Run.Stats()
		}},
		{"matmult", func() *core.RunStats {
			res, err := matmult.RunJStar(matmult.RunOpts{
				N: cfg.matN, Strategy: cfg.strategy, Threads: threads, Seed: 42, PhaseStats: true})
			must(err)
			return res.Run.Stats()
		}},
		{"shortestpath", func() *core.RunStats {
			res, err := shortestpath.RunJStar(shortestpath.RunOpts{
				Gen: gen, Strategy: cfg.strategy, Threads: threads, PhaseStats: true})
			must(err)
			return res.Run.Stats()
		}},
		{"median", func() *core.RunStats {
			res, err := median.RunJStar(median.RunOpts{
				N: cfg.medianN, Regions: 24, Strategy: cfg.strategy, Threads: threads,
				Seed: 42, PhaseStats: true})
			must(err)
			return res.Run.Stats()
		}},
	}
	fmt.Printf("%-14s %12s %10s %10s %10s %10s %10s\n",
		"program", "elapsed", "fire", "insert", "merge", "delta", "boundary")
	for _, app := range apps {
		var best time.Duration = 1<<62 - 1
		var st *core.RunStats
		for i := 0; i < cfg.repeats; i++ {
			start := time.Now()
			s := app.run()
			if d := time.Since(start); d < best {
				best, st = d, s
			}
		}
		d := func(ns int64) time.Duration { return time.Duration(ns).Round(time.Microsecond) }
		fmt.Printf("%-14s %12v %10v %10v %10v %10v %9.1f%%\n",
			app.name, best.Round(time.Microsecond), d(st.FireNanos), d(st.InsertNanos),
			d(st.MergeNanos), d(st.DeltaNanos), 100*st.SerialBoundaryFraction())
	}
	fmt.Println()
}

// --- Strategy shoot-out: the pluggable execution layer -----------------------

// strategiesTable times every app under every executor strategy at the
// host's CPU count — the engine-level counterpart of the paper's thesis
// that the parallelisation strategy is a runtime choice.
func strategiesTable(cfg config) {
	fmt.Println("== Executor strategies: same programs, pluggable engines ==")
	threads := runtime.NumCPU()
	strategies := []exec.Strategy{exec.Sequential, exec.ForkJoin, exec.Pipelined}
	fmt.Printf("%-14s", "program")
	for _, s := range strategies {
		fmt.Printf(" %14s", s)
	}
	fmt.Println()
	csv := pvwatts.GenerateCSV(cfg.pvYears, false, 42)
	gen := shortestpath.GenOpts{Vertices: cfg.spVertices, Extra: cfg.spExtra, Tasks: 24, Seed: 42}
	apps := []struct {
		name string
		run  func(s exec.Strategy)
	}{
		{"MatMult", func(s exec.Strategy) {
			_, err := matmult.RunJStar(matmult.RunOpts{N: cfg.matN, Strategy: s, Threads: threads, Seed: 42})
			must(err)
		}},
		{"PvWatts", func(s exec.Strategy) {
			_, err := pvwatts.RunJStar(csv, pvwatts.RunOpts{Strategy: s, Threads: threads, NoDelta: true})
			must(err)
		}},
		{"Dijkstra", func(s exec.Strategy) {
			_, err := shortestpath.RunJStar(shortestpath.RunOpts{Gen: gen, Strategy: s, Threads: threads})
			must(err)
		}},
		{"Median", func(s exec.Strategy) {
			_, err := median.RunJStar(median.RunOpts{N: cfg.medianN, Regions: 24, Strategy: s, Threads: threads, Seed: 42})
			must(err)
		}},
	}
	for _, app := range apps {
		fmt.Printf("%-14s", app.name)
		for _, s := range strategies {
			s := s
			t := timeIt(cfg.repeats, func() { app.run(s) })
			fmt.Printf(" %14v", t.Round(time.Microsecond))
		}
		fmt.Println()
	}
	fmt.Println()
}

// --- Store-plan tuning loop ---------------------------------------------------

// tunePlans is the -save-plan JSON schema: one suggested store plan per app.
type tunePlans map[string]gamma.StorePlan

// tunePass is the profile-guided two-run tuning loop over the real apps:
//
//	jstar-bench -save-plan plan.json    # run 1: measure, suggest, save
//	jstar-bench -store-plan plan.json   # run 2: replay the plan, compare
//
// Each app runs cfg.repeats times (minimum taken, counters from the
// fastest repetition); with -store-plan the saved per-app plan is applied
// through the app's StorePlan option, and the per-table report shows which
// backends the plan actually changed.
func tunePass(cfg config, loadPath, savePath string) {
	applied := tunePlans{}
	if loadPath != "" {
		data, err := os.ReadFile(loadPath)
		must(err)
		must(json.Unmarshal(data, &applied))
		fmt.Printf("== Store-plan tuning pass (replaying %s) ==\n", loadPath)
	} else {
		fmt.Println("== Store-plan tuning pass (baseline; save with -save-plan) ==")
	}
	threads := runtime.NumCPU()
	csv := pvwatts.GenerateCSV(cfg.pvYears, false, 42)
	gen := shortestpath.GenOpts{Vertices: cfg.spVertices, Extra: cfg.spExtra, Tasks: 24, Seed: 42}
	apps := []struct {
		name string
		run  func(plan gamma.StorePlan) *core.RunStats
	}{
		{"pvwatts", func(plan gamma.StorePlan) *core.RunStats {
			res, err := pvwatts.RunJStar(csv, pvwatts.RunOpts{
				Strategy: cfg.strategy, Threads: threads, StorePlan: plan})
			must(err)
			return res.Run.Stats()
		}},
		{"matmult", func(plan gamma.StorePlan) *core.RunStats {
			res, err := matmult.RunJStar(matmult.RunOpts{
				N: cfg.matN, Strategy: cfg.strategy, Threads: threads, StorePlan: plan, Seed: 42})
			must(err)
			return res.Run.Stats()
		}},
		{"shortestpath", func(plan gamma.StorePlan) *core.RunStats {
			res, err := shortestpath.RunJStar(shortestpath.RunOpts{
				Gen: gen, Strategy: cfg.strategy, Threads: threads, StorePlan: plan})
			must(err)
			return res.Run.Stats()
		}},
		{"median", func(plan gamma.StorePlan) *core.RunStats {
			res, err := median.RunJStar(median.RunOpts{
				N: cfg.medianN, Regions: 24, Strategy: cfg.strategy, Threads: threads,
				StorePlan: plan, Seed: 42})
			must(err)
			return res.Run.Stats()
		}},
	}
	suggested := tunePlans{}
	for _, app := range apps {
		plan := applied[app.name]
		var best time.Duration = 1<<62 - 1
		var st *core.RunStats
		for i := 0; i < cfg.repeats; i++ {
			start := time.Now()
			s := app.run(plan)
			if d := time.Since(start); d < best {
				best, st = d, s
			}
		}
		suggested[app.name] = st.SuggestStorePlan()
		fmt.Printf("%-14s %12v  (min of %d, %d tables planned)\n",
			app.name, best.Round(time.Microsecond), cfg.repeats, len(plan))
		fmt.Printf("  %-16s %-16s %10s %10s %8s  %s\n", "table", "kind", "puts", "dups", "queries", "suggested")
		for _, row := range tableRows(st) {
			marker := ""
			if row.Suggested != "" && row.Suggested != row.Kind {
				marker = " *"
			}
			fmt.Printf("  %-16s %-16s %10d %10d %8d  %s%s\n",
				row.Table, row.Kind, row.Puts, row.Dups, row.Queries, row.Suggested, marker)
		}
	}
	if savePath != "" {
		data, err := json.MarshalIndent(suggested, "", "  ")
		must(err)
		must(os.WriteFile(savePath, append(data, '\n'), 0o644))
		fmt.Printf("suggested store plans written to %s (replay with -store-plan)\n", savePath)
	}
	fmt.Println()
}
