package main

import (
	"encoding/json"
	"testing"
)

// TestArtifactSchemaVersion pins the BENCH artifact version: bump
// benchSchema (and this test) whenever a field is added, so downstream
// trajectory tooling can dispatch on it.
func TestArtifactSchemaVersion(t *testing.T) {
	if benchSchema != 8 {
		t.Fatalf("benchSchema = %d, want 8 (update the schema history comment and this pin together)", benchSchema)
	}
	if got := newArtifact(config{repeats: 3}).Schema; got != benchSchema {
		t.Fatalf("newArtifact schema = %d, want %d", got, benchSchema)
	}
}

// TestArtifactSchema3Compat: a schema-3 BENCH file (no speedup rows) must
// still unmarshal into the current artifact struct — the fields through
// schema 3 are append-only, and the schema-4 Speedup field stays empty.
func TestArtifactSchema3Compat(t *testing.T) {
	const schema3 = `{
  "schema": 3,
  "strategy": "auto",
  "gomaxprocs": 4,
  "numcpu": 4,
  "go_version": "go1.22.0",
  "repeats": 5,
  "runs": [
    {
      "name": "matmult",
      "threads": 4,
      "elapsed_ns": 12345678,
      "steps": 3,
      "total_fired": 9216,
      "fire_batches": 12,
      "mean_fire_chunk": 768.0,
      "ns_per_firing": 1339.5,
      "batch_hist": {"512-1023": 12},
      "fire_ns": 9000000,
      "insert_ns": 2000000,
      "merge_ns": 800000,
      "delta_ns": 500000,
      "boundary_frac": 0.27,
      "tables": [
        {"table": "Matrix", "kind": "dense3d:3,96,96", "puts": 18432, "dups": 0, "queries": 884736}
      ]
    }
  ],
  "step_boundary": [
    {"threads": 1, "batch": 1024, "elapsed_ns": 1000000, "ns_per_tuple": 488.0,
     "fire_ns": 300000, "insert_ns": 300000, "merge_ns": 200000, "delta_ns": 200000,
     "boundary_frac": 0.7}
  ]
}`
	var art smokeArtifact
	if err := json.Unmarshal([]byte(schema3), &art); err != nil {
		t.Fatalf("schema-3 artifact no longer parses: %v", err)
	}
	if art.Schema != 3 || len(art.Runs) != 1 || art.Runs[0].Name != "matmult" {
		t.Fatalf("schema-3 fields misparsed: %+v", art)
	}
	if art.Runs[0].BoundaryFrac != 0.27 || len(art.StepBoundary) != 1 {
		t.Fatalf("schema-3 phase fields misparsed: %+v", art)
	}
	if len(art.Speedup) != 0 {
		t.Fatalf("schema-3 artifact grew speedup rows: %+v", art.Speedup)
	}
}

// TestArtifactSchema4Compat: a schema-4 BENCH file (speedup rows, no
// adaptive report) must still unmarshal into the current artifact struct —
// the fields through schema 4 are append-only, and the schema-5 Adaptive
// field stays nil.
func TestArtifactSchema4Compat(t *testing.T) {
	const schema4 = `{
  "schema": 4,
  "strategy": "auto",
  "gomaxprocs": 4,
  "numcpu": 4,
  "go_version": "go1.22.0",
  "repeats": 5,
  "runs": [],
  "step_boundary": [],
  "speedup": [
    {"name": "dispatch", "strategy": "forkjoin", "gomaxprocs": 4, "threads": 4,
     "elapsed_ns": 1000000, "speedup": 2.5}
  ]
}`
	var art smokeArtifact
	if err := json.Unmarshal([]byte(schema4), &art); err != nil {
		t.Fatalf("schema-4 artifact no longer parses: %v", err)
	}
	if art.Schema != 4 || len(art.Speedup) != 1 || art.Speedup[0].Speedup != 2.5 {
		t.Fatalf("schema-4 fields misparsed: %+v", art)
	}
	if art.Adaptive != nil {
		t.Fatalf("schema-4 artifact grew an adaptive report: %+v", art.Adaptive)
	}
}

// TestArtifactSchema5Compat: a schema-5 BENCH file (adaptive report, no
// serve report) must still unmarshal into the current artifact struct —
// the fields through schema 5 are append-only, and the schema-6 Serve
// field stays nil.
func TestArtifactSchema5Compat(t *testing.T) {
	const schema5 = `{
  "schema": 5,
  "strategy": "auto",
  "gomaxprocs": 4,
  "numcpu": 4,
  "go_version": "go1.22.0",
  "repeats": 5,
  "runs": [],
  "step_boundary": [],
  "adaptive": {
    "keys": 20000,
    "ingest_windows": 4,
    "probe_windows": 4,
    "probes_per_window": 2000,
    "replan_every": 2,
    "frozen_kind": "columnar",
    "adaptive_kind": "inthash:1",
    "kind_after_ingest": "columnar",
    "frozen_probe_ns": [1000, 1100],
    "adaptive_probe_ns": [400, 500],
    "frozen_mean_ns": 1050,
    "adaptive_mean_ns": 450,
    "speedup": 2.33,
    "migrations": [
      {"table": "Reading", "from": "columnar", "to": "inthash:1",
       "quiesce": 5, "tuples": 20000, "nanos": 900000}
    ],
    "strategy_switches": 0,
    "converge_quiesce": 5
  }
}`
	var art smokeArtifact
	if err := json.Unmarshal([]byte(schema5), &art); err != nil {
		t.Fatalf("schema-5 artifact no longer parses: %v", err)
	}
	if art.Schema != 5 || art.Adaptive == nil || art.Adaptive.Speedup != 2.33 {
		t.Fatalf("schema-5 fields misparsed: %+v", art)
	}
	if len(art.Adaptive.Migrations) != 1 || art.Adaptive.Migrations[0].To != "inthash:1" {
		t.Fatalf("schema-5 migrations misparsed: %+v", art.Adaptive.Migrations)
	}
	if art.Serve != nil {
		t.Fatalf("schema-5 artifact grew a serve report: %+v", art.Serve)
	}
}

// TestArtifactSchema6Compat: a schema-6 BENCH file (serve report, no
// procs ladder, speedup rows without the affinity flag) must still
// unmarshal into the current artifact struct — the fields through schema 6
// are append-only; ProcsLadder stays nil and Affinity stays false.
func TestArtifactSchema6Compat(t *testing.T) {
	const schema6 = `{
  "schema": 6,
  "strategy": "auto",
  "gomaxprocs": 4,
  "numcpu": 4,
  "go_version": "go1.22.0",
  "repeats": 5,
  "runs": [],
  "step_boundary": [],
  "speedup": [
    {"name": "dispatch", "strategy": "forkjoin", "gomaxprocs": 4, "threads": 4,
     "elapsed_ns": 1000000, "speedup": 2.5}
  ],
  "serve": {
    "clients": 4, "batches": 25, "batch_rows": 64, "tuples": 6400,
    "requests": 120, "notifications": 100,
    "ingest": {"count": 100, "mean_nanos": 1000, "p50_nanos": 900,
               "p99_nanos": 2000, "p999_nanos": 3000, "max_nanos": 4000},
    "visibility": {"count": 100, "mean_nanos": 2000, "p50_nanos": 1800,
                   "p99_nanos": 4000, "p999_nanos": 6000, "max_nanos": 8000}
  }
}`
	var art smokeArtifact
	if err := json.Unmarshal([]byte(schema6), &art); err != nil {
		t.Fatalf("schema-6 artifact no longer parses: %v", err)
	}
	if art.Schema != 6 || art.Serve == nil || len(art.Speedup) != 1 {
		t.Fatalf("schema-6 fields misparsed: %+v", art)
	}
	if art.ProcsLadder != nil {
		t.Fatalf("schema-6 artifact grew a procs ladder: %v", art.ProcsLadder)
	}
	if art.Speedup[0].Affinity {
		t.Fatal("schema-6 speedup row misparsed as affinity")
	}
}

// TestArtifactSchema7Compat: a schema-7 BENCH file (affinity speedup rows
// and a procs ladder, no durability report) must still unmarshal into the
// current artifact struct — the fields through schema 7 are append-only,
// and the schema-8 Durability field stays nil.
func TestArtifactSchema7Compat(t *testing.T) {
	const schema7 = `{
  "schema": 7,
  "strategy": "auto",
  "gomaxprocs": 4,
  "numcpu": 4,
  "procs_ladder": [1, 2, 4],
  "go_version": "go1.22.0",
  "repeats": 5,
  "runs": [],
  "step_boundary": [],
  "speedup": [
    {"name": "dispatch", "strategy": "forkjoin", "gomaxprocs": 4, "threads": 4,
     "elapsed_ns": 1000000, "speedup": 2.5, "affinity": true}
  ]
}`
	var art smokeArtifact
	if err := json.Unmarshal([]byte(schema7), &art); err != nil {
		t.Fatalf("schema-7 artifact no longer parses: %v", err)
	}
	if art.Schema != 7 || len(art.ProcsLadder) != 3 || !art.Speedup[0].Affinity {
		t.Fatalf("schema-7 fields misparsed: %+v", art)
	}
	if art.Durability != nil {
		t.Fatalf("schema-7 artifact grew a durability report: %+v", art.Durability)
	}
}

// TestServeLoadSmoke runs the load generator end to end against an
// in-process loopback server with a tiny workload, checking the artifact
// section and that every gate passes.
func TestServeLoadSmoke(t *testing.T) {
	art := newArtifact(config{repeats: 1})
	failures := serveLoadRun(art, "", 2, 3, 8)
	if len(failures) != 0 {
		t.Fatalf("serve-load gates failed: %v", failures)
	}
	if art.Serve == nil {
		t.Fatal("no serve report recorded")
	}
	rep := art.Serve
	if rep.Tuples != 2*3*8 {
		t.Errorf("tuples = %d, want %d", rep.Tuples, 2*3*8)
	}
	if rep.Requests == 0 || rep.Notifications == 0 {
		t.Errorf("requests=%d notifications=%d, want non-zero", rep.Requests, rep.Notifications)
	}
	if rep.Ingest.Count != 2*3 || rep.Visibility.Count != 2*3 {
		t.Errorf("histogram counts ingest=%d visibility=%d, want %d", rep.Ingest.Count, rep.Visibility.Count, 2*3)
	}
	if rep.Visibility.P50Nanos < rep.Ingest.P50Nanos {
		t.Errorf("visibility p50 %d < ingest p50 %d: visibility covers ingest", rep.Visibility.P50Nanos, rep.Ingest.P50Nanos)
	}
	if data, err := json.Marshal(art); err != nil || !json.Valid(data) {
		t.Fatalf("artifact with serve report does not marshal: %v", err)
	}
}

// TestParseProcs covers the -procs flag parser.
func TestParseProcs(t *testing.T) {
	got, err := parseProcs("1, 2,4")
	if err != nil || len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 4 {
		t.Fatalf("parseProcs(\"1, 2,4\") = %v, %v", got, err)
	}
	for _, bad := range []string{"", "0", "1,x", "-2"} {
		if _, err := parseProcs(bad); err == nil {
			t.Errorf("parseProcs(%q) accepted", bad)
		}
	}
}
