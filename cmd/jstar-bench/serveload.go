package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"github.com/jstar-lang/jstar/internal/lang"
	"github.com/jstar-lang/jstar/internal/serve"
	"github.com/jstar-lang/jstar/internal/stats"
	"github.com/jstar-lang/jstar/internal/tuple"
)

// serveLoadSrc is the load-generator workload: pure streaming fan-out, so
// ingest throughput and boundary latency dominate, not rule complexity.
const serveLoadSrc = `
table Event(int n) orderby (Event)
table Out(int n, int v) orderby (Out)
order Event < Out

foreach (Event e) {
  put new Out(e.n, e.n * 2)
}
`

// serveReport is the -serve-load section of the BENCH artifact (schema 6):
// client-observed ingest round-trip and quiesce-visibility latency
// distributions over real sockets, plus the request/notification counts
// the CI smoke gates on.
type serveReport struct {
	Addr          string `json:"addr"`
	Clients       int    `json:"clients"`
	Batches       int    `json:"batches"` // per client
	BatchRows     int    `json:"batch_rows"`
	Tuples        int64  `json:"tuples"`
	Requests      int64  `json:"requests"`      // successful client requests
	Notifications int64  `json:"notifications"` // subscription wake-ups observed
	ElapsedNs     int64  `json:"elapsed_ns"`
	// Ingest is the PutBatch round-trip: last byte of the batch out →
	// server ack (tuples published into the ingress ring).
	Ingest stats.LatencySummary `json:"ingest"`
	// Visibility is quiesce-visibility: first byte of the batch out →
	// quiescent boundary covering it confirmed, i.e. when a query is
	// guaranteed to see the batch.
	Visibility stats.LatencySummary `json:"visibility"`
}

// serveLoadRun drives a jstar-serve instance with N concurrent clients
// over real sockets and fills art.Serve. addr names a running server
// ("http://host:port"); empty starts one in-process on a loopback socket
// (still through the full HTTP stack). The returned failures gate CI: a
// run that serves zero requests, sees zero subscription notifications, or
// loses tuples fails after the artifact is written.
func serveLoadRun(art *smokeArtifact, addr string, clients, batches, rows int) []string {
	fmt.Println("== Serve load (latency histograms) ==")
	var failures []string
	fail := func(format string, args ...any) {
		failures = append(failures, fmt.Sprintf("serve-load gate: "+format, args...))
	}
	base := addr
	var inproc *serve.Server
	if base == "" {
		inproc = serve.New(serve.Config{})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		must(err)
		hs := &http.Server{Handler: inproc.Handler()}
		go hs.Serve(ln)
		defer func() { hs.Close(); inproc.Close() }()
		base = "http://" + ln.Addr().String()
	}
	prog, err := lang.CompileSource(serveLoadSrc)
	must(err)
	eventSch := prog.Schema("Event")

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	tenant := fmt.Sprintf("bench-load-%d", os.Getpid())
	admin := serve.NewClient(base)
	if _, err := admin.CreateTenant(ctx, serve.TenantConfig{Name: tenant, Source: serveLoadSrc}); err != nil {
		fail("create tenant: %v", err)
		return failures
	}
	defer admin.CloseTenant(context.Background(), tenant)

	var (
		ingest, visibility stats.Histogram
		requests, tuples   int64
		notifications      int64
		mu                 sync.Mutex
		clientErrs         []error
	)
	count := func(n int64, dst *int64) {
		mu.Lock()
		*dst += n
		mu.Unlock()
	}
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := serve.NewClient(base)
			sub, err := cl.Subscribe(ctx, tenant, "Out", "")
			if err != nil {
				mu.Lock()
				clientErrs = append(clientErrs, fmt.Errorf("client %d subscribe: %w", c, err))
				mu.Unlock()
				return
			}
			count(1, &requests)
			since := sub.Version
			scratch := make([][]tuple.Value, rows)
			for b := 0; b < batches; b++ {
				// Distinct key space per client so every tuple is live.
				for i := 0; i < rows; i++ {
					scratch[i] = []tuple.Value{tuple.Int(int64(c)*1_000_000_000 + int64(b*rows+i))}
				}
				frames, err := serve.AppendFrame(nil, eventSch, scratch)
				if err == nil {
					t0 := time.Now()
					if err = cl.PutBinary(ctx, tenant, frames); err == nil {
						ingest.ObserveDuration(time.Since(t0))
						count(1, &requests)
						count(int64(rows), &tuples)
						// Quiesce confirms the batch is query-visible; its
						// return bounds the batch's visibility latency.
						if _, err = cl.Quiesce(ctx, tenant); err == nil {
							visibility.ObserveDuration(time.Since(t0))
							count(1, &requests)
						}
					}
				}
				if err != nil {
					mu.Lock()
					clientErrs = append(clientErrs, fmt.Errorf("client %d batch %d: %w", c, b, err))
					mu.Unlock()
					return
				}
				// The boundary we just forced changed Out, so the long-poll
				// returns immediately with the new generation — the
				// subscribe half of the smoke round-trip.
				if v, ok, err := cl.Poll(ctx, tenant, sub.ID, since, 10*time.Second); err == nil && ok {
					since = v
					count(1, &requests)
					count(1, &notifications)
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	for _, err := range clientErrs {
		fail("%v", err)
	}
	// End-to-end check: every distinct event must have produced its Out
	// tuple — the served state matches the injected stream.
	wantOut := int64(clients) * int64(batches) * int64(rows)
	raw, err := admin.Query(ctx, tenant, "Out", "")
	if err != nil {
		fail("final query: %v", err)
	} else {
		var outRows [][]any
		if err := json.Unmarshal(raw, &outRows); err != nil {
			fail("final query parse: %v", err)
		} else if int64(len(outRows)) != wantOut {
			fail("Out has %d rows, want %d", len(outRows), wantOut)
		}
		count(1, &requests)
	}
	if requests == 0 {
		fail("zero requests served")
	}
	if notifications == 0 {
		fail("zero subscription notifications delivered")
	}
	if inproc != nil && inproc.RequestsServed() == 0 {
		fail("in-process server measured zero requests")
	}

	rep := &serveReport{
		Addr:          base,
		Clients:       clients,
		Batches:       batches,
		BatchRows:     rows,
		Tuples:        tuples,
		Requests:      requests,
		Notifications: notifications,
		ElapsedNs:     elapsed.Nanoseconds(),
		Ingest:        ingest.Summary(),
		Visibility:    visibility.Summary(),
	}
	art.Serve = rep
	fmt.Printf("addr=%s clients=%d batches=%d rows=%d tuples=%d requests=%d notifications=%d elapsed=%v\n",
		rep.Addr, clients, batches, rows, tuples, requests, notifications, elapsed.Round(time.Millisecond))
	fmt.Print(stats.LatencyLine("ingest", rep.Ingest))
	fmt.Print(stats.LatencyLine("visibility", rep.Visibility))
	fmt.Println()
	return failures
}
