// Command jstar-check discharges the §4 causality proof obligations of a
// JStar source file: for every put, the new tuple must be in the present or
// future of the trigger; for every negative or aggregate query, the queried
// timestamp must be strictly in the past. The prover is a Fourier–Motzkin
// decision procedure standing in for the paper's SMT solvers.
//
//	jstar-check program.jstar
//
// Exit status 1 when any obligation cannot be proved (the compiler's
// "Stratification error" / warning behaviour).
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/jstar-lang/jstar/internal/causality"
	"github.com/jstar-lang/jstar/internal/lang"
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: jstar-check program.jstar")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	f, err := lang.Parse(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	prog, err := lang.Compile(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	specs, err := lang.ExtractSpecs(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	obs := causality.NewChecker(prog.PartialOrder()).Check(specs)
	fmt.Print(causality.Report(obs))
	if !causality.AllProved(obs) {
		os.Exit(1)
	}
}
