// Command jstar-serve hosts JStar programs as a multi-tenant network
// service: each tenant is a compiled program with a live incremental
// Session, and clients stream tuples in, force quiescent boundaries, run
// prefix queries, and subscribe to quiesced-state changes over HTTP.
//
// Over plain TCP the server speaks HTTP/1.1; give it -tls-cert/-tls-key
// and the stdlib negotiates HTTP/2 automatically. See the README's
// "Serving" section for the endpoint reference.
//
//	jstar-serve -addr :8080
//	jstar-serve -addr :8443 -tls-cert cert.pem -tls-key key.pem
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/jstar-lang/jstar/internal/serve"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8080", "listen address")
		maxTenants  = flag.Int("max-tenants", 64, "maximum concurrently hosted tenant sessions")
		maxInflight = flag.Int("max-inflight-puts", 32, "default per-tenant cap on concurrent ingestion requests")
		pollTimeout = flag.Duration("long-poll-timeout", 30*time.Second, "default subscription long-poll window")
		metricsCSV  = flag.String("metrics-csv", "", "append one CSV row per served request to this file")
		tlsCert     = flag.String("tls-cert", "", "TLS certificate file (enables HTTPS and HTTP/2)")
		tlsKey      = flag.String("tls-key", "", "TLS key file")
		drainWait   = flag.Duration("drain", 10*time.Second, "graceful shutdown window for in-flight requests")
	)
	flag.Parse()
	if err := run(*addr, *maxTenants, *maxInflight, *pollTimeout, *metricsCSV, *tlsCert, *tlsKey, *drainWait); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(addr string, maxTenants, maxInflight int, pollTimeout time.Duration, metricsCSV, tlsCert, tlsKey string, drainWait time.Duration) error {
	cfg := serve.Config{
		MaxTenants:      maxTenants,
		MaxInflightPuts: maxInflight,
		LongPollTimeout: pollTimeout,
	}
	if metricsCSV != "" {
		f, err := os.OpenFile(metricsCSV, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		cfg.MetricsCSV = f
	}
	srv := serve.New(cfg)
	defer srv.Close()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	hs := &http.Server{
		Handler: srv.Handler(),
		// Streaming endpoints (SSE, long-poll) must outlive short write
		// deadlines; bound only the header read.
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() {
		if tlsCert != "" || tlsKey != "" {
			log.Printf("jstar-serve: listening on https://%s (HTTP/2)", ln.Addr())
			errCh <- hs.ServeTLS(ln, tlsCert, tlsKey)
			return
		}
		log.Printf("jstar-serve: listening on http://%s", ln.Addr())
		errCh <- hs.Serve(ln)
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case s := <-sig:
		log.Printf("jstar-serve: %v, draining for up to %v", s, drainWait)
		ctx, cancel := context.WithTimeout(context.Background(), drainWait)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			return err
		}
		return nil
	}
}
