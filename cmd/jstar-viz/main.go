// Command jstar-viz renders a JStar program's dependency graph as Graphviz
// DOT: tables as blue rectangles, rules as red circles (the Fig 7 style).
// With -run, the program is executed with dataflow tracing and the observed
// rule->table put counts annotate the edges (the §1.5 "annotated dependency
// graphs of the program execution"). The traced execution goes through the
// public jstar surface (Execute is a Session wrapper), so the binary
// exercises the same lifecycle as every embedding application.
//
//	jstar-viz -run program.jstar | dot -Tpng > graph.png
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/jstar-lang/jstar"
	"github.com/jstar-lang/jstar/internal/lang"
	"github.com/jstar-lang/jstar/internal/stats"
)

func main() {
	doRun := flag.Bool("run", false, "execute the program and annotate edges with observed dataflow")
	maxSteps := flag.Int64("maxSteps", 1_000_000, "step limit for -run")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: jstar-viz [-run] program.jstar")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var prog *jstar.Program
	prog, err = lang.CompileSource(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var run *jstar.Run
	if *doRun {
		run, err = prog.Execute(jstar.Options{
			Sequential:    true,
			TraceDataflow: true,
			Quiet:         true,
			MaxSteps:      *maxSteps,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	fmt.Print(stats.ProgramDOT(prog, run))
}
