// Command jstar compiles and runs a JStar source file on the engine.
//
//	jstar [flags] program.jstar
//
// Flags mirror the paper's compiler options: -sequential generates a
// sequential run, -threads sets the fork/join pool size, -noDelta/-noGamma
// apply the §5.1 optimisations, and -check discharges the §4 causality
// proof obligations before running. -save-plan writes the run's suggested
// per-table store plan (from the observed usage statistics) as JSON, and
// -store-plan replays a saved plan — the profile-guided tuning loop: run
// once, save, run again tuned. The program runs through the public
// Session lifecycle (Start → Quiesce → Close); -timeout bounds it with a
// context deadline, so even a non-terminating program exits cleanly
// without relying on -maxSteps.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/jstar-lang/jstar"
	"github.com/jstar-lang/jstar/internal/causality"
	"github.com/jstar-lang/jstar/internal/exec"
	"github.com/jstar-lang/jstar/internal/lang"
	"github.com/jstar-lang/jstar/internal/stats"
)

func main() {
	sequential := flag.Bool("sequential", false, "generate sequential code")
	strategy := flag.String("strategy", "auto",
		"execution strategy: "+strings.Join(exec.StrategyNames(), "|"))
	threads := flag.Int("threads", 0, "fork/join pool size (0 = NumCPU)")
	noDelta := flag.String("noDelta", "", "comma-separated tables to bypass the Delta set")
	noGamma := flag.String("noGamma", "", "comma-separated trigger-only tables")
	check := flag.Bool("check", true, "verify causality obligations before running")
	runtimeCheck := flag.Bool("runtimeCheck", false, "enable the runtime causality checker")
	maxSteps := flag.Int64("maxSteps", 10_000_000, "abort after this many steps (0 = no limit)")
	timeout := flag.Duration("timeout", 0, "abort the run after this long (0 = no limit)")
	storePlan := flag.String("store-plan", "",
		"JSON store-plan file (table -> kind) to apply; kinds: "+strings.Join(jstar.StoreKinds(), "|"))
	savePlan := flag.String("save-plan", "",
		"write the run's suggested store plan as JSON to this file (replay it with -store-plan)")
	showStats := flag.Bool("stats", false, "print per-table usage statistics")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: jstar [flags] program.jstar")
		os.Exit(2)
	}
	// Validate before doing any work: an unknown -strategy must abort with
	// the legal names, never fall back to Auto silently.
	strat, err := jstar.ParseStrategy(*strategy)
	if err != nil {
		fatal(err)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	f, err := lang.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	var prog *jstar.Program
	prog, err = lang.Compile(f)
	if err != nil {
		fatal(err)
	}
	if *check {
		specs, err := lang.ExtractSpecs(f)
		if err != nil {
			fatal(err)
		}
		obs := causality.NewChecker(prog.PartialOrder()).Check(specs)
		if !causality.AllProved(obs) {
			fmt.Fprint(os.Stderr, causality.Report(obs))
			fmt.Fprintln(os.Stderr, "jstar: warning: unproved causality obligations (running anyway; use -runtimeCheck to trap violations)")
		}
	}
	opts := jstar.Options{
		Sequential:     *sequential,
		Strategy:       strat,
		Threads:        *threads,
		CheckCausality: *runtimeCheck,
		MaxSteps:       *maxSteps,
		// -stats buys the per-phase step breakdown too; the clock reads it
		// costs only matter on benchmark runs, which don't pass -stats.
		PhaseStats: *showStats,
	}
	if *noDelta != "" {
		opts.NoDelta = strings.Split(*noDelta, ",")
	}
	if *noGamma != "" {
		opts.NoGamma = strings.Split(*noGamma, ",")
	}
	if *storePlan != "" {
		// A bad plan (unknown table or kind) is rejected by Program.Start's
		// validation with the legal kinds listed, before anything runs.
		data, err := os.ReadFile(*storePlan)
		if err != nil {
			fatal(err)
		}
		if err := json.Unmarshal(data, &opts.StorePlan); err != nil {
			fatal(fmt.Errorf("jstar: -store-plan %s: %v", *storePlan, err))
		}
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	sess, err := prog.Start(ctx, opts)
	if err != nil {
		fatal(err)
	}
	qErr := sess.Quiesce(ctx)
	if err := sess.Close(); qErr == nil {
		qErr = err
	}
	run := sess.Run()
	for _, line := range run.Output() {
		fmt.Print(line)
	}
	if qErr != nil {
		fatal(qErr)
	}
	if *showStats {
		fmt.Fprintf(os.Stderr, "strategy: %s\n", run.StrategyName())
		fmt.Fprint(os.Stderr, stats.TableReport(run))
	}
	if *savePlan != "" {
		plan := run.Stats().SuggestStorePlan()
		data, err := json.MarshalIndent(plan, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*savePlan, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "store plan (%d tables) written to %s\n", len(plan), *savePlan)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
