package jstar_test

import (
	"context"
	"fmt"
	"log"

	"github.com/jstar-lang/jstar"
)

// ExampleSession shows the long-lived lifecycle: Start a program as an
// online service, inject external tuples with Put/PutBatch (which never
// wait for quiescence), Quiesce, and read the fixpoint back with Query
// and Snapshot.
func ExampleSession() {
	p := jstar.NewProgram()
	reading := p.Table("Reading",
		jstar.Cols(jstar.IntCol("sensor"), jstar.IntCol("celsius")),
		jstar.OrderBy(jstar.Lit("Reading")))
	over := p.Table("Overheat",
		jstar.Cols(jstar.IntCol("sensor"), jstar.IntCol("celsius")),
		jstar.OrderBy(jstar.Lit("Overheat")))
	p.Order("Reading", "Overheat")
	p.Rule("watch", reading, func(c *jstar.Ctx, r *jstar.Tuple) {
		if r.Int("celsius") > 90 {
			c.PutNew(over, r.Get("sensor"), r.Get("celsius"))
		}
	})

	sess, err := p.Start(context.Background(), jstar.Options{Sequential: true})
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	if err := sess.PutBatch(
		jstar.New(reading, jstar.Int(1), jstar.Int(40)),
		jstar.New(reading, jstar.Int(2), jstar.Int(95)),
		jstar.New(reading, jstar.Int(3), jstar.Int(101)),
	); err != nil {
		log.Fatal(err)
	}
	if err := sess.Quiesce(context.Background()); err != nil {
		log.Fatal(err)
	}

	for _, t := range sess.Snapshot(over) {
		fmt.Printf("sensor %d overheating at %d\n", t.Int("sensor"), t.Int("celsius"))
	}

	// The session stays open: later events incrementally extend the state.
	if err := sess.Put(jstar.New(reading, jstar.Int(1), jstar.Int(99))); err != nil {
		log.Fatal(err)
	}
	if err := sess.Quiesce(context.Background()); err != nil {
		log.Fatal(err)
	}
	sess.Query(over, jstar.Eq(jstar.Int(1)), func(t *jstar.Tuple) bool {
		fmt.Printf("sensor 1 alert: %d\n", t.Int("celsius"))
		return true
	})
	// Output:
	// sensor 2 overheating at 95
	// sensor 3 overheating at 101
	// sensor 1 alert: 99
}
