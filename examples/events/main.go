// Command events demonstrates JStar's event-driven programming model (§3):
// external input tuples arrive while the program runs, trigger rules, and
// ordered output is produced through a Println table whose side effects
// happen when its tuples leave the Delta set — in causal order, no matter
// how parallel the execution is (§6.2 fn 8's "kosher way of printing").
//
// The program is a tiny trading monitor: Price events stream in; a rule
// maintains a running maximum per symbol and emits an ordered alert line
// whenever a new high is seen.
//
// Ingestion uses the Session lifecycle: Program.Start runs the engine as
// an online service, the feed goroutine injects Price tuples with
// Session.Put (which never waits for quiescence — events are published
// into the ingress ring and absorbed while rules execute), and the main
// goroutine waits for the fixpoint with Quiesce. The legacy channel-based
// Run.ExecuteEvents still works and is a wrapper over the same machinery.
//
//	go run ./examples/events
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/jstar-lang/jstar"
)

func main() {
	p := jstar.NewProgram()
	// Timestamp-first orderby lists: everything at time t settles before
	// anything at time t+1.
	price := p.Table("Price",
		jstar.Cols(jstar.IntCol("t"), jstar.StrCol("sym"), jstar.IntCol("cents")),
		jstar.OrderBy(jstar.Seq("t"), jstar.Lit("Price")))
	high := p.Table("High",
		jstar.Cols(jstar.IntCol("t"), jstar.StrCol("sym"), jstar.IntCol("cents")),
		jstar.OrderBy(jstar.Seq("t"), jstar.Lit("High")))
	alert := p.PrintlnTable("Alert",
		jstar.OrderBy(jstar.Seq("line"), jstar.Lit("Alert")))
	p.Order("Price", "High", "Alert")

	p.Rule("watchHighs", price, func(c *jstar.Ctx, e *jstar.Tuple) {
		t, sym, cents := e.Int("t"), e.Str("sym"), e.Int("cents")
		// Previous high for this symbol: a query into the strict past.
		best := int64(-1)
		c.ForEach(high, jstar.Where(func(h *jstar.Tuple) bool {
			return h.Str("sym") == sym && h.Int("t") < t
		}), func(h *jstar.Tuple) bool {
			if h.Int("cents") > best {
				best = h.Int("cents")
			}
			return true
		})
		if cents > best {
			c.PutNew(high, jstar.Int(t), jstar.Str(sym), jstar.Int(cents))
			c.PutNew(alert, jstar.Str(fmt.Sprintf("t=%02d new high %s %d.%02d",
				t, sym, cents/100, cents%100)))
		}
	})

	ctx := context.Background()
	sess, err := p.Start(ctx, jstar.Options{Threads: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	feed := []struct {
		t     int64
		sym   string
		cents int64
	}{
		{1, "ACME", 1000}, {2, "GLOB", 500}, {3, "ACME", 990},
		{4, "ACME", 1020}, {5, "GLOB", 480}, {6, "GLOB", 510},
		{7, "ACME", 1019}, {8, "ACME", 1100},
	}
	done := make(chan error, 1)
	go func() {
		for _, e := range feed {
			if err := sess.Put(jstar.New(price,
				jstar.Int(e.t), jstar.Str(e.sym), jstar.Int(e.cents))); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	if err := <-done; err != nil {
		log.Fatal(err)
	}
	if err := sess.Quiesce(ctx); err != nil {
		log.Fatal(err)
	}
	run := sess.Run()
	for _, line := range run.Output() {
		fmt.Print(line)
	}
	fmt.Printf("events=%d alerts=%d steps=%d\n",
		run.Stats().Tables["Price"].Triggers.Load(),
		run.Gamma().Table(high).Len(), run.Stats().Steps)
}
