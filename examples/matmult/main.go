// Command matmult runs the paper's §6.4 naive matrix multiplication:
// row-request tuples fan out one task per output row, dot products use a
// summation reducer, and the Matrix table lives in native arrays.
//
//	go run ./examples/matmult -n 500 -threads 8
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"github.com/jstar-lang/jstar/internal/apps/matmult"
)

func main() {
	n := flag.Int("n", 300, "matrix dimension (paper: 1000)")
	threads := flag.Int("threads", 0, "fork/join pool size (0 = NumCPU)")
	boxed := flag.Bool("boxed", false, "use the boxed-tuple inner loop (§6.1's 21.9s version)")
	flag.Parse()

	start := time.Now()
	res, err := matmult.RunJStar(matmult.RunOpts{
		N: *n, Threads: *threads, Boxed: *boxed, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	jstarTime := time.Since(start)

	a, b := matmult.Inputs(*n, 42)
	start = time.Now()
	naive := matmult.Naive(a, b, *n)
	naiveTime := time.Since(start)
	start = time.Now()
	trans := matmult.Transposed(a, b, *n)
	transTime := time.Since(start)

	for i := range naive {
		if res.C[i] != naive[i] || trans[i] != naive[i] {
			log.Fatalf("PRODUCT MISMATCH at %d", i)
		}
	}
	fmt.Printf("n=%d boxed=%v\n", *n, *boxed)
	fmt.Printf("jstar:      %v (threads=%d, row tasks=%d)\n",
		jstarTime.Round(time.Millisecond), res.Run.Threads(), res.Run.Stats().MaxBatch)
	fmt.Printf("naive:      %v\n", naiveTime.Round(time.Millisecond))
	fmt.Printf("transposed: %v\n", transTime.Round(time.Millisecond))
	fmt.Println("products match")
}
