// Command median runs the paper's §6.6 median-finding program: an
// explicitly parallel distributed quickselect over a large array of random
// doubles, with the rolling two-iteration native-array Gamma store.
// Compares against the full-sort baseline (the paper's Java Arrays.sort
// program) and the sequential quickselect.
//
//	go run ./examples/median -n 10000000 -threads 8
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"github.com/jstar-lang/jstar/internal/apps/median"
)

func main() {
	n := flag.Int("n", 1000000, "array size (paper: 100,000,000)")
	regions := flag.Int("regions", 24, "partition tasks per iteration")
	threads := flag.Int("threads", 0, "fork/join pool size (0 = NumCPU)")
	seed := flag.Uint64("seed", 42, "data seed")
	flag.Parse()

	start := time.Now()
	res, err := median.RunJStar(median.RunOpts{
		N: *n, Regions: *regions, Threads: *threads, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	jstarTime := time.Since(start)

	vals := median.Values(*n, *seed)
	start = time.Now()
	want := median.SortBaseline(vals)
	sortTime := time.Since(start)
	start = time.Now()
	qs := median.Quickselect(vals, *seed)
	qsTime := time.Since(start)

	fmt.Printf("n=%d regions=%d\n", *n, *regions)
	fmt.Printf("jstar:       median=%v  %v (threads=%d, steps=%d)\n",
		res.Median, jstarTime.Round(time.Millisecond), res.Run.Threads(), res.Run.Stats().Steps)
	fmt.Printf("sort:        median=%v  %v\n", want, sortTime.Round(time.Millisecond))
	fmt.Printf("quickselect: median=%v  %v\n", qs, qsTime.Round(time.Millisecond))
	if res.Median != want || qs != want {
		log.Fatal("MEDIAN MISMATCH")
	}
	fmt.Println("all three agree")
}
