// Command pvwatts runs the paper's Fig 4 solar-power program on the public
// API: read an hourly CSV (synthesised in memory; the paper used a 192MB
// NREL PVWatts export) and print the mean power generated in each month.
// It demonstrates the paper's headline claim: the same program runs
// sequentially or in parallel, with different data structures, purely by
// changing options.
//
//	go run ./examples/pvwatts -years 1 -threads 4 -noDelta
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"time"

	"github.com/jstar-lang/jstar"
	"github.com/jstar-lang/jstar/internal/fastcsv"
	"github.com/jstar-lang/jstar/internal/pvgen"
	"github.com/jstar-lang/jstar/internal/reduce"
)

func main() {
	years := flag.Int("years", 1, "years of hourly data to synthesise")
	threads := flag.Int("threads", 0, "fork/join pool size (0 = NumCPU)")
	sequential := flag.Bool("sequential", false, "generate sequential code (-sequential)")
	noDelta := flag.Bool("noDelta", true, "apply -noDelta PvWatts (§5.1)")
	gammaHint := flag.String("gamma", "array", "PvWatts Gamma structure: default|hash|array")
	flag.Parse()

	csv := pvgen.CSV(pvgen.Generate(2000, *years, false, 42))
	fmt.Printf("input: %d years, %.1f MB CSV\n", *years, float64(len(csv))/1e6)

	p := jstar.NewProgram()
	req := p.Table("PvWattsRequest",
		jstar.Cols(jstar.StrCol("filename")), jstar.OrderBy(jstar.Lit("Req")))
	pv := p.Table("PvWatts",
		jstar.Cols(jstar.IntCol("year"), jstar.IntCol("month"), jstar.IntCol("day"),
			jstar.IntCol("hour"), jstar.IntCol("power")),
		jstar.OrderBy(jstar.Lit("PvWatts")))
	sum := p.Table("SumMonth",
		jstar.Cols(jstar.IntCol("year"), jstar.IntCol("month")),
		jstar.OrderBy(jstar.Lit("SumMonth")))
	p.Order("Req", "PvWatts", "SumMonth")

	switch *gammaHint {
	case "hash":
		p.GammaHint("PvWatts", jstar.HashStore(2))
	case "array":
		p.GammaHint("PvWatts", jstar.ArrayOfHashSets(1, 1, 12))
	}

	// foreach (PvWattsRequest req) { ...read PvWatts tuples from csv... }
	p.Rule("readCSV", req, func(c *jstar.Ctx, t *jstar.Tuple) {
		err := fastcsv.ReadRegion(csv, fastcsv.Region{Start: 0, End: len(csv)},
			func(rec *fastcsv.Record) error {
				y, _ := rec.Int(0)
				m, _ := rec.Int(1)
				d, _ := rec.Int(2)
				h, _ := rec.Int(3)
				w, err := rec.Int(4)
				if err != nil {
					return err
				}
				c.PutNew(pv, jstar.Int(y), jstar.Int(m), jstar.Int(d), jstar.Int(h), jstar.Int(w))
				return nil
			})
		if err != nil {
			panic(err)
		}
	})
	// foreach (PvWatts pv) { put new SumMonth(pv.year, pv.month) }
	p.Rule("monthly", pv, func(c *jstar.Ctx, t *jstar.Tuple) {
		c.PutNew(sum, t.Get("year"), t.Get("month"))
	})
	// foreach (SumMonth s) { Statistics over get PvWatts(s.year, s.month) }
	p.Rule("reduce", sum, func(c *jstar.Ctx, s *jstar.Tuple) {
		stats := reduce.NewStatistics()
		c.ForEach(pv, jstar.Eq(s.Get("year"), s.Get("month")), func(r *jstar.Tuple) bool {
			stats.Add(float64(r.Int("power")))
			return true
		})
		c.Printf("%d/%d: %.1f\n", s.Int("year"), s.Int("month"), stats.Mean())
	})
	p.Put(jstar.New(req, jstar.Str("large1000.csv")))

	opts := jstar.Options{Sequential: *sequential, Threads: *threads}
	if *noDelta {
		opts.NoDelta = []string{"PvWatts"}
	}
	start := time.Now()
	run, err := p.Execute(opts)
	if err != nil {
		log.Fatal(err)
	}
	lines := run.Output()
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Print(l)
	}
	fmt.Printf("threads=%d noDelta=%v gamma=%s elapsed=%v (steps=%d, puts=%d)\n",
		run.Threads(), *noDelta, *gammaHint, time.Since(start).Round(time.Millisecond),
		run.Stats().Steps, run.Stats().Tables["PvWatts"].Puts.Load())
}
