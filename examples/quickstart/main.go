// Command quickstart runs the paper's §3 Ship example on the public API:
// a Space Invaders ship recorded as timestamped immutable tuples, moved
// right by a rule until it reaches the screen edge.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"

	"github.com/jstar-lang/jstar"
)

func main() {
	p := jstar.NewProgram()

	// table Ship(int frame -> int x, int y, int dx, int dy)
	//   orderby (Int, seq frame)
	ship := p.Table("Ship",
		jstar.Cols(jstar.KeyInt("frame"), jstar.IntCol("x"), jstar.IntCol("y"),
			jstar.IntCol("dx"), jstar.IntCol("dy")),
		jstar.OrderBy(jstar.Lit("Int"), jstar.Seq("frame")))

	// foreach (Ship s) { if (s.x < 400) put new Ship(s.frame+1, s.x+150, ...) }
	p.Rule("moveRight", ship, func(c *jstar.Ctx, s *jstar.Tuple) {
		if s.Int("x") < 400 {
			c.PutNew(ship,
				jstar.Int(s.Int("frame")+1), jstar.Int(s.Int("x")+150),
				s.Get("y"), s.Get("dx"), s.Get("dy"))
		}
	})

	// put new Ship(0, 10, 10, 150, 0)
	p.Put(jstar.New(ship, jstar.Int(0), jstar.Int(10), jstar.Int(10),
		jstar.Int(150), jstar.Int(0)))

	// Parallel by default; the runtime causality checker is on to
	// demonstrate the law of causality (§4).
	run, err := p.Execute(jstar.Options{CheckCausality: true})
	if err != nil {
		log.Fatal(err)
	}

	type row struct{ frame, x int64 }
	var rows []row
	run.Gamma().Table(ship).Scan(func(t *jstar.Tuple) bool {
		rows = append(rows, row{t.Int("frame"), t.Int("x")})
		return true
	})
	sort.Slice(rows, func(i, j int) bool { return rows[i].frame < rows[j].frame })
	fmt.Println("frame  x")
	for _, r := range rows {
		fmt.Printf("%5d  %d\n", r.frame, r.x)
	}
	fmt.Printf("steps=%d tuples=%d elapsed=%v\n",
		run.Stats().Steps, run.Gamma().Len(), run.Stats().Elapsed)
}
