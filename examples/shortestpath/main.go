// Command shortestpath runs the paper's Fig 5 Dijkstra program: generate a
// random connected graph in parallel tasks, then let the Delta tree act as
// the priority queue. Compares the JStar run against the hand-coded
// binary-heap baseline.
//
//	go run ./examples/shortestpath -vertices 100000 -extra 200000 -threads 8
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"github.com/jstar-lang/jstar/internal/apps/shortestpath"
)

func main() {
	vertices := flag.Int("vertices", 50000, "graph vertices (paper: 1,000,000)")
	extra := flag.Int("extra", 100000, "extra random edges (paper: 1,000,000)")
	tasks := flag.Int("tasks", 24, "parallel graph-generation tasks")
	threads := flag.Int("threads", 0, "fork/join pool size (0 = NumCPU)")
	seed := flag.Uint64("seed", 42, "graph seed")
	flag.Parse()

	opts := shortestpath.RunOpts{
		Gen: shortestpath.GenOpts{
			Vertices: *vertices, Extra: *extra, Tasks: *tasks, Seed: *seed,
		},
		Threads: *threads,
	}
	start := time.Now()
	res, err := shortestpath.RunJStar(opts)
	if err != nil {
		log.Fatal(err)
	}
	jstarTime := time.Since(start)

	start = time.Now()
	edges := shortestpath.Generate(opts.Gen)
	want := shortestpath.Baseline(edges, *vertices)
	baseTime := time.Since(start)

	mismatches := 0
	var sum int64
	for v := range want {
		if res.Dist[v] != want[v] {
			mismatches++
		}
		sum += want[v]
	}
	fmt.Printf("vertices=%d edges=%d  sum(dist)=%d\n", *vertices, len(edges), sum)
	fmt.Printf("jstar:    %v (threads=%d, steps=%d)\n",
		jstarTime.Round(time.Millisecond), res.Run.Threads(), res.Run.Stats().Steps)
	fmt.Printf("baseline: %v (generate + heap dijkstra)\n", baseTime.Round(time.Millisecond))
	if mismatches != 0 {
		log.Fatalf("MISMATCH on %d vertices", mismatches)
	}
	fmt.Println("all distances match the baseline")
}
