module github.com/jstar-lang/jstar

go 1.24.0
