// Package drift is the adaptive-session workload: a two-phase stream
// whose access pattern changes mid-run, so a store plan frozen at start
// time is wrong for the second half. Phase 1 is put-dominated — sensor
// readings bulk-ingested window after window, with only a trickle of point
// probes. Phase 2 inverts: ingestion stops and the run becomes bursts of
// point probes against the accumulated readings. An adaptive session
// (Options.ReplanEvery > 0) watches the windowed counters drift, migrates
// the Reading table onto a point-probe backend at a quiescent boundary,
// and serves phase 2 from an O(1) keyed path; a frozen session keeps
// whatever the strategy default was. jstar-bench -adaptive runs both and
// reports the per-window phase-2 latency of each, which is the paper's
// profile-guided storage-selection loop (§1.5) closed at runtime instead
// of across runs.
package drift

import (
	"context"
	"fmt"
	"time"

	"github.com/jstar-lang/jstar/internal/core"
	"github.com/jstar-lang/jstar/internal/exec"
	"github.com/jstar-lang/jstar/internal/gamma"
	"github.com/jstar-lang/jstar/internal/rng"
	"github.com/jstar-lang/jstar/internal/tuple"
)

// RunOpts configure one drift run.
type RunOpts struct {
	Keys            int // distinct reading keys ingested per phase-1 window
	IngestWindows   int // phase-1 windows (put-dominated)
	ProbeWindows    int // phase-2 windows (point-query-dominated)
	ProbesPerWindow int // point probes per phase-2 window
	// ReplanEvery is forwarded to core.Options: 0 runs the frozen
	// baseline, >0 re-plans every that-many quiescent boundaries.
	ReplanEvery int
	Strategy    exec.Strategy
	Threads     int
	Seed        uint64
}

func (o *RunOpts) defaults() {
	if o.Keys <= 0 {
		o.Keys = 20000
	}
	if o.IngestWindows <= 0 {
		o.IngestWindows = 4
	}
	if o.ProbeWindows <= 0 {
		o.ProbeWindows = 6
	}
	if o.ProbesPerWindow <= 0 {
		o.ProbesPerWindow = 4000
	}
}

// Result carries the run's correctness digest and per-window timings.
type Result struct {
	Answers  int   // total Answer tuples (one per probe)
	Checksum int64 // order-independent digest over the Answer relation

	// Per-window wall times: a window is one PutBatch + Quiesce.
	IngestNanos []int64 // phase 1
	ProbeNanos  []int64 // phase 2

	// KindAfterIngest is the store kind backing Reading at the phase
	// boundary — the convergence gate: an adaptive session must have
	// followed the probe trickle onto a point-probe backend before the
	// probe bursts start.
	KindAfterIngest string
	ReadingKind     string // final store kind backing Reading
	Stats           *core.RunStats
}

// ProbeNanosMean is the phase-2 per-window mean — the number the adaptive
// gate compares between the frozen and adaptive runs.
func (r *Result) ProbeNanosMean() float64 {
	if len(r.ProbeNanos) == 0 {
		return 0
	}
	var sum int64
	for _, n := range r.ProbeNanos {
		sum += n
	}
	return float64(sum) / float64(len(r.ProbeNanos))
}

// Run executes the drifting workload on a session. The program:
//
//	table Reading(int key, int val)    // bulk-ingested sensor state
//	table Probe(int id, int key)       // point lookups, distinct ids
//	table Answer(int id, int key, int val)
//	rule on Probe: forall Reading(key, v) put Answer(id, key, v)
//
// Each phase-1 window ingests Keys fresh readings plus Keys/64 trickle
// probes (the live traffic that tells the windowed planner the table is
// point-probed); each phase-2 window is ProbesPerWindow probes over the
// full key range. Probe ids are globally unique so every probe contributes
// exactly one Answer and runs of any configuration are comparable by
// Checksum.
func Run(opts RunOpts) (*Result, error) {
	opts.defaults()
	p := core.NewProgram()
	rd := p.Table("Reading",
		[]tuple.Column{
			{Name: "key", Kind: tuple.KindInt},
			{Name: "val", Kind: tuple.KindInt},
		},
		[]tuple.OrderEntry{tuple.Lit("Reading")})
	pr := p.Table("Probe",
		[]tuple.Column{
			{Name: "id", Kind: tuple.KindInt},
			{Name: "key", Kind: tuple.KindInt},
		},
		[]tuple.OrderEntry{tuple.Lit("Probe")})
	an := p.Table("Answer",
		[]tuple.Column{
			{Name: "id", Kind: tuple.KindInt},
			{Name: "key", Kind: tuple.KindInt},
			{Name: "val", Kind: tuple.KindInt},
		},
		[]tuple.OrderEntry{tuple.Lit("Answer")})
	p.Order("Reading", "Probe", "Answer")
	p.Rule("probe", pr, func(c *core.Ctx, t *tuple.Tuple) {
		c.ForEach(rd, gamma.Query{Prefix: []tuple.Value{t.Field(1)}},
			func(r *tuple.Tuple) bool {
				c.PutNew(an, t.Field(0), r.Field(0), r.Field(1))
				return false
			})
	})

	s, err := p.Start(context.Background(), core.Options{
		Strategy:    opts.Strategy,
		Threads:     opts.Threads,
		ReplanEvery: opts.ReplanEvery,
		Quiet:       true,
	})
	if err != nil {
		return nil, err
	}
	defer s.Close()

	res := &Result{}
	r := rng.New(opts.Seed)
	probeID := int64(0)
	window := func(batch []*tuple.Tuple) (int64, error) {
		start := time.Now()
		if err := s.PutBatch(batch...); err != nil {
			return 0, err
		}
		if err := s.Quiesce(context.Background()); err != nil {
			return 0, err
		}
		return time.Since(start).Nanoseconds(), nil
	}

	// Phase 1: put-dominated ingest with a probe trickle. The probes are
	// interleaved (one per 64 readings) rather than appended, so any
	// absorption chunk of the window — the ingress ring hands a large
	// batch to the coordinator in ring-sized slices, each a quiescent
	// boundary of its own — carries the same put-dominated-but-point-probed
	// shape the whole window has. Each probe targets a key strictly
	// earlier in the stream, so it can never be absorbed ahead of its
	// reading.
	for w := 0; w < opts.IngestWindows; w++ {
		batch := make([]*tuple.Tuple, 0, opts.Keys+opts.Keys/64)
		base := int64(w * opts.Keys)
		for i := 0; i < opts.Keys; i++ {
			k := base + int64(i)
			batch = append(batch, tuple.New(rd, tuple.Int(k), tuple.Int(7*k+3)))
			if i%64 == 63 {
				batch = append(batch, tuple.New(pr,
					tuple.Int(probeID), tuple.Int(r.Int63n(k+1))))
				probeID++
			}
		}
		ns, err := window(batch)
		if err != nil {
			return nil, err
		}
		res.IngestNanos = append(res.IngestNanos, ns)
	}
	res.KindAfterIngest = s.Stats().StoreKinds["Reading"]

	// Phase 2: probe bursts over the full ingested range.
	total := int64(opts.IngestWindows * opts.Keys)
	for w := 0; w < opts.ProbeWindows; w++ {
		batch := make([]*tuple.Tuple, 0, opts.ProbesPerWindow)
		for i := 0; i < opts.ProbesPerWindow; i++ {
			batch = append(batch, tuple.New(pr, tuple.Int(probeID), tuple.Int(r.Int63n(total))))
			probeID++
		}
		ns, err := window(batch)
		if err != nil {
			return nil, err
		}
		res.ProbeNanos = append(res.ProbeNanos, ns)
	}

	for _, t := range s.Snapshot(an) {
		res.Answers++
		res.Checksum += 31*t.Int("id") + 7*t.Int("key") + t.Int("val")
	}
	if want := int(probeID); res.Answers != want {
		return nil, fmt.Errorf("drift: %d answers for %d probes", res.Answers, want)
	}
	res.Stats = s.Stats()
	res.ReadingKind = res.Stats.StoreKinds["Reading"]
	if err := s.Close(); err != nil {
		return nil, err
	}
	return res, nil
}
