package drift

import (
	"testing"

	"github.com/jstar-lang/jstar/internal/exec"
	"github.com/jstar-lang/jstar/internal/gamma"
)

// small keeps the test workload quick; correctness does not need volume,
// only enough per-window traffic to clear the re-planner's floor.
func small(replanEvery int, strat exec.Strategy) RunOpts {
	return RunOpts{
		Keys:            2000,
		IngestWindows:   3,
		ProbeWindows:    3,
		ProbesPerWindow: 800,
		ReplanEvery:     replanEvery,
		Strategy:        strat,
		Threads:         4,
		Seed:            42,
	}
}

// TestAdaptiveMatchesFrozen: the adaptive run must produce exactly the
// Answer relation the frozen run does — migration and strategy switches
// change the physical layout, never the derived facts.
func TestAdaptiveMatchesFrozen(t *testing.T) {
	for _, strat := range []exec.Strategy{exec.Sequential, exec.ForkJoin} {
		t.Run(strat.String(), func(t *testing.T) {
			frozen, err := Run(small(0, strat))
			if err != nil {
				t.Fatal(err)
			}
			adaptive, err := Run(small(1, strat))
			if err != nil {
				t.Fatal(err)
			}
			if frozen.Answers != adaptive.Answers || frozen.Checksum != adaptive.Checksum {
				t.Fatalf("adaptive (answers=%d sum=%d) != frozen (answers=%d sum=%d)",
					adaptive.Answers, adaptive.Checksum, frozen.Answers, frozen.Checksum)
			}
			if len(frozen.Stats.Migrations) != 0 {
				t.Fatalf("frozen run migrated: %+v", frozen.Stats.Migrations)
			}
		})
	}
}

// TestAdaptiveConverges: the windowed planner must move Reading onto a
// point-probe backend (the hash family) and log the migration — the CI
// smoke gate asserts the same through jstar-bench -adaptive.
func TestAdaptiveConverges(t *testing.T) {
	res, err := Run(small(1, exec.Sequential))
	if err != nil {
		t.Fatal(err)
	}
	if kn := gamma.KindName(res.ReadingKind); kn != "inthash" && kn != "hash" {
		t.Fatalf("Reading converged to %q, want a hash-family kind (migrations: %+v)",
			res.ReadingKind, res.Stats.Migrations)
	}
	found := false
	for _, m := range res.Stats.Migrations {
		if m.Table == "Reading" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no Reading migration logged: %+v", res.Stats.Migrations)
	}
	if len(res.ProbeNanos) != 3 || len(res.IngestNanos) != 3 {
		t.Fatalf("window timings: ingest=%d probe=%d", len(res.IngestNanos), len(res.ProbeNanos))
	}
}
