// Package matmult implements the paper's naive matrix multiplication case
// study (§6.4, Fig 11): each multiplication is requested by a tuple, which
// generates one row-request tuple per output row; each row request loops
// over the columns with a summation reducer computing dot products.
//
// The Matrix table
//
//	table Matrix(int mat, int row, int col -> int value)
//
// uses the "native-arrays" Gamma optimisation: dense int keys map onto flat
// Go arrays (the paper's Java 2D int arrays). A Boxed mode routes the inner
// loop through materialised tuples instead — reproducing the §6.1
// observation that XText's boxed Integers made the generated program 2.7x
// slower (21.9s vs 8.1s) until the loop used primitive ints.
//
// Baselines: the naive hand-coded triple loop (7.5s in the paper) and the
// cache-friendly transposed variant (1.0s).
package matmult

import (
	"github.com/jstar-lang/jstar/internal/core"
	"github.com/jstar-lang/jstar/internal/exec"
	"github.com/jstar-lang/jstar/internal/gamma"
	"github.com/jstar-lang/jstar/internal/reduce"
	"github.com/jstar-lang/jstar/internal/rng"
	"github.com/jstar-lang/jstar/internal/tuple"
)

// Matrix ids within the Matrix table.
const (
	MatA = 0
	MatB = 1
	MatC = 2
)

// RunOpts configure a JStar matrix multiplication run.
type RunOpts struct {
	N          int // multiply two NxN matrices
	Sequential bool
	Strategy   exec.Strategy // execution engine (Auto picks from run stats)
	Threads    int
	Boxed      bool // route the inner loop through boxed tuples (§6.1)
	// StorePlan replays a profile-guided per-table store plan. The Matrix
	// table's dense3d hint survives a replay: the planner always carries
	// non-replannable specialised backends through to its suggested plans.
	StorePlan gamma.StorePlan
	Seed      uint64
	// PhaseStats records the per-phase step breakdown (jstar-bench -phases
	// and the smoke artifact turn it on).
	PhaseStats bool
}

// Result carries the product matrix (flat, row-major) and diagnostics.
type Result struct {
	C   []int64
	Run *core.Run
}

// Inputs generates the two deterministic input matrices, flat row-major.
func Inputs(n int, seed uint64) (a, b []int64) {
	r := rng.New(seed)
	a = make([]int64, n*n)
	b = make([]int64, n*n)
	for i := range a {
		a[i] = r.Int63n(100)
		b[i] = r.Int63n(100)
	}
	return a, b
}

// RunJStar executes the JStar program: MultRequest -> N RowReq tuples ->
// dot-product loops with a summation reducer.
func RunJStar(opts RunOpts) (*Result, error) {
	n := opts.N
	p := core.NewProgram()
	req := p.Table("MultRequest",
		[]tuple.Column{{Name: "n", Kind: tuple.KindInt}},
		[]tuple.OrderEntry{tuple.Lit("Req")})
	rowReq := p.Table("RowReq",
		[]tuple.Column{{Name: "row", Kind: tuple.KindInt}},
		[]tuple.OrderEntry{tuple.Lit("Row")})
	mat := p.Table("Matrix",
		[]tuple.Column{
			{Name: "mat", Kind: tuple.KindInt, Key: true},
			{Name: "row", Kind: tuple.KindInt, Key: true},
			{Name: "col", Kind: tuple.KindInt, Key: true},
			{Name: "value", Kind: tuple.KindInt},
		},
		[]tuple.OrderEntry{tuple.Lit("Matrix")})
	p.Order("Matrix", "Req", "Row")
	p.GammaHint("Matrix", gamma.NewDense3D(3, n, n))

	// foreach (MultRequest r): one RowReq per output row. All RowReq share
	// one causal equivalence class, so they form a single parallel batch —
	// "each row of the output matrix is a separate task".
	p.Rule("requestRows", req, func(c *core.Ctx, t *tuple.Tuple) {
		for row := int64(0); row < int64(n); row++ {
			c.PutNew(rowReq, tuple.Int(row))
		}
	})

	// foreach (RowReq row): nested loop with a summation reducer.
	dotProducts := p.Rule("dotProducts", rowReq, func(c *core.Ctx, t *tuple.Tuple) {
		row := t.Int("row")
		store := c.GammaTable(mat).(*gamma.Dense3D)
		if opts.Boxed {
			// Boxed mode: read operands through materialised tuples (the
			// XText-generated Integer-boxing inner loop of §6.1).
			for col := int64(0); col < int64(n); col++ {
				sum := &reduce.SumInt{}
				for k := int64(0); k < int64(n); k++ {
					var av, bv int64
					store.Select(gamma.Query{Prefix: []tuple.Value{
						tuple.Int(MatA), tuple.Int(row), tuple.Int(k)}},
						func(tp *tuple.Tuple) bool { av = tp.Int("value"); return false })
					store.Select(gamma.Query{Prefix: []tuple.Value{
						tuple.Int(MatB), tuple.Int(k), tuple.Int(col)}},
						func(tp *tuple.Tuple) bool { bv = tp.Int("value"); return false })
					sum.Add(av * bv)
				}
				store.SetInt(MatC, row, col, sum.Result())
			}
			return
		}
		// Primitive mode: the corrected generated code reads the operand
		// matrices through direct native-array views (§6.4); only the
		// result cells go through the store's atomic writer.
		pa := store.Plane(MatA)
		pb := store.Plane(MatB)
		for col := int64(0); col < int64(n); col++ {
			sum := &reduce.SumInt{}
			for k := int64(0); k < int64(n); k++ {
				sum.Add(pa[row*int64(n)+k] * pb[k*int64(n)+col])
			}
			store.SetInt(MatC, row, col, sum.Result())
		}
	})
	if !opts.Boxed {
		// Batch body: one store downcast and one pair of operand-plane views
		// per chunk of RowReq firings instead of per row — the vectorisable
		// inner loop the batched dispatch path exists for. Boxed mode keeps
		// the per-tuple body only: it exists to reproduce §6.1's slow path.
		dotProducts.BatchBody = func(c *core.Ctx, ts []*tuple.Tuple) {
			store := c.GammaTable(mat).(*gamma.Dense3D)
			pa := store.Plane(MatA)
			pb := store.Plane(MatB)
			for _, t := range ts {
				c.Bind(t)
				row := t.Int("row")
				for col := int64(0); col < int64(n); col++ {
					sum := &reduce.SumInt{}
					for k := int64(0); k < int64(n); k++ {
						sum.Add(pa[row*int64(n)+k] * pb[k*int64(n)+col])
					}
					store.SetInt(MatC, row, col, sum.Result())
				}
			}
		}
	}

	a, b := Inputs(n, opts.Seed)
	// Load the operand matrices as initial tuples. -noDelta Matrix: they
	// are never rule triggers, so they go straight into Gamma (§5.1).
	for i := int64(0); i < int64(n); i++ {
		for j := int64(0); j < int64(n); j++ {
			p.Put(tuple.New(mat, tuple.Int(MatA), tuple.Int(i), tuple.Int(j), tuple.Int(a[i*int64(n)+j])))
			p.Put(tuple.New(mat, tuple.Int(MatB), tuple.Int(i), tuple.Int(j), tuple.Int(b[i*int64(n)+j])))
		}
	}
	p.Put(tuple.New(req, tuple.Int(int64(n))))

	run, err := p.Execute(core.Options{
		Sequential: opts.Sequential,
		Strategy:   opts.Strategy,
		Threads:    opts.Threads,
		NoDelta:    []string{"Matrix"},
		StorePlan:  opts.StorePlan,
		Quiet:      true,
		PhaseStats: opts.PhaseStats,
	})
	if err != nil {
		return nil, err
	}
	store := run.Gamma().Table(mat).(*gamma.Dense3D)
	out := make([]int64, n*n)
	for i := int64(0); i < int64(n); i++ {
		for j := int64(0); j < int64(n); j++ {
			v, _ := store.GetInt(MatC, i, j)
			out[i*int64(n)+j] = v
		}
	}
	return &Result{C: out, Run: run}, nil
}

// Naive is the hand-coded naive triple loop (row-major B accesses stride N:
// the paper's 7.5s Java baseline).
func Naive(a, b []int64, n int) []int64 {
	c := make([]int64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var sum int64
			for k := 0; k < n; k++ {
				sum += a[i*n+k] * b[k*n+j]
			}
			c[i*n+j] = sum
		}
	}
	return c
}

// Transposed transposes B first so the inner loop walks both operands
// sequentially (the paper's 1.0s cache-friendly baseline).
func Transposed(a, b []int64, n int) []int64 {
	bt := make([]int64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			bt[j*n+i] = b[i*n+j]
		}
	}
	c := make([]int64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var sum int64
			ar := a[i*n : i*n+n]
			br := bt[j*n : j*n+n]
			for k := 0; k < n; k++ {
				sum += ar[k] * br[k]
			}
			c[i*n+j] = sum
		}
	}
	return c
}
