package matmult

import (
	"testing"
)

func eq(t *testing.T, got, want []int64, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: len %d vs %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: element %d = %d, want %d", label, i, got[i], want[i])
		}
	}
}

func TestNaiveKnownProduct(t *testing.T) {
	// [1 2; 3 4] x [5 6; 7 8] = [19 22; 43 50]
	a := []int64{1, 2, 3, 4}
	b := []int64{5, 6, 7, 8}
	eq(t, Naive(a, b, 2), []int64{19, 22, 43, 50}, "naive 2x2")
}

func TestTransposedMatchesNaive(t *testing.T) {
	for _, n := range []int{1, 2, 7, 32} {
		a, b := Inputs(n, 9)
		eq(t, Transposed(a, b, n), Naive(a, b, n), "transposed")
	}
}

func TestJStarMatchesBaseline(t *testing.T) {
	for _, n := range []int{1, 4, 16, 40} {
		a, b := Inputs(n, 7)
		want := Naive(a, b, n)
		for _, opts := range []RunOpts{
			{N: n, Sequential: true, Seed: 7},
			{N: n, Threads: 4, Seed: 7},
		} {
			res, err := RunJStar(opts)
			if err != nil {
				t.Fatal(err)
			}
			eq(t, res.C, want, "jstar")
		}
	}
}

func TestBoxedMatchesPrimitive(t *testing.T) {
	res, err := RunJStar(RunOpts{N: 12, Threads: 2, Boxed: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := RunJStar(RunOpts{N: 12, Threads: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	eq(t, res.C, fast.C, "boxed vs primitive")
}

func TestRowTasksFormOneBatch(t *testing.T) {
	res, err := RunJStar(RunOpts{N: 24, Threads: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Run.Stats()
	// Only the request and the 24 RowReq tuples travel the Delta tree, and
	// all RowReqs execute as one parallel batch.
	if st.MaxBatch != 24 {
		t.Errorf("MaxBatch = %d, want 24 (one task per output row)", st.MaxBatch)
	}
	if st.Tables["RowReq"].Triggers.Load() != 24 {
		t.Errorf("RowReq triggers = %d", st.Tables["RowReq"].Triggers.Load())
	}
	// Matrix tuples bypass Delta entirely (-noDelta): steps stay tiny.
	if st.Steps > 3 {
		t.Errorf("steps = %d; expected only Req + RowReq batches", st.Steps)
	}
}

func TestInputsDeterministic(t *testing.T) {
	a1, b1 := Inputs(8, 5)
	a2, b2 := Inputs(8, 5)
	eq(t, a1, a2, "inputs a")
	eq(t, b1, b2, "inputs b")
}
