package matmult

import "testing"

// TestSuggestStorePlanGolden pins the planner on recorded MatMult
// statistics: the Matrix table's dense3d hint is a manually parameterised
// backend the planner must never override — its rules downcast the store
// to *gamma.Dense3D — so the suggested plan omits it entirely. That
// omission is what makes a saved plan safe to replay at a different
// problem size: the GammaHint (which knows the current n) re-establishes
// the dense store, where a frozen "dense3d:3,16,16" spec would win over
// the hint and index out of range.
func TestSuggestStorePlanGolden(t *testing.T) {
	res, err := RunJStar(RunOpts{N: 16, Sequential: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	plan := res.Run.Stats().SuggestStorePlan()
	if spec, ok := plan["Matrix"]; ok {
		t.Errorf(`plan["Matrix"] = %q, want no entry (non-replannable hint)`, spec)
	}
	// Replaying at a LARGER size must still run on the hint's dense store.
	tuned, err := RunJStar(RunOpts{N: 24, Sequential: true, Seed: 7, StorePlan: plan})
	if err != nil {
		t.Fatalf("replaying %v at n=24: %v", plan, err)
	}
	if got := tuned.Run.Stats().StoreKinds["Matrix"]; got != "dense3d:3,24,24" {
		t.Errorf("replayed Matrix backend = %q, want dense3d:3,24,24", got)
	}
	ref, err := RunJStar(RunOpts{N: 24, Sequential: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.C {
		if ref.C[i] != tuned.C[i] {
			t.Fatalf("tuned product differs at %d: %d vs %d", i, tuned.C[i], ref.C[i])
		}
	}
}
