// Package median implements the paper's Median-Finding case study (§6.6):
// find the median of a large array of random doubles with an explicitly
// parallel algorithm. A controller chooses a global pivot and divides the
// active window into N regions; each region partitions its slice around the
// pivot and reports partition sizes back; the controller then recurses into
// the part that must contain the median until one value remains.
//
// The Data table
//
//	table Data(int iter, int index -> double value)
//	  orderby (Int, seq iter, Data, seq index)
//
// uses the rolling two-iteration native array (RollingFloatArray): rules
// only touch iter and iter+1, so only two copies exist — the paper's
// combination of the native-arrays optimisation with Gamma garbage
// collection. Data tuples are not triggers, so -noDelta applies.
//
// Baselines: full sort (the paper's Java Arrays.sort program) and a
// sequential median-of-quickselect (the paper notes the JStar variant
// recursing only into the median half made it 2x faster than the sort).
package median

import (
	"errors"
	"sort"

	"github.com/jstar-lang/jstar/internal/core"
	"github.com/jstar-lang/jstar/internal/exec"
	"github.com/jstar-lang/jstar/internal/gamma"
	"github.com/jstar-lang/jstar/internal/rng"
	"github.com/jstar-lang/jstar/internal/tuple"
)

// RunOpts configure a JStar median run.
type RunOpts struct {
	N          int // array size (the paper used 100 million)
	Regions    int // partition tasks per iteration (default 24)
	Sequential bool
	Strategy   exec.Strategy // execution engine (Auto picks from run stats)
	Threads    int
	Seed       uint64
	MaxSteps   int64 // safety valve for tests (0 = none)
	// StorePlan replays a profile-guided per-table store plan. The Data
	// table's RollingFloatArray hint is non-replannable (the rules downcast
	// the store), so suggested plans omit it and replay safely at any N.
	StorePlan gamma.StorePlan
	// PhaseStats records the per-phase step breakdown (jstar-bench -phases
	// and the speedup sweep set it).
	PhaseStats bool
}

// Result carries the found median and run diagnostics.
type Result struct {
	Median float64
	Run    *core.Run
}

// Values generates the deterministic input array.
func Values(n int, seed uint64) []float64 {
	r := rng.New(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = r.Float64()
	}
	return out
}

// RunJStar executes the distributed quickselect on the engine.
func RunJStar(opts RunOpts) (*Result, error) {
	n := opts.N
	if opts.Regions < 1 {
		opts.Regions = 24
	}
	regions := int64(opts.Regions)
	p := core.NewProgram()

	data := p.Table("Data",
		[]tuple.Column{
			{Name: "iter", Kind: tuple.KindInt, Key: true},
			{Name: "index", Kind: tuple.KindInt, Key: true},
			{Name: "value", Kind: tuple.KindFloat},
		},
		[]tuple.OrderEntry{tuple.Lit("Int"), tuple.Seq("iter"), tuple.Lit("Data"), tuple.Seq("index")})
	ctrl := p.Table("Ctrl",
		[]tuple.Column{
			{Name: "iter", Kind: tuple.KindInt, Key: true},
			{Name: "start", Kind: tuple.KindInt},
			{Name: "end", Kind: tuple.KindInt},
			{Name: "k", Kind: tuple.KindInt},
		},
		[]tuple.OrderEntry{tuple.Lit("Int"), tuple.Seq("iter"), tuple.Lit("CtrlA")})
	scan := p.Table("Scan",
		[]tuple.Column{
			{Name: "iter", Kind: tuple.KindInt},
			{Name: "region", Kind: tuple.KindInt},
			{Name: "lo", Kind: tuple.KindInt},
			{Name: "hi", Kind: tuple.KindInt},
			{Name: "pivot", Kind: tuple.KindFloat},
		},
		[]tuple.OrderEntry{tuple.Lit("Int"), tuple.Seq("iter"), tuple.Lit("ScanB"), tuple.Par("region")})
	count := p.Table("Count",
		[]tuple.Column{
			{Name: "iter", Kind: tuple.KindInt},
			{Name: "region", Kind: tuple.KindInt},
			{Name: "lows", Kind: tuple.KindInt},
			{Name: "eqs", Kind: tuple.KindInt},
		},
		[]tuple.OrderEntry{tuple.Lit("Int"), tuple.Seq("iter"), tuple.Lit("CountC")})
	gather := p.Table("Gather",
		[]tuple.Column{{Name: "iter", Kind: tuple.KindInt}},
		[]tuple.OrderEntry{tuple.Lit("Int"), tuple.Seq("iter"), tuple.Lit("GatherD")})
	move := p.Table("Move",
		[]tuple.Column{
			{Name: "iter", Kind: tuple.KindInt},
			{Name: "region", Kind: tuple.KindInt},
			{Name: "lo", Kind: tuple.KindInt},
			{Name: "hi", Kind: tuple.KindInt},
			{Name: "pivot", Kind: tuple.KindFloat},
			{Name: "dstLow", Kind: tuple.KindInt},
			{Name: "dstEq", Kind: tuple.KindInt},
			{Name: "dstHigh", Kind: tuple.KindInt},
			{Name: "nextStart", Kind: tuple.KindInt},
			{Name: "nextEnd", Kind: tuple.KindInt},
			{Name: "nextK", Kind: tuple.KindInt},
			{Name: "found", Kind: tuple.KindBool},
		},
		[]tuple.OrderEntry{tuple.Lit("Int"), tuple.Seq("iter"), tuple.Lit("MoveE"), tuple.Par("region")})
	result := p.Table("Result",
		[]tuple.Column{{Name: "value", Kind: tuple.KindFloat}},
		[]tuple.OrderEntry{tuple.Lit("Result")})
	p.Order("CtrlA", "ScanB", "CountC", "GatherD", "MoveE")
	p.GammaHint("Data", gamma.NewRollingFloatArray(n))

	arr := func(c *core.Ctx) *gamma.RollingFloatArray {
		return c.GammaTable(data).(*gamma.RollingFloatArray)
	}
	// Window bounds of region r within [start, end).
	regionBounds := func(start, end, r int64) (int64, int64) {
		size := end - start
		return start + r*size/regions, start + (r+1)*size/regions
	}

	// Controller: finish, or pick a pivot and fan out region scans.
	p.Rule("control", ctrl, func(c *core.Ctx, t *tuple.Tuple) {
		iter, start, end := t.Int("iter"), t.Int("start"), t.Int("end")
		a := arr(c)
		if end-start == 1 {
			c.PutNew(result, tuple.Float(a.GetF(iter, start)))
			return
		}
		// Deterministic pseudo-random pivot from the active window.
		pr := rng.New(opts.Seed ^ (uint64(iter)+1)*0x9e3779b97f4a7c15)
		pivot := a.GetF(iter, start+pr.Int63n(end-start))
		for r := int64(0); r < regions; r++ {
			lo, hi := regionBounds(start, end, r)
			c.PutNew(scan, tuple.Int(iter), tuple.Int(r), tuple.Int(lo), tuple.Int(hi),
				tuple.Float(pivot))
		}
	})

	// Region scan: count lows/eqs in the region (first parallel pass).
	p.Rule("scan", scan, func(c *core.Ctx, t *tuple.Tuple) {
		iter, lo, hi, pivot := t.Int("iter"), t.Int("lo"), t.Int("hi"), t.Float("pivot")
		a := arr(c)
		var lows, eqs int64
		for i := lo; i < hi; i++ {
			switch v := a.GetF(iter, i); {
			case v < pivot:
				lows++
			case v == pivot:
				eqs++
			}
		}
		c.PutNew(count, tuple.Int(iter), t.Get("region"), tuple.Int(lows), tuple.Int(eqs))
		c.PutNew(gather, tuple.Int(iter)) // dedup: one Gather per iteration
	})

	// Gather: prefix-sum the counts, decide recursion, fan out moves.
	p.Rule("gather", gather, func(c *core.Ctx, t *tuple.Tuple) {
		iter := t.Int("iter")
		// The controller tuple of this iteration holds the window.
		cw := c.GetUniq(ctrl, gamma.Query{Prefix: []tuple.Value{tuple.Int(iter)}})
		start, end, k := cw.Int("start"), cw.Int("end"), cw.Int("k")
		lows := make([]int64, regions)
		eqs := make([]int64, regions)
		c.ForEach(count, gamma.Query{Prefix: []tuple.Value{tuple.Int(iter)}},
			func(ct *tuple.Tuple) bool {
				lows[ct.Int("region")] = ct.Int("lows")
				eqs[ct.Int("region")] = ct.Int("eqs")
				return true
			})
		var lowTotal, eqTotal int64
		for r := int64(0); r < regions; r++ {
			lowTotal += lows[r]
			eqTotal += eqs[r]
		}
		// Destination layout in iteration iter+1:
		// [start .. +lowTotal) lows, then eqs, then highs.
		var nextStart, nextEnd, nextK int64
		found := false
		switch {
		case k < lowTotal:
			nextStart, nextEnd, nextK = start, start+lowTotal, k
		case k < lowTotal+eqTotal:
			found = true // the pivot is the k-th value
		default:
			// k is the rank within the window; the high part drops the
			// lows and eqs below it.
			nextStart, nextEnd = start+lowTotal+eqTotal, end
			nextK = k - lowTotal - eqTotal
		}
		lowOff, eqOff := start, start+lowTotal
		highOff := start + lowTotal + eqTotal
		for r := int64(0); r < regions; r++ {
			lo, hi := regionBounds(start, end, r)
			// The pivot travels via the Scan tuples; re-derive from any.
			var pv float64
			c.ForEach(scan, gamma.Query{
				Prefix: []tuple.Value{tuple.Int(iter), tuple.Int(r)},
			}, func(st *tuple.Tuple) bool { pv = st.Float("pivot"); return false })
			c.PutNew(move, tuple.Int(iter), tuple.Int(r), tuple.Int(lo), tuple.Int(hi),
				tuple.Float(pv), tuple.Int(lowOff), tuple.Int(eqOff), tuple.Int(highOff),
				tuple.Int(nextStart), tuple.Int(nextEnd), tuple.Int(nextK), tuple.Bool(found))
			lowOff += lows[r]
			eqOff += eqs[r]
			highOff += (hi - lo) - lows[r] - eqs[r]
		}
	})

	// Move: scatter the region into iteration iter+1 (second parallel
	// pass), then schedule the next iteration (deduplicated put).
	p.Rule("move", move, func(c *core.Ctx, t *tuple.Tuple) {
		iter := t.Int("iter")
		if t.Get("found").AsBool() {
			if t.Int("region") == 0 {
				c.PutNew(result, t.Get("pivot"))
			}
			return
		}
		a := arr(c)
		lo, hi, pivot := t.Int("lo"), t.Int("hi"), t.Float("pivot")
		dl, de, dh := t.Int("dstLow"), t.Int("dstEq"), t.Int("dstHigh")
		next := iter + 1
		for i := lo; i < hi; i++ {
			switch v := a.GetF(iter, i); {
			case v < pivot:
				a.SetF(next, dl, v)
				dl++
			case v == pivot:
				a.SetF(next, de, v)
				de++
			default:
				a.SetF(next, dh, v)
				dh++
			}
		}
		c.PutNew(ctrl, tuple.Int(next), t.Get("nextStart"), t.Get("nextEnd"), t.Get("nextK"))
	})

	opts2 := core.Options{
		Sequential: opts.Sequential,
		Strategy:   opts.Strategy,
		Threads:    opts.Threads,
		NoDelta:    []string{"Data", "Count"},
		StorePlan:  opts.StorePlan,
		Quiet:      true,
		MaxSteps:   opts.MaxSteps,
		PhaseStats: opts.PhaseStats,
	}
	run, err := p.NewRun(opts2)
	if err != nil {
		return nil, err
	}
	// Bulk-load the input through the typed fast path — the paper's
	// generated native-array code does exactly this for Data tuples.
	a := run.Gamma().Table(data).(*gamma.RollingFloatArray)
	for i, v := range Values(n, opts.Seed) {
		a.SetF(0, int64(i), v)
	}
	p.Put(tuple.New(ctrl, tuple.Int(0), tuple.Int(0), tuple.Int(int64(n)),
		tuple.Int(int64((n-1)/2))))
	if err := run.Execute(); err != nil {
		return nil, err
	}
	var med float64
	got := false
	run.Gamma().Table(result).Scan(func(t *tuple.Tuple) bool {
		med, got = t.Float("value"), true
		return false
	})
	if !got {
		return &Result{Run: run}, errNoResult
	}
	return &Result{Median: med, Run: run}, nil
}

var errNoResult = errors.New("median: program finished without a Result tuple")

// SortBaseline finds the k-th smallest by fully sorting a copy — the
// paper's Java Arrays.sort double-pivot-quicksort baseline.
func SortBaseline(vals []float64) float64 {
	cp := append([]float64(nil), vals...)
	sort.Float64s(cp)
	return cp[(len(cp)-1)/2]
}

// Quickselect finds the k-th smallest with a sequential median-specific
// quicksort variant that partitions and recurses only into the half
// containing the median (the trick that made JStar 2x faster, §6.1).
func Quickselect(vals []float64, seed uint64) float64 {
	cp := append([]float64(nil), vals...)
	k := (len(cp) - 1) / 2
	r := rng.New(seed)
	lo, hi := 0, len(cp) // active window [lo, hi)
	for hi-lo > 1 {
		pivot := cp[lo+r.Intn(hi-lo)]
		// 3-way partition.
		lt, i, gt := lo, lo, hi
		for i < gt {
			switch v := cp[i]; {
			case v < pivot:
				cp[lt], cp[i] = cp[i], cp[lt]
				lt++
				i++
			case v > pivot:
				gt--
				cp[gt], cp[i] = cp[i], cp[gt]
			default:
				i++
			}
		}
		switch {
		case k < lt:
			hi = lt
		case k < gt:
			return pivot
		default:
			lo = gt
		}
	}
	return cp[lo]
}
