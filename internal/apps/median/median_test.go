package median

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestSortBaselineOddEven(t *testing.T) {
	if got := SortBaseline([]float64{3, 1, 2}); got != 2 {
		t.Errorf("median of 3,1,2 = %v", got)
	}
	// Even length: lower median by definition k=(n-1)/2.
	if got := SortBaseline([]float64{4, 1, 3, 2}); got != 2 {
		t.Errorf("lower median of 1..4 = %v", got)
	}
	if got := SortBaseline([]float64{7}); got != 7 {
		t.Errorf("singleton median = %v", got)
	}
}

func TestQuickselectMatchesSortProperty(t *testing.T) {
	f := func(xs []float64, seed uint64) bool {
		if len(xs) == 0 {
			return true
		}
		for _, v := range xs {
			if v != v { // NaN breaks ordering; out of scope
				return true
			}
		}
		return Quickselect(xs, seed) == SortBaseline(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickselectDuplicates(t *testing.T) {
	xs := []float64{5, 5, 5, 5, 5}
	if Quickselect(xs, 1) != 5 {
		t.Error("all-equal array")
	}
	xs = []float64{1, 2, 2, 2, 9}
	if Quickselect(xs, 2) != 2 {
		t.Error("duplicate median")
	}
}

func TestValuesDeterministic(t *testing.T) {
	a := Values(100, 3)
	b := Values(100, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("values must be deterministic")
		}
	}
	if !sort.Float64sAreSorted(a) {
		// Expected: random, so *not* sorted (sanity check the generator).
		return
	}
	t.Error("values came out sorted; generator broken")
}

func TestJStarMatchesBaselines(t *testing.T) {
	for _, cfg := range []struct {
		name string
		opts RunOpts
	}{
		{"seq-small", RunOpts{N: 101, Regions: 4, Sequential: true, Seed: 5, MaxSteps: 10000}},
		{"par-small", RunOpts{N: 101, Regions: 4, Threads: 4, Seed: 5, MaxSteps: 10000}},
		{"par-regions>n", RunOpts{N: 10, Regions: 24, Threads: 2, Seed: 6, MaxSteps: 10000}},
		{"par-bigger", RunOpts{N: 20000, Regions: 8, Threads: 8, Seed: 7, MaxSteps: 10000}},
		{"even-length", RunOpts{N: 1000, Regions: 6, Threads: 2, Seed: 8, MaxSteps: 10000}},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			res, err := RunJStar(cfg.opts)
			if err != nil {
				t.Fatal(err)
			}
			want := SortBaseline(Values(cfg.opts.N, cfg.opts.Seed))
			if res.Median != want {
				t.Fatalf("jstar median = %v, want %v", res.Median, want)
			}
		})
	}
}

func TestJStarSingleton(t *testing.T) {
	res, err := RunJStar(RunOpts{N: 1, Regions: 4, Sequential: true, Seed: 1, MaxSteps: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Median != Values(1, 1)[0] {
		t.Error("singleton median")
	}
}

func TestIterationsAreLogarithmic(t *testing.T) {
	res, err := RunJStar(RunOpts{N: 4096, Regions: 8, Threads: 4, Seed: 9, MaxSteps: 10000})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Run.Stats()
	// Each iteration takes a handful of steps (Ctrl, Scan, Gather, Move
	// batches); expected iterations ~ 2*log2(n) on random pivots.
	if st.Steps > 400 {
		t.Errorf("steps = %d; quickselect should converge in O(log n) iterations", st.Steps)
	}
	// Scans of one iteration run as a single parallel batch.
	if st.MaxBatch < 8 {
		t.Errorf("MaxBatch = %d; region tasks must batch", st.MaxBatch)
	}
}
