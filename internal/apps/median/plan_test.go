package median

import "testing"

// TestSuggestStorePlanGolden pins the planner on recorded median-run
// statistics: the Data table's RollingFloatArray hint is a manually
// parameterised backend the planner must never override — the rules
// downcast the store to *gamma.RollingFloatArray — so the suggested plan
// omits it entirely. That omission is what makes a saved plan safe to
// replay at a different array size: the GammaHint (which knows the current
// N) re-establishes the rolling store.
func TestSuggestStorePlanGolden(t *testing.T) {
	res, err := RunJStar(RunOpts{N: 2000, Regions: 4, Sequential: true, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	plan := res.Run.Stats().SuggestStorePlan()
	if spec, ok := plan["Data"]; ok {
		t.Errorf(`plan["Data"] = %q, want no entry (non-replannable hint)`, spec)
	}
	// Replaying at a LARGER size must still run on the hint's rolling store
	// and find the same median the baselines do.
	const n = 5000
	tuned, err := RunJStar(RunOpts{N: n, Regions: 4, Sequential: true, Seed: 11, StorePlan: plan})
	if err != nil {
		t.Fatalf("replaying %v at N=%d: %v", plan, n, err)
	}
	if got := tuned.Run.Stats().StoreKinds["Data"]; got != "rolling:5000" {
		t.Errorf("replayed Data backend = %q, want rolling:5000 (the hint re-sized to the run)", got)
	}
	if want := Quickselect(Values(n, 11), 11); tuned.Median != want {
		t.Errorf("tuned median = %v, quickselect baseline = %v", tuned.Median, want)
	}
}

// TestPhaseStatsRecorded: the PhaseStats plumbing reaches the engine — a
// run with it set reports a non-empty phase breakdown.
func TestPhaseStatsRecorded(t *testing.T) {
	res, err := RunJStar(RunOpts{N: 1000, Regions: 4, Sequential: true, Seed: 3, PhaseStats: true})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Run.Stats()
	if st.FireNanos+st.BoundaryNanos() == 0 {
		t.Error("PhaseStats run recorded no phase nanos")
	}
}
