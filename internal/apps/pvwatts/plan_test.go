package pvwatts

import (
	"math"
	"testing"
)

// TestSuggestStorePlanGolden pins the planner's decisions on recorded
// PvWatts statistics: the readings table is put-dominated, all-int and
// point-probed at prefix (year, month), so it must move to the
// int-specialised open-addressing store; SumMonth is a pure dedup sink
// (every reading re-puts its month) and must get whole-row open
// addressing. A planner change that flips these kinds fails the build.
func TestSuggestStorePlanGolden(t *testing.T) {
	csv := GenerateCSV(1, false, 42)
	res, err := RunJStar(csv, RunOpts{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	plan := res.Run.Stats().SuggestStorePlan()
	want := map[string]string{
		"PvWatts":  "inthash:2",
		"SumMonth": "inthash:2",
	}
	for table, kind := range want {
		if plan[table] != kind {
			t.Errorf("plan[%s] = %q, want %q (full plan: %v)", table, plan[table], kind, plan)
		}
	}
	for _, table := range []string{"PvWattsRequest", "Result"} {
		if kind, ok := plan[table]; ok {
			t.Errorf("plan[%s] = %q, want no entry (below the volume floor)", table, kind)
		}
	}
}

// TestStorePlanReplayMatchesBaseline runs the two-run tuning loop at app
// level: the tuned run must change the readings backend and compute
// exactly the same monthly means.
func TestStorePlanReplayMatchesBaseline(t *testing.T) {
	csv := GenerateCSV(1, false, 42)
	base, err := RunJStar(csv, RunOpts{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	plan := base.Run.Stats().SuggestStorePlan()
	tuned, err := RunJStar(csv, RunOpts{Sequential: true, StorePlan: plan})
	if err != nil {
		t.Fatalf("tuned run: %v", err)
	}
	if got := tuned.Run.Stats().StoreKinds["PvWatts"]; got != "inthash:2" {
		t.Errorf("tuned PvWatts backend = %q, want inthash:2", got)
	}
	if len(tuned.Means) != len(base.Means) {
		t.Fatalf("tuned run computed %d months, baseline %d", len(tuned.Means), len(base.Means))
	}
	for k, v := range base.Means {
		if tv, ok := tuned.Means[k]; !ok || math.Abs(tv-v) > 1e-9 {
			t.Errorf("month %v: tuned mean %v, baseline %v", k, tuned.Means[k], v)
		}
	}
}
