// Package pvwatts implements the paper's PvWatts case study (§6, Fig 4):
// a map-reduce style program that reads an hourly solar-output CSV and
// computes the mean power generated in each month.
//
// Three implementations are provided, matching the paper's comparisons:
//
//   - RunJStar: the declarative program of Fig 4 on the engine, with the
//     -noDelta optimisation and the alternative Gamma data structures of
//     Fig 8 (default NavigableSet, hash index, custom array-of-hashsets),
//     and parallel region readers for the CSV input.
//   - RunBaseline: the hand-coded "Java" version — readLine + String.split
//     and a hash map of accumulators.
//   - RunDisruptor: the §6.3 redesign — a single producer parsing the CSV
//     into a ring buffer and one consumer per month with local state.
package pvwatts

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/jstar-lang/jstar/internal/core"
	"github.com/jstar-lang/jstar/internal/disruptor"
	"github.com/jstar-lang/jstar/internal/exec"
	"github.com/jstar-lang/jstar/internal/fastcsv"
	"github.com/jstar-lang/jstar/internal/forkjoin"
	"github.com/jstar-lang/jstar/internal/gamma"
	"github.com/jstar-lang/jstar/internal/pvgen"
	"github.com/jstar-lang/jstar/internal/reduce"
	"github.com/jstar-lang/jstar/internal/tuple"
)

// MonthKey identifies one (year, month) result row.
type MonthKey = [2]int32

// GammaKind selects the PvWatts Gamma data structure (the Fig 8 variants).
type GammaKind int

const (
	// GammaDefault is the NavigableSet default (skip list / tree set).
	GammaDefault GammaKind = iota
	// GammaHash hashes on (year, month).
	GammaHash
	// GammaArrayOfHash is the custom month-indexed array of hash sets.
	GammaArrayOfHash
)

// Name returns the display name of the variant.
func (g GammaKind) Name() string {
	switch g {
	case GammaHash:
		return "hash(year,month)"
	case GammaArrayOfHash:
		return "array-of-hashsets"
	default:
		return "navigable-set"
	}
}

// RunOpts configure a JStar PvWatts run.
type RunOpts struct {
	Sequential bool
	Strategy   exec.Strategy // execution engine (Auto picks from run stats)
	Threads    int
	NoDelta    bool // -noDelta PvWatts (§6.2: 23.0s -> 8.44s)
	NoGamma    bool // -noGamma SumMonth (SumMonth is trigger-only)
	Gamma      GammaKind
	// StorePlan replays a profile-guided per-table store plan (usually a
	// previous run's RunStats.SuggestStorePlan), overriding the Gamma
	// variant's hint for the tables it names.
	StorePlan gamma.StorePlan
	Readers   int // parallel CSV region readers (0 = Threads)
	Trace     bool
	// ParallelReduce runs each SumMonth reducer loop as a parallel tree
	// reduction — the §5.2 "additional parallelism" the paper leaves
	// unexploited ("loops that do involve a reducer object could also be
	// executed in parallel, with a tree-based pass to combine the final
	// reducer results").
	ParallelReduce bool
	// PhaseStats records the per-phase step breakdown (jstar-bench -phases
	// and the smoke artifact turn it on).
	PhaseStats bool
}

// parallelStats computes Statistics over vals with per-worker partials
// merged in a final pass (the §5.2 tree-combine).
func parallelStats(pool *forkjoin.Pool, vals []float64) *reduce.Statistics {
	workers := pool.Size()
	if workers > len(vals) {
		workers = len(vals)
	}
	if workers < 1 {
		workers = 1
	}
	parts := make([]*reduce.Statistics, workers)
	chunk := (len(vals) + workers - 1) / workers
	pool.For(workers, 1, func(w int) {
		st := reduce.NewStatistics()
		lo, hi := w*chunk, (w+1)*chunk
		if hi > len(vals) {
			hi = len(vals)
		}
		for i := lo; i < hi; i++ {
			st.Add(vals[i])
		}
		parts[w] = st
	})
	total := reduce.NewStatistics()
	for _, p := range parts {
		if p != nil {
			total.Merge(p)
		}
	}
	return total
}

// Result is the computed monthly means plus run diagnostics.
type Result struct {
	Means map[MonthKey]float64
	Run   *core.Run
}

// Program builds the Fig 4 program over the given CSV bytes.
func Program(csv []byte, opts RunOpts) (*core.Program, *core.Options, func(*core.Run) map[MonthKey]float64) {
	p := core.NewProgram()
	req := p.Table("PvWattsRequest",
		[]tuple.Column{{Name: "filename", Kind: tuple.KindString}},
		[]tuple.OrderEntry{tuple.Lit("Req")})
	// Column order (year, month, ...) makes (year, month) the query prefix.
	pv := p.Table("PvWatts",
		[]tuple.Column{
			{Name: "year", Kind: tuple.KindInt},
			{Name: "month", Kind: tuple.KindInt},
			{Name: "day", Kind: tuple.KindInt},
			{Name: "hour", Kind: tuple.KindInt},
			{Name: "power", Kind: tuple.KindInt},
		},
		[]tuple.OrderEntry{tuple.Lit("PvWatts")})
	sum := p.Table("SumMonth",
		[]tuple.Column{
			{Name: "year", Kind: tuple.KindInt},
			{Name: "month", Kind: tuple.KindInt},
		},
		[]tuple.OrderEntry{tuple.Lit("SumMonth")})
	res := p.Table("Result",
		[]tuple.Column{
			{Name: "year", Kind: tuple.KindInt},
			{Name: "month", Kind: tuple.KindInt},
			{Name: "mean", Kind: tuple.KindFloat},
		},
		[]tuple.OrderEntry{tuple.Lit("Result")})
	p.Order("Req", "PvWatts", "SumMonth", "Result")

	switch opts.Gamma {
	case GammaHash:
		p.GammaHint("PvWatts", gamma.NewHashStore(2))
	case GammaArrayOfHash:
		p.GammaHint("PvWatts", gamma.NewArrayOfHashSets(1, 1, 12))
	}

	// Read-loop rule: parse the CSV with parallel region readers (§6.2's
	// "the CSV reader library can run several readers in parallel, on
	// different parts of the input file").
	p.Rule("readCSV", req, func(c *core.Ctx, t *tuple.Tuple) {
		readers := opts.Readers
		if readers <= 0 {
			readers = c.Threads()
		}
		regions := fastcsv.Regions(len(csv), readers)
		readOne := func(reg fastcsv.Region) {
			err := fastcsv.ReadRegion(csv, reg, func(rec *fastcsv.Record) error {
				y, err := rec.Int(0)
				if err != nil {
					return err
				}
				m, err := rec.Int(1)
				if err != nil {
					return err
				}
				d, err := rec.Int(2)
				if err != nil {
					return err
				}
				h, err := rec.Int(3)
				if err != nil {
					return err
				}
				pw, err := rec.Int(4)
				if err != nil {
					return err
				}
				c.PutNew(pv, tuple.Int(y), tuple.Int(m), tuple.Int(d), tuple.Int(h), tuple.Int(pw))
				return nil
			})
			if err != nil {
				panic(err)
			}
		}
		if pool := c.Pool(); pool != nil && len(regions) > 1 {
			pool.For(len(regions), 1, func(i int) { readOne(regions[i]) })
		} else {
			for _, reg := range regions {
				readOne(reg)
			}
		}
	})

	// foreach (PvWatts pv) { put new SumMonth(pv.year, pv.month); }
	monthly := p.Rule("monthly", pv, func(c *core.Ctx, t *tuple.Tuple) {
		c.PutNew(sum, t.Get("year"), t.Get("month"))
	})
	// Batch body: without -noDelta every PvWatts reading flows through the
	// Delta set and fires here in huge step batches; one Ctx and one
	// dispatch per chunk replaces one of each per reading.
	monthly.BatchBody = func(c *core.Ctx, ts []*tuple.Tuple) {
		for _, t := range ts {
			c.Bind(t)
			c.PutNew(sum, t.Get("year"), t.Get("month"))
		}
	}

	// foreach (SumMonth s) { Statistics over get PvWatts(s.year, s.month) }
	reduceRule := p.Rule("reduce", sum, func(c *core.Ctx, s *tuple.Tuple) {
		q := gamma.Query{Prefix: []tuple.Value{s.Get("year"), s.Get("month")}}
		var stats *reduce.Statistics
		pool, havePool := c.Pool().(*forkjoin.Pool)
		if opts.ParallelReduce && havePool {
			// §5.2 extension: materialise the month's readings, then a
			// parallel reduction with merged Statistics partials.
			var powers []float64
			c.ForEach(pv, q, func(r *tuple.Tuple) bool {
				powers = append(powers, float64(r.Int("power")))
				return true
			})
			stats = parallelStats(pool, powers)
		} else {
			stats = reduce.NewStatistics()
			c.ForEach(pv, q, func(r *tuple.Tuple) bool {
				stats.Add(float64(r.Int("power")))
				return true
			})
		}
		c.PutNew(res, s.Get("year"), s.Get("month"), tuple.Float(stats.Mean()))
	})
	if !opts.ParallelReduce {
		// Batch body: a chunk of SumMonth firings becomes one batched probe
		// sequence against the PvWatts store (ForEachBatch/SelectBatch) —
		// one lock episode and one pre-hashed probe loop per chunk instead
		// of an independent Select per month. ParallelReduce keeps the
		// per-tuple body: it fans each reducer loop out across the pool.
		reduceRule.BatchBody = func(c *core.Ctx, ts []*tuple.Tuple) {
			qs := make([]gamma.Query, len(ts))
			accs := make([]*reduce.Statistics, len(ts))
			for i, s := range ts {
				qs[i] = gamma.Query{Prefix: []tuple.Value{s.Get("year"), s.Get("month")}}
				accs[i] = reduce.NewStatistics()
			}
			c.ForEachBatch(pv, qs, ts, func(qi int, r *tuple.Tuple) bool {
				accs[qi].Add(float64(r.Int("power")))
				return true
			})
			for i, s := range ts {
				c.Bind(s)
				c.PutNew(res, s.Get("year"), s.Get("month"), tuple.Float(accs[i].Mean()))
			}
		}
	}

	p.Put(tuple.New(req, tuple.String_("large1000.csv")))

	co := &core.Options{
		Sequential:    opts.Sequential,
		Strategy:      opts.Strategy,
		Threads:       opts.Threads,
		StorePlan:     opts.StorePlan,
		Quiet:         true,
		TraceDataflow: opts.Trace,
		PhaseStats:    opts.PhaseStats,
	}
	if opts.NoDelta {
		co.NoDelta = append(co.NoDelta, "PvWatts")
	}
	if opts.NoGamma {
		co.NoGamma = append(co.NoGamma, "SumMonth")
	}
	read := func(run *core.Run) map[MonthKey]float64 {
		out := make(map[MonthKey]float64)
		run.Gamma().Table(res).Scan(func(t *tuple.Tuple) bool {
			out[MonthKey{int32(t.Int("year")), int32(t.Int("month"))}] = t.Float("mean")
			return true
		})
		return out
	}
	return p, co, read
}

// RunJStar executes the Fig 4 program and returns the monthly means.
func RunJStar(csv []byte, opts RunOpts) (*Result, error) {
	p, co, read := Program(csv, opts)
	run, err := p.Execute(*co)
	if err != nil {
		return nil, err
	}
	return &Result{Means: read(run), Run: run}, nil
}

// RunBaseline is the hand-coded comparison program, written the way the
// paper describes the Java version: BufferedReader.readLine plus
// String.split — i.e. per-line string allocation and strconv — then a map
// of accumulators.
func RunBaseline(csv []byte) (map[MonthKey]float64, error) {
	type acc struct {
		sum   int64
		count int64
	}
	accs := make(map[MonthKey]*acc, 24)
	for _, line := range strings.Split(string(csv), "\n") {
		if line == "" {
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) != 5 {
			return nil, fmt.Errorf("pvwatts: bad line %q", line)
		}
		y, err := strconv.Atoi(parts[0])
		if err != nil {
			return nil, err
		}
		m, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, err
		}
		pw, err := strconv.Atoi(parts[4])
		if err != nil {
			return nil, err
		}
		k := MonthKey{int32(y), int32(m)}
		a := accs[k]
		if a == nil {
			a = &acc{}
			accs[k] = a
		}
		a.sum += int64(pw)
		a.count++
	}
	out := make(map[MonthKey]float64, len(accs))
	for k, a := range accs {
		out[k] = float64(a.sum) / float64(a.count)
	}
	return out, nil
}

// GenerateCSV produces the synthetic input file (§6.2 substitutes NREL's
// 192MB export; size scales with years).
func GenerateCSV(years int, sorted bool, seed uint64) []byte {
	return pvgen.CSV(pvgen.Generate(2000, years, sorted, seed))
}

// pvEvent is the ring-buffer slot type of the Disruptor version.
type pvEvent struct {
	year, month int32
	power       int32
	sentinel    bool
}

// RunDisruptor executes the §6.3 two-phase Disruptor workflow: one producer
// parses the CSV and publishes PvWatts events; opts.Consumers consumers
// each own the months m where m % consumers == id, keep tuples in a local
// Gamma, and run the Statistics reducer on the sentinel.
func RunDisruptor(csv []byte, opts disruptor.Options) (map[MonthKey]float64, error) {
	if opts.Consumers < 1 {
		opts.Consumers = 12
	}
	if opts.Wait == nil {
		opts.Wait = &disruptor.BlockingWait{}
	}
	if opts.RingSize == 0 {
		opts.RingSize = 1024
	}
	ring := disruptor.NewRing[pvEvent](opts.RingSize, opts.Wait)

	type localAcc struct {
		sums   map[MonthKey]*reduce.Statistics
		result map[MonthKey]float64
	}
	locals := make([]*localAcc, opts.Consumers)
	done := make(chan int, opts.Consumers)
	for i := 0; i < opts.Consumers; i++ {
		c := ring.NewConsumer()
		la := &localAcc{sums: make(map[MonthKey]*reduce.Statistics)}
		locals[i] = la
		go func(id int) {
			// Phase 1: claim PvWatts tuples for our months into the local
			// Gamma; Phase 2 (sentinel): run the reducer loop.
			c.Run(func(_ int64, e *pvEvent) bool {
				if e.sentinel {
					la.result = make(map[MonthKey]float64, len(la.sums))
					for k, s := range la.sums {
						la.result[k] = s.Mean()
					}
					done <- id
					return false
				}
				if int(e.month-1)%opts.Consumers != id {
					return true // another consumer's month
				}
				k := MonthKey{e.year, e.month}
				s := la.sums[k]
				if s == nil {
					s = reduce.NewStatistics()
					la.sums[k] = s
				}
				s.Add(float64(e.power))
				return true
			})
		}(i)
	}

	// Producer: read and parse the file, publish into the ring, then the
	// sentinel.
	prod := ring.NewProducer(opts.ClaimBatch)
	var parseErr error
	err := fastcsv.ReadRegion(csv, fastcsv.Region{Start: 0, End: len(csv)},
		func(rec *fastcsv.Record) error {
			y, err := rec.Int(0)
			if err != nil {
				return err
			}
			m, err := rec.Int(1)
			if err != nil {
				return err
			}
			pw, err := rec.Int(4)
			if err != nil {
				return err
			}
			prod.Publish(func(e *pvEvent) {
				e.year, e.month, e.power, e.sentinel = int32(y), int32(m), int32(pw), false
			})
			return nil
		})
	if err != nil {
		parseErr = err
	}
	prod.Publish(func(e *pvEvent) { e.sentinel = true })
	for i := 0; i < opts.Consumers; i++ {
		<-done
	}
	if parseErr != nil {
		return nil, parseErr
	}
	out := make(map[MonthKey]float64, 24)
	for _, la := range locals {
		for k, v := range la.result {
			out[k] = v
		}
	}
	return out, nil
}
