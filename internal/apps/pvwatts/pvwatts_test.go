package pvwatts

import (
	"math"
	"testing"

	"github.com/jstar-lang/jstar/internal/disruptor"
	"github.com/jstar-lang/jstar/internal/pvgen"
)

// smallCSV is ~1 month-dense year of synthetic data shared across tests.
func smallCSV(t testing.TB, sorted bool) ([]byte, map[MonthKey]float64) {
	t.Helper()
	recs := pvgen.Generate(2000, 1, sorted, 42)
	return pvgen.CSV(recs), pvgen.MonthlyMeans(recs)
}

func sameMeans(t *testing.T, got, want map[MonthKey]float64, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d result months, want %d", label, len(got), len(want))
	}
	for k, w := range want {
		g, ok := got[k]
		if !ok {
			t.Fatalf("%s: missing month %v", label, k)
		}
		if math.Abs(g-w) > 1e-9*(1+math.Abs(w)) {
			t.Errorf("%s: month %v mean = %v, want %v", label, k, g, w)
		}
	}
}

func TestBaselineMatchesReference(t *testing.T) {
	csv, want := smallCSV(t, false)
	got, err := RunBaseline(csv)
	if err != nil {
		t.Fatal(err)
	}
	sameMeans(t, got, want, "baseline")
}

func TestJStarVariantsAllAgree(t *testing.T) {
	csv, want := smallCSV(t, false)
	variants := []struct {
		name string
		opts RunOpts
	}{
		{"sequential", RunOpts{Sequential: true}},
		{"sequential-noDelta", RunOpts{Sequential: true, NoDelta: true}},
		{"parallel-2", RunOpts{Threads: 2, NoDelta: true}},
		{"parallel-4-hash", RunOpts{Threads: 4, NoDelta: true, Gamma: GammaHash}},
		{"parallel-4-arrayhash", RunOpts{Threads: 4, NoDelta: true, Gamma: GammaArrayOfHash}},
		{"parallel-noGamma-sum", RunOpts{Threads: 2, NoDelta: true, NoGamma: true}},
		{"readers-3", RunOpts{Threads: 4, NoDelta: true, Readers: 3}},
		{"parallel-reduce", RunOpts{Threads: 4, NoDelta: true, ParallelReduce: true}},
		{"parallel-reduce-seq", RunOpts{Sequential: true, ParallelReduce: true}},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			res, err := RunJStar(csv, v.opts)
			if err != nil {
				t.Fatal(err)
			}
			sameMeans(t, res.Means, want, v.name)
		})
	}
}

func TestJStarDedupAndStats(t *testing.T) {
	csv, _ := smallCSV(t, false)
	res, err := RunJStar(csv, RunOpts{Sequential: true, NoDelta: true})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Run.Stats()
	// 8760 records put, only 12 unique SumMonth survive.
	if st.Tables["PvWatts"].Puts.Load() != int64(pvgen.RecordsPerYear) {
		t.Errorf("PvWatts puts = %d", st.Tables["PvWatts"].Puts.Load())
	}
	if st.Tables["SumMonth"].Triggers.Load() != 12 {
		t.Errorf("SumMonth triggers = %d, want 12", st.Tables["SumMonth"].Triggers.Load())
	}
	if d := st.Tables["SumMonth"].Duplicates.Load(); d != int64(pvgen.RecordsPerYear-12) {
		t.Errorf("SumMonth dups = %d", d)
	}
}

func TestNoDeltaReducesSteps(t *testing.T) {
	csv, _ := smallCSV(t, false)
	with, err := RunJStar(csv, RunOpts{Sequential: true, NoDelta: true})
	if err != nil {
		t.Fatal(err)
	}
	without, err := RunJStar(csv, RunOpts{Sequential: true, NoDelta: false})
	if err != nil {
		t.Fatal(err)
	}
	if with.Run.Stats().Steps >= without.Run.Stats().Steps {
		t.Errorf("noDelta steps %d must be fewer than %d",
			with.Run.Stats().Steps, without.Run.Stats().Steps)
	}
}

func TestDisruptorMatchesReference(t *testing.T) {
	for _, sorted := range []bool{false, true} {
		csv, want := smallCSV(t, sorted)
		for _, consumers := range []int{1, 3, 12} {
			opts := disruptor.Defaults()
			opts.Consumers = consumers
			got, err := RunDisruptor(csv, opts)
			if err != nil {
				t.Fatal(err)
			}
			sameMeans(t, got, want, opts.String())
		}
	}
}

func TestDisruptorWaitStrategies(t *testing.T) {
	csv, want := smallCSV(t, false)
	for _, w := range []disruptor.WaitStrategy{
		&disruptor.BlockingWait{}, disruptor.YieldingWait{}, disruptor.BusySpinWait{},
	} {
		opts := disruptor.Defaults()
		opts.Wait = w
		opts.RingSize = 256
		opts.ClaimBatch = 64
		got, err := RunDisruptor(csv, opts)
		if err != nil {
			t.Fatal(err)
		}
		sameMeans(t, got, want, w.Name())
	}
}

func TestTraceDataflowEdges(t *testing.T) {
	csv, _ := smallCSV(t, false)
	res, err := RunJStar(csv, RunOpts{Sequential: true, NoDelta: true, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	flow := res.Run.Stats().FlowEdges()
	if flow[[2]string{"readCSV", "PvWatts"}] != int64(pvgen.RecordsPerYear) {
		t.Errorf("readCSV->PvWatts flow = %d", flow[[2]string{"readCSV", "PvWatts"}])
	}
	if flow[[2]string{"monthly", "SumMonth"}] == 0 || flow[[2]string{"reduce", "Result"}] != 12 {
		t.Errorf("flow edges = %v", flow)
	}
}
