// Package shortestpath implements the paper's Dijkstra case study (§6.5,
// Fig 5). The program generates a random connected graph (a spanning tree
// plus extra random edges, weights 1..10) and finds the shortest path from
// vertex 0 to every vertex. The Delta tree acts as the priority queue:
// Estimate tuples are ordered by increasing distance, so the engine's
// minimum-batch extraction is exactly Dijkstra's next-closest selection.
//
// As in the paper, graph creation is split into parallel tasks (originally
// 24) because a single generation rule was a >60% sequential bottleneck,
// and the -noDelta / -noGamma optimisations are applied: Edge and Done are
// never triggers (straight to Gamma), Estimate is trigger-only (never
// stored).
package shortestpath

import (
	"container/heap"

	"github.com/jstar-lang/jstar/internal/core"
	"github.com/jstar-lang/jstar/internal/exec"
	"github.com/jstar-lang/jstar/internal/gamma"
	"github.com/jstar-lang/jstar/internal/rng"
	"github.com/jstar-lang/jstar/internal/tuple"
)

// Edge is one directed edge of the generated graph.
type Edge struct {
	From, To int32
	Value    int32 // length 1..10
}

// GenOpts configure graph generation.
type GenOpts struct {
	Vertices int
	Extra    int // extra random edges beyond the spanning tree
	Tasks    int // parallel generation tasks (paper used 24)
	Seed     uint64
}

// taskEdges generates the edges owned by one generation task,
// deterministically from (Seed, task). Tree edges guarantee connectivity:
// vertex v (>0) gets an edge from a random earlier vertex.
func taskEdges(o GenOpts, task int, emit func(Edge)) {
	r := rng.New(o.Seed + uint64(task)*0x9e3779b97f4a7c15)
	nv, nt := o.Vertices, o.Tasks
	loV, hiV := task*nv/nt, (task+1)*nv/nt
	for v := loV; v < hiV; v++ {
		if v == 0 {
			continue
		}
		emit(Edge{From: int32(r.Intn(v)), To: int32(v), Value: int32(1 + r.Intn(10))})
	}
	loE, hiE := task*o.Extra/nt, (task+1)*o.Extra/nt
	for i := loE; i < hiE; i++ {
		u, w := r.Intn(nv), r.Intn(nv)
		emit(Edge{From: int32(u), To: int32(w), Value: int32(1 + r.Intn(10))})
	}
}

// Generate returns the full edge list (what the 24 tasks jointly produce).
func Generate(o GenOpts) []Edge {
	if o.Tasks < 1 {
		o.Tasks = 1
	}
	var out []Edge
	for t := 0; t < o.Tasks; t++ {
		taskEdges(o, t, func(e Edge) { out = append(out, e) })
	}
	return out
}

// RunOpts configure a JStar run.
type RunOpts struct {
	Gen        GenOpts
	Sequential bool
	Strategy   exec.Strategy // execution engine (Auto picks from run stats)
	Threads    int
	// StorePlan replays a profile-guided per-table store plan, overriding
	// the hash hints on Edge and Done for the tables it names.
	StorePlan gamma.StorePlan
	Verbose   bool // keep the Fig 5 println output
	// PhaseStats records the per-phase step breakdown (jstar-bench -phases
	// and the smoke artifact turn it on).
	PhaseStats bool
}

// Result carries the distances (index = vertex, -1 unreachable).
type Result struct {
	Dist []int64
	Run  *core.Run
}

// RunJStar executes the Fig 5 program.
func RunJStar(opts RunOpts) (*Result, error) {
	o := opts.Gen
	if o.Tasks < 1 {
		o.Tasks = 1
	}
	p := core.NewProgram()
	genTask := p.Table("GenTask",
		[]tuple.Column{{Name: "task", Kind: tuple.KindInt}},
		[]tuple.OrderEntry{tuple.Lit("Gen")})
	edge := p.Table("Edge",
		[]tuple.Column{
			{Name: "from", Kind: tuple.KindInt},
			{Name: "to", Kind: tuple.KindInt},
			{Name: "value", Kind: tuple.KindInt},
		},
		[]tuple.OrderEntry{tuple.Lit("Edge")})
	est := p.Table("Estimate",
		[]tuple.Column{
			{Name: "vertex", Kind: tuple.KindInt},
			{Name: "distance", Kind: tuple.KindInt},
		},
		[]tuple.OrderEntry{tuple.Lit("Int"), tuple.Seq("distance"), tuple.Lit("Estimate")})
	done := p.Table("Done",
		[]tuple.Column{
			{Name: "vertex", Kind: tuple.KindInt, Key: true},
			{Name: "distance", Kind: tuple.KindInt},
		},
		[]tuple.OrderEntry{tuple.Lit("Int"), tuple.Seq("distance"), tuple.Lit("Done")})
	p.Order("Gen", "Edge", "Int")
	p.Order("Estimate", "Done")
	// get Edge(dist.vertex) and get uniq? Done(edge.to) are point-prefix
	// queries: hash indexes on the first column.
	p.GammaHint("Edge", gamma.NewHashStore(1))
	p.GammaHint("Done", gamma.NewHashStore(1))

	// Parallel graph generation: one rule firing per GenTask tuple (§6.5:
	// "we modified the JStar program ... splitting the graph creation into
	// 24 separate tasks").
	p.Rule("generate", genTask, func(c *core.Ctx, t *tuple.Tuple) {
		taskEdges(o, int(t.Int("task")), func(e Edge) {
			c.PutNew(edge, tuple.Int(int64(e.From)), tuple.Int(int64(e.To)), tuple.Int(int64(e.Value)))
		})
	})

	// Fig 5's Dijkstra rule, verbatim structure.
	p.Rule("dijkstra", est, func(c *core.Ctx, dist *tuple.Tuple) {
		v, d := dist.Get("vertex"), dist.Int("distance")
		already := c.GetUniq(done, gamma.Query{
			Prefix: []tuple.Value{v},
			Where:  func(t *tuple.Tuple) bool { return t.Int("distance") < d },
		})
		if already == nil {
			if opts.Verbose {
				c.Printf("shortest path to %d is %d\n", v.AsInt(), d)
			}
			c.PutNew(done, v, tuple.Int(d))
			// process all adjacent nodes not yet done
			c.ForEach(edge, gamma.Query{Prefix: []tuple.Value{v}}, func(e *tuple.Tuple) bool {
				if c.GetUniq(done, gamma.Query{Prefix: []tuple.Value{e.Get("to")}}) == nil {
					c.PutNew(est, e.Get("to"), tuple.Int(d+e.Int("value")))
				}
				return true
			})
		}
	})

	for t := 0; t < o.Tasks; t++ {
		p.Put(tuple.New(genTask, tuple.Int(int64(t))))
	}
	p.Put(tuple.New(est, tuple.Int(0), tuple.Int(0))) // Set the origin.

	run, err := p.Execute(core.Options{
		Sequential: opts.Sequential,
		Strategy:   opts.Strategy,
		Threads:    opts.Threads,
		NoDelta:    []string{"Edge", "Done"},
		NoGamma:    []string{"Estimate"},
		StorePlan:  opts.StorePlan,
		Quiet:      !opts.Verbose,
		PhaseStats: opts.PhaseStats,
	})
	if err != nil {
		return nil, err
	}
	distv := make([]int64, o.Vertices)
	for i := range distv {
		distv[i] = -1
	}
	run.Gamma().Table(done).Scan(func(t *tuple.Tuple) bool {
		distv[t.Int("vertex")] = t.Int("distance")
		return true
	})
	return &Result{Dist: distv, Run: run}, nil
}

// --- Hand-coded baseline ----------------------------------------------------

type pqItem struct {
	vertex int32
	dist   int64
}

type pq []pqItem

func (q pq) Len() int           { return len(q) }
func (q pq) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x any)        { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() any          { old := *q; n := len(old); it := old[n-1]; *q = old[:n-1]; return it }

// Baseline is the hand-coded Dijkstra with a binary-heap PriorityQueue —
// the paper's Java comparison program (2x faster sequentially than pushing
// millions of Estimates through the Delta tree).
func Baseline(edges []Edge, vertices int) []int64 {
	adjHead := make([]int32, vertices)
	for i := range adjHead {
		adjHead[i] = -1
	}
	next := make([]int32, len(edges))
	for i, e := range edges {
		next[i] = adjHead[e.From]
		adjHead[e.From] = int32(i)
	}
	dist := make([]int64, vertices)
	for i := range dist {
		dist[i] = -1
	}
	q := &pq{{vertex: 0, dist: 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if dist[it.vertex] != -1 {
			continue
		}
		dist[it.vertex] = it.dist
		for ei := adjHead[it.vertex]; ei != -1; ei = next[ei] {
			e := edges[ei]
			if dist[e.To] == -1 {
				heap.Push(q, pqItem{vertex: e.To, dist: it.dist + int64(e.Value)})
			}
		}
	}
	return dist
}
