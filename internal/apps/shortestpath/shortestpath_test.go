package shortestpath

import (
	"testing"
)

func TestBaselineTinyGraph(t *testing.T) {
	// 0 -1-> 1 -1-> 2, plus a long direct edge 0 -9-> 2.
	edges := []Edge{{0, 1, 1}, {1, 2, 1}, {0, 2, 9}}
	d := Baseline(edges, 3)
	if d[0] != 0 || d[1] != 1 || d[2] != 2 {
		t.Errorf("distances = %v", d)
	}
}

func TestBaselineUnreachable(t *testing.T) {
	d := Baseline([]Edge{{0, 1, 5}}, 3)
	if d[2] != -1 {
		t.Errorf("vertex 2 should be unreachable, got %d", d[2])
	}
}

func TestGenerateConnectivityAndDeterminism(t *testing.T) {
	o := GenOpts{Vertices: 500, Extra: 1000, Tasks: 8, Seed: 42}
	edges := Generate(o)
	if len(edges) != 499+1000 {
		t.Fatalf("edges = %d", len(edges))
	}
	for _, e := range edges {
		if e.Value < 1 || e.Value > 10 {
			t.Fatalf("edge weight %d out of 1..10", e.Value)
		}
		if e.From < 0 || int(e.From) >= o.Vertices || e.To < 0 || int(e.To) >= o.Vertices {
			t.Fatalf("edge endpoint out of range: %+v", e)
		}
	}
	// Spanning tree makes every vertex reachable from 0.
	d := Baseline(edges, o.Vertices)
	for v, dv := range d {
		if dv < 0 {
			t.Fatalf("vertex %d unreachable (tree edges must connect)", v)
		}
	}
	again := Generate(o)
	for i := range edges {
		if edges[i] != again[i] {
			t.Fatal("generation must be deterministic")
		}
	}
}

func TestGenerateTaskCountInvariance(t *testing.T) {
	// Different task splits produce different interleavings but the same
	// per-task-owned vertices; with the same seed the task RNG streams are
	// fixed, so distances must match across task counts only via the
	// baseline on each generated graph (each is a valid random graph).
	for _, tasks := range []int{1, 3, 24} {
		o := GenOpts{Vertices: 200, Extra: 200, Tasks: tasks, Seed: 7}
		d := Baseline(Generate(o), o.Vertices)
		for v, dv := range d {
			if dv < 0 {
				t.Fatalf("tasks=%d: vertex %d unreachable", tasks, v)
			}
		}
	}
}

func TestJStarMatchesBaseline(t *testing.T) {
	for _, cfg := range []struct {
		name string
		opts RunOpts
	}{
		{"seq-small", RunOpts{Gen: GenOpts{Vertices: 300, Extra: 600, Tasks: 4, Seed: 11}, Sequential: true}},
		{"par-small", RunOpts{Gen: GenOpts{Vertices: 300, Extra: 600, Tasks: 4, Seed: 11}, Threads: 4}},
		{"par-bigger", RunOpts{Gen: GenOpts{Vertices: 2000, Extra: 4000, Tasks: 24, Seed: 13}, Threads: 8}},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			res, err := RunJStar(cfg.opts)
			if err != nil {
				t.Fatal(err)
			}
			want := Baseline(Generate(cfg.opts.Gen), cfg.opts.Gen.Vertices)
			for v := range want {
				if res.Dist[v] != want[v] {
					t.Fatalf("vertex %d: jstar %d vs baseline %d", v, res.Dist[v], want[v])
				}
			}
		})
	}
}

func TestOptimisationStats(t *testing.T) {
	opts := RunOpts{Gen: GenOpts{Vertices: 200, Extra: 400, Tasks: 2, Seed: 5}, Threads: 2}
	res, err := RunJStar(opts)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Run.Stats()
	// Every vertex is done exactly once.
	if st.Tables["Done"].Puts.Load() < 200 {
		t.Errorf("Done puts = %d", st.Tables["Done"].Puts.Load())
	}
	// Estimates triggered the rule at least once per vertex.
	if st.Tables["Estimate"].Triggers.Load() < 200 {
		t.Errorf("Estimate triggers = %d", st.Tables["Estimate"].Triggers.Load())
	}
	// -noDelta Edge: edges never travel the Delta tree, so the step count
	// is dominated by Estimate batches, far below the edge count.
	if st.Steps > int64(600+10) {
		t.Errorf("steps = %d; edges must bypass the Delta tree", st.Steps)
	}
}

func TestVerboseOutput(t *testing.T) {
	res, err := RunJStar(RunOpts{
		Gen: GenOpts{Vertices: 5, Extra: 0, Tasks: 1, Seed: 1}, Sequential: true, Verbose: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Run.Output()) != 5 {
		t.Errorf("println lines = %d, want 5 (one per vertex)", len(res.Run.Output()))
	}
}
