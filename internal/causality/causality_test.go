package causality

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/jstar-lang/jstar/internal/order"
	"github.com/jstar-lang/jstar/internal/tuple"
)

func TestExprArithmetic(t *testing.T) {
	e := Var("x").Add(Var("y")).AddConst(3) // x + y + 3
	e = e.Sub(Var("y"))                     // x + 3
	if got := e.String(); got != "x + 3" {
		t.Errorf("String = %q", got)
	}
	e2 := Var("x").Scale(2).AddConst(-1)
	if got := e2.String(); got != "2*x - 1" {
		t.Errorf("String = %q", got)
	}
	if _, ok := e.IsConst(); ok {
		t.Error("x+3 is not const")
	}
	if k, ok := Const(7).IsConst(); !ok || k.RatString() != "7" {
		t.Error("Const(7)")
	}
	if Const(0).String() != "0" {
		t.Errorf("Const(0).String = %q", Const(0).String())
	}
	if Var("x").Scale(-1).String() != "-x" {
		t.Errorf("-x renders as %q", Var("x").Scale(-1).String())
	}
}

func TestSatisfiableBasic(t *testing.T) {
	x, y := Var("x"), Var("y")
	cases := []struct {
		name string
		cons []Constraint
		want bool
	}{
		{"empty", nil, true},
		{"x>=1", []Constraint{GE(x, Const(1))}, true},
		{"x>=1 and x<=0", []Constraint{GE(x, Const(1)), LE(x, Const(0))}, false},
		{"x>0 and x<1", []Constraint{GT(x, Const(0)), LT(x, Const(1))}, true}, // rationals are dense
		{"x>=0 and x<=0", []Constraint{GE(x, Const(0)), LE(x, Const(0))}, true},
		{"x>0 and x<=0", []Constraint{GT(x, Const(0)), LE(x, Const(0))}, false},
		{"x<=y and y<=x and x<y", append(EQ(x, y), LT(x, y)), false},
		{"transitivity", []Constraint{LE(x, y), LE(y, Const(5)), GE(x, Const(6))}, false},
		{"const true", []Constraint{GE(Const(3), Const(2))}, true},
		{"const false", []Constraint{GT(Const(2), Const(2))}, false},
		{"x+y>=3, x<=1, y<=1", []Constraint{GE(x.Add(y), Const(3)), LE(x, Const(1)), LE(y, Const(1))}, false},
		{"x+y>=2, x<=1, y<=1", []Constraint{GE(x.Add(y), Const(2)), LE(x, Const(1)), LE(y, Const(1))}, true},
	}
	for _, c := range cases {
		if got := Satisfiable(c.cons); got != c.want {
			t.Errorf("%s: Satisfiable = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestSatisfiableThreeVarChain(t *testing.T) {
	x, y, z := Var("x"), Var("y"), Var("z")
	// x < y < z < x is unsatisfiable.
	cons := []Constraint{LT(x, y), LT(y, z), LT(z, x)}
	if Satisfiable(cons) {
		t.Error("cyclic strict chain must be UNSAT")
	}
	// x <= y <= z <= x forces equality; satisfiable.
	cons = []Constraint{LE(x, y), LE(y, z), LE(z, x)}
	if !Satisfiable(cons) {
		t.Error("cyclic non-strict chain is SAT (all equal)")
	}
}

func TestEntails(t *testing.T) {
	x := Var("x")
	// x >= 2 entails x >= 1.
	if !Entails([]Constraint{GE(x, Const(2))}, GE(x, Const(1))) {
		t.Error("x>=2 ⟹ x>=1")
	}
	// x >= 1 does not entail x >= 2.
	if Entails([]Constraint{GE(x, Const(1))}, GE(x, Const(2))) {
		t.Error("x>=1 ⟹ x>=2 must fail")
	}
	// x >= 1 entails x+1 > x trivially.
	if !Entails(nil, GT(x.AddConst(1), x)) {
		t.Error("x+1 > x is valid")
	}
}

// TestFMRandomPointCheck: any satisfiable random system we build from a
// known witness point must be reported satisfiable.
func TestFMRandomPointCheck(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	vars := []string{"a", "b", "c"}
	for trial := 0; trial < 200; trial++ {
		// Witness point.
		point := map[string]int64{}
		for _, v := range vars {
			point[v] = int64(r.Intn(21) - 10)
		}
		// Build constraints satisfied by the witness.
		var cons []Constraint
		for i := 0; i < 5; i++ {
			e := Const(0)
			var val int64
			for _, v := range vars {
				c := int64(r.Intn(7) - 3)
				if c != 0 {
					e = e.Add(Var(v).Scale(c))
					val += c * point[v]
				}
			}
			// e >= val always holds at the witness.
			cons = append(cons, GE(e, Const(val)))
		}
		if !Satisfiable(cons) {
			t.Fatalf("trial %d: witness-satisfied system reported UNSAT", trial)
		}
	}
}

// TestFMAntisymmetryProperty: Entails(h, c) and Satisfiable(h ∧ ¬c) are
// complements by construction; spot-check via random difference bounds.
func TestFMDifferenceBoundsProperty(t *testing.T) {
	f := func(lo, hi int8) bool {
		x := Var("x")
		cons := []Constraint{GE(x, Const(int64(lo))), LE(x, Const(int64(hi)))}
		return Satisfiable(cons) == (lo <= hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func po(t *testing.T, chains ...[]string) *order.PartialOrder {
	t.Helper()
	p := order.NewPartialOrder()
	for _, c := range chains {
		if err := p.Declare(c...); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

// shipRule is the paper's guarded Ship rule: trigger Ship(frame,...) with
// key (Int, frame); put Ship with key (Int, frame+1).
func shipRule() RuleSpec {
	return RuleSpec{
		Name:       "moveRight",
		Trigger:    "Ship",
		TriggerKey: []KeyExpr{LitKey("Int"), ExprKey(Var("trig.frame"))},
		Puts: []PutSpec{{
			Table: "Ship",
			Key:   []KeyExpr{LitKey("Int"), ExprKey(Var("trig.frame").AddConst(1))},
		}},
	}
}

func TestShipPutProved(t *testing.T) {
	ck := NewChecker(po(t))
	obs := ck.Check([]RuleSpec{shipRule()})
	if len(obs) != 1 || !obs[0].Proved {
		t.Fatalf("ship obligation: %+v", obs)
	}
	if !AllProved(obs) {
		t.Error("AllProved")
	}
}

func TestPutIntoPastRejected(t *testing.T) {
	r := shipRule()
	r.Puts[0].Key = []KeyExpr{LitKey("Int"), ExprKey(Var("trig.frame").AddConst(-1))}
	ck := NewChecker(po(t))
	obs := ck.Check([]RuleSpec{r})
	if obs[0].Proved {
		t.Fatal("put into frame-1 must fail the causality check")
	}
	if !strings.Contains(obs[0].Reason, "cannot prove") {
		t.Errorf("reason = %q", obs[0].Reason)
	}
}

func TestPutSameTimestampProved(t *testing.T) {
	// put at the same frame is allowed (<=).
	r := shipRule()
	r.Puts[0].Key = []KeyExpr{LitKey("Int"), ExprKey(Var("trig.frame"))}
	ck := NewChecker(po(t))
	if obs := ck.Check([]RuleSpec{r}); !obs[0].Proved {
		t.Fatalf("same-timestamp put must be proved: %+v", obs[0])
	}
}

func TestGuardMakesPutProvable(t *testing.T) {
	// put Ship(frame + dx) is only causal when dx >= 0; the guard provides it.
	r := shipRule()
	r.Puts[0].Key = []KeyExpr{LitKey("Int"), ExprKey(Var("trig.frame").Add(Var("trig.dx")))}
	ck := NewChecker(po(t))
	if obs := ck.Check([]RuleSpec{r}); obs[0].Proved {
		t.Fatal("unguarded frame+dx must fail")
	}
	r.Puts[0].Guard = []Constraint{GE(Var("trig.dx"), Const(0))}
	if obs := ck.Check([]RuleSpec{r}); !obs[0].Proved {
		t.Fatalf("guarded frame+dx must be proved: %+v", obs)
	}
}

func TestInvariantMakesPutProvable(t *testing.T) {
	// Tuple invariant dx >= 1 proves frame+dx > frame ("strengthen
	// invariants", §4).
	r := shipRule()
	r.Puts[0].Key = []KeyExpr{LitKey("Int"), ExprKey(Var("trig.frame").Add(Var("trig.dx")))}
	r.Invariants = []Constraint{GE(Var("trig.dx"), Const(1))}
	ck := NewChecker(po(t))
	if obs := ck.Check([]RuleSpec{r}); !obs[0].Proved {
		t.Fatalf("invariant-backed put must be proved: %+v", obs)
	}
}

func TestLiteralLevelOrdering(t *testing.T) {
	// PvWatts rule puts SumMonth; order PvWatts < SumMonth settles level 0.
	p := po(t, []string{"Req", "PvWatts", "SumMonth"})
	r := RuleSpec{
		Name:       "monthly",
		Trigger:    "PvWatts",
		TriggerKey: []KeyExpr{LitKey("PvWatts")},
		Puts:       []PutSpec{{Table: "SumMonth", Key: []KeyExpr{LitKey("SumMonth")}}},
	}
	ck := NewChecker(p)
	if obs := ck.Check([]RuleSpec{r}); !obs[0].Proved {
		t.Fatalf("literal-level put: %+v", obs)
	}
	// Reverse direction must fail.
	r.Puts[0].Key = []KeyExpr{LitKey("Req")}
	if obs := ck.Check([]RuleSpec{r}); obs[0].Proved {
		t.Fatal("put into an earlier stratum must fail")
	}
}

func TestIncomparableLiteralsReported(t *testing.T) {
	// Without the order declaration the solver cannot prove stratification
	// — the paper's "Stratification error" for the omitted declaration.
	r := RuleSpec{
		Name:       "monthly",
		Trigger:    "PvWatts",
		TriggerKey: []KeyExpr{LitKey("PvWatts")},
		Puts:       []PutSpec{{Table: "SumMonth", Key: []KeyExpr{LitKey("SumMonth")}}},
	}
	ck := NewChecker(po(t))
	obs := ck.Check([]RuleSpec{r})
	if obs[0].Proved {
		t.Fatal("incomparable literals must not be proved")
	}
	if !strings.Contains(obs[0].Reason, "incomparable") {
		t.Errorf("reason = %q", obs[0].Reason)
	}
}

func TestNegativeQueryNeedsStrictPast(t *testing.T) {
	// Obligation 3: negative query timestamp must be strictly before the
	// trigger. Query at frame-1 proves; query at frame does not.
	base := RuleSpec{
		Name:       "check",
		Trigger:    "Ship",
		TriggerKey: []KeyExpr{LitKey("Int"), ExprKey(Var("trig.frame"))},
		Queries: []QuerySpec{{
			Table: "Ship",
			Kind:  Negative,
			Key:   []KeyExpr{LitKey("Int"), ExprKey(Var("trig.frame").AddConst(-1))},
		}},
	}
	ck := NewChecker(po(t))
	if obs := ck.Check([]RuleSpec{base}); !obs[0].Proved {
		t.Fatalf("strict-past negative query: %+v", obs)
	}
	base.Queries[0].Key = []KeyExpr{LitKey("Int"), ExprKey(Var("trig.frame"))}
	obs := ck.Check([]RuleSpec{base})
	if obs[0].Proved {
		t.Fatal("same-timestamp negative query must fail (obligation 3)")
	}
	if !strings.Contains(obs[0].Reason, "strict") {
		t.Errorf("reason = %q", obs[0].Reason)
	}
}

func TestPositiveQueryAllowsPresent(t *testing.T) {
	r := RuleSpec{
		Name:       "read",
		Trigger:    "Ship",
		TriggerKey: []KeyExpr{LitKey("Int"), ExprKey(Var("trig.frame"))},
		Queries: []QuerySpec{{
			Table: "Ship",
			Kind:  Positive,
			Key:   []KeyExpr{LitKey("Int"), ExprKey(Var("trig.frame"))},
		}},
	}
	ck := NewChecker(po(t))
	if obs := ck.Check([]RuleSpec{r}); !obs[0].Proved {
		t.Fatalf("present positive query must be proved: %+v", obs)
	}
}

func TestDijkstraRuleProved(t *testing.T) {
	// foreach (Estimate dist): negative query Done(dist.vertex) with
	// distance < dist.distance; puts Done(dist.distance) and
	// Estimate(dist.distance + edge.value) with edge.value >= 1.
	p := po(t, []string{"Vertex", "Edge", "Int"}, []string{"Estimate", "Done"})
	r := RuleSpec{
		Name:       "dijkstra",
		Trigger:    "Estimate",
		TriggerKey: []KeyExpr{LitKey("Int"), ExprKey(Var("trig.distance")), LitKey("Estimate")},
		Invariants: []Constraint{GE(Var("edge.value"), Const(1))},
		Puts: []PutSpec{
			{
				Table: "Done",
				Key:   []KeyExpr{LitKey("Int"), ExprKey(Var("trig.distance")), LitKey("Done")},
			},
			{
				Table: "Estimate",
				Key: []KeyExpr{LitKey("Int"),
					ExprKey(Var("trig.distance").Add(Var("edge.value"))), LitKey("Estimate")},
			},
		},
		Queries: []QuerySpec{{
			Table: "Done",
			Kind:  Negative,
			// Done tuples with distance < dist.distance: the query lambda
			// bounds the queried timestamp.
			Guard: []Constraint{LT(Var("done.distance"), Var("trig.distance"))},
			Key:   []KeyExpr{LitKey("Int"), ExprKey(Var("done.distance")), LitKey("Done")},
		}},
	}
	ck := NewChecker(p)
	obs := ck.Check([]RuleSpec{r})
	for _, o := range obs {
		if !o.Proved {
			t.Errorf("unproved: %+v", o)
		}
	}
	rep := Report(obs)
	if !strings.Contains(rep, "3/3 obligations proved") {
		t.Errorf("report:\n%s", rep)
	}
}

func TestMixedLevelKindsRejected(t *testing.T) {
	r := RuleSpec{
		Name:       "bad",
		Trigger:    "A",
		TriggerKey: []KeyExpr{LitKey("A")},
		Puts:       []PutSpec{{Table: "B", Key: []KeyExpr{ExprKey(Var("x"))}}},
	}
	ck := NewChecker(po(t))
	obs := ck.Check([]RuleSpec{r})
	if obs[0].Proved || !strings.Contains(obs[0].Reason, "mixes") {
		t.Errorf("mixed level kinds: %+v", obs[0])
	}
}

func TestPrefixKeyRules(t *testing.T) {
	ck := NewChecker(po(t))
	// Put key longer than trigger key with equal prefix: put sorts after
	// (future) — proved.
	r := RuleSpec{
		Name:       "deepen",
		Trigger:    "A",
		TriggerKey: []KeyExpr{ExprKey(Var("trig.t"))},
		Puts: []PutSpec{{
			Table: "B",
			Key:   []KeyExpr{ExprKey(Var("trig.t")), ExprKey(Var("trig.x"))},
		}},
	}
	if obs := ck.Check([]RuleSpec{r}); !obs[0].Proved {
		t.Fatalf("longer put key must be proved: %+v", obs)
	}
	// Put key shorter than trigger key: put sorts before (past) — fails.
	r2 := RuleSpec{
		Name:       "shorten",
		Trigger:    "A",
		TriggerKey: []KeyExpr{ExprKey(Var("trig.t")), ExprKey(Var("trig.x"))},
		Puts:       []PutSpec{{Table: "B", Key: []KeyExpr{ExprKey(Var("trig.t"))}}},
	}
	if obs := ck.Check([]RuleSpec{r2}); obs[0].Proved {
		t.Fatal("shorter put key must fail (sorts before the trigger)")
	}
}

func TestReportFormatsWarnings(t *testing.T) {
	r := shipRule()
	r.Puts[0].Key = []KeyExpr{LitKey("Int"), ExprKey(Var("trig.frame").AddConst(-1))}
	ck := NewChecker(po(t))
	rep := Report(ck.Check([]RuleSpec{r}))
	if !strings.Contains(rep, "WARNING") || !strings.Contains(rep, "0/1") {
		t.Errorf("report:\n%s", rep)
	}
}

func TestKeyOfSchemaHelper(t *testing.T) {
	s := mustShipSchema()
	key := KeyOfSchema(s, "trig")
	if len(key) != 2 || key[0].Lit != "Int" {
		t.Fatalf("key = %+v", key)
	}
	if key[1].Expr.String() != "trig.frame" {
		t.Errorf("key[1] = %s", key[1].Expr.String())
	}
}

func mustShipSchema() *tuple.Schema {
	return tuple.MustSchema("Ship",
		[]tuple.Column{{Name: "frame", Kind: tuple.KindInt}, {Name: "x", Kind: tuple.KindInt}},
		[]tuple.OrderEntry{tuple.Lit("Int"), tuple.Seq("frame")})
}
