package causality

import (
	"fmt"
	"strings"

	"github.com/jstar-lang/jstar/internal/order"
	"github.com/jstar-lang/jstar/internal/tuple"
)

// KeyExpr is one component of a symbolic causal key: either a literal name
// or a linear expression over the rule's variables (trigger fields, query
// results, locals).
type KeyExpr struct {
	Lit  string // literal component when non-empty
	Expr Expr   // otherwise a linear expression
}

// LitKey returns a literal key component.
func LitKey(name string) KeyExpr { return KeyExpr{Lit: name} }

// ExprKey returns an expression key component.
func ExprKey(e Expr) KeyExpr { return KeyExpr{Expr: e} }

// QueryKind classifies database queries for the causality law: positive
// queries may read the present (<= T), negative and aggregate queries only
// the strict past (< T), because future puts could change their results.
type QueryKind int

const (
	// Positive is an existence/join query over stored tuples.
	Positive QueryKind = iota
	// Negative checks that tuples are absent.
	Negative
	// Aggregate counts/sums/combines tuples.
	Aggregate
)

func (k QueryKind) String() string {
	switch k {
	case Positive:
		return "positive"
	case Negative:
		return "negative"
	default:
		return "aggregate"
	}
}

// PutSpec symbolically describes one `put` statement: the guard is the path
// condition under which it executes, Key the orderby list of the new tuple.
type PutSpec struct {
	Table string
	Guard []Constraint
	Key   []KeyExpr
}

// QuerySpec symbolically describes one database query.
type QuerySpec struct {
	Table string
	Kind  QueryKind
	Guard []Constraint
	Key   []KeyExpr
}

// RuleSpec is the symbolic description of a rule that the checker verifies
// against the causality law. TriggerKey is the orderby list of the trigger
// tuple; Invariants are the declared tuple invariants (`inv(trig)` in the
// paper's obligations).
type RuleSpec struct {
	Name       string
	Trigger    string
	TriggerKey []KeyExpr
	Invariants []Constraint
	Puts       []PutSpec
	Queries    []QuerySpec
}

// Obligation is one proof obligation and its outcome.
type Obligation struct {
	Rule    string
	Kind    string // "put" or "query"
	Target  string // table of the put/query
	Proved  bool
	Reason  string // why the proof failed (empty when proved)
	Formula string // human-readable obligation
}

// Checker verifies rule specs against a partial order over literal names.
type Checker struct {
	po *order.PartialOrder
}

// NewChecker returns a checker using the program's order declarations.
func NewChecker(po *order.PartialOrder) *Checker { return &Checker{po: po} }

// Check generates and discharges all obligations for the given rules:
// for every put, orderby(trig) <= orderby(new); for every negative or
// aggregate query, orderby(query) < orderby(trig) (§4 obligations 1–3).
// Positive queries need orderby(query) <= orderby(trig).
func (ck *Checker) Check(rules []RuleSpec) []Obligation {
	var out []Obligation
	for _, r := range rules {
		for _, p := range r.Puts {
			hyps := append(append([]Constraint{}, r.Invariants...), p.Guard...)
			ob := Obligation{
				Rule: r.Name, Kind: "put", Target: p.Table,
				Formula: fmt.Sprintf("inv(%s) ∧ guard ⟹ orderby(%s) ≤ orderby(%s)",
					r.Trigger, r.Trigger, p.Table),
			}
			ob.Proved, ob.Reason = ck.lexLE(hyps, r.TriggerKey, p.Key, false)
			out = append(out, ob)
		}
		for _, q := range r.Queries {
			strict := q.Kind != Positive
			rel := "≤"
			if strict {
				rel = "<"
			}
			hyps := append(append([]Constraint{}, r.Invariants...), q.Guard...)
			ob := Obligation{
				Rule: r.Name, Kind: "query", Target: q.Table,
				Formula: fmt.Sprintf("inv(%s) ∧ guard ⟹ orderby(%s(query)) %s orderby(%s)",
					r.Trigger, q.Table, rel, r.Trigger),
			}
			ob.Proved, ob.Reason = ck.lexLE(hyps, q.Key, r.TriggerKey, strict)
			out = append(out, ob)
		}
	}
	return out
}

// lexLE proves hyps ⟹ a ≤lex b (or a <lex b when strict). The proof
// refutes the negation: b <lex a (resp. b ≤lex a) is a disjunction over
// the level at which b first beats a; every disjunct must be inconsistent
// with the hypotheses.
func (ck *Checker) lexLE(hyps []Constraint, a, b []KeyExpr, strict bool) (bool, string) {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	// Disjunct k (0-based): a[i] = b[i] for i < k, and b[k] < a[k].
	// For the non-strict goal we must also refute "all equal" only when
	// strict (negation of a < b includes equality).
	eqSoFar := append([]Constraint{}, hyps...)
	for k := 0; k < n; k++ {
		ak, bk := a[k], b[k]
		if (ak.Lit != "") != (bk.Lit != "") {
			return false, fmt.Sprintf("level %d mixes literal and expression components", k)
		}
		if ak.Lit != "" {
			// Literal components: decided by the partial order, no FM.
			switch {
			case ak.Lit == bk.Lit:
				continue // equal; move to next level
			case ck.po.Less(ak.Lit, bk.Lit):
				return true, "" // a strictly below b at this level: a <lex b
			case ck.po.Less(bk.Lit, ak.Lit):
				return false, fmt.Sprintf("level %d: %s > %s in the declared order", k, ak.Lit, bk.Lit)
			default:
				return false, fmt.Sprintf("level %d: literals %s and %s are incomparable — add an order declaration", k, ak.Lit, bk.Lit)
			}
		}
		// Expression components. Refute: eqSoFar ∧ b[k] < a[k].
		bad := append(append([]Constraint{}, eqSoFar...), LT(bk.Expr, ak.Expr))
		if Satisfiable(bad) {
			return false, fmt.Sprintf("level %d: cannot prove %s ≤ %s", k, ak.Expr.String(), bk.Expr.String())
		}
		// If a[k] < b[k] is entailed, the comparison is settled strictly.
		if Entails(eqSoFar, LT(ak.Expr, bk.Expr)) {
			return true, ""
		}
		// Otherwise continue under a[k] = b[k].
		eqSoFar = append(eqSoFar, EQ(ak.Expr, bk.Expr)...)
	}
	// All compared levels may be equal.
	switch {
	case len(a) < len(b):
		return true, "" // shorter key sorts first (prefix rule)
	case len(a) > len(b):
		return false, "key of left side extends the right side (left sorts after)"
	case strict:
		return false, "keys may be equal, but strict ordering is required (negative/aggregate query must read the strict past)"
	default:
		return true, ""
	}
}

// KeyOfSchema builds the symbolic causal key of a table's own tuples, with
// `seq`/`par` fields named prefix.field (e.g. "trig.frame").
func KeyOfSchema(s *tuple.Schema, prefix string) []KeyExpr {
	out := make([]KeyExpr, 0, len(s.OrderBy))
	for _, e := range s.OrderBy {
		switch e.Kind {
		case tuple.OrderLit:
			out = append(out, LitKey(e.Lit))
		default:
			out = append(out, ExprKey(Var(prefix+"."+e.Field)))
		}
	}
	return out
}

// Report formats obligations in the style of the compiler's warnings.
func Report(obs []Obligation) string {
	var b strings.Builder
	proved := 0
	for _, o := range obs {
		if o.Proved {
			proved++
			fmt.Fprintf(&b, "PROVED  rule %-20s %-5s %-12s %s\n", o.Rule, o.Kind, o.Target, o.Formula)
		} else {
			fmt.Fprintf(&b, "WARNING rule %-20s %-5s %-12s %s\n        cannot prove: %s\n",
				o.Rule, o.Kind, o.Target, o.Formula, o.Reason)
		}
	}
	fmt.Fprintf(&b, "%d/%d obligations proved\n", proved, len(obs))
	return b.String()
}

// AllProved reports whether every obligation was discharged.
func AllProved(obs []Obligation) bool {
	for _, o := range obs {
		if !o.Proved {
			return false
		}
	}
	return true
}
