// Package causality implements JStar's static causality checking (§4).
//
// The paper sends one proof obligation per `put` (the new tuple is in the
// present or future of the trigger) and one per negative/aggregate query
// (the queried timestamp is strictly in the past) to an SMT solver. The
// obligations are linear inequalities over tuple timestamp fields, so this
// package substitutes a complete decision procedure for exactly that
// fragment: Fourier–Motzkin elimination over the rationals, with exact
// big.Rat arithmetic.
package causality

import (
	"fmt"
	"math/big"
	"sort"
	"strings"
)

// Expr is a linear expression over named rational variables:
// sum(coef[v] * v) + konst.
type Expr struct {
	coef  map[string]*big.Rat
	konst *big.Rat
}

// Var returns the expression consisting of one variable.
func Var(name string) Expr {
	return Expr{coef: map[string]*big.Rat{name: big.NewRat(1, 1)}, konst: new(big.Rat)}
}

// Const returns a constant expression.
func Const(k int64) Expr {
	return Expr{coef: map[string]*big.Rat{}, konst: big.NewRat(k, 1)}
}

func (e Expr) clone() Expr {
	c := make(map[string]*big.Rat, len(e.coef))
	for v, r := range e.coef {
		c[v] = new(big.Rat).Set(r)
	}
	return Expr{coef: c, konst: new(big.Rat).Set(e.konst)}
}

// Add returns e + o.
func (e Expr) Add(o Expr) Expr {
	r := e.clone()
	for v, c := range o.coef {
		if cur, ok := r.coef[v]; ok {
			cur.Add(cur, c)
			if cur.Sign() == 0 {
				delete(r.coef, v)
			}
		} else {
			r.coef[v] = new(big.Rat).Set(c)
		}
	}
	r.konst.Add(r.konst, o.konst)
	return r
}

// Sub returns e - o.
func (e Expr) Sub(o Expr) Expr { return e.Add(o.Scale(-1)) }

// Scale returns k * e.
func (e Expr) Scale(k int64) Expr {
	r := e.clone()
	f := big.NewRat(k, 1)
	for v := range r.coef {
		r.coef[v].Mul(r.coef[v], f)
		if r.coef[v].Sign() == 0 {
			delete(r.coef, v)
		}
	}
	r.konst.Mul(r.konst, f)
	return r
}

// AddConst returns e + k.
func (e Expr) AddConst(k int64) Expr { return e.Add(Const(k)) }

// IsConst reports whether e has no variables, returning its value.
func (e Expr) IsConst() (*big.Rat, bool) {
	if len(e.coef) == 0 {
		return e.konst, true
	}
	return nil, false
}

// String renders the expression deterministically.
func (e Expr) String() string {
	vars := make([]string, 0, len(e.coef))
	for v := range e.coef {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	var b strings.Builder
	for _, v := range vars {
		c := e.coef[v]
		if b.Len() > 0 && c.Sign() >= 0 {
			b.WriteString(" + ")
		} else if c.Sign() < 0 {
			if b.Len() > 0 {
				b.WriteString(" - ")
			} else {
				b.WriteString("-")
			}
		}
		abs := new(big.Rat).Abs(c)
		if abs.Cmp(big.NewRat(1, 1)) != 0 {
			b.WriteString(abs.RatString())
			b.WriteString("*")
		}
		b.WriteString(v)
	}
	if b.Len() == 0 {
		return e.konst.RatString()
	}
	if e.konst.Sign() > 0 {
		b.WriteString(" + ")
		b.WriteString(e.konst.RatString())
	} else if e.konst.Sign() < 0 {
		b.WriteString(" - ")
		b.WriteString(new(big.Rat).Abs(e.konst).RatString())
	}
	return b.String()
}

// Constraint asserts Expr >= 0 (or > 0 when Strict).
type Constraint struct {
	E      Expr
	Strict bool
}

// GE returns the constraint a >= b.
func GE(a, b Expr) Constraint { return Constraint{E: a.Sub(b)} }

// GT returns the constraint a > b.
func GT(a, b Expr) Constraint { return Constraint{E: a.Sub(b), Strict: true} }

// LE returns the constraint a <= b.
func LE(a, b Expr) Constraint { return GE(b, a) }

// LT returns the constraint a < b.
func LT(a, b Expr) Constraint { return GT(b, a) }

// EQ returns both directions of a == b.
func EQ(a, b Expr) []Constraint { return []Constraint{GE(a, b), GE(b, a)} }

// String renders the constraint.
func (c Constraint) String() string {
	op := ">="
	if c.Strict {
		op = ">"
	}
	return fmt.Sprintf("%s %s 0", c.E.String(), op)
}

// Satisfiable decides whether the conjunction of constraints has a rational
// solution, by Fourier–Motzkin variable elimination. Complete for linear
// rational arithmetic; exponential in the worst case, but causality
// obligations involve a handful of timestamp fields.
func Satisfiable(cons []Constraint) bool {
	// Copy.
	cur := make([]Constraint, 0, len(cons))
	for _, c := range cons {
		cur = append(cur, Constraint{E: c.E.clone(), Strict: c.Strict})
	}
	for {
		// Collect remaining variables.
		varSet := map[string]bool{}
		for _, c := range cur {
			for v := range c.E.coef {
				varSet[v] = true
			}
		}
		if len(varSet) == 0 {
			break
		}
		// Eliminate the variable with the fewest occurrences (heuristic).
		vars := make([]string, 0, len(varSet))
		for v := range varSet {
			vars = append(vars, v)
		}
		sort.Strings(vars)
		best, bestCount := vars[0], 1<<30
		for _, v := range vars {
			n := 0
			for _, c := range cur {
				if _, ok := c.E.coef[v]; ok {
					n++
				}
			}
			if n < bestCount {
				best, bestCount = v, n
			}
		}
		next, ok := eliminate(cur, best)
		if !ok {
			return false // contradiction surfaced early
		}
		cur = next
	}
	// Only constants remain: every constraint must hold.
	for _, c := range cur {
		k, _ := c.E.IsConst()
		if c.Strict {
			if k.Sign() <= 0 {
				return false
			}
		} else if k.Sign() < 0 {
			return false
		}
	}
	return true
}

// eliminate removes variable v by combining each lower bound with each
// upper bound. ok is false on an immediate constant contradiction.
func eliminate(cons []Constraint, v string) (result []Constraint, ok bool) {
	var lowers, uppers, rest []Constraint
	for _, c := range cons {
		coef, ok := c.E.coef[v]
		if !ok {
			rest = append(rest, c)
			continue
		}
		if coef.Sign() > 0 {
			lowers = append(lowers, c) // a*v + r >= 0 with a>0: v >= -r/a
		} else {
			uppers = append(uppers, c) // a<0: v <= r/|a|
		}
	}
	out := rest
	for _, lo := range lowers {
		for _, up := range uppers {
			// lo: aL*v + rL >= 0 (aL>0);  up: aU*v + rU >= 0 (aU<0).
			// Combine: aL*rU - aU*rL ... scale lo by -aU and up by aL, add.
			aL := lo.E.coef[v]
			aU := up.E.coef[v]
			l := scaleRat(lo.E, new(big.Rat).Neg(aU)) // -aU > 0
			u := scaleRat(up.E, aL)                   // aL > 0
			comb := l.Add(u)
			delete(comb.coef, v) // exact cancellation (guard numeric drift)
			c := Constraint{E: comb, Strict: lo.Strict || up.Strict}
			if k, isConst := c.E.IsConst(); isConst {
				if c.Strict {
					if k.Sign() <= 0 {
						return nil, false
					}
				} else if k.Sign() < 0 {
					return nil, false
				}
				continue // trivially true; drop
			}
			out = append(out, c)
		}
	}
	return out, true
}

func scaleRat(e Expr, f *big.Rat) Expr {
	r := e.clone()
	for v := range r.coef {
		r.coef[v].Mul(r.coef[v], f)
		if r.coef[v].Sign() == 0 {
			delete(r.coef, v)
		}
	}
	r.konst.Mul(r.konst, f)
	return r
}

// Entails decides whether hyps logically imply concl over the rationals:
// valid iff hyps ∧ ¬concl is unsatisfiable. ¬(e >= 0) is -e > 0, and
// ¬(e > 0) is -e >= 0.
func Entails(hyps []Constraint, concl Constraint) bool {
	neg := Constraint{E: concl.E.Scale(-1), Strict: !concl.Strict}
	return !Satisfiable(append(append([]Constraint{}, hyps...), neg))
}
