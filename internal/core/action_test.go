package core

import (
	"strings"
	"testing"

	"github.com/jstar-lang/jstar/internal/gamma"
	"github.com/jstar-lang/jstar/internal/tuple"
)

// TestPrintlnTableOrdersOutput: the §6.2 fn 8 "kosher way of printing" —
// Println tuples flow through the Delta set, so their side effects follow
// the causality ordering even under parallel execution.
func TestPrintlnTableOrdersOutput(t *testing.T) {
	for _, opts := range []Options{{Sequential: true}, {Threads: 4}} {
		p := NewProgram()
		work := p.Table("Work",
			[]tuple.Column{{Name: "step", Kind: tuple.KindInt}, {Name: "i", Kind: tuple.KindInt}},
			[]tuple.OrderEntry{tuple.Lit("Int"), tuple.Seq("step")})
		out := p.PrintlnTable("Println",
			[]tuple.OrderEntry{tuple.Lit("Print"), tuple.Seq("line")})
		p.Order("Int", "Print")
		p.Rule("emit", work, func(c *Ctx, w *tuple.Tuple) {
			step, i := w.Int("step"), w.Int("i")
			c.PutNew(out, tuple.String_(string(rune('a'+step))+"-"+string(rune('0'+i))))
			if step < 3 {
				c.PutNew(work, tuple.Int(step+1), tuple.Int(i))
			}
		})
		// Two parallel items per step; output must still be sorted because
		// Println tuples order by (Print, seq line) and print in extraction
		// order (line order within a batch, step order across batches...
		// here all Println tuples land in one batch sorted by line).
		p.Put(tuple.New(work, tuple.Int(0), tuple.Int(0)))
		p.Put(tuple.New(work, tuple.Int(0), tuple.Int(1)))
		run, err := p.Execute(opts)
		if err != nil {
			t.Fatal(err)
		}
		lines := run.Output()
		if len(lines) != 8 {
			t.Fatalf("lines = %q", lines)
		}
		joined := strings.Join(lines, "")
		want := "a-0\na-1\nb-0\nb-1\nc-0\nc-1\nd-0\nd-1\n"
		if joined != want {
			t.Errorf("opts %+v: output\n%q\nwant\n%q", opts, joined, want)
		}
	}
}

func TestActionRunsOnExtractionOnly(t *testing.T) {
	p := NewProgram()
	a := p.Table("A", []tuple.Column{{Name: "v", Kind: tuple.KindInt}},
		[]tuple.OrderEntry{tuple.Seq("v")})
	var seen []int64
	p.Action(a, func(run *Run, t *tuple.Tuple) {
		seen = append(seen, t.Int("v"))
	})
	p.Put(tuple.New(a, tuple.Int(2)))
	p.Put(tuple.New(a, tuple.Int(1)))
	p.Put(tuple.New(a, tuple.Int(2))) // duplicate: one extraction only
	if _, err := p.Execute(Options{Sequential: true}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 2 {
		t.Errorf("actions ran as %v, want [1 2]", seen)
	}
}

func TestDuplicateActionPanics(t *testing.T) {
	p := NewProgram()
	a := p.Table("A", []tuple.Column{{Name: "v", Kind: tuple.KindInt}}, nil)
	p.Action(a, func(*Run, *tuple.Tuple) {})
	defer func() {
		if recover() == nil {
			t.Error("second action on one table must panic")
		}
	}()
	p.Action(a, func(*Run, *tuple.Tuple) {})
}

// TestExecuteEvents drives the event-driven mode (§3): external input
// tuples trigger rules as they arrive; the run ends when the channel
// closes and the database quiesces.
func TestExecuteEvents(t *testing.T) {
	p := NewProgram()
	// Timestamp-first orderby lists: Total(t) must order before Input(t+1)
	// even when several external events are absorbed into the Delta set
	// together, so the timestamp leads and the table literal breaks ties.
	in := p.Table("Input", []tuple.Column{{Name: "t", Kind: tuple.KindInt}},
		[]tuple.OrderEntry{tuple.Seq("t"), tuple.Lit("In")})
	total := p.Table("Total",
		[]tuple.Column{{Name: "t", Kind: tuple.KindInt, Key: true}, {Name: "sum", Kind: tuple.KindInt}},
		[]tuple.OrderEntry{tuple.Seq("t"), tuple.Lit("Total")})
	p.Order("In", "Total")
	// Running sum over inputs: each event queries the previous total.
	p.Rule("accumulate", in, func(c *Ctx, e *tuple.Tuple) {
		ts := e.Int("t")
		prev := c.GetMin(total, gamma.Query{
			Where: func(tt *tuple.Tuple) bool { return tt.Int("t") == ts-1 },
		}, "t")
		var sum int64
		if prev != nil {
			sum = prev.Int("sum")
		}
		c.PutNew(total, tuple.Int(ts), tuple.Int(sum+ts))
	})
	run, err := p.NewRun(Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	events := make(chan *tuple.Tuple)
	go func() {
		for i := int64(1); i <= 5; i++ {
			events <- tuple.New(in, tuple.Int(i))
		}
		close(events)
	}()
	if err := run.ExecuteEvents(events); err != nil {
		t.Fatal(err)
	}
	// Final total: 1+2+3+4+5 = 15.
	last := run.Gamma().Table(total)
	var final int64
	last.Scan(func(tt *tuple.Tuple) bool {
		if tt.Int("t") == 5 {
			final = tt.Int("sum")
		}
		return true
	})
	if final != 15 {
		t.Errorf("running sum = %d, want 15", final)
	}
}

func TestExecuteEventsClosedImmediately(t *testing.T) {
	p := NewProgram()
	a := p.Table("A", []tuple.Column{{Name: "v", Kind: tuple.KindInt}}, nil)
	p.Rule("noop", a, func(*Ctx, *tuple.Tuple) {})
	p.Put(tuple.New(a, tuple.Int(1)))
	run, err := p.NewRun(Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	events := make(chan *tuple.Tuple)
	close(events)
	if err := run.ExecuteEvents(events); err != nil {
		t.Fatal(err)
	}
	if run.Stats().Steps != 1 {
		t.Errorf("steps = %d (initial put must still run)", run.Stats().Steps)
	}
}
