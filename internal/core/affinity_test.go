package core

import (
	"context"
	"fmt"
	"slices"
	"sort"
	"sync"
	"testing"

	"github.com/jstar-lang/jstar/internal/exec"
	"github.com/jstar-lang/jstar/internal/gamma"
	"github.com/jstar-lang/jstar/internal/tuple"
)

// affinityProgram is the parity workload: a fan-out from Src across four
// Work tables sharing one orderby literal (so a single step's batch mixes
// schemas owned by different Gamma shards), each emitting into one shared
// Out table, with heavy cross-slot duplication. srcN/per/mod mirror the
// flush-parity test; the four-way table split is what gives the shard map
// something to route.
const (
	affSrcN = 12
	affPer  = 40
	affMod  = 97
)

// affinityProgram builds the workload; seed adds the initial Src puts (the
// session test injects them through the ingress instead).
func affinityProgram(seed bool) *Program {
	p := NewProgram()
	src := p.Table("Src", []tuple.Column{{Name: "j", Kind: tuple.KindInt}},
		[]tuple.OrderEntry{tuple.Lit("Src")})
	works := make([]*tuple.Schema, 4)
	for i := range works {
		works[i] = p.Table(fmt.Sprintf("Work%d", i),
			[]tuple.Column{{Name: "v", Kind: tuple.KindInt}},
			[]tuple.OrderEntry{tuple.Lit("Work")})
	}
	out := p.Table("Out", []tuple.Column{{Name: "v", Kind: tuple.KindInt}},
		[]tuple.OrderEntry{tuple.Lit("Out")})
	p.Order("Src", "Work", "Out")
	p.Rule("fan", src, func(c *Ctx, tp *tuple.Tuple) {
		j := tp.Int("j")
		for i := int64(0); i < affPer; i++ {
			v := (j*31 + i*7) % affMod
			c.PutNew(works[v%4], tuple.Int(v))
		}
	})
	for i, w := range works {
		k := int64(i)
		p.Rule(fmt.Sprintf("emit%d", i), w, func(c *Ctx, tp *tuple.Tuple) {
			c.PutNew(out, tuple.Int(tp.Int("v")*10+k))
		})
	}
	if seed {
		for j := int64(0); j < affSrcN; j++ {
			p.Put(tuple.New(src, tuple.Int(j)))
		}
	}
	return p
}

func affinitySnapshot(r *Run, table string) []string {
	s := r.Program().Schema(table)
	var lines []string
	r.Gamma().Table(s).Scan(func(tp *tuple.Tuple) bool {
		lines = append(lines, tp.String())
		return true
	})
	sort.Strings(lines)
	return lines
}

// TestAffinityParityAcrossStrategiesAndStores is the tentpole's correctness
// pin: with Options.TableAffinity on, the quiesced Gamma contents and the
// per-table put/duplicate counters must be indistinguishable from the
// affinity-off run, across every strategy, a spread of store kinds, and
// "@N" owner-shard overrides (including an ownership-only "@2" entry). Run
// it under -race: the per-(worker, shard) buffers, the shard-grouped
// beginStep inserts and the shard-parallel endStep merge are exactly the
// paths a routing bug would turn into data races.
func TestAffinityParityAcrossStrategiesAndStores(t *testing.T) {
	plans := []gamma.StorePlan{
		nil,
		{"Work0": "tree", "Work1": "tree@0", "Out": "tree"},
		{"Work0": "skip", "Work1": "skip@1", "Work2": "@2", "Out": "skip"},
		{"Work0": "hash:1", "Work1": "inthash:1@3", "Out": "hash:1"},
		{"Work0": "columnar", "Out": "columnar"},
	}
	strategies := []exec.Strategy{exec.Sequential, exec.ForkJoin, exec.Pipelined}
	tables := []string{"Work0", "Work1", "Work2", "Work3", "Out"}
	type counts struct{ puts, dups int64 }
	var refOut []string
	var refCounts map[string]counts
	for _, strat := range strategies {
		for pi, plan := range plans {
			for _, affinity := range []bool{false, true} {
				name := fmt.Sprintf("%v/plan%d/affinity=%v", strat, pi, affinity)
				opts := Options{
					Strategy: strat, Threads: 4, Quiet: true,
					TableAffinity: affinity, StorePlan: plan.Clone(),
				}
				run, err := affinityProgram(true).Execute(opts)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if affinity && strat != exec.Sequential && run.TableShards() != 4 {
					t.Fatalf("%s: TableShards = %d, want 4 (affinity mode not armed)", name, run.TableShards())
				}
				gotOut := affinitySnapshot(run, "Out")
				gotCounts := map[string]counts{}
				for _, tb := range tables {
					st := run.Stats().Tables[tb]
					gotCounts[tb] = counts{st.Puts.Load(), st.Duplicates.Load()}
				}
				if refOut == nil {
					refOut, refCounts = gotOut, gotCounts
					var workDups int64
					for _, tb := range tables[:4] {
						workDups += gotCounts[tb].dups
					}
					if len(refOut) == 0 || workDups == 0 {
						t.Fatal("workload produced no Out tuples or no Work duplicates; test is vacuous")
					}
					continue
				}
				if !slices.Equal(gotOut, refOut) {
					t.Errorf("%s: Out contents differ from reference (%d vs %d tuples)",
						name, len(gotOut), len(refOut))
				}
				for _, tb := range tables {
					if gotCounts[tb] != refCounts[tb] {
						t.Errorf("%s: table %s counters %+v, reference %+v",
							name, tb, gotCounts[tb], refCounts[tb])
					}
				}
			}
		}
	}
}

// TestAffinitySessionIngestParity drives the same workload through the
// session ingress instead of initial puts: concurrent PutBatch publishers,
// sharded ingress lanes, and the affinity absorb path that routes each
// external tuple to the slot of the worker owning its table. The quiesced
// snapshots must match the affinity-off session exactly.
func TestAffinitySessionIngestParity(t *testing.T) {
	runOnce := func(affinity bool) []string {
		p := affinityProgram(false)
		src := p.Schema("Src")
		s, err := p.Start(context.Background(), Options{
			Strategy: exec.ForkJoin, Threads: 4, Quiet: true,
			TableAffinity: affinity, IngressShards: 2, IngressRing: 256,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		var wg sync.WaitGroup
		for w := 0; w < 3; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := int64(0); j < affSrcN; j++ {
					if j%3 != int64(w) {
						continue
					}
					if err := s.Put(tuple.New(src, tuple.Int(j))); err != nil {
						t.Error(err)
						return
					}
				}
			}()
		}
		wg.Wait()
		if err := s.Quiesce(context.Background()); err != nil {
			t.Fatal(err)
		}
		var lines []string
		for _, tp := range s.Snapshot(p.Schema("Out")) {
			lines = append(lines, tp.String())
		}
		sort.Strings(lines)
		return lines
	}
	off := runOnce(false)
	on := runOnce(true)
	if len(off) == 0 {
		t.Fatal("session workload produced no Out tuples; test is vacuous")
	}
	if !slices.Equal(on, off) {
		t.Fatalf("affinity-on session snapshot differs: %d vs %d tuples", len(on), len(off))
	}
}

// TestBuildFirePlanCoversBatch pins the fire plan invariants directly:
// tasks partition the live batch exactly (every tuple fired once), each
// task is shard-homogeneous, and a batch funnelled through one hot table
// still splits into multiple tasks instead of serialising on one worker.
func TestBuildFirePlanCoversBatch(t *testing.T) {
	p := affinityProgram(false)
	r, err := p.NewRun(Options{Strategy: exec.ForkJoin, Threads: 4, Quiet: true, TableAffinity: true})
	if err != nil {
		t.Fatal(err)
	}
	works := make([]*tuple.Schema, 4)
	for i := range works {
		works[i] = p.Schema(fmt.Sprintf("Work%d", i))
	}
	// Mixed batch: tuples from all four Work tables, sorted as beginStep
	// sorts (schema then fields) so owner segments are contiguous.
	var live []*tuple.Tuple
	for i, w := range works {
		for v := int64(0); v < 100; v++ {
			live = append(live, tuple.New(w, tuple.Int(v*int64(i+1))))
		}
	}
	r.buildFirePlan(live)
	if len(r.fireTasks) < 4 {
		t.Fatalf("mixed batch planned %d tasks, want >= 4", len(r.fireTasks))
	}
	next := 0
	for i, task := range r.fireTasks {
		if task.lo != next {
			t.Fatalf("task %d starts at %d, want %d (plan must partition the batch)", i, task.lo, next)
		}
		if task.hi <= task.lo {
			t.Fatalf("task %d is empty [%d,%d)", i, task.lo, task.hi)
		}
		sh := r.shardMap.OwnerID(live[task.lo].Schema().ID())
		for _, tp := range live[task.lo:task.hi] {
			if r.shardMap.OwnerID(tp.Schema().ID()) != sh {
				t.Fatalf("task %d mixes owner shards", i)
			}
		}
		next = task.hi
	}
	if next != len(live) {
		t.Fatalf("plan covers %d of %d live tuples", next, len(live))
	}
	// Hot-table escape hatch: one table's segment must split at the grain.
	hot := live[:0:0]
	for v := int64(0); v < 400; v++ {
		hot = append(hot, tuple.New(works[0], tuple.Int(v)))
	}
	r.buildFirePlan(hot)
	if len(r.fireTasks) < 2 {
		t.Fatalf("hot-table batch planned %d tasks; single-shard steps must still split", len(r.fireTasks))
	}
	routes := map[int]bool{}
	for _, task := range r.fireTasks {
		routes[task.route] = true
	}
	if len(routes) < 2 {
		t.Fatalf("hot-table tasks all route to %v; overflow chunks must spread", r.fireTasks[0].route)
	}
}
