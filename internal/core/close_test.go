package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/jstar-lang/jstar/internal/exec"
	"github.com/jstar-lang/jstar/internal/tuple"
)

// TestSessionCloseRacesPuts hardens the server's hottest shutdown path:
// producer goroutines Put/PutBatch full tilt while Close lands mid-stream.
// Every producer must observe either a clean accept or the documented
// terminal error — never a panic, a hang, or a non-terminal error — and
// an accepted put must never be the last event (Close drains or reports).
func TestSessionCloseRacesPuts(t *testing.T) {
	for _, strat := range []exec.Strategy{exec.Sequential, exec.ForkJoin, exec.Pipelined} {
		t.Run(strat.String(), func(t *testing.T) {
			p, ev, _ := sessionProgram()
			s, err := p.Start(context.Background(), Options{
				Strategy: strat, Threads: 4, IngressRing: 64, Quiet: true})
			if err != nil {
				t.Fatal(err)
			}
			const producers = 6
			var wg sync.WaitGroup
			stop := make(chan struct{})
			for g := 0; g < producers; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						n := int64(g*1_000_000 + i)
						var err error
						if i%3 == 0 {
							err = s.PutBatch(
								tuple.New(ev, tuple.Int(n)),
								tuple.New(ev, tuple.Int(n+500_000)))
						} else {
							err = s.Put(tuple.New(ev, tuple.Int(n)))
						}
						if err != nil {
							if !errors.Is(err, ErrSessionClosed) {
								t.Errorf("producer %d: non-terminal error %v", g, err)
							}
							return
						}
					}
				}(g)
			}
			// Let the producers collide with a live drain, then close.
			time.Sleep(20 * time.Millisecond)
			if err := s.Close(); err != nil {
				t.Errorf("Close = %v", err)
			}
			close(stop)
			wg.Wait()
			// After Close every ingestion surface reports the terminal state.
			if err := s.Put(tuple.New(ev, tuple.Int(-1))); !errors.Is(err, ErrSessionClosed) {
				t.Errorf("Put after Close = %v, want ErrSessionClosed", err)
			}
			if err := s.PutBatch(tuple.New(ev, tuple.Int(-2))); !errors.Is(err, ErrSessionClosed) {
				t.Errorf("PutBatch after Close = %v, want ErrSessionClosed", err)
			}
			if err := s.Quiesce(context.Background()); !errors.Is(err, ErrSessionClosed) {
				t.Errorf("Quiesce after Close = %v, want ErrSessionClosed", err)
			}
		})
	}
}

// TestSessionDoubleClose: Close is documented idempotent — a second (and
// concurrent) Close returns the same terminal error, nil for a clean stop.
func TestSessionDoubleClose(t *testing.T) {
	p, ev, _ := sessionProgram()
	s, err := p.Start(context.Background(), Options{Sequential: true, Quiet: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(tuple.New(ev, tuple.Int(1))); err != nil {
		t.Fatal(err)
	}
	if err := s.Quiesce(context.Background()); err != nil {
		t.Fatal(err)
	}
	const closers = 8
	errs := make(chan error, closers)
	var wg sync.WaitGroup
	for i := 0; i < closers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- s.Close()
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Errorf("concurrent Close = %v, want nil after clean stop", err)
		}
	}
	if err := s.Close(); err != nil {
		t.Errorf("Close after Close = %v, want nil", err)
	}
}

// TestSessionCloseUnblocksFullRing: producers gated on a saturated ingress
// ring must be released by Close with the terminal error, not stranded.
func TestSessionCloseUnblocksFullRing(t *testing.T) {
	p, ev, _ := sessionProgram()
	s, err := p.Start(context.Background(), Options{
		Sequential: true, Quiet: true, IngressRing: 8})
	if err != nil {
		t.Fatal(err)
	}
	// A batch far larger than the ring forces the producer to gate on
	// ring space mid-publish.
	batch := make([]*tuple.Tuple, 4096)
	for i := range batch {
		batch[i] = tuple.New(ev, tuple.Int(int64(i)))
	}
	done := make(chan error, 1)
	go func() { done <- s.PutBatch(batch...) }()
	time.Sleep(10 * time.Millisecond)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		// nil (fully absorbed before close) or the terminal error are the
		// only acceptable answers.
		if err != nil && !errors.Is(err, ErrSessionClosed) {
			t.Errorf("gated PutBatch = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("PutBatch stranded on a full ring across Close")
	}
}
