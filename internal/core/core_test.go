package core

import (
	"sort"
	"strings"
	"testing"

	"github.com/jstar-lang/jstar/internal/gamma"
	"github.com/jstar-lang/jstar/internal/tuple"
)

// shipProgram builds the paper's §3 Ship example: move right by 150 while
// x < 400.
func shipProgram() (*Program, *tuple.Schema) {
	p := NewProgram()
	ship := p.Table("Ship",
		[]tuple.Column{
			{Name: "frame", Kind: tuple.KindInt, Key: true},
			{Name: "x", Kind: tuple.KindInt},
			{Name: "y", Kind: tuple.KindInt},
			{Name: "dx", Kind: tuple.KindInt},
			{Name: "dy", Kind: tuple.KindInt},
		},
		[]tuple.OrderEntry{tuple.Lit("Int"), tuple.Seq("frame")})
	p.Rule("moveRight", ship, func(c *Ctx, s *tuple.Tuple) {
		if s.Int("x") < 400 {
			c.PutNew(ship, tuple.Int(s.Int("frame")+1), tuple.Int(s.Int("x")+150),
				tuple.Int(s.Int("y")), tuple.Int(s.Int("dx")), tuple.Int(s.Int("dy")))
		}
	})
	p.Put(tuple.New(ship, tuple.Int(0), tuple.Int(10), tuple.Int(10), tuple.Int(150), tuple.Int(0)))
	return p, ship
}

func TestShipSequential(t *testing.T) {
	p, ship := shipProgram()
	run, err := p.Execute(Options{Sequential: true, CheckCausality: true})
	if err != nil {
		t.Fatal(err)
	}
	// x: 10 -> 160 -> 310 -> 460 (stops: 460 >= 400). Four tuples.
	if got := run.Gamma().Table(ship).Len(); got != 4 {
		t.Errorf("Ship table has %d tuples, want 4", got)
	}
	var xs []int64
	run.Gamma().Table(ship).Scan(func(tp *tuple.Tuple) bool {
		xs = append(xs, tp.Int("x"))
		return true
	})
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	want := []int64{10, 160, 310, 460}
	for i := range want {
		if xs[i] != want[i] {
			t.Fatalf("x positions = %v, want %v", xs, want)
		}
	}
	if run.Stats().Steps != 4 {
		t.Errorf("steps = %d, want 4 (one frame per step)", run.Stats().Steps)
	}
}

func TestShipParallelSameResult(t *testing.T) {
	p, ship := shipProgram()
	run, err := p.Execute(Options{Threads: 4, CheckCausality: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := run.Gamma().Table(ship).Len(); got != 4 {
		t.Errorf("parallel Ship run has %d tuples, want 4", got)
	}
}

func TestUnconditionalRuleHitsStepLimit(t *testing.T) {
	// The §3 rule without the x < 400 guard "creates an infinite loop that
	// keeps moving the Ship infinitely far to the right".
	p := NewProgram()
	ship := p.Table("Ship",
		[]tuple.Column{{Name: "frame", Kind: tuple.KindInt}, {Name: "x", Kind: tuple.KindInt}},
		[]tuple.OrderEntry{tuple.Lit("Int"), tuple.Seq("frame")})
	p.Rule("forever", ship, func(c *Ctx, s *tuple.Tuple) {
		c.PutNew(ship, tuple.Int(s.Int("frame")+1), tuple.Int(s.Int("x")+150))
	})
	p.Put(tuple.New(ship, tuple.Int(0), tuple.Int(10)))
	_, err := p.Execute(Options{Sequential: true, MaxSteps: 100})
	if err == nil || !strings.Contains(err.Error(), "MaxSteps") {
		t.Fatalf("expected MaxSteps error, got %v", err)
	}
}

func TestCausalityViolationCaught(t *testing.T) {
	p := NewProgram()
	ev := p.Table("Event",
		[]tuple.Column{{Name: "t", Kind: tuple.KindInt}},
		[]tuple.OrderEntry{tuple.Seq("t")})
	p.Rule("timeTravel", ev, func(c *Ctx, e *tuple.Tuple) {
		if e.Int("t") == 5 {
			c.PutNew(ev, tuple.Int(e.Int("t")-1)) // put into the past!
		}
	})
	p.Put(tuple.New(ev, tuple.Int(5)))
	_, err := p.Execute(Options{Sequential: true, CheckCausality: true})
	if err == nil || !strings.Contains(err.Error(), "causality violation") {
		t.Fatalf("expected causality violation, got %v", err)
	}
}

func TestPutSameTimestampAllowed(t *testing.T) {
	// Positive causality: puts at the same timestamp are legal (<=).
	p := NewProgram()
	a := p.Table("A", []tuple.Column{{Name: "t", Kind: tuple.KindInt}},
		[]tuple.OrderEntry{tuple.Seq("t"), tuple.Lit("A")})
	b := p.Table("B", []tuple.Column{{Name: "t", Kind: tuple.KindInt}},
		[]tuple.OrderEntry{tuple.Seq("t"), tuple.Lit("B")})
	p.Order("A", "B")
	p.Rule("echo", a, func(c *Ctx, e *tuple.Tuple) {
		c.PutNew(b, tuple.Int(e.Int("t"))) // same t, later table literal
	})
	p.Put(tuple.New(a, tuple.Int(1)))
	run, err := p.Execute(Options{Sequential: true, CheckCausality: true})
	if err != nil {
		t.Fatal(err)
	}
	if run.Gamma().Table(b).Len() != 1 {
		t.Error("B tuple missing")
	}
}

// pvMiniProgram is a small PvWatts (Fig 4): per-month mean power.
func pvMiniProgram(noDelta bool) (*Program, func(run *Run) map[int64]float64) {
	p := NewProgram()
	pv := p.Table("PvWatts",
		[]tuple.Column{
			{Name: "month", Kind: tuple.KindInt},
			{Name: "day", Kind: tuple.KindInt},
			{Name: "power", Kind: tuple.KindInt},
		},
		[]tuple.OrderEntry{tuple.Lit("PvWatts")})
	sum := p.Table("SumMonth",
		[]tuple.Column{{Name: "month", Kind: tuple.KindInt}},
		[]tuple.OrderEntry{tuple.Lit("SumMonth")})
	res := p.Table("Result",
		[]tuple.Column{{Name: "month", Kind: tuple.KindInt}, {Name: "mean", Kind: tuple.KindFloat}},
		[]tuple.OrderEntry{tuple.Lit("Result")})
	p.Order("PvWatts", "SumMonth", "Result")
	p.Rule("request", pv, func(c *Ctx, t *tuple.Tuple) {
		c.PutNew(sum, tuple.Int(t.Int("month")))
	})
	p.Rule("reduce", sum, func(c *Ctx, s *tuple.Tuple) {
		var n, total int64
		c.ForEach(pv, gamma.Query{Prefix: []tuple.Value{s.Get("month")}}, func(r *tuple.Tuple) bool {
			n++
			total += r.Int("power")
			return true
		})
		c.PutNew(res, s.Get("month"), tuple.Float(float64(total)/float64(n)))
	})
	for m := int64(1); m <= 3; m++ {
		for d := int64(1); d <= 4; d++ {
			p.Put(tuple.New(pv, tuple.Int(m), tuple.Int(d), tuple.Int(m*10+d)))
		}
	}
	read := func(run *Run) map[int64]float64 {
		out := make(map[int64]float64)
		run.Gamma().Table(res).Scan(func(t *tuple.Tuple) bool {
			out[t.Int("month")] = t.Float("mean")
			return true
		})
		return out
	}
	_ = noDelta
	return p, read
}

func TestPvMiniSequentialAndParallelAgree(t *testing.T) {
	want := map[int64]float64{1: 12.5, 2: 22.5, 3: 32.5}
	for _, opts := range []Options{
		{Sequential: true, CheckCausality: true},
		{Threads: 4, CheckCausality: true},
		{Threads: 8},
	} {
		p, read := pvMiniProgram(false)
		run, err := p.Execute(opts)
		if err != nil {
			t.Fatalf("opts %+v: %v", opts, err)
		}
		got := read(run)
		if len(got) != 3 {
			t.Fatalf("opts %+v: results %v", opts, got)
		}
		for m, mean := range want {
			if got[m] != mean {
				t.Errorf("opts %+v: month %d mean = %v, want %v", opts, m, got[m], mean)
			}
		}
	}
}

func TestSumMonthDeduplication(t *testing.T) {
	// 12 PvWatts tuples put only 3 unique SumMonth tuples (set semantics).
	p, _ := pvMiniProgram(false)
	run, err := p.Execute(Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	st := run.Stats().Tables["SumMonth"]
	if st.Puts.Load() != 12 {
		t.Errorf("SumMonth puts = %d, want 12", st.Puts.Load())
	}
	if st.Duplicates.Load() != 9 {
		t.Errorf("SumMonth duplicates = %d, want 9", st.Duplicates.Load())
	}
	if st.Triggers.Load() != 3 {
		t.Errorf("SumMonth triggers = %d, want 3", st.Triggers.Load())
	}
}

func TestNoDeltaProducesSameResults(t *testing.T) {
	// -noDelta PvWatts: tuples go straight to Gamma and fire inline (§5.1).
	p, read := pvMiniProgram(true)
	run, err := p.Execute(Options{Sequential: true, NoDelta: []string{"PvWatts"}})
	if err != nil {
		t.Fatal(err)
	}
	got := read(run)
	if got[1] != 12.5 || got[2] != 22.5 || got[3] != 32.5 {
		t.Errorf("noDelta results = %v", got)
	}
	// PvWatts tuples never entered the Delta tree, so fewer steps ran.
	if run.Stats().Steps >= 16 {
		t.Errorf("steps = %d; noDelta should cut PvWatts steps", run.Stats().Steps)
	}
}

func TestNoGammaSkipsStorage(t *testing.T) {
	p, _ := pvMiniProgram(false)
	run, err := p.Execute(Options{Sequential: true, NoGamma: []string{"SumMonth"}})
	if err != nil {
		t.Fatal(err)
	}
	if run.Gamma().Table(p.Schema("SumMonth")).Len() != 0 {
		t.Error("-noGamma table must not be stored")
	}
	// Results still computed: SumMonth is trigger-only.
	if run.Gamma().Table(p.Schema("Result")).Len() != 3 {
		t.Error("results missing under -noGamma SumMonth")
	}
}

func TestValidateUnknownTables(t *testing.T) {
	p, _ := pvMiniProgram(false)
	if _, err := p.NewRun(Options{NoDelta: []string{"Nope"}}); err == nil {
		t.Error("unknown -noDelta table must fail validation")
	}
	if _, err := p.NewRun(Options{NoGamma: []string{"Nope"}}); err == nil {
		t.Error("unknown -noGamma table must fail validation")
	}
	p.GammaHint("AlsoNope", gamma.NewHashStore(1))
	if _, err := p.NewRun(Options{}); err == nil {
		t.Error("unknown gamma hint table must fail validation")
	}
}

func TestRulePanicBecomesError(t *testing.T) {
	p := NewProgram()
	a := p.Table("A", []tuple.Column{{Name: "v", Kind: tuple.KindInt}}, nil)
	p.Rule("boom", a, func(c *Ctx, t *tuple.Tuple) { panic("kaboom") })
	p.Put(tuple.New(a, tuple.Int(1)))
	_, err := p.Execute(Options{Sequential: true})
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("rule panic not surfaced: %v", err)
	}
}

func TestDuplicateTablePanics(t *testing.T) {
	p := NewProgram()
	p.Table("T", []tuple.Column{{Name: "v", Kind: tuple.KindInt}}, nil)
	defer func() {
		if recover() == nil {
			t.Error("duplicate table must panic")
		}
	}()
	p.Table("T", []tuple.Column{{Name: "v", Kind: tuple.KindInt}}, nil)
}

func TestPutUndeclaredTablePanics(t *testing.T) {
	p := NewProgram()
	a := p.Table("A", []tuple.Column{{Name: "v", Kind: tuple.KindInt}}, nil)
	rogue := tuple.MustSchema("Rogue", []tuple.Column{{Name: "v", Kind: tuple.KindInt}}, nil)
	p.Rule("r", a, func(c *Ctx, t *tuple.Tuple) { c.Put(tuple.New(rogue, tuple.Int(1))) })
	p.Put(tuple.New(a, tuple.Int(1)))
	_, err := p.Execute(Options{Sequential: true})
	if err == nil {
		t.Error("put of undeclared table must fail the run")
	}
}

func TestCtxQueries(t *testing.T) {
	p := NewProgram()
	edge := p.Table("Edge",
		[]tuple.Column{
			{Name: "from", Kind: tuple.KindInt},
			{Name: "to", Kind: tuple.KindInt},
			{Name: "w", Kind: tuple.KindInt},
		},
		[]tuple.OrderEntry{tuple.Lit("Edge")})
	probe := p.Table("Probe", []tuple.Column{{Name: "v", Kind: tuple.KindInt}},
		[]tuple.OrderEntry{tuple.Lit("Probe")})
	p.Order("Edge", "Probe")
	type result struct {
		count int
		sum   int64
		minW  int64
		exist bool
		nope  bool
	}
	var got result
	p.Rule("q", probe, func(c *Ctx, t *tuple.Tuple) {
		q := gamma.Query{Prefix: []tuple.Value{tuple.Int(1)}}
		got.count = c.Count(edge, q)
		got.sum = c.SumInt(edge, q, "w")
		got.minW = c.GetMin(edge, q, "w").Int("w")
		got.exist = c.Exists(edge, q)
		got.nope = c.Exists(edge, gamma.Query{Prefix: []tuple.Value{tuple.Int(99)}})
	})
	p.Put(tuple.New(edge, tuple.Int(1), tuple.Int(2), tuple.Int(5)))
	p.Put(tuple.New(edge, tuple.Int(1), tuple.Int(3), tuple.Int(2)))
	p.Put(tuple.New(edge, tuple.Int(2), tuple.Int(3), tuple.Int(9)))
	p.Put(tuple.New(probe, tuple.Int(0)))
	if _, err := p.Execute(Options{Sequential: true, CheckCausality: true}); err != nil {
		t.Fatal(err)
	}
	if got.count != 2 || got.sum != 7 || got.minW != 2 || !got.exist || got.nope {
		t.Errorf("query results = %+v", got)
	}
}

func TestPrintlnOutput(t *testing.T) {
	p := NewProgram()
	a := p.Table("A", []tuple.Column{{Name: "v", Kind: tuple.KindInt}},
		[]tuple.OrderEntry{tuple.Seq("v")})
	p.Rule("say", a, func(c *Ctx, t *tuple.Tuple) {
		c.Printf("v=%d\n", t.Int("v"))
	})
	for i := int64(3); i > 0; i-- {
		p.Put(tuple.New(a, tuple.Int(i)))
	}
	run, err := p.Execute(Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	out := run.Output()
	// Sequential run, one tuple per step: causally ordered output.
	if len(out) != 3 || out[0] != "v=1\n" || out[2] != "v=3\n" {
		t.Errorf("output = %q", out)
	}
	// Quiet mode discards.
	p2, _ := pvMiniProgram(false)
	run2, err := p2.Execute(Options{Sequential: true, Quiet: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(run2.Output()) != 0 {
		t.Error("quiet run must discard output")
	}
}

func TestQueryFutureCaught(t *testing.T) {
	// A rule that queries a table whose tuples live in its future must be
	// caught by the runtime causality checker.
	p := NewProgram()
	early := p.Table("Early", []tuple.Column{{Name: "v", Kind: tuple.KindInt}},
		[]tuple.OrderEntry{tuple.Lit("Early")})
	late := p.Table("Late", []tuple.Column{{Name: "v", Kind: tuple.KindInt}},
		[]tuple.OrderEntry{tuple.Lit("Late")})
	p.Order("Early", "Late")
	p.Rule("peek", early, func(c *Ctx, t *tuple.Tuple) {
		c.ForEach(late, gamma.Query{}, func(*tuple.Tuple) bool { return true })
	})
	// Late tuple is noDelta so it is in Gamma before Early fires.
	p.Put(tuple.New(late, tuple.Int(1)))
	p.Put(tuple.New(early, tuple.Int(1)))
	_, err := p.Execute(Options{Sequential: true,
		NoDelta: []string{"Late"}, CheckCausality: true})
	if err == nil || !strings.Contains(err.Error(), "future") {
		t.Fatalf("future read not caught: %v", err)
	}
}

func TestStatsPopulated(t *testing.T) {
	p, _ := pvMiniProgram(false)
	run, err := p.Execute(Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	st := run.Stats()
	if st.Steps == 0 || st.TotalFired == 0 || st.Elapsed <= 0 {
		t.Errorf("stats not populated: %+v", st)
	}
	if st.Tables["PvWatts"].Triggers.Load() != 12 {
		t.Errorf("PvWatts triggers = %d", st.Tables["PvWatts"].Triggers.Load())
	}
	if st.Tables["PvWatts"].Queries.Load() != 3 {
		t.Errorf("PvWatts queries = %d (one per SumMonth)", st.Tables["PvWatts"].Queries.Load())
	}
	if st.RuleNanos["reduce"].Load() <= 0 {
		t.Error("rule timing missing")
	}
	if run.DeltaLen() != 0 {
		t.Error("delta must be drained")
	}
}

func TestThreadsReported(t *testing.T) {
	p, _ := pvMiniProgram(false)
	run, err := p.NewRun(Options{Threads: 3})
	if err != nil {
		t.Fatal(err)
	}
	if run.Threads() != 3 {
		t.Errorf("Threads() = %d", run.Threads())
	}
	if err := run.Execute(); err != nil {
		t.Fatal(err)
	}
	seq, err := p.NewRun(Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Threads() != 1 {
		t.Errorf("sequential Threads() = %d", seq.Threads())
	}
	if err := seq.Execute(); err != nil {
		t.Fatal(err)
	}
}
