package core

import (
	"fmt"

	"github.com/jstar-lang/jstar/internal/gamma"
	"github.com/jstar-lang/jstar/internal/order"
	"github.com/jstar-lang/jstar/internal/tuple"
)

// Ctx is the view a rule body has of the running program: it can put new
// tuples, query the Gamma database (positively, negatively, and with
// aggregates), and emit Println output. It corresponds to the generated
// rule environment in the Java backend.
type Ctx struct {
	run     *Run
	rule    *Rule
	trigger *tuple.Tuple
	slot    int // put-buffer slot of the executing participant
}

// Trigger returns the tuple that fired this rule (nil for initial puts).
func (c *Ctx) Trigger() *tuple.Tuple { return c.trigger }

// Bind sets the trigger tuple that subsequent Puts are attributed to and
// causality-checked against. Rule batch bodies (Rule.BatchBody) call it as
// they move through their chunk, since one Ctx now spans many logical
// firings; per-tuple bodies never need it (the engine binds for them).
func (c *Ctx) Bind(t *tuple.Tuple) { c.trigger = t }

// Put adds a new tuple to the database: it is appended to this worker's
// put buffer and flushed into the Delta set as part of the step-boundary
// batch (or, under -noDelta, inserted into Gamma and fired inline). Under
// Options.CheckCausality it panics if the new tuple's causal key precedes
// the trigger's — the law of causality (§4).
func (c *Ctx) Put(t *tuple.Tuple) {
	c.run.put(c.rule.Name, c.trigger, t, c.slot)
}

// PutNew builds a tuple positionally and puts it: ctx.PutNew(ship, v...) is
// `put new Ship(v...)`.
func (c *Ctx) PutNew(s *tuple.Schema, fields ...tuple.Value) {
	c.Put(tuple.New(s, fields...))
}

// checkResult enforces, in CheckCausality mode, that a query result is not
// from the future of the trigger (positive queries need key <= trigger).
func (c *Ctx) checkResult(t *tuple.Tuple) {
	if !c.run.opts.CheckCausality || c.trigger == nil {
		return
	}
	po := c.run.prog.po
	if order.Compare(order.KeyOf(po, t), order.KeyOf(po, c.trigger)) > 0 {
		panic(fmt.Sprintf("jstar: causality violation: rule %s triggered by %v read future tuple %v",
			c.rule.Name, c.trigger, t))
	}
}

// ForEach visits the tuples of table s matching q — the positive query form
// `for (x : get T(prefix, [where])) { ... }`.
func (c *Ctx) ForEach(s *tuple.Schema, q gamma.Query, fn func(t *tuple.Tuple) bool) {
	st := c.run.tableStats(s)
	st.Queries.Add(1)
	if n := int64(len(q.Prefix)); n > 0 {
		st.noteIndexed(1, n, n)
	}
	c.run.gammaDB.Table(s).Select(q, func(t *tuple.Tuple) bool {
		c.checkResult(t)
		return fn(t)
	})
}

// ForEachBatch runs a sequence of positive queries against table s as one
// batched probe (gamma.SelectBatch) — the read-side counterpart of the
// batched firing path, used by rule batch bodies so a chunk of firings
// issues one probe sequence instead of len(qs) independent Selects. fn is
// called with the query index and each of that query's matches, per query
// in index order; returning false stops that query's iteration only.
//
// triggers, when non-nil, must hold one trigger tuple per query: each
// query's results are then causality-checked against — and Puts made from
// fn attributed to — its own trigger, exactly as if the queries had run in
// separate firings. Table query statistics count len(qs) queries in one
// update.
func (c *Ctx) ForEachBatch(s *tuple.Schema, qs []gamma.Query, triggers []*tuple.Tuple, fn func(qi int, t *tuple.Tuple) bool) {
	if len(qs) == 0 {
		return
	}
	if triggers != nil && len(triggers) != len(qs) {
		panic(fmt.Sprintf("jstar: ForEachBatch on %s: %d triggers for %d queries", s.Name, len(triggers), len(qs)))
	}
	st := c.run.tableStats(s)
	st.Queries.Add(int64(len(qs)))
	var indexed, plen, min int64
	for i := range qs {
		if n := int64(len(qs[i].Prefix)); n > 0 {
			indexed++
			plen += n
			if min == 0 || n < min {
				min = n
			}
		}
	}
	if indexed > 0 {
		st.noteIndexed(indexed, plen, min)
	}
	gamma.SelectBatch(c.run.gammaDB.Table(s), qs, func(qi int, t *tuple.Tuple) bool {
		if triggers != nil {
			c.trigger = triggers[qi]
		}
		c.checkResult(t)
		return fn(qi, t)
	})
}

// GetUniq returns the unique tuple matching q, or nil — `get uniq? T(...)`.
// With more than one match it returns the first in store order (real JStar
// flags this statically when the key does not force uniqueness).
func (c *Ctx) GetUniq(s *tuple.Schema, q gamma.Query) *tuple.Tuple {
	var got *tuple.Tuple
	c.ForEach(s, q, func(t *tuple.Tuple) bool {
		got = t
		return false
	})
	return got
}

// Exists reports whether any tuple matches q. `get uniq? T(...) == null` is
// the negative query form; Exists is its complement.
func (c *Ctx) Exists(s *tuple.Schema, q gamma.Query) bool {
	return c.GetUniq(s, q) != nil
}

// Count returns the number of matching tuples (an aggregate query).
func (c *Ctx) Count(s *tuple.Schema, q gamma.Query) int {
	n := 0
	c.ForEach(s, q, func(*tuple.Tuple) bool { n++; return true })
	return n
}

// GetMin returns the matching tuple with the smallest value of the named
// column — `get min T(...)` (an aggregate query).
func (c *Ctx) GetMin(s *tuple.Schema, q gamma.Query, col string) *tuple.Tuple {
	var best *tuple.Tuple
	c.ForEach(s, q, func(t *tuple.Tuple) bool {
		if best == nil || tuple.Compare(t.Get(col), best.Get(col)) < 0 {
			best = t
		}
		return true
	})
	return best
}

// SumInt sums an int column over the matching tuples (aggregate query).
func (c *Ctx) SumInt(s *tuple.Schema, q gamma.Query, col string) int64 {
	var sum int64
	c.ForEach(s, q, func(t *tuple.Tuple) bool { sum += t.Int(col); return true })
	return sum
}

// Println emits debugging/tracing output. As the paper notes (§6.2 fn 8),
// println has side effects, so rule output within one parallel batch is
// unordered; the kosher way to order output is to put Println-like tuples
// and let the Delta ordering sequence them.
func (c *Ctx) Println(args ...any) {
	c.run.out.add(fmt.Sprintln(args...))
}

// Printf is Println's formatted sibling.
func (c *Ctx) Printf(format string, args ...any) {
	c.run.out.add(fmt.Sprintf(format, args...))
}

// GammaTable exposes the raw store of a table, for rules that use the
// typed fast paths of custom data structures (native arrays, §6.4/§6.6) —
// the analogue of generated Java code operating directly on int[][].
func (c *Ctx) GammaTable(s *tuple.Schema) gamma.Store {
	return c.run.gammaDB.Table(s)
}

// Pool returns the run's scheduling pool, or nil in sequential mode. Rules
// use it for the §5.2 "additional parallelism": loops inside a rule with
// independent bodies.
func (c *Ctx) Pool() PoolRef { return c.run.pool }

// Threads reports the run's degree of parallelism.
func (c *Ctx) Threads() int { return c.run.Threads() }
