package core

import (
	"context"
	"fmt"
	"time"

	"github.com/jstar-lang/jstar/internal/gamma"
	"github.com/jstar-lang/jstar/internal/tuple"
	"github.com/jstar-lang/jstar/internal/wal"
)

// DurabilityOptions turns a session durable: every external tuple the
// coordinator absorbs from the ingress ring is teed into a segmented
// write-ahead log (group-committed off the hot path), Gamma is
// checkpointed at quiescent boundaries, and a session started over an
// existing log directory recovers — newest valid checkpoint restored,
// WAL tail replayed through the ordinary put path to the same fixpoint.
//
// The tee sits at ring-drain time, not in Put: producers never wait on
// the log, and the durable sequence is exactly the absorption order, so a
// checkpoint taken at a quiescent boundary covers a well-defined prefix
// of the input. The durable watermark (the newest checkpoint's sequence)
// therefore only ever advances at a quiesced boundary — a session that
// dies mid-drain leaves the watermark at its last quiescence.
type DurabilityOptions struct {
	// Dir is the log directory. Ignored when FS is set.
	Dir string
	// FS overrides the file layer — the crash-fault suite injects
	// wal.FaultFS here; production leaves it nil and uses Dir.
	FS wal.FS
	// Identity names the tenant/program in segment headers and
	// checkpoints; recovery refuses a directory written under a different
	// identity. Empty means "jstar".
	Identity string
	// GroupBytes / GroupInterval / SegmentBytes tune the log's group
	// commit and rotation; zero values take wal.Options defaults
	// (64 KiB, 2ms, 4 MiB).
	GroupBytes    int
	GroupInterval time.Duration
	SegmentBytes  int64
	// CheckpointEvery writes a Gamma checkpoint every N quiescent
	// boundaries that durably absorbed new input. 0 disables automatic
	// checkpoints; Session.Checkpoint still works on demand.
	CheckpointEvery int
}

func (d *DurabilityOptions) validate() []string {
	var errs []string
	if d.Dir == "" && d.FS == nil {
		errs = append(errs, "Durability: one of Dir or FS is required")
	}
	if d.GroupBytes < 0 {
		errs = append(errs, fmt.Sprintf("Durability.GroupBytes: %d is negative", d.GroupBytes))
	}
	if d.GroupInterval < 0 {
		errs = append(errs, fmt.Sprintf("Durability.GroupInterval: %v is negative", d.GroupInterval))
	}
	if d.SegmentBytes < 0 {
		errs = append(errs, fmt.Sprintf("Durability.SegmentBytes: %d is negative", d.SegmentBytes))
	}
	if d.CheckpointEvery < 0 {
		errs = append(errs, fmt.Sprintf("Durability.CheckpointEvery: %d is negative (0 disables automatic checkpoints)", d.CheckpointEvery))
	}
	return errs
}

func (d *DurabilityOptions) identity() string {
	if d.Identity == "" {
		return "jstar"
	}
	return d.Identity
}

// RecoveryInfo describes what Start found in an existing log directory.
type RecoveryInfo struct {
	// CheckpointSeq is the restored checkpoint's covered sequence (0 if
	// the directory had no usable checkpoint).
	CheckpointSeq uint64
	// CheckpointTables / CheckpointTuples count what the checkpoint
	// restored directly into Gamma.
	CheckpointTables int
	CheckpointTuples int
	// Replayed counts WAL-tail tuples re-put through the engine.
	Replayed int
	// DurableSeq is the input prefix the recovered state covers.
	DurableSeq uint64
	// TruncatedBytes counts benign torn-tail bytes cut during recovery.
	TruncatedBytes int64
}

// CheckpointInfo describes one written checkpoint.
type CheckpointInfo struct {
	// Seq is the input sequence the checkpoint covers — the durable
	// watermark after this write.
	Seq     uint64
	Tables  int
	Tuples  int
	Elapsed time.Duration
}

// checkpointRequest is one queued Session.Checkpoint call, served by the
// coordinator at a quiescent boundary (the Migrate pattern).
type checkpointRequest struct {
	done chan checkpointResult // buffered(1)
}

type checkpointResult struct {
	info *CheckpointInfo
	err  error
}

// openWAL opens (or recovers) the session's log before the coordinator
// loop starts: checkpoint rows are bulk-restored into Gamma — safe, the
// database is untouched and single-owned here — and the WAL tail is
// parked for the loop to replay after seeding.
func (s *Session) openWAL(d *DurabilityOptions) error {
	fs := d.FS
	if fs == nil {
		fs = wal.DirFS(d.Dir)
	}
	r := s.run
	log, rec, err := wal.Open(wal.Options{
		FS:            fs,
		Identity:      d.identity(),
		GroupBytes:    d.GroupBytes,
		GroupInterval: d.GroupInterval,
		SegmentBytes:  d.SegmentBytes,
		Resolve:       func(table string) *tuple.Schema { return r.prog.tables[table] },
		// A failed group commit (dying disk) is a terminal session failure:
		// better a loud stop than an engine acking puts it cannot keep.
		OnError: func(err error) { s.fail(err) },
	})
	if err != nil {
		return err
	}
	s.wal = log
	s.ckptEvery = d.CheckpointEvery
	info := &RecoveryInfo{
		DurableSeq:     rec.DurableSeq,
		TruncatedBytes: rec.TruncatedBytes,
		Replayed:       len(rec.Tail),
	}
	if ck := rec.Checkpoint; ck != nil {
		info.CheckpointSeq = ck.Seq
		info.CheckpointTables = len(ck.Tables)
		for _, tb := range ck.Tables {
			sch := r.prog.tables[tb.Name]
			r.gammaDB.Restore(sch, tb.Rows)
			info.CheckpointTuples += len(tb.Rows)
			// Restored rows count as a change: the first quiescent boundary
			// bumps the table's generation so subscribers re-read.
			if id := int(sch.ID()); id < len(r.dirtyByID) {
				r.dirtyByID[id].Store(true)
			}
		}
	}
	s.walTail = rec.Tail
	if rec.DurableSeq > 0 || rec.TruncatedBytes > 0 {
		s.recovery = info
	}
	return nil
}

// replayTail re-puts the recovered WAL tail through the ordinary put path
// on the coordinator slot — rules refire and, by the engine's determinism,
// reach the same fixpoint the pre-crash run had. Tuples the restored
// checkpoint already covers were filtered out by recovery; tuples it
// derived dedup at Gamma insert. Coordinator only, after seed().
func (s *Session) replayTail() {
	if len(s.walTail) == 0 {
		return
	}
	for _, t := range s.walTail {
		s.run.put("replay", nil, t, 0)
	}
	s.run.endStep()
	s.walTail = nil
}

// teeWAL appends the tuples just absorbed from the ingress ring to the
// log. Group commit means this is an encode into the pending group, not a
// sync; an append on a dead log fails the session (no silent gaps between
// the engine's state and its journal).
func (s *Session) teeWAL(ts []*tuple.Tuple) {
	if len(ts) == 0 {
		return
	}
	if err := s.wal.Append(ts); err != nil {
		s.fail(err)
	}
}

// Recovery returns what Start recovered from the WAL directory, or nil
// for a fresh (or non-durable) session.
func (s *Session) Recovery() *RecoveryInfo { return s.recovery }

// WALStats returns the log's counters; ok is false when the session has
// no durability configured.
func (s *Session) WALStats() (wal.Stats, bool) {
	if s.wal == nil {
		return wal.Stats{}, false
	}
	return s.wal.Stats(), true
}

// Checkpoint flushes the WAL and writes a full Gamma checkpoint at the
// next quiescent boundary, blocking until it is published (the durable
// watermark advances to the returned Seq) or the session dies first. Like
// Migrate, it must not be called from rule bodies or actions.
func (s *Session) Checkpoint(ctx context.Context) (*CheckpointInfo, error) {
	if s.wal == nil {
		return nil, fmt.Errorf("jstar: checkpoint: session has no durability configured (Options.Durability)")
	}
	req := &checkpointRequest{done: make(chan checkpointResult, 1)}
	s.mu.Lock()
	if s.err != nil {
		err := s.err
		s.mu.Unlock()
		return nil, err
	}
	if s.closed {
		s.mu.Unlock()
		return nil, ErrSessionClosed
	}
	s.ckptQ = append(s.ckptQ, req)
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
	select {
	case res := <-req.done:
		return res.info, res.err
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-s.loopDone:
		select {
		case res := <-req.done:
			return res.info, res.err
		default:
		}
		if err := s.gate(); err != nil {
			return nil, err
		}
		return nil, ErrSessionClosed
	}
}

// maybeCheckpoint serves queued Checkpoint requests and the automatic
// cadence at a quiescent boundary; coordinator only. Everything absorbed
// is already appended (the tee runs inside the drain), so Flush + Dump
// here snapshots exactly the quiesced prefix.
func (s *Session) maybeCheckpoint() {
	if s.wal == nil {
		return
	}
	s.mu.Lock()
	q := s.ckptQ
	s.ckptQ = nil
	s.mu.Unlock()
	auto := false
	if s.ckptEvery > 0 && s.quiesces-s.lastCkptQuiesce >= int64(s.ckptEvery) {
		// Only spend a checkpoint when the durable prefix moved.
		auto = s.wal.Stats().CheckpointSeq < s.walSeqHighWater()
	}
	if len(q) == 0 && !auto {
		return
	}
	info, err := s.writeCheckpoint()
	if err == nil {
		s.lastCkptQuiesce = s.quiesces
	}
	for _, req := range q {
		req.done <- checkpointResult{info: info, err: err}
	}
}

// walSeqHighWater is the highest sequence handed out so far (everything
// absorbed this session plus the recovered prefix).
func (s *Session) walSeqHighWater() uint64 {
	st := s.wal.Stats()
	base := uint64(0)
	if s.recovery != nil {
		base = s.recovery.DurableSeq
	}
	return base + st.Appended
}

// writeCheckpoint flushes the log and publishes a checkpoint of the
// quiesced Gamma state; coordinator only, at a quiescent boundary.
func (s *Session) writeCheckpoint() (*CheckpointInfo, error) {
	start := time.Now()
	if err := s.wal.Flush(); err != nil {
		return nil, err
	}
	seq := s.wal.DurableSeq()
	ck := &wal.Checkpoint{Seq: seq}
	info := &CheckpointInfo{Seq: seq}
	db := s.run.gammaDB
	for _, sch := range db.Schemas() {
		rows := gamma.Dump(db.Table(sch))
		if len(rows) == 0 {
			continue
		}
		ck.Tables = append(ck.Tables, wal.CheckpointTable{Name: sch.Name, Rows: rows})
		info.Tables++
		info.Tuples += len(rows)
	}
	if err := s.wal.WriteCheckpoint(ck); err != nil {
		return nil, err
	}
	info.Elapsed = time.Since(start)
	return info, nil
}

// failCheckpoints rejects queued requests when the coordinator exits.
func (s *Session) failCheckpoints() {
	s.mu.Lock()
	q := s.ckptQ
	s.ckptQ = nil
	s.mu.Unlock()
	for _, req := range q {
		err := s.gate()
		if err == nil {
			err = ErrSessionClosed
		}
		req.done <- checkpointResult{err: err}
	}
}
