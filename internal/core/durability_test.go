package core

import (
	"context"
	"slices"
	"strings"
	"sync"
	"testing"

	"github.com/jstar-lang/jstar/internal/tuple"
	"github.com/jstar-lang/jstar/internal/wal"
)

func durableOpts(fs wal.FS, ckptEvery int) Options {
	return Options{
		Quiet: true,
		Durability: &DurabilityOptions{
			FS:              fs,
			Identity:        "test-session",
			CheckpointEvery: ckptEvery,
		},
	}
}

// sortedIDs extracts column 0 of every tuple, sorted — a strategy- and
// store-order-independent view of a table for parity comparison.
func sortedIDs(ts []*tuple.Tuple) []int64 {
	out := make([]int64, len(ts))
	for i, t := range ts {
		out[i] = t.Field(0).AsInt()
	}
	slices.Sort(out)
	return out
}

func TestDurableSessionCheckpointAndRecover(t *testing.T) {
	fs := wal.NewMemFS()
	p, ev, out := sessionProgram()
	s, err := p.Start(context.Background(), durableOpts(fs, 0))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := s.Put(tuple.New(ev, tuple.Int(int64(i)))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Quiesce(context.Background()); err != nil {
		t.Fatal(err)
	}
	info, err := s.Checkpoint(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if info.Seq != 100 {
		t.Fatalf("checkpoint covers seq %d, want 100", info.Seq)
	}
	if info.Tuples != 200 { // Event + Out
		t.Fatalf("checkpoint holds %d tuples, want 200", info.Tuples)
	}
	st, ok := s.WALStats()
	if !ok || st.CheckpointSeq != 100 {
		t.Fatalf("wal stats = %+v, ok=%v", st, ok)
	}
	wantOut := sortedIDs(s.Snapshot(out))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// A new process: fresh program over the same log directory.
	p2, ev2, out2 := sessionProgram()
	s2, err := p2.Start(context.Background(), durableOpts(fs, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rec := s2.Recovery()
	if rec == nil || rec.CheckpointSeq != 100 || rec.CheckpointTuples != 200 {
		t.Fatalf("recovery info = %+v", rec)
	}
	if err := s2.Quiesce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := sortedIDs(s2.Snapshot(out2)); !slices.Equal(got, wantOut) {
		t.Fatalf("recovered Out differs: got %d tuples, want %d", len(got), len(wantOut))
	}
	// The recovered session keeps working — and keeps logging.
	if err := s2.Put(tuple.New(ev2, tuple.Int(1000))); err != nil {
		t.Fatal(err)
	}
	if err := s2.Quiesce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := len(s2.Snapshot(out2)); got != 101 {
		t.Fatalf("Out has %d tuples after post-recovery put, want 101", got)
	}
}

// TestRecoverFromWALOnly: no checkpoint was ever written, so recovery is a
// pure replay of the log through the put path.
func TestRecoverFromWALOnly(t *testing.T) {
	fs := wal.NewMemFS()
	p, ev, out := sessionProgram()
	s, err := p.Start(context.Background(), durableOpts(fs, 0))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := s.Put(tuple.New(ev, tuple.Int(int64(i)))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Quiesce(context.Background()); err != nil {
		t.Fatal(err)
	}
	want := sortedIDs(s.Snapshot(out))
	s.Close()

	p2, _, out2 := sessionProgram()
	s2, err := p2.Start(context.Background(), durableOpts(fs, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rec := s2.Recovery()
	if rec == nil || rec.Replayed != 50 || rec.CheckpointSeq != 0 {
		t.Fatalf("recovery info = %+v, want 50 replayed and no checkpoint", rec)
	}
	if err := s2.Quiesce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := sortedIDs(s2.Snapshot(out2)); !slices.Equal(got, want) {
		t.Fatalf("replayed Out differs from original")
	}
}

// TestAutoCheckpointCadence: CheckpointEvery advances the durable
// watermark without any explicit Checkpoint call.
func TestAutoCheckpointCadence(t *testing.T) {
	fs := wal.NewMemFS()
	p, ev, _ := sessionProgram()
	s, err := p.Start(context.Background(), durableOpts(fs, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 20; i++ {
		if err := s.Put(tuple.New(ev, tuple.Int(int64(i)))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Quiesce(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The checkpoint is written at the quiescent boundary Quiesce observed
	// or the one after it; nudge once to be deterministic.
	if _, err := s.Checkpoint(context.Background()); err != nil {
		t.Fatal(err)
	}
	st, _ := s.WALStats()
	if st.CheckpointSeq != 20 {
		t.Fatalf("durable watermark at %d, want 20", st.CheckpointSeq)
	}
}

// TestCloseRacingInflightPutsKeepsWatermarkQuiesced is the satellite
// regression: Close racing live producers, WAL enabled, under -race. The
// durable watermark must never pass the last quiesced boundary, the WAL
// tail must be flushed by Close, and recovery must land on a consistent
// fixpoint of a prefix of the input — Out exactly doubling the recovered
// Event set, never a half-applied step.
func TestCloseRacingInflightPutsKeepsWatermarkQuiesced(t *testing.T) {
	for round := 0; round < 5; round++ {
		fs := wal.NewMemFS()
		p, ev, _ := sessionProgram()
		s, err := p.Start(context.Background(), durableOpts(fs, 1))
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		stop := make(chan struct{})
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					if err := s.Put(tuple.New(ev, tuple.Int(int64(g*1_000_000+i)))); err != nil {
						return // session closed under us: expected
					}
				}
			}(g)
		}
		// Let the producers overlap some real work, then close mid-flight.
		for i := 0; i < 200; i++ {
			s.Put(tuple.New(ev, tuple.Int(int64(5_000_000+i))))
		}
		closeErr := s.Close()
		close(stop)
		wg.Wait()
		if closeErr != nil {
			t.Fatalf("close: %v", closeErr)
		}

		// The watermark rule: whatever checkpoint exists covers a quiesced
		// boundary, i.e. no more than what the closed log holds durable.
		st, ok := s.WALStats()
		if !ok {
			t.Fatal("wal stats missing")
		}
		if st.CheckpointSeq > st.DurableSeq {
			t.Fatalf("durable watermark %d passed the flushed tail %d", st.CheckpointSeq, st.DurableSeq)
		}

		// Recovery consistency: Out == 2×Event over the recovered prefix.
		p2, _, _ := sessionProgram()
		s2, err := p2.Start(context.Background(), durableOpts(fs, 0))
		if err != nil {
			t.Fatalf("round %d: recovery failed: %v", round, err)
		}
		if err := s2.Quiesce(context.Background()); err != nil {
			t.Fatal(err)
		}
		evGot := sortedIDs(s2.Snapshot(p2.Schema("Event")))
		outGot := sortedIDs(s2.Snapshot(p2.Schema("Out")))
		if len(evGot) != len(outGot) {
			t.Fatalf("round %d: recovered %d events but %d outputs", round, len(evGot), len(outGot))
		}
		if uint64(len(evGot)) != st.DurableSeq {
			t.Fatalf("round %d: recovered %d events, flushed tail said %d", round, len(evGot), st.DurableSeq)
		}
		s2.Close()
	}
}

func TestDurabilityOptionsValidated(t *testing.T) {
	p, _, _ := sessionProgram()
	_, err := p.Start(context.Background(), Options{Quiet: true, Durability: &DurabilityOptions{}})
	if err == nil || !strings.Contains(err.Error(), "one of Dir or FS") {
		t.Fatalf("want validation error, got %v", err)
	}
	_, err = p.Start(context.Background(), Options{Quiet: true,
		Durability: &DurabilityOptions{FS: wal.NewMemFS(), CheckpointEvery: -1}})
	if err == nil || !strings.Contains(err.Error(), "CheckpointEvery") {
		t.Fatalf("want validation error, got %v", err)
	}
}

func TestCheckpointWithoutDurabilityRefused(t *testing.T) {
	p, _, _ := sessionProgram()
	s, err := p.Start(context.Background(), Options{Quiet: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Checkpoint(context.Background()); err == nil {
		t.Fatal("checkpoint on a non-durable session must error")
	}
}
