package core

import (
	"context"
	"sync"
	"testing"

	"github.com/jstar-lang/jstar/internal/exec"
	"github.com/jstar-lang/jstar/internal/tuple"
)

// runIngressWorkload drives a session of sessionProgram with `producers`
// concurrent goroutines and returns the quiesced Out snapshot as sorted
// strings plus the run stats.
func runIngressWorkload(t *testing.T, opts Options, producers, perProducer int) ([]string, *RunStats) {
	t.Helper()
	p, ev, out := sessionProgram()
	s, err := p.Start(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < producers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if err := s.Put(tuple.New(ev, tuple.Int(int64(g*perProducer+i)))); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := s.Quiesce(context.Background()); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot(out)
	lines := make([]string, len(snap))
	for i, tp := range snap {
		lines[i] = tp.String()
	}
	stats := s.Stats()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	sortStrings(lines)
	return lines, stats
}

func sortStrings(ss []string) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j] < ss[j-1]; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}

// TestSessionShardedIngressParity: the same concurrent-producer workload
// through a sharded ingress (4 lanes) and the degenerate single-ring
// ingress (1 lane) must quiesce on identical Gamma state, for all three
// strategies — lane routing must never change what is computed. Also
// checks the per-shard absorption accounting covers every event.
func TestSessionShardedIngressParity(t *testing.T) {
	const producers = 8
	const perProducer = 400
	for _, strat := range []exec.Strategy{exec.Sequential, exec.ForkJoin, exec.Pipelined} {
		t.Run(strat.String(), func(t *testing.T) {
			sharded, shardedStats := runIngressWorkload(t, Options{
				Strategy: strat, Threads: 4, IngressRing: 256, IngressShards: 4, Quiet: true,
			}, producers, perProducer)
			single, singleStats := runIngressWorkload(t, Options{
				Strategy: strat, Threads: 4, IngressRing: 256, IngressShards: 1, Quiet: true,
			}, producers, perProducer)
			if len(sharded) != producers*perProducer {
				t.Fatalf("sharded session: Out has %d tuples, want %d", len(sharded), producers*perProducer)
			}
			for i := range sharded {
				if sharded[i] != single[i] {
					t.Fatalf("snapshot divergence at %d: sharded %q, single %q", i, sharded[i], single[i])
				}
			}
			for name, st := range map[string]*RunStats{"sharded": shardedStats, "single": singleStats} {
				want := map[string]int{"sharded": 4, "single": 1}[name]
				if st.IngressShards != want {
					t.Errorf("%s IngressShards = %d, want %d", name, st.IngressShards, want)
				}
				var absorbed int64
				for _, n := range st.ShardAbsorbed {
					absorbed += n
				}
				if absorbed != int64(producers*perProducer) {
					t.Errorf("%s ShardAbsorbed sums to %d, want %d", name, absorbed, producers*perProducer)
				}
			}
		})
	}
}

// TestValidateRejectsBadIngressShards: the shard count knob gets the same
// actionable validation as the ring capacity.
func TestValidateRejectsBadIngressShards(t *testing.T) {
	p, _, _ := sessionProgram()
	for _, bad := range []int{-1, 3, 6} {
		if err := p.Validate(Options{IngressShards: bad}); err == nil {
			t.Errorf("Validate accepted IngressShards %d", bad)
		}
	}
	if err := p.Validate(Options{IngressShards: 4}); err != nil {
		t.Errorf("Validate rejected IngressShards 4: %v", err)
	}
}
