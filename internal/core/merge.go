package core

import (
	"github.com/jstar-lang/jstar/internal/tuple"
)

// This file implements the step boundary's k-way merge: every worker slot
// seals its put buffer as a run sorted by tuple.ComparePath, and the
// coordinator merges the k runs into one path-sorted flush with a loser
// tree instead of the old concat + global re-sort. Duplicates (set
// semantics: same schema, same fields) are dropped during the merge —
// they would be discarded by the Delta tree's leaf sets anyway, so
// dropping them here keeps them out of the tree descent entirely; the dup
// callback feeds the same per-table counters the tree-level dedup does.

// loserTree is a k-way tournament tree over run cursors (Knuth 5.4.1):
// node[1..k-1] hold the losing run of each internal match, node[0] the
// overall winner, and leaf j's parent is (k+j)/2 in the implicit layout.
// Advancing the winner replays only its root path — log2(k) comparisons
// per emitted tuple, against k-1 for a naive scan of run heads.
type loserTree struct {
	runs [][]*tuple.Tuple
	pos  []int
	node []int
}

func newLoserTree(runs [][]*tuple.Tuple) *loserTree {
	k := len(runs)
	lt := &loserTree{runs: runs, pos: make([]int, k), node: make([]int, k)}
	for i := range lt.node {
		lt.node[i] = -1 // empty slot: beats every contender during seeding
	}
	for j := k - 1; j >= 0; j-- {
		lt.replay(j)
	}
	return lt
}

// beats reports whether run a's head sorts before run b's. The -1 sentinel
// always wins (so seeding parks real runs at the internal nodes);
// exhausted runs always lose (so they sink and never resurface).
func (lt *loserTree) beats(a, b int) bool {
	if a == -1 {
		return true
	}
	if b == -1 {
		return false
	}
	ea, eb := lt.pos[a] >= len(lt.runs[a]), lt.pos[b] >= len(lt.runs[b])
	if ea || eb {
		return !ea && eb
	}
	return tuple.ComparePath(lt.runs[a][lt.pos[a]], lt.runs[b][lt.pos[b]]) < 0
}

// replay pushes contender run r from its leaf toward the root, swapping at
// every internal node it loses, and records the surviving winner.
func (lt *loserTree) replay(r int) {
	winner := r
	for i := (len(lt.node) + r) / 2; i >= 1; i /= 2 {
		if lt.beats(lt.node[i], winner) {
			winner, lt.node[i] = lt.node[i], winner
		}
	}
	lt.node[0] = winner
}

// next returns the smallest unconsumed tuple across all runs, or nil when
// every run is exhausted.
func (lt *loserTree) next() *tuple.Tuple {
	w := lt.node[0]
	if w < 0 || lt.pos[w] >= len(lt.runs[w]) {
		return nil
	}
	t := lt.runs[w][lt.pos[w]]
	lt.pos[w]++
	lt.replay(w)
	return t
}

// mergeRuns merges k ComparePath-sorted runs into out (which it appends to
// and returns), dropping set-semantics duplicates and reporting each
// dropped tuple to dup. Runs must each be sorted by tuple.ComparePath; the
// output is the sorted, deduplicated union.
func mergeRuns(runs [][]*tuple.Tuple, out []*tuple.Tuple, dup func(*tuple.Tuple)) []*tuple.Tuple {
	switch len(runs) {
	case 0:
		return out
	case 1:
		for _, t := range runs[0] {
			out = appendDedup(out, t, dup)
		}
		return out
	}
	lt := newLoserTree(runs)
	for t := lt.next(); t != nil; t = lt.next() {
		out = appendDedup(out, t, dup)
	}
	return out
}

// appendDedup appends t to the sorted stream out unless it duplicates the
// previously kept tuple. ComparePath == 0 alone is not proof of identity
// for exotic unregistered schemas, so Equal confirms before dropping.
func appendDedup(out []*tuple.Tuple, t *tuple.Tuple, dup func(*tuple.Tuple)) []*tuple.Tuple {
	if n := len(out); n > 0 {
		if last := out[n-1]; tuple.ComparePath(last, t) == 0 && last.Equal(t) {
			if dup != nil {
				dup(t)
			}
			return out
		}
	}
	return append(out, t)
}

// dedupSortedInPlace compacts one ComparePath-sorted run in place,
// dropping set-semantics duplicates through dup, and returns the kept
// prefix. The single-run fast path of the step flush: no copy at all when
// the run is already duplicate-free.
func dedupSortedInPlace(ts []*tuple.Tuple, dup func(*tuple.Tuple)) []*tuple.Tuple {
	w := 1
	for i := 1; i < len(ts); i++ {
		t := ts[i]
		if last := ts[w-1]; tuple.ComparePath(last, t) == 0 && last.Equal(t) {
			if dup != nil {
				dup(t)
			}
			continue
		}
		ts[w] = t
		w++
	}
	if len(ts) == 0 {
		return ts
	}
	return ts[:w]
}
