package core

import (
	"fmt"
	"math/rand"
	"slices"
	"sort"
	"testing"

	"github.com/jstar-lang/jstar/internal/exec"
	"github.com/jstar-lang/jstar/internal/tuple"
)

// mergeSchemas builds a few schemas with assorted column kinds and orderby
// shapes, as one program so they get distinct dense IDs.
func mergeSchemas(t testing.TB) []*tuple.Schema {
	p := NewProgram()
	a := p.Table("MA",
		[]tuple.Column{{Name: "t", Kind: tuple.KindInt}, {Name: "v", Kind: tuple.KindInt}},
		[]tuple.OrderEntry{tuple.Lit("M"), tuple.Seq("t")})
	b := p.Table("MB",
		[]tuple.Column{{Name: "x", Kind: tuple.KindFloat}, {Name: "s", Kind: tuple.KindString}},
		[]tuple.OrderEntry{tuple.Lit("M"), tuple.Seq("x")})
	c := p.Table("MC",
		[]tuple.Column{{Name: "v", Kind: tuple.KindInt}, {Name: "k", Kind: tuple.KindInt}},
		[]tuple.OrderEntry{tuple.Lit("M"), tuple.Seq("k")}) // path col != field 0
	return []*tuple.Schema{a, b, c}
}

func randomTuple(rng *rand.Rand, schemas []*tuple.Schema) *tuple.Tuple {
	s := schemas[rng.Intn(len(schemas))]
	vals := make([]tuple.Value, s.Arity())
	for i, col := range s.Columns {
		switch col.Kind {
		case tuple.KindInt:
			vals[i] = tuple.Int(int64(rng.Intn(20) - 10))
		case tuple.KindFloat:
			vals[i] = tuple.Float(float64(rng.Intn(9)) / 2)
		case tuple.KindString:
			vals[i] = tuple.String_(string(rune('a' + rng.Intn(5))))
		default:
			vals[i] = tuple.Bool(rng.Intn(2) == 0)
		}
	}
	return tuple.New(s, vals...)
}

// TestMergeRunsProperty: for random tuples scattered across k sorted runs
// (with plenty of intra- and cross-run duplicates), the loser-tree merge
// must produce exactly the sorted duplicate-free union the old
// concat+sort+tree-dedup path produced, and report every dropped tuple.
func TestMergeRunsProperty(t *testing.T) {
	schemas := mergeSchemas(t)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.Intn(9)
		runs := make([][]*tuple.Tuple, k)
		var all []*tuple.Tuple
		for i := 0; i < rng.Intn(120); i++ {
			tp := randomTuple(rng, schemas)
			r := rng.Intn(k)
			runs[r] = append(runs[r], tp)
			all = append(all, tp)
		}
		for _, run := range runs {
			slices.SortFunc(run, tuple.ComparePath)
		}
		// Reference: sorted union with set-semantics dedup.
		ref := append([]*tuple.Tuple(nil), all...)
		slices.SortFunc(ref, tuple.ComparePath)
		var want []*tuple.Tuple
		for _, tp := range ref {
			if n := len(want); n > 0 && want[n-1].Equal(tp) {
				continue
			}
			want = append(want, tp)
		}
		dups := 0
		got := mergeRuns(runs, nil, func(*tuple.Tuple) { dups++ })
		if len(got) != len(want) {
			t.Fatalf("trial %d: merged %d tuples, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if !got[i].Equal(want[i]) {
				t.Fatalf("trial %d: merged[%d] = %v, want %v", trial, i, got[i], want[i])
			}
		}
		if !slices.IsSortedFunc(got, tuple.ComparePath) {
			t.Fatalf("trial %d: merge output not ComparePath-sorted", trial)
		}
		if dups != len(all)-len(want) {
			t.Fatalf("trial %d: %d duplicates reported, want %d", trial, dups, len(all)-len(want))
		}
	}
}

// TestDedupSortedInPlace mirrors the single-run fast path of the flush.
func TestDedupSortedInPlace(t *testing.T) {
	schemas := mergeSchemas(t)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		var run []*tuple.Tuple
		for i := 0; i < rng.Intn(60); i++ {
			run = append(run, randomTuple(rng, schemas))
		}
		slices.SortFunc(run, tuple.ComparePath)
		var want []*tuple.Tuple
		for _, tp := range run {
			if n := len(want); n > 0 && want[n-1].Equal(tp) {
				continue
			}
			want = append(want, tp)
		}
		total := len(run)
		dups := 0
		got := dedupSortedInPlace(run, func(*tuple.Tuple) { dups++ })
		if len(got) != len(want) || dups != total-len(want) {
			t.Fatalf("trial %d: kept %d (want %d), dups %d (want %d)",
				trial, len(got), len(want), dups, total-len(want))
		}
		for i := range got {
			if !got[i].Equal(want[i]) {
				t.Fatalf("trial %d: kept[%d] = %v, want %v", trial, i, got[i], want[i])
			}
		}
	}
}

// TestFiringOrderByteIdentical pins the step batch order: the key-based
// slices.SortFunc in beginStep must order every batch exactly as the old
// reflection-closure sort.Slice (schema ID, then CompareFields) did, so
// sequential firing order — and with it every causally ordered side effect
// — is byte-identical across the optimisation.
func TestFiringOrderByteIdentical(t *testing.T) {
	p := NewProgram()
	cols := []tuple.Column{
		{Name: "x", Kind: tuple.KindInt},
		{Name: "f", Kind: tuple.KindFloat},
		{Name: "s", Kind: tuple.KindString},
	}
	// Two tables sharing one orderby literal: their tuples form a single
	// causal equivalence class, so one step batch mixes both schemas.
	ta := p.Table("FA", cols, []tuple.OrderEntry{tuple.Lit("Same")})
	tb := p.Table("FB", cols, []tuple.OrderEntry{tuple.Lit("Same")})
	var fired []string
	for _, s := range []*tuple.Schema{ta, tb} {
		p.Rule("obs"+s.Name, s, func(c *Ctx, tp *tuple.Tuple) {
			fired = append(fired, tp.String())
		})
	}
	rng := rand.New(rand.NewSource(3))
	var initial []*tuple.Tuple
	schemas := []*tuple.Schema{ta, tb}
	for i := 0; i < 300; i++ {
		s := schemas[rng.Intn(2)]
		tp := tuple.New(s,
			tuple.Int(int64(rng.Intn(10)-5)),
			tuple.Float(float64(rng.Intn(7))/2),
			tuple.String_(string(rune('a'+rng.Intn(4)))+string(rune('a'+rng.Intn(26)))),
		)
		initial = append(initial, tp)
		p.Put(tp)
	}
	// Expected order: the pre-change comparator, verbatim (sort.Slice was
	// not stable, but equal-comparing tuples here are identical rows, which
	// the one dedup point collapses — so the order is fully determined).
	expect := append([]*tuple.Tuple(nil), initial...)
	sort.Slice(expect, func(i, j int) bool {
		a, b := expect[i], expect[j]
		if a.Schema() != b.Schema() {
			return a.Schema().ID() < b.Schema().ID()
		}
		return a.CompareFields(b) < 0
	})
	var want []string
	for _, tp := range expect {
		if n := len(want); n > 0 && want[n-1] == tp.String() {
			continue // set semantics: duplicate rows fire once
		}
		want = append(want, tp.String())
	}
	run, err := p.Execute(Options{Sequential: true, Quiet: true})
	if err != nil {
		t.Fatal(err)
	}
	if run.Stats().Steps != 1 {
		t.Fatalf("steps = %d, want 1 (single shared class)", run.Stats().Steps)
	}
	if len(fired) != len(want) {
		t.Fatalf("fired %d tuples, want %d", len(fired), len(want))
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("firing order diverges at %d: got %s, want %s", i, fired[i], want[i])
		}
	}
}

// TestFlushParityAcrossStrategiesAndStores is the merge/dedup end-to-end
// property: a fan-out whose rule firings spread across worker slots and
// put heavily overlapping tuples (cross-slot duplicates), run under every
// strategy and a spread of Gamma store backends. The final relation
// contents and the duplicate counters must match the sequential reference
// exactly — the sealed-run merge flush must be indistinguishable from the
// old concat+sort+PutBatch boundary.
func TestFlushParityAcrossStrategiesAndStores(t *testing.T) {
	const (
		srcN = 12
		per  = 40
		mod  = 97
	)
	build := func() *Program {
		p := NewProgram()
		src := p.Table("Src", []tuple.Column{{Name: "j", Kind: tuple.KindInt}},
			[]tuple.OrderEntry{tuple.Lit("Src")})
		work := p.Table("Work", []tuple.Column{{Name: "v", Kind: tuple.KindInt}},
			[]tuple.OrderEntry{tuple.Lit("Work")})
		out := p.Table("Out", []tuple.Column{{Name: "v", Kind: tuple.KindInt}},
			[]tuple.OrderEntry{tuple.Lit("Out")})
		p.Order("Src", "Work", "Out")
		p.Rule("fan", src, func(c *Ctx, tp *tuple.Tuple) {
			j := tp.Int("j")
			for i := int64(0); i < per; i++ {
				c.PutNew(work, tuple.Int((j*31+i*7)%mod))
			}
		})
		p.Rule("emit", work, func(c *Ctx, tp *tuple.Tuple) {
			c.PutNew(out, tuple.Int(2*tp.Int("v")))
		})
		for j := int64(0); j < srcN; j++ {
			p.Put(tuple.New(src, tuple.Int(j)))
		}
		return p
	}
	snapshot := func(r *Run, table string) []string {
		s := r.Program().Schema(table)
		var lines []string
		r.Gamma().Table(s).Scan(func(tp *tuple.Tuple) bool {
			lines = append(lines, tp.String())
			return true
		})
		sort.Strings(lines)
		return lines
	}
	type counts struct{ puts, dups int64 }
	var refOut []string
	var refCounts map[string]counts
	plans := []string{"", "tree", "skip", "hash:1", "inthash:1", "columnar"}
	strategies := []exec.Strategy{exec.Sequential, exec.ForkJoin, exec.Pipelined}
	for _, strat := range strategies {
		for _, plan := range plans {
			name := fmt.Sprintf("%v/%s", strat, plan)
			opts := Options{Strategy: strat, Threads: 4, Quiet: true}
			if plan != "" {
				opts.StorePlan = map[string]string{"Work": plan, "Out": plan}
			}
			run, err := build().Execute(opts)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			gotOut := snapshot(run, "Out")
			gotCounts := map[string]counts{}
			for _, tb := range []string{"Work", "Out"} {
				st := run.Stats().Tables[tb]
				gotCounts[tb] = counts{st.Puts.Load(), st.Duplicates.Load()}
			}
			if refOut == nil {
				refOut, refCounts = gotOut, gotCounts
				// Sanity: the workload must actually produce duplicates.
				if gotCounts["Work"].dups == 0 {
					t.Fatal("workload produced no Work duplicates; test is vacuous")
				}
				continue
			}
			if !slices.Equal(gotOut, refOut) {
				t.Errorf("%s: Out contents differ from sequential reference (%d vs %d tuples)",
					name, len(gotOut), len(refOut))
			}
			for _, tb := range []string{"Work", "Out"} {
				if gotCounts[tb] != refCounts[tb] {
					t.Errorf("%s: table %s counters %+v, reference %+v",
						name, tb, gotCounts[tb], refCounts[tb])
				}
			}
		}
	}
}
