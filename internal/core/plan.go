package core

import (
	"fmt"

	"github.com/jstar-lang/jstar/internal/gamma"
)

// This file is the profile-guided store planner: it turns one run's
// observed per-table statistics (puts, duplicates, query count and shape —
// the §1.5 logging loop) plus the fire-chunk histogram into a StorePlan
// for the next run, the same way RunStats.SuggestStrategy picks the
// execution strategy. Save the plan, replay it through Options.StorePlan
// (or the cmd-level -save-plan/-store-plan flags), and the second run gets
// backends fitted to the first run's workload.

const (
	// planMinPuts is the volume floor: tables with fewer puts than this
	// are not worth re-planning (any backend handles them instantly), so
	// the planner leaves them on the strategy default.
	planMinPuts = 256
	// planBatchedMinPuts replaces the floor when dispatch ran heavily
	// batched (mean fire chunk >= planBatchedChunk): batched probe
	// sequences amortise a specialised backend's wins over whole chunks,
	// so smaller tables already profit from a switch.
	planBatchedMinPuts = 128
	planBatchedChunk   = 64
)

// replannable reports whether the planner may override a chosen store
// kind. The manually parameterised backends (dense3d, arrayhash, rolling)
// and opaque custom factories encode program knowledge — key ranges,
// rolling windows, typed fast paths that rules downcast to — that counters
// cannot reconstruct, so the planner never touches them: they are omitted
// from suggested plans entirely. Copying their specs into a plan would
// freeze this run's dimensions; replayed against the same program at a
// different problem size, the stale spec would beat the GammaHint that
// knows the current size and fail mid-run.
func replannable(kind string) bool {
	switch gamma.KindName(kind) {
	case "tree", "skip", "hash", "inthash", "columnar":
		return true
	}
	return false
}

// PlanFromStats derives a per-table store plan from a finished run's
// statistics. Heuristics, per table (volume floor first):
//
//   - every observed query carried an equality prefix: the table is
//     point-probed, so it gets a hash index keyed at the MINIMUM observed
//     prefix depth (any deeper and the shallowest queries would fall off
//     the keyed path onto a full scan). Put-dominated all-int tables get
//     the int-specialised open-addressing store (O(1) flat-row inserts);
//     query-dominated tables get the generic sharded hash index, whose
//     buckets hand back stored tuples without materialising rows;
//   - never queried but at least half the puts were duplicates: a dedup
//     sink (trigger tables like SumMonth), which wants O(1) full-row
//     dedup — the open-addressing store keyed on the whole row when
//     all-int, else the columnar store (hash-map dedup, no boxed rows);
//   - never queried, or queried only by full scans: append-mostly scan
//     workload — the compressed columnar store;
//   - mixed shapes: no opinion; the table keeps its current backend.
//
// Tables whose chosen backend is not replannable are left out of the plan
// (their programmatic hints re-establish them on replay — see
// replannable), as are -noGamma tables (their stores are never used).
func PlanFromStats(rs *RunStats) gamma.StorePlan {
	plan := make(gamma.StorePlan)
	minPuts := int64(planMinPuts)
	if rs.MeanFireChunk() >= planBatchedChunk {
		minPuts = planBatchedMinPuts
	}
	for name, st := range rs.Tables {
		if rs.noGamma[name] {
			continue
		}
		if !replannable(rs.StoreKinds[name]) {
			continue
		}
		s := rs.schemas[name]
		if s == nil || st.Puts.Load() < minPuts {
			continue
		}
		puts := st.Puts.Load()
		dups := st.Duplicates.Load()
		queries := st.Queries.Load()
		indexed := st.IndexedQueries.Load()
		allInt := gamma.AllIntColumns(s)
		switch {
		case queries > 0 && indexed == queries:
			k := int(st.MinPrefixLen.Load())
			if k < 1 {
				k = 1
			}
			if k > s.Arity() {
				k = s.Arity()
			}
			if allInt && puts > queries {
				plan[name] = fmt.Sprintf("inthash:%d", k)
			} else {
				plan[name] = fmt.Sprintf("hash:%d", k)
			}
		case queries == 0 && 2*dups >= puts:
			if allInt {
				plan[name] = fmt.Sprintf("inthash:%d", s.Arity())
			} else {
				plan[name] = "columnar"
			}
		case indexed == 0:
			plan[name] = "columnar"
		}
	}
	return plan
}

// SuggestStorePlan recommends per-table store backends for re-running the
// same program, from this run's observed table statistics — the storage
// counterpart of SuggestStrategy (see PlanFromStats for the heuristics).
func (s *RunStats) SuggestStorePlan() gamma.StorePlan { return PlanFromStats(s) }
