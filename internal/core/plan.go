package core

import (
	"fmt"

	"github.com/jstar-lang/jstar/internal/gamma"
	"github.com/jstar-lang/jstar/internal/tuple"
)

// This file is the profile-guided store planner: it turns one run's
// observed per-table statistics (puts, duplicates, query count and shape —
// the §1.5 logging loop) plus the fire-chunk histogram into a StorePlan
// for the next run, the same way RunStats.SuggestStrategy picks the
// execution strategy. Save the plan, replay it through Options.StorePlan
// (or the cmd-level -save-plan/-store-plan flags), and the second run gets
// backends fitted to the first run's workload.

const (
	// planMinPuts is the volume floor: tables with fewer puts than this
	// are not worth re-planning (any backend handles them instantly), so
	// the planner leaves them on the strategy default.
	planMinPuts = 256
	// planBatchedMinPuts replaces the floor when dispatch ran heavily
	// batched (mean fire chunk >= planBatchedChunk): batched probe
	// sequences amortise a specialised backend's wins over whole chunks,
	// so smaller tables already profit from a switch.
	planBatchedMinPuts = 128
	planBatchedChunk   = 64
)

// replannable reports whether the planner may override a chosen store
// kind. The manually parameterised backends (dense3d, arrayhash, rolling)
// and opaque custom factories encode program knowledge — key ranges,
// rolling windows, typed fast paths that rules downcast to — that counters
// cannot reconstruct, so the planner never touches them: they are omitted
// from suggested plans entirely. Copying their specs into a plan would
// freeze this run's dimensions; replayed against the same program at a
// different problem size, the stale spec would beat the GammaHint that
// knows the current size and fail mid-run.
func replannable(kind string) bool {
	switch gamma.KindName(kind) {
	case "tree", "skip", "hash", "inthash", "columnar":
		return true
	}
	return false
}

// PlanFromStats derives a per-table store plan from a finished run's
// statistics. Heuristics, per table (volume floor first):
//
//   - every observed query carried an equality prefix: the table is
//     point-probed, so it gets a hash index keyed at the MINIMUM observed
//     prefix depth (any deeper and the shallowest queries would fall off
//     the keyed path onto a full scan). Put-dominated all-int tables get
//     the int-specialised open-addressing store (O(1) flat-row inserts);
//     query-dominated tables get the generic sharded hash index, whose
//     buckets hand back stored tuples without materialising rows;
//   - never queried but at least half the puts were duplicates: a dedup
//     sink (trigger tables like SumMonth), which wants O(1) full-row
//     dedup — the open-addressing store keyed on the whole row when
//     all-int, else the columnar store (hash-map dedup, no boxed rows);
//   - never queried, or queried only by full scans: append-mostly scan
//     workload — the compressed columnar store;
//   - mixed shapes: no opinion; the table keeps its current backend.
//
// Tables whose chosen backend is not replannable are left out of the plan
// (their programmatic hints re-establish them on replay — see
// replannable), as are -noGamma tables (their stores are never used).
func PlanFromStats(rs *RunStats) gamma.StorePlan {
	plan := make(gamma.StorePlan)
	minPuts := int64(planMinPuts)
	if rs.MeanFireChunk() >= planBatchedChunk {
		minPuts = planBatchedMinPuts
	}
	for name, st := range rs.Tables {
		if rs.noGamma[name] {
			continue
		}
		if !replannable(rs.StoreKinds[name]) {
			continue
		}
		s := rs.schemas[name]
		if s == nil {
			continue
		}
		c := lifetimeCounters(st)
		if c.puts < minPuts {
			continue
		}
		if kind := suggestKind(s, c); kind != "" {
			plan[name] = kind
		}
	}
	// A migrated table the heuristics have no fresh opinion about keeps its
	// end state: the migration was earned by observed drift, so a saved
	// plan replays the final kind instead of silently falling back to the
	// strategy default.
	for _, m := range rs.Migrations {
		name := m.Table
		if _, ok := plan[name]; ok {
			continue
		}
		if rs.noGamma[name] || !replannable(rs.StoreKinds[name]) {
			continue
		}
		plan[name] = rs.StoreKinds[name]
	}
	return plan
}

// tableCounters is one table's planner-relevant counters over some
// interval — the whole run (lifetimeCounters) or one re-plan window (the
// adaptive session's snapshot deltas).
type tableCounters struct {
	puts, dups, queries, indexed, minPrefix int64
}

func lifetimeCounters(st *TableStats) tableCounters {
	return tableCounters{
		puts:      st.Puts.Load(),
		dups:      st.Duplicates.Load(),
		queries:   st.Queries.Load(),
		indexed:   st.IndexedQueries.Load(),
		minPrefix: st.MinPrefixLen.Load(),
	}
}

// sub returns the windowed counters c - prev. minPrefix does not subtract —
// windowed callers overwrite it from TableStats.winMinPrefix.
func (c tableCounters) sub(prev tableCounters) tableCounters {
	return tableCounters{
		puts:    c.puts - prev.puts,
		dups:    c.dups - prev.dups,
		queries: c.queries - prev.queries,
		indexed: c.indexed - prev.indexed,
	}
}

// suggestKind applies the PlanFromStats heuristics to one counter view.
// "" means no opinion (mixed query shapes): the table keeps its backend.
// Callers apply the volume floor; the heuristics only look at shape.
func suggestKind(s *tuple.Schema, c tableCounters) string {
	allInt := gamma.AllIntColumns(s)
	switch {
	case c.queries > 0 && c.indexed == c.queries:
		k := int(c.minPrefix)
		if k < 1 {
			k = 1
		}
		if k > s.Arity() {
			k = s.Arity()
		}
		if allInt && c.puts > c.queries {
			return fmt.Sprintf("inthash:%d", k)
		}
		return fmt.Sprintf("hash:%d", k)
	case c.queries == 0 && 2*c.dups >= c.puts:
		if allInt {
			return fmt.Sprintf("inthash:%d", s.Arity())
		}
		return "columnar"
	case c.indexed == 0:
		return "columnar"
	}
	return ""
}

// SuggestStorePlan recommends per-table store backends for re-running the
// same program, from this run's observed table statistics — the storage
// counterpart of SuggestStrategy (see PlanFromStats for the heuristics).
func (s *RunStats) SuggestStorePlan() gamma.StorePlan { return PlanFromStats(s) }
