package core

import (
	"strings"
	"testing"

	"github.com/jstar-lang/jstar/internal/gamma"
	"github.com/jstar-lang/jstar/internal/tuple"
)

// planStats builds a synthetic RunStats for planner unit tests.
func planStats() *RunStats {
	rs := &RunStats{
		Tables:     map[string]*TableStats{},
		StoreKinds: map[string]string{},
		schemas:    map[string]*tuple.Schema{},
		noGamma:    map[string]bool{},
	}
	return rs
}

func (rs *RunStats) addTable(name string, cols []tuple.Column, kind string,
	puts, dups, queries, indexed, plen, minp int64) *RunStats {
	s := tuple.MustSchema(name, cols, nil)
	st := &TableStats{}
	st.Puts.Store(puts)
	st.Duplicates.Store(dups)
	st.Queries.Store(queries)
	st.IndexedQueries.Store(indexed)
	st.PrefixLenSum.Store(plen)
	st.MinPrefixLen.Store(minp)
	rs.Tables[name] = st
	rs.StoreKinds[name] = kind
	rs.schemas[name] = s
	return rs
}

func intCols(n int) []tuple.Column {
	cols := make([]tuple.Column, n)
	for i := range cols {
		cols[i] = tuple.Column{Name: string(rune('a' + i)), Kind: tuple.KindInt}
	}
	return cols
}

func TestPlanFromStatsHeuristics(t *testing.T) {
	rs := planStats().
		// Put-dominated, point-queried at prefix 2, all-int -> inthash:2.
		addTable("Readings", intCols(5), "skip", 10000, 0, 24, 24, 48, 2).
		// Query-dominated point probes -> generic hash at prefix 1.
		addTable("Index", intCols(3), "skip", 1000, 0, 5000, 5000, 5000, 1).
		// Mixed prefix depths (1..3): key at the MINIMUM, or the shallow
		// queries would fall off the keyed path onto full scans.
		addTable("Depths", intCols(3), "skip", 9000, 0, 100, 100, 200, 1).
		// Dedup sink: no queries, mostly duplicates, all-int -> whole-row inthash.
		addTable("Sink", intCols(2), "skip", 9000, 8900, 0, 0, 0, 0).
		// Dedup sink with a non-int column -> columnar (hash-map dedup).
		addTable("StrSink", []tuple.Column{
			{Name: "key", Kind: tuple.KindString},
			{Name: "v", Kind: tuple.KindInt}}, "skip", 9000, 8900, 0, 0, 0, 0).
		// Append-mostly, never queried -> columnar.
		addTable("Log", []tuple.Column{
			{Name: "line", Kind: tuple.KindString}}, "skip", 5000, 0, 0, 0, 0, 0).
		// Point-queried but not all-int -> generic hash.
		addTable("Names", []tuple.Column{
			{Name: "id", Kind: tuple.KindInt},
			{Name: "name", Kind: tuple.KindString}}, "skip", 2000, 0, 100, 100, 100, 1).
		// Mixed query shapes (some scans) -> no opinion.
		addTable("Mixed", intCols(2), "skip", 5000, 0, 100, 50, 50, 1).
		// Below the volume floor -> no opinion.
		addTable("Tiny", intCols(2), "skip", 10, 0, 5, 5, 5, 1).
		// Specialised manual hint: omitted, so the program's GammaHint
		// (which knows the current problem size) re-establishes it on
		// replay instead of a stale frozen spec.
		addTable("Matrix", intCols(4), "dense3d:3,96,96", 20000, 0, 0, 0, 0, 0)
	rs.addTable("Ghost", intCols(1), "skip", 50000, 0, 0, 0, 0, 0)
	rs.noGamma["Ghost"] = true // -noGamma: store never used, never planned

	plan := rs.SuggestStorePlan()
	want := gamma.StorePlan{
		"Readings": "inthash:2",
		"Index":    "hash:1",
		"Depths":   "inthash:1",
		"Sink":     "inthash:2",
		"StrSink":  "columnar",
		"Log":      "columnar",
		"Names":    "hash:1",
	}
	for name, spec := range want {
		if plan[name] != spec {
			t.Errorf("plan[%s] = %q, want %q", name, plan[name], spec)
		}
	}
	for _, name := range []string{"Mixed", "Tiny", "Ghost", "Matrix"} {
		if spec, ok := plan[name]; ok {
			t.Errorf("plan[%s] = %q, want no entry", name, spec)
		}
	}
}

// TestPlanFromStatsBatchedFloor: heavy batching lowers the volume floor.
func TestPlanFromStatsBatchedFloor(t *testing.T) {
	rs := planStats().
		addTable("Mid", intCols(2), "skip", 200, 0, 10, 10, 10, 1)
	if plan := rs.SuggestStorePlan(); len(plan) != 0 {
		t.Fatalf("un-batched run planned %v below the floor", plan)
	}
	rs.TotalLive = 12800
	rs.FireBatches.Store(100) // mean chunk 128 >= planBatchedChunk
	if plan := rs.SuggestStorePlan(); plan["Mid"] != "inthash:1" {
		t.Errorf("batched run: plan[Mid] = %q, want inthash:1", plan["Mid"])
	}
}

func TestValidateRejectsBadStorePlans(t *testing.T) {
	p, _, _ := statsProgram()
	cases := []struct {
		plan gamma.StorePlan
		want []string
	}{
		{gamma.StorePlan{"Nope": "tree"},
			[]string{"store plan for Nope: unknown table", "declared: A, B"}},
		{gamma.StorePlan{"A": "btree"},
			[]string{"store plan for A", `unknown store kind "btree"`,
				"tree|skip|hash|inthash|columnar|arrayhash|dense3d|rolling"}},
		{gamma.StorePlan{"A": "hash:7"},
			[]string{"store plan for A", "out of range"}},
		{gamma.StorePlan{"A": "dense3d:2,2,2"},
			[]string{"store plan for A", "4-column all-int"}},
	}
	for _, c := range cases {
		err := p.Validate(Options{StorePlan: c.plan})
		if err == nil {
			t.Errorf("Validate(%v): expected error", c.plan)
			continue
		}
		for _, w := range c.want {
			if !strings.Contains(err.Error(), w) {
				t.Errorf("Validate(%v) error %q missing %q", c.plan, err, w)
			}
		}
	}
	if err := p.Validate(Options{StorePlan: gamma.StorePlan{"A": "inthash:1", "B": "columnar"}}); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
}

// TestValidateRejectsBadPlanHints: compiler-emitted hints go through the
// same gate as explicit plans.
func TestValidateRejectsBadPlanHints(t *testing.T) {
	p, _, _ := statsProgram()
	p.PlanHint("A", "warp")
	err := p.Validate(Options{})
	if err == nil || !strings.Contains(err.Error(), "store plan hint for A") ||
		!strings.Contains(err.Error(), "unknown store kind") {
		t.Errorf("bad plan hint not rejected: %v", err)
	}
}

// TestSuggestedPlanReplays: the planner's own output must pass validation
// and replay cleanly on the same program — the two-run tuning loop's
// contract, end to end at the engine level.
func TestSuggestedPlanReplays(t *testing.T) {
	build := func() *Program {
		p := NewProgram()
		src := p.Table("Src", intCols(2), []tuple.OrderEntry{tuple.Lit("Src")})
		snk := p.Table("Snk", intCols(1), []tuple.OrderEntry{tuple.Lit("Snk")})
		p.Order("Src", "Snk")
		p.Rule("fold", src, func(c *Ctx, t *tuple.Tuple) {
			c.PutNew(snk, tuple.Int(t.Int("a")%7))
		})
		for i := int64(0); i < 600; i++ {
			p.Put(tuple.New(src, tuple.Int(i), tuple.Int(i*3)))
		}
		return p
	}
	run, err := build().Execute(Options{Sequential: true, Quiet: true})
	if err != nil {
		t.Fatal(err)
	}
	plan := run.Stats().SuggestStorePlan()
	if len(plan) == 0 {
		t.Fatal("planner had no opinion on a 600-put program")
	}
	run2, err := build().Execute(Options{Sequential: true, StorePlan: plan, Quiet: true})
	if err != nil {
		t.Fatalf("replaying suggested plan %v: %v", plan, err)
	}
	changed := false
	for name, spec := range plan {
		if run2.Stats().StoreKinds[name] != spec {
			t.Errorf("replay did not apply %s=%q (got %q)", name, spec, run2.Stats().StoreKinds[name])
		}
		if run.Stats().StoreKinds[name] != spec {
			changed = true
		}
	}
	if !changed {
		t.Error("suggested plan changed no backend")
	}
}
