package core

import (
	"testing"

	"github.com/jstar-lang/jstar/internal/forkjoin"
	"github.com/jstar-lang/jstar/internal/tuple"
)

// TestSharedPoolAcrossRuns: benchmarks reuse one fork/join pool across many
// runs via Options.Pool; the run must not shut the shared pool down.
func TestSharedPoolAcrossRuns(t *testing.T) {
	pool := forkjoin.NewPool(3)
	defer pool.Shutdown()
	for i := 0; i < 3; i++ {
		p, read := sharedPoolProgram()
		run, err := p.NewRun(Options{Pool: pool})
		if err != nil {
			t.Fatal(err)
		}
		if run.Threads() != 3 {
			t.Fatalf("run %d: Threads = %d, want pool size 3", i, run.Threads())
		}
		if err := run.Execute(); err != nil {
			t.Fatal(err)
		}
		if got := read(run); got != 10 {
			t.Fatalf("run %d: result = %d", i, got)
		}
	}
	// Pool must still be alive after the runs.
	done := false
	pool.Join(pool.Submit(func(*forkjoin.Worker) { done = true }))
	if !done {
		t.Error("shared pool was shut down by a run")
	}
}

func sharedPoolProgram() (*Program, func(*Run) int) {
	p := NewProgram()
	n := p.Table("N", []tuple.Column{{Name: "v", Kind: tuple.KindInt}},
		[]tuple.OrderEntry{tuple.Lit("Int"), tuple.Seq("v")})
	out := p.Table("Out", []tuple.Column{{Name: "v", Kind: tuple.KindInt}},
		[]tuple.OrderEntry{tuple.Lit("Out")})
	p.Order("Int", "Out")
	p.Rule("step", n, func(c *Ctx, t *tuple.Tuple) {
		v := t.Int("v")
		if v < 10 {
			c.PutNew(n, tuple.Int(v+1))
		}
		c.PutNew(out, tuple.Int(v))
	})
	p.Put(tuple.New(n, tuple.Int(1)))
	return p, func(r *Run) int { return r.Gamma().Table(out).Len() }
}

// TestMaxBatchStat verifies the all-minimums batching is observable.
func TestMaxBatchStat(t *testing.T) {
	p := NewProgram()
	w := p.Table("W", []tuple.Column{{Name: "step", Kind: tuple.KindInt}, {Name: "i", Kind: tuple.KindInt}},
		[]tuple.OrderEntry{tuple.Seq("step")})
	p.Rule("noop", w, func(c *Ctx, t *tuple.Tuple) {})
	for i := int64(0); i < 16; i++ {
		p.Put(tuple.New(w, tuple.Int(1), tuple.Int(i)))
	}
	run, err := p.Execute(Options{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	if run.Stats().MaxBatch != 16 {
		t.Errorf("MaxBatch = %d, want 16 (same-step tuples are one class)", run.Stats().MaxBatch)
	}
	if run.Stats().Steps != 1 {
		t.Errorf("Steps = %d, want 1", run.Stats().Steps)
	}
}
