// Package core implements the JStar execution engine — the paper's primary
// contribution: a bottom-up, pseudo-naive, incremental evaluator for
// Datalog-with-negation programs whose tuples carry explicit causality
// timestamps (paper §3–§5).
//
// A Program is a set of table schemas, order declarations, rules, and
// initial puts. Running a program drives the tuple lifecycle of Fig 3:
//
//  1. a rule (or initial put) creates a tuple, which enters the Delta set;
//  2. each step removes the minimal causal equivalence class from Delta,
//     inserts it into the Gamma database, and fires all triggered rules —
//     in parallel under the all-minimums strategy;
//  3. rules query Gamma and put new (strictly future) tuples;
//  4. tuples are retained in Gamma unless the -noGamma hint says the table
//     is trigger-only.
//
// The -noDelta hint short-circuits step 1: tuples of such tables go straight
// to Gamma and fire their rules immediately on the producing task (§5.1).
package core

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"github.com/jstar-lang/jstar/internal/exec"
	"github.com/jstar-lang/jstar/internal/gamma"
	"github.com/jstar-lang/jstar/internal/order"
	"github.com/jstar-lang/jstar/internal/tuple"
)

// Rule is one JStar computation rule: `foreach (Trigger t) { body }`.
// The body inspects the database through the Ctx and puts new tuples.
type Rule struct {
	Name    string
	Trigger *tuple.Schema
	Body    func(c *Ctx, t *tuple.Tuple)
	// BatchBody, when non-nil, fires the rule for a whole chunk of trigger
	// tuples in one invocation — the batch-aware fast path vectorisable
	// rules (matmult inner loops, single-indexed-lookup reducers) provide
	// so per-tuple dispatch, context setup and Gamma point probes are
	// amortised over the chunk. It must be semantically equivalent to
	// calling Body once per tuple: the engine is free to use either (the
	// batched step path prefers BatchBody; the -noDelta inline path and
	// single-tuple fallbacks use Body). Implementations that Put should
	// call c.Bind(t) as they move through the chunk so causality checks
	// and dataflow attribution stay per-trigger, and should route grouped
	// point queries through Ctx.ForEachBatch to get the batched Gamma
	// probe path.
	BatchBody func(c *Ctx, ts []*tuple.Tuple)
}

// Program is an immutable-after-setup JStar program definition.
type Program struct {
	po      *order.PartialOrder
	tables  map[string]*tuple.Schema
	byID    []*tuple.Schema
	rules   []*Rule
	trigger map[*tuple.Schema][]*Rule
	initial []*tuple.Tuple
	hints   map[string]gamma.StoreFactory
	// planHints are static store-plan hints — kind specs derived from the
	// program's query patterns (the lang compiler emits them). They are the
	// lowest-priority layer of store selection: Options.StorePlan beats
	// GammaHint beats planHints beats the strategy's default factory.
	planHints gamma.StorePlan
	actions   map[*tuple.Schema]func(run *Run, t *tuple.Tuple)
}

// NewProgram returns an empty program.
func NewProgram() *Program {
	return &Program{
		po:        order.NewPartialOrder(),
		tables:    make(map[string]*tuple.Schema),
		trigger:   make(map[*tuple.Schema][]*Rule),
		hints:     make(map[string]gamma.StoreFactory),
		planHints: make(gamma.StorePlan),
		actions:   make(map[*tuple.Schema]func(*Run, *tuple.Tuple)),
	}
}

// Table declares a relation and returns its schema. It panics on duplicate
// names or invalid declarations (static errors in real JStar).
func (p *Program) Table(name string, cols []tuple.Column, orderBy []tuple.OrderEntry) *tuple.Schema {
	if _, dup := p.tables[name]; dup {
		panic(fmt.Sprintf("jstar: table %s declared twice", name))
	}
	s := tuple.MustSchema(name, cols, orderBy)
	s.SetID(int32(len(p.byID)))
	p.tables[name] = s
	p.byID = append(p.byID, s)
	for _, e := range orderBy {
		if e.Kind == tuple.OrderLit {
			p.po.Touch(e.Lit)
		}
	}
	return s
}

// Schema returns a previously declared table's schema, or nil.
func (p *Program) Schema(name string) *tuple.Schema { return p.tables[name] }

// Tables returns all declared schemas in declaration order.
func (p *Program) Tables() []*tuple.Schema { return p.byID }

// Order adds an `order a < b < c` declaration; it panics on cycles, which
// would make local stratification impossible (§4).
func (p *Program) Order(chain ...string) {
	if err := p.po.Declare(chain...); err != nil {
		panic(err)
	}
}

// PartialOrder exposes the causality partial order (used by the checker and
// the visualiser).
func (p *Program) PartialOrder() *order.PartialOrder { return p.po }

// Rule registers a rule triggered by each tuple of the trigger table.
func (p *Program) Rule(name string, trig *tuple.Schema, body func(c *Ctx, t *tuple.Tuple)) *Rule {
	r := &Rule{Name: name, Trigger: trig, Body: body}
	p.rules = append(p.rules, r)
	p.trigger[trig] = append(p.trigger[trig], r)
	return r
}

// Rules returns all registered rules in registration order.
func (p *Program) Rules() []*Rule { return p.rules }

// Put schedules an initial tuple (a top-level `put` command).
func (p *Program) Put(t *tuple.Tuple) { p.initial = append(p.initial, t) }

// Action registers an external side effect performed when a tuple of the
// given table is taken out of the Delta set (paper §3: "some tuples
// generated by the program can be requests for external actions, such as
// reading or updating files — such actions are performed when those tuples
// are taken out of the Delta Set"). Actions run on the coordinator in
// causal extraction order, so they are the deterministic way to sequence
// output — the "kosher way of printing" of §6.2 fn 8. At most one action
// per table. Tables listed in Options.NoDelta never pass through the Delta
// set, so their actions never fire — the -noDelta hint is only legal for
// tables without external side effects (§5.1's "does not contain 'unsafe'
// code" condition).
func (p *Program) Action(s *tuple.Schema, fn func(run *Run, t *tuple.Tuple)) {
	if _, dup := p.actions[s]; dup {
		panic(fmt.Sprintf("jstar: table %s already has an action", s.Name))
	}
	p.actions[s] = fn
}

// PrintlnTable declares a system table whose tuples are printed, in causal
// order, as they leave the Delta set. Rules put ordered output through it
// instead of calling Println directly.
func (p *Program) PrintlnTable(name string, orderBy []tuple.OrderEntry) *tuple.Schema {
	s := p.Table(name, []tuple.Column{{Name: "line", Kind: tuple.KindString}}, orderBy)
	p.Action(s, func(run *Run, t *tuple.Tuple) {
		run.out.add(t.Str("line") + "\n")
	})
	return s
}

// GammaHint overrides the Gamma data structure for one table — the paper's
// stage-4 compiler hint (§2, §5).
func (p *Program) GammaHint(table string, f gamma.StoreFactory) {
	p.hints[table] = f
}

// PlanHint records a static store-plan hint (a gamma kind spec such as
// "inthash:1" or "columnar") for one table. Hints are advisory defaults:
// an explicit GammaHint or an Options.StorePlan entry for the same table
// wins. The lang compiler emits them from the program's query patterns;
// Validate rejects specs that name unknown kinds or unsuitable tables.
func (p *Program) PlanHint(table, spec string) { p.planHints[table] = spec }

// PlanHints returns a copy of the static store-plan hints.
func (p *Program) PlanHints() gamma.StorePlan { return p.planHints.Clone() }

// Options configure one run — the JStar compiler/runtime flags.
type Options struct {
	// Strategy selects the execution engine: Sequential, ForkJoin (fork/
	// join pool per step batch) or Pipelined (Disruptor ring + persistent
	// consumer crew). The zero value Auto warms up sequentially and picks
	// from the observed batch statistics (exec.Choose). An explicit
	// non-Auto Strategy takes precedence over the legacy Sequential flag.
	Strategy exec.Strategy
	// Sequential selects the -sequential code generator: TreeMap/TreeSet
	// structures and a single-threaded step loop. Equivalent to
	// Strategy: exec.Sequential; kept as the paper's original flag.
	Sequential bool
	// Threads is the fork/join pool size (--threads=N). 0 means NumCPU.
	Threads int
	// NoDelta lists tables whose tuples bypass the Delta set and fire
	// their rules immediately (-noDelta T, §5.1).
	NoDelta []string
	// NoGamma lists trigger-only tables never inserted into Gamma
	// (-noGamma T, §5.1).
	NoGamma []string
	// StorePlan maps table names to named store kinds ("hash:2",
	// "columnar", ... — see gamma.FactoryFor for the spec syntax and
	// gamma.StoreKinds for the legal names). Plan entries override
	// Program.GammaHint and the compiler's static plan hints for their
	// tables; tables absent from the plan are unaffected. Plans typically
	// come from a previous run's RunStats.SuggestStorePlan (the
	// -save-plan/-store-plan tuning loop) and are validated by
	// Program.Validate before any run is built.
	StorePlan gamma.StorePlan
	// CheckCausality enables runtime verification that every put respects
	// the law of causality and that every query result is not from the
	// future. This is the dynamic counterpart of the SMT checks (§4);
	// it is meant for testing, not benchmarking.
	CheckCausality bool
	// MaxSteps aborts the run after this many execution steps (0 = no
	// limit). Catches accidentally non-terminating programs like the
	// unconditioned Ship rule of §3.
	MaxSteps int64
	// Quiet discards Println output instead of buffering it.
	Quiet bool
	// TraceDataflow records rule->table put counts for the dependency
	// graph visualiser (§1.5). Off for benchmarks: it takes a lock per put.
	TraceDataflow bool
	// PhaseStats records the per-phase step breakdown
	// (RunStats.FireNanos/InsertNanos/MergeNanos/DeltaNanos and the
	// serial-boundary fraction). Off by default: it costs a handful of
	// clock reads per step, which shows on step-dominated programs;
	// jstar-bench (-smoke, -phases) and the step-boundary benches turn it
	// on.
	PhaseStats bool
	// IngressRing is the total capacity of the Session ingress — the
	// sharded multi-producer Disruptor rings external tuples pass through
	// on their way into the Delta set; it is divided evenly across the
	// ingress shards. Must be a power of two; 0 means 1024. A full lane
	// blocks its Put callers (backpressure) until the coordinator absorbs
	// a batch, so it bounds how far ingestion can outrun execution.
	IngressRing int
	// IngressShards is the number of ingress ring lanes. Concurrent Put
	// callers spread across lanes by publisher affinity, so they stop
	// contending on one claim cursor, and the coordinator drains each lane
	// into its own put-buffer slot — absorbed events arrive at the step
	// boundary already spread for the parallel seal/merge. Must be a power
	// of two; 0 picks 1 for sequential runs, else the thread count rounded
	// up to a power of two (capped at 8). 1 reproduces the old single-ring
	// ingress exactly.
	IngressShards int
	// ReplanEvery, when > 0, turns the session adaptive: every N quiescent
	// boundaries the coordinator re-derives the per-table store plan and
	// the executor strategy from *windowed* statistics (counters since the
	// last evaluation, not lifetime aggregates) and applies the changes
	// live — a table is drained, rebuilt via the suggested backend and
	// atomically swapped in; the executor is replaced between steps. Both
	// actions sit behind hysteresis: a suggestion must win
	// ReplanStreakWins consecutive windows, and tables below the planner's
	// volume floor are left alone, so a noisy window never thrashes
	// storage. 0 (the default) keeps the plan frozen at NewRun — the
	// offline -save-plan/-store-plan behaviour. Migration and switch
	// events are logged in RunStats.Migrations / StrategySwitches.
	ReplanEvery int
	// TableAffinity enables table-affine execution for the parallel
	// strategies: every table is owned by one of Threads shards (schema-ID
	// hash via gamma.ShardMap, overridable with a "@N" suffix on a
	// StorePlan entry), fire chunks are grouped by owning shard and routed
	// to the worker pinned to that shard, and put buffers become
	// per-(worker, shard) so the beginStep Gamma flush and the endStep
	// merge fan out shard-parallel with zero aliasing. Quiesced results are
	// identical with the flag on or off (the affinity parity suite pins
	// this); only the scheduling changes. Ignored for sequential runs.
	TableAffinity bool
	// Durability, when non-nil, turns the session durable: absorbed
	// external tuples are teed into a segmented write-ahead log with
	// group commit, Gamma is checkpointed at quiescent boundaries, and a
	// session started over an existing log directory recovers its state
	// (newest valid checkpoint + WAL-tail replay). See DurabilityOptions.
	Durability *DurabilityOptions
	// Pool lets callers share an external fork/join pool across runs
	// (benchmarks); when nil the run creates and owns one.
	Pool PoolRef
}

// PoolRef abstracts the scheduling pool so callers can inject a shared one.
// ForWorker is the engine's firing primitive: body receives the executing
// participant's slot (0 = the calling goroutine, 1..Size() = pool workers)
// so each can own a put buffer.
type PoolRef interface {
	Size() int
	For(n, grain int, body func(i int))
	ForWorker(n, grain int, body func(slot, i int))
}

func (o *Options) threads() int {
	if o.strategy() == exec.Sequential {
		return 1
	}
	return o.parallelThreads()
}

// parallelThreads resolves the thread count ignoring the strategy — the
// capacity an adaptive session sizes its slots for, since a mid-run
// strategy switch may upgrade a sequential start to a parallel executor.
func (o *Options) parallelThreads() int {
	if o.Threads > 0 {
		return o.Threads
	}
	return runtime.NumCPU()
}

// ingressRing resolves the total Session ingress capacity.
func (o *Options) ingressRing() int {
	if o.IngressRing > 0 {
		return o.IngressRing
	}
	return 1024
}

// ingressShards resolves the ingress lane count: an explicit value wins;
// 0 means one lane for single-threaded runs, else the thread count rounded
// up to a power of two, capped at 8 (past that, lanes outnumber plausible
// producers and only fragment the capacity).
func (o *Options) ingressShards() int {
	if o.IngressShards > 0 {
		return o.IngressShards
	}
	th := o.threads()
	if th <= 1 {
		return 1
	}
	n := 1
	for n < th && n < 8 {
		n <<= 1
	}
	return n
}

// strategy resolves the effective execution strategy — the single funnel
// for the Strategy/Sequential duality, used by every consumer of the
// choice (thread counts, store backends, executor construction): an
// explicit Options.Strategy wins, then the legacy Sequential flag, else
// Auto. Contradictory combinations (Sequential with a non-sequential
// Strategy) are rejected by Program.Validate before any run is built.
func (o *Options) strategy() exec.Strategy {
	if o.Strategy != exec.Auto {
		return o.Strategy
	}
	if o.Sequential {
		return exec.Sequential
	}
	return exec.Auto
}

func contains(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}

// knownTables renders the declared table names for actionable
// unknown-table errors.
func (p *Program) knownTables() string {
	if len(p.byID) == 0 {
		return "none declared"
	}
	names := make([]string, len(p.byID))
	for i, s := range p.byID {
		names[i] = s.Name
	}
	return strings.Join(names, ", ")
}

// Validate reports configuration errors: unknown table names in NoDelta/
// NoGamma/hints, unknown or unsuitable store kinds in StorePlan and the
// compiler's plan hints (listing the legal kinds), a negative thread
// count, a malformed ingress ring size, a negative ReplanEvery,
// and contradictory strategy flags. Every error says what was wrong and
// what the legal values are, so misconfiguration never silently degrades
// or panics mid-run.
func (p *Program) Validate(opts Options) error {
	var errs []string
	if opts.Sequential && opts.Strategy != exec.Auto && opts.Strategy != exec.Sequential {
		errs = append(errs, fmt.Sprintf(
			"Sequential: true contradicts Strategy: %v (the legacy bool means Strategy: sequential; drop one of the two)",
			opts.Strategy))
	}
	if opts.Threads < 0 {
		errs = append(errs, fmt.Sprintf("Threads: %d is negative (0 means NumCPU)", opts.Threads))
	}
	if opts.ReplanEvery < 0 {
		errs = append(errs, fmt.Sprintf("ReplanEvery: %d is negative (0 disables adaptive re-planning)", opts.ReplanEvery))
	}
	if opts.IngressRing < 0 || (opts.IngressRing > 0 && opts.IngressRing&(opts.IngressRing-1) != 0) {
		errs = append(errs, fmt.Sprintf("IngressRing: %d is not a power of two (0 means 1024)", opts.IngressRing))
	}
	if opts.IngressShards < 0 || (opts.IngressShards > 0 && opts.IngressShards&(opts.IngressShards-1) != 0) {
		errs = append(errs, fmt.Sprintf("IngressShards: %d is not a power of two (0 means auto)", opts.IngressShards))
	}
	for _, t := range opts.NoDelta {
		if _, ok := p.tables[t]; !ok {
			errs = append(errs, fmt.Sprintf("-noDelta %s: unknown table (declared: %s)", t, p.knownTables()))
		}
	}
	for _, t := range opts.NoGamma {
		if _, ok := p.tables[t]; !ok {
			errs = append(errs, fmt.Sprintf("-noGamma %s: unknown table (declared: %s)", t, p.knownTables()))
		}
	}
	for t := range p.hints {
		if _, ok := p.tables[t]; !ok {
			errs = append(errs, fmt.Sprintf("gamma hint for %s: unknown table (declared: %s)", t, p.knownTables()))
		}
	}
	checkPlan := func(label string, plan gamma.StorePlan) {
		for t, spec := range plan {
			s, ok := p.tables[t]
			if !ok {
				errs = append(errs, fmt.Sprintf("%s for %s: unknown table (declared: %s)", label, t, p.knownTables()))
				continue
			}
			if _, err := gamma.FactoryFor(spec, s); err != nil {
				errs = append(errs, fmt.Sprintf("%s for %s: %v", label, t, err))
			}
		}
	}
	checkPlan("store plan", opts.StorePlan)
	checkPlan("store plan hint", p.planHints)
	if opts.Durability != nil {
		errs = append(errs, opts.Durability.validate()...)
	}
	if len(errs) > 0 {
		sort.Strings(errs)
		return fmt.Errorf("jstar: %s", strings.Join(errs, "; "))
	}
	return nil
}

// outputBuffer collects Println lines from rules. The order of lines within
// one parallel batch is scheduling-dependent (only the output *set* is
// deterministic, §1.3), so tests should sort before comparing.
type outputBuffer struct {
	mu    sync.Mutex
	lines []string
	quiet bool
}

func (b *outputBuffer) add(line string) {
	if b.quiet {
		return
	}
	b.mu.Lock()
	b.lines = append(b.lines, line)
	b.mu.Unlock()
}

func (b *outputBuffer) snapshot() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]string(nil), b.lines...)
}
