package core

import (
	"testing"

	"github.com/jstar-lang/jstar/internal/tuple"
)

// Regression tests for two hot-path fixes:
//   - Run.put must count a discarded duplicate exactly once under -noDelta
//     (the Gamma insert is the only dedup point there), and must not count
//     duplicates at all under -noDelta + -noGamma, where set semantics are
//     deliberately waived and every put fires.
//   - runActions must run only when the batch actually contains action-table
//     tuples, and must sort only those tuples, not the whole batch.

func TestNoDeltaDuplicateCountedOnceAndNotRefired(t *testing.T) {
	p := NewProgram()
	a := p.Table("A", []tuple.Column{{Name: "v", Kind: tuple.KindInt}},
		[]tuple.OrderEntry{tuple.Lit("A")})
	var fired int64
	p.Rule("count", a, func(c *Ctx, tt *tuple.Tuple) { fired++ })
	p.Put(tuple.New(a, tuple.Int(7)))
	p.Put(tuple.New(a, tuple.Int(7))) // duplicate
	run, err := p.Execute(Options{Sequential: true, NoDelta: []string{"A"}})
	if err != nil {
		t.Fatal(err)
	}
	st := run.Stats().Tables["A"]
	if st.Puts.Load() != 2 {
		t.Errorf("puts = %d, want 2", st.Puts.Load())
	}
	if st.Duplicates.Load() != 1 {
		t.Errorf("duplicates = %d, want exactly 1 (no double count)", st.Duplicates.Load())
	}
	if fired != 1 {
		t.Errorf("rule fired %d times, want 1 (duplicate must not re-fire)", fired)
	}
}

func TestNoDeltaNoGammaFiresEveryPut(t *testing.T) {
	// With both the Delta set and Gamma storage bypassed there is no dedup
	// point left: every put fires, and none is a "duplicate".
	p := NewProgram()
	a := p.Table("A", []tuple.Column{{Name: "v", Kind: tuple.KindInt}},
		[]tuple.OrderEntry{tuple.Lit("A")})
	var fired int64
	p.Rule("count", a, func(c *Ctx, tt *tuple.Tuple) { fired++ })
	p.Put(tuple.New(a, tuple.Int(7)))
	p.Put(tuple.New(a, tuple.Int(7)))
	run, err := p.Execute(Options{Sequential: true,
		NoDelta: []string{"A"}, NoGamma: []string{"A"}})
	if err != nil {
		t.Fatal(err)
	}
	st := run.Stats().Tables["A"]
	if st.Duplicates.Load() != 0 {
		t.Errorf("duplicates = %d, want 0 (nothing can dedup)", st.Duplicates.Load())
	}
	if fired != 2 {
		t.Errorf("rule fired %d times, want 2", fired)
	}
	if run.Gamma().Table(a).Len() != 0 {
		t.Error("-noGamma table must stay empty")
	}
}

func TestActionsRunSortedAndOnlyForActionTables(t *testing.T) {
	// Act and Other share one orderby literal, so their tuples land in one
	// causal equivalence class. The action must see only Act tuples, in
	// field-sorted order regardless of put order.
	p := NewProgram()
	act := p.Table("Act", []tuple.Column{{Name: "v", Kind: tuple.KindInt}},
		[]tuple.OrderEntry{tuple.Lit("Same")})
	p.Table("Other", []tuple.Column{{Name: "v", Kind: tuple.KindInt}},
		[]tuple.OrderEntry{tuple.Lit("Same")})
	other := p.Schema("Other")
	var seen []int64
	p.Action(act, func(run *Run, tt *tuple.Tuple) { seen = append(seen, tt.Int("v")) })
	p.Put(tuple.New(act, tuple.Int(3)))
	p.Put(tuple.New(other, tuple.Int(9)))
	p.Put(tuple.New(act, tuple.Int(1)))
	p.Put(tuple.New(other, tuple.Int(8)))
	p.Put(tuple.New(act, tuple.Int(2)))
	run, err := p.Execute(Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	if run.Stats().Steps != 1 {
		t.Fatalf("steps = %d, want 1 (one shared equivalence class)", run.Stats().Steps)
	}
	if len(seen) != 3 || seen[0] != 1 || seen[1] != 2 || seen[2] != 3 {
		t.Errorf("action saw %v, want [1 2 3]", seen)
	}
}
