package core

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"time"

	"github.com/jstar-lang/jstar/internal/exec"
	"github.com/jstar-lang/jstar/internal/forkjoin"
	"github.com/jstar-lang/jstar/internal/gamma"
	"github.com/jstar-lang/jstar/internal/tuple"
)

// This file is the online half of the profile-guided planner: where
// plan.go derives a StorePlan for the *next* run, the re-planner applies
// the same heuristics to *this* run, live, at quiescent step boundaries —
// the only points where the coordinator owns all mutation, so a table can
// be drained, rebuilt through FactoryFor and atomically swapped without a
// writer in flight (concurrent readers finish against the old store; see
// gamma.DB.Migrate). The executor strategy is re-picked at the same
// trigger from the windowed fire statistics. Both decisions run on
// windowed counters (deltas since the last evaluation), so a session
// serving drifting traffic follows the drift instead of being anchored to
// lifetime aggregates, and both sit behind the same hysteresis: a
// suggestion must win ReplanStreakWins consecutive windows over a volume
// floor before anything moves.

// ReplanStreakWins is the hysteresis width of the adaptive session: a
// suggested store kind (or strategy) must win this many consecutive
// re-plan windows before it is applied, so one unrepresentative window
// never migrates a table back and forth.
const ReplanStreakWins = 2

// MigrationEvent records one live store migration (drain → rebuild →
// atomic swap) performed at a quiescent boundary.
type MigrationEvent struct {
	Step    int64  // RunStats.Steps when the swap happened
	Quiesce int64  // quiescent-boundary ordinal (1-based; 0 = unknown)
	Table   string // migrated table
	From    string // previous store kind spec
	To      string // new store kind spec
	Tuples  int    // tuples drained and re-inserted
	Nanos   int64  // wall time of the drain+rebuild+swap
}

// StrategySwitch records one executor strategy re-pick between steps.
type StrategySwitch struct {
	Step        int64
	Quiesce     int64
	From        string  // executor name before the switch
	To          string  // strategy installed
	WindowBatch float64 // windowed mean live tuples per step that drove the pick
}

// migrateTable rebuilds s's store as spec and swaps it in, reusing the
// coordinator's merge scratch as the drain buffer. Coordinator-only, at
// quiescent boundaries. On error the table keeps its old store.
func (r *Run) migrateTable(s *tuple.Schema, spec string, quiesce int64) error {
	f, err := gamma.FactoryFor(spec, s)
	if err != nil {
		return err
	}
	if f == nil {
		return fmt.Errorf("jstar: migrate %s: spec %q names no store kind (ownership-only)", s.Name, spec)
	}
	from := r.stats.StoreKinds[s.Name]
	start := time.Now()
	scratch, err := r.gammaDB.Migrate(s, f, r.flushBuf[:0])
	moved := len(scratch)
	if scratch != nil {
		clear(scratch)
		r.flushBuf = scratch[:0]
	}
	if err != nil {
		return err
	}
	to := gamma.KindOf(r.gammaDB.Table(s))
	r.stats.StoreKinds[s.Name] = to
	r.stats.Migrations = append(r.stats.Migrations, MigrationEvent{
		Step: r.stats.Steps, Quiesce: quiesce, Table: s.Name,
		From: from, To: to, Tuples: moved, Nanos: time.Since(start).Nanoseconds(),
	})
	return nil
}

// applyMigrate is the explicit (Session.Migrate) entry to migrateTable:
// it refuses tables whose stores the planner may not touch — -noGamma
// stores are never used, and non-replannable backends (dense3d, rolling,
// arrayhash, custom) have parameters a drain cannot reconstruct.
func (r *Run) applyMigrate(s *tuple.Schema, spec string, quiesce int64) error {
	if id := int(s.ID()); id < len(r.noGamma) && r.noGamma[id] {
		return fmt.Errorf("jstar: migrate %s: table is -noGamma, its store is never used", s.Name)
	}
	if cur := r.stats.StoreKinds[s.Name]; !replannable(cur) {
		return fmt.Errorf("jstar: migrate %s: current store %q is not replannable (its parameters encode program knowledge a rebuild would lose)", s.Name, cur)
	}
	return r.migrateTable(s, spec, quiesce)
}

// switchExecutor replaces the run's executor with the given strategy
// between Drains. Coordinator-only: the loop re-reads r.executor on every
// Drain, and the old executor (and its consumer crew, for Pipelined) is
// closed before the new one installs. A switch into ForkJoin lazily
// creates the pool a sequential start never built.
func (r *Run) switchExecutor(to exec.Strategy, quiesce int64, windowBatch float64) error {
	if to == r.curStrategy {
		return nil
	}
	if to == exec.ForkJoin && r.pool == nil {
		r.ownPool = forkjoin.NewPool(r.threads)
		r.pool = r.ownPool
	}
	var pool exec.Pool
	if r.pool != nil {
		pool = r.pool
	}
	// Clamp like Auto does: threads beyond the scheduler are pure
	// oversubscription (a Pipelined crew larger than GOMAXPROCS).
	threads := r.threads
	if p := runtime.GOMAXPROCS(0); threads > p {
		threads = p
	}
	ex, err := exec.New(to, exec.Config{Threads: threads, Pool: pool})
	if err != nil {
		return err
	}
	from := r.executor.Name()
	r.executor.Close()
	r.executor = ex
	r.curStrategy = to
	r.stats.StrategySwitches = append(r.stats.StrategySwitches, StrategySwitch{
		Step: r.stats.Steps, Quiesce: quiesce,
		From: from, To: to.String(), WindowBatch: windowBatch,
	})
	return nil
}

// replanner drives Options.ReplanEvery: windowed counter snapshots,
// suggestion streaks, and the migrate/switch actions. Owned and called by
// the session coordinator only.
type replanner struct {
	run   *Run
	every int64

	// Window baselines: lifetime counter values at the last evaluation.
	prevTables  map[string]tableCounters
	prevLive    int64
	prevSteps   int64
	prevBatches int64

	// Hysteresis state: per-table suggested-kind streaks and the strategy
	// suggestion streak.
	kindStreak  map[string]kindStreak
	stratWant   exec.Strategy
	stratStreak int
}

type kindStreak struct {
	kind string
	n    int
}

func newReplanner(r *Run) *replanner {
	return &replanner{
		run:        r,
		every:      int64(r.opts.ReplanEvery),
		prevTables: make(map[string]tableCounters, len(r.stats.Tables)),
		kindStreak: make(map[string]kindStreak),
		stratWant:  exec.Strategy(-1),
	}
}

// tick runs after every quiescent drain; every ReplanEvery-th boundary it
// evaluates the window and applies whatever cleared hysteresis.
func (rp *replanner) tick(quiesce int64) {
	if quiesce%rp.every != 0 {
		return
	}
	rp.evaluate(quiesce)
}

func (rp *replanner) evaluate(quiesce int64) {
	r := rp.run
	rs := &r.stats
	wLive := rs.TotalLive - rp.prevLive
	wSteps := rs.Steps - rp.prevSteps
	wBatches := rs.FireBatches.Load() - rp.prevBatches
	// An idle boundary — a Quiesce wakeup that drained nothing, with no
	// external queries since the last evaluation — carries no workload
	// information: it is not a window, and treating it as one would reset
	// every hysteresis streak between real windows.
	activity := wLive + wSteps
	for _, s := range r.prog.byID {
		win := lifetimeCounters(rs.Tables[s.Name]).sub(rp.prevTables[s.Name])
		activity += win.puts + win.queries
	}
	if activity == 0 {
		return
	}
	rs.Replans++
	// The windowed volume floor counts puts *and* queries: a query-only
	// window (the put-dominated table that drifted into a probe target)
	// is exactly the drift the re-planner exists to catch, and lifetime
	// puts say nothing about it.
	minPuts := int64(planMinPuts)
	if wBatches > 0 && float64(wLive)/float64(wBatches) >= planBatchedChunk {
		minPuts = planBatchedMinPuts
	}
	// Declaration order keeps the migration sequence deterministic.
	for _, s := range r.prog.byID {
		name := s.Name
		st := rs.Tables[name]
		life := lifetimeCounters(st)
		win := life.sub(rp.prevTables[name])
		win.minPrefix = st.winMinPrefix.Swap(0)
		rp.prevTables[name] = life
		if rs.noGamma[name] || !replannable(rs.StoreKinds[name]) {
			continue
		}
		if win.puts+win.queries < minPuts {
			delete(rp.kindStreak, name)
			continue
		}
		want := suggestKind(s, win)
		cur := rs.StoreKinds[name]
		if want == "" || want == cur || servesShape(cur, want) {
			delete(rp.kindStreak, name)
			continue
		}
		ks := rp.kindStreak[name]
		if ks.kind != want {
			rp.kindStreak[name] = kindStreak{kind: want, n: 1}
			continue
		}
		ks.n++
		if ks.n < ReplanStreakWins {
			rp.kindStreak[name] = ks
			continue
		}
		delete(rp.kindStreak, name)
		// A failed rebuild (lossy factory) keeps the old store and the
		// session healthy; the next window may suggest differently.
		_ = r.migrateTable(s, want, quiesce)
	}
	rp.prevLive, rp.prevSteps, rp.prevBatches = rs.TotalLive, rs.Steps, rs.FireBatches.Load()

	if wSteps <= 0 {
		return
	}
	windowBatch := float64(wLive) / float64(wSteps)
	threads := r.threads
	if p := runtime.GOMAXPROCS(0); threads > p {
		threads = p
	}
	want := exec.Choose(windowBatch, threads)
	if want != rp.stratWant {
		rp.stratWant, rp.stratStreak = want, 1
	} else {
		rp.stratStreak++
	}
	if want != r.curStrategy && rp.stratStreak >= ReplanStreakWins {
		_ = r.switchExecutor(want, quiesce, windowBatch)
	}
}

// servesShape reports whether the current backend already serves the
// suggested query shape, making a migration churn without a win: both
// kinds in the point-probe hash family, with the current key depth no
// deeper than the suggested one (every suggested probe still hits the
// keyed path). inthash↔hash flips driven only by the put/query balance of
// one window are exactly the thrash hysteresis exists to prevent.
func servesShape(cur, want string) bool {
	cn, ck := splitHashKind(cur)
	wn, wk := splitHashKind(want)
	return cn != "" && wn != "" && ck >= 1 && ck <= wk
}

// splitHashKind parses "hash:k"/"inthash:k" specs; other kinds return "".
func splitHashKind(spec string) (string, int) {
	name := gamma.KindName(spec)
	if name != "hash" && name != "inthash" {
		return "", 0
	}
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		if k, err := strconv.Atoi(spec[i+1:]); err == nil {
			return name, k
		}
	}
	return "", 0
}
