package core

import (
	"context"
	"runtime"
	"slices"
	"strings"
	"testing"
	"time"

	"github.com/jstar-lang/jstar/internal/exec"
	"github.com/jstar-lang/jstar/internal/gamma"
	"github.com/jstar-lang/jstar/internal/tuple"
)

// probeProgram is the drifting-workload shape in miniature: Reading(key,
// val) is ingested in bulk, Probe(id, key) point-queries it (prefix depth
// 1) and records Answer(id, key, val). Probes carry distinct ids so every
// probe yields exactly one Answer tuple.
func probeProgram() (*Program, *tuple.Schema, *tuple.Schema, *tuple.Schema) {
	p := NewProgram()
	rd := p.Table("Reading",
		[]tuple.Column{{Name: "key", Kind: tuple.KindInt}, {Name: "val", Kind: tuple.KindInt}},
		[]tuple.OrderEntry{tuple.Lit("Reading")})
	pr := p.Table("Probe",
		[]tuple.Column{{Name: "id", Kind: tuple.KindInt}, {Name: "key", Kind: tuple.KindInt}},
		[]tuple.OrderEntry{tuple.Lit("Probe")})
	an := p.Table("Answer",
		[]tuple.Column{
			{Name: "id", Kind: tuple.KindInt},
			{Name: "key", Kind: tuple.KindInt},
			{Name: "val", Kind: tuple.KindInt},
		},
		[]tuple.OrderEntry{tuple.Lit("Answer")})
	p.Order("Reading", "Probe", "Answer")
	p.Rule("probe", pr, func(c *Ctx, t *tuple.Tuple) {
		c.ForEach(rd, gamma.Query{Prefix: []tuple.Value{t.Field(1)}}, func(r *tuple.Tuple) bool {
			c.PutNew(an, t.Field(0), r.Field(0), r.Field(1))
			return false
		})
	})
	return p, rd, pr, an
}

func readingTuple(rd *tuple.Schema, key int) *tuple.Tuple {
	return tuple.New(rd, tuple.Int(int64(key)), tuple.Int(int64(7*key+3)))
}

func sortedByFields(ts []*tuple.Tuple) []*tuple.Tuple {
	out := slices.Clone(ts)
	slices.SortFunc(out, func(a, b *tuple.Tuple) int { return a.CompareFields(b) })
	return out
}

func assertSameTuples(t *testing.T, label string, got, want []*tuple.Tuple) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d tuples, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i].CompareFields(want[i]) != 0 {
			t.Fatalf("%s: tuple %d = %v, want %v", label, i, got[i], want[i])
		}
	}
}

// runProbeSession drives the probe workload: bulk readings, quiesce,
// optionally migrate Reading to migrateTo, probe burst, quiesce. It
// returns the canonically sorted Reading and Answer snapshots.
func runProbeSession(t *testing.T, strat exec.Strategy, migrateTo string) (rds, ans []*tuple.Tuple) {
	t.Helper()
	p, rd, pr, an := probeProgram()
	ctx := context.Background()
	s, err := p.Start(ctx, Options{Strategy: strat, Threads: 4, Quiet: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const keys, probes = 300, 150
	batch := make([]*tuple.Tuple, 0, keys)
	for i := 0; i < keys; i++ {
		batch = append(batch, readingTuple(rd, i))
	}
	if err := s.PutBatch(batch...); err != nil {
		t.Fatal(err)
	}
	if err := s.Quiesce(ctx); err != nil {
		t.Fatal(err)
	}
	if migrateTo != "" {
		if err := s.Migrate("Reading", migrateTo); err != nil {
			t.Fatalf("Migrate(Reading, %s): %v", migrateTo, err)
		}
		if got := gamma.KindOf(s.Run().Gamma().Table(rd)); got != migrateTo {
			t.Fatalf("store kind after Migrate = %s, want %s", got, migrateTo)
		}
	}
	batch = batch[:0]
	for i := 0; i < probes; i++ {
		batch = append(batch, tuple.New(pr, tuple.Int(int64(i)), tuple.Int(int64((i*17)%keys))))
	}
	if err := s.PutBatch(batch...); err != nil {
		t.Fatal(err)
	}
	if err := s.Quiesce(ctx); err != nil {
		t.Fatal(err)
	}
	rds = sortedByFields(s.Snapshot(rd))
	ans = sortedByFields(s.Snapshot(an))
	if len(ans) != probes {
		t.Fatalf("answers = %d, want %d", len(ans), probes)
	}
	return rds, ans
}

// TestSessionMigrateParity is the migration parity suite: for every
// compatible (store kind × strategy) pair, migrate mid-run and assert the
// quiesced snapshots are identical to the no-migration run's. The CI race
// suite runs this under -race.
func TestSessionMigrateParity(t *testing.T) {
	kinds := []string{"tree", "skip", "hash:1", "hash:2", "inthash:1", "inthash:2", "columnar"}
	for _, strat := range []exec.Strategy{exec.Sequential, exec.ForkJoin, exec.Pipelined} {
		t.Run(strat.String(), func(t *testing.T) {
			wantRd, wantAn := runProbeSession(t, strat, "")
			for _, kind := range kinds {
				t.Run(kind, func(t *testing.T) {
					rds, ans := runProbeSession(t, strat, kind)
					assertSameTuples(t, "Reading snapshot", rds, wantRd)
					assertSameTuples(t, "Answer snapshot", ans, wantAn)
				})
			}
		})
	}
}

// TestSessionMigrateValidation covers the refusal paths: unknown tables,
// invalid specs, non-replannable current backends, -noGamma tables, and
// terminal sessions.
func TestSessionMigrateValidation(t *testing.T) {
	p, rd, _, _ := probeProgram()
	p.GammaHint("Answer", gamma.NewArrayOfHashSets(0, 0, 1<<20))
	ctx := context.Background()
	s, err := p.Start(ctx, Options{Sequential: true, Quiet: true, NoGamma: []string{"Probe"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutBatch(readingTuple(rd, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Quiesce(ctx); err != nil {
		t.Fatal(err)
	}
	if err := s.Migrate("Nope", "tree"); err == nil || !strings.Contains(err.Error(), "unknown table") {
		t.Errorf("unknown table: err = %v", err)
	}
	if err := s.Migrate("Reading", "hash:9"); err == nil {
		t.Error("out-of-range key depth must be rejected")
	}
	if err := s.Migrate("Answer", "tree"); err == nil || !strings.Contains(err.Error(), "not replannable") {
		t.Errorf("non-replannable backend: err = %v", err)
	}
	if err := s.Migrate("Probe", "tree"); err == nil || !strings.Contains(err.Error(), "noGamma") {
		t.Errorf("noGamma table: err = %v", err)
	}
	if err := s.Migrate("Reading", "skip"); err != nil {
		t.Errorf("legal migration failed: %v", err)
	}
	s.Close()
	if err := s.Migrate("Reading", "tree"); err == nil {
		t.Error("Migrate after Close must fail")
	}
}

// putQuiesce publishes one batch and waits for quiescence.
func putQuiesce(t *testing.T, s *Session, ts []*tuple.Tuple) {
	t.Helper()
	if err := s.PutBatch(ts...); err != nil {
		t.Fatal(err)
	}
	if err := s.Quiesce(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestReplanMigratesOnDrift drives an adaptive session through put+probe
// windows. The session coordinator may split one external batch across
// several quiescent boundaries (ingress chunks absorb as they arrive), so
// this test asserts eventual convergence — the deterministic per-window
// hysteresis semantics are pinned by TestReplannerHysteresis below, which
// drives the replanner directly.
func TestSessionReplanConverges(t *testing.T) {
	p, rd, pr, _ := probeProgram()
	ctx := context.Background()
	s, err := p.Start(ctx, Options{Strategy: exec.Sequential, ReplanEvery: 1, Quiet: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const keys = 400
	probeID := int64(0)
	for w := 0; w < 6; w++ {
		batch := make([]*tuple.Tuple, 0, keys+keys/16)
		for i := 0; i < keys; i++ {
			k := w*keys + i
			batch = append(batch, readingTuple(rd, k))
			// Interleave point probes against earlier keys so every
			// absorption chunk carries the put-dominated-probed shape.
			if i%16 == 15 {
				batch = append(batch, tuple.New(pr, tuple.Int(probeID), tuple.Int(int64(k/2))))
				probeID++
			}
		}
		putQuiesce(t, s, batch)
	}
	st := s.Stats()
	var reading []MigrationEvent
	for _, m := range st.Migrations {
		if m.Table == "Reading" {
			reading = append(reading, m)
		}
	}
	if len(reading) == 0 {
		t.Fatalf("Reading never migrated (replans=%d, events=%+v)", st.Replans, st.Migrations)
	}
	if reading[0].From != "tree" {
		t.Fatalf("first migration not from the sequential default: %+v", reading[0])
	}
	if got := st.StoreKinds["Reading"]; gamma.KindName(got) != "inthash" && gamma.KindName(got) != "hash" {
		t.Fatalf("StoreKinds[Reading] = %q, want a point-probe kind", got)
	}
	if st.Replans == 0 {
		t.Fatal("no replan windows evaluated")
	}
	// The saved plan replays the end state.
	if got := st.SuggestStorePlan()["Reading"]; gamma.KindName(got) != "inthash" && gamma.KindName(got) != "hash" {
		t.Fatalf("suggested plan for Reading = %q, want a point-probe kind", got)
	}
}

// replanWindow bumps Reading's counters as one synthetic re-plan window
// and evaluates — the deterministic harness for hysteresis semantics.
func replanWindow(r *Run, rp *replanner, q int64, puts, probes int64) {
	st := r.stats.Tables["Reading"]
	st.Puts.Add(puts)
	st.Queries.Add(probes)
	st.IndexedQueries.Add(probes)
	if probes > 0 {
		casMin(&st.MinPrefixLen, 1)
		casMin(&st.winMinPrefix, 1)
	}
	r.stats.TotalLive += puts + probes
	r.stats.Steps++
	rp.evaluate(q)
}

// TestReplannerHysteresis drives the replanner directly with synthetic
// windows: no migration after one winning window, migration after
// ReplanStreakWins, no lateral hash-family churn once the backend serves
// the probe shape, and idle boundaries neither counting nor resetting.
func TestReplannerHysteresis(t *testing.T) {
	p, _, _, _ := probeProgram()
	r, err := p.NewRun(Options{Strategy: exec.Sequential, Threads: 1, ReplanEvery: 1, Quiet: true})
	if err != nil {
		t.Fatal(err)
	}
	defer r.finish(time.Now())
	rp := newReplanner(r)
	rs := &r.stats

	// Window 1: put-dominated, point-probed, all-int — the heuristic wants
	// inthash:1, but one window must not migrate.
	replanWindow(r, rp, 1, 400, 50)
	if len(rs.Migrations) != 0 {
		t.Fatalf("migrated after one window (hysteresis broken): %+v", rs.Migrations)
	}
	if rs.Replans != 1 {
		t.Fatalf("Replans = %d, want 1", rs.Replans)
	}

	// An idle boundary between windows is not a window: it neither counts
	// as a replan nor resets the suggestion streak.
	rp.evaluate(2)
	if rs.Replans != 1 {
		t.Fatalf("idle boundary counted as a window: Replans = %d", rs.Replans)
	}

	// Window 2: same shape — the streak reaches ReplanStreakWins, Reading
	// migrates from the sequential default (tree) to inthash:1.
	replanWindow(r, rp, 3, 400, 50)
	if n := len(rs.Migrations); n != 1 {
		t.Fatalf("migrations after two windows = %d, want 1 (%+v)", n, rs.Migrations)
	}
	m := rs.Migrations[0]
	if m.Table != "Reading" || m.From != "tree" || m.To != "inthash:1" || m.Quiesce != 3 {
		t.Fatalf("migration event = %+v", m)
	}
	if got := rs.StoreKinds["Reading"]; got != "inthash:1" {
		t.Fatalf("StoreKinds[Reading] = %s, want inthash:1 (must record the final kind)", got)
	}

	// Probe-only windows: the heuristic now says hash:1 (no puts), but
	// inthash:1 already serves depth-1 point probes — servesShape must
	// suppress the lateral migration.
	replanWindow(r, rp, 4, 0, 400)
	replanWindow(r, rp, 5, 0, 400)
	if n := len(rs.Migrations); n != 1 {
		t.Fatalf("lateral hash-family migration happened: %+v", rs.Migrations)
	}
}

// TestReplanVolumeFloor: windows below the volume floor never migrate,
// however many there are, and never build a streak.
func TestReplanVolumeFloor(t *testing.T) {
	p, _, _, _ := probeProgram()
	r, err := p.NewRun(Options{Strategy: exec.Sequential, Threads: 1, ReplanEvery: 1, Quiet: true})
	if err != nil {
		t.Fatal(err)
	}
	defer r.finish(time.Now())
	rp := newReplanner(r)
	for q := int64(1); q <= 5; q++ {
		replanWindow(r, rp, q, 20, 5)
	}
	if len(r.stats.Migrations) != 0 {
		t.Fatalf("sub-floor windows migrated: %+v", r.stats.Migrations)
	}
	if r.stats.Replans != 5 {
		t.Fatalf("Replans = %d, want 5", r.stats.Replans)
	}
}

// TestReplanStrategySwitch: consistently large step batches on a
// multi-thread adaptive session must re-pick ForkJoin after two windows,
// log the switch, and keep producing correct results afterwards.
func TestReplanStrategySwitch(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	p, rd, pr, an := probeProgram()
	ctx := context.Background()
	s, err := p.Start(ctx, Options{Strategy: exec.Sequential, Threads: 4, ReplanEvery: 1, Quiet: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.Run().StrategyName(); got != "sequential" {
		t.Fatalf("initial strategy = %s", got)
	}
	const keys = 2000
	for w := 0; w < 2; w++ {
		batch := make([]*tuple.Tuple, 0, keys)
		for i := 0; i < keys; i++ {
			batch = append(batch, readingTuple(rd, w*keys+i))
		}
		putQuiesce(t, s, batch)
	}
	// Ingress timing decides how many drains one batch spans, so the exact
	// switch path can include an intermediate pipelined window; what must
	// hold is convergence on forkjoin with the driving window recorded.
	st := s.Stats()
	if len(st.StrategySwitches) == 0 {
		t.Fatal("no strategy switch recorded")
	}
	sw := st.StrategySwitches[len(st.StrategySwitches)-1]
	if sw.To != "forkjoin" || sw.WindowBatch < float64(4*4) {
		t.Fatalf("final switch event = %+v", sw)
	}
	if st.StrategySwitches[0].From != "sequential" {
		t.Fatalf("first switch event = %+v", st.StrategySwitches[0])
	}
	if got := s.Run().StrategyName(); got != "forkjoin" {
		t.Fatalf("strategy after switch = %s, want forkjoin", got)
	}
	// The switched executor must keep the engine correct: probe every key
	// put so far and count the answers.
	const probes = 500
	batch := make([]*tuple.Tuple, 0, probes)
	for i := 0; i < probes; i++ {
		batch = append(batch, tuple.New(pr, tuple.Int(int64(i)), tuple.Int(int64(i*3%(2*keys)))))
	}
	putQuiesce(t, s, batch)
	if got := len(s.Snapshot(an)); got != probes {
		t.Fatalf("answers after strategy switch = %d, want %d", got, probes)
	}
}

// TestPlanReplaysMigratedKind: a migrated table the lifetime heuristics
// have no opinion about (sub-floor volume) still lands in the suggested
// plan with its final kind — saved plans replay the end state.
func TestPlanReplaysMigratedKind(t *testing.T) {
	p, rd, _, _ := probeProgram()
	ctx := context.Background()
	s, err := p.Start(ctx, Options{Sequential: true, Quiet: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	putQuiesce(t, s, []*tuple.Tuple{readingTuple(rd, 1), readingTuple(rd, 2)})
	if err := s.Migrate("Reading", "columnar"); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if got := st.StoreKinds["Reading"]; got != "columnar" {
		t.Fatalf("StoreKinds[Reading] = %s, want columnar", got)
	}
	plan := st.SuggestStorePlan()
	if got := plan["Reading"]; got != "columnar" {
		t.Fatalf("suggested plan for Reading = %q, want columnar (migration end state)", got)
	}
}

// TestValidateReplanEvery: a negative ReplanEvery is a configuration
// error, reported with the legal values.
func TestValidateReplanEvery(t *testing.T) {
	p, _, _, _ := probeProgram()
	err := p.Validate(Options{ReplanEvery: -1})
	if err == nil || !strings.Contains(err.Error(), "ReplanEvery") {
		t.Fatalf("Validate(ReplanEvery: -1) = %v", err)
	}
	if err := p.Validate(Options{ReplanEvery: 4}); err != nil {
		t.Fatalf("Validate(ReplanEvery: 4) = %v", err)
	}
}
