package core

import (
	"context"
	"fmt"
	"math/bits"
	"runtime"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/jstar-lang/jstar/internal/delta"
	"github.com/jstar-lang/jstar/internal/exec"
	"github.com/jstar-lang/jstar/internal/forkjoin"
	"github.com/jstar-lang/jstar/internal/gamma"
	"github.com/jstar-lang/jstar/internal/order"
	"github.com/jstar-lang/jstar/internal/tuple"
)

// TableStats are per-table usage statistics recorded during a run — the
// logging system of §1.5, used as the basis for choosing parallelisation
// strategies.
type TableStats struct {
	Puts       atomic.Int64 // tuples put (before dedup)
	Duplicates atomic.Int64 // puts discarded as duplicates
	Triggers   atomic.Int64 // rule firings triggered by this table
	Queries    atomic.Int64 // Gamma queries against this table
	// IndexedQueries counts the queries with a non-empty equality prefix,
	// PrefixLenSum totals those prefixes' lengths, and MinPrefixLen holds
	// the shortest one observed (0 before any). Together with Queries they
	// tell the store planner whether a table is point-probed (and at what
	// prefix depth) or only scanned — the query-shape half of the §1.5
	// statistics that PlanFromStats turns into a StorePlan. The planner
	// keys hash backends at MinPrefixLen, never deeper: a key depth any
	// observed query under-specifies would degrade that query to a scan.
	IndexedQueries atomic.Int64
	PrefixLenSum   atomic.Int64
	MinPrefixLen   atomic.Int64
	// winMinPrefix is MinPrefixLen's windowed twin: the shortest indexed
	// prefix observed since the re-planner last evaluated this table. The
	// monotone counters above yield windowed values by snapshot delta, but
	// a minimum cannot be subtracted, so it gets its own resettable atomic
	// (reset only by the coordinator, at a quiescent boundary).
	winMinPrefix atomic.Int64
}

// noteIndexed folds a batch of indexed-query observations (count, total
// prefix length, smallest prefix length) into the counters with one update
// each plus a CAS-min.
func (t *TableStats) noteIndexed(indexed, plen, min int64) {
	t.IndexedQueries.Add(indexed)
	t.PrefixLenSum.Add(plen)
	casMin(&t.MinPrefixLen, min)
	casMin(&t.winMinPrefix, min)
}

func casMin(a *atomic.Int64, min int64) {
	for {
		cur := a.Load()
		if cur != 0 && cur <= min {
			return
		}
		if a.CompareAndSwap(cur, min) {
			return
		}
	}
}

// batchBuckets is the number of power-of-two buckets in the fire-chunk
// histogram: bucket i counts chunks of size [2^i, 2^(i+1)), with the last
// bucket open-ended.
const batchBuckets = 16

// RunStats aggregates statistics across a run.
type RunStats struct {
	Steps      int64 // execution steps (minimum-batch extractions)
	MaxBatch   int   // largest parallel batch
	TotalLive  int64 // live (non-duplicate) tuples entering step batches
	TotalFired int64 // total rule firings
	Elapsed    time.Duration
	Tables     map[string]*TableStats
	RuleNanos  map[string]*atomic.Int64 // cumulative body time per rule

	// StoreKinds records the store backend currently backing each table —
	// a replayable gamma kind spec ("skip", "hash:2", "dense3d:3,96,96",
	// "custom" for opaque factories). Initialised when the run is built and
	// updated on every live migration, so at quiescence it names the *final*
	// kind (the one a saved plan should replay); Migrations holds the
	// from→to history. It is the "kind chosen" column of the BENCH
	// artifact's per-table rows and the planner's view of which choices it
	// may override. Written only by the coordinator; read at quiescence.
	StoreKinds map[string]string
	// Migrations is the live store-migration event log: one entry per
	// completed drain→rebuild→swap, in execution order. Written only by the
	// coordinator at quiescent boundaries; read at quiescence.
	Migrations []MigrationEvent
	// StrategySwitches logs executor strategy re-picks between steps (the
	// online SuggestStrategy loop). Same access contract as Migrations.
	StrategySwitches []StrategySwitch
	// Replans counts re-plan evaluations (windows inspected), whether or
	// not they migrated anything.
	Replans int64
	// schemas and noGamma carry the planner's non-counter inputs (column
	// kinds for backend suitability; tables whose stores are never used).
	schemas map[string]*tuple.Schema
	noGamma map[string]bool

	// Per-phase step breakdown, in coordinator wall-clock nanoseconds:
	// InsertNanos covers BeginStep (batch sort, Gamma inserts, external
	// actions), FireNanos the rule dispatch between BeginStep and EndStep,
	// MergeNanos the EndStep seal-and-merge of the per-slot put runs, and
	// DeltaNanos the Delta-tree bulk load. Fire runs parallel under the
	// parallel strategies; the other three are the step boundary — the
	// serial fraction that Amdahl-caps every scaling direction, which is
	// why the boundary now sorts at the source, merges instead of
	// re-sorting, and shards its inserts. Recorded only under
	// Options.PhaseStats (a few clock reads per step are visible on
	// step-dominated programs); written only by the coordinator — read
	// them at quiescence like Steps/Elapsed.
	InsertNanos int64
	FireNanos   int64
	MergeNanos  int64
	DeltaNanos  int64

	// TableVersions is the per-table quiesced-change generation: the
	// counter for table T is incremented at a quiescent boundary when T's
	// Gamma contents changed since the previous quiescent boundary (any
	// step of the interval inserted a live tuple — tracked by the
	// engine's per-table step-dirty bitset, so idle tables cost nothing).
	// It is the notification source of the serve layer's query
	// subscriptions: a subscriber remembers the generation it last saw
	// and is woken when the counter passes it (Session.WaitChange).
	// Written only by the coordinator, but atomic so subscribers may read
	// it at any time. -noGamma tables have no Gamma state and stay at 0.
	TableVersions map[string]*atomic.Int64

	// IngressShards is the number of ingress ring lanes the session built
	// (0 when the run never ingested external tuples); ShardAbsorbed counts
	// the events absorbed from each lane — together they expose ingestion
	// skew, the successor of the old everything-lands-in-slot-0 hotspot.
	// Written only by the coordinator; read them at quiescence.
	IngressShards int
	ShardAbsorbed []int64

	// FireBatches counts batched dispatch calls (FireBatch chunks); with
	// TotalLive it gives the mean chunk size the executor achieved —
	// the dispatch-amortisation analogue of TotalLive/Steps, and the
	// store-auto-tuning input recorded per the §1.5 logging loop.
	FireBatches atomic.Int64
	// fireHist buckets observed FireBatch chunk sizes by power of two;
	// read it through BatchHistogram.
	fireHist [batchBuckets]atomic.Int64

	// flowMu guards Flow, the observed dataflow edges rule -> table
	// (tuples put by each rule into each table). Populated only under
	// Options.TraceDataflow; this is the log the §1.5 visualiser renders
	// as an annotated dependency graph.
	flowMu sync.Mutex
	Flow   map[[2]string]int64
}

// FlowEdges returns a copy of the observed rule->table put counts.
func (s *RunStats) FlowEdges() map[[2]string]int64 {
	s.flowMu.Lock()
	defer s.flowMu.Unlock()
	out := make(map[[2]string]int64, len(s.Flow))
	for k, v := range s.Flow {
		out[k] = v
	}
	return out
}

func (s *RunStats) addFlow(rule, table string) {
	s.flowMu.Lock()
	if s.Flow == nil {
		s.Flow = make(map[[2]string]int64)
	}
	s.Flow[[2]string{rule, table}]++
	s.flowMu.Unlock()
}

// recordFireChunk logs one batched dispatch of n tuples.
func (s *RunStats) recordFireChunk(n int) {
	s.FireBatches.Add(1)
	b := bits.Len(uint(n)) - 1
	if b >= batchBuckets {
		b = batchBuckets - 1
	}
	s.fireHist[b].Add(1)
}

// MeanFireChunk returns the mean tuples per FireBatch dispatch — how well
// the executor amortised per-tuple overhead. 0 before any dispatch.
func (s *RunStats) MeanFireChunk() float64 {
	b := s.FireBatches.Load()
	if b == 0 {
		return 0
	}
	return float64(s.TotalLive) / float64(b)
}

// BatchHistogram returns the observed FireBatch chunk sizes in power-of-two
// buckets keyed "1", "2-3", "4-7", … — the batch-size log that feeds
// store and strategy auto-tuning (and the jstar-bench JSON artifact).
// Empty buckets are omitted.
func (s *RunStats) BatchHistogram() map[string]int64 {
	out := make(map[string]int64)
	for i := 0; i < batchBuckets; i++ {
		n := s.fireHist[i].Load()
		if n == 0 {
			continue
		}
		lo := 1 << i
		hi := lo*2 - 1
		key := fmt.Sprintf("%d-%d", lo, hi)
		if lo == hi {
			key = fmt.Sprintf("%d", lo)
		} else if i == batchBuckets-1 {
			key = fmt.Sprintf("%d+", lo)
		}
		out[key] = n
	}
	return out
}

// BoundaryNanos returns the coordinator time spent inside step boundaries
// (everything but rule dispatch): BeginStep's sort+insert, the flush
// merge, and the Delta-tree load.
func (s *RunStats) BoundaryNanos() int64 {
	return s.InsertNanos + s.MergeNanos + s.DeltaNanos
}

// SerialBoundaryFraction returns the step boundary's share of the step
// loop (boundary / (boundary + fire)), 0 before any step. It is the
// Amdahl serial fraction of the execution loop: with 0.5, no strategy can
// beat 2x however many workers fire rules. The CI smoke gate watches it.
func (s *RunStats) SerialBoundaryFraction() float64 {
	b, f := s.BoundaryNanos(), s.FireNanos
	if b+f == 0 {
		return 0
	}
	return float64(b) / float64(b+f)
}

// SuggestStrategy recommends an executor strategy for re-running the same
// program, computed from the observed mean parallel batch size (live
// tuples per step — the same measurement the Auto strategy makes mid-run,
// so the two heuristics agree). This is the paper's §1.5 loop of letting
// run logs drive the parallelisation choice.
func (s *RunStats) SuggestStrategy(threads int) exec.Strategy {
	if s.Steps == 0 {
		return exec.Sequential
	}
	return exec.Choose(float64(s.TotalLive)/float64(s.Steps), threads)
}

// putSlot is one participant's put buffer. Rule firings on slot i append
// here; at the step boundary the slot is *sealed* — its buffer sorted by
// tuple.ComparePath and handed off as one pre-sorted run — and the
// coordinator k-way merges the sealed runs into the Delta tree. Executors
// seal from the workers themselves (exec.Host.SealSlot), so the sorting
// half of the old serial flush now runs in parallel; EndStep seals
// whatever the executor did not. No firing ever contends on the global
// Delta-tree structures. The mutex is uncontended in the common case (one
// goroutine per slot per step); it exists because a rule may fan its own
// body out across the pool (§5.2 "additional parallelism"), making
// several workers share the firing rule's slot.
type putSlot struct {
	mu  sync.Mutex
	buf []*tuple.Tuple
	_   [4]uint64 // keep adjacent slots off one cache line
}

// sealedRun is one slot's sorted put run awaiting the step-boundary merge.
// The slot index (into Run.slots — a (worker, shard) sub-buffer under
// affinity) rides along so the (capacity-retaining) buffer returns to its
// owner after the merge — buffers cycle fill → seal → merge → return,
// cleared of stale tuple pointers before reuse so a grown buffer never
// pins dead tuples across steps. shard is the Gamma owner shard of every
// tuple in ts (always 0 with affinity off), which is what lets endStep
// merge the runs shard-parallel with zero aliasing.
type sealedRun struct {
	slot  int
	shard int
	ts    []*tuple.Tuple
}

// prefixBuckets is the number of coarse key-prefix change buckets tracked
// per table for filtered query subscriptions — sized to one dirty-mask
// word, so accumulating a step's buckets is a single atomic Or.
const prefixBuckets = 64

// prefixGens holds one table's per-bucket quiesced-change generations.
type prefixGens [prefixBuckets]atomic.Int64

// PrefixBucket returns the change-tracking bucket of a leading key value —
// the bucket a prefix-filtered subscriber watches and an insert dirties.
func PrefixBucket(v tuple.Value) int {
	return int(v.Hash(tuple.HashSeed) % prefixBuckets)
}

// fireTask is one entry of the table-affine dispatch plan: a contiguous,
// schema-clustered chunk of the live batch wholly owned by one Gamma
// shard, plus the route the pipelined executor keys consumer claiming on.
type fireTask struct {
	lo, hi int
	route  int
}

// Run is one execution of a Program under a set of Options.
type Run struct {
	prog *Program
	opts Options

	delta    *delta.Tree
	gammaDB  *gamma.DB
	pool     PoolRef
	ownPool  *forkjoin.Pool
	executor exec.Executor
	threads  int
	// curStrategy is the strategy behind the current executor, updated by
	// switchExecutor. Auto means "still adaptive" — the re-planner's first
	// switch replaces the adaptive executor with a concrete one.
	curStrategy exec.Strategy

	slots    []putSlot
	slotCtx  []Ctx            // per-slot reusable rule contexts for fireBatch
	flushBuf []*tuple.Tuple   // coordinator-only merge scratch for endStep
	groupBuf []insGroup       // coordinator-only scratch for beginStep's groups
	runsBuf  [][]*tuple.Tuple // coordinator-only scratch for endStep's merge input

	// Table-affine execution (Options.TableAffinity). tableShards is the
	// Gamma owner-shard count — 1 with affinity off, so the (slot, shard)
	// put-buffer indexing below degenerates to the classic per-slot layout
	// and the affinity-off path stays byte-identical through one code path.
	// shardMap owns the schema → shard assignment; fireTasks/fireLive are
	// the per-step shard-routed dispatch plan built by beginStep and fired
	// through exec.AffineHost.
	tableShards int
	shardMap    *gamma.ShardMap
	fireTasks   []fireTask
	fireLive    []*tuple.Tuple // live batch backing fireTasks; valid within a step
	shardRuns   [][][]*tuple.Tuple
	shardFlush  [][]*tuple.Tuple

	// prefixTrack gates per-table key-prefix change tracking (filtered
	// query subscriptions); until the first filtered subscriber arms it,
	// the insert paths pay a single relaxed load. prefixDirty accumulates
	// each table's dirtied buckets between quiescent boundaries; foldDirty
	// drains it into prefixVerByID's per-bucket generations.
	prefixTrack   atomic.Bool
	prefixDirty   []atomic.Uint64
	prefixVerByID []prefixGens

	// sealed collects the step's sorted per-slot runs (SealSlot). The
	// mutex orders concurrent worker seals; the coordinator drains the
	// list inside endStep, after the executor has quiesced the step.
	sealMu sync.Mutex
	sealed []sealedRun
	// dupFn is the shared duplicate-accounting callback of the flush path
	// (merge dedup and Delta-tree dedup both report through it), built
	// once so the per-step flush allocates no closures.
	dupFn func(*tuple.Tuple)
	// phaseClock enables the per-phase step timing (Options.PhaseStats);
	// fireStart is the coordinator timestamp of the last BeginStep return,
	// zero outside a step; endStep turns it into RunStats.FireNanos.
	phaseClock bool
	fireStart  time.Time

	// Dense per-schema-ID tables replacing map lookups on the hot path.
	noDelta   []bool
	noGamma   []bool
	hasAction []bool
	statsByID []*TableStats
	rulesByID [][]*Rule

	// dirtyByID is the per-table step-dirty bitset: flag i is set when a
	// live tuple of schema i entered Gamma since the last quiescent
	// boundary (beginStep's insert groups; the -noDelta inline insert
	// path). foldDirty swaps the flags out at quiescence and bumps the
	// matching TableVersions generations — the Delta-side change tracking
	// behind query subscriptions. Atomic because -noDelta inserts run on
	// worker goroutines; a plain Store suffices (no read-modify-write).
	dirtyByID []atomic.Bool
	// versionByID aliases stats.TableVersions by dense schema ID.
	versionByID []*atomic.Int64

	out     outputBuffer
	stats   RunStats
	failMu  chan struct{} // buffered(1); first rule panic wins
	fail    atomic.Value  // error
	started atomic.Bool   // a run executes (or backs a Session) at most once
}

// NewRun prepares (but does not start) a run.
func (p *Program) NewRun(opts Options) (*Run, error) {
	if err := p.Validate(opts); err != nil {
		return nil, err
	}
	strategy := opts.strategy()
	r := &Run{
		prog:   p,
		opts:   opts,
		failMu: make(chan struct{}, 1),
	}
	r.out.quiet = opts.Quiet

	// Delta-tree mutation happens only at the step-boundary flush
	// (PutSorted, or PutPart over the disjoint SplitBulk partitions when
	// the flush is sharded across the pool), never from rule firings, so
	// even parallel strategies use the sequential red-black-tree backend —
	// the skip-list Delta tree and its contention (§6.5) are gone from the
	// engine hot path. Concurrent PutPart calls are safe only because
	// SplitBulk partitions never share a subtree below the pre-created
	// spine (size/dups are atomics, leaf sets lock); any new tree mutation
	// reachable from putRun must preserve that disjointness.
	r.delta = delta.NewSequential(p.po)
	// Gamma backend choice follows the effective parallelism, not just the
	// requested one: Auto on a single-scheduler machine can only ever pick
	// Sequential (its thread count is clamped to GOMAXPROCS), so it gets
	// the cheaper tree stores instead of paying the concurrent skip-list
	// tax for parallelism that cannot happen.
	if strategy == exec.Sequential ||
		(strategy == exec.Auto && runtime.GOMAXPROCS(0) == 1) {
		r.gammaDB = gamma.NewDB(gamma.NewTreeStore)
	} else {
		r.gammaDB = gamma.NewDB(gamma.NewSkipStore)
	}
	// Store selection is layered, lowest priority first: the compiler's
	// static plan hints, then programmatic GammaHint factories, then the
	// per-run Options.StorePlan (the profile-guided replay). Specs were
	// already vetted by Validate, so FactoryFor cannot fail here; a nil
	// factory is an ownership-only "@N" spec that pins the table's Gamma
	// shard without overriding its store.
	for t, spec := range p.planHints {
		if f, err := gamma.FactoryFor(spec, p.tables[t]); err == nil && f != nil {
			r.gammaDB.SetStore(t, f)
		}
	}
	for t, f := range p.hints {
		r.gammaDB.SetStore(t, f)
	}
	for t, spec := range opts.StorePlan {
		if f, err := gamma.FactoryFor(spec, p.tables[t]); err == nil && f != nil {
			r.gammaDB.SetStore(t, f)
		}
	}
	// Freeze the per-run dense store table: Table lookups during execution
	// are a bounds check and pointer compare, no lock.
	r.gammaDB.Register(p.byID)

	n := len(p.byID)
	r.noDelta = make([]bool, n)
	r.noGamma = make([]bool, n)
	r.hasAction = make([]bool, n)
	r.statsByID = make([]*TableStats, n)
	r.rulesByID = make([][]*Rule, n)
	for _, t := range opts.NoDelta {
		r.noDelta[p.tables[t].ID()] = true
	}
	for _, t := range opts.NoGamma {
		r.noGamma[p.tables[t].ID()] = true
	}
	r.dirtyByID = make([]atomic.Bool, n)
	r.versionByID = make([]*atomic.Int64, n)
	r.prefixDirty = make([]atomic.Uint64, n)
	r.prefixVerByID = make([]prefixGens, n)
	r.stats.TableVersions = make(map[string]*atomic.Int64, n)
	r.stats.Tables = make(map[string]*TableStats, n)
	r.stats.StoreKinds = make(map[string]string, n)
	r.stats.schemas = make(map[string]*tuple.Schema, n)
	r.stats.noGamma = make(map[string]bool, len(opts.NoGamma))
	for _, s := range p.byID {
		st := &TableStats{}
		r.stats.Tables[s.Name] = st
		r.statsByID[s.ID()] = st
		r.rulesByID[s.ID()] = p.trigger[s]
		if _, ok := p.actions[s]; ok {
			r.hasAction[s.ID()] = true
		}
		r.stats.StoreKinds[s.Name] = gamma.KindOf(r.gammaDB.Table(s))
		r.stats.schemas[s.Name] = s
		v := &atomic.Int64{}
		r.stats.TableVersions[s.Name] = v
		r.versionByID[s.ID()] = v
		if r.noGamma[s.ID()] {
			r.stats.noGamma[s.Name] = true
		}
	}
	r.stats.RuleNanos = make(map[string]*atomic.Int64, len(p.rules))
	for _, rule := range p.rules {
		if _, dup := r.stats.RuleNanos[rule.Name]; !dup {
			r.stats.RuleNanos[rule.Name] = &atomic.Int64{}
		}
	}

	if opts.Pool != nil {
		r.pool = opts.Pool
	} else if strategy == exec.ForkJoin || strategy == exec.Auto {
		r.ownPool = forkjoin.NewPool(opts.threads())
		r.pool = r.ownPool
	}
	r.threads = opts.threads()
	if r.pool != nil && r.pool.Size() > r.threads {
		r.threads = r.pool.Size()
	}
	if strategy == exec.Sequential {
		if opts.ReplanEvery > 0 {
			// An adaptive session may re-pick a parallel strategy mid-run,
			// so the slot/context arrays are sized for the parallel thread
			// count up front — a strategy switch must never resize live put
			// buffers.
			r.threads = opts.parallelThreads()
		} else {
			r.threads = 1
		}
	}

	var pool exec.Pool
	if r.pool != nil {
		pool = r.pool
	}
	execThreads := r.threads
	if strategy == exec.Sequential {
		execThreads = 1
	}
	ex, err := exec.New(strategy, exec.Config{Threads: execThreads, Pool: pool})
	if err != nil {
		return nil, err
	}
	r.executor = ex
	r.curStrategy = strategy
	// Table affinity shards the Gamma tables across as many owners as there
	// are workers; with one worker (or affinity off) everything collapses
	// to one shard, which IS the pre-affinity layout. The shard map merges
	// the same plan layers as the store selection above, so a "@N" suffix
	// wins wherever its spec would.
	r.tableShards = 1
	if opts.TableAffinity && r.threads > 1 {
		r.tableShards = r.threads
	}
	shardPlan := make(gamma.StorePlan, len(p.planHints)+len(opts.StorePlan))
	for t, spec := range p.planHints {
		shardPlan[t] = spec
	}
	for t, spec := range opts.StorePlan {
		shardPlan[t] = spec
	}
	r.shardMap = gamma.NewShardMap(p.byID, r.tableShards, shardPlan)
	// Put buffers are per-(worker slot, owner shard): slot s's sub-buffer
	// for shard h lives at s*tableShards+h, so a worker's puts split by
	// destination shard with no extra synchronisation and the boundary
	// flush can merge shard-parallel.
	r.slots = make([]putSlot, (r.threads+1)*r.tableShards)
	// One reusable Ctx per slot: the batched firing path re-points its
	// rule/trigger fields per group instead of allocating a Ctx per firing.
	r.slotCtx = make([]Ctx, r.threads+1)
	for i := range r.slotCtx {
		r.slotCtx[i] = Ctx{run: r, slot: i}
	}
	r.sealed = make([]sealedRun, 0, len(r.slots))
	r.phaseClock = opts.PhaseStats
	r.dupFn = func(t *tuple.Tuple) {
		r.statsByID[t.Schema().ID()].Duplicates.Add(1)
	}
	return r, nil
}

// Execute runs the program to completion (empty Delta set) and returns the
// first rule panic as an error, or a step-limit error. It is a thin
// compatibility wrapper over the Session lifecycle: start, wait for
// quiescence, close.
func (r *Run) Execute() error {
	s, err := r.startSession(context.Background())
	if err != nil {
		return err
	}
	qErr := s.Quiesce(context.Background())
	cErr := s.Close()
	if qErr != nil {
		return qErr
	}
	return cErr
}

// ExecuteEvents is the event-driven execution mode (§3): external input
// tuples arrive on events and are treated like any other tuple — they enter
// the Delta set and trigger rules. It keeps the legacy serial contract —
// the database drains to quiescence between event batches — as a wrapper
// over Session: each channel receive (plus any already-pending events) is
// one Put batch followed by a Quiesce. New code should use Program.Start
// directly; Session.Put does not wait for quiescence, so ingestion
// overlaps execution.
func (r *Run) ExecuteEvents(events <-chan *tuple.Tuple) error {
	s, err := r.startSession(context.Background())
	if err != nil {
		return err
	}
	bg := context.Background()
	// Legacy contract: the initial puts drain to full quiescence before
	// the first external event is absorbed (a Session would overlap them).
	feedErr := s.Quiesce(bg)
	if feedErr == nil {
	feed:
		for t := range events {
			if feedErr = s.Put(t); feedErr != nil {
				break
			}
			// Opportunistically absorb already-pending events so one
			// quiescence covers simultaneous inputs, as the pre-Session
			// loop did.
			for {
				select {
				case t, ok := <-events:
					if !ok {
						break feed
					}
					if feedErr = s.Put(t); feedErr != nil {
						break feed
					}
					continue
				default:
				}
				break
			}
			if feedErr = s.Quiesce(bg); feedErr != nil {
				break
			}
		}
	}
	qErr := s.Quiesce(bg)
	cErr := s.Close()
	// A Put rejection (nil tuple, undeclared table) is not a session
	// failure, so Quiesce/Close would report success; the feed error still
	// means events were dropped and must surface.
	if feedErr != nil {
		return feedErr
	}
	if qErr != nil {
		return qErr
	}
	return cErr
}

// seed performs the program's initial puts on the coordinator slot and
// flushes them into the Delta tree.
func (r *Run) seed() {
	for _, t := range r.prog.initial {
		r.put("put", nil, t, 0)
	}
	r.endStep()
}

func (r *Run) finish(start time.Time) {
	r.stats.Elapsed = time.Since(start)
	if r.executor != nil {
		r.executor.Close()
	}
	if r.ownPool != nil {
		r.ownPool.Shutdown()
	}
}

func (r *Run) loadFail() error {
	if e := r.fail.Load(); e != nil {
		return e.(error)
	}
	return nil
}

func (r *Run) setFail(err error) {
	select {
	case r.failMu <- struct{}{}:
		r.fail.Store(err)
	default: // a failure is already recorded; first one wins
	}
}

// nextBatch extracts the next minimal causal equivalence class, doing the
// step accounting and limit checks. nil with nil error means drained.
func (r *Run) nextBatch() ([]*tuple.Tuple, error) {
	for {
		if err := r.loadFail(); err != nil {
			return nil, err
		}
		if r.delta.Empty() {
			return nil, nil
		}
		if r.opts.MaxSteps > 0 && r.stats.Steps >= r.opts.MaxSteps {
			return nil, fmt.Errorf("jstar: run aborted after %d steps (MaxSteps); program may not terminate", r.stats.Steps)
		}
		batch := r.delta.TakeMinBatch()
		if len(batch) == 0 {
			continue
		}
		r.stats.Steps++
		if len(batch) > r.stats.MaxBatch {
			r.stats.MaxBatch = len(batch)
		}
		return batch, nil
	}
}

// shardInsertMin is the smallest step batch worth fanning per-schema
// insert groups across the pool; smaller batches insert serially on the
// coordinator, where one store lock episode already amortises fine.
const shardInsertMin = 256

// insGroup is one schema-homogeneous segment of a step batch during
// beginStep's Gamma insert: batch[lo:hi], with kept live tuples compacted
// to the segment's prefix after the (possibly concurrent) insert.
type insGroup struct {
	lo, hi int
	kept   int
}

// beginStep moves one causal equivalence class into Gamma — batch-wise, one
// store synchronisation episode per table run — and performs external
// actions. It returns the live (non-duplicate) tuples whose rules fire.
//
// Multi-table batches on pooled runs insert their schema groups
// concurrently: distinct tables resolve to distinct stores, so the groups
// never alias, and each group filters its duplicates in place before a
// serial compaction restores the deterministic sorted live order.
func (r *Run) beginStep(batch []*tuple.Tuple) []*tuple.Tuple {
	var start time.Time
	if r.phaseClock {
		start = time.Now()
	}
	// Tuples within one equivalence class are unordered; sorting by table
	// then fields groups each store's insert run, gives ordered backends
	// locality, and makes sequential firing order deterministic. The
	// key-prefixed SortFunc replaces the old reflection-closure sort.Slice
	// with byte-identical ordering.
	if len(batch) > 1 {
		slices.SortFunc(batch, tuple.CompareSchemaFields)
	}
	// Split into schema-homogeneous groups (capacity-retaining scratch:
	// the step loop allocates nothing per step).
	groups := r.groupBuf[:0]
	anyAction := false
	for i := 0; i < len(batch); {
		s := batch[i].Schema()
		j := i + 1
		for j < len(batch) && batch[j].Schema() == s {
			j++
		}
		if r.hasAction[s.ID()] {
			anyAction = true
		}
		groups = append(groups, insGroup{lo: i, hi: j})
		i = j
	}
	// insertGroup dedup-inserts one group into its table's store, keeping
	// the live tuples as a prefix of the group's own segment (writes never
	// outrun reads, the usual filter-in-place discipline). shard >= 0
	// routes the insert through the shard-scoped Gamma entry point, whose
	// ownership check keeps affinity routing bugs loud.
	insertGroup := func(g *insGroup, shard int) {
		group := batch[g.lo:g.hi]
		s := group[0].Schema()
		id := s.ID()
		if r.noGamma[id] {
			g.kept = len(group)
			return
		}
		// Positive queries may see tuples with timestamps <= the
		// trigger's, which includes batch-mates, so the whole batch
		// lands in Gamma before any rule fires. Duplicates were already
		// processed in an earlier step: set semantics say they are
		// discarded and their rules do not re-fire.
		var live []*tuple.Tuple
		if shard >= 0 {
			live = r.shardMap.InsertBatch(r.gammaDB, shard, group, group[:0:len(group)])
		} else {
			live = gamma.InsertBatch(r.gammaDB.Table(s), group, group[:0:len(group)])
		}
		g.kept = len(live)
		if g.kept > 0 {
			r.dirtyByID[id].Store(true)
			if r.prefixTrack.Load() && s.Arity() > 0 {
				var mask uint64
				for _, t := range live {
					mask |= 1 << PrefixBucket(t.Field(0))
				}
				r.prefixDirty[id].Or(mask)
			}
		}
		if dups := len(group) - g.kept; dups > 0 {
			r.statsByID[id].Duplicates.Add(int64(dups))
		}
	}
	switch {
	case r.tableShards > 1 && len(groups) > 1 && r.pool != nil && len(batch) >= shardInsertMin:
		// Affinity mode fans the Gamma flush out by owner shard rather than
		// per schema group: one pool task per shard, each inserting only
		// the tables its shard owns — disjoint table sets, zero aliasing.
		r.pool.For(r.tableShards, 1, func(sh int) {
			for i := range groups {
				g := &groups[i]
				if r.shardMap.OwnerID(batch[g.lo].Schema().ID()) == sh {
					insertGroup(g, sh)
				}
			}
		})
	case len(groups) > 1 && r.pool != nil && len(batch) >= shardInsertMin:
		r.pool.For(len(groups), 1, func(i int) { insertGroup(&groups[i], -1) })
	default:
		for i := range groups {
			insertGroup(&groups[i], -1)
		}
	}
	// Compact the kept prefixes into one contiguous live batch, preserving
	// the sorted order (the write cursor never passes a group's start).
	live := batch[:0]
	for _, g := range groups {
		live = append(live, batch[g.lo:g.lo+g.kept]...)
	}
	r.groupBuf = groups[:0]
	r.stats.TotalLive += int64(len(live))
	if r.tableShards > 1 {
		r.buildFirePlan(live)
	}
	// External actions (paper §3) run on the coordinator, in deterministic
	// order within the batch, before the batch's rules fire. anyAction
	// keeps action-free steps from paying the scan.
	if anyAction {
		r.runActions(live)
	}
	if r.phaseClock {
		now := time.Now()
		r.stats.InsertNanos += now.Sub(start).Nanoseconds()
		r.fireStart = now
	}
	return live
}

// buildFirePlan chops the live batch (sorted by schema, so clustered by
// owner shard into contiguous segments) into shard-homogeneous dispatch
// tasks for the affinity-aware executors. A shard segment larger than the
// step's chunk grain is split at the grain — the hot-table escape hatch: a
// step funnelled through one table degenerates to plain chunked dispatch
// (overflow chunks route round-robin past the owner) instead of
// serialising on one worker. Correctness never depends on which worker
// fires a task, because put itself keys buffers by (slot, owner shard).
func (r *Run) buildFirePlan(live []*tuple.Tuple) {
	tasks := r.fireTasks[:0]
	grain := exec.ChunkGrain(len(live), r.threads)
	for i := 0; i < len(live); {
		sh := r.shardMap.OwnerID(live[i].Schema().ID())
		j := i + 1
		for j < len(live) && r.shardMap.OwnerID(live[j].Schema().ID()) == sh {
			j++
		}
		for c, lo := 0, i; lo < j; c, lo = c+1, lo+grain {
			hi := lo + grain
			if hi > j {
				hi = j
			}
			tasks = append(tasks, fireTask{lo: lo, hi: hi, route: sh + c})
		}
		i = j
	}
	r.fireTasks = tasks
	r.fireLive = live
}

// affine, fireTaskCount, fireTask and fireTaskRoute back the sessionHost's
// exec.AffineHost implementation.
func (r *Run) affine() bool        { return r.tableShards > 1 }
func (r *Run) fireTaskCount() int  { return len(r.fireTasks) }
func (r *Run) taskRoute(i int) int { return r.fireTasks[i].route }

func (r *Run) fireTask(i, slot int) {
	t := r.fireTasks[i]
	r.fireBatch(r.fireLive[t.lo:t.hi], slot)
}

// sealSlot takes worker slot's put buffers — one per Gamma shard under
// affinity, exactly one otherwise — sorts each by tuple.ComparePath, and
// queues them as pre-sorted runs for the step's merge. Safe to call
// concurrently for distinct slots — this is how the parallel executors
// move the flush sort off the coordinator — and a no-op for empty slots,
// so sealing every slot defensively costs almost nothing.
func (r *Run) sealSlot(slot int) {
	base := slot * r.tableShards
	for sh := 0; sh < r.tableShards; sh++ {
		r.sealIndex(base+sh, sh)
	}
}

// sealIndex seals one (worker, shard) sub-buffer by raw r.slots index.
func (r *Run) sealIndex(idx, shard int) {
	sl := &r.slots[idx]
	sl.mu.Lock()
	buf := sl.buf
	if len(buf) == 0 {
		sl.mu.Unlock()
		return
	}
	sl.buf = nil
	sl.mu.Unlock()
	if len(buf) > 1 {
		slices.SortFunc(buf, tuple.ComparePath)
	}
	r.sealMu.Lock()
	r.sealed = append(r.sealed, sealedRun{slot: idx, shard: shard, ts: buf})
	r.sealMu.Unlock()
}

// endStep merges the step's sealed put runs into one sorted, deduplicated
// flush and bulk-loads it into the Delta tree. Called only by the
// executor's coordinator with all firings quiesced; it seals any slot the
// executor left unsealed (sequential runs, lone-chunk fire paths, ingress
// absorbs), so SealSlot remains an optimisation rather than an obligation.
func (r *Run) endStep() {
	var mergeStart time.Time
	if r.phaseClock {
		mergeStart = time.Now()
		if !r.fireStart.IsZero() {
			r.stats.FireNanos += mergeStart.Sub(r.fireStart).Nanoseconds()
			r.fireStart = time.Time{}
		}
	}
	for i := range r.slots {
		r.sealIndex(i, i%r.tableShards)
	}
	r.fireTasks = r.fireTasks[:0]
	r.fireLive = nil
	runs := r.sealed // workers are quiesced; drained under the lock below anyway
	var flush []*tuple.Tuple
	singleRun := len(runs) == 1
	if singleRun {
		// One run: dedup in place, feed it to the tree directly — the
		// common sequential shape pays no copy at all.
		flush = dedupSortedInPlace(runs[0].ts, r.dupFn)
	} else if len(runs) > 1 {
		total := 0
		for i := range runs {
			total += len(runs[i].ts)
		}
		if r.tableShards > 1 && r.pool != nil && total >= shardInsertMin {
			flush = r.mergeByShard(runs)
		} else {
			rs := r.runsBuf[:0]
			for i := range runs {
				rs = append(rs, runs[i].ts)
			}
			flush = mergeRuns(rs, r.flushBuf[:0], r.dupFn)
			clear(rs)
			r.runsBuf = rs[:0]
		}
	}
	var deltaStart time.Time
	if r.phaseClock {
		deltaStart = time.Now()
		r.stats.MergeNanos += deltaStart.Sub(mergeStart).Nanoseconds()
	}
	if len(flush) > 0 {
		loaded := false
		if r.pool != nil && len(flush) >= shardInsertMin {
			if parts := r.delta.SplitBulkN(flush, r.pool.Size()+1); len(parts) > 1 {
				r.pool.For(len(parts), 1, func(i int) {
					r.delta.PutPart(parts[i], r.dupFn)
				})
				loaded = true
			}
		}
		if !loaded {
			r.delta.PutSorted(flush, r.dupFn)
		}
	}
	// Recycle: hand each run's array back to its slot with stale tuple
	// pointers cleared, so buffers keep their grown capacity across steps
	// without pinning dead tuples; same for the merge scratch. Clearing
	// [:len] suffices: pointer-typed arrays are allocated zeroed and every
	// recycle re-zeroes the used prefix, so slots past len stay nil by
	// induction.
	r.sealMu.Lock()
	r.sealed = r.sealed[:0]
	r.sealMu.Unlock()
	for _, run := range runs {
		clear(run.ts)
		sl := &r.slots[run.slot]
		sl.mu.Lock()
		if sl.buf == nil {
			sl.buf = run.ts[:0]
		}
		sl.mu.Unlock()
	}
	if !singleRun && flush != nil {
		clear(flush)
		r.flushBuf = flush[:0]
	}
	// The recycle loop is serial coordinator work, so it counts toward the
	// boundary fraction the CI gate watches.
	if r.phaseClock {
		r.stats.DeltaNanos += time.Since(deltaStart).Nanoseconds()
	}
}

// mergeByShard is endStep's shard-parallel flush: sealed runs group by
// owner shard, each shard's runs merge concurrently across the pool, and
// a final cross-shard merge on the coordinator restores the global
// ComparePath order. Set-semantics duplicates always share a schema and
// therefore an owner shard, so the per-shard merges drop exactly the
// tuples the global k-way merge would — the cross-shard pass re-checks
// but can never find one, and the duplicate counters come out identical.
func (r *Run) mergeByShard(runs []sealedRun) []*tuple.Tuple {
	if r.shardRuns == nil {
		r.shardRuns = make([][][]*tuple.Tuple, r.tableShards)
		r.shardFlush = make([][]*tuple.Tuple, r.tableShards)
	}
	for i := range runs {
		sh := runs[i].shard
		r.shardRuns[sh] = append(r.shardRuns[sh], runs[i].ts)
	}
	r.pool.For(r.tableShards, 1, func(sh int) {
		switch rs := r.shardRuns[sh]; len(rs) {
		case 0:
			r.shardFlush[sh] = r.shardFlush[sh][:0]
		case 1:
			// Borrow the lone run directly; the slot buffer is recycled by
			// endStep only after the final merge has copied everything out.
			r.shardFlush[sh] = append(r.shardFlush[sh][:0], dedupSortedInPlace(rs[0], r.dupFn)...)
		default:
			r.shardFlush[sh] = mergeRuns(rs, r.shardFlush[sh][:0], r.dupFn)
		}
	})
	rs := r.runsBuf[:0]
	for sh := range r.shardFlush {
		if len(r.shardFlush[sh]) > 0 {
			rs = append(rs, r.shardFlush[sh])
		}
		clear(r.shardRuns[sh])
		r.shardRuns[sh] = r.shardRuns[sh][:0]
	}
	flush := mergeRuns(rs, r.flushBuf[:0], r.dupFn)
	clear(rs)
	r.runsBuf = rs[:0]
	for sh := range r.shardFlush {
		clear(r.shardFlush[sh])
		r.shardFlush[sh] = r.shardFlush[sh][:0]
	}
	return flush
}

// foldDirty drains the per-table step-dirty bitset accumulated since the
// previous quiescent boundary, bumping the change generation of every
// table whose Gamma contents changed, and reports whether any did. When
// prefix tracking is armed it also promotes each table's dirtied prefix
// buckets to the new generation (an interval with no bucket information —
// changes that predate arming, or that bypassed the instrumented insert
// paths — conservatively dirties every bucket, so a filtered subscriber
// can miss nothing). Called only by the session coordinator at a quiescent
// boundary (before waking Quiesce waiters, so a woken subscriber always
// observes the new generations).
func (r *Run) foldDirty() bool {
	any := false
	track := r.prefixTrack.Load()
	for i := range r.dirtyByID {
		if r.dirtyByID[i].Swap(false) {
			gen := r.versionByID[i].Add(1)
			any = true
			if track {
				mask := r.prefixDirty[i].Swap(0)
				if mask == 0 {
					mask = ^uint64(0)
				}
				for mask != 0 {
					b := bits.TrailingZeros64(mask)
					mask &= mask - 1
					r.prefixVerByID[i][b].Store(gen)
				}
			}
		}
	}
	return any
}

// runActions performs registered external actions for the batch's tuples.
// Tuples within one causal equivalence class are unordered, so actions sort
// them by field values for reproducible side-effect order.
func (r *Run) runActions(batch []*tuple.Tuple) {
	var acted []*tuple.Tuple
	for _, t := range batch {
		if r.hasAction[t.Schema().ID()] {
			acted = append(acted, t)
		}
	}
	if len(acted) == 0 {
		return
	}
	if len(acted) > 1 {
		sort.Slice(acted, func(i, j int) bool {
			if a, b := acted[i].Schema().Name, acted[j].Schema().Name; a != b {
				return a < b
			}
			return acted[i].CompareFields(acted[j]) < 0
		})
	}
	for _, t := range acted {
		r.prog.actions[t.Schema()](r, t)
	}
}

// fireBatch runs every rule triggered by each tuple of ts, buffering puts
// under slot — the batch-first dispatch path behind exec.Host.FireBatch.
// The chunk arrives sorted by schema (BeginStep's ordering), so it splits
// into schema-homogeneous runs; each run pays its rulesByID/statsByID
// lookups, Triggers/TotalFired accounting and Ctx setup once, and rules
// that provide a BatchBody receive the whole run in one invocation.
func (r *Run) fireBatch(ts []*tuple.Tuple, slot int) {
	if len(ts) == 0 {
		return
	}
	r.stats.recordFireChunk(len(ts))
	ctx := &r.slotCtx[slot]
	var fired int64
	for i := 0; i < len(ts); {
		s := ts[i].Schema()
		j := i + 1
		for j < len(ts) && ts[j].Schema() == s {
			j++
		}
		group := ts[i:j]
		i = j
		rules := r.rulesByID[s.ID()]
		if len(rules) == 0 {
			continue
		}
		n := int64(len(rules)) * int64(len(group))
		r.statsByID[s.ID()].Triggers.Add(n)
		fired += n
		for _, rule := range rules {
			r.invokeGroup(ctx, rule, group)
		}
	}
	if fired > 0 {
		atomic.AddInt64(&r.stats.TotalFired, fired)
	}
}

// invokeGroup fires one rule over a schema-homogeneous group of triggers,
// through its BatchBody when it has one, else tuple by tuple. One recover
// guards the group: a rule panic fails the run, so finishing the group's
// remaining tuples would be wasted work.
func (r *Run) invokeGroup(ctx *Ctx, rule *Rule, ts []*tuple.Tuple) {
	defer func() {
		if p := recover(); p != nil {
			r.setFail(fmt.Errorf("jstar: rule %s on %v panicked: %v", rule.Name, ctx.trigger, p))
		}
	}()
	ctx.rule = rule
	start := time.Now()
	if rule.BatchBody != nil {
		ctx.trigger = nil // batch bodies Bind their own triggers
		rule.BatchBody(ctx, ts)
	} else {
		for _, t := range ts {
			ctx.trigger = t
			rule.Body(ctx, t)
		}
	}
	if n := r.stats.RuleNanos[rule.Name]; n != nil {
		n.Add(int64(time.Since(start)))
	}
}

// fire runs every rule triggered by t, buffering puts under slot — the
// per-tuple path kept for -noDelta inline firing, where tuples fire on
// the producing task the moment they enter Gamma (§5.1) and cannot wait
// to be chunked. Accounting is still folded to one update per counter.
func (r *Run) fire(t *tuple.Tuple, slot int) {
	rules := r.rulesByID[t.Schema().ID()]
	if len(rules) == 0 {
		return
	}
	r.statsByID[t.Schema().ID()].Triggers.Add(int64(len(rules)))
	atomic.AddInt64(&r.stats.TotalFired, int64(len(rules)))
	for _, rule := range rules {
		r.invoke(rule, t, slot)
	}
}

func (r *Run) invoke(rule *Rule, t *tuple.Tuple, slot int) {
	defer func() {
		if p := recover(); p != nil {
			r.setFail(fmt.Errorf("jstar: rule %s on %v panicked: %v", rule.Name, t, p))
		}
	}()
	// A fresh Ctx, not the slot's shared one: inline -noDelta fires nest
	// inside a rule body that is still using the slot Ctx.
	ctx := &Ctx{run: r, rule: rule, trigger: t, slot: slot}
	start := time.Now()
	rule.Body(ctx, t)
	if n := r.stats.RuleNanos[rule.Name]; n != nil {
		n.Add(int64(time.Since(start)))
	}
}

func (r *Run) tableStats(s *tuple.Schema) *TableStats {
	if id := int(s.ID()); id < len(r.statsByID) && r.prog.byID[id] == s {
		return r.statsByID[id]
	}
	return nil
}

// put implements the tuple creation path shared by initial puts and rule
// puts. from is the trigger tuple of the producing rule, nil for initial
// puts; slot identifies the put buffer of the executing participant.
// Under -noDelta the tuple goes straight to Gamma and fires its rules on
// the calling task; everything else is appended to the slot buffer and
// flushed into the Delta tree at the step boundary.
func (r *Run) put(ruleName string, from *tuple.Tuple, t *tuple.Tuple, slot int) {
	s := t.Schema()
	st := r.tableStats(s)
	if st == nil {
		panic(fmt.Sprintf("jstar: put of tuple from undeclared table %s", s.Name))
	}
	st.Puts.Add(1)
	if r.opts.TraceDataflow {
		r.stats.addFlow(ruleName, s.Name)
	}
	if r.opts.CheckCausality && from != nil {
		kf := order.KeyOf(r.prog.po, from)
		kt := order.KeyOf(r.prog.po, t)
		if order.Compare(kt, kf) < 0 {
			panic(fmt.Sprintf("jstar: causality violation: rule triggered by %v (key %v) put %v (key %v) into the past",
				from, kf, t, kt))
		}
	}
	id := s.ID()
	if r.noDelta[id] {
		if !r.noGamma[id] {
			if !r.gammaDB.Insert(t) {
				st.Duplicates.Add(1)
				return
			}
			r.dirtyByID[id].Store(true)
			if r.prefixTrack.Load() && s.Arity() > 0 {
				r.prefixDirty[id].Or(1 << PrefixBucket(t.Field(0)))
			}
		}
		r.fire(t, slot)
		return
	}
	// Affinity splits each worker slot's buffer by the tuple's Gamma owner
	// shard, so the boundary flush merges and inserts shard-parallel with
	// zero aliasing; with one shard the index reduces to the plain slot.
	idx := slot
	if r.tableShards > 1 {
		idx = slot*r.tableShards + r.shardMap.OwnerID(id)
	}
	sl := &r.slots[idx]
	sl.mu.Lock()
	sl.buf = append(sl.buf, t)
	sl.mu.Unlock()
}

// Stats returns the run statistics (valid after Execute returns).
func (r *Run) Stats() *RunStats { return &r.stats }

// Program returns the program this run executes.
func (r *Run) Program() *Program { return r.prog }

// StrategyName reports the executor driving this run ("sequential",
// "forkjoin", "pipelined", or "auto:<chosen>" once Auto has decided).
func (r *Run) StrategyName() string { return r.executor.Name() }

// Output returns the Println lines produced so far. Within one parallel
// batch the order is scheduling-dependent; across batches it follows the
// causality ordering.
func (r *Run) Output() []string { return r.out.snapshot() }

// Gamma exposes the run's Gamma database for post-run inspection —
// the program's result relation contents.
func (r *Run) Gamma() *gamma.DB { return r.gammaDB }

// DeltaLen reports how many tuples are still queued (0 after Execute).
func (r *Run) DeltaLen() int { return r.delta.Len() }

// Threads reports the degree of parallelism used by the run.
func (r *Run) Threads() int {
	if r.threads < 1 {
		return 1
	}
	return r.threads
}

// workerSlots returns the number of worker put slots (the coordinator plus
// the workers) — NOT len(r.slots), which under affinity counts the
// (worker, shard) sub-buffers.
func (r *Run) workerSlots() int { return r.threads + 1 }

// TableShards reports the Gamma owner-shard count of the run (1 unless
// Options.TableAffinity sharded the tables).
func (r *Run) TableShards() int { return r.tableShards }

// Execute is the one-call convenience: build a run, execute it, return it.
func (p *Program) Execute(opts Options) (*Run, error) {
	r, err := p.NewRun(opts)
	if err != nil {
		return nil, err
	}
	if err := r.Execute(); err != nil {
		return r, err
	}
	return r, nil
}
