package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/jstar-lang/jstar/internal/delta"
	"github.com/jstar-lang/jstar/internal/forkjoin"
	"github.com/jstar-lang/jstar/internal/gamma"
	"github.com/jstar-lang/jstar/internal/order"
	"github.com/jstar-lang/jstar/internal/tuple"
)

// TableStats are per-table usage statistics recorded during a run — the
// logging system of §1.5, used as the basis for choosing parallelisation
// strategies.
type TableStats struct {
	Puts       atomic.Int64 // tuples put (before dedup)
	Duplicates atomic.Int64 // puts discarded as duplicates
	Triggers   atomic.Int64 // rule firings triggered by this table
	Queries    atomic.Int64 // Gamma queries against this table
}

// RunStats aggregates statistics across a run.
type RunStats struct {
	Steps      int64 // execution steps (minimum-batch extractions)
	MaxBatch   int   // largest parallel batch
	TotalFired int64 // total rule firings
	Elapsed    time.Duration
	Tables     map[string]*TableStats
	RuleNanos  map[string]*atomic.Int64 // cumulative body time per rule

	// flowMu guards Flow, the observed dataflow edges rule -> table
	// (tuples put by each rule into each table). Populated only under
	// Options.TraceDataflow; this is the log the §1.5 visualiser renders
	// as an annotated dependency graph.
	flowMu sync.Mutex
	Flow   map[[2]string]int64
}

// FlowEdges returns a copy of the observed rule->table put counts.
func (s *RunStats) FlowEdges() map[[2]string]int64 {
	s.flowMu.Lock()
	defer s.flowMu.Unlock()
	out := make(map[[2]string]int64, len(s.Flow))
	for k, v := range s.Flow {
		out[k] = v
	}
	return out
}

func (s *RunStats) addFlow(rule, table string) {
	s.flowMu.Lock()
	if s.Flow == nil {
		s.Flow = make(map[[2]string]int64)
	}
	s.Flow[[2]string{rule, table}]++
	s.flowMu.Unlock()
}

// Run is one execution of a Program under a set of Options.
type Run struct {
	prog *Program
	opts Options

	delta   *delta.Tree
	gammaDB *gamma.DB
	pool    PoolRef
	ownPool *forkjoin.Pool

	noDelta map[*tuple.Schema]bool
	noGamma map[*tuple.Schema]bool

	out    outputBuffer
	stats  RunStats
	failMu chan struct{} // buffered(1); first rule panic wins
	fail   atomic.Value  // error
}

// NewRun prepares (but does not start) a run.
func (p *Program) NewRun(opts Options) (*Run, error) {
	if err := p.Validate(opts); err != nil {
		return nil, err
	}
	r := &Run{
		prog:    p,
		opts:    opts,
		noDelta: make(map[*tuple.Schema]bool),
		noGamma: make(map[*tuple.Schema]bool),
		failMu:  make(chan struct{}, 1),
	}
	r.out.quiet = opts.Quiet
	if opts.Sequential {
		r.delta = delta.NewSequential(p.po)
		r.gammaDB = gamma.NewDB(gamma.NewTreeStore)
	} else {
		r.delta = delta.NewConcurrent(p.po)
		r.gammaDB = gamma.NewDB(gamma.NewSkipStore)
	}
	for t, f := range p.hints {
		r.gammaDB.SetStore(t, f)
	}
	for _, t := range opts.NoDelta {
		r.noDelta[p.tables[t]] = true
	}
	for _, t := range opts.NoGamma {
		r.noGamma[p.tables[t]] = true
	}
	r.stats.Tables = make(map[string]*TableStats, len(p.tables))
	r.stats.RuleNanos = make(map[string]*atomic.Int64, len(p.rules))
	for name := range p.tables {
		r.stats.Tables[name] = &TableStats{}
	}
	for _, rule := range p.rules {
		if _, dup := r.stats.RuleNanos[rule.Name]; !dup {
			r.stats.RuleNanos[rule.Name] = &atomic.Int64{}
		}
	}
	if opts.Pool != nil {
		r.pool = opts.Pool
	} else if !opts.Sequential {
		r.ownPool = forkjoin.NewPool(opts.threads())
		r.pool = r.ownPool
	}
	return r, nil
}

// Execute runs the program to completion (empty Delta set) and returns the
// first rule panic as an error, or a step-limit error.
func (r *Run) Execute() error {
	start := time.Now()
	defer func() {
		r.stats.Elapsed = time.Since(start)
		if r.ownPool != nil {
			r.ownPool.Shutdown()
		}
	}()
	for _, t := range r.prog.initial {
		r.put("put", nil, t)
	}
	return r.drain()
}

// ExecuteEvents is the event-driven execution mode (§3): external input
// tuples arrive on events and are treated like any other tuple — they enter
// the Delta set and trigger rules. Whenever the database quiesces, the run
// blocks for the next event; it completes when the channel is closed and
// the final quiescence is reached. Initial puts still run first.
func (r *Run) ExecuteEvents(events <-chan *tuple.Tuple) error {
	start := time.Now()
	defer func() {
		r.stats.Elapsed = time.Since(start)
		if r.ownPool != nil {
			r.ownPool.Shutdown()
		}
	}()
	for _, t := range r.prog.initial {
		r.put("put", nil, t)
	}
	for {
		if err := r.drain(); err != nil {
			return err
		}
		t, ok := <-events
		if !ok {
			return r.loadFail()
		}
		r.put("event", nil, t)
		// Opportunistically absorb already-pending events so one step can
		// batch simultaneous inputs.
		for {
			select {
			case t, ok := <-events:
				if !ok {
					return r.drain()
				}
				r.put("event", nil, t)
				continue
			default:
			}
			break
		}
	}
}

// drain runs execution steps until the Delta set is empty.
func (r *Run) drain() error {
	for !r.delta.Empty() {
		if err := r.loadFail(); err != nil {
			return err
		}
		if r.opts.MaxSteps > 0 && r.stats.Steps >= r.opts.MaxSteps {
			return fmt.Errorf("jstar: run aborted after %d steps (MaxSteps); program may not terminate", r.stats.Steps)
		}
		batch := r.delta.TakeMinBatch()
		if len(batch) == 0 {
			continue
		}
		r.stats.Steps++
		if len(batch) > r.stats.MaxBatch {
			r.stats.MaxBatch = len(batch)
		}
		r.step(batch)
	}
	return r.loadFail()
}

func (r *Run) loadFail() error {
	if e := r.fail.Load(); e != nil {
		return e.(error)
	}
	return nil
}

func (r *Run) setFail(err error) {
	select {
	case r.failMu <- struct{}{}:
		r.fail.Store(err)
	default: // a failure is already recorded; first one wins
	}
}

// step moves one causal equivalence class from Delta into Gamma and fires
// the triggered rules — in parallel when the batch has more than one tuple
// (the all-minimums strategy, §5).
func (r *Run) step(batch []*tuple.Tuple) {
	// Insert the whole batch into Gamma first: positive queries may see
	// tuples with timestamps <= the trigger's, which includes batch-mates.
	live := batch[:0]
	for _, t := range batch {
		s := t.Schema()
		if r.noGamma[s] {
			live = append(live, t)
			continue
		}
		if r.gammaDB.Insert(t) {
			live = append(live, t)
		} else {
			// Already processed in an earlier step: set semantics say the
			// duplicate is discarded, so its rules do not re-fire.
			r.tableStats(s).Duplicates.Add(1)
		}
	}
	if len(live) == 0 {
		return
	}
	// External actions (paper §3) run on the coordinator, in deterministic
	// order within the batch, before the batch's rules fire.
	if len(r.prog.actions) > 0 {
		r.runActions(live)
	}
	if r.pool == nil || len(live) == 1 {
		for _, t := range live {
			r.fire(t)
		}
		return
	}
	r.pool.For(len(live), 1, func(i int) { r.fire(live[i]) })
}

// runActions performs registered external actions for the batch's tuples.
// Tuples within one causal equivalence class are unordered, so actions sort
// them by field values for reproducible side-effect order.
func (r *Run) runActions(batch []*tuple.Tuple) {
	var acted []*tuple.Tuple
	for _, t := range batch {
		if _, ok := r.prog.actions[t.Schema()]; ok {
			acted = append(acted, t)
		}
	}
	if len(acted) == 0 {
		return
	}
	sort.Slice(acted, func(i, j int) bool {
		if a, b := acted[i].Schema().Name, acted[j].Schema().Name; a != b {
			return a < b
		}
		return acted[i].CompareFields(acted[j]) < 0
	})
	for _, t := range acted {
		r.prog.actions[t.Schema()](r, t)
	}
}

// fire runs every rule triggered by t.
func (r *Run) fire(t *tuple.Tuple) {
	rules := r.prog.trigger[t.Schema()]
	if len(rules) == 0 {
		return
	}
	st := r.tableStats(t.Schema())
	for _, rule := range rules {
		st.Triggers.Add(1)
		atomic.AddInt64(&r.stats.TotalFired, 1)
		r.invoke(rule, t)
	}
}

func (r *Run) invoke(rule *Rule, t *tuple.Tuple) {
	defer func() {
		if p := recover(); p != nil {
			r.setFail(fmt.Errorf("jstar: rule %s on %v panicked: %v", rule.Name, t, p))
		}
	}()
	ctx := &Ctx{run: r, rule: rule, trigger: t}
	start := time.Now()
	rule.Body(ctx, t)
	if n := r.stats.RuleNanos[rule.Name]; n != nil {
		n.Add(int64(time.Since(start)))
	}
}

func (r *Run) tableStats(s *tuple.Schema) *TableStats {
	return r.stats.Tables[s.Name]
}

// put implements the tuple creation path shared by initial puts and rule
// puts. from is the trigger tuple of the producing rule, nil for initial
// puts. Under -noDelta the tuple goes straight to Gamma and fires its rules
// on the calling task.
func (r *Run) put(ruleName string, from *tuple.Tuple, t *tuple.Tuple) {
	s := t.Schema()
	st := r.tableStats(s)
	if st == nil {
		panic(fmt.Sprintf("jstar: put of tuple from undeclared table %s", s.Name))
	}
	st.Puts.Add(1)
	if r.opts.TraceDataflow {
		r.stats.addFlow(ruleName, s.Name)
	}
	if r.opts.CheckCausality && from != nil {
		kf := order.KeyOf(r.prog.po, from)
		kt := order.KeyOf(r.prog.po, t)
		if order.Compare(kt, kf) < 0 {
			panic(fmt.Sprintf("jstar: causality violation: rule triggered by %v (key %v) put %v (key %v) into the past",
				from, kf, t, kt))
		}
	}
	if r.noDelta[s] {
		if !r.noGamma[s] {
			if !r.gammaDB.Insert(t) {
				st.Duplicates.Add(1)
				return
			}
		}
		r.fire(t)
		return
	}
	if !r.delta.Put(t) {
		st.Duplicates.Add(1)
	}
}

// Stats returns the run statistics (valid after Execute returns).
func (r *Run) Stats() *RunStats { return &r.stats }

// Program returns the program this run executes.
func (r *Run) Program() *Program { return r.prog }

// Output returns the Println lines produced so far. Within one parallel
// batch the order is scheduling-dependent; across batches it follows the
// causality ordering.
func (r *Run) Output() []string { return r.out.snapshot() }

// Gamma exposes the run's Gamma database for post-run inspection —
// the program's result relation contents.
func (r *Run) Gamma() *gamma.DB { return r.gammaDB }

// DeltaLen reports how many tuples are still queued (0 after Execute).
func (r *Run) DeltaLen() int { return r.delta.Len() }

// Threads reports the degree of parallelism used by the run.
func (r *Run) Threads() int {
	if r.pool == nil {
		return 1
	}
	return r.pool.Size()
}

// Execute is the one-call convenience: build a run, execute it, return it.
func (p *Program) Execute(opts Options) (*Run, error) {
	r, err := p.NewRun(opts)
	if err != nil {
		return nil, err
	}
	if err := r.Execute(); err != nil {
		return r, err
	}
	return r, nil
}
