package core

import (
	"context"
	"fmt"
	"math/bits"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/jstar-lang/jstar/internal/delta"
	"github.com/jstar-lang/jstar/internal/exec"
	"github.com/jstar-lang/jstar/internal/forkjoin"
	"github.com/jstar-lang/jstar/internal/gamma"
	"github.com/jstar-lang/jstar/internal/order"
	"github.com/jstar-lang/jstar/internal/tuple"
)

// TableStats are per-table usage statistics recorded during a run — the
// logging system of §1.5, used as the basis for choosing parallelisation
// strategies.
type TableStats struct {
	Puts       atomic.Int64 // tuples put (before dedup)
	Duplicates atomic.Int64 // puts discarded as duplicates
	Triggers   atomic.Int64 // rule firings triggered by this table
	Queries    atomic.Int64 // Gamma queries against this table
	// IndexedQueries counts the queries with a non-empty equality prefix,
	// PrefixLenSum totals those prefixes' lengths, and MinPrefixLen holds
	// the shortest one observed (0 before any). Together with Queries they
	// tell the store planner whether a table is point-probed (and at what
	// prefix depth) or only scanned — the query-shape half of the §1.5
	// statistics that PlanFromStats turns into a StorePlan. The planner
	// keys hash backends at MinPrefixLen, never deeper: a key depth any
	// observed query under-specifies would degrade that query to a scan.
	IndexedQueries atomic.Int64
	PrefixLenSum   atomic.Int64
	MinPrefixLen   atomic.Int64
}

// noteIndexed folds a batch of indexed-query observations (count, total
// prefix length, smallest prefix length) into the counters with one update
// each plus a CAS-min.
func (t *TableStats) noteIndexed(indexed, plen, min int64) {
	t.IndexedQueries.Add(indexed)
	t.PrefixLenSum.Add(plen)
	for {
		cur := t.MinPrefixLen.Load()
		if cur != 0 && cur <= min {
			return
		}
		if t.MinPrefixLen.CompareAndSwap(cur, min) {
			return
		}
	}
}

// batchBuckets is the number of power-of-two buckets in the fire-chunk
// histogram: bucket i counts chunks of size [2^i, 2^(i+1)), with the last
// bucket open-ended.
const batchBuckets = 16

// RunStats aggregates statistics across a run.
type RunStats struct {
	Steps      int64 // execution steps (minimum-batch extractions)
	MaxBatch   int   // largest parallel batch
	TotalLive  int64 // live (non-duplicate) tuples entering step batches
	TotalFired int64 // total rule firings
	Elapsed    time.Duration
	Tables     map[string]*TableStats
	RuleNanos  map[string]*atomic.Int64 // cumulative body time per rule

	// StoreKinds records the store backend chosen for each table when the
	// run was built — a replayable gamma kind spec ("skip", "hash:2",
	// "dense3d:3,96,96", "custom" for opaque factories). It is the "kind
	// chosen" column of the BENCH artifact's per-table rows and the
	// planner's view of which choices it may override.
	StoreKinds map[string]string
	// schemas and noGamma carry the planner's non-counter inputs (column
	// kinds for backend suitability; tables whose stores are never used).
	schemas map[string]*tuple.Schema
	noGamma map[string]bool

	// FireBatches counts batched dispatch calls (FireBatch chunks); with
	// TotalLive it gives the mean chunk size the executor achieved —
	// the dispatch-amortisation analogue of TotalLive/Steps, and the
	// store-auto-tuning input recorded per the §1.5 logging loop.
	FireBatches atomic.Int64
	// fireHist buckets observed FireBatch chunk sizes by power of two;
	// read it through BatchHistogram.
	fireHist [batchBuckets]atomic.Int64

	// flowMu guards Flow, the observed dataflow edges rule -> table
	// (tuples put by each rule into each table). Populated only under
	// Options.TraceDataflow; this is the log the §1.5 visualiser renders
	// as an annotated dependency graph.
	flowMu sync.Mutex
	Flow   map[[2]string]int64
}

// FlowEdges returns a copy of the observed rule->table put counts.
func (s *RunStats) FlowEdges() map[[2]string]int64 {
	s.flowMu.Lock()
	defer s.flowMu.Unlock()
	out := make(map[[2]string]int64, len(s.Flow))
	for k, v := range s.Flow {
		out[k] = v
	}
	return out
}

func (s *RunStats) addFlow(rule, table string) {
	s.flowMu.Lock()
	if s.Flow == nil {
		s.Flow = make(map[[2]string]int64)
	}
	s.Flow[[2]string{rule, table}]++
	s.flowMu.Unlock()
}

// recordFireChunk logs one batched dispatch of n tuples.
func (s *RunStats) recordFireChunk(n int) {
	s.FireBatches.Add(1)
	b := bits.Len(uint(n)) - 1
	if b >= batchBuckets {
		b = batchBuckets - 1
	}
	s.fireHist[b].Add(1)
}

// MeanFireChunk returns the mean tuples per FireBatch dispatch — how well
// the executor amortised per-tuple overhead. 0 before any dispatch.
func (s *RunStats) MeanFireChunk() float64 {
	b := s.FireBatches.Load()
	if b == 0 {
		return 0
	}
	return float64(s.TotalLive) / float64(b)
}

// BatchHistogram returns the observed FireBatch chunk sizes in power-of-two
// buckets keyed "1", "2-3", "4-7", … — the batch-size log that feeds
// store and strategy auto-tuning (and the jstar-bench JSON artifact).
// Empty buckets are omitted.
func (s *RunStats) BatchHistogram() map[string]int64 {
	out := make(map[string]int64)
	for i := 0; i < batchBuckets; i++ {
		n := s.fireHist[i].Load()
		if n == 0 {
			continue
		}
		lo := 1 << i
		hi := lo*2 - 1
		key := fmt.Sprintf("%d-%d", lo, hi)
		if lo == hi {
			key = fmt.Sprintf("%d", lo)
		} else if i == batchBuckets-1 {
			key = fmt.Sprintf("%d+", lo)
		}
		out[key] = n
	}
	return out
}

// SuggestStrategy recommends an executor strategy for re-running the same
// program, computed from the observed mean parallel batch size (live
// tuples per step — the same measurement the Auto strategy makes mid-run,
// so the two heuristics agree). This is the paper's §1.5 loop of letting
// run logs drive the parallelisation choice.
func (s *RunStats) SuggestStrategy(threads int) exec.Strategy {
	if s.Steps == 0 {
		return exec.Sequential
	}
	return exec.Choose(float64(s.TotalLive)/float64(s.Steps), threads)
}

// putSlot is one participant's put buffer. Rule firings on slot i append
// here and the coordinator flushes all slots into the Delta tree as one
// sorted batch at the step boundary — so no firing ever contends on the
// global Delta-tree structures. The mutex is uncontended in the common
// case (one goroutine per slot per step); it exists because a rule may
// fan its own body out across the pool (§5.2 "additional parallelism"),
// making several workers share the firing rule's slot.
type putSlot struct {
	mu  sync.Mutex
	buf []*tuple.Tuple
	_   [4]uint64 // keep adjacent slots off one cache line
}

// Run is one execution of a Program under a set of Options.
type Run struct {
	prog *Program
	opts Options

	delta    *delta.Tree
	gammaDB  *gamma.DB
	pool     PoolRef
	ownPool  *forkjoin.Pool
	executor exec.Executor
	threads  int

	slots    []putSlot
	slotCtx  []Ctx          // per-slot reusable rule contexts for fireBatch
	flushBuf []*tuple.Tuple // coordinator-only scratch for endStep

	// Dense per-schema-ID tables replacing map lookups on the hot path.
	noDelta   []bool
	noGamma   []bool
	hasAction []bool
	statsByID []*TableStats
	rulesByID [][]*Rule

	out     outputBuffer
	stats   RunStats
	failMu  chan struct{} // buffered(1); first rule panic wins
	fail    atomic.Value  // error
	started atomic.Bool   // a run executes (or backs a Session) at most once
}

// NewRun prepares (but does not start) a run.
func (p *Program) NewRun(opts Options) (*Run, error) {
	if err := p.Validate(opts); err != nil {
		return nil, err
	}
	strategy := opts.strategy()
	r := &Run{
		prog:   p,
		opts:   opts,
		failMu: make(chan struct{}, 1),
	}
	r.out.quiet = opts.Quiet

	// All Delta-tree mutation is funnelled through the coordinator's
	// step-boundary flush (PutBatch), so even parallel strategies use the
	// sequential red-black-tree backend — the skip-list Delta tree and its
	// contention (§6.5) are gone from the engine hot path.
	r.delta = delta.NewSequential(p.po)
	// Gamma backend choice follows the effective parallelism, not just the
	// requested one: Auto on a single-scheduler machine can only ever pick
	// Sequential (its thread count is clamped to GOMAXPROCS), so it gets
	// the cheaper tree stores instead of paying the concurrent skip-list
	// tax for parallelism that cannot happen.
	if strategy == exec.Sequential ||
		(strategy == exec.Auto && runtime.GOMAXPROCS(0) == 1) {
		r.gammaDB = gamma.NewDB(gamma.NewTreeStore)
	} else {
		r.gammaDB = gamma.NewDB(gamma.NewSkipStore)
	}
	// Store selection is layered, lowest priority first: the compiler's
	// static plan hints, then programmatic GammaHint factories, then the
	// per-run Options.StorePlan (the profile-guided replay). Specs were
	// already vetted by Validate, so FactoryFor cannot fail here.
	for t, spec := range p.planHints {
		if f, err := gamma.FactoryFor(spec, p.tables[t]); err == nil {
			r.gammaDB.SetStore(t, f)
		}
	}
	for t, f := range p.hints {
		r.gammaDB.SetStore(t, f)
	}
	for t, spec := range opts.StorePlan {
		if f, err := gamma.FactoryFor(spec, p.tables[t]); err == nil {
			r.gammaDB.SetStore(t, f)
		}
	}
	// Freeze the per-run dense store table: Table lookups during execution
	// are a bounds check and pointer compare, no lock.
	r.gammaDB.Register(p.byID)

	n := len(p.byID)
	r.noDelta = make([]bool, n)
	r.noGamma = make([]bool, n)
	r.hasAction = make([]bool, n)
	r.statsByID = make([]*TableStats, n)
	r.rulesByID = make([][]*Rule, n)
	for _, t := range opts.NoDelta {
		r.noDelta[p.tables[t].ID()] = true
	}
	for _, t := range opts.NoGamma {
		r.noGamma[p.tables[t].ID()] = true
	}
	r.stats.Tables = make(map[string]*TableStats, n)
	r.stats.StoreKinds = make(map[string]string, n)
	r.stats.schemas = make(map[string]*tuple.Schema, n)
	r.stats.noGamma = make(map[string]bool, len(opts.NoGamma))
	for _, s := range p.byID {
		st := &TableStats{}
		r.stats.Tables[s.Name] = st
		r.statsByID[s.ID()] = st
		r.rulesByID[s.ID()] = p.trigger[s]
		if _, ok := p.actions[s]; ok {
			r.hasAction[s.ID()] = true
		}
		r.stats.StoreKinds[s.Name] = gamma.KindOf(r.gammaDB.Table(s))
		r.stats.schemas[s.Name] = s
		if r.noGamma[s.ID()] {
			r.stats.noGamma[s.Name] = true
		}
	}
	r.stats.RuleNanos = make(map[string]*atomic.Int64, len(p.rules))
	for _, rule := range p.rules {
		if _, dup := r.stats.RuleNanos[rule.Name]; !dup {
			r.stats.RuleNanos[rule.Name] = &atomic.Int64{}
		}
	}

	if opts.Pool != nil {
		r.pool = opts.Pool
	} else if strategy == exec.ForkJoin || strategy == exec.Auto {
		r.ownPool = forkjoin.NewPool(opts.threads())
		r.pool = r.ownPool
	}
	r.threads = opts.threads()
	if r.pool != nil && r.pool.Size() > r.threads {
		r.threads = r.pool.Size()
	}
	if strategy == exec.Sequential {
		r.threads = 1
	}

	var pool exec.Pool
	if r.pool != nil {
		pool = r.pool
	}
	ex, err := exec.New(strategy, exec.Config{Threads: r.threads, Pool: pool})
	if err != nil {
		return nil, err
	}
	r.executor = ex
	r.slots = make([]putSlot, r.threads+1)
	// One reusable Ctx per slot: the batched firing path re-points its
	// rule/trigger fields per group instead of allocating a Ctx per firing.
	r.slotCtx = make([]Ctx, r.threads+1)
	for i := range r.slotCtx {
		r.slotCtx[i] = Ctx{run: r, slot: i}
	}
	return r, nil
}

// Execute runs the program to completion (empty Delta set) and returns the
// first rule panic as an error, or a step-limit error. It is a thin
// compatibility wrapper over the Session lifecycle: start, wait for
// quiescence, close.
func (r *Run) Execute() error {
	s, err := r.startSession(context.Background())
	if err != nil {
		return err
	}
	qErr := s.Quiesce(context.Background())
	cErr := s.Close()
	if qErr != nil {
		return qErr
	}
	return cErr
}

// ExecuteEvents is the event-driven execution mode (§3): external input
// tuples arrive on events and are treated like any other tuple — they enter
// the Delta set and trigger rules. It keeps the legacy serial contract —
// the database drains to quiescence between event batches — as a wrapper
// over Session: each channel receive (plus any already-pending events) is
// one Put batch followed by a Quiesce. New code should use Program.Start
// directly; Session.Put does not wait for quiescence, so ingestion
// overlaps execution.
func (r *Run) ExecuteEvents(events <-chan *tuple.Tuple) error {
	s, err := r.startSession(context.Background())
	if err != nil {
		return err
	}
	bg := context.Background()
	// Legacy contract: the initial puts drain to full quiescence before
	// the first external event is absorbed (a Session would overlap them).
	feedErr := s.Quiesce(bg)
	if feedErr == nil {
	feed:
		for t := range events {
			if feedErr = s.Put(t); feedErr != nil {
				break
			}
			// Opportunistically absorb already-pending events so one
			// quiescence covers simultaneous inputs, as the pre-Session
			// loop did.
			for {
				select {
				case t, ok := <-events:
					if !ok {
						break feed
					}
					if feedErr = s.Put(t); feedErr != nil {
						break feed
					}
					continue
				default:
				}
				break
			}
			if feedErr = s.Quiesce(bg); feedErr != nil {
				break
			}
		}
	}
	qErr := s.Quiesce(bg)
	cErr := s.Close()
	// A Put rejection (nil tuple, undeclared table) is not a session
	// failure, so Quiesce/Close would report success; the feed error still
	// means events were dropped and must surface.
	if feedErr != nil {
		return feedErr
	}
	if qErr != nil {
		return qErr
	}
	return cErr
}

// seed performs the program's initial puts on the coordinator slot and
// flushes them into the Delta tree.
func (r *Run) seed() {
	for _, t := range r.prog.initial {
		r.put("put", nil, t, 0)
	}
	r.endStep()
}

func (r *Run) finish(start time.Time) {
	r.stats.Elapsed = time.Since(start)
	if r.executor != nil {
		r.executor.Close()
	}
	if r.ownPool != nil {
		r.ownPool.Shutdown()
	}
}

func (r *Run) loadFail() error {
	if e := r.fail.Load(); e != nil {
		return e.(error)
	}
	return nil
}

func (r *Run) setFail(err error) {
	select {
	case r.failMu <- struct{}{}:
		r.fail.Store(err)
	default: // a failure is already recorded; first one wins
	}
}

// nextBatch extracts the next minimal causal equivalence class, doing the
// step accounting and limit checks. nil with nil error means drained.
func (r *Run) nextBatch() ([]*tuple.Tuple, error) {
	for {
		if err := r.loadFail(); err != nil {
			return nil, err
		}
		if r.delta.Empty() {
			return nil, nil
		}
		if r.opts.MaxSteps > 0 && r.stats.Steps >= r.opts.MaxSteps {
			return nil, fmt.Errorf("jstar: run aborted after %d steps (MaxSteps); program may not terminate", r.stats.Steps)
		}
		batch := r.delta.TakeMinBatch()
		if len(batch) == 0 {
			continue
		}
		r.stats.Steps++
		if len(batch) > r.stats.MaxBatch {
			r.stats.MaxBatch = len(batch)
		}
		return batch, nil
	}
}

// beginStep moves one causal equivalence class into Gamma — batch-wise, one
// store synchronisation episode per table run — and performs external
// actions. It returns the live (non-duplicate) tuples whose rules fire.
func (r *Run) beginStep(batch []*tuple.Tuple) []*tuple.Tuple {
	// Tuples within one equivalence class are unordered; sorting by table
	// then fields groups each store's insert run, gives ordered backends
	// locality, and makes sequential firing order deterministic.
	if len(batch) > 1 {
		sort.Slice(batch, func(i, j int) bool {
			a, b := batch[i], batch[j]
			if a.Schema() != b.Schema() {
				return a.Schema().ID() < b.Schema().ID()
			}
			return a.CompareFields(b) < 0
		})
	}
	live := batch[:0]
	anyAction := false
	for i := 0; i < len(batch); {
		s := batch[i].Schema()
		j := i + 1
		for j < len(batch) && batch[j].Schema() == s {
			j++
		}
		group := batch[i:j]
		id := s.ID()
		if r.hasAction[id] {
			anyAction = true
		}
		if r.noGamma[id] {
			live = append(live, group...)
		} else {
			// Positive queries may see tuples with timestamps <= the
			// trigger's, which includes batch-mates, so the whole batch
			// lands in Gamma before any rule fires. Duplicates were already
			// processed in an earlier step: set semantics say they are
			// discarded and their rules do not re-fire.
			n := len(live)
			live = gamma.InsertBatch(r.gammaDB.Table(s), group, live)
			if dups := len(group) - (len(live) - n); dups > 0 {
				r.statsByID[id].Duplicates.Add(int64(dups))
			}
		}
		i = j
	}
	r.stats.TotalLive += int64(len(live))
	// External actions (paper §3) run on the coordinator, in deterministic
	// order within the batch, before the batch's rules fire. anyAction
	// keeps action-free steps from paying the scan.
	if anyAction {
		r.runActions(live)
	}
	return live
}

// endStep flushes every put buffer into the Delta tree as one sorted batch.
// Called only by the executor's coordinator with all firings quiesced.
func (r *Run) endStep() {
	flush := r.flushBuf[:0]
	for i := range r.slots {
		if sl := &r.slots[i]; len(sl.buf) > 0 {
			flush = append(flush, sl.buf...)
			sl.buf = sl.buf[:0]
		}
	}
	if len(flush) > 0 {
		r.delta.PutBatch(flush, func(t *tuple.Tuple) {
			r.statsByID[t.Schema().ID()].Duplicates.Add(1)
		})
	}
	r.flushBuf = flush[:0]
}

// runActions performs registered external actions for the batch's tuples.
// Tuples within one causal equivalence class are unordered, so actions sort
// them by field values for reproducible side-effect order.
func (r *Run) runActions(batch []*tuple.Tuple) {
	var acted []*tuple.Tuple
	for _, t := range batch {
		if r.hasAction[t.Schema().ID()] {
			acted = append(acted, t)
		}
	}
	if len(acted) == 0 {
		return
	}
	if len(acted) > 1 {
		sort.Slice(acted, func(i, j int) bool {
			if a, b := acted[i].Schema().Name, acted[j].Schema().Name; a != b {
				return a < b
			}
			return acted[i].CompareFields(acted[j]) < 0
		})
	}
	for _, t := range acted {
		r.prog.actions[t.Schema()](r, t)
	}
}

// fireBatch runs every rule triggered by each tuple of ts, buffering puts
// under slot — the batch-first dispatch path behind exec.Host.FireBatch.
// The chunk arrives sorted by schema (BeginStep's ordering), so it splits
// into schema-homogeneous runs; each run pays its rulesByID/statsByID
// lookups, Triggers/TotalFired accounting and Ctx setup once, and rules
// that provide a BatchBody receive the whole run in one invocation.
func (r *Run) fireBatch(ts []*tuple.Tuple, slot int) {
	if len(ts) == 0 {
		return
	}
	r.stats.recordFireChunk(len(ts))
	ctx := &r.slotCtx[slot]
	var fired int64
	for i := 0; i < len(ts); {
		s := ts[i].Schema()
		j := i + 1
		for j < len(ts) && ts[j].Schema() == s {
			j++
		}
		group := ts[i:j]
		i = j
		rules := r.rulesByID[s.ID()]
		if len(rules) == 0 {
			continue
		}
		n := int64(len(rules)) * int64(len(group))
		r.statsByID[s.ID()].Triggers.Add(n)
		fired += n
		for _, rule := range rules {
			r.invokeGroup(ctx, rule, group)
		}
	}
	if fired > 0 {
		atomic.AddInt64(&r.stats.TotalFired, fired)
	}
}

// invokeGroup fires one rule over a schema-homogeneous group of triggers,
// through its BatchBody when it has one, else tuple by tuple. One recover
// guards the group: a rule panic fails the run, so finishing the group's
// remaining tuples would be wasted work.
func (r *Run) invokeGroup(ctx *Ctx, rule *Rule, ts []*tuple.Tuple) {
	defer func() {
		if p := recover(); p != nil {
			r.setFail(fmt.Errorf("jstar: rule %s on %v panicked: %v", rule.Name, ctx.trigger, p))
		}
	}()
	ctx.rule = rule
	start := time.Now()
	if rule.BatchBody != nil {
		ctx.trigger = nil // batch bodies Bind their own triggers
		rule.BatchBody(ctx, ts)
	} else {
		for _, t := range ts {
			ctx.trigger = t
			rule.Body(ctx, t)
		}
	}
	if n := r.stats.RuleNanos[rule.Name]; n != nil {
		n.Add(int64(time.Since(start)))
	}
}

// fire runs every rule triggered by t, buffering puts under slot — the
// per-tuple path kept for -noDelta inline firing, where tuples fire on
// the producing task the moment they enter Gamma (§5.1) and cannot wait
// to be chunked. Accounting is still folded to one update per counter.
func (r *Run) fire(t *tuple.Tuple, slot int) {
	rules := r.rulesByID[t.Schema().ID()]
	if len(rules) == 0 {
		return
	}
	r.statsByID[t.Schema().ID()].Triggers.Add(int64(len(rules)))
	atomic.AddInt64(&r.stats.TotalFired, int64(len(rules)))
	for _, rule := range rules {
		r.invoke(rule, t, slot)
	}
}

func (r *Run) invoke(rule *Rule, t *tuple.Tuple, slot int) {
	defer func() {
		if p := recover(); p != nil {
			r.setFail(fmt.Errorf("jstar: rule %s on %v panicked: %v", rule.Name, t, p))
		}
	}()
	// A fresh Ctx, not the slot's shared one: inline -noDelta fires nest
	// inside a rule body that is still using the slot Ctx.
	ctx := &Ctx{run: r, rule: rule, trigger: t, slot: slot}
	start := time.Now()
	rule.Body(ctx, t)
	if n := r.stats.RuleNanos[rule.Name]; n != nil {
		n.Add(int64(time.Since(start)))
	}
}

func (r *Run) tableStats(s *tuple.Schema) *TableStats {
	if id := int(s.ID()); id < len(r.statsByID) && r.prog.byID[id] == s {
		return r.statsByID[id]
	}
	return nil
}

// put implements the tuple creation path shared by initial puts and rule
// puts. from is the trigger tuple of the producing rule, nil for initial
// puts; slot identifies the put buffer of the executing participant.
// Under -noDelta the tuple goes straight to Gamma and fires its rules on
// the calling task; everything else is appended to the slot buffer and
// flushed into the Delta tree at the step boundary.
func (r *Run) put(ruleName string, from *tuple.Tuple, t *tuple.Tuple, slot int) {
	s := t.Schema()
	st := r.tableStats(s)
	if st == nil {
		panic(fmt.Sprintf("jstar: put of tuple from undeclared table %s", s.Name))
	}
	st.Puts.Add(1)
	if r.opts.TraceDataflow {
		r.stats.addFlow(ruleName, s.Name)
	}
	if r.opts.CheckCausality && from != nil {
		kf := order.KeyOf(r.prog.po, from)
		kt := order.KeyOf(r.prog.po, t)
		if order.Compare(kt, kf) < 0 {
			panic(fmt.Sprintf("jstar: causality violation: rule triggered by %v (key %v) put %v (key %v) into the past",
				from, kf, t, kt))
		}
	}
	id := s.ID()
	if r.noDelta[id] {
		if !r.noGamma[id] {
			if !r.gammaDB.Insert(t) {
				st.Duplicates.Add(1)
				return
			}
		}
		r.fire(t, slot)
		return
	}
	sl := &r.slots[slot]
	sl.mu.Lock()
	sl.buf = append(sl.buf, t)
	sl.mu.Unlock()
}

// Stats returns the run statistics (valid after Execute returns).
func (r *Run) Stats() *RunStats { return &r.stats }

// Program returns the program this run executes.
func (r *Run) Program() *Program { return r.prog }

// StrategyName reports the executor driving this run ("sequential",
// "forkjoin", "pipelined", or "auto:<chosen>" once Auto has decided).
func (r *Run) StrategyName() string { return r.executor.Name() }

// Output returns the Println lines produced so far. Within one parallel
// batch the order is scheduling-dependent; across batches it follows the
// causality ordering.
func (r *Run) Output() []string { return r.out.snapshot() }

// Gamma exposes the run's Gamma database for post-run inspection —
// the program's result relation contents.
func (r *Run) Gamma() *gamma.DB { return r.gammaDB }

// DeltaLen reports how many tuples are still queued (0 after Execute).
func (r *Run) DeltaLen() int { return r.delta.Len() }

// Threads reports the degree of parallelism used by the run.
func (r *Run) Threads() int {
	if r.threads < 1 {
		return 1
	}
	return r.threads
}

// Execute is the one-call convenience: build a run, execute it, return it.
func (p *Program) Execute(opts Options) (*Run, error) {
	r, err := p.NewRun(opts)
	if err != nil {
		return nil, err
	}
	if err := r.Execute(); err != nil {
		return r, err
	}
	return r, nil
}
