package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/jstar-lang/jstar/internal/disruptor"
	"github.com/jstar-lang/jstar/internal/gamma"
	"github.com/jstar-lang/jstar/internal/tuple"
	"github.com/jstar-lang/jstar/internal/wal"
)

// ErrSessionClosed is returned by Session operations after Close, and by
// Quiesce waiters when the session is closed before reaching quiescence.
var ErrSessionClosed = errors.New("jstar: session closed")

// ingressEvent is one slot of the Session ingress ring: a single external
// tuple. Slots are recycled across ring revolutions; absorb clears the
// reference once the tuple has entered the Delta set so the ring never
// pins dead tuples.
type ingressEvent struct {
	t *tuple.Tuple
}

// Session is a long-lived, concurrent-safe handle on a running program —
// the engine as an online incremental service rather than a one-shot batch
// evaluator. External tuples enter through Put/PutBatch from any number of
// goroutines: they are published into a sharded multi-producer Disruptor
// ingress (Options.IngressShards lanes, spread by publisher affinity) and
// absorbed into the Delta set by the coordinator at step boundaries — each
// lane draining into its own put-buffer slot — so ingestion overlaps rule
// execution instead of waiting for quiescence. The only thing that ever
// blocks a producer is ring backpressure (a full ingress lane; total
// capacity Options.IngressRing).
//
// The lifecycle is Start → Put/PutBatch ⇄ Quiesce → Close:
//
//   - Program.Start seeds the initial puts and begins draining on a
//     background coordinator goroutine.
//   - Put/PutBatch inject external tuples; the program's rules fire on
//     them as their causal equivalence classes become minimal, exactly as
//     if they had been initial puts (§3's event-driven mode).
//   - Quiesce blocks until every tuple put before the call has been
//     absorbed and the database has drained to quiescence.
//   - Query/Snapshot/Stats read the Gamma state; call them at quiescence
//     for point-in-time-consistent results.
//   - Close releases the executor and its goroutines. A drain still in
//     flight is aborted at the next step boundary; call Quiesce first for
//     a graceful shutdown.
//
// The ctx given to Start bounds the whole session: cancellation or
// deadline expiry is checked at every step boundary, so even a
// non-terminating program (the unconditioned Ship rule of §3) is stopped
// without resorting to Options.MaxSteps. After a failure — rule panic,
// MaxSteps, ctx cancellation — the session is terminal: Put, Quiesce and
// Close all report the first error.
type Session struct {
	run   *Run
	ctx   context.Context
	start time.Time

	// ing is built lazily on the first Put, so the one-shot Execute
	// wrapper (which never Puts) pays no ring allocation.
	ing atomic.Pointer[ingress]

	notify   chan struct{} // coalesced "ingress ring has data"
	closeCh  chan struct{} // closed by Close: stop at the next boundary
	loopDone chan struct{} // closed when the coordinator loop exits

	closeOnce sync.Once

	// replan drives Options.ReplanEvery; nil for non-adaptive sessions.
	// quiesces is the coordinator's quiescent-boundary ordinal; both are
	// touched only by the coordinator loop.
	replan   *replanner
	quiesces int64

	// Durability tier (Options.Durability); wal is nil when off. The
	// coordinator tees absorbed tuples into the log, replays walTail after
	// seeding, and checkpoints at quiescent boundaries; walBatch is its
	// per-absorb scratch. lastCkptQuiesce drives the automatic cadence.
	wal             *wal.Log
	walTail         []*tuple.Tuple
	walBatch        []*tuple.Tuple
	recovery        *RecoveryInfo
	ckptEvery       int
	lastCkptQuiesce int64

	mu        sync.Mutex
	quiescent bool          // loop is parked with Delta and ring drained
	consumed  []int64       // per-shard sequence absorbed at last quiescence
	qGen      chan struct{} // closed and replaced at each quiescence
	migrateQ  []*migrateRequest
	ckptQ     []*checkpointRequest
	err       error // first terminal failure
	closed    bool
}

// migrateRequest is one queued Session.Migrate call, applied by the
// coordinator at a quiescent boundary and answered on done.
type migrateRequest struct {
	schema *tuple.Schema
	spec   string
	done   chan error // buffered(1)
}

// ingress wraps the sharded external-tuple rings: publishers spread across
// lanes by affinity, the coordinator drains each lane separately.
type ingress struct {
	ring *disruptor.ShardedRing[ingressEvent]
}

// Start validates opts, seeds the program's initial puts and begins
// executing on a background coordinator goroutine, returning the live
// Session handle. ctx bounds the session: when it is cancelled or its
// deadline passes, execution stops at the next step boundary and the
// session becomes terminal with ctx's error.
func (p *Program) Start(ctx context.Context, opts Options) (*Session, error) {
	r, err := p.NewRun(opts)
	if err != nil {
		return nil, err
	}
	return r.startSession(ctx)
}

// startSession builds the ingress ring and coordinator loop on a prepared
// run. It is the engine behind Program.Start and the Execute/ExecuteEvents
// compatibility wrappers.
func (r *Run) startSession(ctx context.Context) (*Session, error) {
	if !r.started.CompareAndSwap(false, true) {
		return nil, fmt.Errorf("jstar: run already started")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	s := &Session{
		run:      r,
		ctx:      ctx,
		start:    time.Now(),
		notify:   make(chan struct{}, 1),
		closeCh:  make(chan struct{}),
		loopDone: make(chan struct{}),
		qGen:     make(chan struct{}),
	}
	if r.opts.ReplanEvery > 0 {
		s.replan = newReplanner(r)
	}
	if d := r.opts.Durability; d != nil {
		// Open (or recover) the log before the loop exists: checkpoint rows
		// are bulk-restored into the still-single-owned Gamma database, and
		// the WAL tail is parked for the loop to replay after seeding.
		if err := s.openWAL(d); err != nil {
			r.finish(s.start)
			return nil, err
		}
	}
	go s.loop()
	return s, nil
}

// initIngress builds the ingress ring on first use. Creation is fenced by
// mu against the terminal transitions: once the session has failed or been
// closed no new ring can appear, so the coordinator's shutdown Release
// cannot miss one and leave a publisher gated forever.
func (s *Session) initIngress() (*ingress, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ing := s.ing.Load(); ing != nil {
		return ing, nil
	}
	if s.err != nil {
		return nil, s.err
	}
	if s.closed {
		return nil, ErrSessionClosed
	}
	shards := s.run.opts.ingressShards()
	size := s.run.opts.ingressRing() / shards
	if size < 2 {
		size = 2
	}
	ring := disruptor.NewShardedRing[ingressEvent](shards, size,
		func() disruptor.WaitStrategy { return &disruptor.BlockingWait{} })
	// Publish the shard accounting before the atomic pointer store: the
	// coordinator (and any post-quiescence Stats reader) reaches these
	// fields only after loading the pointer.
	s.run.stats.IngressShards = shards
	s.run.stats.ShardAbsorbed = make([]int64, shards)
	ing := &ingress{ring: ring}
	s.ing.Store(ing)
	return ing, nil
}

// loop is the session coordinator: it owns the executor's Drain, absorbs
// ingress events at step boundaries (sessionHost), and parks at quiescence
// until new events, cancellation, or Close arrive. Drain is re-entered
// after every wake-up — the resumable-drain contract of exec.Executor.
func (s *Session) loop() {
	defer func() {
		// Un-gate producers blocked on a full ring; their tuples land in
		// slots that are never read again, and Put reports the terminal
		// state to them. The terminal flag (err/closed) is already set
		// under mu at this point, so initIngress cannot create a ring this
		// Release would miss.
		if ing := s.ing.Load(); ing != nil {
			ing.ring.Release()
		}
		// Every exit path records the terminal state (err or closed) before
		// returning, so requests queued after this drain are rejected at
		// enqueue — none are stranded without an answer.
		s.failMigrations()
		s.failCheckpoints()
		close(s.loopDone)
	}()
	// Rule-body panics are contained by the engine (invokeGroup), but
	// seed-time puts and external actions run bare on this goroutine; a
	// panic here must become a session failure, not a process crash — the
	// containment Execute callers had when the drain ran on their own
	// goroutine.
	defer func() {
		if p := recover(); p != nil {
			s.fail(fmt.Errorf("jstar: session coordinator panicked: %v", p))
		}
	}()
	s.run.seed()
	// Recovered WAL tail: refire the crashed run's absorbed-but-not-
	// checkpointed input through the ordinary put path. The engine's
	// determinism takes it to the same fixpoint; the first Drain below
	// settles it together with the seeds.
	s.replayTail()
	for {
		if err := s.run.executor.Drain(sessionHost{s}); err != nil {
			if !errors.Is(err, ErrSessionClosed) {
				s.fail(err)
			}
			return
		}
		// Quiescent boundary: the Delta set and ingress ring are drained and
		// no rule is in flight, so the coordinator owns every store — the
		// only point where live migration and strategy switching are safe.
		s.quiesces++
		s.applyMigrations()
		if s.replan != nil {
			s.replan.tick(s.quiesces)
		}
		// Checkpoints happen here and only here: the Gamma state is the
		// fixpoint of exactly the absorbed (and teed) input prefix, so the
		// durable watermark advances only at quiesced boundaries.
		s.maybeCheckpoint()
		s.markQuiescent()
		select {
		case <-s.notify:
		case <-s.ctx.Done():
			// Cancellation caught the session parked at a fixpoint. With
			// no unabsorbed input nothing is lost — a clean shutdown, so
			// a Quiesce that already returned success is not retroactively
			// turned into a failure. Pending ingress means dropped events:
			// that is the failure the ctx error reports. The gate closes
			// before the pending check: a racing PutBatch either published
			// before our check (we see it and fail loudly) or runs its
			// post-publish gate after the flag (the producer gets
			// ErrSessionClosed) — an acknowledged Put is never dropped
			// silently.
			s.mu.Lock()
			s.closed = true
			s.mu.Unlock()
			if s.pendingIngress() {
				s.fail(s.ctx.Err())
			} else {
				s.wakeWaiters()
			}
			return
		case <-s.closeCh:
			return
		}
	}
}

// pendingIngress reports whether published external tuples have not yet
// been absorbed.
func (s *Session) pendingIngress() bool {
	ing := s.ing.Load()
	return ing != nil && ing.ring.Pending()
}

// wakeWaiters wakes Quiesce waiters to re-check the session state.
func (s *Session) wakeWaiters() {
	s.mu.Lock()
	close(s.qGen)
	s.qGen = make(chan struct{})
	s.mu.Unlock()
}

// absorb moves every pending ingress event into the engine via the
// coordinator's put path, shard i draining into put-buffer slot i (mod the
// worker-slot count) — so absorbed events reach the step boundary already
// spread across the slots SealSlot sorts in parallel, instead of piling
// into slot 0. Under TableAffinity the route is per tuple instead of per
// lane: each event lands in the slot of the worker owning its table, so an
// external tuple is buffered, flushed, fired and stored on one core.
// Returns how many were absorbed; only the coordinator loop calls it.
func (s *Session) absorb() int {
	ing := s.ing.Load()
	if ing == nil {
		return 0
	}
	slots := s.run.workerSlots()
	affine := s.run.affine()
	tee := s.wal != nil
	total := 0
	for shard := 0; shard < ing.ring.Shards(); shard++ {
		slot := shard % slots
		n := ing.ring.Poll(shard, func(_ int64, ev *ingressEvent) bool {
			t := ev.t
			ev.t = nil
			sl := slot
			if affine {
				sl = int(s.run.shardMap.OwnerID(t.Schema().ID())) % slots
			}
			if tee {
				s.walBatch = append(s.walBatch, t)
			}
			s.run.put("event", nil, t, sl)
			return true
		})
		if n > 0 {
			s.run.stats.ShardAbsorbed[shard] += int64(n)
			total += n
		}
	}
	// The WAL tee: everything absorbed this pass becomes one batch record
	// in the pending group. This is an encode, not a sync — the group
	// commits by size or deadline, off the producers' path entirely.
	if tee && len(s.walBatch) > 0 {
		s.teeWAL(s.walBatch)
		clear(s.walBatch)
		s.walBatch = s.walBatch[:0]
	}
	return total
}

// fail records the session's first terminal error and wakes every waiter.
func (s *Session) fail(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.quiescent = false
	close(s.qGen)
	s.qGen = make(chan struct{})
	s.mu.Unlock()
}

// markQuiescent records that the Delta set and ingress ring were both
// drained, snapshots how far ingestion has been absorbed, bumps the
// change generation of every table whose Gamma state changed since the
// previous quiescence, and wakes Quiesce/WaitChange waiters.
func (s *Session) markQuiescent() {
	s.run.foldDirty()
	s.mu.Lock()
	s.quiescent = true
	if ing := s.ing.Load(); ing != nil {
		s.consumed = s.consumed[:0]
		for i := 0; i < ing.ring.Shards(); i++ {
			s.consumed = append(s.consumed, ing.ring.ConsumedSeq(i))
		}
	}
	s.run.stats.Elapsed = time.Since(s.start)
	close(s.qGen)
	s.qGen = make(chan struct{})
	s.mu.Unlock()
}

// gate reports the session's terminal state, if any.
func (s *Session) gate() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	if s.closed {
		return ErrSessionClosed
	}
	return nil
}

// Put injects one external tuple. It never waits for quiescence — the
// tuple is published into the ingress ring and the call returns, so
// ingestion from application goroutines overlaps rule execution. Put
// blocks only when the ingress ring is full (backpressure) and errors if
// the tuple's table was not declared on this program or the session is
// closed or failed.
func (s *Session) Put(t *tuple.Tuple) error { return s.PutBatch(t) }

// PutBatch injects external tuples, claiming one ring slot per tuple; it
// shares Put's non-blocking contract. A batch is an ingestion convenience,
// not a causal unit: tuples still settle per their own causal keys.
func (s *Session) PutBatch(ts ...*tuple.Tuple) error {
	if err := s.gate(); err != nil {
		return err
	}
	for _, t := range ts {
		if t == nil {
			return fmt.Errorf("jstar: Put of nil tuple")
		}
		if s.run.tableStats(t.Schema()) == nil {
			return fmt.Errorf("jstar: Put of tuple from table %s not declared on this program", t.Schema().Name)
		}
	}
	ing := s.ing.Load()
	if ing == nil {
		var err error
		if ing, err = s.initIngress(); err != nil {
			return err
		}
	}
	for _, t := range ts {
		t := t
		ing.ring.Publish(func(ev *ingressEvent) { ev.t = t })
		// Wake the coordinator per publish, not once per batch: a batch
		// larger than the ring's free capacity would otherwise gate this
		// publisher before the wake-up was ever sent, with the coordinator
		// parked — a deadlock. The send is non-blocking (a pending token
		// already guarantees a re-poll).
		select {
		case s.notify <- struct{}{}:
		default:
		}
	}
	// The loop may have shut down while we were gated on a full ring; in
	// that case the published tuples will never be absorbed — report it.
	return s.gate()
}

// Migrate requests a live migration of table's store to the gamma kind
// spec (same syntax as StorePlan entries: "hash:2", "inthash:1",
// "columnar", ...). The migration is applied by the coordinator at the
// next quiescent boundary — the only point with no writer in flight — and
// Migrate blocks until it has been applied (returning the rebuild's
// result) or the session dies first. Concurrent Query/Snapshot readers
// are safe throughout: they observe either the old or the new store,
// never a half-built one. Spec/table validation happens up front;
// migrating a -noGamma table or a non-replannable backend (dense3d,
// rolling, arrayhash, custom) is refused at apply time. Must not be
// called from rule bodies or actions — they run inside the drain the
// coordinator must finish before applying, so the call would deadlock.
func (s *Session) Migrate(table, spec string) error {
	sch := s.run.prog.tables[table]
	if sch == nil {
		return fmt.Errorf("jstar: migrate %s: unknown table (declared: %s)", table, s.run.prog.knownTables())
	}
	f, err := gamma.FactoryFor(spec, sch)
	if err != nil {
		return err
	}
	if f == nil {
		return fmt.Errorf("jstar: migrate %s: spec %q is ownership-only (no store kind); shard ownership is fixed when the run is built", table, spec)
	}
	req := &migrateRequest{schema: sch, spec: spec, done: make(chan error, 1)}
	s.mu.Lock()
	if s.err != nil {
		err := s.err
		s.mu.Unlock()
		return err
	}
	if s.closed {
		s.mu.Unlock()
		return ErrSessionClosed
	}
	s.migrateQ = append(s.migrateQ, req)
	s.mu.Unlock()
	// Wake a parked coordinator; non-blocking, a pending token already
	// guarantees a pass over the queue.
	select {
	case s.notify <- struct{}{}:
	default:
	}
	select {
	case err := <-req.done:
		return err
	case <-s.loopDone:
		// The loop answered (or rejected) every queued request before
		// closing loopDone; prefer the recorded answer over the gate.
		select {
		case err := <-req.done:
			return err
		default:
		}
		if err := s.gate(); err != nil {
			return err
		}
		return ErrSessionClosed
	}
}

// applyMigrations drains the queued Migrate requests at a quiescent
// boundary; coordinator only.
func (s *Session) applyMigrations() {
	s.mu.Lock()
	q := s.migrateQ
	s.migrateQ = nil
	s.mu.Unlock()
	for _, req := range q {
		req.done <- s.run.applyMigrate(req.schema, req.spec, s.quiesces)
	}
}

// failMigrations rejects queued requests when the coordinator exits; their
// tables keep their stores.
func (s *Session) failMigrations() {
	s.mu.Lock()
	q := s.migrateQ
	s.migrateQ = nil
	s.mu.Unlock()
	for _, req := range q {
		err := s.gate()
		if err == nil {
			err = ErrSessionClosed
		}
		req.done <- err
	}
}

// Quiesce blocks until the database has drained to quiescence and every
// tuple put before the call has been absorbed, or until ctx is done. It
// returns nil at quiescence, ctx's error on cancellation/deadline, and the
// session's terminal error if it failed or was closed first. Multiple
// goroutines may Quiesce concurrently.
func (s *Session) Quiesce(ctx context.Context) error {
	// The watermark is a vector: the highest claimed sequence per ingress
	// shard at call time. Quiescence with every shard's absorbed sequence
	// at or past its watermark means everything put before the call is in.
	var target []int64
	if ing := s.ing.Load(); ing != nil {
		target = ing.ring.ClaimedSnapshot(nil)
	}
	covered := func() bool {
		for i, w := range target {
			if w < 0 {
				continue // nothing ever claimed on this shard
			}
			if i >= len(s.consumed) || s.consumed[i] < w {
				return false
			}
		}
		return true
	}
	for {
		s.mu.Lock()
		if s.err != nil {
			err := s.err
			s.mu.Unlock()
			return err
		}
		if s.closed {
			s.mu.Unlock()
			return ErrSessionClosed
		}
		if s.quiescent && covered() {
			s.mu.Unlock()
			return nil
		}
		ch := s.qGen
		s.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		case <-s.loopDone:
			if err := s.gate(); err != nil {
				return err
			}
			return ErrSessionClosed
		}
	}
}

// Query visits the tuples of table sch matching q, like Ctx.ForEach but
// from outside the rule system — the read surface of the online service.
// Results are point-in-time consistent when the session is quiesced;
// during execution the stores are weakly consistent (reads are safe but
// may interleave with inserts, like the Java concurrent collections).
func (s *Session) Query(sch *tuple.Schema, q gamma.Query, fn func(*tuple.Tuple) bool) {
	if st := s.run.tableStats(sch); st != nil {
		st.Queries.Add(1)
		if n := int64(len(q.Prefix)); n > 0 {
			st.noteIndexed(1, n, n)
		}
	}
	s.run.gammaDB.Table(sch).Select(q, fn)
}

// Snapshot returns a copy of table sch's current contents in store order.
// Call it at quiescence for a consistent snapshot.
func (s *Session) Snapshot(sch *tuple.Schema) []*tuple.Tuple {
	store := s.run.gammaDB.Table(sch)
	out := make([]*tuple.Tuple, 0, store.Len())
	store.Scan(func(t *tuple.Tuple) bool {
		out = append(out, t)
		return true
	})
	return out
}

// TableVersion returns table's current quiesced-change generation: a
// counter incremented at each quiescent boundary where the table's Gamma
// contents changed (see RunStats.TableVersions). It errors on unknown
// tables. Safe to call at any time; the value only moves at quiescent
// boundaries, so it always names a quiesced state.
func (s *Session) TableVersion(table string) (int64, error) {
	sch := s.run.prog.tables[table]
	if sch == nil {
		return 0, fmt.Errorf("jstar: table version %s: unknown table (declared: %s)", table, s.run.prog.knownTables())
	}
	return s.run.versionByID[sch.ID()].Load(), nil
}

// WaitChange blocks until table's quiesced-change generation exceeds
// since, returning the new generation — the primitive behind query
// subscriptions: a subscriber records the generation at registration and
// re-queries each time WaitChange returns. It returns ctx's error on
// cancellation/deadline and the session's terminal error if it fails or
// closes first; generations are never skipped silently (a return of g
// covers every change up to g, so a subscriber polling since=g misses
// nothing and is never woken for a phantom change). Tables in
// Options.NoGamma have no queryable state and never change.
func (s *Session) WaitChange(ctx context.Context, table string, since int64) (int64, error) {
	sch := s.run.prog.tables[table]
	if sch == nil {
		return 0, fmt.Errorf("jstar: wait change %s: unknown table (declared: %s)", table, s.run.prog.knownTables())
	}
	v := s.run.versionByID[sch.ID()]
	for {
		if cur := v.Load(); cur > since {
			return cur, nil
		}
		s.mu.Lock()
		if s.err != nil {
			err := s.err
			s.mu.Unlock()
			return v.Load(), err
		}
		if s.closed {
			s.mu.Unlock()
			return v.Load(), ErrSessionClosed
		}
		ch := s.qGen
		s.mu.Unlock()
		// Re-check after arming: the coordinator bumps generations before
		// closing qGen, so a bump between the first load and here is
		// caught either by this load or by the channel close.
		if cur := v.Load(); cur > since {
			return cur, nil
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return v.Load(), ctx.Err()
		case <-s.loopDone:
			if err := s.gate(); err != nil {
				return v.Load(), err
			}
			return v.Load(), ErrSessionClosed
		}
	}
}

// TrackPrefixes arms per-prefix change tracking: from the next step on,
// the engine records which leading-column hash buckets (PrefixBucket over
// a tuple's first field) changed each quiescent window, and PrefixVersion
// reports per-bucket generations. Tracking costs one hash per kept tuple,
// so it stays off until the first prefix-filtered subscriber arms it.
// Arming is idempotent and safe from any goroutine.
func (s *Session) TrackPrefixes() { s.run.prefixTrack.Store(true) }

// PrefixVersion returns table's quiesced-change generation restricted to
// one prefix bucket: the table-wide generation (TableVersion) at the last
// quiescent boundary where a kept tuple hashed into that bucket. A
// subscriber filtering on a key prefix waits on WaitChange and then skips
// wakeups whose PrefixVersion for its bucket has not passed its watermark.
// The tracking is conservative — windows that changed before TrackPrefixes
// was armed, or whose dirty mask was lost, promote every bucket — so a
// filtered subscriber may see a spurious wakeup but never misses a change.
func (s *Session) PrefixVersion(table string, bucket int) (int64, error) {
	sch := s.run.prog.tables[table]
	if sch == nil {
		return 0, fmt.Errorf("jstar: prefix version %s: unknown table (declared: %s)", table, s.run.prog.knownTables())
	}
	if bucket < 0 || bucket >= prefixBuckets {
		return 0, fmt.Errorf("jstar: prefix version %s: bucket %d out of range [0,%d)", table, bucket, prefixBuckets)
	}
	return s.run.prefixVerByID[sch.ID()][bucket].Load(), nil
}

// IngressBacklog reports how many published external tuples have not yet
// been absorbed by the coordinator, and the ingress ring's total capacity
// — the signal admission controllers use to shed load before producers
// block on ring backpressure. Before the first Put (no ring yet) the
// backlog is zero and the capacity is the configured Options.IngressRing.
func (s *Session) IngressBacklog() (pending int64, capacity int) {
	ing := s.ing.Load()
	if ing == nil {
		return 0, s.run.opts.ingressRing()
	}
	return ing.ring.PendingCount(), ing.ring.Capacity()
}

// Stats returns the run statistics. Read them only at quiescence (after
// Quiesce returns nil, or after Close): several RunStats fields (Steps,
// Elapsed, TotalLive, MaxBatch) are plain values written by the
// coordinator, so reading them mid-drain is a data race. The atomic
// per-table counters are safe to read at any time.
func (s *Session) Stats() *RunStats { return s.run.Stats() }

// Run exposes the underlying run (Gamma, Output, StrategyName, …) for
// post-quiescence inspection — the same object Execute returns.
func (s *Session) Run() *Run { return s.run }

// Err returns the session's terminal error, or nil while it is healthy.
func (s *Session) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close stops the session and releases the executor, its consumer crews
// and the scheduling pool. A drain in flight is aborted at the next step
// boundary — Quiesce first for a graceful shutdown. Close is idempotent;
// it returns the session's terminal error, if any, so one-shot callers
// can Close and check a single error.
func (s *Session) Close() error {
	s.closeOnce.Do(func() {
		s.mu.Lock()
		s.closed = true
		s.mu.Unlock()
		close(s.closeCh)
		<-s.loopDone
		// Flush and fsync the WAL tail before returning: everything the
		// coordinator absorbed (and therefore teed) is durable once Close
		// returns, and the final segment is sealed into the hash chain. The
		// durable watermark (checkpoint) is NOT advanced here — that only
		// happens at quiescent boundaries, so a close racing in-flight puts
		// can never claim coverage of a non-quiesced state.
		if s.wal != nil {
			if err := s.wal.Close(); err != nil {
				s.fail(err)
			}
		}
		s.run.finish(s.start)
	})
	return s.Err()
}

// sessionHost adapts the session to the exec.Host contract: it is runHost
// plus ingress absorption and context/close checks at each step boundary.
// Absorbed tuples enter the put buffers (one slot per ingress shard) and
// are flushed into the Delta tree before the next extraction, so an
// external event becomes visible exactly at a step boundary — the same
// visibility rule as rule puts.
type sessionHost struct{ s *Session }

func (h sessionHost) NextBatch() ([]*tuple.Tuple, error) {
	s := h.s
	select {
	case <-s.closeCh:
		return nil, ErrSessionClosed
	default:
	}
	if err := s.ctx.Err(); err != nil {
		return nil, err
	}
	if s.absorb() > 0 {
		s.run.endStep()
	}
	return s.run.nextBatch()
}

func (h sessionHost) BeginStep(b []*tuple.Tuple) []*tuple.Tuple { return h.s.run.beginStep(b) }
func (h sessionHost) FireBatch(ts []*tuple.Tuple, slot int)     { h.s.run.fireBatch(ts, slot) }
func (h sessionHost) SealSlot(slot int)                         { h.s.run.sealSlot(slot) }
func (h sessionHost) EndStep()                                  { h.s.run.endStep() }
func (h sessionHost) Err() error                                { return h.s.run.loadFail() }

// exec.AffineHost: expose the run's table-affine fire plan (built by
// beginStep when Options.TableAffinity is on) so the parallel strategies
// dispatch shard-owned tasks to the workers pinned to those shards.
func (h sessionHost) Affine() bool         { return h.s.run.affine() }
func (h sessionHost) Tasks() int           { return h.s.run.fireTaskCount() }
func (h sessionHost) FireTask(i, slot int) { h.s.run.fireTask(i, slot) }
func (h sessionHost) TaskRoute(i int) int  { return h.s.run.taskRoute(i) }
