package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/jstar-lang/jstar/internal/exec"
	"github.com/jstar-lang/jstar/internal/gamma"
	"github.com/jstar-lang/jstar/internal/tuple"
)

// sessionProgram builds a two-table fan-out: every external Event(n) fires
// a rule that records Out(n, n*2). Events carry no ordering constraints
// against each other, so any injection interleaving must converge on the
// same fixpoint.
func sessionProgram() (*Program, *tuple.Schema, *tuple.Schema) {
	p := NewProgram()
	ev := p.Table("Event", []tuple.Column{{Name: "n", Kind: tuple.KindInt}},
		[]tuple.OrderEntry{tuple.Lit("Event")})
	out := p.Table("Out",
		[]tuple.Column{{Name: "n", Kind: tuple.KindInt}, {Name: "v", Kind: tuple.KindInt}},
		[]tuple.OrderEntry{tuple.Lit("Out")})
	p.Order("Event", "Out")
	p.Rule("double", ev, func(c *Ctx, t *tuple.Tuple) {
		c.PutNew(out, tuple.Int(t.Int("n")), tuple.Int(2*t.Int("n")))
	})
	return p, ev, out
}

// TestSessionConcurrentProducers is the satellite coverage: N goroutines
// Put while the executor is mid-drain, for all three strategies, under
// -race. Every distinct event must fire exactly once and the session must
// reach quiescence with the full Out relation.
func TestSessionConcurrentProducers(t *testing.T) {
	const producers = 8
	const perProducer = 500
	for _, strat := range []exec.Strategy{exec.Sequential, exec.ForkJoin, exec.Pipelined} {
		t.Run(strat.String(), func(t *testing.T) {
			p, ev, out := sessionProgram()
			s, err := p.Start(context.Background(), Options{
				Strategy: strat, Threads: 4, IngressRing: 64, Quiet: true})
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for g := 0; g < producers; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < perProducer; i++ {
						n := int64(g*perProducer + i)
						if i%5 == 0 {
							if err := s.PutBatch(tuple.New(ev, tuple.Int(n))); err != nil {
								t.Error(err)
								return
							}
							continue
						}
						if err := s.Put(tuple.New(ev, tuple.Int(n))); err != nil {
							t.Error(err)
							return
						}
					}
				}(g)
			}
			wg.Wait()
			if err := s.Quiesce(context.Background()); err != nil {
				t.Fatal(err)
			}
			const total = producers * perProducer
			if got := len(s.Snapshot(out)); got != total {
				t.Errorf("Out has %d tuples, want %d", got, total)
			}
			if got := s.Stats().Tables["Event"].Triggers.Load(); got != total {
				t.Errorf("Event triggers = %d, want %d", got, total)
			}
			if got := s.Run().DeltaLen(); got != 0 {
				t.Errorf("DeltaLen = %d after Quiesce, want 0", got)
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSessionQuiesceCoversInitialPuts: Quiesce with no external puts must
// still wait for the seeded program to drain.
func TestSessionQuiesceCoversInitialPuts(t *testing.T) {
	p, ship := shipProgram()
	s, err := p.Start(context.Background(), Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Quiesce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Snapshot(ship)); got != 4 {
		t.Errorf("Ship has %d tuples, want 4", got)
	}
}

// TestSessionQueryAndSnapshot reads quiesced Gamma state through the
// public read surface and checks query statistics are attributed.
func TestSessionQueryAndSnapshot(t *testing.T) {
	p, ev, out := sessionProgram()
	s, err := p.Start(context.Background(), Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := int64(0); i < 10; i++ {
		if err := s.Put(tuple.New(ev, tuple.Int(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Quiesce(context.Background()); err != nil {
		t.Fatal(err)
	}
	var got int64 = -1
	s.Query(out, gamma.Query{Prefix: []tuple.Value{tuple.Int(7)}}, func(tp *tuple.Tuple) bool {
		got = tp.Int("v")
		return false
	})
	if got != 14 {
		t.Errorf("Query(Out, n=7) v = %d, want 14", got)
	}
	if n := s.Stats().Tables["Out"].Queries.Load(); n != 1 {
		t.Errorf("Out queries = %d, want 1", n)
	}
	if got := len(s.Snapshot(ev)); got != 10 {
		t.Errorf("Snapshot(Event) = %d tuples, want 10", got)
	}
}

// TestSessionContextCancelStopsRunawayProgram: a program that puts forever
// is stoppable through the Start ctx alone — the redesign's answer to
// "today a runaway program is only stoppable via MaxSteps".
func TestSessionContextCancelStopsRunawayProgram(t *testing.T) {
	p := NewProgram()
	tick := p.Table("Tick", []tuple.Column{{Name: "n", Kind: tuple.KindInt}},
		[]tuple.OrderEntry{tuple.Lit("Int"), tuple.Seq("n")})
	p.Rule("forever", tick, func(c *Ctx, t *tuple.Tuple) {
		c.PutNew(tick, tuple.Int(t.Int("n")+1))
	})
	p.Put(tuple.New(tick, tuple.Int(0)))
	ctx, cancel := context.WithCancel(context.Background())
	s, err := p.Start(ctx, Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	cancel()
	err = s.Quiesce(context.Background())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Quiesce after cancel = %v, want context.Canceled", err)
	}
	if err := s.Put(tuple.New(tick, tuple.Int(-1))); !errors.Is(err, context.Canceled) {
		t.Errorf("Put on cancelled session = %v, want context.Canceled", err)
	}
	if err := s.Close(); !errors.Is(err, context.Canceled) {
		t.Errorf("Close after cancel = %v, want context.Canceled", err)
	}
}

// TestSessionCtxCancelAtQuiescenceIsClean: cancelling a session that is
// parked at its fixpoint with nothing pending is a shutdown, not a
// failure — a Quiesce that already succeeded must not be retroactively
// contradicted by an error from Close.
func TestSessionCtxCancelAtQuiescenceIsClean(t *testing.T) {
	p, _ := shipProgram()
	ctx, cancel := context.WithCancel(context.Background())
	s, err := p.Start(ctx, Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Quiesce(context.Background()); err != nil {
		t.Fatal(err)
	}
	cancel()
	<-s.loopDone
	if err := s.Err(); err != nil {
		t.Errorf("Err after idle cancel = %v, want nil", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("Close after idle cancel = %v, want nil", err)
	}
	if err := s.Quiesce(context.Background()); !errors.Is(err, ErrSessionClosed) {
		t.Errorf("Quiesce after idle cancel = %v, want ErrSessionClosed", err)
	}
}

// TestSessionActionPanicIsContained: external actions run bare on the
// coordinator goroutine; a panic there must surface as a session error,
// not crash the process.
func TestSessionActionPanicIsContained(t *testing.T) {
	p := NewProgram()
	a := p.Table("A", []tuple.Column{{Name: "v", Kind: tuple.KindInt}}, nil)
	p.Action(a, func(*Run, *tuple.Tuple) { panic("action boom") })
	p.Put(tuple.New(a, tuple.Int(1)))
	_, err := p.Execute(Options{Sequential: true})
	if err == nil || !strings.Contains(err.Error(), "action boom") {
		t.Fatalf("Execute with panicking action = %v, want contained panic error", err)
	}
}

// TestSessionDeadlineStopsRunawayProgram covers the deadline flavour.
func TestSessionDeadlineStopsRunawayProgram(t *testing.T) {
	p := NewProgram()
	tick := p.Table("Tick", []tuple.Column{{Name: "n", Kind: tuple.KindInt}},
		[]tuple.OrderEntry{tuple.Lit("Int"), tuple.Seq("n")})
	p.Rule("forever", tick, func(c *Ctx, t *tuple.Tuple) {
		c.PutNew(tick, tuple.Int(t.Int("n")+1))
	})
	p.Put(tuple.New(tick, tuple.Int(0)))
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	s, err := p.Start(ctx, Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Quiesce(context.Background()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Quiesce = %v, want context.DeadlineExceeded", err)
	}
}

// TestSessionCloseIsTerminal: operations after Close report the closed
// state, and Close is idempotent.
func TestSessionCloseIsTerminal(t *testing.T) {
	p, ev, _ := sessionProgram()
	s, err := p.Start(context.Background(), Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Quiesce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close = %v", err)
	}
	if err := s.Put(tuple.New(ev, tuple.Int(1))); !errors.Is(err, ErrSessionClosed) {
		t.Errorf("Put after Close = %v, want ErrSessionClosed", err)
	}
	if err := s.Quiesce(context.Background()); !errors.Is(err, ErrSessionClosed) {
		t.Errorf("Quiesce after Close = %v, want ErrSessionClosed", err)
	}
}

// TestSessionRulePanicIsTerminal: a rule panic fails the session; Put and
// Quiesce surface it.
func TestSessionRulePanicIsTerminal(t *testing.T) {
	p := NewProgram()
	ev := p.Table("Event", []tuple.Column{{Name: "n", Kind: tuple.KindInt}},
		[]tuple.OrderEntry{tuple.Lit("Event")})
	p.Rule("boom", ev, func(c *Ctx, t *tuple.Tuple) {
		if t.Int("n") == 3 {
			panic("boom")
		}
	})
	s, err := p.Start(context.Background(), Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := int64(0); i < 5; i++ {
		if err := s.Put(tuple.New(ev, tuple.Int(i))); err != nil {
			break // already terminal: also fine
		}
	}
	err = s.Quiesce(context.Background())
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("Quiesce after rule panic = %v, want boom", err)
	}
}

// TestSessionPutUndeclaredTable: an undeclared table is an error on the
// producer side, not a panic on the coordinator.
func TestSessionPutUndeclaredTable(t *testing.T) {
	p, _, _ := sessionProgram()
	other := tuple.MustSchema("Other",
		[]tuple.Column{{Name: "x", Kind: tuple.KindInt}}, nil)
	s, err := p.Start(context.Background(), Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put(tuple.New(other, tuple.Int(1))); err == nil ||
		!strings.Contains(err.Error(), "not declared") {
		t.Errorf("Put(undeclared) = %v, want not-declared error", err)
	}
	if err := s.Put(nil); err == nil {
		t.Error("Put(nil) must error")
	}
}

// TestSessionRunStartsOnce: a Run backs at most one execution, whether via
// Session, Execute, or ExecuteEvents.
func TestSessionRunStartsOnce(t *testing.T) {
	p, _ := shipProgram()
	r, err := p.NewRun(Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Execute(); err != nil {
		t.Fatal(err)
	}
	if err := r.Execute(); err == nil || !strings.Contains(err.Error(), "already started") {
		t.Errorf("second Execute = %v, want already-started error", err)
	}
	if _, err := r.startSession(context.Background()); err == nil {
		t.Error("startSession on an executed run must error")
	}
}

// TestValidateRejectsContradictoryStrategy covers the Sequential/Strategy
// duality satellite: the legacy bool plus a conflicting explicit strategy
// must be rejected before any run is built.
func TestValidateRejectsContradictoryStrategy(t *testing.T) {
	p, _ := shipProgram()
	for _, strat := range []exec.Strategy{exec.ForkJoin, exec.Pipelined} {
		if _, err := p.NewRun(Options{Sequential: true, Strategy: strat}); err == nil ||
			!strings.Contains(err.Error(), "contradicts") {
			t.Errorf("Sequential+%v = %v, want contradiction error", strat, err)
		}
	}
	// The compatible spellings still work.
	for _, opts := range []Options{
		{Sequential: true},
		{Sequential: true, Strategy: exec.Sequential},
		{Strategy: exec.ForkJoin, Threads: 2},
	} {
		if _, err := p.NewRun(opts); err != nil {
			t.Errorf("NewRun(%+v) = %v, want nil", opts, err)
		}
	}
}

// TestValidateRejectsBadKnobs covers Threads < 0 and IngressRing shape.
func TestValidateRejectsBadKnobs(t *testing.T) {
	p, _ := shipProgram()
	if _, err := p.NewRun(Options{Threads: -2}); err == nil ||
		!strings.Contains(err.Error(), "negative") {
		t.Errorf("Threads: -2 = %v, want negative-threads error", err)
	}
	for _, ring := range []int{-1, 3, 100} {
		if _, err := p.NewRun(Options{IngressRing: ring}); err == nil ||
			!strings.Contains(err.Error(), "power of two") {
			t.Errorf("IngressRing: %d = %v, want power-of-two error", ring, err)
		}
	}
	if _, err := p.NewRun(Options{IngressRing: 64, Sequential: true}); err != nil {
		t.Errorf("IngressRing: 64 = %v, want nil", err)
	}
}

// TestValidateUnknownTablesActionable: unknown NoDelta/NoGamma names name
// the declared tables, so the fix is in the message.
func TestValidateUnknownTablesActionable(t *testing.T) {
	p, _ := shipProgram()
	_, err := p.NewRun(Options{NoDelta: []string{"Nope"}})
	if err == nil || !strings.Contains(err.Error(), "declared: Ship") {
		t.Errorf("unknown -noDelta error = %v, want declared-table list", err)
	}
}

// TestSessionIngestionOverlapsExecution proves Put from a non-coordinator
// goroutine does not block on full quiescence: while the executor is busy
// inside a deliberately slow rule, a producer's Put must return. The slow
// rule handshakes via channels so the test is deterministic: the put
// happens strictly while the drain is mid-step.
func TestSessionIngestionOverlapsExecution(t *testing.T) {
	p := NewProgram()
	ev := p.Table("Event", []tuple.Column{{Name: "n", Kind: tuple.KindInt}},
		[]tuple.OrderEntry{tuple.Lit("Event")})
	inBody := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	p.Rule("slow", ev, func(c *Ctx, t *tuple.Tuple) {
		once.Do(func() {
			close(inBody)
			<-release
		})
	})
	p.Put(tuple.New(ev, tuple.Int(0)))
	s, err := p.Start(context.Background(), Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	<-inBody // the coordinator is now parked inside the first firing
	putDone := make(chan error, 1)
	go func() { putDone <- s.Put(tuple.New(ev, tuple.Int(1))) }()
	select {
	case err := <-putDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Put blocked on a mid-drain executor: ingestion does not overlap execution")
	}
	close(release)
	if err := s.Quiesce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Snapshot(ev)); got != 2 {
		t.Errorf("Event has %d tuples, want 2", got)
	}
}

// TestSessionBackpressure: a full ingress ring gates producers instead of
// growing without bound, and absorbing events releases them.
func TestSessionBackpressure(t *testing.T) {
	p := NewProgram()
	ev := p.Table("Event", []tuple.Column{{Name: "n", Kind: tuple.KindInt}},
		[]tuple.OrderEntry{tuple.Lit("Event")})
	inBody := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	p.Rule("slow", ev, func(c *Ctx, t *tuple.Tuple) {
		once.Do(func() {
			close(inBody)
			<-release
		})
	})
	p.Put(tuple.New(ev, tuple.Int(-1)))
	const ring = 8
	s, err := p.Start(context.Background(), Options{Sequential: true, IngressRing: ring})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	<-inBody
	// Fill the ring while the coordinator is parked, then one more: that
	// publisher must gate until the coordinator absorbs.
	for i := 0; i < ring; i++ {
		if err := s.Put(tuple.New(ev, tuple.Int(int64(i)))); err != nil {
			t.Fatal(err)
		}
	}
	gated := make(chan error, 1)
	go func() { gated <- s.Put(tuple.New(ev, tuple.Int(int64(ring)))) }()
	select {
	case <-gated:
		t.Fatal("Put into a full ingress ring returned without backpressure")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	if err := <-gated; err != nil {
		t.Fatal(err)
	}
	if err := s.Quiesce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Snapshot(ev)); got != ring+2 {
		t.Errorf("Event has %d tuples, want %d", got, ring+2)
	}
}

// TestSessionPutBatchLargerThanRing: one PutBatch bigger than the whole
// ingress ring must complete — the coordinator absorbs mid-batch because
// each publish wakes it, rather than deadlocking on a full ring with the
// wake-up still unsent.
func TestSessionPutBatchLargerThanRing(t *testing.T) {
	p, ev, out := sessionProgram()
	const ring = 8
	s, err := p.Start(context.Background(), Options{Sequential: true, IngressRing: ring})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Quiesce(context.Background()); err != nil {
		t.Fatal(err) // idle at quiescence before the oversized batch
	}
	const n = 5 * ring
	batch := make([]*tuple.Tuple, n)
	for i := range batch {
		batch[i] = tuple.New(ev, tuple.Int(int64(i)))
	}
	done := make(chan error, 1)
	go func() { done <- s.PutBatch(batch...) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("PutBatch larger than the ingress ring deadlocked")
	}
	if err := s.Quiesce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Snapshot(out)); got != n {
		t.Errorf("Out has %d tuples, want %d", got, n)
	}
}

// TestExecuteEventsPropagatesPutError: a rejected event (undeclared table)
// must fail ExecuteEvents, not be silently dropped.
func TestExecuteEventsPropagatesPutError(t *testing.T) {
	p, _, _ := sessionProgram()
	other := tuple.MustSchema("Other",
		[]tuple.Column{{Name: "x", Kind: tuple.KindInt}}, nil)
	r, err := p.NewRun(Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	events := make(chan *tuple.Tuple, 1)
	events <- tuple.New(other, tuple.Int(1))
	close(events)
	if err := r.ExecuteEvents(events); err == nil ||
		!strings.Contains(err.Error(), "not declared") {
		t.Errorf("ExecuteEvents with undeclared-table event = %v, want not-declared error", err)
	}
}

// TestSessionParityWithExecute: the same program reaches the same fixpoint
// whether tuples are initial puts under Execute or external puts into a
// Session — external input is just tuples (§3).
func TestSessionParityWithExecute(t *testing.T) {
	build := func() (*Program, *tuple.Schema, *tuple.Schema) { return sessionProgram() }
	const n = 100

	p1, ev1, out1 := build()
	for i := int64(0); i < n; i++ {
		p1.Put(tuple.New(ev1, tuple.Int(i)))
	}
	run, err := p1.Execute(Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}

	p2, ev2, out2 := build()
	s, err := p2.Start(context.Background(), Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := int64(0); i < n; i++ {
		if err := s.Put(tuple.New(ev2, tuple.Int(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Quiesce(context.Background()); err != nil {
		t.Fatal(err)
	}

	want := renderTable(t, func(fn func(*tuple.Tuple) bool) { run.Gamma().Table(out1).Scan(fn) })
	got := renderTable(t, func(fn func(*tuple.Tuple) bool) { s.Run().Gamma().Table(out2).Scan(fn) })
	if want != got {
		t.Errorf("Session and Execute fixpoints differ:\nexecute: %s\nsession: %s", want, got)
	}
}

func renderTable(t *testing.T, scan func(func(*tuple.Tuple) bool)) string {
	t.Helper()
	var rows []string
	scan(func(tp *tuple.Tuple) bool {
		rows = append(rows, tp.String())
		return true
	})
	return fmt.Sprint(rows)
}
