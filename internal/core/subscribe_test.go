package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/jstar-lang/jstar/internal/exec"
	"github.com/jstar-lang/jstar/internal/tuple"
)

// TestWaitChangeSubscriptionSemantics is the subscription-contract test:
// a subscriber registered mid-run (after some history has already been
// absorbed) sees exactly the quiesced states after registration — one
// wake-up per changing boundary, in order, with no missed and no phantom
// notifications — across all three strategies, under -race.
func TestWaitChangeSubscriptionSemantics(t *testing.T) {
	for _, strat := range []exec.Strategy{exec.Sequential, exec.ForkJoin, exec.Pipelined} {
		t.Run(strat.String(), func(t *testing.T) {
			p, ev, _ := sessionProgram()
			s, err := p.Start(context.Background(), Options{
				Strategy: strat, Threads: 4, Quiet: true})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			bg := context.Background()

			// Pre-subscription history the subscriber must not be woken for.
			if err := s.PutBatch(tuple.New(ev, tuple.Int(1)), tuple.New(ev, tuple.Int(2))); err != nil {
				t.Fatal(err)
			}
			if err := s.Quiesce(bg); err != nil {
				t.Fatal(err)
			}
			since, err := s.TableVersion("Out")
			if err != nil {
				t.Fatal(err)
			}
			if since == 0 {
				t.Fatal("Out version still 0 after a changing quiescence")
			}

			// No change since registration: the wait must time out rather
			// than deliver a phantom notification for the old history.
			short, cancel := context.WithTimeout(bg, 100*time.Millisecond)
			if _, err := s.WaitChange(short, "Out", since); !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("phantom notification: WaitChange = %v, want deadline", err)
			}
			cancel()

			// Each subsequent changing boundary wakes the subscriber exactly
			// once, with consecutive generations — none missed, none doubled.
			for i := 0; i < 4; i++ {
				// Arm the waiter before the change lands so the wake-up path
				// (not just the fast re-check) is exercised.
				type res struct {
					v   int64
					err error
				}
				got := make(chan res, 1)
				go func(since int64) {
					v, err := s.WaitChange(bg, "Out", since)
					got <- res{v, err}
				}(since)
				if err := s.Put(tuple.New(ev, tuple.Int(int64(100+i)))); err != nil {
					t.Fatal(err)
				}
				if err := s.Quiesce(bg); err != nil {
					t.Fatal(err)
				}
				r := <-got
				if r.err != nil {
					t.Fatal(r.err)
				}
				if r.v != since+1 {
					t.Fatalf("change %d woke at generation %d, want %d", i, r.v, since+1)
				}
				since = r.v
				if v, _ := s.TableVersion("Out"); v != since {
					t.Fatalf("TableVersion = %d after wake at %d", v, since)
				}
			}

			// A duplicate put leaves Gamma unchanged: the boundary must not
			// bump the generation, so the subscriber stays asleep.
			if err := s.Put(tuple.New(ev, tuple.Int(100))); err != nil {
				t.Fatal(err)
			}
			if err := s.Quiesce(bg); err != nil {
				t.Fatal(err)
			}
			short, cancel = context.WithTimeout(bg, 100*time.Millisecond)
			if v, err := s.WaitChange(short, "Out", since); !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("duplicate put notified: v=%d err=%v", v, err)
			}
			cancel()
		})
	}
}

// TestWaitChangeCoalesces: a subscriber that polls less often than the
// session quiesces still converges — it observes the latest generation
// (changes coalesce) and never a generation that did not happen.
func TestWaitChangeCoalesces(t *testing.T) {
	p, ev, _ := sessionProgram()
	s, err := p.Start(context.Background(), Options{Sequential: true, Quiet: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	bg := context.Background()
	base, _ := s.TableVersion("Out")
	const boundaries = 5
	for i := 0; i < boundaries; i++ {
		if err := s.Put(tuple.New(ev, tuple.Int(int64(i)))); err != nil {
			t.Fatal(err)
		}
		if err := s.Quiesce(bg); err != nil {
			t.Fatal(err)
		}
	}
	v, err := s.WaitChange(bg, "Out", base)
	if err != nil {
		t.Fatal(err)
	}
	if v != base+boundaries {
		t.Fatalf("coalesced wake at %d, want %d", v, base+boundaries)
	}
}

// TestWaitChangeTerminal: unknown tables error up front; close and ctx
// cancellation both end a pending wait with the documented errors.
func TestWaitChangeTerminal(t *testing.T) {
	p, _, _ := sessionProgram()
	s, err := p.Start(context.Background(), Options{Sequential: true, Quiet: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.TableVersion("Nope"); err == nil {
		t.Error("TableVersion(Nope) = nil error")
	}
	if _, err := s.WaitChange(context.Background(), "Nope", 0); err == nil {
		t.Error("WaitChange(Nope) = nil error")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancelled := make(chan error, 1)
	go func() {
		_, err := s.WaitChange(ctx, "Out", 0)
		cancelled <- err
	}()
	cancel()
	if err := <-cancelled; !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled wait = %v", err)
	}
	closed := make(chan error, 1)
	go func() {
		_, err := s.WaitChange(context.Background(), "Out", 0)
		closed <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the waiter park
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-closed; !errors.Is(err, ErrSessionClosed) {
		t.Errorf("wait across Close = %v, want ErrSessionClosed", err)
	}
	if _, err := s.WaitChange(context.Background(), "Out", 0); !errors.Is(err, ErrSessionClosed) {
		t.Errorf("wait after Close = %v, want ErrSessionClosed", err)
	}
}

// TestTableVersionsNoGamma: tables excluded from Gamma have no queryable
// state, so their generation must stay pinned at zero.
func TestTableVersionsNoGamma(t *testing.T) {
	p, ev, out := sessionProgram()
	s, err := p.Start(context.Background(), Options{
		Sequential: true, Quiet: true, NoGamma: []string{"Out"}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put(tuple.New(ev, tuple.Int(1))); err != nil {
		t.Fatal(err)
	}
	if err := s.Quiesce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.TableVersion("Event"); v != 1 {
		t.Errorf("Event version = %d, want 1", v)
	}
	if v, _ := s.TableVersion("Out"); v != 0 {
		t.Errorf("noGamma Out version = %d, want 0", v)
	}
	_ = out
}
