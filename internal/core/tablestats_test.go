package core

import (
	"fmt"
	"testing"

	"github.com/jstar-lang/jstar/internal/exec"
	"github.com/jstar-lang/jstar/internal/gamma"
	"github.com/jstar-lang/jstar/internal/tuple"
)

// statsProgram builds a small two-table program with fully predictable
// counters: ten initial A tuples, a rule putting B(k%5) per A (ten puts,
// five duplicates), and a rule per live B querying A with a one-column
// prefix (five indexed queries).
func statsProgram() (*Program, *tuple.Schema, *tuple.Schema) {
	p := NewProgram()
	a := p.Table("A", []tuple.Column{{Name: "k", Kind: tuple.KindInt}},
		[]tuple.OrderEntry{tuple.Lit("A")})
	b := p.Table("B", []tuple.Column{{Name: "k", Kind: tuple.KindInt}},
		[]tuple.OrderEntry{tuple.Lit("B")})
	p.Order("A", "B")
	p.Rule("aToB", a, func(c *Ctx, t *tuple.Tuple) {
		c.PutNew(b, tuple.Int(t.Int("k")%5))
	})
	p.Rule("bQueriesA", b, func(c *Ctx, t *tuple.Tuple) {
		c.ForEach(a, gamma.Query{Prefix: []tuple.Value{t.Get("k")}},
			func(*tuple.Tuple) bool { return true })
	})
	for k := int64(0); k < 10; k++ {
		p.Put(tuple.New(a, tuple.Int(k)))
	}
	return p, a, b
}

// TestTableStatsExactAcrossStrategies asserts the per-table counters are
// exact — not approximately consistent — under every execution strategy.
// All ten A tuples share one causal class, so their firings (and the B
// dedup) land identically regardless of how chunks are scheduled; the
// CI race step runs this under -race, making the counters' atomicity a
// tested property rather than a convention.
func TestTableStatsExactAcrossStrategies(t *testing.T) {
	for _, strat := range []exec.Strategy{exec.Sequential, exec.ForkJoin, exec.Pipelined} {
		t.Run(strat.String(), func(t *testing.T) {
			p, _, _ := statsProgram()
			run, err := p.Execute(Options{Strategy: strat, Threads: 4, Quiet: true})
			if err != nil {
				t.Fatal(err)
			}
			st := run.Stats()
			type want struct {
				puts, dups, triggers, queries, indexed, plen, minp int64
			}
			wants := map[string]want{
				"A": {puts: 10, dups: 0, triggers: 10, queries: 5, indexed: 5, plen: 5, minp: 1},
				"B": {puts: 10, dups: 5, triggers: 5, queries: 0, indexed: 0, plen: 0, minp: 0},
			}
			for name, w := range wants {
				ts := st.Tables[name]
				got := want{
					puts:     ts.Puts.Load(),
					dups:     ts.Duplicates.Load(),
					triggers: ts.Triggers.Load(),
					queries:  ts.Queries.Load(),
					indexed:  ts.IndexedQueries.Load(),
					plen:     ts.PrefixLenSum.Load(),
					minp:     ts.MinPrefixLen.Load(),
				}
				if got != w {
					t.Errorf("%s: counters %+v, want %+v", name, got, w)
				}
			}
		})
	}
}

// TestTableStatsBatchedQueryAccounting: ForEachBatch must count one query
// (and one indexed query) per element of the probe sequence, exactly as a
// loop of ForEach calls would.
func TestTableStatsBatchedQueryAccounting(t *testing.T) {
	p := NewProgram()
	a := p.Table("A", []tuple.Column{{Name: "k", Kind: tuple.KindInt}},
		[]tuple.OrderEntry{tuple.Lit("A")})
	b := p.Table("B", []tuple.Column{{Name: "k", Kind: tuple.KindInt}},
		[]tuple.OrderEntry{tuple.Lit("B")})
	p.Order("A", "B")
	r := p.Rule("probe", b, func(c *Ctx, t *tuple.Tuple) {
		c.ForEach(a, gamma.Query{Prefix: []tuple.Value{t.Get("k")}},
			func(*tuple.Tuple) bool { return true })
	})
	r.BatchBody = func(c *Ctx, ts []*tuple.Tuple) {
		qs := make([]gamma.Query, len(ts))
		for i, t := range ts {
			qs[i] = gamma.Query{Prefix: []tuple.Value{t.Get("k")}}
		}
		c.ForEachBatch(a, qs, ts, func(int, *tuple.Tuple) bool { return true })
	}
	for k := int64(0); k < 8; k++ {
		p.Put(tuple.New(a, tuple.Int(k)))
		p.Put(tuple.New(b, tuple.Int(k)))
	}
	run, err := p.Execute(Options{Sequential: true, Quiet: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := run.Stats().Tables["A"]
	if q, iq, pl, mp := ts.Queries.Load(), ts.IndexedQueries.Load(), ts.PrefixLenSum.Load(), ts.MinPrefixLen.Load(); q != 8 || iq != 8 || pl != 8 || mp != 1 {
		t.Errorf("batched probe counted queries=%d indexed=%d plen=%d minp=%d, want 8/8/8/1", q, iq, pl, mp)
	}
}

// TestRunStatsStoreKinds: the chosen backend of every table is recorded in
// replayable spec form, honouring the selection layering.
func TestRunStatsStoreKinds(t *testing.T) {
	p, _, _ := statsProgram()
	p.GammaHint("A", gamma.NewHashStore(1))
	run, err := p.Execute(Options{
		Sequential: true,
		StorePlan:  gamma.StorePlan{"B": "columnar"},
		Quiet:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	kinds := run.Stats().StoreKinds
	if kinds["A"] != "hash:1" {
		t.Errorf(`kinds["A"] = %q, want "hash:1" (GammaHint)`, kinds["A"])
	}
	if kinds["B"] != "columnar" {
		t.Errorf(`kinds["B"] = %q, want "columnar" (StorePlan)`, kinds["B"])
	}
}

// TestStorePlanOverridesGammaHint: an explicit plan entry must beat the
// programmatic factory hint for the same table.
func TestStorePlanOverridesGammaHint(t *testing.T) {
	p, _, _ := statsProgram()
	p.GammaHint("A", gamma.NewHashStore(1))
	run, err := p.Execute(Options{
		Sequential: true,
		StorePlan:  gamma.StorePlan{"A": "inthash:1"},
		Quiet:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := run.Stats().StoreKinds["A"]; got != "inthash:1" {
		t.Errorf("StorePlan did not override GammaHint: kind %q", got)
	}
}

// TestStorePlanEquivalence: the same program must compute the same result
// set on every plannable backend — stores are an optimisation, never a
// semantic choice.
func TestStorePlanEquivalence(t *testing.T) {
	baseline := map[string]bool{}
	collect := func(plan gamma.StorePlan) map[string]bool {
		p, _, b := statsProgram()
		run, err := p.Execute(Options{Sequential: true, StorePlan: plan, Quiet: true})
		if err != nil {
			t.Fatal(err)
		}
		out := map[string]bool{}
		run.Gamma().Table(b).Scan(func(tp *tuple.Tuple) bool {
			out[fmt.Sprint(tp.Int("k"))] = true
			return true
		})
		return out
	}
	baseline = collect(nil)
	if len(baseline) != 5 {
		t.Fatalf("baseline B has %d tuples, want 5", len(baseline))
	}
	for _, spec := range []string{"tree", "skip", "hash:1", "inthash:1", "columnar"} {
		got := collect(gamma.StorePlan{"A": spec, "B": spec})
		if len(got) != len(baseline) {
			t.Errorf("plan %q: %d B tuples, want %d", spec, len(got), len(baseline))
		}
		for k := range baseline {
			if !got[k] {
				t.Errorf("plan %q: missing B(%s)", spec, k)
			}
		}
	}
}
