package delta

import (
	"math/rand"
	"slices"
	"sync"
	"testing"

	"github.com/jstar-lang/jstar/internal/order"
	"github.com/jstar-lang/jstar/internal/tuple"
)

// bulkSchemas: three tables, two sharing a top-level literal (they must
// land in one partition) and one with its own.
func bulkSchemas() (*order.PartialOrder, []*tuple.Schema) {
	po := order.NewPartialOrder()
	mk := func(name, lit string, id int32) *tuple.Schema {
		s := tuple.MustSchema(name,
			[]tuple.Column{{Name: "t", Kind: tuple.KindInt}, {Name: "v", Kind: tuple.KindInt}},
			[]tuple.OrderEntry{tuple.Lit(lit), tuple.Seq("t")})
		s.SetID(id)
		po.Touch(lit)
		return s
	}
	a := mk("BA", "L1", 0)
	b := mk("BB", "L1", 1)
	c := mk("BC", "L2", 2)
	return po, []*tuple.Schema{a, b, c}
}

// drainAllBatches drains a tree to a flat []string of batch contents, with
// each batch internally sorted (intra-batch order is unspecified).
func drainAllBatches(tr *Tree) []string {
	var out []string
	for {
		b := tr.TakeMinBatch()
		if b == nil {
			return out
		}
		var lines []string
		for _, t := range b {
			lines = append(lines, t.String())
		}
		slices.Sort(lines)
		out = append(out, "batch:")
		out = append(out, lines...)
	}
}

// TestSplitBulkMatchesPutBatch: loading a ComparePath-sorted flush through
// SplitBulk+PutPart — serially or with one goroutine per part — must yield
// a tree that drains identically to the PutBatch reference, with the same
// added and duplicate counts.
func TestSplitBulkMatchesPutBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 80; trial++ {
		po, schemas := bulkSchemas()
		var ts []*tuple.Tuple
		for i := 0; i < rng.Intn(200); i++ {
			s := schemas[rng.Intn(len(schemas))]
			ts = append(ts, tuple.New(s,
				tuple.Int(int64(rng.Intn(8))), tuple.Int(int64(rng.Intn(6)))))
		}
		ref := NewSequential(po)
		refTs := append([]*tuple.Tuple(nil), ts...)
		refDups := 0
		refAdded := ref.PutBatch(refTs, func(*tuple.Tuple) { refDups++ })
		want := drainAllBatches(ref)

		for _, concurrent := range []bool{false, true} {
			tr := NewSequential(po)
			sorted := append([]*tuple.Tuple(nil), ts...)
			slices.SortFunc(sorted, tuple.ComparePath)
			parts := tr.SplitBulk(sorted)
			if len(ts) > 0 && parts == nil {
				t.Fatalf("trial %d: SplitBulk returned nil for a literal top level", trial)
			}
			total := 0
			for i := range parts {
				total += parts[i].Len()
			}
			if total != len(ts) {
				t.Fatalf("trial %d: parts cover %d tuples, want %d", trial, total, len(ts))
			}
			var dupMu sync.Mutex
			dups, added := 0, 0
			if concurrent {
				var wg sync.WaitGroup
				addCh := make(chan int, len(parts))
				for i := range parts {
					wg.Add(1)
					go func(p BulkPart) {
						defer wg.Done()
						addCh <- tr.PutPart(p, func(*tuple.Tuple) {
							dupMu.Lock()
							dups++
							dupMu.Unlock()
						})
					}(parts[i])
				}
				wg.Wait()
				close(addCh)
				for a := range addCh {
					added += a
				}
			} else {
				for i := range parts {
					added += tr.PutPart(parts[i], func(*tuple.Tuple) { dups++ })
				}
			}
			if added != refAdded || dups != refDups {
				t.Fatalf("trial %d concurrent=%v: added=%d dups=%d, reference added=%d dups=%d",
					trial, concurrent, added, dups, refAdded, refDups)
			}
			got := drainAllBatches(tr)
			if !slices.Equal(got, want) {
				t.Fatalf("trial %d concurrent=%v: drained sequence differs\ngot:  %v\nwant: %v",
					trial, concurrent, got, want)
			}
		}
	}
}

// TestSplitBulkDataDependentTopLevel: a seq top level cannot be
// partitioned safely — SplitBulk must decline so the caller falls back to
// the serial PutSorted.
func TestSplitBulkDataDependentTopLevel(t *testing.T) {
	s := tuple.MustSchema("SeqTop",
		[]tuple.Column{{Name: "t", Kind: tuple.KindInt}},
		[]tuple.OrderEntry{tuple.Seq("t")})
	tr := NewSequential(order.NewPartialOrder())
	ts := []*tuple.Tuple{tuple.New(s, tuple.Int(1)), tuple.New(s, tuple.Int(2))}
	slices.SortFunc(ts, tuple.ComparePath)
	if parts := tr.SplitBulk(ts); parts != nil {
		t.Fatalf("SplitBulk = %d parts for a seq top level, want nil", len(parts))
	}
	if tr.PutSorted(ts, nil) != 2 || tr.Len() != 2 {
		t.Fatalf("PutSorted fallback failed: len=%d", tr.Len())
	}
}

// TestPutSortedSpineReuse: PutSorted must be equivalent to PutBatch even
// when the input is not actually sorted (sortedness is a locality
// contract only).
func TestPutSortedUnsortedInputStillCorrect(t *testing.T) {
	po, schemas := bulkSchemas()
	rng := rand.New(rand.NewSource(5))
	var ts []*tuple.Tuple
	for i := 0; i < 100; i++ {
		s := schemas[rng.Intn(len(schemas))]
		ts = append(ts, tuple.New(s, tuple.Int(int64(rng.Intn(5))), tuple.Int(int64(rng.Intn(4)))))
	}
	ref := NewSequential(po)
	ref.PutBatch(append([]*tuple.Tuple(nil), ts...), nil)
	tr := NewSequential(po)
	tr.PutSorted(ts, nil) // deliberately unsorted
	if got, want := drainAllBatches(tr), drainAllBatches(ref); !slices.Equal(got, want) {
		t.Fatalf("PutSorted on unsorted input drained differently\ngot:  %v\nwant: %v", got, want)
	}
}

// TestSplitBulkNRangeSplitMatchesPutBatch: the level-1 range refinement on
// a hot-table flush — randomized runs dominated by one table, loaded
// through SplitBulkN's locked sub-parts (serially and with one goroutine
// per part) — must drain identically to the serial PutBatch reference,
// with matching added/duplicate counts.
func TestSplitBulkNRangeSplitMatchesPutBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 40; trial++ {
		po, schemas := bulkSchemas()
		hot := schemas[0] // BA dominates: the subtree a plain SplitBulk serialises
		n := rangeSplitMin + rng.Intn(4*rangeSplitMin)
		var ts []*tuple.Tuple
		for i := 0; i < n; i++ {
			s := hot
			if rng.Intn(10) == 0 {
				s = schemas[1+rng.Intn(2)] // sprinkle of BB (same lit) and BC
			}
			// Narrow key domain: duplicates and equal-key clusters are the
			// interesting cases for boundary placement.
			ts = append(ts, tuple.New(s,
				tuple.Int(int64(rng.Intn(n/4+1))), tuple.Int(int64(rng.Intn(3)))))
		}
		ref := NewSequential(po)
		refDups := 0
		refAdded := ref.PutBatch(append([]*tuple.Tuple(nil), ts...), func(*tuple.Tuple) { refDups++ })
		want := drainAllBatches(ref)

		for _, width := range []int{2, 4, 7} {
			for _, concurrent := range []bool{false, true} {
				tr := NewSequential(po)
				sorted := append([]*tuple.Tuple(nil), ts...)
				slices.SortFunc(sorted, tuple.ComparePath)
				parts := tr.SplitBulkN(sorted, width)
				if parts == nil {
					t.Fatalf("trial %d width=%d: SplitBulkN returned nil for a literal top level", trial, width)
				}
				split := 0
				total := 0
				for i := range parts {
					total += parts[i].Len()
					if parts[i].locked {
						split++
					}
				}
				if total != len(ts) {
					t.Fatalf("trial %d width=%d: parts cover %d tuples, want %d", trial, width, total, len(ts))
				}
				if split < 2 {
					t.Fatalf("trial %d width=%d: hot table was not range-split (%d locked parts of %d)",
						trial, width, split, len(parts))
				}
				var dupMu sync.Mutex
				dups, added := 0, 0
				if concurrent {
					var wg sync.WaitGroup
					addCh := make(chan int, len(parts))
					for i := range parts {
						wg.Add(1)
						go func(p BulkPart) {
							defer wg.Done()
							addCh <- tr.PutPart(p, func(*tuple.Tuple) {
								dupMu.Lock()
								dups++
								dupMu.Unlock()
							})
						}(parts[i])
					}
					wg.Wait()
					close(addCh)
					for a := range addCh {
						added += a
					}
				} else {
					for i := range parts {
						added += tr.PutPart(parts[i], func(*tuple.Tuple) { dups++ })
					}
				}
				if added != refAdded || dups != refDups {
					t.Fatalf("trial %d width=%d concurrent=%v: added=%d dups=%d, reference added=%d dups=%d",
						trial, width, concurrent, added, dups, refAdded, refDups)
				}
				if got := drainAllBatches(tr); !slices.Equal(got, want) {
					t.Fatalf("trial %d width=%d concurrent=%v: drained sequence differs from PutBatch reference",
						trial, width, concurrent)
				}
			}
		}
	}
}

// TestSplitBulkNLiteralLevel1FallsBack: a schema whose level-1 orderby is
// another literal is not range-splittable (runs are not sorted by the
// shared rank space) — SplitBulkN must keep the per-top-node partition.
func TestSplitBulkNLiteralLevel1FallsBack(t *testing.T) {
	po := order.NewPartialOrder()
	po.Touch("L1")
	po.Touch("inner")
	s := tuple.MustSchema("LitLit",
		[]tuple.Column{{Name: "t", Kind: tuple.KindInt}},
		[]tuple.OrderEntry{tuple.Lit("L1"), tuple.Lit("inner"), tuple.Seq("t")})
	s.SetID(7)
	var ts []*tuple.Tuple
	for i := 0; i < 4*rangeSplitMin; i++ {
		ts = append(ts, tuple.New(s, tuple.Int(int64(i))))
	}
	slices.SortFunc(ts, tuple.ComparePath)
	tr := NewSequential(po)
	parts := tr.SplitBulkN(ts, 4)
	if len(parts) != 1 || parts[0].locked {
		t.Fatalf("SplitBulkN = %d parts (locked=%v), want 1 unlocked part", len(parts), len(parts) > 0 && parts[0].locked)
	}
}
