// Package delta implements the Delta set — the temporary area where newly
// put tuples await processing (paper §3, §5, Fig 3).
//
// The Delta set is organised as a single tree containing tuples from many
// tables, sorted lexicographically by the orderby lists of those tables:
// level i of the tree is sorted by the ith entries of the orderby lists.
// A literal level is ordered by the program's `order` declarations, a
// `seq f` level by the value of field f, and a `par f` level is unordered
// (its whole subtree is one parallel equivalence class). The leaves hold
// sets of tuples that are all equivalent under the causality ordering, so
// they can be executed in parallel ("all-minimums" strategy).
//
// The tree doubles as a multi-level priority queue with duplicate
// elimination — a plain priority queue is not sufficient because duplicate
// tuples must be discarded on insert (paper footnote 5).
//
// Concurrency contract: Put may be called from many goroutines at once
// (rule tasks inserting future tuples), but TakeMinBatch is only called by
// the engine coordinator between execution steps, with no concurrent Puts.
// This mirrors the paper's execution loop, where a step's tasks all complete
// before the next minimum batch is extracted.
package delta

import (
	"fmt"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/jstar-lang/jstar/internal/llrb"
	"github.com/jstar-lang/jstar/internal/order"
	"github.com/jstar-lang/jstar/internal/skiplist"
	"github.com/jstar-lang/jstar/internal/tuple"
)

// childMap stores the ordered children of an interior Delta-tree node,
// keyed by the resolved orderby component at that level (literal rank as an
// int Value, or the tuple's field value).
type childMap interface {
	getOrCreate(key tuple.Value, mk func() *node) *node
	min() (tuple.Value, *node, bool)
	remove(key tuple.Value) bool
	size() int
	each(fn func(tuple.Value, *node) bool)
}

// seqChildMap is the sequential implementation (Java TreeMap analogue).
type seqChildMap struct {
	t *llrb.Tree[childEntry]
}

type childEntry struct {
	key tuple.Value
	nd  *node
}

func newSeqChildMap() childMap {
	return &seqChildMap{t: llrb.New(func(a, b childEntry) int { return tuple.Compare(a.key, b.key) })}
}

func (m *seqChildMap) getOrCreate(key tuple.Value, mk func() *node) *node {
	if e, ok := m.t.GetEqual(childEntry{key: key}); ok {
		return e.nd
	}
	nd := mk()
	m.t.Insert(childEntry{key: key, nd: nd})
	return nd
}

func (m *seqChildMap) min() (tuple.Value, *node, bool) {
	e, ok := m.t.Min()
	return e.key, e.nd, ok
}

func (m *seqChildMap) remove(key tuple.Value) bool { return m.t.Delete(childEntry{key: key}) }
func (m *seqChildMap) size() int                   { return m.t.Len() }

func (m *seqChildMap) each(fn func(tuple.Value, *node) bool) {
	m.t.Ascend(func(e childEntry) bool { return fn(e.key, e.nd) })
}

// concChildMap is the parallel implementation (ConcurrentSkipListMap
// analogue). Puts from many rule tasks race on it safely.
type concChildMap struct {
	m *skiplist.Map[tuple.Value, *node]
}

func newConcChildMap() childMap {
	return &concChildMap{m: skiplist.NewMap[tuple.Value, *node](tuple.Compare)}
}

func (m *concChildMap) getOrCreate(key tuple.Value, mk func() *node) *node {
	return m.m.GetOrCreate(key, mk)
}

func (m *concChildMap) min() (tuple.Value, *node, bool) { return m.m.Min() }
func (m *concChildMap) remove(key tuple.Value) bool     { return m.m.Delete(key) }
func (m *concChildMap) size() int                       { return m.m.Len() }

func (m *concChildMap) each(fn func(tuple.Value, *node) bool) {
	m.m.Ascend(fn)
}

// leafSet is a deduplicating set of tuples that end at one tree node — one
// causal equivalence class. A single mutex per leaf is intentional: threads
// inserting into the same branch contend here, which is exactly the Delta
// tree scalability limit the paper observes on Dijkstra (§6.5).
type leafSet struct {
	mu sync.Mutex
	m  map[uint64][]*tuple.Tuple
	n  int
}

// add inserts t if not already present; reports whether added.
func (l *leafSet) add(t *tuple.Tuple) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.m == nil {
		l.m = make(map[uint64][]*tuple.Tuple)
	}
	h := t.Hash()
	for _, e := range l.m[h] {
		if e.Equal(t) {
			return false
		}
	}
	l.m[h] = append(l.m[h], t)
	l.n++
	return true
}

// drain removes and returns all tuples.
func (l *leafSet) drain(buf []*tuple.Tuple) []*tuple.Tuple {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, bucket := range l.m {
		buf = append(buf, bucket...)
	}
	l.m = nil
	l.n = 0
	return buf
}

func (l *leafSet) count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// node is one Delta-tree node: tuples whose orderby list ends here, plus
// ordered children for tuples that continue to deeper levels.
type node struct {
	leaf leafSet

	childInit sync.Once
	children  childMap
	childKind tuple.OrderKind // kind of the level below; fixed at first use
}

// Tree is the Delta set. Create with NewSequential or NewConcurrent.
type Tree struct {
	po         *order.PartialOrder
	root       *node
	size       atomic.Int64
	dups       atomic.Int64 // duplicates discarded (usage statistics, §1.5)
	concurrent bool
	newMap     func() childMap
	// splitMu orders the level-1 child-map mutations of range-split bulk
	// parts (BulkPart.locked): the parts own disjoint key ranges, so only
	// the shared parent's map structure needs the short lock — everything
	// below a level-1 node stays lock-free private work.
	splitMu sync.Mutex
}

// NewSequential returns a Delta tree backed by red-black trees, matching the
// -sequential code generator's TreeMap choice.
func NewSequential(po *order.PartialOrder) *Tree {
	return &Tree{po: po, root: &node{}, newMap: newSeqChildMap}
}

// NewConcurrent returns a Delta tree backed by concurrent skip lists,
// matching the parallel code generator's ConcurrentSkipListMap choice.
func NewConcurrent(po *order.PartialOrder) *Tree {
	return &Tree{po: po, root: &node{}, concurrent: true, newMap: newConcChildMap}
}

// Concurrent reports which backend the tree uses.
func (tr *Tree) Concurrent() bool { return tr.concurrent }

// Len returns the number of queued tuples.
func (tr *Tree) Len() int { return int(tr.size.Load()) }

// Empty reports whether no tuples are queued.
func (tr *Tree) Empty() bool { return tr.size.Load() == 0 }

// Duplicates returns how many inserts the tree itself discarded as
// duplicates (Put collisions and bulk-load tuples equal to one already
// queued). Since the k-way merge flush, same-step duplicates are dropped
// before the tree sees them and show up only in the engine's per-table
// counters, not here.
func (tr *Tree) Duplicates() int64 { return tr.dups.Load() }

// Put inserts t, returning false if an equal tuple was already queued.
// Safe for concurrent use.
func (tr *Tree) Put(t *tuple.Tuple) bool {
	s := t.Schema()
	n := tr.root
	for i, e := range s.OrderBy {
		var key tuple.Value
		var kind tuple.OrderKind
		switch e.Kind {
		case tuple.OrderLit:
			key = tuple.Int(int64(tr.po.Rank(e.Lit)))
			kind = tuple.OrderLit
		case tuple.OrderSeq:
			key = t.Field(s.OrderByColumn(i))
			kind = tuple.OrderSeq
		case tuple.OrderPar:
			key = t.Field(s.OrderByColumn(i))
			kind = tuple.OrderPar
		}
		n.childInit.Do(func() {
			n.children = tr.newMap()
			n.childKind = kind
		})
		if n.childKind != kind {
			panic(fmt.Sprintf("jstar: table %s orderby entry %d (%v) conflicts with sibling tables at the same Delta-tree level (%v)",
				s.Name, i, kind, n.childKind))
		}
		n = n.children.getOrCreate(key, func() *node { return &node{} })
	}
	if !n.leaf.add(t) {
		tr.dups.Add(1)
		return false
	}
	tr.size.Add(1)
	return true
}

// resolveKey returns the child-map key and kind for orderby level i of t's
// schema.
func (tr *Tree) resolveKey(t *tuple.Tuple, i int) (tuple.Value, tuple.OrderKind) {
	s := t.Schema()
	e := s.OrderBy[i]
	if e.Kind == tuple.OrderLit {
		return tuple.Int(int64(tr.po.Rank(e.Lit))), tuple.OrderLit
	}
	return t.Field(s.OrderByColumn(i)), e.Kind
}

// PutBatch inserts all of ts, calling dup (if non-nil) for each tuple
// discarded as a duplicate, and returns the number actually added. The batch
// is sorted in place by Delta-tree path (tuple.ComparePath — a key-based
// slices.SortFunc, no reflection-closure sort) so consecutive inserts share
// tree descents; tuples whose paths match the previous tuple's reuse the
// cached node spine instead of descending from the root.
//
// PutBatch is the legacy one-shot flush path: it must not race with Put,
// TakeMinBatch, or another PutBatch. The engine's step boundary now seals
// per-slot runs pre-sorted in this same order and feeds the merged stream
// through PutSorted/PutPart, skipping this sort entirely.
func (tr *Tree) PutBatch(ts []*tuple.Tuple, dup func(*tuple.Tuple)) int {
	if len(ts) == 0 {
		return 0
	}
	if len(ts) > 1 {
		slices.SortFunc(ts, tuple.ComparePath)
	}
	return tr.PutSorted(ts, dup)
}

// PutSorted is PutBatch for a batch already sorted by tuple.ComparePath
// (the order sealed slot runs and their k-way merge produce): it skips the
// sort and goes straight to the spine-sharing insert loop. Sortedness is a
// locality contract, not a correctness one — out-of-order input still
// inserts correctly, just with fewer shared descents.
func (tr *Tree) PutSorted(ts []*tuple.Tuple, dup func(*tuple.Tuple)) int {
	added := tr.putRun(tr.root, 0, ts, dup, noLock)
	tr.size.Add(int64(added))
	return added
}

// noLock disables putRun's splitMu protection (the single-loader paths).
const noLock = -1

// putRun inserts one path-contiguous run of tuples, descending from start
// (the node reached after resolving the first `level` path components of
// every tuple in the run). spine[i] caches the node reached after level
// start+i of the previous tuple's path, so path-sorted runs descend once
// per distinct path, not once per tuple. Returns the number added; the
// caller folds it into tr.size.
//
// lockAt >= 0 marks the one descent level where this run shares its parent
// node's child map with concurrently loading range-split siblings
// (BulkPart.locked): mutations at exactly that level take tr.splitMu.
// Spine reuse means the lock is paid once per distinct key at that level,
// not once per tuple; all deeper levels are private to this part's key
// range and stay lock-free.
func (tr *Tree) putRun(start *node, level int, ts []*tuple.Tuple, dup func(*tuple.Tuple), lockAt int) int {
	added := 0
	var spine []*node
	var prev *tuple.Tuple
	for _, t := range ts {
		depth := len(t.Schema().OrderBy)
		// Longest prefix of the path shared with the previous tuple.
		shared := level
		if prev != nil {
			maxShare := level + len(spine)
			if depth < maxShare {
				maxShare = depth
			}
			for shared < maxShare {
				ka, kinda := tr.resolveKey(t, shared)
				kb, kindb := tr.resolveKey(prev, shared)
				if kinda != kindb || tuple.Compare(ka, kb) != 0 {
					break
				}
				shared++
			}
		}
		n := start
		if shared > level {
			n = spine[shared-level-1]
		}
		spine = spine[:shared-level]
		for i := shared; i < depth; i++ {
			key, kind := tr.resolveKey(t, i)
			if i == lockAt {
				tr.splitMu.Lock()
			}
			n.childInit.Do(func() {
				n.children = tr.newMap()
				n.childKind = kind
			})
			if n.childKind != kind {
				if i == lockAt {
					tr.splitMu.Unlock()
				}
				panic(fmt.Sprintf("jstar: table %s orderby entry %d (%v) conflicts with sibling tables at the same Delta-tree level (%v)",
					t.Schema().Name, i, kind, n.childKind))
			}
			n = n.children.getOrCreate(key, func() *node { return &node{} })
			if i == lockAt {
				tr.splitMu.Unlock()
			}
			spine = append(spine, n)
		}
		prev = t
		if n.leaf.add(t) {
			added++
		} else {
			tr.dups.Add(1)
			if dup != nil {
				dup(t)
			}
		}
	}
	return added
}

// BulkPart is one independently loadable partition of a flush batch: runs
// of tuples whose Delta-tree paths all pass through (or end at) one
// pre-created node, so concurrent PutPart calls on distinct parts never
// mutate a shared interior map. Produced by SplitBulk.
type BulkPart struct {
	start *node
	level int
	runs  [][]*tuple.Tuple
	// locked marks a range-split part: its runs share start's child map
	// with sibling parts covering other key ranges, so PutPart guards
	// mutations at exactly that level with Tree.splitMu.
	locked bool
}

// Len returns the number of tuples in the part.
func (p *BulkPart) Len() int {
	n := 0
	for _, r := range p.runs {
		n += len(r)
	}
	return n
}

// SplitBulk partitions a ComparePath-sorted flush into parts that may be
// bulk-loaded concurrently (one PutPart call per part, any goroutine
// each): the top Delta-tree level is resolved and its child nodes are
// created here, on the caller, so the parts only ever touch disjoint
// subtrees below them. Tables sharing a top-level literal land in the same
// part; tables whose paths end at the root are safe in any part (the root
// leaf set carries its own lock) and join the first.
//
// It returns nil when the batch cannot be partitioned — a data-dependent
// (seq/par) top level, where sibling tables' key spaces can alias — in
// which case the caller should fall back to PutSorted. Must not race with
// Put/TakeMinBatch, like every bulk path.
func (tr *Tree) SplitBulk(ts []*tuple.Tuple) []BulkPart {
	return tr.SplitBulkN(ts, 0)
}

// rangeSplitMin is the smallest dominant part worth range-splitting: below
// it, the quantile scan plus per-key splitMu traffic costs more than the
// serial load it would parallelise.
const rangeSplitMin = 512

// SplitBulkN is SplitBulk with intra-table sharding: after the per-top-node
// partition, any part that dominates the flush (a single hot table, or a
// literal-sharing group) and is ordered by a data-dependent level-1 key is
// further split into up to `width` key ranges, so the hot subtree loads in
// parallel instead of becoming the serial chokepoint. width <= 1 disables
// the refinement (identical to SplitBulk). Sub-parts of a range split are
// marked locked — PutPart serialises only their level-1 child-map touches.
func (tr *Tree) SplitBulkN(ts []*tuple.Tuple, width int) []BulkPart {
	parts := tr.splitBulk(ts)
	if width <= 1 || len(parts) == 0 {
		return parts
	}
	out := parts[:0:0]
	for _, p := range parts {
		if sub := tr.rangeSplit(p, width, len(ts)); sub != nil {
			out = append(out, sub...)
		} else {
			out = append(out, p)
		}
	}
	return out
}

func (tr *Tree) splitBulk(ts []*tuple.Tuple) []BulkPart {
	var parts []BulkPart
	byNode := make(map[*node]int)
	for lo := 0; lo < len(ts); {
		s := ts[lo].Schema()
		hi := lo + 1
		for hi < len(ts) && ts[hi].Schema() == s {
			hi++
		}
		run := ts[lo:hi:hi]
		lo = hi
		var start *node
		var level int
		if len(s.OrderBy) == 0 {
			start, level = tr.root, 0
		} else {
			e := s.OrderBy[0]
			if e.Kind != tuple.OrderLit {
				return nil // data-dependent top level: not partitionable
			}
			key := tuple.Int(int64(tr.po.Rank(e.Lit)))
			n := tr.root
			n.childInit.Do(func() {
				n.children = tr.newMap()
				n.childKind = tuple.OrderLit
			})
			if n.childKind != tuple.OrderLit {
				panic(fmt.Sprintf("jstar: table %s orderby entry 0 (%v) conflicts with sibling tables at the same Delta-tree level (%v)",
					s.Name, tuple.OrderLit, n.childKind))
			}
			start = n.children.getOrCreate(key, func() *node { return &node{} })
			level = 1
		}
		if i, ok := byNode[start]; ok {
			parts[i].runs = append(parts[i].runs, run)
			continue
		}
		byNode[start] = len(parts)
		parts = append(parts, BulkPart{start: start, level: level, runs: [][]*tuple.Tuple{run}})
	}
	return parts
}

// rangeSplit refines one hot part into disjoint level-1 key ranges. It
// returns nil when the part is not worth splitting or not splittable: a
// non-dominant or small part, a literal level-1 (keys are shared partial-
// order ranks the runs are not sorted by), or a split that would leave
// fewer than two non-empty ranges. Every run in a splittable part is
// ComparePath-sorted, which within one schema means sorted by its first
// seq/par orderby column — so range boundaries are binary searches and
// equal keys (hence set-semantics duplicates) never straddle a boundary.
func (tr *Tree) rangeSplit(p BulkPart, width, total int) []BulkPart {
	if p.level != 1 || p.Len() < rangeSplitMin || p.Len()*2 < total {
		return nil
	}
	// The longest run supplies the quantile boundaries; depth-1 schemas end
	// at the shared start node (leaf-only, self-locked) and ride in the
	// first sub-part.
	var longest []*tuple.Tuple
	for _, run := range p.runs {
		s := run[0].Schema()
		if len(s.OrderBy) < 2 {
			continue
		}
		if k := s.OrderBy[1].Kind; k != tuple.OrderSeq && k != tuple.OrderPar {
			return nil
		}
		if len(run) > len(longest) {
			longest = run
		}
	}
	if len(longest) < 2 {
		return nil
	}
	key := func(t *tuple.Tuple) tuple.Value {
		return t.Field(t.Schema().OrderByColumn(1))
	}
	// Quantile boundary keys, deduplicated: sub-part i covers the half-open
	// range [bounds[i-1], bounds[i]), so tuples with equal keys always land
	// together. tuple.Compare totally orders values across schemas' column
	// kinds, the same order the level-1 child map uses.
	var bounds []tuple.Value
	for j := 1; j < width; j++ {
		b := key(longest[j*len(longest)/width])
		if len(bounds) == 0 || tuple.Compare(bounds[len(bounds)-1], b) < 0 {
			bounds = append(bounds, b)
		}
	}
	if len(bounds) == 0 {
		return nil
	}
	sub := make([]BulkPart, len(bounds)+1)
	for i := range sub {
		sub[i] = BulkPart{start: p.start, level: p.level, locked: true}
	}
	for _, run := range p.runs {
		if len(run[0].Schema().OrderBy) < 2 {
			sub[0].runs = append(sub[0].runs, run)
			continue
		}
		lo := 0
		for bi, b := range bounds {
			hi := lo + sort.Search(len(run)-lo, func(i int) bool {
				return tuple.Compare(key(run[lo+i]), b) >= 0
			})
			if hi > lo {
				sub[bi].runs = append(sub[bi].runs, run[lo:hi:hi])
			}
			lo = hi
		}
		if lo < len(run) {
			sub[len(bounds)].runs = append(sub[len(bounds)].runs, run[lo:len(run):len(run)])
		}
	}
	out := sub[:0]
	for _, q := range sub {
		if len(q.runs) > 0 {
			out = append(out, q)
		}
	}
	if len(out) < 2 {
		return nil
	}
	return out
}

// PutPart bulk-loads one SplitBulk partition. Distinct parts of the same
// split may run concurrently (the sharded flush path); the usual bulk
// contract still holds against Put/TakeMinBatch. dup may be called from
// the loading goroutine and must be safe under the split's concurrency.
func (tr *Tree) PutPart(p BulkPart, dup func(*tuple.Tuple)) int {
	lockAt := noLock
	if p.locked {
		lockAt = p.level
	}
	added := 0
	for _, run := range p.runs {
		added += tr.putRun(p.start, p.level, run, dup, lockAt)
	}
	tr.size.Add(int64(added))
	return added
}

// TakeMinBatch removes and returns the minimal causal equivalence class:
// all tuples that may execute in parallel at this step. It returns nil when
// the tree is empty. Must not race with Put (see the package contract).
func (tr *Tree) TakeMinBatch() []*tuple.Tuple {
	if tr.Empty() {
		return nil
	}
	batch := tr.takeMin(tr.root, nil)
	tr.size.Add(int64(-len(batch)))
	return batch
}

func (tr *Tree) takeMin(n *node, buf []*tuple.Tuple) []*tuple.Tuple {
	// Tuples ending at this node come before anything deeper.
	if n.leaf.count() > 0 {
		return n.leaf.drain(buf)
	}
	if n.children == nil {
		return buf
	}
	if n.childKind == tuple.OrderPar {
		// A par level is one equivalence class: drain the entire subtree.
		return tr.drainAll(n, buf)
	}
	for {
		key, child, ok := n.children.min()
		if !ok {
			return buf
		}
		got := tr.takeMin(child, buf)
		if empty(child) {
			n.children.remove(key)
		}
		if len(got) > len(buf) {
			return got
		}
		// Child was empty shell (already drained); removed above, retry.
		buf = got
	}
}

// drainAll removes every tuple in the subtree rooted at n.
func (tr *Tree) drainAll(n *node, buf []*tuple.Tuple) []*tuple.Tuple {
	buf = n.leaf.drain(buf)
	if n.children == nil {
		return buf
	}
	var keys []tuple.Value
	n.children.each(func(k tuple.Value, child *node) bool {
		buf = tr.drainAll(child, buf)
		keys = append(keys, k)
		return true
	})
	for _, k := range keys {
		n.children.remove(k)
	}
	return buf
}

func empty(n *node) bool {
	if n.leaf.count() > 0 {
		return false
	}
	return n.children == nil || n.children.size() == 0
}

// PeekMinKey returns the causal key of the current minimal class, for
// logging and visualisation. It returns false when empty.
func (tr *Tree) PeekMinKey() (order.Key, bool) {
	var comps []order.Component
	n := tr.root
	for {
		if n.leaf.count() > 0 || n.children == nil {
			break
		}
		key, child, ok := n.children.min()
		if !ok {
			break
		}
		switch n.childKind {
		case tuple.OrderLit:
			comps = append(comps, order.Component{Kind: tuple.OrderLit, Rank: int(key.AsInt())})
		default:
			comps = append(comps, order.Component{Kind: n.childKind, Val: key})
		}
		n = child
	}
	if len(comps) == 0 && tr.Empty() {
		return order.Key{}, false
	}
	return order.Key{Components: comps}, true
}

// Walk visits every queued tuple (weakly consistent under concurrent Puts);
// used by the graph visualiser.
func (tr *Tree) Walk(fn func(t *tuple.Tuple) bool) {
	tr.walk(tr.root, fn)
}

func (tr *Tree) walk(n *node, fn func(t *tuple.Tuple) bool) bool {
	n.leaf.mu.Lock()
	var snapshot []*tuple.Tuple
	for _, b := range n.leaf.m {
		snapshot = append(snapshot, b...)
	}
	n.leaf.mu.Unlock()
	for _, t := range snapshot {
		if !fn(t) {
			return false
		}
	}
	if n.children == nil {
		return true
	}
	ok := true
	n.children.each(func(_ tuple.Value, child *node) bool {
		ok = tr.walk(child, fn)
		return ok
	})
	return ok
}
