package delta

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/jstar-lang/jstar/internal/order"
	"github.com/jstar-lang/jstar/internal/tuple"
)

func shipSchema() *tuple.Schema {
	return tuple.MustSchema("Ship",
		[]tuple.Column{
			{Name: "frame", Kind: tuple.KindInt},
			{Name: "x", Kind: tuple.KindInt},
		},
		[]tuple.OrderEntry{tuple.Lit("Int"), tuple.Seq("frame")})
}

func ship(s *tuple.Schema, frame, x int64) *tuple.Tuple {
	return tuple.New(s, tuple.Int(frame), tuple.Int(x))
}

func bothTrees(t *testing.T, name string, fn func(t *testing.T, tr *Tree)) {
	t.Helper()
	t.Run(name+"/sequential", func(t *testing.T) { fn(t, NewSequential(order.NewPartialOrder())) })
	t.Run(name+"/concurrent", func(t *testing.T) { fn(t, NewConcurrent(order.NewPartialOrder())) })
}

func TestPutAndTakeOrdered(t *testing.T) {
	bothTrees(t, "ordered", func(t *testing.T, tr *Tree) {
		s := shipSchema()
		// Insert frames out of order.
		for _, f := range []int64{5, 1, 3} {
			if !tr.Put(ship(s, f, 0)) {
				t.Fatalf("Put frame %d", f)
			}
		}
		if tr.Len() != 3 || tr.Empty() {
			t.Fatalf("Len = %d", tr.Len())
		}
		var frames []int64
		for {
			b := tr.TakeMinBatch()
			if b == nil {
				break
			}
			if len(b) != 1 {
				t.Fatalf("batch size %d", len(b))
			}
			frames = append(frames, b[0].Int("frame"))
		}
		if len(frames) != 3 || frames[0] != 1 || frames[1] != 3 || frames[2] != 5 {
			t.Errorf("extraction order %v", frames)
		}
		if !tr.Empty() {
			t.Error("tree should be empty")
		}
	})
}

func TestEquivalenceClassBatch(t *testing.T) {
	bothTrees(t, "class", func(t *testing.T, tr *Tree) {
		s := shipSchema()
		// 11 Ships within frame 18 -> one batch of 11 parallel tasks (§5).
		for x := int64(0); x < 11; x++ {
			tr.Put(ship(s, 18, x))
		}
		tr.Put(ship(s, 19, 0))
		b := tr.TakeMinBatch()
		if len(b) != 11 {
			t.Fatalf("batch = %d tuples, want 11", len(b))
		}
		for _, tp := range b {
			if tp.Int("frame") != 18 {
				t.Errorf("wrong frame in batch: %v", tp)
			}
		}
		if b2 := tr.TakeMinBatch(); len(b2) != 1 || b2[0].Int("frame") != 19 {
			t.Errorf("second batch wrong: %v", b2)
		}
	})
}

func TestDuplicateDiscarded(t *testing.T) {
	bothTrees(t, "dup", func(t *testing.T, tr *Tree) {
		s := shipSchema()
		if !tr.Put(ship(s, 1, 1)) {
			t.Fatal("first put")
		}
		if tr.Put(ship(s, 1, 1)) {
			t.Error("duplicate must be discarded (set-oriented semantics)")
		}
		if tr.Len() != 1 || tr.Duplicates() != 1 {
			t.Errorf("Len=%d dups=%d", tr.Len(), tr.Duplicates())
		}
	})
}

func TestLitLevelOrdering(t *testing.T) {
	// order Req < PvWatts < SumMonth: all Req tuples first, etc. (Fig 4)
	mk := func(concurrent bool) *Tree {
		po := order.NewPartialOrder()
		if err := po.Declare("Req", "PvWatts", "SumMonth"); err != nil {
			t.Fatal(err)
		}
		if concurrent {
			return NewConcurrent(po)
		}
		return NewSequential(po)
	}
	req := tuple.MustSchema("PvWattsRequest",
		[]tuple.Column{{Name: "filename", Kind: tuple.KindString}},
		[]tuple.OrderEntry{tuple.Lit("Req")})
	pv := tuple.MustSchema("PvWatts",
		[]tuple.Column{{Name: "month", Kind: tuple.KindInt}},
		[]tuple.OrderEntry{tuple.Lit("PvWatts")})
	sum := tuple.MustSchema("SumMonth",
		[]tuple.Column{{Name: "month", Kind: tuple.KindInt}},
		[]tuple.OrderEntry{tuple.Lit("SumMonth")})
	for _, conc := range []bool{false, true} {
		tr := mk(conc)
		tr.Put(tuple.New(sum, tuple.Int(3)))
		tr.Put(tuple.New(pv, tuple.Int(1)))
		tr.Put(tuple.New(req, tuple.String_("f.csv")))
		tr.Put(tuple.New(pv, tuple.Int(2)))
		var names []string
		for {
			b := tr.TakeMinBatch()
			if b == nil {
				break
			}
			names = append(names, b[0].Schema().Name)
		}
		// PvWatts batch contains both pv tuples at once (same class).
		want := []string{"PvWattsRequest", "PvWatts", "SumMonth"}
		if len(names) != 3 {
			t.Fatalf("conc=%v: batches %v", conc, names)
		}
		for i := range want {
			if names[i] != want[i] {
				t.Fatalf("conc=%v: batch order %v, want %v", conc, names, want)
			}
		}
	}
}

func TestDijkstraStyleMixedTables(t *testing.T) {
	// Estimate and Done share levels (Int, seq distance, <Lit>) with
	// Estimate < Done: at equal distance Estimates extract first.
	po := order.NewPartialOrder()
	if err := po.Declare("Estimate", "Done"); err != nil {
		t.Fatal(err)
	}
	est := tuple.MustSchema("Estimate",
		[]tuple.Column{{Name: "vertex", Kind: tuple.KindInt}, {Name: "distance", Kind: tuple.KindInt}},
		[]tuple.OrderEntry{tuple.Lit("Int"), tuple.Seq("distance"), tuple.Lit("Estimate")})
	done := tuple.MustSchema("Done",
		[]tuple.Column{{Name: "vertex", Kind: tuple.KindInt}, {Name: "distance", Kind: tuple.KindInt}},
		[]tuple.OrderEntry{tuple.Lit("Int"), tuple.Seq("distance"), tuple.Lit("Done")})
	tr := NewConcurrent(po)
	tr.Put(tuple.New(done, tuple.Int(0), tuple.Int(5)))
	tr.Put(tuple.New(est, tuple.Int(1), tuple.Int(5)))
	tr.Put(tuple.New(est, tuple.Int(2), tuple.Int(3)))

	b := tr.TakeMinBatch()
	if len(b) != 1 || b[0].Schema().Name != "Estimate" || b[0].Int("distance") != 3 {
		t.Fatalf("first batch %v", b)
	}
	b = tr.TakeMinBatch()
	if len(b) != 1 || b[0].Schema().Name != "Estimate" || b[0].Int("distance") != 5 {
		t.Fatalf("second batch %v (Estimate must precede Done at distance 5)", b)
	}
	b = tr.TakeMinBatch()
	if len(b) != 1 || b[0].Schema().Name != "Done" {
		t.Fatalf("third batch %v", b)
	}
}

func TestParLevelExtractsWholeSubtree(t *testing.T) {
	po := order.NewPartialOrder()
	s := tuple.MustSchema("T",
		[]tuple.Column{{Name: "step", Kind: tuple.KindInt}, {Name: "part", Kind: tuple.KindInt}},
		[]tuple.OrderEntry{tuple.Seq("step"), tuple.Par("part")})
	tr := NewConcurrent(po)
	for p := int64(0); p < 5; p++ {
		tr.Put(tuple.New(s, tuple.Int(1), tuple.Int(p)))
	}
	for p := int64(0); p < 3; p++ {
		tr.Put(tuple.New(s, tuple.Int(2), tuple.Int(p)))
	}
	b := tr.TakeMinBatch()
	if len(b) != 5 {
		t.Fatalf("par batch = %d, want 5", len(b))
	}
	for _, tp := range b {
		if tp.Int("step") != 1 {
			t.Errorf("wrong step in par batch: %v", tp)
		}
	}
	if b = tr.TakeMinBatch(); len(b) != 3 {
		t.Fatalf("second par batch = %d, want 3", len(b))
	}
}

func TestShortOrderbyExtractsBeforeDeeper(t *testing.T) {
	// A table whose orderby ends at depth 1 extracts before tables that
	// continue deeper under the same prefix.
	po := order.NewPartialOrder()
	shallow := tuple.MustSchema("Shallow",
		[]tuple.Column{{Name: "v", Kind: tuple.KindInt}},
		[]tuple.OrderEntry{tuple.Lit("Int")})
	deep := tuple.MustSchema("Deep",
		[]tuple.Column{{Name: "t", Kind: tuple.KindInt}},
		[]tuple.OrderEntry{tuple.Lit("Int"), tuple.Seq("t")})
	tr := NewSequential(po)
	tr.Put(tuple.New(deep, tuple.Int(0)))
	tr.Put(tuple.New(shallow, tuple.Int(9)))
	b := tr.TakeMinBatch()
	if len(b) != 1 || b[0].Schema().Name != "Shallow" {
		t.Fatalf("prefix tuples must extract first, got %v", b)
	}
}

func TestMismatchedLevelKindPanics(t *testing.T) {
	po := order.NewPartialOrder()
	a := tuple.MustSchema("A", []tuple.Column{{Name: "v", Kind: tuple.KindInt}},
		[]tuple.OrderEntry{tuple.Seq("v")})
	b := tuple.MustSchema("B", []tuple.Column{{Name: "v", Kind: tuple.KindInt}},
		[]tuple.OrderEntry{tuple.Lit("B")})
	tr := NewSequential(po)
	tr.Put(tuple.New(a, tuple.Int(1)))
	defer func() {
		if recover() == nil {
			t.Error("conflicting level kinds must panic (ill-typed program)")
		}
	}()
	tr.Put(tuple.New(b, tuple.Int(1)))
}

func TestEmptyOrderbyGoesToRootLeaf(t *testing.T) {
	po := order.NewPartialOrder()
	s := tuple.MustSchema("Cmd", []tuple.Column{{Name: "v", Kind: tuple.KindInt}}, nil)
	tr := NewSequential(po)
	tr.Put(tuple.New(s, tuple.Int(1)))
	tr.Put(tuple.New(s, tuple.Int(2)))
	b := tr.TakeMinBatch()
	if len(b) != 2 {
		t.Fatalf("root leaf batch = %d", len(b))
	}
	if tr.TakeMinBatch() != nil {
		t.Error("tree should be drained")
	}
}

func TestTakeFromEmpty(t *testing.T) {
	tr := NewSequential(order.NewPartialOrder())
	if tr.TakeMinBatch() != nil {
		t.Error("TakeMinBatch on empty must return nil")
	}
}

func TestPeekMinKey(t *testing.T) {
	po := order.NewPartialOrder()
	tr := NewSequential(po)
	if _, ok := tr.PeekMinKey(); ok {
		t.Error("PeekMinKey on empty")
	}
	s := shipSchema()
	tr.Put(ship(s, 7, 0))
	k, ok := tr.PeekMinKey()
	if !ok || len(k.Components) != 2 {
		t.Fatalf("PeekMinKey = %v, %v", k, ok)
	}
	if k.Components[1].Val.AsInt() != 7 {
		t.Errorf("min key frame = %v", k.Components[1].Val)
	}
}

func TestWalkVisitsAll(t *testing.T) {
	tr := NewConcurrent(order.NewPartialOrder())
	s := shipSchema()
	for i := int64(0); i < 20; i++ {
		tr.Put(ship(s, i%4, i))
	}
	n := 0
	tr.Walk(func(*tuple.Tuple) bool { n++; return true })
	if n != 20 {
		t.Errorf("Walk visited %d, want 20", n)
	}
	n = 0
	tr.Walk(func(*tuple.Tuple) bool { n++; return n < 5 })
	if n != 5 {
		t.Errorf("Walk early stop visited %d", n)
	}
}

func TestConcurrentPuts(t *testing.T) {
	po := order.NewPartialOrder()
	tr := NewConcurrent(po)
	s := shipSchema()
	const workers = 8
	const per = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < per; i++ {
				tr.Put(ship(s, int64(r.Intn(50)), int64(w*per+i)))
			}
		}(w)
	}
	wg.Wait()
	if tr.Len() != workers*per {
		t.Fatalf("Len = %d, want %d", tr.Len(), workers*per)
	}
	// Drain in order; batches must be non-increasing in priority and
	// jointly complete.
	total := 0
	last := int64(-1)
	for {
		b := tr.TakeMinBatch()
		if b == nil {
			break
		}
		f := b[0].Int("frame")
		if f < last {
			t.Fatalf("batches out of order: %d after %d", f, last)
		}
		for _, tp := range b {
			if tp.Int("frame") != f {
				t.Fatal("mixed frames in one batch")
			}
		}
		last = f
		total += len(b)
	}
	if total != workers*per {
		t.Fatalf("drained %d, want %d", total, workers*per)
	}
}

func TestConcurrentDuplicatePuts(t *testing.T) {
	po := order.NewPartialOrder()
	tr := NewConcurrent(po)
	s := shipSchema()
	const workers = 8
	var wg sync.WaitGroup
	var added sync.Map
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(0); i < 1000; i++ {
				if tr.Put(ship(s, i%10, i)) {
					if _, loaded := added.LoadOrStore(i, true); loaded {
						t.Error("same tuple added twice")
					}
				}
			}
		}()
	}
	wg.Wait()
	if tr.Len() != 1000 {
		t.Fatalf("Len = %d, want 1000 unique", tr.Len())
	}
}

func BenchmarkDeltaPutSequential(b *testing.B) {
	tr := NewSequential(order.NewPartialOrder())
	s := shipSchema()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Put(ship(s, int64(i%1000), int64(i)))
	}
}

func BenchmarkDeltaPutConcurrent(b *testing.B) {
	tr := NewConcurrent(order.NewPartialOrder())
	s := shipSchema()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := int64(0)
		for pb.Next() {
			tr.Put(ship(s, i%1000, i*7919))
			i++
		}
	})
}

func BenchmarkDeltaDrain(b *testing.B) {
	s := shipSchema()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tr := NewSequential(order.NewPartialOrder())
		for j := int64(0); j < 1000; j++ {
			tr.Put(ship(s, j, j))
		}
		b.StartTimer()
		for tr.TakeMinBatch() != nil {
		}
	}
}
