package delta

import (
	"testing"
	"testing/quick"

	"github.com/jstar-lang/jstar/internal/order"
	"github.com/jstar-lang/jstar/internal/tuple"
)

// TestDrainOrderProperty: for arbitrary insert sets, TakeMinBatch drains
// batches in non-decreasing causal-key order, each batch is one
// equivalence class, and the union of batches equals the unique inserts.
func TestDrainOrderProperty(t *testing.T) {
	s := tuple.MustSchema("E",
		[]tuple.Column{
			{Name: "t", Kind: tuple.KindInt},
			{Name: "v", Kind: tuple.KindInt},
		},
		[]tuple.OrderEntry{tuple.Lit("Int"), tuple.Seq("t")})
	for _, concurrent := range []bool{false, true} {
		f := func(pairs []struct{ T, V int8 }) bool {
			po := order.NewPartialOrder()
			var tr *Tree
			if concurrent {
				tr = NewConcurrent(po)
			} else {
				tr = NewSequential(po)
			}
			uniq := map[[2]int8]bool{}
			for _, p := range pairs {
				tr.Put(tuple.New(s, tuple.Int(int64(p.T)), tuple.Int(int64(p.V))))
				uniq[[2]int8{p.T, p.V}] = true
			}
			if tr.Len() != len(uniq) {
				return false
			}
			drained := 0
			lastT := int64(-1 << 30)
			for {
				batch := tr.TakeMinBatch()
				if batch == nil {
					break
				}
				bt := batch[0].Int("t")
				if bt < lastT {
					return false // batches must be non-decreasing
				}
				for _, tp := range batch {
					if tp.Int("t") != bt {
						return false // one equivalence class per batch
					}
					if !uniq[[2]int8{int8(tp.Int("t")), int8(tp.Int("v"))}] {
						return false // unknown tuple surfaced
					}
					drained++
				}
				lastT = bt
			}
			return drained == len(uniq) && tr.Empty()
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Errorf("concurrent=%v: %v", concurrent, err)
		}
	}
}

// TestReinsertAfterDrain verifies the tree is reusable across steps with
// interleaved puts (the engine's actual pattern).
func TestReinsertAfterDrain(t *testing.T) {
	s := tuple.MustSchema("E",
		[]tuple.Column{{Name: "t", Kind: tuple.KindInt}},
		[]tuple.OrderEntry{tuple.Seq("t")})
	tr := NewConcurrent(order.NewPartialOrder())
	tr.Put(tuple.New(s, tuple.Int(1)))
	total := 0
	for {
		b := tr.TakeMinBatch()
		if b == nil {
			break
		}
		total += len(b)
		if v := b[0].Int("t"); v < 5 {
			// Rules put strictly-future tuples while processing a batch.
			tr.Put(tuple.New(s, tuple.Int(v+1)))
			tr.Put(tuple.New(s, tuple.Int(v+1))) // duplicate, discarded
		}
	}
	if total != 5 {
		t.Errorf("drained %d tuples, want 5", total)
	}
}
