// Package disruptor implements a Disruptor-style ring buffer — the data
// transfer substrate of the §6.3 PvWatts redesign. It reproduces the LMAX
// Disruptor mechanics the paper tunes in Table 1: a pre-allocated power-of-
// two ring, a single producer claiming slots in batches, multiple consumers
// each with their own sequence, pluggable wait strategies (blocking,
// yielding, busy-spin), and cache-line-padded sequences to avoid false
// sharing. Object slots are recycled rather than garbage collected.
package disruptor

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Sequence is a cache-line padded monotonic counter. The padding keeps each
// consumer's sequence on its own cache line — the "carefully designed to
// reduce cache line contention" property of the original.
type Sequence struct {
	_ [7]int64
	v atomic.Int64
	_ [7]int64
}

// Load returns the current value.
func (s *Sequence) Load() int64 { return s.v.Load() }

// Store sets the value.
func (s *Sequence) Store(x int64) { s.v.Store(x) }

// WaitStrategy controls how a goroutine waits for a sequence to advance.
type WaitStrategy interface {
	// WaitFor blocks until load() >= target, returning the observed value.
	WaitFor(target int64, load func() int64) int64
	// Signal wakes blocked waiters after a sequence advances.
	Signal()
	// Name is the strategy's display name for Table-1 style reports.
	Name() string
}

// BlockingWait parks waiters on a condition variable: lowest CPU use,
// highest wake-up latency. The paper's best PvWatts setting.
type BlockingWait struct {
	mu   sync.Mutex
	cond *sync.Cond
	once sync.Once
}

func (w *BlockingWait) init() { w.cond = sync.NewCond(&w.mu) }

// WaitFor implements WaitStrategy.
func (w *BlockingWait) WaitFor(target int64, load func() int64) int64 {
	if v := load(); v >= target {
		return v
	}
	w.once.Do(w.init)
	w.mu.Lock()
	defer w.mu.Unlock()
	for {
		if v := load(); v >= target {
			return v
		}
		w.cond.Wait()
	}
}

// Signal implements WaitStrategy.
func (w *BlockingWait) Signal() {
	w.once.Do(w.init)
	w.mu.Lock()
	w.cond.Broadcast()
	w.mu.Unlock()
}

// Name implements WaitStrategy.
func (w *BlockingWait) Name() string { return "BlockingWaitStrategy" }

// YieldingWait spins, yielding the processor between checks.
type YieldingWait struct{}

// WaitFor implements WaitStrategy.
func (YieldingWait) WaitFor(target int64, load func() int64) int64 {
	for {
		if v := load(); v >= target {
			return v
		}
		runtime.Gosched()
	}
}

// Signal implements WaitStrategy.
func (YieldingWait) Signal() {}

// Name implements WaitStrategy.
func (YieldingWait) Name() string { return "YieldingWaitStrategy" }

// BusySpinWait spins without yielding: lowest latency, burns a core.
type BusySpinWait struct{}

// WaitFor implements WaitStrategy.
func (BusySpinWait) WaitFor(target int64, load func() int64) int64 {
	for i := 0; ; i++ {
		if v := load(); v >= target {
			return v
		}
		if i%1024 == 1023 {
			// Safety valve so GOMAXPROCS=1 tests cannot livelock.
			runtime.Gosched()
		}
	}
}

// Signal implements WaitStrategy.
func (BusySpinWait) Signal() {}

// Name implements WaitStrategy.
func (BusySpinWait) Name() string { return "BusySpinWaitStrategy" }

// Ring is a single-producer multi-consumer ring buffer of T.
type Ring[T any] struct {
	buf    []T
	mask   int64
	cursor Sequence // highest published sequence; -1 initially
	gating []*Sequence
	wait   WaitStrategy
	closed atomic.Bool
}

// NewRing allocates a ring with the given power-of-two size.
func NewRing[T any](size int, wait WaitStrategy) *Ring[T] {
	if size <= 0 || size&(size-1) != 0 {
		panic(fmt.Sprintf("disruptor: ring size %d is not a power of two", size))
	}
	r := &Ring[T]{buf: make([]T, size), mask: int64(size - 1), wait: wait}
	r.cursor.Store(-1)
	return r
}

// Size returns the ring capacity.
func (r *Ring[T]) Size() int { return len(r.buf) }

// Cursor returns the highest published sequence, -1 before the first
// publish.
func (r *Ring[T]) Cursor() int64 { return r.cursor.Load() }

// WaitConsumed blocks until every registered consumer has processed all
// events published up to and including seq, using the ring's wait strategy.
// This is the producer-side step barrier of the pipelined executor: the
// coordinator publishes a batch of rule firings and waits here for the
// consumer crew to drain them before flushing put buffers.
func (r *Ring[T]) WaitConsumed(seq int64) {
	if seq < 0 {
		return
	}
	r.wait.WaitFor(seq, r.minGating)
}

// Consumer reads every published event, tracked by its own sequence.
type Consumer[T any] struct {
	ring *Ring[T]
	seq  Sequence
}

// NewConsumer registers a consumer. All consumers must be registered before
// the producer publishes the first event.
func (r *Ring[T]) NewConsumer() *Consumer[T] {
	c := &Consumer[T]{ring: r}
	c.seq.Store(-1)
	r.gating = append(r.gating, &c.seq)
	return c
}

func (r *Ring[T]) minGating() int64 {
	min := int64(1<<62 - 1)
	for _, s := range r.gating {
		if v := s.Load(); v < min {
			min = v
		}
	}
	return min
}

// Producer claims ring slots for a single publishing goroutine. claimBatch
// slots are claimed from the gating check at a time (Table 1's "claim slots
// in a batch of 256"), amortising the consumer-sequence scan.
type Producer[T any] struct {
	ring       *Ring[T]
	next       int64 // next sequence to publish
	claimedHi  int64 // highest claimed sequence
	claimBatch int64
}

// NewProducer returns the ring's single producer. Only one producer may
// exist per ring (SingleThreadedClaimStrategy).
func (r *Ring[T]) NewProducer(claimBatch int) *Producer[T] {
	if claimBatch < 1 {
		claimBatch = 1
	}
	if claimBatch > len(r.buf) {
		// Claiming past one full ring revolution can never be granted:
		// the gated slots include ones this producer has yet to publish.
		claimBatch = len(r.buf)
	}
	return &Producer[T]{ring: r, next: 0, claimedHi: -1, claimBatch: int64(claimBatch)}
}

// Publish writes one event into the next slot via fill and makes it visible
// to consumers. It blocks while the ring is full (a slow consumer gates the
// producer — the paper's bottleneck discussion for skewed inputs).
func (p *Producer[T]) Publish(fill func(slot *T)) {
	r := p.ring
	if p.next > p.claimedHi {
		// Claim a fresh batch: the slot p.next+claimBatch-1 wraps over
		// sequence p.next+claimBatch-1-size, which consumers must have passed.
		hi := p.next + p.claimBatch - 1
		wrap := hi - int64(len(r.buf))
		if wrap >= 0 {
			r.wait.WaitFor(wrap, r.minGating)
		}
		p.claimedHi = hi
	}
	fill(&r.buf[p.next&r.mask])
	r.cursor.Store(p.next)
	p.next++
	r.wait.Signal()
}

// Consume processes all events published but not yet seen by this consumer,
// calling handle for each; it blocks until at least one event is available.
// It returns false if handle returned false (consumer shutdown), else true.
func (c *Consumer[T]) Consume(handle func(seq int64, v *T) bool) bool {
	r := c.ring
	next := c.seq.Load() + 1
	avail := r.wait.WaitFor(next, r.cursor.Load)
	for s := next; s <= avail; s++ {
		ok := handle(s, &r.buf[s&r.mask])
		c.seq.Store(s)
		if !ok {
			r.wait.Signal()
			return false
		}
	}
	r.wait.Signal() // unblock a producer gated on our sequence
	return true
}

// Run consumes until handle returns false (e.g. on a sentinel event).
func (c *Consumer[T]) Run(handle func(seq int64, v *T) bool) {
	for c.Consume(handle) {
	}
}

// Options mirror the Table 1 tuning parameters.
type Options struct {
	RingSize   int          // "Size of Ring Buffer", default 1024
	ClaimBatch int          // "Claim slots in a batch of 256"
	Consumers  int          // "Total number of Consumer", default 12
	Wait       WaitStrategy // "Wait Strategy", default BlockingWait
}

// Defaults returns the paper's best PvWatts settings (Table 1).
func Defaults() Options {
	return Options{RingSize: 1024, ClaimBatch: 256, Consumers: 12, Wait: &BlockingWait{}}
}

// String renders the options like Table 1.
func (o Options) String() string {
	return fmt.Sprintf("ring=%d batch=%d consumers=%d wait=%s",
		o.RingSize, o.ClaimBatch, o.Consumers, o.Wait.Name())
}
