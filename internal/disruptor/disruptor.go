// Package disruptor implements a Disruptor-style ring buffer — the data
// transfer substrate of the §6.3 PvWatts redesign. It reproduces the LMAX
// Disruptor mechanics the paper tunes in Table 1: a pre-allocated power-of-
// two ring, a single producer claiming slots in batches, multiple consumers
// each with their own sequence, pluggable wait strategies (blocking,
// yielding, busy-spin), and cache-line-padded sequences to avoid false
// sharing. Object slots are recycled rather than garbage collected.
//
// Rings built with NewMultiRing additionally support concurrent publishers
// (MultiProducer): slots are claimed with a fetch-add on the cursor and
// out-of-order fills are published through a per-slot availability buffer,
// the LMAX multi-producer sequencer. The Session ingress ring uses this
// mode so any number of application goroutines can inject external tuples
// while the engine drains.
package disruptor

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Sequence is a cache-line padded monotonic counter. The padding keeps each
// consumer's sequence on its own cache line — the "carefully designed to
// reduce cache line contention" property of the original.
type Sequence struct {
	_ [7]int64
	v atomic.Int64
	_ [7]int64
}

// Load returns the current value.
func (s *Sequence) Load() int64 { return s.v.Load() }

// Store sets the value.
func (s *Sequence) Store(x int64) { s.v.Store(x) }

// Add atomically adds d and returns the new value.
func (s *Sequence) Add(d int64) int64 { return s.v.Add(d) }

// WaitStrategy controls how a goroutine waits for a sequence to advance.
type WaitStrategy interface {
	// WaitFor blocks until load() >= target, returning the observed value.
	WaitFor(target int64, load func() int64) int64
	// Signal wakes blocked waiters after a sequence advances.
	Signal()
	// Name is the strategy's display name for Table-1 style reports.
	Name() string
}

// BlockingWait parks waiters on a condition variable: lowest CPU use,
// highest wake-up latency. The paper's best PvWatts setting.
type BlockingWait struct {
	mu   sync.Mutex
	cond *sync.Cond
	once sync.Once
}

func (w *BlockingWait) init() { w.cond = sync.NewCond(&w.mu) }

// WaitFor implements WaitStrategy.
func (w *BlockingWait) WaitFor(target int64, load func() int64) int64 {
	if v := load(); v >= target {
		return v
	}
	w.once.Do(w.init)
	w.mu.Lock()
	defer w.mu.Unlock()
	for {
		if v := load(); v >= target {
			return v
		}
		w.cond.Wait()
	}
}

// Signal implements WaitStrategy.
func (w *BlockingWait) Signal() {
	w.once.Do(w.init)
	w.mu.Lock()
	w.cond.Broadcast()
	w.mu.Unlock()
}

// Name implements WaitStrategy.
func (w *BlockingWait) Name() string { return "BlockingWaitStrategy" }

// YieldingWait spins, yielding the processor between checks.
type YieldingWait struct{}

// WaitFor implements WaitStrategy.
func (YieldingWait) WaitFor(target int64, load func() int64) int64 {
	for {
		if v := load(); v >= target {
			return v
		}
		runtime.Gosched()
	}
}

// Signal implements WaitStrategy.
func (YieldingWait) Signal() {}

// Name implements WaitStrategy.
func (YieldingWait) Name() string { return "YieldingWaitStrategy" }

// BusySpinWait spins without yielding: lowest latency, burns a core.
type BusySpinWait struct{}

// WaitFor implements WaitStrategy.
func (BusySpinWait) WaitFor(target int64, load func() int64) int64 {
	for i := 0; ; i++ {
		if v := load(); v >= target {
			return v
		}
		if i%1024 == 1023 {
			// Safety valve so GOMAXPROCS=1 tests cannot livelock.
			runtime.Gosched()
		}
	}
}

// Signal implements WaitStrategy.
func (BusySpinWait) Signal() {}

// Name implements WaitStrategy.
func (BusySpinWait) Name() string { return "BusySpinWaitStrategy" }

// Ring is a multi-consumer ring buffer of T. A ring built with NewRing has
// exactly one producer (Producer); a ring built with NewMultiRing supports
// concurrent publishers through a MultiProducer. In single-producer mode
// cursor is the highest *published* sequence; in multi-producer mode it is
// the highest *claimed* sequence, and per-slot availability flags (avail)
// record which claimed slots have actually been published, exactly the
// LMAX multi-producer sequencer design.
type Ring[T any] struct {
	buf    []T
	mask   int64
	cursor Sequence // highest published (single) / claimed (multi) sequence; -1 initially
	avail  []atomic.Int64
	gating []*Sequence
	wait   WaitStrategy
	closed atomic.Bool
}

// NewRing allocates a ring with the given power-of-two size.
func NewRing[T any](size int, wait WaitStrategy) *Ring[T] {
	if size <= 0 || size&(size-1) != 0 {
		panic(fmt.Sprintf("disruptor: ring size %d is not a power of two", size))
	}
	r := &Ring[T]{buf: make([]T, size), mask: int64(size - 1), wait: wait}
	r.cursor.Store(-1)
	return r
}

// NewMultiRing allocates a ring whose slots may be claimed by many
// concurrent publishers (NewMultiProducer). The availability buffer stores,
// per slot, the sequence last published into it (-1 when never published),
// so consumers can tell a claimed-but-unwritten slot from a published one.
func NewMultiRing[T any](size int, wait WaitStrategy) *Ring[T] {
	r := NewRing[T](size, wait)
	r.avail = make([]atomic.Int64, size)
	for i := range r.avail {
		r.avail[i].Store(-1)
	}
	return r
}

// highestPublished returns the highest sequence h in [lo, hi] such that
// every sequence in [lo, h] has been published, or lo-1 when lo itself is
// still pending. Single-producer rings publish in claim order, so hi is
// already contiguous; multi-producer rings scan the availability buffer up
// to the first gap (a slot another publisher has claimed but not yet
// filled).
func (r *Ring[T]) highestPublished(lo, hi int64) int64 {
	if r.avail == nil {
		return hi
	}
	for s := lo; s <= hi; s++ {
		if r.avail[s&r.mask].Load() != s {
			return s - 1
		}
	}
	return hi
}

// Release marks every registered consumer as caught up arbitrarily far in
// the future and wakes all waiters, permanently un-gating publishers that
// are blocked on a full ring. The consuming side calls it when it shuts
// down: slots written after Release are never read, so publishers race
// only against the garbage collector, never against a dead consumer.
func (r *Ring[T]) Release() {
	for _, s := range r.gating {
		s.Store(1<<62 - 1)
	}
	r.wait.Signal()
}

// Size returns the ring capacity.
func (r *Ring[T]) Size() int { return len(r.buf) }

// Cursor returns the highest published sequence, -1 before the first
// publish.
func (r *Ring[T]) Cursor() int64 { return r.cursor.Load() }

// WaitConsumed blocks until every registered consumer has processed all
// events published up to and including seq, using the ring's wait strategy.
// This is the producer-side step barrier of the pipelined executor: the
// coordinator publishes a batch of rule firings and waits here for the
// consumer crew to drain them before flushing put buffers.
func (r *Ring[T]) WaitConsumed(seq int64) {
	if seq < 0 {
		return
	}
	r.wait.WaitFor(seq, r.minGating)
}

// Consumer reads every published event, tracked by its own sequence.
type Consumer[T any] struct {
	ring *Ring[T]
	seq  Sequence
}

// NewConsumer registers a consumer. All consumers must be registered before
// the producer publishes the first event.
func (r *Ring[T]) NewConsumer() *Consumer[T] {
	c := &Consumer[T]{ring: r}
	c.seq.Store(-1)
	r.gating = append(r.gating, &c.seq)
	return c
}

// Seq returns the highest sequence this consumer has processed, -1 before
// the first event.
func (c *Consumer[T]) Seq() int64 { return c.seq.Load() }

func (r *Ring[T]) minGating() int64 {
	min := int64(1<<62 - 1)
	for _, s := range r.gating {
		if v := s.Load(); v < min {
			min = v
		}
	}
	return min
}

// Producer claims ring slots for a single publishing goroutine. claimBatch
// slots are claimed from the gating check at a time (Table 1's "claim slots
// in a batch of 256"), amortising the consumer-sequence scan.
type Producer[T any] struct {
	ring       *Ring[T]
	next       int64 // next sequence to publish
	claimedHi  int64 // highest claimed sequence
	claimBatch int64
}

// NewProducer returns the ring's single producer. Only one producer may
// exist per ring (SingleThreadedClaimStrategy).
func (r *Ring[T]) NewProducer(claimBatch int) *Producer[T] {
	if claimBatch < 1 {
		claimBatch = 1
	}
	if claimBatch > len(r.buf) {
		// Claiming past one full ring revolution can never be granted:
		// the gated slots include ones this producer has yet to publish.
		claimBatch = len(r.buf)
	}
	return &Producer[T]{ring: r, next: 0, claimedHi: -1, claimBatch: int64(claimBatch)}
}

// Publish writes one event into the next slot via fill and makes it visible
// to consumers. It blocks while the ring is full (a slow consumer gates the
// producer — the paper's bottleneck discussion for skewed inputs).
func (p *Producer[T]) Publish(fill func(slot *T)) {
	r := p.ring
	if p.next > p.claimedHi {
		// Claim a fresh batch: the slot p.next+claimBatch-1 wraps over
		// sequence p.next+claimBatch-1-size, which consumers must have passed.
		hi := p.next + p.claimBatch - 1
		wrap := hi - int64(len(r.buf))
		if wrap >= 0 {
			r.wait.WaitFor(wrap, r.minGating)
		}
		p.claimedHi = hi
	}
	fill(&r.buf[p.next&r.mask])
	r.cursor.Store(p.next)
	p.next++
	r.wait.Signal()
}

// Consume processes all events published but not yet seen by this consumer,
// calling handle for each; it blocks until at least one event is available.
// It returns false if handle returned false (consumer shutdown), else true.
func (c *Consumer[T]) Consume(handle func(seq int64, v *T) bool) bool {
	r := c.ring
	next := c.seq.Load() + 1
	avail := r.wait.WaitFor(next, r.cursor.Load)
	if r.avail != nil {
		// Multi-producer ring: the cursor covers claimed slots, so clamp to
		// the contiguously published prefix. A claimed slot is unpublished
		// only for the handful of instructions between claim and fill, so a
		// brief yield loop is enough.
		for {
			if h := r.highestPublished(next, avail); h >= next {
				avail = h
				break
			}
			runtime.Gosched()
			avail = r.cursor.Load()
		}
	}
	for s := next; s <= avail; s++ {
		ok := handle(s, &r.buf[s&r.mask])
		c.seq.Store(s)
		if !ok {
			r.wait.Signal()
			return false
		}
	}
	r.wait.Signal() // unblock a producer gated on our sequence
	return true
}

// Run consumes until handle returns false (e.g. on a sentinel event).
func (c *Consumer[T]) Run(handle func(seq int64, v *T) bool) {
	for c.Consume(handle) {
	}
}

// Poll processes the events published but not yet seen by this consumer
// without ever blocking, and returns how many were handled (0 when the ring
// is empty). It is the non-blocking sibling of Consume, for coordinators
// that interleave ring draining with other work — the session loop polls
// the ingress ring at each step boundary.
func (c *Consumer[T]) Poll(handle func(seq int64, v *T) bool) int {
	r := c.ring
	next := c.seq.Load() + 1
	avail := r.highestPublished(next, r.cursor.Load())
	n := 0
	for s := next; s <= avail; s++ {
		ok := handle(s, &r.buf[s&r.mask])
		c.seq.Store(s)
		n++
		if !ok {
			break
		}
	}
	if n > 0 {
		r.wait.Signal() // unblock publishers gated on our sequence
	}
	return n
}

// MultiProducer claims ring slots from many goroutines at once: a fetch-add
// on the ring cursor hands each publisher a distinct sequence, and the
// availability buffer publishes out-of-order fills to consumers — the LMAX
// multi-producer sequencer. Build the ring with NewMultiRing.
type MultiProducer[T any] struct {
	ring *Ring[T]
}

// NewMultiProducer returns a publisher handle that may be shared by any
// number of goroutines. The ring must have been built with NewMultiRing.
func (r *Ring[T]) NewMultiProducer() *MultiProducer[T] {
	if r.avail == nil {
		panic("disruptor: NewMultiProducer requires a NewMultiRing ring")
	}
	return &MultiProducer[T]{ring: r}
}

// Claimed returns the highest sequence claimed by any publisher so far
// (-1 before the first publish). Every sequence at or below it has been or
// is about to be published, so it is the watermark a caller waits on to
// know "everything put before now" has been consumed.
func (p *MultiProducer[T]) Claimed() int64 { return p.ring.cursor.Load() }

// Publish claims the next free slot, writes one event via fill, and makes
// it visible to consumers; it returns the published sequence. Safe for
// concurrent use. It blocks while the ring is full — the backpressure that
// stops unbounded producers from outrunning the consuming side.
func (p *MultiProducer[T]) Publish(fill func(slot *T)) int64 {
	r := p.ring
	seq := r.cursor.Add(1)
	if wrap := seq - int64(len(r.buf)); wrap >= 0 {
		r.wait.WaitFor(wrap, r.minGating)
	}
	fill(&r.buf[seq&r.mask])
	r.avail[seq&r.mask].Store(seq)
	r.wait.Signal()
	return seq
}

// Options mirror the Table 1 tuning parameters.
type Options struct {
	RingSize   int          // "Size of Ring Buffer", default 1024
	ClaimBatch int          // "Claim slots in a batch of 256"
	Consumers  int          // "Total number of Consumer", default 12
	Wait       WaitStrategy // "Wait Strategy", default BlockingWait
}

// Defaults returns the paper's best PvWatts settings (Table 1).
func Defaults() Options {
	return Options{RingSize: 1024, ClaimBatch: 256, Consumers: 12, Wait: &BlockingWait{}}
}

// String renders the options like Table 1.
func (o Options) String() string {
	return fmt.Sprintf("ring=%d batch=%d consumers=%d wait=%s",
		o.RingSize, o.ClaimBatch, o.Consumers, o.Wait.Name())
}
