package disruptor

import (
	"sync"
	"sync/atomic"
	"testing"
)

type event struct {
	val      int64
	sentinel bool
}

func strategies() map[string]func() WaitStrategy {
	return map[string]func() WaitStrategy{
		"blocking": func() WaitStrategy { return &BlockingWait{} },
		"yielding": func() WaitStrategy { return YieldingWait{} },
		"busyspin": func() WaitStrategy { return BusySpinWait{} },
	}
}

func TestRingSizeMustBePowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non power-of-two size must panic")
		}
	}()
	NewRing[event](1000, &BlockingWait{})
}

func TestSingleConsumerReceivesAllInOrder(t *testing.T) {
	for name, mk := range strategies() {
		t.Run(name, func(t *testing.T) {
			r := NewRing[event](64, mk())
			c := r.NewConsumer()
			const n = 10000
			var got []int64
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				c.Run(func(_ int64, e *event) bool {
					if e.sentinel {
						return false
					}
					got = append(got, e.val)
					return true
				})
			}()
			p := r.NewProducer(16)
			for i := int64(0); i < n; i++ {
				v := i
				p.Publish(func(e *event) { e.val = v; e.sentinel = false })
			}
			p.Publish(func(e *event) { e.sentinel = true })
			wg.Wait()
			if len(got) != n {
				t.Fatalf("received %d events, want %d", len(got), n)
			}
			for i, v := range got {
				if v != int64(i) {
					t.Fatalf("event %d = %d (order broken)", i, v)
				}
			}
		})
	}
}

func TestAllConsumersSeeEveryEvent(t *testing.T) {
	// Disruptor consumers broadcast: each registered consumer sees the
	// whole stream (PvWatts consumers filter by month themselves).
	r := NewRing[event](128, &BlockingWait{})
	const consumers = 4
	const n = 5000
	sums := make([]int64, consumers)
	var wg sync.WaitGroup
	for i := 0; i < consumers; i++ {
		c := r.NewConsumer()
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c.Run(func(_ int64, e *event) bool {
				if e.sentinel {
					return false
				}
				sums[i] += e.val
				return true
			})
		}(i)
	}
	p := r.NewProducer(256)
	var want int64
	for i := int64(1); i <= n; i++ {
		v := i
		want += v
		p.Publish(func(e *event) { e.val = v; e.sentinel = false })
	}
	p.Publish(func(e *event) { e.sentinel = true })
	wg.Wait()
	for i, s := range sums {
		if s != want {
			t.Errorf("consumer %d sum = %d, want %d", i, s, want)
		}
	}
}

func TestProducerGatedBySlowConsumer(t *testing.T) {
	// Ring of 8 with a consumer that blocks: producer must not overwrite
	// unread slots. We verify no event is lost with a deliberately tiny
	// ring and slow consumer.
	r := NewRing[event](8, &BlockingWait{})
	c := r.NewConsumer()
	const n = 1000
	var count atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.Run(func(seq int64, e *event) bool {
			if e.sentinel {
				return false
			}
			if e.val != seq {
				t.Errorf("slot %d overwritten: val %d", seq, e.val)
				return false
			}
			count.Add(1)
			return true
		})
	}()
	p := r.NewProducer(4)
	for i := int64(0); i < n; i++ {
		v := i
		p.Publish(func(e *event) { e.val = v; e.sentinel = false })
	}
	p.Publish(func(e *event) { e.sentinel = true })
	wg.Wait()
	if count.Load() != n {
		t.Errorf("consumed %d, want %d", count.Load(), n)
	}
}

func TestClaimBatchLargerThanRingStillSafe(t *testing.T) {
	r := NewRing[event](8, YieldingWait{})
	c := r.NewConsumer()
	var wg sync.WaitGroup
	wg.Add(1)
	var count int
	go func() {
		defer wg.Done()
		c.Run(func(_ int64, e *event) bool {
			if e.sentinel {
				return false
			}
			count++
			return true
		})
	}()
	p := r.NewProducer(64) // batch exceeds ring size
	for i := 0; i < 100; i++ {
		p.Publish(func(e *event) { e.sentinel = false })
	}
	p.Publish(func(e *event) { e.sentinel = true })
	wg.Wait()
	if count != 100 {
		t.Errorf("consumed %d", count)
	}
}

func TestMultiProducerAllEventsArriveExactlyOnce(t *testing.T) {
	// N publishers race on the fetch-add claim; a single blocking consumer
	// must see every value exactly once with no slot overwritten, even on a
	// ring far smaller than the event count (so wrap gating is exercised).
	for name, mk := range strategies() {
		t.Run(name, func(t *testing.T) {
			r := NewMultiRing[event](64, mk())
			c := r.NewConsumer()
			const producers = 8
			const perProducer = 2000
			seen := make([]int32, producers*perProducer)
			var consumed atomic.Int64
			done := make(chan struct{})
			go func() {
				defer close(done)
				c.Run(func(_ int64, e *event) bool {
					if e.sentinel {
						return false
					}
					seen[e.val]++
					consumed.Add(1)
					return true
				})
			}()
			p := r.NewMultiProducer()
			var wg sync.WaitGroup
			for g := 0; g < producers; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < perProducer; i++ {
						v := int64(g*perProducer + i)
						p.Publish(func(e *event) { e.val = v; e.sentinel = false })
					}
				}(g)
			}
			wg.Wait()
			if claimed := p.Claimed(); claimed != producers*perProducer-1 {
				t.Errorf("claimed watermark = %d, want %d", claimed, producers*perProducer-1)
			}
			p.Publish(func(e *event) { e.sentinel = true })
			<-done
			if consumed.Load() != producers*perProducer {
				t.Fatalf("consumed %d events, want %d", consumed.Load(), producers*perProducer)
			}
			for v, n := range seen {
				if n != 1 {
					t.Fatalf("value %d seen %d times", v, n)
				}
			}
		})
	}
}

func TestPollDrainsWithoutBlocking(t *testing.T) {
	r := NewMultiRing[event](16, &BlockingWait{})
	c := r.NewConsumer()
	if n := c.Poll(func(int64, *event) bool { return true }); n != 0 {
		t.Fatalf("Poll on empty ring = %d, want 0", n)
	}
	p := r.NewMultiProducer()
	for i := int64(0); i < 5; i++ {
		v := i
		p.Publish(func(e *event) { e.val = v })
	}
	var got []int64
	if n := c.Poll(func(_ int64, e *event) bool { got = append(got, e.val); return true }); n != 5 {
		t.Fatalf("Poll = %d, want 5", n)
	}
	for i, v := range got {
		if v != int64(i) {
			t.Fatalf("event %d = %d (order broken)", i, v)
		}
	}
	if c.Seq() != 4 {
		t.Errorf("consumer Seq = %d, want 4", c.Seq())
	}
	if n := c.Poll(func(int64, *event) bool { return true }); n != 0 {
		t.Fatalf("second Poll = %d, want 0", n)
	}
}

func TestReleaseUnblocksGatedProducer(t *testing.T) {
	// Fill a tiny ring with no consumer progress, park a publisher on the
	// wrap gate, then Release: the publisher must return rather than wait
	// for a consumer that will never come.
	r := NewMultiRing[event](4, &BlockingWait{})
	r.NewConsumer() // registered but never run: gates the producer at seq -1
	p := r.NewMultiProducer()
	for i := 0; i < 4; i++ {
		p.Publish(func(e *event) {})
	}
	unblocked := make(chan struct{})
	go func() {
		p.Publish(func(e *event) {}) // ring full: blocks until Release
		close(unblocked)
	}()
	r.Release()
	<-unblocked
}

func TestSequencePadding(t *testing.T) {
	var s Sequence
	s.Store(42)
	if s.Load() != 42 {
		t.Error("Sequence store/load")
	}
}

func TestDefaultsMatchTable1(t *testing.T) {
	o := Defaults()
	if o.RingSize != 1024 || o.ClaimBatch != 256 || o.Consumers != 12 {
		t.Errorf("defaults = %+v", o)
	}
	if o.Wait.Name() != "BlockingWaitStrategy" {
		t.Errorf("default wait = %s", o.Wait.Name())
	}
	if o.String() == "" {
		t.Error("options render")
	}
}

func BenchmarkRingThroughputBlocking(b *testing.B) {
	benchRing(b, &BlockingWait{})
}

func BenchmarkRingThroughputYielding(b *testing.B) {
	benchRing(b, YieldingWait{})
}

func benchRing(b *testing.B, w WaitStrategy) {
	r := NewRing[event](1024, w)
	c := r.NewConsumer()
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.Run(func(_ int64, e *event) bool { return !e.sentinel })
	}()
	p := r.NewProducer(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Publish(func(e *event) { e.val = 1; e.sentinel = false })
	}
	p.Publish(func(e *event) { e.sentinel = true })
	<-done
}
