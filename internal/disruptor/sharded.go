package disruptor

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// ShardedRing fans a multi-producer workload across several independent
// multi-producer rings, one per shard. A single MultiRing serialises every
// publisher on one fetch-add cursor cache line; sharding gives each
// publisher lane its own cursor, availability buffer and wait strategy, so
// concurrent producers stop contending with each other almost entirely.
// The consuming side drains each shard separately (Poll), which is exactly
// what lets a coordinator spread absorbed events across its own downstream
// partitions instead of funnelling them through one.
//
// Lane assignment is by publisher affinity, not by key: each publishing
// goroutine borrows a lane token from a sync.Pool for the duration of one
// Publish. The pool's per-P caches make the token — and therefore the
// shard — sticky per processor in steady state, which is the
// "hash-of-goroutine" behaviour wanted here without any runtime
// introspection. Tokens lost to a GC cycle are re-minted round-robin, so
// lanes stay balanced over time. Any interleaving is correct: every shard
// is a full multi-producer ring.
type ShardedRing[T any] struct {
	shards []*Ring[T]
	prods  []*MultiProducer[T]
	cons   []*Consumer[T]
	rr     atomic.Uint64
	lanes  sync.Pool
}

// laneToken pins a publisher to one shard between pool Get/Put.
type laneToken struct{ shard int }

// NewShardedRing allocates `shards` multi-producer rings of `shardSize`
// slots each (both powers of two) and registers one consumer per shard.
// wait builds a fresh WaitStrategy per shard so blocked publishers of one
// lane never share a condition variable with another's.
func NewShardedRing[T any](shards, shardSize int, wait func() WaitStrategy) *ShardedRing[T] {
	if shards <= 0 || shards&(shards-1) != 0 {
		panic(fmt.Sprintf("disruptor: shard count %d is not a power of two", shards))
	}
	r := &ShardedRing[T]{
		shards: make([]*Ring[T], shards),
		prods:  make([]*MultiProducer[T], shards),
		cons:   make([]*Consumer[T], shards),
	}
	for i := range r.shards {
		ring := NewMultiRing[T](shardSize, wait())
		r.shards[i] = ring
		r.cons[i] = ring.NewConsumer()
		r.prods[i] = ring.NewMultiProducer()
	}
	r.lanes.New = func() any {
		return &laneToken{shard: int(r.rr.Add(1)-1) & (len(r.shards) - 1)}
	}
	return r
}

// Shards returns the number of lanes.
func (r *ShardedRing[T]) Shards() int { return len(r.shards) }

// ShardSize returns the per-shard ring capacity.
func (r *ShardedRing[T]) ShardSize() int { return r.shards[0].Size() }

// Publish claims a slot on the calling goroutine's lane, writes one event
// via fill and makes it visible to that shard's consumer, returning the
// shard used. Safe for any number of concurrent publishers; it blocks only
// while the lane's own ring is full (per-lane backpressure).
func (r *ShardedRing[T]) Publish(fill func(slot *T)) int {
	tok := r.lanes.Get().(*laneToken)
	shard := tok.shard
	r.prods[shard].Publish(fill)
	r.lanes.Put(tok)
	return shard
}

// Poll drains shard's pending events without blocking, returning how many
// were handled. Only the consuming side may call it (one logical consumer
// per shard).
func (r *ShardedRing[T]) Poll(shard int, handle func(seq int64, v *T) bool) int {
	return r.cons[shard].Poll(handle)
}

// ConsumedSeq returns the highest sequence shard's consumer has processed,
// -1 before the first event.
func (r *ShardedRing[T]) ConsumedSeq(shard int) int64 { return r.cons[shard].Seq() }

// ClaimedSnapshot appends a per-shard snapshot of the highest claimed
// sequences to buf — the watermark vector a caller compares consumed
// sequences against to know "everything published before now" has been
// drained.
func (r *ShardedRing[T]) ClaimedSnapshot(buf []int64) []int64 {
	for _, p := range r.prods {
		buf = append(buf, p.Claimed())
	}
	return buf
}

// Pending reports whether any shard holds published-but-unconsumed events.
func (r *ShardedRing[T]) Pending() bool {
	for i, c := range r.cons {
		if c.Seq() < r.prods[i].Claimed() {
			return true
		}
	}
	return false
}

// PendingCount returns the total number of published-but-unconsumed events
// across all shards — the backlog admission controllers compare against
// Capacity to shed load before publishers block. The per-shard reads are
// not a single atomic snapshot; the count is a monotonic-enough gauge, not
// an exact barrier.
func (r *ShardedRing[T]) PendingCount() int64 {
	var n int64
	for i, c := range r.cons {
		if d := r.prods[i].Claimed() - c.Seq(); d > 0 {
			n += d
		}
	}
	return n
}

// Capacity returns the total slot count across all shards.
func (r *ShardedRing[T]) Capacity() int { return len(r.shards) * r.shards[0].Size() }

// Release un-gates publishers blocked on any full shard; the consuming
// side calls it at shutdown (see Ring.Release).
func (r *ShardedRing[T]) Release() {
	for _, ring := range r.shards {
		ring.Release()
	}
}
