package disruptor

import (
	"sync"
	"testing"
)

func TestShardedRingShardCountMustBePowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non power-of-two shard count must panic")
		}
	}()
	NewShardedRing[event](3, 64, func() WaitStrategy { return &BlockingWait{} })
}

// TestShardedRingExactlyOnce drives many concurrent producers through the
// sharded ring and checks the drained multiset: every event exactly once,
// no matter how the lanes interleaved.
func TestShardedRingExactlyOnce(t *testing.T) {
	for name, mk := range strategies() {
		t.Run(name, func(t *testing.T) {
			r := NewShardedRing[event](4, 64, mk)
			const producers = 8
			const perProducer = 4000
			var wg sync.WaitGroup
			done := make(chan struct{})
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					for i := 0; i < perProducer; i++ {
						v := int64(p*perProducer + i)
						r.Publish(func(e *event) { e.val = v })
					}
				}(p)
			}
			go func() { wg.Wait(); close(done) }()
			seen := make(map[int64]int)
			total := 0
			for {
				drained := 0
				for shard := 0; shard < r.Shards(); shard++ {
					drained += r.Poll(shard, func(_ int64, e *event) bool {
						seen[e.val]++
						return true
					})
				}
				total += drained
				if total == producers*perProducer {
					select {
					case <-done:
						if r.Pending() {
							t.Fatal("Pending() true after full drain")
						}
						for v, n := range seen {
							if n != 1 {
								t.Fatalf("event %d seen %d times", v, n)
							}
						}
						return
					default:
					}
				}
			}
		})
	}
}

// TestShardedRingParityWithMultiRing runs the same producer workload
// through a sharded ring and a plain multi-producer ring and checks the
// drained multisets match — the sharding is a routing change, not a
// semantics change.
func TestShardedRingParityWithMultiRing(t *testing.T) {
	const producers = 6
	const perProducer = 2000
	produce := func(publish func(int64)) {
		var wg sync.WaitGroup
		for p := 0; p < producers; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				for i := 0; i < perProducer; i++ {
					publish(int64(p*perProducer + i))
				}
			}(p)
		}
		wg.Wait()
	}

	single := NewMultiRing[event](1<<15, &BlockingWait{})
	sp := single.NewMultiProducer()
	sc := single.NewConsumer()
	produce(func(v int64) { sp.Publish(func(e *event) { e.val = v }) })
	fromSingle := make(map[int64]int)
	sc.Poll(func(_ int64, e *event) bool { fromSingle[e.val]++; return true })

	// No draining happens until the producers finish, and lane-token
	// affinity may route every producer to the same shard — so each shard
	// must be able to hold the whole workload on its own.
	sharded := NewShardedRing[event](4, 1<<14, func() WaitStrategy { return &BlockingWait{} })
	produce(func(v int64) { sharded.Publish(func(e *event) { e.val = v }) })
	fromSharded := make(map[int64]int)
	for shard := 0; shard < sharded.Shards(); shard++ {
		sharded.Poll(shard, func(_ int64, e *event) bool { fromSharded[e.val]++; return true })
	}

	if len(fromSingle) != producers*perProducer || len(fromSharded) != len(fromSingle) {
		t.Fatalf("drained %d from single ring, %d from sharded, want %d",
			len(fromSingle), len(fromSharded), producers*perProducer)
	}
	for v, n := range fromSingle {
		if fromSharded[v] != n {
			t.Fatalf("event %d: single ring saw %d, sharded saw %d", v, n, fromSharded[v])
		}
	}
}

// TestShardedRingWatermarkVector checks ClaimedSnapshot/ConsumedSeq agree
// per shard once everything published is drained.
func TestShardedRingWatermarkVector(t *testing.T) {
	r := NewShardedRing[event](2, 32, func() WaitStrategy { return YieldingWait{} })
	for i := 0; i < 40; i++ {
		v := int64(i)
		r.Publish(func(e *event) { e.val = v })
		// Keep lanes from gating: drain as we go.
		for shard := 0; shard < r.Shards(); shard++ {
			r.Poll(shard, func(_ int64, e *event) bool { return true })
		}
	}
	claimed := r.ClaimedSnapshot(nil)
	if len(claimed) != r.Shards() {
		t.Fatalf("snapshot has %d entries, want %d", len(claimed), r.Shards())
	}
	for shard, w := range claimed {
		if got := r.ConsumedSeq(shard); got < w {
			t.Fatalf("shard %d consumed %d < claimed %d after drain", shard, got, w)
		}
	}
	if r.Pending() {
		t.Fatal("Pending() true after drain")
	}
}

// TestShardedRingReleaseUnblocksGatedProducer mirrors the single-ring
// release test: a producer gated on one full lane must be freed by Release.
func TestShardedRingReleaseUnblocksGatedProducer(t *testing.T) {
	r := NewShardedRing[event](1, 4, func() WaitStrategy { return &BlockingWait{} })
	unblocked := make(chan struct{})
	go func() {
		for i := 0; i < 64; i++ {
			v := int64(i)
			r.Publish(func(e *event) { e.val = v })
		}
		close(unblocked)
	}()
	r.Release()
	<-unblocked
}
