// Package exec is the pluggable execution layer of the JStar engine: it
// owns the step loop that repeatedly extracts the minimal causal
// equivalence class from the Delta set and fires the triggered rules, and
// it decides *how* those firings are scheduled.
//
// The paper's thesis is that parallelism strategy is a runtime choice, not
// a program change (§1, §5); this package is that choice made concrete.
// Three strategies are provided behind one Executor interface:
//
//   - Sequential: a single-threaded step loop (the -sequential code
//     generator).
//   - ForkJoin: each step's batch is fired across a work-stealing fork/join
//     pool (the paper's default parallel code generator, §5).
//   - Pipelined: a persistent crew of consumers fed through a Disruptor
//     ring buffer (the §6.3 PvWatts redesign, generalised to any program);
//     per-step hand-off costs an atomic publish instead of task forking.
//
// Auto (the zero value) picks for you: the run warms up sequentially while
// observing batch sizes, then upgrades to ForkJoin or Pipelined using the
// Choose heuristic — the §1.5 idea of using run logs to select strategies,
// folded into a single run.
//
// # The batch-first Host contract
//
// All strategies execute against the Host interface, and dispatch is
// batch-first on both sides of a firing:
//
//   - Writes: rule firings append new tuples to per-worker put buffers
//     (identified by the slot index passed to FireBatch). At the step
//     boundary each buffer is sealed — sorted and handed off as one
//     pre-sorted run (SealSlot, called from the workers so the sorting
//     parallelises) — and the coordinator k-way merges the runs into the
//     Delta tree (EndStep). No firing ever takes the Delta-tree lock.
//   - Dispatch: a strategy never hands tuples to the engine one at a time.
//     It partitions each step's live batch into contiguous chunks — grain-
//     sized chunks claimed by pool workers for ForkJoin, ring segments for
//     Pipelined — and passes each whole chunk to one FireBatch call. The
//     engine amortises rule lookup, statistics accounting and rule-context
//     setup over the chunk, and rules that provide a batch body (see
//     core.Rule.BatchBody) receive the chunk in a single invocation. This
//     is the Disruptor discipline of always consuming the full available
//     batch, applied to rule dispatch.
//
// Within one step the firing order of chunks (and of tuples inside a
// chunk) is unspecified, exactly as the paper specifies for one parallel
// batch; only the causal step boundaries order execution.
package exec

import (
	"fmt"
	"runtime"
	"strings"

	"github.com/jstar-lang/jstar/internal/disruptor"
	"github.com/jstar-lang/jstar/internal/tuple"
)

// Strategy selects how rule firings are scheduled.
type Strategy int

const (
	// Auto warms up sequentially, then picks a strategy from the observed
	// batch statistics (Choose), with the thread count clamped to
	// GOMAXPROCS so it never upgrades into oversubscription.
	Auto Strategy = iota
	// Sequential fires every rule on the coordinator goroutine.
	Sequential
	// ForkJoin fires each step's batch across a work-stealing pool.
	ForkJoin
	// Pipelined streams firings through a Disruptor ring to a persistent
	// consumer crew.
	Pipelined
)

// String returns the flag spelling of s.
func (s Strategy) String() string {
	switch s {
	case Auto:
		return "auto"
	case Sequential:
		return "sequential"
	case ForkJoin:
		return "forkjoin"
	case Pipelined:
		return "pipelined"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// StrategyNames lists the canonical -strategy flag spellings, in menu
// order. Command-line tools use it to build usage strings and rejection
// messages, so the legal set lives in exactly one place.
func StrategyNames() []string {
	return []string{"auto", "sequential", "forkjoin", "pipelined"}
}

// ParseStrategy parses a -strategy flag value. Unknown values are an
// error that lists the legal names; they never fall back silently.
func ParseStrategy(s string) (Strategy, error) {
	switch s {
	case "", "auto":
		return Auto, nil
	case "seq", "sequential":
		return Sequential, nil
	case "forkjoin", "fork-join", "fj":
		return ForkJoin, nil
	case "pipelined", "pipeline", "disruptor":
		return Pipelined, nil
	}
	return Auto, fmt.Errorf("jstar: unknown strategy %q (valid: %s)", s, strings.Join(StrategyNames(), "|"))
}

// Host is the engine surface an Executor drives; implemented by core.Run.
// The contract is batch-first: NextBatch/BeginStep/EndStep are called by
// the executor's coordinator goroutine only; FireBatch may be called from
// many goroutines concurrently, each with a distinct slot (0 is reserved
// for the coordinator) and a chunk of the live batch BeginStep returned.
// Chunks passed to FireBatch must partition the live batch — every live
// tuple is fired exactly once per step.
type Host interface {
	// NextBatch extracts the next minimal causal equivalence class,
	// handling step accounting, failure checks and the step limit. A nil
	// batch with nil error means the Delta set has drained.
	NextBatch() ([]*tuple.Tuple, error)
	// BeginStep inserts the batch into the Gamma database (batch-wise, with
	// set-semantics dedup) and runs external actions, returning the live
	// tuples whose rules must fire. The returned slice is sorted by schema
	// then fields, so contiguous chunks of it stay schema-clustered.
	BeginStep(batch []*tuple.Tuple) []*tuple.Tuple
	// FireBatch fires every rule triggered by each tuple of ts, buffering
	// puts under slot. The engine amortises rule lookup and statistics over
	// the chunk and hands schema-homogeneous runs to batch-aware rule
	// bodies in one call.
	FireBatch(ts []*tuple.Tuple, slot int)
	// SealSlot sorts slot's put buffer and hands it off as one pre-sorted
	// run for the step's flush merge. Strategies should call it from their
	// workers once the step's firings are done, so the sort half of the
	// old serial step boundary runs in parallel; it may be called
	// concurrently for distinct slots (concurrent calls for the same slot
	// are safe but pointless). Calling it is an optimisation, not an
	// obligation — EndStep seals whatever was left unsealed.
	SealSlot(slot int)
	// EndStep merges the sealed per-slot runs into one sorted,
	// deduplicated flush and bulk-loads it into the Delta tree.
	EndStep()
	// Err returns the first failure recorded by a rule, or nil.
	Err() error
}

// AffineHost is the optional Host extension for table-affine execution
// (core.Options.TableAffinity). When Affine() reports true the host has
// pre-partitioned the current step's live batch into Tasks() fire tasks,
// each covering tuples owned by a single Gamma shard; TaskRoute(i) names
// that shard. Parallel strategies then dispatch whole tasks instead of
// cutting their own grain-sized chunks, steering each task toward the
// worker pinned to its shard: ForkJoin orders tasks so workers claim their
// own shards first (best-effort — work stealing may still rebalance),
// Pipelined claims events by route instead of sequence residue
// (deterministic pinning). Correctness never depends on the steering: the
// host buffers puts per (slot, shard), so any worker may fire any task.
type AffineHost interface {
	Host
	// Affine reports whether the current step was planned table-affine.
	// Hosts may decline per step (tiny batches are not worth routing).
	Affine() bool
	// Tasks returns the number of fire tasks in the current step's plan.
	Tasks() int
	// FireTask fires task i, buffering puts under slot.
	FireTask(i, slot int)
	// TaskRoute returns the owner shard of task i's tuples.
	TaskRoute(i int) int
}

// Pool abstracts the fork/join pool an Executor schedules on (implemented
// by forkjoin.Pool and core.PoolRef).
type Pool interface {
	Size() int
	// ForWorker runs body(slot, i) for every i in [0, n): slot 0 is the
	// calling goroutine, slots 1..Size() the pool workers.
	ForWorker(n, grain int, body func(slot, i int))
}

// Executor runs a program's step loop to quiescence. Drain is resumable:
// it may be called any number of times on the same executor, and the host
// may grow the Delta set between (and during) calls — the Session
// coordinator re-enters Drain after every batch of externally injected
// tuples, and its host absorbs the ingress ring inside NextBatch, so an
// executor must never assume seed-then-drain-once. Close releases executor
// resources once no more Drains will follow.
type Executor interface {
	// Name identifies the strategy for run reports.
	Name() string
	// Drain runs execution steps until the Delta set is empty or the run
	// fails.
	Drain(h Host) error
	// Close releases executor-owned resources (consumer goroutines, rings).
	Close()
}

// Config carries the shared knobs for building executors.
type Config struct {
	// Threads is the target degree of parallelism (Pipelined consumer
	// count; Auto's decision input). Defaults to Pool.Size() when a pool is
	// present.
	Threads int
	// Pool is the fork/join pool for ForkJoin (and Auto, which may upgrade
	// to it). May be nil for Sequential and Pipelined.
	Pool Pool
	// RingSize is the Pipelined ring capacity (power of two, default 4096).
	RingSize int
	// ClaimBatch is the Pipelined producer claim batch (default 256).
	ClaimBatch int
	// Wait is the Pipelined wait strategy (default BlockingWait).
	Wait disruptor.WaitStrategy
	// WarmupSteps is Auto's sequential observation window (default 32).
	WarmupSteps int64
}

func (c Config) threads() int {
	if c.Threads > 0 {
		return c.Threads
	}
	if c.Pool != nil {
		return c.Pool.Size()
	}
	return 1
}

// New builds an executor for the strategy. ForkJoin requires cfg.Pool.
func New(s Strategy, cfg Config) (Executor, error) {
	switch s {
	case Sequential:
		return sequential{}, nil
	case ForkJoin:
		if cfg.Pool == nil {
			return nil, fmt.Errorf("jstar: ForkJoin strategy requires a pool")
		}
		return &forkJoin{pool: cfg.Pool}, nil
	case Pipelined:
		return newPipelined(cfg), nil
	case Auto:
		return &adaptive{cfg: cfg}, nil
	}
	return nil, fmt.Errorf("jstar: unknown strategy %v", s)
}

// Choose recommends a strategy from observed run statistics: the mean
// parallel batch size (live tuples per step) and the available threads.
// Tiny batches cannot amortise any hand-off, so they stay sequential; big
// batches amortise fork/join's chunked parallel-for best; the moderate
// middle is where the Pipelined crew's cheap per-tuple publish wins. This
// is the §1.5 "statistics drive the parallelisation strategy" loop.
func Choose(avgBatch float64, threads int) Strategy {
	if threads <= 1 || avgBatch < 2 {
		return Sequential
	}
	if avgBatch >= float64(4*threads) {
		return ForkJoin
	}
	return Pipelined
}

// ChunkGrain returns the chunk size the parallel strategies use to
// partition a step batch of n live tuples across `workers` participants:
// about four chunks per worker, so the work-stealing pool (and the ring
// crew) can rebalance skewed chunks, while each FireBatch call still
// amortises dispatch over many tuples.
func ChunkGrain(n, workers int) int {
	if workers < 1 {
		workers = 1
	}
	g := (n + 4*workers - 1) / (4 * workers)
	if g < 1 {
		g = 1
	}
	return g
}

// fireChunks partitions live into grain-sized contiguous chunks and calls
// fire for each with the chunk's index. It is shared by the parallel
// strategies so the partitioning (and its tests) live in one place.
func fireChunks(live []*tuple.Tuple, grain int, fire func(chunk []*tuple.Tuple, i int)) {
	n := len(live)
	for i, lo := 0, 0; lo < n; i, lo = i+1, lo+grain {
		hi := lo + grain
		if hi > n {
			hi = n
		}
		fire(live[lo:hi], i)
	}
}

// sequential is the -sequential step loop: one goroutine, slot 0. The
// whole live batch is one chunk — sequential runs pay exactly one
// dispatch per (schema, rule) group per step.
type sequential struct{}

func (sequential) Name() string { return "sequential" }
func (sequential) Close()       {}

func (sequential) Drain(h Host) error {
	for {
		batch, err := h.NextBatch()
		if err != nil {
			return err
		}
		if batch == nil {
			return h.Err()
		}
		if live := h.BeginStep(batch); len(live) > 0 {
			h.FireBatch(live, 0)
		}
		h.EndStep()
	}
}

// forkJoin fires each batch across the pool in grain-sized chunks: each
// pool participant claims whole chunks (amortised dispatch) instead of
// single tuples (a fork per firing).
type forkJoin struct{ pool Pool }

func (e *forkJoin) Name() string { return "forkjoin" }
func (e *forkJoin) Close()       {}

func (e *forkJoin) Drain(h Host) error {
	for {
		batch, err := h.NextBatch()
		if err != nil {
			return err
		}
		if batch == nil {
			return h.Err()
		}
		live := h.BeginStep(batch)
		if ah, ok := h.(AffineHost); ok && ah.Affine() {
			// Table-affine step: the host pre-partitioned live into
			// shard-owned tasks. Dispatch them as-is — the plan's task order
			// groups each shard's tasks contiguously, so the pool's range
			// claiming tends to keep a shard on one worker; stealing may
			// rebalance, which is safe because puts key on (slot, shard).
			if n := ah.Tasks(); n == 1 {
				ah.FireTask(0, 0)
			} else if n > 1 {
				e.pool.ForWorker(n, 1, func(slot, i int) {
					ah.FireTask(i, slot)
				})
				e.pool.ForWorker(e.pool.Size()+1, 1, func(_, s int) {
					h.SealSlot(s)
				})
			}
			h.EndStep()
			continue
		}
		grain := ChunkGrain(len(live), e.pool.Size())
		if len(live) <= grain {
			if len(live) > 0 {
				h.FireBatch(live, 0)
			}
		} else {
			chunks := (len(live) + grain - 1) / grain
			e.pool.ForWorker(chunks, 1, func(slot, i int) {
				lo := i * grain
				hi := lo + grain
				if hi > len(live) {
					hi = len(live)
				}
				h.FireBatch(live[lo:hi], slot)
			})
			// Seal phase: sort every slot's put run across the pool, so
			// the flush arrives at EndStep pre-sorted and the coordinator
			// only merges. Empty slots seal for the cost of a lock.
			e.pool.ForWorker(e.pool.Size()+1, 1, func(_, s int) {
				h.SealSlot(s)
			})
		}
		h.EndStep()
	}
}

// adaptive is the Auto strategy: drive the first WarmupSteps steps
// sequentially while measuring batch sizes, then hand the rest of the run
// to the strategy Choose picks.
type adaptive struct {
	cfg    Config
	chosen Executor
	steps  int64
	tuples int64
}

func (a *adaptive) Name() string {
	if a.chosen != nil {
		return "auto:" + a.chosen.Name()
	}
	return "auto"
}

func (a *adaptive) Close() {
	if a.chosen != nil {
		a.chosen.Close()
	}
}

func (a *adaptive) Drain(h Host) error {
	if a.chosen != nil {
		return a.chosen.Drain(h)
	}
	warmup := a.cfg.WarmupSteps
	if warmup <= 0 {
		warmup = 32
	}
	for a.steps < warmup {
		batch, err := h.NextBatch()
		if err != nil {
			return err
		}
		if batch == nil {
			return h.Err()
		}
		live := h.BeginStep(batch)
		if len(live) > 0 {
			h.FireBatch(live, 0)
		}
		h.EndStep()
		a.steps++
		a.tuples += int64(len(live))
	}
	// Requested threads beyond what the machine can schedule are pure
	// oversubscription overhead; Auto decides for the hardware it is on,
	// even if an explicit --threads asked for more.
	threads := a.cfg.threads()
	if p := runtime.GOMAXPROCS(0); threads > p {
		threads = p
	}
	s := Choose(float64(a.tuples)/float64(a.steps), threads)
	if s == ForkJoin && a.cfg.Pool == nil {
		s = Pipelined
	}
	// Build the chosen executor with the clamped count too, or a Pipelined
	// upgrade would spawn the unclamped number of consumers.
	a.cfg.Threads = threads
	next, err := New(s, a.cfg)
	if err != nil {
		return err
	}
	a.chosen = next
	return a.chosen.Drain(h)
}
