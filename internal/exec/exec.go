// Package exec is the pluggable execution layer of the JStar engine: it
// owns the step loop that repeatedly extracts the minimal causal
// equivalence class from the Delta set and fires the triggered rules, and
// it decides *how* those firings are scheduled.
//
// The paper's thesis is that parallelism strategy is a runtime choice, not
// a program change (§1, §5); this package is that choice made concrete.
// Three strategies are provided behind one Executor interface:
//
//   - Sequential: a single-threaded step loop (the -sequential code
//     generator).
//   - ForkJoin: each step's batch is fired across a work-stealing fork/join
//     pool (the paper's default parallel code generator, §5).
//   - Pipelined: a persistent crew of consumers fed through a Disruptor
//     ring buffer (the §6.3 PvWatts redesign, generalised to any program);
//     per-step hand-off costs an atomic publish instead of task forking.
//
// Auto (the zero value) picks for you: the run warms up sequentially while
// observing batch sizes, then upgrades to ForkJoin or Pipelined using the
// Choose heuristic — the §1.5 idea of using run logs to select strategies,
// folded into a single run.
//
// All strategies execute against the Host interface and share its batched
// put protocol: rule firings append new tuples to per-worker put buffers
// (identified by the slot index passed to Fire), and the coordinator
// flushes every buffer into the Delta tree as one sorted batch at the step
// boundary (EndStep). No firing ever takes the Delta-tree lock.
package exec

import (
	"fmt"
	"runtime"

	"github.com/jstar-lang/jstar/internal/disruptor"
	"github.com/jstar-lang/jstar/internal/tuple"
)

// Strategy selects how rule firings are scheduled.
type Strategy int

const (
	// Auto warms up sequentially, then picks a strategy from the observed
	// batch statistics (Choose), with the thread count clamped to
	// GOMAXPROCS so it never upgrades into oversubscription.
	Auto Strategy = iota
	// Sequential fires every rule on the coordinator goroutine.
	Sequential
	// ForkJoin fires each step's batch across a work-stealing pool.
	ForkJoin
	// Pipelined streams firings through a Disruptor ring to a persistent
	// consumer crew.
	Pipelined
)

// String returns the flag spelling of s.
func (s Strategy) String() string {
	switch s {
	case Auto:
		return "auto"
	case Sequential:
		return "sequential"
	case ForkJoin:
		return "forkjoin"
	case Pipelined:
		return "pipelined"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// ParseStrategy parses a -strategy flag value.
func ParseStrategy(s string) (Strategy, error) {
	switch s {
	case "", "auto":
		return Auto, nil
	case "seq", "sequential":
		return Sequential, nil
	case "forkjoin", "fork-join", "fj":
		return ForkJoin, nil
	case "pipelined", "pipeline", "disruptor":
		return Pipelined, nil
	}
	return Auto, fmt.Errorf("jstar: unknown strategy %q (want auto|sequential|forkjoin|pipelined)", s)
}

// Host is the engine surface an Executor drives; implemented by core.Run.
// The contract: NextBatch/BeginStep/EndStep are called by the executor's
// coordinator goroutine only; Fire may be called from many goroutines
// concurrently, each with a distinct slot (0 is reserved for the
// coordinator).
type Host interface {
	// NextBatch extracts the next minimal causal equivalence class,
	// handling step accounting, failure checks and the step limit. A nil
	// batch with nil error means the Delta set has drained.
	NextBatch() ([]*tuple.Tuple, error)
	// BeginStep inserts the batch into the Gamma database (batch-wise, with
	// set-semantics dedup) and runs external actions, returning the live
	// tuples whose rules must fire.
	BeginStep(batch []*tuple.Tuple) []*tuple.Tuple
	// Fire fires every rule triggered by t, buffering its puts under slot.
	Fire(t *tuple.Tuple, slot int)
	// EndStep flushes all put buffers into the Delta tree as one sorted
	// batch.
	EndStep()
	// Err returns the first failure recorded by a rule, or nil.
	Err() error
}

// Pool abstracts the fork/join pool an Executor schedules on (implemented
// by forkjoin.Pool and core.PoolRef).
type Pool interface {
	Size() int
	// ForWorker runs body(slot, i) for every i in [0, n): slot 0 is the
	// calling goroutine, slots 1..Size() the pool workers.
	ForWorker(n, grain int, body func(slot, i int))
}

// Executor runs a program's step loop to quiescence. Drain may be called
// repeatedly (the event-driven mode re-drains after each event batch);
// Close releases executor resources once no more Drains will follow.
type Executor interface {
	// Name identifies the strategy for run reports.
	Name() string
	// Drain runs execution steps until the Delta set is empty or the run
	// fails.
	Drain(h Host) error
	// Close releases executor-owned resources (consumer goroutines, rings).
	Close()
}

// Config carries the shared knobs for building executors.
type Config struct {
	// Threads is the target degree of parallelism (Pipelined consumer
	// count; Auto's decision input). Defaults to Pool.Size() when a pool is
	// present.
	Threads int
	// Pool is the fork/join pool for ForkJoin (and Auto, which may upgrade
	// to it). May be nil for Sequential and Pipelined.
	Pool Pool
	// RingSize is the Pipelined ring capacity (power of two, default 4096).
	RingSize int
	// ClaimBatch is the Pipelined producer claim batch (default 256).
	ClaimBatch int
	// Wait is the Pipelined wait strategy (default BlockingWait).
	Wait disruptor.WaitStrategy
	// WarmupSteps is Auto's sequential observation window (default 32).
	WarmupSteps int64
}

func (c Config) threads() int {
	if c.Threads > 0 {
		return c.Threads
	}
	if c.Pool != nil {
		return c.Pool.Size()
	}
	return 1
}

// New builds an executor for the strategy. ForkJoin requires cfg.Pool.
func New(s Strategy, cfg Config) (Executor, error) {
	switch s {
	case Sequential:
		return sequential{}, nil
	case ForkJoin:
		if cfg.Pool == nil {
			return nil, fmt.Errorf("jstar: ForkJoin strategy requires a pool")
		}
		return &forkJoin{pool: cfg.Pool}, nil
	case Pipelined:
		return newPipelined(cfg), nil
	case Auto:
		return &adaptive{cfg: cfg}, nil
	}
	return nil, fmt.Errorf("jstar: unknown strategy %v", s)
}

// Choose recommends a strategy from observed run statistics: the mean
// parallel batch size (live tuples per step) and the available threads.
// Tiny batches cannot amortise any hand-off, so they stay sequential; big
// batches amortise fork/join's chunked parallel-for best; the moderate
// middle is where the Pipelined crew's cheap per-tuple publish wins. This
// is the §1.5 "statistics drive the parallelisation strategy" loop.
func Choose(avgBatch float64, threads int) Strategy {
	if threads <= 1 || avgBatch < 2 {
		return Sequential
	}
	if avgBatch >= float64(4*threads) {
		return ForkJoin
	}
	return Pipelined
}

// sequential is the -sequential step loop: one goroutine, slot 0.
type sequential struct{}

func (sequential) Name() string { return "sequential" }
func (sequential) Close()       {}

func (sequential) Drain(h Host) error {
	for {
		batch, err := h.NextBatch()
		if err != nil {
			return err
		}
		if batch == nil {
			return h.Err()
		}
		live := h.BeginStep(batch)
		for _, t := range live {
			h.Fire(t, 0)
		}
		h.EndStep()
	}
}

// forkJoin fires each batch across the pool — today's parallel behaviour,
// minus the per-put Delta lock (puts go to the per-slot buffers).
type forkJoin struct{ pool Pool }

func (e *forkJoin) Name() string { return "forkjoin" }
func (e *forkJoin) Close()       {}

func (e *forkJoin) Drain(h Host) error {
	for {
		batch, err := h.NextBatch()
		if err != nil {
			return err
		}
		if batch == nil {
			return h.Err()
		}
		live := h.BeginStep(batch)
		if len(live) == 1 {
			h.Fire(live[0], 0)
		} else {
			e.pool.ForWorker(len(live), 1, func(slot, i int) { h.Fire(live[i], slot) })
		}
		h.EndStep()
	}
}

// adaptive is the Auto strategy: drive the first WarmupSteps steps
// sequentially while measuring batch sizes, then hand the rest of the run
// to the strategy Choose picks.
type adaptive struct {
	cfg    Config
	chosen Executor
	steps  int64
	tuples int64
}

func (a *adaptive) Name() string {
	if a.chosen != nil {
		return "auto:" + a.chosen.Name()
	}
	return "auto"
}

func (a *adaptive) Close() {
	if a.chosen != nil {
		a.chosen.Close()
	}
}

func (a *adaptive) Drain(h Host) error {
	if a.chosen != nil {
		return a.chosen.Drain(h)
	}
	warmup := a.cfg.WarmupSteps
	if warmup <= 0 {
		warmup = 32
	}
	for a.steps < warmup {
		batch, err := h.NextBatch()
		if err != nil {
			return err
		}
		if batch == nil {
			return h.Err()
		}
		live := h.BeginStep(batch)
		for _, t := range live {
			h.Fire(t, 0)
		}
		h.EndStep()
		a.steps++
		a.tuples += int64(len(live))
	}
	// Requested threads beyond what the machine can schedule are pure
	// oversubscription overhead; Auto decides for the hardware it is on,
	// even if an explicit --threads asked for more.
	threads := a.cfg.threads()
	if p := runtime.GOMAXPROCS(0); threads > p {
		threads = p
	}
	s := Choose(float64(a.tuples)/float64(a.steps), threads)
	if s == ForkJoin && a.cfg.Pool == nil {
		s = Pipelined
	}
	// Build the chosen executor with the clamped count too, or a Pipelined
	// upgrade would spawn the unclamped number of consumers.
	a.cfg.Threads = threads
	next, err := New(s, a.cfg)
	if err != nil {
		return err
	}
	a.chosen = next
	return a.chosen.Drain(h)
}
