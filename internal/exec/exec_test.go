package exec_test

import (
	"strings"
	"testing"

	"github.com/jstar-lang/jstar/internal/exec"
)

// TestParseStrategyRoundTrip: every canonical name parses to a strategy
// whose String() spells it back.
func TestParseStrategyRoundTrip(t *testing.T) {
	for _, name := range exec.StrategyNames() {
		s, err := exec.ParseStrategy(name)
		if err != nil {
			t.Fatalf("ParseStrategy(%q): %v", name, err)
		}
		if s.String() != name {
			t.Errorf("ParseStrategy(%q).String() = %q", name, s.String())
		}
	}
}

// TestParseStrategyUnknown: unknown values must error (no silent Auto
// fallback) and the message must list every legal name, since that is
// what the CLI tools print before exiting.
func TestParseStrategyUnknown(t *testing.T) {
	for _, bad := range []string{"bogus", "Sequential", "fork join", "automatic"} {
		_, err := exec.ParseStrategy(bad)
		if err == nil {
			t.Fatalf("ParseStrategy(%q) = nil error, want rejection", bad)
		}
		for _, name := range exec.StrategyNames() {
			if !strings.Contains(err.Error(), name) {
				t.Errorf("ParseStrategy(%q) error %q does not list %q", bad, err, name)
			}
		}
	}
}

// TestChunkGrain: the partition must cover every index, target ~4 chunks
// per worker, and degrade to per-tuple chunks for tiny batches.
func TestChunkGrain(t *testing.T) {
	for _, tc := range []struct {
		n, workers int
	}{
		{0, 4}, {1, 4}, {3, 4}, {16, 4}, {17, 4}, {103, 4}, {1030, 4},
		{1024, 8}, {5, 1}, {100, 0},
	} {
		g := exec.ChunkGrain(tc.n, tc.workers)
		if g < 1 {
			t.Fatalf("ChunkGrain(%d, %d) = %d < 1", tc.n, tc.workers, g)
		}
		if tc.n == 0 {
			continue
		}
		chunks := (tc.n + g - 1) / g
		workers := tc.workers
		if workers < 1 {
			workers = 1
		}
		if chunks > 4*workers {
			t.Errorf("ChunkGrain(%d, %d) = %d yields %d chunks, want <= %d",
				tc.n, tc.workers, g, chunks, 4*workers)
		}
		// The chunks must tile [0, n) exactly.
		covered := 0
		for lo := 0; lo < tc.n; lo += g {
			hi := lo + g
			if hi > tc.n {
				hi = tc.n
			}
			covered += hi - lo
		}
		if covered != tc.n {
			t.Errorf("ChunkGrain(%d, %d): chunks cover %d indices", tc.n, tc.workers, covered)
		}
	}
}
