package exec_test

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"github.com/jstar-lang/jstar/internal/apps/matmult"
	"github.com/jstar-lang/jstar/internal/apps/median"
	"github.com/jstar-lang/jstar/internal/apps/pvwatts"
	"github.com/jstar-lang/jstar/internal/apps/shortestpath"
	"github.com/jstar-lang/jstar/internal/core"
	"github.com/jstar-lang/jstar/internal/exec"
	"github.com/jstar-lang/jstar/internal/tuple"
)

// strategies is the full menu the parity suite sweeps. Every app must
// produce identical results and final Gamma contents under each.
var strategies = []exec.Strategy{exec.Sequential, exec.ForkJoin, exec.Pipelined}

const parityThreads = 4

// gammaSnapshot renders every table's final contents as a sorted line set,
// so two runs can be compared table by table regardless of store backend
// or insertion order.
func gammaSnapshot(t *testing.T, run *core.Run) map[string][]string {
	t.Helper()
	out := make(map[string][]string)
	for _, s := range run.Program().Tables() {
		var lines []string
		run.Gamma().Table(s).Scan(func(tp *tuple.Tuple) bool {
			line := s.Name + "("
			for i := 0; i < s.Arity(); i++ {
				if i > 0 {
					line += ","
				}
				line += fmt.Sprint(tp.Field(i))
			}
			lines = append(lines, line+")")
			return true
		})
		sort.Strings(lines)
		out[s.Name] = lines
	}
	return out
}

func assertSameGamma(t *testing.T, strategy exec.Strategy, want, got map[string][]string) {
	t.Helper()
	for table, w := range want {
		g := got[table]
		if len(w) != len(g) {
			t.Errorf("%v: table %s has %d tuples, sequential had %d", strategy, table, len(g), len(w))
			continue
		}
		for i := range w {
			if w[i] != g[i] {
				t.Errorf("%v: table %s differs at tuple %d: %s vs %s", strategy, table, i, g[i], w[i])
				break
			}
		}
	}
}

func TestParityMatMult(t *testing.T) {
	const n = 24
	ref, err := matmult.RunJStar(matmult.RunOpts{N: n, Strategy: exec.Sequential, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	refGamma := gammaSnapshot(t, ref.Run)
	for _, s := range strategies[1:] {
		got, err := matmult.RunJStar(matmult.RunOpts{N: n, Strategy: s, Threads: parityThreads, Seed: 42})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if !reflect.DeepEqual(ref.C, got.C) {
			t.Errorf("%v: product matrix differs from sequential", s)
		}
		assertSameGamma(t, s, refGamma, gammaSnapshot(t, got.Run))
	}
}

func TestParityMedian(t *testing.T) {
	opts := median.RunOpts{N: 20000, Regions: 6, Seed: 42}
	opts.Strategy = exec.Sequential
	ref, err := median.RunJStar(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range strategies[1:] {
		opts.Strategy = s
		opts.Threads = parityThreads
		got, err := median.RunJStar(opts)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if ref.Median != got.Median {
			t.Errorf("%v: median = %v, sequential = %v", s, got.Median, ref.Median)
		}
	}
}

func TestParityPvWatts(t *testing.T) {
	csv := pvwatts.GenerateCSV(1, false, 42)
	ref, err := pvwatts.RunJStar(csv, pvwatts.RunOpts{Strategy: exec.Sequential, NoDelta: true})
	if err != nil {
		t.Fatal(err)
	}
	refGamma := gammaSnapshot(t, ref.Run)
	for _, s := range strategies[1:] {
		got, err := pvwatts.RunJStar(csv, pvwatts.RunOpts{
			Strategy: s, Threads: parityThreads, NoDelta: true})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if !reflect.DeepEqual(ref.Means, got.Means) {
			t.Errorf("%v: monthly means differ from sequential:\n%v\nvs\n%v", s, got.Means, ref.Means)
		}
		assertSameGamma(t, s, refGamma, gammaSnapshot(t, got.Run))
	}
}

func TestParityShortestPath(t *testing.T) {
	gen := shortestpath.GenOpts{Vertices: 600, Extra: 1200, Tasks: 8, Seed: 42}
	ref, err := shortestpath.RunJStar(shortestpath.RunOpts{Gen: gen, Strategy: exec.Sequential})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range strategies[1:] {
		got, err := shortestpath.RunJStar(shortestpath.RunOpts{
			Gen: gen, Strategy: s, Threads: parityThreads})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if !reflect.DeepEqual(ref.Dist, got.Dist) {
			t.Errorf("%v: distances differ from sequential", s)
		}
	}
}

// TestParityAuto: the Auto strategy must agree with the others after its
// mid-run upgrade, and report what it chose.
func TestParityAuto(t *testing.T) {
	const n = 24
	ref, err := matmult.RunJStar(matmult.RunOpts{N: n, Strategy: exec.Sequential, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	got, err := matmult.RunJStar(matmult.RunOpts{N: n, Strategy: exec.Auto, Threads: parityThreads, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref.C, got.C) {
		t.Error("auto: product matrix differs from sequential")
	}
	if name := got.Run.StrategyName(); name != "auto" && name[:5] != "auto:" {
		t.Errorf("StrategyName() = %q, want auto or auto:<chosen>", name)
	}
}
