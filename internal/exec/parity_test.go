package exec_test

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"github.com/jstar-lang/jstar/internal/apps/matmult"
	"github.com/jstar-lang/jstar/internal/apps/median"
	"github.com/jstar-lang/jstar/internal/apps/pvwatts"
	"github.com/jstar-lang/jstar/internal/apps/shortestpath"
	"github.com/jstar-lang/jstar/internal/core"
	"github.com/jstar-lang/jstar/internal/exec"
	"github.com/jstar-lang/jstar/internal/gamma"
	"github.com/jstar-lang/jstar/internal/tuple"
)

// strategies is the full menu the parity suite sweeps. Every app must
// produce identical results and final Gamma contents under each.
var strategies = []exec.Strategy{exec.Sequential, exec.ForkJoin, exec.Pipelined}

const parityThreads = 4

// gammaSnapshot renders every table's final contents as a sorted line set,
// so two runs can be compared table by table regardless of store backend
// or insertion order.
func gammaSnapshot(t *testing.T, run *core.Run) map[string][]string {
	t.Helper()
	out := make(map[string][]string)
	for _, s := range run.Program().Tables() {
		var lines []string
		run.Gamma().Table(s).Scan(func(tp *tuple.Tuple) bool {
			line := s.Name + "("
			for i := 0; i < s.Arity(); i++ {
				if i > 0 {
					line += ","
				}
				line += fmt.Sprint(tp.Field(i))
			}
			lines = append(lines, line+")")
			return true
		})
		sort.Strings(lines)
		out[s.Name] = lines
	}
	return out
}

func assertSameGamma(t *testing.T, strategy exec.Strategy, want, got map[string][]string) {
	t.Helper()
	for table, w := range want {
		g := got[table]
		if len(w) != len(g) {
			t.Errorf("%v: table %s has %d tuples, sequential had %d", strategy, table, len(g), len(w))
			continue
		}
		for i := range w {
			if w[i] != g[i] {
				t.Errorf("%v: table %s differs at tuple %d: %s vs %s", strategy, table, i, g[i], w[i])
				break
			}
		}
	}
}

func TestParityMatMult(t *testing.T) {
	const n = 24
	ref, err := matmult.RunJStar(matmult.RunOpts{N: n, Strategy: exec.Sequential, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	refGamma := gammaSnapshot(t, ref.Run)
	for _, s := range strategies[1:] {
		got, err := matmult.RunJStar(matmult.RunOpts{N: n, Strategy: s, Threads: parityThreads, Seed: 42})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if !reflect.DeepEqual(ref.C, got.C) {
			t.Errorf("%v: product matrix differs from sequential", s)
		}
		assertSameGamma(t, s, refGamma, gammaSnapshot(t, got.Run))
	}
}

func TestParityMedian(t *testing.T) {
	opts := median.RunOpts{N: 20000, Regions: 6, Seed: 42}
	opts.Strategy = exec.Sequential
	ref, err := median.RunJStar(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range strategies[1:] {
		opts.Strategy = s
		opts.Threads = parityThreads
		got, err := median.RunJStar(opts)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if ref.Median != got.Median {
			t.Errorf("%v: median = %v, sequential = %v", s, got.Median, ref.Median)
		}
	}
}

func TestParityPvWatts(t *testing.T) {
	csv := pvwatts.GenerateCSV(1, false, 42)
	ref, err := pvwatts.RunJStar(csv, pvwatts.RunOpts{Strategy: exec.Sequential, NoDelta: true})
	if err != nil {
		t.Fatal(err)
	}
	refGamma := gammaSnapshot(t, ref.Run)
	for _, s := range strategies[1:] {
		got, err := pvwatts.RunJStar(csv, pvwatts.RunOpts{
			Strategy: s, Threads: parityThreads, NoDelta: true})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if !reflect.DeepEqual(ref.Means, got.Means) {
			t.Errorf("%v: monthly means differ from sequential:\n%v\nvs\n%v", s, got.Means, ref.Means)
		}
		assertSameGamma(t, s, refGamma, gammaSnapshot(t, got.Run))
	}
}

func TestParityShortestPath(t *testing.T) {
	gen := shortestpath.GenOpts{Vertices: 600, Extra: 1200, Tasks: 8, Seed: 42}
	ref, err := shortestpath.RunJStar(shortestpath.RunOpts{Gen: gen, Strategy: exec.Sequential})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range strategies[1:] {
		got, err := shortestpath.RunJStar(shortestpath.RunOpts{
			Gen: gen, Strategy: s, Threads: parityThreads})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if !reflect.DeepEqual(ref.Dist, got.Dist) {
			t.Errorf("%v: distances differ from sequential", s)
		}
	}
}

// batchParityProgram builds a synthetic program that stresses the batched
// dispatch path: one Src tuple fans out n Work tuples in a single step
// batch, and two rules fire on every Work tuple — one with only a
// per-tuple Body, one that also provides a BatchBody routing its point
// queries through the batched ForEachBatch probe. Both rules look up the
// preloaded Lookup table (inserted in an earlier causal step) and put the
// doubled value, into OutA and OutB respectively, so the two dispatch
// paths must produce identical relations.
func batchParityProgram(n int) *core.Program {
	p := core.NewProgram()
	lit := func(name string) []tuple.OrderEntry { return []tuple.OrderEntry{tuple.Lit(name)} }
	icol := func(name string) tuple.Column { return tuple.Column{Name: name, Kind: tuple.KindInt} }
	lookup := p.Table("Lookup", []tuple.Column{icol("i"), icol("v")}, lit("Lookup"))
	src := p.Table("Src", []tuple.Column{icol("n")}, lit("Src"))
	work := p.Table("Work", []tuple.Column{icol("i")}, lit("Work"))
	outA := p.Table("OutA", []tuple.Column{icol("i"), icol("v")}, lit("OutA"))
	outB := p.Table("OutB", []tuple.Column{icol("i"), icol("v")}, lit("OutB"))
	p.Order("Lookup", "Src", "Work", "OutA", "OutB")

	p.Rule("fanout", src, func(c *core.Ctx, t *tuple.Tuple) {
		for i := int64(0); i < t.Int("n"); i++ {
			c.PutNew(work, tuple.Int(i))
		}
	})
	p.Rule("plain", work, func(c *core.Ctx, t *tuple.Tuple) {
		c.ForEach(lookup, gamma.Query{Prefix: []tuple.Value{t.Get("i")}}, func(l *tuple.Tuple) bool {
			c.PutNew(outA, t.Get("i"), tuple.Int(2*l.Int("v")))
			return true
		})
	})
	batched := p.Rule("batched", work, func(c *core.Ctx, t *tuple.Tuple) {
		c.ForEach(lookup, gamma.Query{Prefix: []tuple.Value{t.Get("i")}}, func(l *tuple.Tuple) bool {
			c.PutNew(outB, t.Get("i"), tuple.Int(2*l.Int("v")))
			return true
		})
	})
	batched.BatchBody = func(c *core.Ctx, ts []*tuple.Tuple) {
		qs := make([]gamma.Query, len(ts))
		for i, t := range ts {
			qs[i] = gamma.Query{Prefix: []tuple.Value{t.Get("i")}}
		}
		c.ForEachBatch(lookup, qs, ts, func(qi int, l *tuple.Tuple) bool {
			c.PutNew(outB, ts[qi].Get("i"), tuple.Int(2*l.Int("v")))
			return true
		})
	}

	for i := int64(0); i < int64(n); i++ {
		p.Put(tuple.New(lookup, tuple.Int(i), tuple.Int(i*i%97)))
	}
	p.Put(tuple.New(src, tuple.Int(int64(n))))
	return p
}

// TestParityFireBatch runs the synthetic batch program across every
// strategy and batch sizes chosen to straddle worker-slot chunk
// boundaries (1 = the lone-chunk fast path; 3 < one chunk per worker;
// 103 and 1030 split unevenly across 4 workers' grain-sized chunks). The
// final Gamma contents, the OutA/OutB agreement (Body vs BatchBody), and
// the folded firing counters must all match sequential execution.
func TestParityFireBatch(t *testing.T) {
	for _, n := range []int{1, 3, 103, 1030} {
		var refGamma map[string][]string
		var refFired int64
		for si, s := range append([]exec.Strategy{exec.Sequential}, strategies[1:]...) {
			p := batchParityProgram(n)
			run, err := p.Execute(core.Options{Strategy: s, Threads: parityThreads, Quiet: true})
			if err != nil {
				t.Fatalf("n=%d %v: %v", n, s, err)
			}
			got := gammaSnapshot(t, run)
			wantOut := make([]string, n)
			for i := range wantOut {
				wantOut[i] = fmt.Sprintf("(%d,%d)", i, 2*(int64(i)*int64(i)%97))
			}
			sort.Strings(wantOut)
			for _, table := range []string{"OutA", "OutB"} {
				if len(got[table]) != n {
					t.Fatalf("n=%d %v: table %s has %d tuples, want %d", n, s, table, len(got[table]), n)
				}
				for i, line := range got[table] {
					if line != table+wantOut[i] {
						t.Errorf("n=%d %v: %s[%d] = %s, want %s%s", n, s, table, i, line, table, wantOut[i])
					}
				}
			}
			fired := run.Stats().TotalFired
			if want := int64(1 + 2*n); fired != want {
				t.Errorf("n=%d %v: TotalFired = %d, want %d", n, s, fired, want)
			}
			if run.Stats().FireBatches.Load() == 0 {
				t.Errorf("n=%d %v: no FireBatch dispatches recorded", n, s)
			}
			if si == 0 {
				refGamma, refFired = got, fired
				continue
			}
			assertSameGamma(t, s, refGamma, got)
			if fired != refFired {
				t.Errorf("n=%d %v: TotalFired = %d, sequential had %d", n, s, fired, refFired)
			}
		}
	}
}

// TestParityAuto: the Auto strategy must agree with the others after its
// mid-run upgrade, and report what it chose.
func TestParityAuto(t *testing.T) {
	const n = 24
	ref, err := matmult.RunJStar(matmult.RunOpts{N: n, Strategy: exec.Sequential, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	got, err := matmult.RunJStar(matmult.RunOpts{N: n, Strategy: exec.Auto, Threads: parityThreads, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref.C, got.C) {
		t.Error("auto: product matrix differs from sequential")
	}
	if name := got.Run.StrategyName(); name != "auto" && name[:5] != "auto:" {
		t.Errorf("StrategyName() = %q, want auto or auto:<chosen>", name)
	}
}
