package exec

import (
	"sync"

	"github.com/jstar-lang/jstar/internal/disruptor"
	"github.com/jstar-lang/jstar/internal/tuple"
)

// pipeEvent is one ring slot: a ring segment (contiguous chunk) of the
// step's live batch to fire, a seal marker telling its consumer to sort
// and hand off the consumer's own put run, or the stop sentinel. Slots are
// recycled in place across ring revolutions (the Disruptor's no-garbage
// property).
type pipeEvent struct {
	ts   []*tuple.Tuple
	host Host
	// task/route carry table-affine fire tasks (AffineHost): task is the
	// index passed to FireTask, route the owner shard steering the event to
	// one consumer. Both are -1 for ordinary chunk, seal and stop events,
	// which are claimed by sequence residue as before.
	task  int
	route int64
	seal  bool
	stop  bool
}

// pipelined streams each step's live tuples through a single-producer
// Disruptor ring to a persistent consumer crew — the §6.3 PvWatts redesign
// lifted into a general executor. The producer partitions the live batch
// into grain-sized ring segments and publishes one event per segment;
// consumer i fires the segments whose sequence is congruent to i modulo
// the crew size (sharded consumption) with a single FireBatch call each,
// and appends puts to its own slot buffer (slot i+1; the coordinator is
// slot 0). The coordinator publishes a step's segments, waits for the crew
// to pass the cursor, then flushes — so steps stay causally ordered while
// the per-segment hand-off costs one atomic publish amortised over the
// whole segment.
type pipelined struct {
	consumers  int
	ringSize   int
	claimBatch int
	wait       disruptor.WaitStrategy

	ring *disruptor.Ring[pipeEvent]
	prod *disruptor.Producer[pipeEvent]
	wg   sync.WaitGroup

	started bool
	closed  bool
}

func newPipelined(cfg Config) *pipelined {
	e := &pipelined{
		consumers:  cfg.threads(),
		ringSize:   cfg.RingSize,
		claimBatch: cfg.ClaimBatch,
		wait:       cfg.Wait,
	}
	if e.consumers < 1 {
		e.consumers = 1
	}
	if e.ringSize <= 0 {
		e.ringSize = 4096
	}
	if e.claimBatch <= 0 {
		e.claimBatch = 256
	}
	if e.wait == nil {
		e.wait = &disruptor.BlockingWait{}
	}
	return e
}

func (e *pipelined) Name() string { return "pipelined" }

// start launches the consumer crew; idempotent, called on first Drain so an
// executor that is built but never run costs nothing.
func (e *pipelined) start() {
	if e.started {
		return
	}
	e.started = true
	e.ring = disruptor.NewRing[pipeEvent](e.ringSize, e.wait)
	for i := 0; i < e.consumers; i++ {
		c := e.ring.NewConsumer()
		idx, slot := int64(i), i+1
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			c.Run(func(seq int64, ev *pipeEvent) bool {
				if ev.stop {
					return false
				}
				// Ordinary events shard by sequence residue; table-affine
				// task events shard by owner route, so every task of one
				// shard lands on the same consumer — deterministic pinning,
				// the tuple's table stays hot in that worker's cache.
				mine := seq%int64(e.consumers) == idx
				if ev.route >= 0 {
					mine = ev.route%int64(e.consumers) == idx
				}
				if mine {
					switch {
					case ev.seal:
						// A consumer processes its sequences in order, so
						// by its seal event all its fire segments for the
						// step are done and its slot is stable.
						ev.host.SealSlot(slot)
					case ev.task >= 0:
						ev.host.(AffineHost).FireTask(ev.task, slot)
					default:
						ev.host.FireBatch(ev.ts, slot)
					}
				}
				return true
			})
		}()
	}
	e.prod = e.ring.NewProducer(e.claimBatch)
}

func (e *pipelined) Drain(h Host) error {
	e.start()
	for {
		batch, err := h.NextBatch()
		if err != nil {
			return err
		}
		if batch == nil {
			return h.Err()
		}
		live := h.BeginStep(batch)
		if ah, ok := h.(AffineHost); ok && ah.Affine() {
			// Table-affine step: publish one event per pre-planned fire
			// task, routed to the consumer owning the task's shard. Seal
			// markers stay residue-claimed so each consumer still sees
			// exactly one, after all its routed tasks.
			if n := ah.Tasks(); n == 1 {
				ah.FireTask(0, 0)
			} else if n > 1 {
				for i := 0; i < n; i++ {
					task, route := i, int64(ah.TaskRoute(i))
					e.prod.Publish(func(ev *pipeEvent) {
						ev.ts, ev.host, ev.seal, ev.stop = nil, h, false, false
						ev.task, ev.route = task, route
					})
				}
				for i := 0; i < e.consumers; i++ {
					e.prod.Publish(func(ev *pipeEvent) {
						ev.ts, ev.host, ev.seal, ev.stop = nil, h, true, false
						ev.task, ev.route = -1, -1
					})
				}
				e.ring.WaitConsumed(e.ring.Cursor())
			}
			h.EndStep()
			continue
		}
		grain := ChunkGrain(len(live), e.consumers)
		if len(live) <= grain {
			// A lone segment gains nothing from the ring round-trip; fire it
			// on the coordinator.
			if len(live) > 0 {
				h.FireBatch(live, 0)
			}
		} else {
			fireChunks(live, grain, func(chunk []*tuple.Tuple, _ int) {
				e.prod.Publish(func(ev *pipeEvent) {
					ev.ts, ev.host, ev.seal, ev.stop = chunk, h, false, false
					ev.task, ev.route = -1, -1
				})
			})
			// Seal round: one marker per consumer. The markers' sequences
			// cover every residue class mod the crew size, so each
			// consumer sees exactly one — after all its fire segments —
			// and sorts its own put run in parallel with its peers.
			for i := 0; i < e.consumers; i++ {
				e.prod.Publish(func(ev *pipeEvent) {
					ev.ts, ev.host, ev.seal, ev.stop = nil, h, true, false
					ev.task, ev.route = -1, -1
				})
			}
			e.ring.WaitConsumed(e.ring.Cursor())
		}
		h.EndStep()
	}
}

// Close publishes the stop sentinel and joins the crew.
func (e *pipelined) Close() {
	if !e.started || e.closed {
		e.closed = true
		return
	}
	e.closed = true
	e.prod.Publish(func(ev *pipeEvent) {
		ev.ts, ev.host, ev.seal, ev.stop = nil, nil, false, true
		ev.task, ev.route = -1, -1
	})
	e.wg.Wait()
}
