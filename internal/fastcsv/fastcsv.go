// Package fastcsv is JStar's CSV reading library (§6.1): it keeps lines as
// byte slices and avoids conversion to strings as much as possible — the
// reason the JStar PvWatts program beats the BufferedReader.readLine +
// String.split Java baseline.
//
// It also provides the parallel split reader used for PvWatts speedup
// (§6.2): N readers each take a byte region of the input; a reader skips
// the (partial) first line of its region and continues reading a little way
// past the end, so every record is read exactly once. The same strategy is
// used by Hadoop input readers.
package fastcsv

import (
	"bytes"
	"fmt"
)

// Record is one parsed CSV line: field byte slices aliasing the input
// buffer. Fields are only valid until the caller releases the input.
type Record struct {
	Fields [][]byte
}

// Int parses field i as a decimal integer without allocating.
func (r *Record) Int(i int) (int64, error) {
	return ParseInt(r.Fields[i])
}

// ParseInt parses a decimal int64 from b without allocation.
func ParseInt(b []byte) (int64, error) {
	if len(b) == 0 {
		return 0, fmt.Errorf("fastcsv: empty int field")
	}
	neg := false
	i := 0
	if b[0] == '-' || b[0] == '+' {
		neg = b[0] == '-'
		i++
		if i == len(b) {
			return 0, fmt.Errorf("fastcsv: bare sign")
		}
	}
	var v int64
	for ; i < len(b); i++ {
		c := b[i]
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("fastcsv: bad digit %q in %q", c, b)
		}
		v = v*10 + int64(c-'0')
	}
	if neg {
		v = -v
	}
	return v, nil
}

// ScanLines splits buf into newline-terminated lines (handling a final
// unterminated line and \r\n), calling fn with each non-empty line.
func ScanLines(buf []byte, fn func(line []byte) error) error {
	for len(buf) > 0 {
		nl := bytes.IndexByte(buf, '\n')
		var line []byte
		if nl < 0 {
			line, buf = buf, nil
		} else {
			line, buf = buf[:nl], buf[nl+1:]
		}
		if len(line) > 0 && line[len(line)-1] == '\r' {
			line = line[:len(line)-1]
		}
		if len(line) == 0 {
			continue
		}
		if err := fn(line); err != nil {
			return err
		}
	}
	return nil
}

// SplitFields splits a line on commas into the reusable fields slice
// (no quoting support: PVWatts exports are plain numeric CSV).
func SplitFields(line []byte, fields [][]byte) [][]byte {
	fields = fields[:0]
	for {
		c := bytes.IndexByte(line, ',')
		if c < 0 {
			return append(fields, line)
		}
		fields = append(fields, line[:c])
		line = line[c+1:]
	}
}

// Region is one parallel reader's byte range within the input.
type Region struct {
	Start, End int // reader processes records *starting* in [Start, End)
}

// Regions splits n bytes into k balanced regions.
func Regions(n, k int) []Region {
	if k < 1 {
		k = 1
	}
	if k > n && n > 0 {
		k = n
	}
	out := make([]Region, 0, k)
	chunk := n / k
	start := 0
	for i := 0; i < k; i++ {
		end := start + chunk
		if i == k-1 {
			end = n
		}
		out = append(out, Region{Start: start, End: end})
		start = end
	}
	return out
}

// ReadRegion parses every record whose first byte lies in the region,
// reading past End to finish the last record (the Hadoop-style rule). A
// region not starting at 0 first skips the partial line that began in the
// previous region. fn receives a reused *Record; it must copy what it keeps.
func ReadRegion(buf []byte, reg Region, fn func(rec *Record) error) error {
	pos := reg.Start
	if pos > 0 {
		// Skip the line straddling the boundary; its owner is the previous
		// region. Searching from Start-1 keeps a record that begins exactly
		// at Start: if buf[Start-1] is the previous record's newline, the
		// scan lands back on Start.
		nl := bytes.IndexByte(buf[pos-1:], '\n')
		if nl < 0 {
			return nil // region is inside the final line
		}
		pos += nl
	}
	rec := &Record{}
	for pos < reg.End && pos < len(buf) {
		nl := bytes.IndexByte(buf[pos:], '\n')
		var line []byte
		if nl < 0 {
			line = buf[pos:]
			pos = len(buf)
		} else {
			line = buf[pos : pos+nl]
			pos += nl + 1
		}
		if len(line) > 0 && line[len(line)-1] == '\r' {
			line = line[:len(line)-1]
		}
		if len(line) == 0 {
			continue
		}
		rec.Fields = SplitFields(line, rec.Fields)
		if err := fn(rec); err != nil {
			return err
		}
	}
	return nil
}
