package fastcsv

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
)

func TestParseInt(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		err  bool
	}{
		{"0", 0, false},
		{"123", 123, false},
		{"-45", -45, false},
		{"+7", 7, false},
		{"", 0, true},
		{"-", 0, true},
		{"12a", 0, true},
		{"9223372036854775807", 9223372036854775807, false},
	}
	for _, c := range cases {
		got, err := ParseInt([]byte(c.in))
		if (err != nil) != c.err {
			t.Errorf("ParseInt(%q) err = %v", c.in, err)
			continue
		}
		if !c.err && got != c.want {
			t.Errorf("ParseInt(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestParseIntQuickAgainstSprintf(t *testing.T) {
	f := func(v int64) bool {
		got, err := ParseInt([]byte(fmt.Sprintf("%d", v)))
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScanLines(t *testing.T) {
	input := []byte("a,b\r\nc,d\n\ne,f") // CRLF, blank line, no final newline
	var lines []string
	err := ScanLines(input, func(line []byte) error {
		lines = append(lines, string(line))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a,b", "c,d", "e,f"}
	if len(lines) != len(want) {
		t.Fatalf("lines = %q", lines)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Fatalf("lines = %q, want %q", lines, want)
		}
	}
}

func TestScanLinesErrorPropagates(t *testing.T) {
	sentinel := fmt.Errorf("stop")
	err := ScanLines([]byte("a\nb\n"), func([]byte) error { return sentinel })
	if err != sentinel {
		t.Error("error must propagate")
	}
}

func TestSplitFields(t *testing.T) {
	fields := SplitFields([]byte("2000,1,2,06,150"), nil)
	if len(fields) != 5 || string(fields[0]) != "2000" || string(fields[4]) != "150" {
		t.Errorf("fields = %q", fields)
	}
	fields = SplitFields([]byte("solo"), fields)
	if len(fields) != 1 || string(fields[0]) != "solo" {
		t.Errorf("single field = %q", fields)
	}
	fields = SplitFields([]byte("a,,b"), fields)
	if len(fields) != 3 || len(fields[1]) != 0 {
		t.Errorf("empty middle field = %q", fields)
	}
}

func TestRegions(t *testing.T) {
	regs := Regions(100, 4)
	if len(regs) != 4 || regs[0].Start != 0 || regs[3].End != 100 {
		t.Fatalf("regions = %+v", regs)
	}
	for i := 1; i < len(regs); i++ {
		if regs[i].Start != regs[i-1].End {
			t.Fatal("regions must tile the input")
		}
	}
	if len(Regions(3, 10)) != 3 {
		t.Error("more regions than bytes must clamp")
	}
	if len(Regions(10, 0)) != 1 {
		t.Error("zero readers clamps to 1")
	}
}

// buildCSV makes n numbered lines of varying width.
func buildCSV(n int) []byte {
	var b bytes.Buffer
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%d,%d\n", i, i*i%977)
	}
	return b.Bytes()
}

func TestReadRegionExactlyOnce(t *testing.T) {
	// The Hadoop-style rule: across any region split, every record is read
	// exactly once, by the region containing its first byte.
	buf := buildCSV(1000)
	for _, k := range []int{1, 2, 3, 7, 16} {
		seen := make([]int, 1000)
		for _, reg := range Regions(len(buf), k) {
			err := ReadRegion(buf, reg, func(rec *Record) error {
				id, err := rec.Int(0)
				if err != nil {
					return err
				}
				seen[id]++
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		for id, c := range seen {
			if c != 1 {
				t.Fatalf("k=%d: record %d read %d times", k, id, c)
			}
		}
	}
}

func TestReadRegionQuickProperty(t *testing.T) {
	// Property: for random record counts and region counts, total records
	// read equals the number of lines.
	f := func(nLines uint8, k uint8) bool {
		n := int(nLines)%200 + 1
		buf := buildCSV(n)
		total := 0
		for _, reg := range Regions(len(buf), int(k)%8+1) {
			ReadRegion(buf, reg, func(*Record) error { total++; return nil })
		}
		return total == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReadRegionBoundaryInsideFinalLine(t *testing.T) {
	buf := []byte("1,2\n3,4") // final line unterminated
	var got []int64
	for _, reg := range Regions(len(buf), 3) {
		ReadRegion(buf, reg, func(rec *Record) error {
			v, _ := rec.Int(0)
			got = append(got, v)
			return nil
		})
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("got %v", got)
	}
}

func TestReadRegionCRLF(t *testing.T) {
	buf := []byte("1,2\r\n3,4\r\n")
	n := 0
	ReadRegion(buf, Region{0, len(buf)}, func(rec *Record) error {
		if _, err := rec.Int(1); err != nil {
			return err
		}
		n++
		return nil
	})
	if n != 2 {
		t.Errorf("read %d records", n)
	}
}

func BenchmarkReadRegion(b *testing.B) {
	buf := buildCSV(100000)
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ReadRegion(buf, Region{0, len(buf)}, func(rec *Record) error {
			_, err := rec.Int(1)
			return err
		})
	}
}
