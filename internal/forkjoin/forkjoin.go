// Package forkjoin is JStar's task scheduler substrate: a work-stealing pool
// with fork/join tasks and a chunked parallel-for, playing the role of the
// Java 7 Fork/Join framework the JStar compiler targets (paper §5).
//
// Each worker owns a deque: it pushes and pops forked tasks at the tail
// (LIFO, good locality) while idle workers steal from the head (FIFO, steals
// the largest remaining subproblems first in divide-and-conquer workloads).
// Join is work-first: a joiner that finds the task still pending executes it
// inline instead of blocking, so joining never deadlocks the pool.
package forkjoin

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
)

// Worker identifies the executing pool worker inside a task body. Task
// functions receive the Worker so that Fork can push to the worker's own
// deque. A nil Worker is valid everywhere and means "external caller".
type Worker struct {
	pool *Pool
	id   int
	rng  *rand.Rand
}

// Pool returns the worker's pool.
func (w *Worker) Pool() *Pool { return w.pool }

// ID returns the worker index in [0, pool.Size()).
func (w *Worker) ID() int { return w.id }

// Task is a unit of work that may be forked onto the pool and joined later.
type Task struct {
	fn    func(*Worker)
	state atomic.Int32 // 0 pending, 1 claimed, 2 done
	done  chan struct{}
}

func newTask(fn func(*Worker)) *Task {
	return &Task{fn: fn, done: make(chan struct{})}
}

// tryRun claims and executes the task on w; reports whether this call ran it.
func (t *Task) tryRun(w *Worker) bool {
	if !t.state.CompareAndSwap(0, 1) {
		return false
	}
	t.fn(w)
	t.state.Store(2)
	close(t.done)
	return true
}

// Done reports whether the task has completed.
func (t *Task) Done() bool { return t.state.Load() == 2 }

// deque is a mutex-protected double-ended queue. The owner pushes/pops at
// the tail; thieves steal from the head. A mutex per worker is plenty here:
// JStar tasks are rule firings, orders of magnitude heavier than the lock.
type deque struct {
	mu    sync.Mutex
	tasks []*Task
}

func (d *deque) push(t *Task) {
	d.mu.Lock()
	d.tasks = append(d.tasks, t)
	d.mu.Unlock()
}

func (d *deque) pop() *Task {
	d.mu.Lock()
	defer d.mu.Unlock()
	for n := len(d.tasks); n > 0; n = len(d.tasks) {
		t := d.tasks[n-1]
		d.tasks[n-1] = nil
		d.tasks = d.tasks[:n-1]
		if t.state.Load() == 0 {
			return t
		}
	}
	return nil
}

func (d *deque) steal() *Task {
	d.mu.Lock()
	defer d.mu.Unlock()
	for len(d.tasks) > 0 {
		t := d.tasks[0]
		d.tasks = d.tasks[1:]
		if t.state.Load() == 0 {
			return t
		}
	}
	return nil
}

// Pool is a fixed-size work-stealing pool. Create pools with NewPool.
type Pool struct {
	deques []*deque
	global deque

	idleMu   sync.Mutex
	idleCond *sync.Cond
	idle     int
	stopping bool

	pending atomic.Int64 // tasks pushed but not yet claimed-and-finished
	wg      sync.WaitGroup
	size    int
}

// NewPool starts a pool with n workers (n < 1 is clamped to 1). The paper's
// --threads=N flag maps directly onto n.
func NewPool(n int) *Pool {
	if n < 1 {
		n = 1
	}
	p := &Pool{size: n}
	p.idleCond = sync.NewCond(&p.idleMu)
	p.deques = make([]*deque, n)
	for i := range p.deques {
		p.deques[i] = &deque{}
	}
	for i := 0; i < n; i++ {
		p.wg.Add(1)
		go p.workerLoop(i)
	}
	return p
}

// Size returns the number of workers.
func (p *Pool) Size() int { return p.size }

func (p *Pool) workerLoop(id int) {
	defer p.wg.Done()
	w := &Worker{pool: p, id: id, rng: rand.New(rand.NewSource(int64(id)*1000003 + 17))}
	for {
		t := p.findTask(w)
		if t == nil {
			return // pool stopped
		}
		if t.tryRun(w) {
			p.pending.Add(-1)
		}
	}
}

func (p *Pool) findTask(w *Worker) *Task {
	for {
		if t := p.deques[w.id].pop(); t != nil {
			return t
		}
		if t := p.global.steal(); t != nil {
			return t
		}
		start := w.rng.Intn(p.size)
		for i := 0; i < p.size; i++ {
			v := (start + i) % p.size
			if v == w.id {
				continue
			}
			if t := p.deques[v].steal(); t != nil {
				return t
			}
		}
		// Nothing found: park until new work arrives or shutdown.
		p.idleMu.Lock()
		if p.stopping {
			p.idleMu.Unlock()
			return nil
		}
		if p.pending.Load() > 0 {
			// Work appeared between the scan and parking; rescan.
			p.idleMu.Unlock()
			runtime.Gosched()
			continue
		}
		p.idle++
		p.idleCond.Wait()
		p.idle--
		stopping := p.stopping
		p.idleMu.Unlock()
		if stopping {
			return nil
		}
	}
}

func (p *Pool) signal() {
	p.idleMu.Lock()
	if p.idle > 0 {
		p.idleCond.Broadcast()
	}
	p.idleMu.Unlock()
}

// Submit schedules fn on the pool and returns its joinable task. Called
// from outside a worker it pushes to the shared inject queue; tasks that
// want cheap recursive forking should use Worker.Fork inside their body.
func (p *Pool) Submit(fn func(*Worker)) *Task {
	t := newTask(fn)
	p.pending.Add(1)
	p.global.push(t)
	p.signal()
	return t
}

// Fork schedules fn on this worker's own deque (LIFO), where it will be
// popped next by this worker or stolen by an idle one.
func (w *Worker) Fork(fn func(*Worker)) *Task {
	t := newTask(fn)
	p := w.pool
	p.pending.Add(1)
	p.deques[w.id].push(t)
	p.signal()
	return t
}

// Join waits for t, running it inline on w if no worker claimed it yet.
// w may be nil for external joiners.
func (w *Worker) Join(t *Task) {
	if t.tryRun(w) {
		w.pool.pending.Add(-1)
		return
	}
	<-t.done
}

// Join waits for the task from outside the pool, helping by running it
// inline (with a nil Worker) if it is still unclaimed.
func (p *Pool) Join(t *Task) {
	if t.tryRun(nil) {
		p.pending.Add(-1)
		return
	}
	<-t.done
}

// Shutdown stops the workers. Tasks already claimed finish; unclaimed tasks
// can still be completed by joiners (join helping runs them inline).
func (p *Pool) Shutdown() {
	p.idleMu.Lock()
	p.stopping = true
	p.idleCond.Broadcast()
	p.idleMu.Unlock()
	p.wg.Wait()
}

// Invoke runs all fns across the pool and returns when every one has
// completed. The calling goroutine participates.
func (p *Pool) Invoke(fns ...func(*Worker)) {
	switch len(fns) {
	case 0:
		return
	case 1:
		fns[0](nil)
		return
	}
	tasks := make([]*Task, len(fns))
	for i, fn := range fns {
		tasks[i] = newTask(fn)
		p.pending.Add(1)
		p.global.push(tasks[i])
	}
	p.signal()
	for i := len(tasks) - 1; i >= 0; i-- {
		p.Join(tasks[i])
	}
}

// For runs body(i) for every i in [0, n) across the pool and the calling
// goroutine. The index space is claimed in chunks through an atomic cursor;
// grain is the minimum chunk size (1 for heavy bodies, larger to amortise
// the cursor for cheap bodies).
func (p *Pool) For(n, grain int, body func(i int)) {
	p.ForWorker(n, grain, func(_, i int) { body(i) })
}

// ForWorker is For with the executing worker's slot index passed to body:
// slot 0 is the calling goroutine, slot 1+w.ID() a pool worker. The engine
// uses the slot to give each participant its own put buffer.
func (p *Pool) ForWorker(n, grain int, body func(slot, i int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	chunk := n / (p.size * 4)
	if chunk < grain {
		chunk = grain
	}
	if n <= chunk || p.size == 1 {
		for i := 0; i < n; i++ {
			body(0, i)
		}
		return
	}
	var cursor atomic.Int64
	run := func(w *Worker) {
		slot := 0
		if w != nil {
			slot = w.id + 1
		}
		for {
			lo := int(cursor.Add(int64(chunk))) - chunk
			if lo >= n {
				return
			}
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			for i := lo; i < hi; i++ {
				body(slot, i)
			}
		}
	}
	helpers := p.size
	if max := (n + chunk - 1) / chunk; helpers > max-1 {
		helpers = max - 1
	}
	tasks := make([]*Task, 0, helpers)
	for i := 0; i < helpers; i++ {
		t := newTask(run)
		tasks = append(tasks, t)
		p.pending.Add(1)
		p.global.push(t)
	}
	p.signal()
	run(nil) // caller participates as slot 0
	for _, t := range tasks {
		p.Join(t)
	}
}

// ForEach is For over a slice.
func ForEach[T any](p *Pool, items []T, grain int, body func(item T)) {
	p.For(len(items), grain, func(i int) { body(items[i]) })
}

// Reduce computes a parallel tree reduction of items with a user-defined
// associative operator — the runtime support behind JStar's reduce
// operations (paper §1.3). identity must be the operator's unit.
func Reduce[T any](p *Pool, items []T, identity T, op func(a, b T) T) T {
	n := len(items)
	if n == 0 {
		return identity
	}
	workers := p.size
	if workers > n {
		workers = n
	}
	partial := make([]T, workers)
	chunk := (n + workers - 1) / workers
	p.For(workers, 1, func(w int) {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		acc := identity
		for i := lo; i < hi; i++ {
			acc = op(acc, items[i])
		}
		partial[w] = acc
	})
	acc := identity
	for _, v := range partial {
		acc = op(acc, v)
	}
	return acc
}

// Scan computes an inclusive parallel prefix scan of items under op in two
// passes (per-chunk reduce, then per-chunk rescan with carried offsets).
// It returns a new slice; items is not modified.
func Scan[T any](p *Pool, items []T, identity T, op func(a, b T) T) []T {
	n := len(items)
	out := make([]T, n)
	if n == 0 {
		return out
	}
	workers := p.size
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	sums := make([]T, workers)
	p.For(workers, 1, func(w int) {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		acc := identity
		for i := lo; i < hi; i++ {
			acc = op(acc, items[i])
		}
		sums[w] = acc
	})
	offsets := make([]T, workers)
	acc := identity
	for w := 0; w < workers; w++ {
		offsets[w] = acc
		acc = op(acc, sums[w])
	}
	p.For(workers, 1, func(w int) {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		acc := offsets[w]
		for i := lo; i < hi; i++ {
			acc = op(acc, items[i])
			out[i] = acc
		}
	})
	return out
}
