package forkjoin

import (
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestSubmitAndJoin(t *testing.T) {
	p := NewPool(4)
	defer p.Shutdown()
	var ran atomic.Bool
	task := p.Submit(func(*Worker) { ran.Store(true) })
	p.Join(task)
	if !ran.Load() || !task.Done() {
		t.Error("submitted task did not run")
	}
}

func TestInvokeRunsAll(t *testing.T) {
	p := NewPool(4)
	defer p.Shutdown()
	const n = 100
	var count atomic.Int64
	fns := make([]func(*Worker), n)
	for i := range fns {
		fns[i] = func(*Worker) { count.Add(1) }
	}
	p.Invoke(fns...)
	if count.Load() != n {
		t.Errorf("ran %d of %d", count.Load(), n)
	}
}

func TestInvokeEmptyAndSingle(t *testing.T) {
	p := NewPool(2)
	defer p.Shutdown()
	p.Invoke() // no-op
	ran := false
	p.Invoke(func(*Worker) { ran = true })
	if !ran {
		t.Error("single invoke")
	}
}

func TestForCoversAllIndices(t *testing.T) {
	p := NewPool(8)
	defer p.Shutdown()
	const n = 100000
	seen := make([]int32, n)
	p.For(n, 1, func(i int) { atomic.AddInt32(&seen[i], 1) })
	for i, v := range seen {
		if v != 1 {
			t.Fatalf("index %d executed %d times", i, v)
		}
	}
}

func TestForSmallAndEmpty(t *testing.T) {
	p := NewPool(4)
	defer p.Shutdown()
	p.For(0, 1, func(int) { t.Error("body on empty range") })
	p.For(-3, 1, func(int) { t.Error("body on negative range") })
	count := 0
	p.For(3, 10, func(int) { count++ }) // n < grain runs inline
	if count != 3 {
		t.Errorf("count = %d", count)
	}
}

func TestForGrainClamped(t *testing.T) {
	p := NewPool(4)
	defer p.Shutdown()
	var count atomic.Int64
	p.For(1000, 0, func(int) { count.Add(1) }) // grain 0 clamps to 1
	if count.Load() != 1000 {
		t.Errorf("count = %d", count.Load())
	}
}

func TestRecursiveForkJoin(t *testing.T) {
	// Fibonacci via fork/join exercises the deques and join-helping.
	p := NewPool(4)
	defer p.Shutdown()
	var fib func(w *Worker, n int) int
	fib = func(w *Worker, n int) int {
		if n < 2 {
			return n
		}
		if n < 10 || w == nil {
			return fib(w, n-1) + fib(w, n-2)
		}
		var left int
		lt := w.Fork(func(lw *Worker) { left = fib(lw, n-1) })
		right := fib(w, n-2)
		w.Join(lt)
		return left + right
	}
	var result int
	task := p.Submit(func(w *Worker) { result = fib(w, 25) })
	p.Join(task)
	if result != 75025 {
		t.Errorf("fib(25) = %d, want 75025", result)
	}
}

func TestWorkerIdentity(t *testing.T) {
	p := NewPool(3)
	defer p.Shutdown()
	var id atomic.Int64
	id.Store(-99)
	task := p.Submit(func(w *Worker) {
		if w != nil {
			id.Store(int64(w.ID()))
			if w.Pool() != p {
				t.Error("worker pool mismatch")
			}
		}
	})
	p.Join(task)
	got := id.Load()
	// Either a worker ran it (0..2) or the joiner helped inline (-99 stays).
	if got != -99 && (got < 0 || got > 2) {
		t.Errorf("worker id = %d", got)
	}
}

func TestPoolSizeClamp(t *testing.T) {
	p := NewPool(0)
	defer p.Shutdown()
	if p.Size() != 1 {
		t.Errorf("Size = %d, want 1", p.Size())
	}
	done := make(chan struct{})
	p.Submit(func(*Worker) { close(done) })
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("single worker never ran the task")
	}
}

func TestShutdownStopsWorkers(t *testing.T) {
	p := NewPool(4)
	var count atomic.Int64
	for i := 0; i < 10; i++ {
		p.Submit(func(*Worker) { count.Add(1) })
	}
	p.Shutdown() // must return (not hang)
}

func TestJoinHelpingAfterShutdown(t *testing.T) {
	p := NewPool(1)
	p.Shutdown()
	// Task submitted after shutdown is still completable via join helping.
	task := p.Submit(func(*Worker) {})
	doneCh := make(chan struct{})
	go func() {
		p.Join(task)
		close(doneCh)
	}()
	select {
	case <-doneCh:
	case <-time.After(2 * time.Second):
		t.Fatal("join helping did not complete the task")
	}
}

func TestForEach(t *testing.T) {
	p := NewPool(4)
	defer p.Shutdown()
	items := make([]int, 1000)
	for i := range items {
		items[i] = i
	}
	var sum atomic.Int64
	ForEach(p, items, 8, func(v int) { sum.Add(int64(v)) })
	if sum.Load() != 999*1000/2 {
		t.Errorf("sum = %d", sum.Load())
	}
}

func TestReduceSum(t *testing.T) {
	p := NewPool(8)
	defer p.Shutdown()
	items := make([]int64, 123457)
	for i := range items {
		items[i] = int64(i)
	}
	got := Reduce(p, items, 0, func(a, b int64) int64 { return a + b })
	want := int64(123456) * 123457 / 2
	if got != want {
		t.Errorf("Reduce = %d, want %d", got, want)
	}
}

func TestReduceEmptyIsIdentity(t *testing.T) {
	p := NewPool(2)
	defer p.Shutdown()
	if got := Reduce(p, nil, 42, func(a, b int) int { return a + b }); got != 42 {
		t.Errorf("Reduce(empty) = %d", got)
	}
}

func TestReduceMatchesSequentialProperty(t *testing.T) {
	p := NewPool(4)
	defer p.Shutdown()
	f := func(xs []int32) bool {
		items := make([]int64, len(xs))
		var want int64
		for i, x := range xs {
			items[i] = int64(x)
			want += int64(x)
		}
		got := Reduce(p, items, 0, func(a, b int64) int64 { return a + b })
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScanPrefixSums(t *testing.T) {
	p := NewPool(4)
	defer p.Shutdown()
	items := []int{1, 2, 3, 4, 5, 6, 7}
	got := Scan(p, items, 0, func(a, b int) int { return a + b })
	want := []int{1, 3, 6, 10, 15, 21, 28}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Scan = %v, want %v", got, want)
		}
	}
}

func TestScanMatchesSequentialProperty(t *testing.T) {
	p := NewPool(8)
	defer p.Shutdown()
	f := func(xs []int32) bool {
		items := make([]int64, len(xs))
		for i, x := range xs {
			items[i] = int64(x)
		}
		got := Scan(p, items, 0, func(a, b int64) int64 { return a + b })
		var acc int64
		for i, x := range items {
			acc += x
			if got[i] != acc {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScanEmpty(t *testing.T) {
	p := NewPool(2)
	defer p.Shutdown()
	if got := Scan(p, []int{}, 0, func(a, b int) int { return a + b }); len(got) != 0 {
		t.Error("Scan(empty)")
	}
}

func TestManySequentialBatches(t *testing.T) {
	// Simulates the engine's step loop: many small For batches in a row.
	// Regression test for parking/wakeup races (lost signals would hang).
	p := NewPool(4)
	defer p.Shutdown()
	var total atomic.Int64
	for step := 0; step < 2000; step++ {
		p.For(8, 1, func(int) { total.Add(1) })
	}
	if total.Load() != 16000 {
		t.Errorf("total = %d", total.Load())
	}
}

func BenchmarkForOverhead(b *testing.B) {
	p := NewPool(4)
	defer p.Shutdown()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.For(64, 1, func(int) {})
	}
}

func BenchmarkReduce1M(b *testing.B) {
	p := NewPool(8)
	defer p.Shutdown()
	items := make([]int64, 1<<20)
	for i := range items {
		items[i] = int64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Reduce(p, items, 0, func(a, x int64) int64 { return a + x })
	}
}
