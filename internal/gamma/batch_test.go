package gamma

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"github.com/jstar-lang/jstar/internal/tuple"
)

// batchTestSchema is a 3-int-column table for the batched-read property
// tests; the first two columns serve as query-prefix material.
func batchTestSchema() *tuple.Schema {
	return tuple.MustSchema("T",
		[]tuple.Column{
			{Name: "a", Kind: tuple.KindInt},
			{Name: "b", Kind: tuple.KindInt},
			{Name: "c", Kind: tuple.KindInt},
		},
		[]tuple.OrderEntry{tuple.Lit("T")})
}

// batchFactories is every store backend the batched read path must agree
// with its per-query path on — the BatchSelector implementations (tree,
// hash, columnar, inthash) and fallback-only stores (skip list,
// array-of-hashsets): seven implementations in all.
func batchFactories() map[string]StoreFactory {
	return map[string]StoreFactory{
		"tree":       NewTreeStore,
		"skip":       NewSkipStore,
		"hash-k1":    NewHashStore(1),
		"hash-k2":    NewHashStore(2),
		"array-hash": NewArrayOfHashSets(0, 0, 7),
		"columnar":   NewColumnarStore,
		"inthash":    NewIntHashStore(1),
	}
}

// randomQuery builds a query with a random prefix length (0..2 — including
// the under-specified lengths that force hash stores onto their scan
// fallback) and an occasional residual predicate.
func randomQuery(r *rand.Rand) Query {
	q := Query{}
	plen := r.Intn(3)
	for i := 0; i < plen; i++ {
		q.Prefix = append(q.Prefix, tuple.Int(int64(r.Intn(8))))
	}
	if r.Intn(3) == 0 {
		min := int64(r.Intn(8))
		q.Where = func(t *tuple.Tuple) bool { return t.Int("c") >= min }
	}
	return q
}

// collect renders a tuple as a comparable string.
func renderTuple(t *tuple.Tuple) string {
	return fmt.Sprintf("(%d,%d,%d)", t.Int("a"), t.Int("b"), t.Int("c"))
}

// TestSelectBatchMatchesSelect is the property/fuzz test for the batched
// read path: for random tuple sets and random query sequences, SelectBatch
// must return, per query, exactly the tuple set an independent Select of
// that query returns — on every store backend. Results are compared as
// sorted multisets because the hash-backed stores iterate Go maps on their
// scan fallback, whose order is deliberately unspecified.
func TestSelectBatchMatchesSelect(t *testing.T) {
	for name, factory := range batchFactories() {
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 25; seed++ {
				r := rand.New(rand.NewSource(seed))
				s := batchTestSchema()
				st := factory(s)
				n := 1 + r.Intn(200)
				for i := 0; i < n; i++ {
					st.Insert(tuple.New(s,
						tuple.Int(int64(r.Intn(8))),
						tuple.Int(int64(r.Intn(8))),
						tuple.Int(int64(r.Intn(8)))))
				}
				qs := make([]Query, 1+r.Intn(32))
				for i := range qs {
					qs[i] = randomQuery(r)
				}
				want := make([][]string, len(qs))
				for i := range qs {
					st.Select(qs[i], func(tp *tuple.Tuple) bool {
						want[i] = append(want[i], renderTuple(tp))
						return true
					})
				}
				got := make([][]string, len(qs))
				SelectBatch(st, qs, func(qi int, tp *tuple.Tuple) bool {
					got[qi] = append(got[qi], renderTuple(tp))
					return true
				})
				for i := range qs {
					if len(want[i]) != len(got[i]) {
						t.Fatalf("seed %d query %d: Select returned %d tuples, SelectBatch %d",
							seed, i, len(want[i]), len(got[i]))
					}
					sort.Strings(want[i])
					sort.Strings(got[i])
					for j := range want[i] {
						if want[i][j] != got[i][j] {
							t.Fatalf("seed %d query %d result %d: Select %s, SelectBatch %s",
								seed, i, j, want[i][j], got[i][j])
						}
					}
				}
			}
		})
	}
}

// TestSelectBatchEarlyStop: fn returning false must end only the current
// query's iteration; later queries still run in full — matching what a
// loop of independent Selects with per-query early exit does.
func TestSelectBatchEarlyStop(t *testing.T) {
	for name, factory := range batchFactories() {
		t.Run(name, func(t *testing.T) {
			s := batchTestSchema()
			st := factory(s)
			for i := int64(0); i < 6; i++ {
				st.Insert(tuple.New(s, tuple.Int(i%2), tuple.Int(i), tuple.Int(i)))
			}
			qs := []Query{
				{Prefix: []tuple.Value{tuple.Int(0)}},
				{Prefix: []tuple.Value{tuple.Int(1)}},
			}
			counts := make([]int, len(qs))
			SelectBatch(st, qs, func(qi int, tp *tuple.Tuple) bool {
				counts[qi]++
				return qi != 0 // stop query 0 after its first result
			})
			if counts[0] != 1 {
				t.Errorf("query 0 delivered %d results after early stop, want 1", counts[0])
			}
			if counts[1] != 3 {
				t.Errorf("query 1 delivered %d results, want all 3", counts[1])
			}
		})
	}
}
