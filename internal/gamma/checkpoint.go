package gamma

import (
	"slices"

	"github.com/jstar-lang/jstar/internal/tuple"
)

// Checkpoint support: the durability tier snapshots Gamma by draining each
// table's store the same way Migrate does — Scan, then sort by field
// values — so a checkpoint of a quiesced state is deterministic regardless
// of which store kind backs the table or what order tuples arrived in.

// Dump drains st in CompareFields order.
func Dump(st Store) []*tuple.Tuple {
	drained := make([]*tuple.Tuple, 0, st.Len())
	st.Scan(func(t *tuple.Tuple) bool {
		drained = append(drained, t)
		return true
	})
	if len(drained) > 1 {
		slices.SortFunc(drained, func(a, b *tuple.Tuple) int { return a.CompareFields(b) })
	}
	return drained
}

// Schemas returns the registered schemas in dense-ID order — the stable
// iteration order checkpoints serialize tables in.
func (db *DB) Schemas() []*tuple.Schema {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]*tuple.Schema, 0, len(db.dense))
	for i := range db.dense {
		if db.dense[i].schema != nil {
			out = append(out, db.dense[i].schema)
		}
	}
	return out
}

// Restore bulk-loads rows into table s's store. It is only correct on a
// freshly built database before any derivation has run: restored rows do
// not fire rules (recovery refires them by replaying the WAL tail through
// the ordinary put path).
func (db *DB) Restore(s *tuple.Schema, rows []*tuple.Tuple) {
	InsertBatch(db.Table(s), rows, nil)
}
