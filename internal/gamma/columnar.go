package gamma

import (
	"sync"

	"github.com/jstar-lang/jstar/internal/tuple"
)

// This file implements the compressed append-only columnar store — the
// scan-oriented Gamma backend the store planner picks for append-mostly
// tables that are read by full scans (or not read at all). Instead of
// retaining one boxed *Tuple per row like the NavigableSet and hash
// backends, it keeps one typed slice per column: ints and bools as int64,
// floats as float64, and strings dictionary-encoded as int64 ids into a
// shared dictionary (the compression — a table with a low-cardinality
// string column stores each distinct string once). Tuples are materialised
// on demand only for rows that survive the column-level prefix filter, so
// a selective Select touches the key columns' slices sequentially — the
// cache-friendly stride the paper's native-array stores (§6.4) get from
// flat arrays — and rejected rows never allocate.

// colStore is the columnar Store implementation.
type colStore struct {
	mu     sync.RWMutex
	schema *tuple.Schema
	n      int
	nums   [][]int64   // per column: int/bool payloads or string dict ids
	floats [][]float64 // per column: float payloads
	dict   map[string]int64
	strs   []string           // dict id -> string
	seen   map[uint64][]int32 // full tuple hash -> row ids (set-semantics dedup)
}

// NewColumnarStore returns the compressed append-only columnar store for s.
func NewColumnarStore(s *tuple.Schema) Store {
	return &colStore{
		schema: s,
		nums:   make([][]int64, s.Arity()),
		floats: make([][]float64, s.Arity()),
		seen:   make(map[uint64][]int32),
	}
}

func (cs *colStore) StoreKind() string { return "columnar" }

// rowEqual compares stored row r against t column by column, on the typed
// payloads (no materialisation).
func (cs *colStore) rowEqual(r int32, t *tuple.Tuple) bool {
	for i, c := range cs.schema.Columns {
		v := t.Field(i)
		switch c.Kind {
		case tuple.KindFloat:
			if !v.Equal(tuple.Float(cs.floats[i][r])) {
				return false
			}
		case tuple.KindString:
			id, ok := cs.dict[v.AsString()]
			if !ok || id != cs.nums[i][r] {
				return false
			}
		case tuple.KindBool:
			if v.AsBool() != (cs.nums[i][r] != 0) {
				return false
			}
		default:
			if v.AsInt() != cs.nums[i][r] {
				return false
			}
		}
	}
	return true
}

// value reconstructs one cell as a Value (a stack struct, not a boxed row).
func (cs *colStore) value(r int32, col int) tuple.Value {
	switch cs.schema.Columns[col].Kind {
	case tuple.KindFloat:
		return tuple.Float(cs.floats[col][r])
	case tuple.KindString:
		return tuple.String_(cs.strs[cs.nums[col][r]])
	case tuple.KindBool:
		return tuple.Bool(cs.nums[col][r] != 0)
	default:
		return tuple.Int(cs.nums[col][r])
	}
}

// materialise rebuilds row r as a Tuple, for callers that matched it.
func (cs *colStore) materialise(r int32) *tuple.Tuple {
	vals := make([]tuple.Value, cs.schema.Arity())
	for i := range vals {
		vals[i] = cs.value(r, i)
	}
	return tuple.New(cs.schema, vals...)
}

func (cs *colStore) insertLocked(t *tuple.Tuple) bool {
	h := t.Hash()
	for _, r := range cs.seen[h] {
		if cs.rowEqual(r, t) {
			return false
		}
	}
	for i, c := range cs.schema.Columns {
		v := t.Field(i)
		switch c.Kind {
		case tuple.KindFloat:
			cs.floats[i] = append(cs.floats[i], v.AsFloat())
		case tuple.KindString:
			s := v.AsString()
			id, ok := cs.dict[s]
			if !ok {
				if cs.dict == nil {
					cs.dict = make(map[string]int64)
				}
				id = int64(len(cs.strs))
				cs.dict[s] = id
				cs.strs = append(cs.strs, s)
			}
			cs.nums[i] = append(cs.nums[i], id)
		case tuple.KindBool:
			var b int64
			if v.AsBool() {
				b = 1
			}
			cs.nums[i] = append(cs.nums[i], b)
		default:
			cs.nums[i] = append(cs.nums[i], v.AsInt())
		}
	}
	cs.seen[h] = append(cs.seen[h], int32(cs.n))
	cs.n++
	return true
}

func (cs *colStore) Insert(t *tuple.Tuple) bool {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.insertLocked(t)
}

// InsertBatch appends a run of tuples under one lock episode — the batched
// put path; appends into columnar slices are the cheapest insert any
// backend offers, which is why the planner likes this store for
// append-mostly tables.
func (cs *colStore) InsertBatch(ts []*tuple.Tuple, live []*tuple.Tuple) []*tuple.Tuple {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	for _, t := range ts {
		if cs.insertLocked(t) {
			live = append(live, t)
		}
	}
	return live
}

func (cs *colStore) Len() int {
	cs.mu.RLock()
	defer cs.mu.RUnlock()
	return cs.n
}

func (cs *colStore) Scan(fn func(*tuple.Tuple) bool) {
	cs.mu.RLock()
	defer cs.mu.RUnlock()
	for r := int32(0); r < int32(cs.n); r++ {
		if !fn(cs.materialise(r)) {
			return
		}
	}
}

// colPred is one compiled prefix-column predicate: string and int/bool
// values are resolved to their raw int64 encoding once per query, so the
// per-row filter is an int64 compare against the column slice. Float
// columns keep the Value fallback for its NaN-equals-NaN semantics.
type colPred struct {
	col  int
	kind tuple.Kind
	n    int64       // int/bool payload or string dict id
	v    tuple.Value // float fallback
}

// compilePrefix resolves a query's equality prefix against the column
// encodings. ok is false when the prefix can never match: a value of the
// wrong kind for its column (Value.Equal is false across kinds), or a
// string absent from the dictionary.
func (cs *colStore) compilePrefix(prefix []tuple.Value) ([]colPred, bool) {
	preds := make([]colPred, len(prefix))
	for i, v := range prefix {
		kind := cs.schema.Columns[i].Kind
		preds[i] = colPred{col: i, kind: kind}
		switch kind {
		case tuple.KindFloat:
			preds[i].v = v
		case tuple.KindString:
			if v.Kind() != tuple.KindString {
				return nil, false
			}
			id, ok := cs.dict[v.AsString()]
			if !ok {
				return nil, false
			}
			preds[i].n = id
		case tuple.KindBool:
			if v.Kind() != tuple.KindBool {
				return nil, false
			}
			if v.AsBool() {
				preds[i].n = 1
			}
		default:
			if v.Kind() != tuple.KindInt {
				return nil, false
			}
			preds[i].n = v.AsInt()
		}
	}
	return preds, true
}

// matchPrefix tests the compiled predicates directly on the column
// slices; rows rejected here are never materialised.
func (cs *colStore) matchPrefix(r int32, preds []colPred) bool {
	for _, p := range preds {
		if p.kind == tuple.KindFloat {
			if !tuple.Float(cs.floats[p.col][r]).Equal(p.v) {
				return false
			}
		} else if cs.nums[p.col][r] != p.n {
			return false
		}
	}
	return true
}

func (cs *colStore) selectLocked(q Query, fn func(*tuple.Tuple) bool) {
	preds, ok := cs.compilePrefix(q.Prefix)
	if !ok {
		return
	}
	for r := int32(0); r < int32(cs.n); r++ {
		if !cs.matchPrefix(r, preds) {
			continue
		}
		t := cs.materialise(r)
		if q.Where == nil || q.Where(t) {
			if !fn(t) {
				return
			}
		}
	}
}

func (cs *colStore) Select(q Query, fn func(*tuple.Tuple) bool) {
	cs.mu.RLock()
	defer cs.mu.RUnlock()
	cs.selectLocked(q, fn)
}

// SelectBatch runs the whole probe sequence under one lock episode; each
// query is a columnar filter pass, so a chunk of scan-shaped queries pays
// one synchronisation for the lot.
func (cs *colStore) SelectBatch(qs []Query, fn func(qi int, t *tuple.Tuple) bool) {
	cs.mu.RLock()
	defer cs.mu.RUnlock()
	for i := range qs {
		cs.selectLocked(qs[i], func(t *tuple.Tuple) bool { return fn(i, t) })
	}
}
