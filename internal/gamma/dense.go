package gamma

import (
	"fmt"
	"math"
	"sync/atomic"

	"github.com/jstar-lang/jstar/internal/tuple"
)

// This file implements the paper's "native-arrays" data structure
// optimisation (§6.4): tables with dense, limited-range integer keys and a
// single dependent value are stored in flat arrays instead of tree sets.
// The §6.6 Median program additionally rolls the array over two iterations
// (a Gamma garbage-collection optimisation that keeps only the 'current'
// and 'next' copies).

// Dense3D stores a table of shape
//
//	table T(int a, int b, int c -> int value)
//
// with a ∈ [0,na), b ∈ [0,nb), c ∈ [0,nc), as na flat int64 arrays — the
// analogue of the Java 2D int arrays used for each matrix in §6.4.
// Typed accessors bypass tuple construction in inner loops, exactly like the
// generated array code; the Store interface remains available for queries.
type Dense3D struct {
	schema     *tuple.Schema
	na, nb, nc int
	vals       []int64  // atomic access
	present    []uint32 // atomic bitmap, 1 bit per cell
	count      atomic.Int64
}

// NewDense3D returns a StoreFactory for a 4-column int table with key
// ranges [0,na) x [0,nb) x [0,nc).
func NewDense3D(na, nb, nc int) StoreFactory {
	return func(s *tuple.Schema) Store {
		if s.Arity() != 4 {
			panic(fmt.Sprintf("jstar: Dense3D needs 4 int columns, table %s has %d", s.Name, s.Arity()))
		}
		for _, c := range s.Columns {
			if c.Kind != tuple.KindInt {
				panic(fmt.Sprintf("jstar: Dense3D column %s must be int", c.Name))
			}
		}
		n := na * nb * nc
		return &Dense3D{
			schema: s, na: na, nb: nb, nc: nc,
			vals:    make([]int64, n),
			present: make([]uint32, (n+31)/32),
		}
	}
}

func (d *Dense3D) StoreKind() string {
	return fmt.Sprintf("dense3d:%d,%d,%d", d.na, d.nb, d.nc)
}

func (d *Dense3D) idx(a, b, c int64) int {
	if a < 0 || a >= int64(d.na) || b < 0 || b >= int64(d.nb) || c < 0 || c >= int64(d.nc) {
		panic(fmt.Sprintf("jstar: Dense3D index (%d,%d,%d) out of range (%d,%d,%d)",
			a, b, c, d.na, d.nb, d.nc))
	}
	return (int(a)*d.nb+int(b))*d.nc + int(c)
}

// SetInt writes value at key (a,b,c); the typed fast path for generated
// inner loops. It reports whether the cell was newly set.
func (d *Dense3D) SetInt(a, b, c, value int64) bool {
	i := d.idx(a, b, c)
	atomic.StoreInt64(&d.vals[i], value)
	w, bit := i/32, uint32(1)<<(i%32)
	for {
		old := atomic.LoadUint32(&d.present[w])
		if old&bit != 0 {
			return false
		}
		if atomic.CompareAndSwapUint32(&d.present[w], old, old|bit) {
			d.count.Add(1)
			return true
		}
	}
}

// Plane returns a read-only, row-major view of slice a of the key space —
// the generated code's direct int[][] access (§6.4). Callers must not use
// a plane that is still being written concurrently; the matrix-multiply
// rules read operand planes that were fully loaded in an earlier causal
// step, which is exactly the access pattern the causality law guarantees.
func (d *Dense3D) Plane(a int64) []int64 {
	if a < 0 || a >= int64(d.na) {
		panic(fmt.Sprintf("jstar: Dense3D plane %d out of range %d", a, d.na))
	}
	base := int(a) * d.nb * d.nc
	return d.vals[base : base+d.nb*d.nc]
}

// GetInt reads the value at key (a,b,c); ok is false for unset cells.
func (d *Dense3D) GetInt(a, b, c int64) (int64, bool) {
	i := d.idx(a, b, c)
	if atomic.LoadUint32(&d.present[i/32])&(uint32(1)<<(i%32)) == 0 {
		return 0, false
	}
	return atomic.LoadInt64(&d.vals[i]), true
}

// Insert stores a 4-field tuple (a, b, c -> value).
func (d *Dense3D) Insert(t *tuple.Tuple) bool {
	a, b, c, v := t.Field(0).AsInt(), t.Field(1).AsInt(), t.Field(2).AsInt(), t.Field(3).AsInt()
	i := d.idx(a, b, c)
	if atomic.LoadUint32(&d.present[i/32])&(uint32(1)<<(i%32)) != 0 {
		// Key already present: duplicate tuple if the value agrees,
		// otherwise the primary-key invariant is broken.
		if atomic.LoadInt64(&d.vals[i]) == v {
			return false
		}
		panic(fmt.Sprintf("jstar: table %s: key (%d,%d,%d) bound twice with different values",
			d.schema.Name, a, b, c))
	}
	return d.SetInt(a, b, c, v)
}

// Len returns the number of set cells.
func (d *Dense3D) Len() int { return int(d.count.Load()) }

// Scan visits set cells in key order, materialising tuples on demand.
func (d *Dense3D) Scan(fn func(*tuple.Tuple) bool) {
	for a := 0; a < d.na; a++ {
		for b := 0; b < d.nb; b++ {
			for c := 0; c < d.nc; c++ {
				if v, ok := d.GetInt(int64(a), int64(b), int64(c)); ok {
					t := tuple.New(d.schema, tuple.Int(int64(a)), tuple.Int(int64(b)),
						tuple.Int(int64(c)), tuple.Int(v))
					if !fn(t) {
						return
					}
				}
			}
		}
	}
}

// Select narrows the scanned key ranges using the equality prefix.
func (d *Dense3D) Select(q Query, fn func(*tuple.Tuple) bool) {
	loA, hiA := 0, d.na
	loB, hiB := 0, d.nb
	loC, hiC := 0, d.nc
	if len(q.Prefix) > 0 {
		a := int(q.Prefix[0].AsInt())
		loA, hiA = a, a+1
	}
	if len(q.Prefix) > 1 {
		b := int(q.Prefix[1].AsInt())
		loB, hiB = b, b+1
	}
	if len(q.Prefix) > 2 {
		c := int(q.Prefix[2].AsInt())
		loC, hiC = c, c+1
	}
	for a := loA; a < hiA; a++ {
		for b := loB; b < hiB; b++ {
			for c := loC; c < hiC; c++ {
				v, ok := d.GetInt(int64(a), int64(b), int64(c))
				if !ok {
					continue
				}
				t := tuple.New(d.schema, tuple.Int(int64(a)), tuple.Int(int64(b)),
					tuple.Int(int64(c)), tuple.Int(v))
				if q.Matches(t) && !fn(t) {
					return
				}
			}
		}
	}
}

// RollingFloatArray stores a table of shape
//
//	table Data(int iter, int index -> double value)
//	  orderby (Int, seq iter, Data, seq index)
//
// as double[2][n] with iter taken modulo 2 — the §6.6 Median optimisation.
// Only the two most recent iterations are retained; inserting iteration i+2
// implicitly garbage-collects iteration i.
type RollingFloatArray struct {
	schema *tuple.Schema
	n      int
	vals   [2][]uint64 // float64 bits, atomic access
	count  atomic.Int64
}

// NewRollingFloatArray returns a StoreFactory for an (int iter, int index ->
// double value) table with index ∈ [0, n).
func NewRollingFloatArray(n int) StoreFactory {
	return func(s *tuple.Schema) Store {
		if s.Arity() != 3 || s.Columns[0].Kind != tuple.KindInt ||
			s.Columns[1].Kind != tuple.KindInt || s.Columns[2].Kind != tuple.KindFloat {
			panic(fmt.Sprintf("jstar: RollingFloatArray needs (int, int -> double), got %s", s))
		}
		r := &RollingFloatArray{schema: s, n: n}
		r.vals[0] = make([]uint64, n)
		r.vals[1] = make([]uint64, n)
		return r
	}
}

func (r *RollingFloatArray) StoreKind() string { return fmt.Sprintf("rolling:%d", r.n) }

// SetF writes value at (iter, index); the typed fast path.
func (r *RollingFloatArray) SetF(iter, index int64, value float64) {
	atomic.StoreUint64(&r.vals[iter&1][index], math.Float64bits(value))
}

// GetF reads the value at (iter, index).
func (r *RollingFloatArray) GetF(iter, index int64) float64 {
	return math.Float64frombits(atomic.LoadUint64(&r.vals[iter&1][index]))
}

// Size returns the array length n.
func (r *RollingFloatArray) Size() int { return r.n }

// Insert stores a (iter, index -> value) tuple.
func (r *RollingFloatArray) Insert(t *tuple.Tuple) bool {
	iter, index := t.Field(0).AsInt(), t.Field(1).AsInt()
	if index < 0 || index >= int64(r.n) {
		panic(fmt.Sprintf("jstar: table %s index %d out of [0,%d)", r.schema.Name, index, r.n))
	}
	r.SetF(iter, index, t.Field(2).AsFloat())
	r.count.Add(1)
	return true
}

// Len returns the number of inserts performed (tuples logically stored;
// rolled-over iterations are no longer retrievable but did exist).
func (r *RollingFloatArray) Len() int { return int(r.count.Load()) }

// Scan visits the two retained iterations' cells as tuples (iter reported
// as the parity 0 or 1, since older iterations have been collected).
func (r *RollingFloatArray) Scan(fn func(*tuple.Tuple) bool) {
	for iter := int64(0); iter < 2; iter++ {
		for i := 0; i < r.n; i++ {
			t := tuple.New(r.schema, tuple.Int(iter), tuple.Int(int64(i)),
				tuple.Float(r.GetF(iter, int64(i))))
			if !fn(t) {
				return
			}
		}
	}
}

// Select supports prefix queries on (iter) or (iter, index).
func (r *RollingFloatArray) Select(q Query, fn func(*tuple.Tuple) bool) {
	if len(q.Prefix) >= 2 {
		iter, index := q.Prefix[0].AsInt(), q.Prefix[1].AsInt()
		t := tuple.New(r.schema, tuple.Int(iter), tuple.Int(index),
			tuple.Float(r.GetF(iter, index)))
		if q.Matches(t) {
			fn(t)
		}
		return
	}
	if len(q.Prefix) == 1 {
		iter := q.Prefix[0].AsInt()
		for i := 0; i < r.n; i++ {
			t := tuple.New(r.schema, tuple.Int(iter), tuple.Int(int64(i)),
				tuple.Float(r.GetF(iter, int64(i))))
			if q.Matches(t) && !fn(t) {
				return
			}
		}
		return
	}
	r.Scan(func(t *tuple.Tuple) bool {
		if q.Matches(t) {
			return fn(t)
		}
		return true
	})
}
