// Package gamma implements the Gamma database — the main store that
// (conceptually) holds every tuple a JStar program has generated (paper §3,
// Fig 3). Gamma contains a separate data structure per table, and store
// choice is layered:
//
//   - Store is the per-table storage contract (Insert/Len/Select/Scan, with
//     the optional BatchSelector/BatchStore fast paths for the engine's
//     batched dispatch). Seven implementations ship: the NavigableSet
//     defaults (tree for sequential code, skip list for parallel code,
//     ordered by all fields so queries over any ordered subset traverse
//     only that subset), a sharded hash index, the array-of-hashsets of
//     §6.2, the dense native arrays of §6.4, the rolling two-iteration
//     array of §6.6, plus a compressed append-only columnar store and an
//     int-specialised open-addressing store.
//   - StoreFactory builds a Store for a schema — the paper's stage-4
//     data-structure hint, overridden per table through DB.SetStore (the
//     factory-method seam the paper describes overriding manually).
//   - StorePlan names those choices: a serialisable table -> kind-spec map
//     ("hash:2", "columnar", ...) validated by FactoryFor against the
//     schema before any run starts. Plans are what the profile-guided
//     planner emits (core.PlanFromStats), what the compiler derives
//     statically from query patterns, and what the -store-plan/-save-plan
//     flags replay between runs — the §1.5 loop of run statistics driving
//     data-structure selection, made a first-class artifact.
package gamma

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"

	"github.com/jstar-lang/jstar/internal/llrb"
	"github.com/jstar-lang/jstar/internal/skiplist"
	"github.com/jstar-lang/jstar/internal/tuple"
)

// Query selects tuples of one table: equality on a prefix of the columns
// plus an optional residual predicate (the boolean lambda part of a JStar
// query, e.g. `get Done(v, [distance < d])`).
type Query struct {
	// Prefix holds equality constraints on columns 0..len(Prefix)-1.
	Prefix []tuple.Value
	// Where, if non-nil, filters the remaining candidates.
	Where func(*tuple.Tuple) bool
}

// Matches reports whether t satisfies the query.
func (q Query) Matches(t *tuple.Tuple) bool {
	for i, v := range q.Prefix {
		if !t.Field(i).Equal(v) {
			return false
		}
	}
	return q.Where == nil || q.Where(t)
}

// Store is one table's storage in the Gamma database. Insert may be called
// concurrently by parallel rule tasks; Select and Scan may run concurrently
// with Insert (weakly consistent, like the Java concurrent collections).
type Store interface {
	// Insert adds t, returning false if an equal tuple was already stored
	// (set-oriented semantics).
	Insert(t *tuple.Tuple) bool
	// Len returns the number of stored tuples.
	Len() int
	// Select visits the tuples matching q until fn returns false.
	Select(q Query, fn func(*tuple.Tuple) bool)
	// Scan visits every tuple until fn returns false.
	Scan(fn func(*tuple.Tuple) bool)
}

// StoreFactory builds a store for a schema; the per-table compiler hint.
type StoreFactory func(s *tuple.Schema) Store

// --- Default NavigableSet store -------------------------------------------

// navSeqStore is the sequential default (TreeSet analogue).
type navSeqStore struct {
	mu sync.RWMutex // sequential programs never contend; cheap insurance
	t  *llrb.Tree[*tuple.Tuple]
}

// NewTreeStore returns the sequential NavigableSet store for s.
func NewTreeStore(s *tuple.Schema) Store {
	return &navSeqStore{t: llrb.New(func(a, b *tuple.Tuple) int { return a.CompareFields(b) })}
}

func (st *navSeqStore) StoreKind() string { return "tree" }

func (st *navSeqStore) Insert(t *tuple.Tuple) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.t.Insert(t)
}

func (st *navSeqStore) Len() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.t.Len()
}

func (st *navSeqStore) Scan(fn func(*tuple.Tuple) bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	st.t.Ascend(fn)
}

func (st *navSeqStore) Select(q Query, fn func(*tuple.Tuple) bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	st.selectLocked(q, fn)
}

// SelectBatch takes the tree lock once for the whole probe sequence
// instead of once per query. Batched callers pass queries derived from a
// sorted trigger chunk, so consecutive probes descend into nearby
// subtrees (the sorted-probe locality of an ordered store).
func (st *navSeqStore) SelectBatch(qs []Query, fn func(qi int, t *tuple.Tuple) bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	for i := range qs {
		st.selectLocked(qs[i], func(t *tuple.Tuple) bool { return fn(i, t) })
	}
}

func (st *navSeqStore) selectLocked(q Query, fn func(*tuple.Tuple) bool) {
	if len(q.Prefix) == 0 {
		st.t.Ascend(func(t *tuple.Tuple) bool {
			if q.Matches(t) {
				return fn(t)
			}
			return true
		})
		return
	}
	probe := prefixProbe(q.Prefix)
	st.t.AscendFrom(probe, func(t *tuple.Tuple) bool {
		if !hasPrefix(t, q.Prefix) {
			return false // left the prefix range; ordered store ends scan
		}
		if q.Where == nil || q.Where(t) {
			return fn(t)
		}
		return true
	})
}

// navConcStore is the parallel default (ConcurrentSkipListSet analogue).
type navConcStore struct {
	l *skiplist.List[*tuple.Tuple]
}

// NewSkipStore returns the concurrent NavigableSet store for s.
func NewSkipStore(s *tuple.Schema) Store {
	return &navConcStore{l: skiplist.New(func(a, b *tuple.Tuple) int { return a.CompareFields(b) })}
}

func (st *navConcStore) StoreKind() string { return "skip" }

func (st *navConcStore) Insert(t *tuple.Tuple) bool { return st.l.Insert(t) }
func (st *navConcStore) Len() int                   { return st.l.Len() }
func (st *navConcStore) Scan(fn func(*tuple.Tuple) bool) {
	st.l.Ascend(fn)
}

func (st *navConcStore) Select(q Query, fn func(*tuple.Tuple) bool) {
	if len(q.Prefix) == 0 {
		st.l.Ascend(func(t *tuple.Tuple) bool {
			if q.Matches(t) {
				return fn(t)
			}
			return true
		})
		return
	}
	probe := prefixProbe(q.Prefix)
	st.l.AscendFrom(probe, func(t *tuple.Tuple) bool {
		if !hasPrefix(t, q.Prefix) {
			return false
		}
		if q.Where == nil || q.Where(t) {
			return fn(t)
		}
		return true
	})
}

// prefixProbe builds a pseudo-tuple that sorts before every real tuple with
// the given prefix: trailing fields are invalid Values, which Compare orders
// before all valid values. The probe deliberately bypasses schema checks.
func prefixProbe(prefix []tuple.Value) *tuple.Tuple {
	return tuple.NewRaw(prefix)
}

func hasPrefix(t *tuple.Tuple, prefix []tuple.Value) bool {
	for i, v := range prefix {
		if !t.Field(i).Equal(v) {
			return false
		}
	}
	return true
}

// --- Hash index store ------------------------------------------------------

// hashStore indexes tuples by a hash of their first k columns, sharded to
// keep parallel inserts cheap. Queries whose prefix length >= k hit one
// bucket; other queries fall back to a full scan (the paper's point about
// choosing structures per observed query shape, §1.4).
type hashStore struct {
	k      int
	shards [hashShards]hashShard
}

type hashShard struct {
	mu sync.RWMutex
	m  map[uint64][]*tuple.Tuple
	n  int
}

const hashShards = 64

// NewHashStore returns a store hashing on the first k columns of s.
func NewHashStore(k int) StoreFactory {
	return func(s *tuple.Schema) Store {
		if k < 1 || k > s.Arity() {
			panic(fmt.Sprintf("jstar: hash store on %s: k=%d out of range", s.Name, k))
		}
		return &hashStore{k: k}
	}
}

func (st *hashStore) StoreKind() string { return fmt.Sprintf("hash:%d", st.k) }

func keyHash(vals []tuple.Value) uint64 {
	h := tuple.HashSeed
	for _, v := range vals {
		h = v.Hash(h)
	}
	return h
}

func (st *hashStore) keyOf(t *tuple.Tuple) uint64 {
	h := tuple.HashSeed
	for i := 0; i < st.k; i++ {
		h = t.Field(i).Hash(h)
	}
	return h
}

func (st *hashStore) Insert(t *tuple.Tuple) bool {
	h := st.keyOf(t)
	sh := &st.shards[h%hashShards]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.m == nil {
		sh.m = make(map[uint64][]*tuple.Tuple)
	}
	for _, e := range sh.m[h] {
		if e.Equal(t) {
			return false
		}
	}
	sh.m[h] = append(sh.m[h], t)
	sh.n++
	return true
}

func (st *hashStore) Len() int {
	n := 0
	for i := range st.shards {
		st.shards[i].mu.RLock()
		n += st.shards[i].n
		st.shards[i].mu.RUnlock()
	}
	return n
}

func (st *hashStore) Scan(fn func(*tuple.Tuple) bool) {
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.RLock()
		for _, bucket := range sh.m {
			for _, t := range bucket {
				if !fn(t) {
					sh.mu.RUnlock()
					return
				}
			}
		}
		sh.mu.RUnlock()
	}
}

func (st *hashStore) Select(q Query, fn func(*tuple.Tuple) bool) {
	if len(q.Prefix) < st.k {
		// Under-specified query: full scan with residual filter.
		st.Scan(func(t *tuple.Tuple) bool {
			if q.Matches(t) {
				return fn(t)
			}
			return true
		})
		return
	}
	h := keyHash(q.Prefix[:st.k])
	sh := &st.shards[h%hashShards]
	sh.mu.RLock()
	bucket := sh.m[h]
	sh.mu.RUnlock()
	for _, t := range bucket {
		if q.Matches(t) {
			if !fn(t) {
				return
			}
		}
	}
}

// SelectBatch hashes every fully-specified query prefix in one tight pass
// before any bucket is probed — the prefetch-friendly loop: by the time
// the probe loop dereferences shard s for query i, the hash computation
// for queries i+1… has already walked their prefix values, so the
// hashing work overlaps the bucket cache misses instead of alternating
// with them. Under-specified queries fall back to the scanning Select.
func (st *hashStore) SelectBatch(qs []Query, fn func(qi int, t *tuple.Tuple) bool) {
	hashes := make([]uint64, len(qs))
	for i := range qs {
		if len(qs[i].Prefix) >= st.k {
			hashes[i] = keyHash(qs[i].Prefix[:st.k])
		}
	}
	for i := range qs {
		q := qs[i]
		if len(q.Prefix) < st.k {
			st.Select(q, func(t *tuple.Tuple) bool { return fn(i, t) })
			continue
		}
		h := hashes[i]
		sh := &st.shards[h%hashShards]
		sh.mu.RLock()
		bucket := sh.m[h]
		sh.mu.RUnlock()
		for _, t := range bucket {
			if q.Matches(t) && !fn(i, t) {
				break
			}
		}
	}
}

// --- Array-of-hashsets store -----------------------------------------------

// arrayHashStore is the paper's custom PvWatts Gamma structure (§6.2): a
// dense array indexed by one small-range int column, with a hash set inside
// each slot. Queries that fix the indexed column touch exactly one slot.
type arrayHashStore struct {
	col    int
	lo, hi int64
	slots  []hashShard
}

// NewArrayOfHashSets indexes column col (an int with values in [lo, hi]).
func NewArrayOfHashSets(col int, lo, hi int64) StoreFactory {
	return func(s *tuple.Schema) Store {
		if col < 0 || col >= s.Arity() || s.Columns[col].Kind != tuple.KindInt || hi < lo {
			panic(fmt.Sprintf("jstar: array-of-hashsets on %s: bad column %d or range [%d,%d]",
				s.Name, col, lo, hi))
		}
		return &arrayHashStore{col: col, lo: lo, hi: hi, slots: make([]hashShard, hi-lo+1)}
	}
}

func (st *arrayHashStore) StoreKind() string {
	return fmt.Sprintf("arrayhash:%d,%d,%d", st.col, st.lo, st.hi)
}

func (st *arrayHashStore) slot(v int64) *hashShard {
	if v < st.lo || v > st.hi {
		panic(fmt.Sprintf("jstar: array-of-hashsets: value %d outside [%d,%d]", v, st.lo, st.hi))
	}
	return &st.slots[v-st.lo]
}

func (st *arrayHashStore) Insert(t *tuple.Tuple) bool {
	sh := st.slot(t.Field(st.col).AsInt())
	h := t.Hash()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.m == nil {
		sh.m = make(map[uint64][]*tuple.Tuple)
	}
	for _, e := range sh.m[h] {
		if e.Equal(t) {
			return false
		}
	}
	sh.m[h] = append(sh.m[h], t)
	sh.n++
	return true
}

func (st *arrayHashStore) Len() int {
	n := 0
	for i := range st.slots {
		st.slots[i].mu.RLock()
		n += st.slots[i].n
		st.slots[i].mu.RUnlock()
	}
	return n
}

func (st *arrayHashStore) Scan(fn func(*tuple.Tuple) bool) {
	for i := range st.slots {
		sh := &st.slots[i]
		sh.mu.RLock()
		for _, bucket := range sh.m {
			for _, t := range bucket {
				if !fn(t) {
					sh.mu.RUnlock()
					return
				}
			}
		}
		sh.mu.RUnlock()
	}
}

func (st *arrayHashStore) Select(q Query, fn func(*tuple.Tuple) bool) {
	if st.col < len(q.Prefix) {
		sh := st.slot(q.Prefix[st.col].AsInt())
		sh.mu.RLock()
		// Snapshot bucket pointers so fn can run without holding the lock.
		var snapshot []*tuple.Tuple
		for _, bucket := range sh.m {
			snapshot = append(snapshot, bucket...)
		}
		sh.mu.RUnlock()
		for _, t := range snapshot {
			if q.Matches(t) {
				if !fn(t) {
					return
				}
			}
		}
		return
	}
	st.Scan(func(t *tuple.Tuple) bool {
		if q.Matches(t) {
			return fn(t)
		}
		return true
	})
}

// BatchSelector is an optional Store extension: SelectBatch runs a
// sequence of queries under one synchronisation episode — the read-side
// half of the engine's batched rule dispatch, where a chunk of firings
// issues one probe sequence per table instead of a Select (and a lock
// acquisition) per tuple.
type BatchSelector interface {
	SelectBatch(qs []Query, fn func(qi int, t *tuple.Tuple) bool)
}

// SelectBatch visits, for each query qs[qi] in index order, the tuples
// matching it, via the store's BatchSelector fast path when available and
// per-query Select otherwise. fn returning false ends iteration of the
// current query only; the next query still runs (matching what a loop of
// independent Selects would do). Callers on the batched firing path pass
// queries derived from a sorted trigger chunk, so ordered backends probe
// in ascending key order — the sorted-probe locality the tree stores
// exploit.
func SelectBatch(st Store, qs []Query, fn func(qi int, t *tuple.Tuple) bool) {
	if bs, ok := st.(BatchSelector); ok {
		bs.SelectBatch(qs, fn)
		return
	}
	for i := range qs {
		st.Select(qs[i], func(t *tuple.Tuple) bool { return fn(i, t) })
	}
}

// BatchStore is an optional Store extension: InsertBatch inserts a
// schema-homogeneous run of tuples, appending the inserted (non-duplicate)
// ones to live, under a single synchronisation episode where the backend
// allows it. Callers should pass the run sorted by field values so ordered
// backends insert with locality.
type BatchStore interface {
	InsertBatch(ts []*tuple.Tuple, live []*tuple.Tuple) []*tuple.Tuple
}

// InsertBatch inserts ts into st via its BatchStore fast path when
// available, falling back to per-tuple Insert. Inserted tuples are appended
// to live, which is returned.
func InsertBatch(st Store, ts []*tuple.Tuple, live []*tuple.Tuple) []*tuple.Tuple {
	if bs, ok := st.(BatchStore); ok {
		return bs.InsertBatch(ts, live)
	}
	for _, t := range ts {
		if st.Insert(t) {
			live = append(live, t)
		}
	}
	return live
}

// InsertBatch takes the tree lock once for the whole run of tuples instead
// of once per tuple — the Gamma half of the engine's batched put path.
func (st *navSeqStore) InsertBatch(ts []*tuple.Tuple, live []*tuple.Tuple) []*tuple.Tuple {
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, t := range ts {
		if st.t.Insert(t) {
			live = append(live, t)
		}
	}
	return live
}

// denseEntry pairs a registered schema with its store for the lock-free
// DB.Table fast path. The store rides behind an atomic pointer so Migrate
// can swap a rebuilt backend in at a quiescent boundary while concurrent
// Query/Snapshot readers keep traversing the old (still complete, no longer
// written) store — no reader ever observes a half-built one.
type denseEntry struct {
	schema *tuple.Schema
	store  atomic.Pointer[Store]
}

// DB is the Gamma database: one store per registered table.
//
// Tables registered up front through Register are resolved by the schema's
// dense ID with no locking — the engine's hot path, hit on every query and
// insert. Schemas never registered (ad-hoc tests, tools) fall back to a
// mutex-guarded map exactly as before. The per-table store is no longer
// frozen at Register: Migrate (and SetStore on an already-registered table)
// rebuilds it and atomically swaps the dense entry.
type DB struct {
	dense    []denseEntry // slice immutable after Register; entries swappable
	mu       sync.RWMutex
	migMu    sync.Mutex // serialises Migrate/SetStore rebuilds
	stores   map[*tuple.Schema]Store
	factory  StoreFactory            // default factory
	override map[string]StoreFactory // per-table compiler hints
}

// NewDB returns a Gamma database whose default per-table store is built by
// factory (NewTreeStore for sequential programs, NewSkipStore for parallel).
func NewDB(factory StoreFactory) *DB {
	return &DB{
		stores:   make(map[*tuple.Schema]Store),
		factory:  factory,
		override: make(map[string]StoreFactory),
	}
}

// SetStore installs a per-table store factory (a data-structure hint,
// paper stage 4). Called before Register it records the hint for the
// eager store construction; called after Register (or after the map path
// built a store) it rebuilds the existing table through Migrate — the old
// silently-ignored case — so the call always takes effect. The rebuild
// error (a factory/contents mismatch) is returned; pre-Register calls
// always return nil.
func (db *DB) SetStore(table string, f StoreFactory) error {
	db.mu.Lock()
	db.override[table] = f
	var target *tuple.Schema
	for i := range db.dense {
		if s := db.dense[i].schema; s != nil && s.Name == table {
			target = s
			break
		}
	}
	if target == nil {
		for s := range db.stores {
			if s.Name == table {
				target = s
				break
			}
		}
	}
	db.mu.Unlock()
	if target == nil {
		return nil // not built yet; the hint applies at Register/first use
	}
	_, err := db.Migrate(target, f, nil)
	return err
}

// Register builds the dense store table for schemas, indexed by their IDs
// (assigned densely at Program declaration time). It must be called before
// execution starts — once registered, Table lookups for these schemas are a
// bounds check, a pointer compare and an atomic load, with no lock. Stores
// are created eagerly, honouring any SetStore hints.
func (db *DB) Register(schemas []*tuple.Schema) {
	db.mu.Lock()
	defer db.mu.Unlock()
	max := -1
	for _, s := range schemas {
		if id := int(s.ID()); id > max {
			max = id
		}
	}
	db.dense = make([]denseEntry, max+1)
	for _, s := range schemas {
		f := db.factory
		if of, ok := db.override[s.Name]; ok {
			f = of
		}
		e := &db.dense[s.ID()]
		e.schema = s
		st := f(s)
		e.store.Store(&st)
	}
}

// Migrate rebuilds table s's store through factory f and atomically swaps
// it in: drain the old store (Scan into scratch, which is reused when its
// capacity suffices), sort by field values so ordered backends load with
// locality, bulk-insert into the freshly built store, swap. Concurrent
// readers that resolved the table before the swap finish against the old
// store — complete and no longer written — so they never observe a
// half-built one. Callers must guarantee no concurrent *writer* for the
// table (the engine migrates only at quiescent step boundaries, where the
// coordinator owns all mutation). It returns the drained tuples so callers
// can recycle the scratch buffer.
//
// If the new store does not accept every drained tuple (a lossy factory —
// e.g. a rolling window narrower than the contents), the swap is aborted
// and the table keeps its old store.
func (db *DB) Migrate(s *tuple.Schema, f StoreFactory, scratch []*tuple.Tuple) ([]*tuple.Tuple, error) {
	db.migMu.Lock()
	defer db.migMu.Unlock()
	var entry *denseEntry
	if id := int(s.ID()); id >= 0 && id < len(db.dense) && db.dense[id].schema == s {
		entry = &db.dense[id]
	} else {
		db.mu.RLock()
		_, ok := db.stores[s]
		db.mu.RUnlock()
		if !ok {
			return scratch, fmt.Errorf("jstar: migrate %s: table has no store", s.Name)
		}
	}
	var old Store
	if entry != nil {
		old = *entry.store.Load()
	} else {
		db.mu.RLock()
		old = db.stores[s]
		db.mu.RUnlock()
	}
	drained := scratch[:0]
	old.Scan(func(t *tuple.Tuple) bool {
		drained = append(drained, t)
		return true
	})
	if len(drained) > 1 {
		slices.SortFunc(drained, func(a, b *tuple.Tuple) int { return a.CompareFields(b) })
	}
	neu := f(s)
	InsertBatch(neu, drained, nil)
	if neu.Len() != len(drained) {
		return drained, fmt.Errorf("jstar: migrate %s to %s: rebuilt store holds %d of %d tuples; keeping the old store",
			s.Name, KindOf(neu), neu.Len(), len(drained))
	}
	if entry != nil {
		entry.store.Store(&neu)
	} else {
		db.mu.Lock()
		db.stores[s] = neu
		db.mu.Unlock()
	}
	return drained, nil
}

// Table returns (creating on first use) the store for s.
func (db *DB) Table(s *tuple.Schema) Store {
	if id := int(s.ID()); id < len(db.dense) && db.dense[id].schema == s {
		return *db.dense[id].store.Load()
	}
	db.mu.RLock()
	st, ok := db.stores[s]
	db.mu.RUnlock()
	if ok {
		return st
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if st, ok = db.stores[s]; ok {
		return st
	}
	f := db.factory
	if of, ok := db.override[s.Name]; ok {
		f = of
	}
	st = f(s)
	db.stores[s] = st
	return st
}

// Insert adds t to its table's store.
func (db *DB) Insert(t *tuple.Tuple) bool { return db.Table(t.Schema()).Insert(t) }

// Len returns the total number of stored tuples across tables.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	n := 0
	for i := range db.dense {
		if st := db.dense[i].store.Load(); st != nil {
			n += (*st).Len()
		}
	}
	for _, st := range db.stores {
		n += st.Len()
	}
	return n
}
