package gamma

import (
	"sync"
	"testing"

	"github.com/jstar-lang/jstar/internal/tuple"
)

func pvSchema() *tuple.Schema {
	// Column order chosen so (year, month) is the query prefix.
	return tuple.MustSchema("PvWatts",
		[]tuple.Column{
			{Name: "year", Kind: tuple.KindInt},
			{Name: "month", Kind: tuple.KindInt},
			{Name: "day", Kind: tuple.KindInt},
			{Name: "power", Kind: tuple.KindInt},
		},
		[]tuple.OrderEntry{tuple.Lit("PvWatts")})
}

func pv(s *tuple.Schema, y, m, d, p int64) *tuple.Tuple {
	return tuple.New(s, tuple.Int(y), tuple.Int(m), tuple.Int(d), tuple.Int(p))
}

// allStores runs a subtest against every general-purpose store type.
func allStores(t *testing.T, fn func(t *testing.T, st Store)) {
	t.Helper()
	s := pvSchema()
	factories := map[string]StoreFactory{
		"tree":     NewTreeStore,
		"skip":     NewSkipStore,
		"hash2":    NewHashStore(2),
		"arrayhsh": NewArrayOfHashSets(1, 1, 12), // month column, range 1..12
		"columnar": NewColumnarStore,
		"inthash1": NewIntHashStore(1),
		"inthash2": NewIntHashStore(2),
	}
	for name, f := range factories {
		t.Run(name, func(t *testing.T) { fn(t, f(s)) })
	}
}

func TestInsertDedupAndLen(t *testing.T) {
	allStores(t, func(t *testing.T, st Store) {
		s := pvSchema()
		if !st.Insert(pv(s, 2000, 1, 1, 50)) {
			t.Fatal("first insert")
		}
		if st.Insert(pv(s, 2000, 1, 1, 50)) {
			t.Error("duplicate insert must return false")
		}
		if !st.Insert(pv(s, 2000, 1, 1, 60)) {
			t.Error("different power is a different tuple")
		}
		if st.Len() != 2 {
			t.Errorf("Len = %d", st.Len())
		}
	})
}

func TestSelectByPrefix(t *testing.T) {
	allStores(t, func(t *testing.T, st Store) {
		s := pvSchema()
		for y := int64(2000); y < 2003; y++ {
			for m := int64(1); m <= 12; m++ {
				for d := int64(1); d <= 3; d++ {
					st.Insert(pv(s, y, m, d, y*100+m))
				}
			}
		}
		// get PvWatts(2001, 6): equality prefix (year, month).
		var got []*tuple.Tuple
		st.Select(Query{Prefix: []tuple.Value{tuple.Int(2001), tuple.Int(6)}},
			func(tp *tuple.Tuple) bool { got = append(got, tp); return true })
		if len(got) != 3 {
			t.Fatalf("Select returned %d tuples, want 3", len(got))
		}
		for _, tp := range got {
			if tp.Int("year") != 2001 || tp.Int("month") != 6 {
				t.Errorf("wrong tuple %v", tp)
			}
		}
	})
}

func TestSelectWithWhere(t *testing.T) {
	allStores(t, func(t *testing.T, st Store) {
		s := pvSchema()
		for d := int64(1); d <= 10; d++ {
			st.Insert(pv(s, 2000, 3, d, d*10))
		}
		n := 0
		st.Select(Query{
			Prefix: []tuple.Value{tuple.Int(2000), tuple.Int(3)},
			Where:  func(tp *tuple.Tuple) bool { return tp.Int("power") > 50 },
		}, func(*tuple.Tuple) bool { n++; return true })
		if n != 5 {
			t.Errorf("Where filter matched %d, want 5", n)
		}
	})
}

func TestSelectEarlyStop(t *testing.T) {
	allStores(t, func(t *testing.T, st Store) {
		s := pvSchema()
		for d := int64(1); d <= 10; d++ {
			st.Insert(pv(s, 2000, 3, d, 0))
		}
		n := 0
		st.Select(Query{Prefix: []tuple.Value{tuple.Int(2000)}},
			func(*tuple.Tuple) bool { n++; return n < 4 })
		if n != 4 {
			t.Errorf("early stop visited %d", n)
		}
	})
}

func TestSelectNoPrefixScansAll(t *testing.T) {
	allStores(t, func(t *testing.T, st Store) {
		s := pvSchema()
		for d := int64(1); d <= 5; d++ {
			st.Insert(pv(s, 2000, int64(d%12+1), d, d))
		}
		n := 0
		st.Select(Query{Where: func(tp *tuple.Tuple) bool { return tp.Int("power")%2 == 0 }},
			func(*tuple.Tuple) bool { n++; return true })
		if n != 2 {
			t.Errorf("unfiltered Select matched %d, want 2", n)
		}
	})
}

func TestScanVisitsEverything(t *testing.T) {
	allStores(t, func(t *testing.T, st Store) {
		s := pvSchema()
		for d := int64(1); d <= 7; d++ {
			st.Insert(pv(s, 2000, 1, d, d))
		}
		n := 0
		st.Scan(func(*tuple.Tuple) bool { n++; return true })
		if n != 7 {
			t.Errorf("Scan visited %d", n)
		}
	})
}

func TestConcurrentInsertAllStores(t *testing.T) {
	allStores(t, func(t *testing.T, st Store) {
		s := pvSchema()
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := int64(0); i < 500; i++ {
					st.Insert(pv(s, 2000+i%3, i%12+1, int64(w)*1000+i, i))
				}
			}(w)
		}
		wg.Wait()
		if st.Len() != 8*500 {
			t.Errorf("Len = %d, want %d", st.Len(), 8*500)
		}
	})
}

func TestTreeStoreOrderedScan(t *testing.T) {
	s := pvSchema()
	st := NewTreeStore(s)
	st.Insert(pv(s, 2002, 1, 1, 0))
	st.Insert(pv(s, 2000, 1, 1, 0))
	st.Insert(pv(s, 2001, 1, 1, 0))
	var years []int64
	st.Scan(func(tp *tuple.Tuple) bool { years = append(years, tp.Int("year")); return true })
	if years[0] != 2000 || years[1] != 2001 || years[2] != 2002 {
		t.Errorf("ordered scan = %v", years)
	}
}

func TestHashStoreFallbackScan(t *testing.T) {
	s := pvSchema()
	st := NewHashStore(2)(s)
	for d := int64(1); d <= 5; d++ {
		st.Insert(pv(s, 2000, 1, d, d))
	}
	// Prefix shorter than the hash key (k=2) falls back to scan+filter.
	n := 0
	st.Select(Query{Prefix: []tuple.Value{tuple.Int(2000)}},
		func(*tuple.Tuple) bool { n++; return true })
	if n != 5 {
		t.Errorf("fallback scan matched %d", n)
	}
}

func TestArrayOfHashSetsOutOfRangePanics(t *testing.T) {
	s := pvSchema()
	st := NewArrayOfHashSets(1, 1, 12)(s)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range month must panic")
		}
	}()
	st.Insert(pv(s, 2000, 13, 1, 0))
}

func TestDBFactoryAndOverride(t *testing.T) {
	s := pvSchema()
	db := NewDB(NewTreeStore)
	db.SetStore("PvWatts", NewHashStore(2))
	st := db.Table(s)
	if _, ok := st.(*hashStore); !ok {
		t.Errorf("override not applied: got %T", st)
	}
	if db.Table(s) != st {
		t.Error("Table must be idempotent")
	}
	other := tuple.MustSchema("Other", []tuple.Column{{Name: "v", Kind: tuple.KindInt}}, nil)
	if _, ok := db.Table(other).(*navSeqStore); !ok {
		t.Error("default factory not used for unoverridden tables")
	}
	db.Insert(pv(s, 2000, 1, 1, 1))
	db.Insert(tuple.New(other, tuple.Int(1)))
	if db.Len() != 2 {
		t.Errorf("DB.Len = %d", db.Len())
	}
}

func TestQueryMatches(t *testing.T) {
	s := pvSchema()
	tp := pv(s, 2000, 5, 1, 99)
	if !(Query{}).Matches(tp) {
		t.Error("empty query matches everything")
	}
	if !(Query{Prefix: []tuple.Value{tuple.Int(2000), tuple.Int(5)}}).Matches(tp) {
		t.Error("prefix match")
	}
	if (Query{Prefix: []tuple.Value{tuple.Int(1999)}}).Matches(tp) {
		t.Error("prefix mismatch")
	}
	q := Query{Where: func(t *tuple.Tuple) bool { return t.Int("power") > 100 }}
	if q.Matches(tp) {
		t.Error("where mismatch")
	}
}

func matSchema() *tuple.Schema {
	return tuple.MustSchema("Matrix",
		[]tuple.Column{
			{Name: "mat", Kind: tuple.KindInt, Key: true},
			{Name: "row", Kind: tuple.KindInt, Key: true},
			{Name: "col", Kind: tuple.KindInt, Key: true},
			{Name: "value", Kind: tuple.KindInt},
		}, nil)
}

func TestDense3DTypedAndTupleAccess(t *testing.T) {
	s := matSchema()
	st := NewDense3D(3, 4, 4)(s).(*Dense3D)
	if !st.SetInt(0, 1, 2, 42) {
		t.Fatal("SetInt")
	}
	if v, ok := st.GetInt(0, 1, 2); !ok || v != 42 {
		t.Errorf("GetInt = %d, %v", v, ok)
	}
	if _, ok := st.GetInt(0, 0, 0); ok {
		t.Error("unset cell must report absent")
	}
	if !st.Insert(tuple.New(s, tuple.Int(1), tuple.Int(0), tuple.Int(0), tuple.Int(7))) {
		t.Fatal("Insert")
	}
	if st.Insert(tuple.New(s, tuple.Int(1), tuple.Int(0), tuple.Int(0), tuple.Int(7))) {
		t.Error("duplicate insert")
	}
	if st.Len() != 2 {
		t.Errorf("Len = %d", st.Len())
	}
}

func TestDense3DKeyViolationPanics(t *testing.T) {
	s := matSchema()
	st := NewDense3D(2, 2, 2)(s).(*Dense3D)
	st.Insert(tuple.New(s, tuple.Int(0), tuple.Int(0), tuple.Int(0), tuple.Int(1)))
	defer func() {
		if recover() == nil {
			t.Error("rebinding a key with a new value must panic")
		}
	}()
	st.Insert(tuple.New(s, tuple.Int(0), tuple.Int(0), tuple.Int(0), tuple.Int(2)))
}

func TestDense3DOutOfRangePanics(t *testing.T) {
	s := matSchema()
	st := NewDense3D(2, 2, 2)(s).(*Dense3D)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range index must panic")
		}
	}()
	st.SetInt(5, 0, 0, 1)
}

func TestDense3DSelectAndScan(t *testing.T) {
	s := matSchema()
	st := NewDense3D(2, 3, 3)(s).(*Dense3D)
	for r := int64(0); r < 3; r++ {
		for c := int64(0); c < 3; c++ {
			st.SetInt(0, r, c, r*3+c)
		}
	}
	// Row query: prefix (mat=0, row=1).
	var vals []int64
	st.Select(Query{Prefix: []tuple.Value{tuple.Int(0), tuple.Int(1)}},
		func(tp *tuple.Tuple) bool { vals = append(vals, tp.Int("value")); return true })
	if len(vals) != 3 || vals[0] != 3 || vals[2] != 5 {
		t.Errorf("row select = %v", vals)
	}
	n := 0
	st.Scan(func(*tuple.Tuple) bool { n++; return true })
	if n != 9 {
		t.Errorf("Scan visited %d", n)
	}
}

func TestDense3DConcurrentSet(t *testing.T) {
	s := matSchema()
	st := NewDense3D(1, 64, 64)(s).(*Dense3D)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := int64(0); r < 64; r++ {
				st.SetInt(0, r, int64(w*8)+r%8, r)
			}
		}(w)
	}
	wg.Wait()
	if st.Len() == 0 {
		t.Error("no cells set")
	}
}

func dataSchema() *tuple.Schema {
	return tuple.MustSchema("Data",
		[]tuple.Column{
			{Name: "iter", Kind: tuple.KindInt, Key: true},
			{Name: "index", Kind: tuple.KindInt, Key: true},
			{Name: "value", Kind: tuple.KindFloat},
		}, nil)
}

func TestRollingFloatArrayRollsOver(t *testing.T) {
	s := dataSchema()
	st := NewRollingFloatArray(8)(s).(*RollingFloatArray)
	st.SetF(0, 3, 1.5)
	st.SetF(1, 3, 2.5)
	if st.GetF(0, 3) != 1.5 || st.GetF(1, 3) != 2.5 {
		t.Error("two iterations must coexist")
	}
	st.SetF(2, 3, 9.9) // iter 2 overwrites iter 0 (modulo-2 rolling)
	if st.GetF(2, 3) != 9.9 {
		t.Error("iter 2 readable")
	}
	if st.GetF(0, 3) != 9.9 {
		t.Error("iter 0 storage must have been recycled by iter 2")
	}
	if st.Size() != 8 {
		t.Errorf("Size = %d", st.Size())
	}
}

func TestRollingFloatArrayTupleInterface(t *testing.T) {
	s := dataSchema()
	st := NewRollingFloatArray(4)(s).(*RollingFloatArray)
	st.Insert(tuple.New(s, tuple.Int(0), tuple.Int(2), tuple.Float(7.5)))
	if st.GetF(0, 2) != 7.5 {
		t.Error("Insert must write through to the array")
	}
	var got float64
	st.Select(Query{Prefix: []tuple.Value{tuple.Int(0), tuple.Int(2)}},
		func(tp *tuple.Tuple) bool { got = tp.Float("value"); return true })
	if got != 7.5 {
		t.Errorf("Select = %v", got)
	}
	n := 0
	st.Select(Query{Prefix: []tuple.Value{tuple.Int(0)}},
		func(*tuple.Tuple) bool { n++; return true })
	if n != 4 {
		t.Errorf("iteration select visited %d cells, want 4", n)
	}
	n = 0
	st.Scan(func(*tuple.Tuple) bool { n++; return true })
	if n != 8 {
		t.Errorf("Scan visited %d cells, want 8 (2 iterations x 4)", n)
	}
}

func TestRollingFloatArrayBadIndexPanics(t *testing.T) {
	s := dataSchema()
	st := NewRollingFloatArray(4)(s).(*RollingFloatArray)
	defer func() {
		if recover() == nil {
			t.Error("index out of range must panic")
		}
	}()
	st.Insert(tuple.New(s, tuple.Int(0), tuple.Int(99), tuple.Float(0)))
}

func BenchmarkTreeStoreInsert(b *testing.B) {
	s := pvSchema()
	st := NewTreeStore(s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Insert(pv(s, int64(i%3+2000), int64(i%12+1), int64(i), int64(i)))
	}
}

func BenchmarkSkipStoreInsertParallel(b *testing.B) {
	s := pvSchema()
	st := NewSkipStore(s)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := int64(0)
		for pb.Next() {
			st.Insert(pv(s, i%3+2000, i%12+1, i*7919, i))
			i++
		}
	})
}

func BenchmarkHashStoreSelect(b *testing.B) {
	s := pvSchema()
	st := NewHashStore(2)(s)
	for i := int64(0); i < 10000; i++ {
		st.Insert(pv(s, 2000, i%12+1, i, i))
	}
	q := Query{Prefix: []tuple.Value{tuple.Int(2000), tuple.Int(6)}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Select(q, func(*tuple.Tuple) bool { return true })
	}
}
