package gamma

import (
	"fmt"
	"sync"

	"github.com/jstar-lang/jstar/internal/tuple"
)

// This file implements the int-specialised open-addressing hash store —
// the planner's backend for all-int tables that are probed by equality
// prefix (point-query-heavy in the §1.5 statistics) or hammered with
// duplicate puts. Rows live in a flat []int64 (arity values per row, no
// boxed tuples, no map buckets); two linear-probing open-addressing tables
// per shard index them: one on the full row (O(1) set-semantics dedup, the
// cost that dominates dup-heavy trigger tables) and one on the first k
// columns, whose entries head per-key chains threaded through a parallel
// next[] slice (O(chain) prefix Selects). Shards are picked from the high
// bits of the key hash so the probe sequences inside a shard still use the
// well-mixed low bits.

const intShards = 64

// intHashStore is the int-specialised open-addressing Store.
type intHashStore struct {
	k, arity int
	schema   *tuple.Schema
	shards   [intShards]intShard
}

type intShard struct {
	mu    sync.RWMutex
	rows  []int64 // flat rows, arity values each
	next  []int32 // per row: next row in its key chain, -1 ends
	keys  oaTable // key-prefix hash -> head row of chain
	dedup oaTable // full-row hash -> row
}

// NewIntHashStore returns a store for an all-int table, keyed on its first
// k columns. It panics on non-int columns or k out of range (static
// errors; FactoryFor reports them as errors instead).
func NewIntHashStore(k int) StoreFactory {
	return func(s *tuple.Schema) Store {
		if k < 1 || k > s.Arity() {
			panic(fmt.Sprintf("jstar: inthash store on %s: k=%d out of range", s.Name, k))
		}
		if !AllIntColumns(s) {
			panic(fmt.Sprintf("jstar: inthash store on %s: requires all-int columns", s.Name))
		}
		return &intHashStore{k: k, arity: s.Arity(), schema: s}
	}
}

func (st *intHashStore) StoreKind() string { return fmt.Sprintf("inthash:%d", st.k) }

// mixInt folds one int64 into a running hash (FNV-style multiply-xor).
func mixInt(h uint64, v int64) uint64 {
	return (h ^ uint64(v)) * 0x100000001b3
}

// finalizeHash avalanches the accumulated hash so the low bits used by the
// probe masks are well mixed (the fmix step of Murmur3).
func finalizeHash(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// hashTuple returns the key hash (first k columns) and full-row hash of t.
func (st *intHashStore) hashTuple(t *tuple.Tuple) (kh, fh uint64) {
	h := uint64(tuple.HashSeed)
	for i := 0; i < st.k; i++ {
		h = mixInt(h, t.Field(i).AsInt())
	}
	kh = finalizeHash(h)
	for i := st.k; i < st.arity; i++ {
		h = mixInt(h, t.Field(i).AsInt())
	}
	return kh, finalizeHash(h)
}

// hashPrefix returns the key hash of a fully-specified int query prefix;
// ok is false when any of the first k values is not an int (such a query
// can never match an all-int table).
func (st *intHashStore) hashPrefix(prefix []tuple.Value) (uint64, bool) {
	h := uint64(tuple.HashSeed)
	for i := 0; i < st.k; i++ {
		if prefix[i].Kind() != tuple.KindInt {
			return 0, false
		}
		h = mixInt(h, prefix[i].AsInt())
	}
	return finalizeHash(h), true
}

func (st *intHashStore) shardFor(kh uint64) *intShard {
	return &st.shards[kh>>(64-6)] // top 6 bits; probe masks use the low bits
}

func (sh *intShard) row(arity int, r int32) []int64 {
	return sh.rows[int(r)*arity : int(r)*arity+arity]
}

func (st *intHashStore) Insert(t *tuple.Tuple) bool {
	kh, fh := st.hashTuple(t)
	sh := st.shardFor(kh)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	eqRow := func(r int32) bool {
		row := sh.row(st.arity, r)
		for i := 0; i < st.arity; i++ {
			if row[i] != t.Field(i).AsInt() {
				return false
			}
		}
		return true
	}
	if sh.dedup.find(fh, eqRow) >= 0 {
		return false
	}
	r := int32(len(sh.next))
	for i := 0; i < st.arity; i++ {
		sh.rows = append(sh.rows, t.Field(i).AsInt())
	}
	eqKey := func(o int32) bool {
		row := sh.row(st.arity, o)
		for i := 0; i < st.k; i++ {
			if row[i] != t.Field(i).AsInt() {
				return false
			}
		}
		return true
	}
	// Prepend to the key's chain: the previous head (or -1) becomes next.
	sh.next = append(sh.next, sh.keys.put(kh, eqKey, r))
	sh.dedup.put(fh, func(int32) bool { return false }, r)
	return true
}

func (st *intHashStore) Len() int {
	n := 0
	for i := range st.shards {
		st.shards[i].mu.RLock()
		n += len(st.shards[i].next)
		st.shards[i].mu.RUnlock()
	}
	return n
}

// materialise rebuilds one stored row as a Tuple.
func (st *intHashStore) materialise(sh *intShard, r int32) *tuple.Tuple {
	row := sh.row(st.arity, r)
	vals := make([]tuple.Value, st.arity)
	for i, v := range row {
		vals[i] = tuple.Int(v)
	}
	return tuple.New(st.schema, vals...)
}

func (st *intHashStore) Scan(fn func(*tuple.Tuple) bool) {
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.RLock()
		for r := int32(0); r < int32(len(sh.next)); r++ {
			if !fn(st.materialise(sh, r)) {
				sh.mu.RUnlock()
				return
			}
		}
		sh.mu.RUnlock()
	}
}

// selectKeyed walks the chain of one key hash, filtering on the raw int
// row before materialising. Caller holds the shard read lock.
func (st *intHashStore) selectKeyed(sh *intShard, kh uint64, q Query, fn func(*tuple.Tuple) bool) bool {
	head := sh.keys.find(kh, func(r int32) bool {
		row := sh.row(st.arity, r)
		for i := 0; i < st.k; i++ {
			if !q.Prefix[i].Equal(tuple.Int(row[i])) {
				return false
			}
		}
		return true
	})
	for r := head; r >= 0; r = sh.next[r] {
		row := sh.row(st.arity, r)
		match := true
		for i := st.k; i < len(q.Prefix); i++ {
			if !q.Prefix[i].Equal(tuple.Int(row[i])) {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		t := st.materialise(sh, r)
		if q.Where == nil || q.Where(t) {
			if !fn(t) {
				return false
			}
		}
	}
	return true
}

func (st *intHashStore) Select(q Query, fn func(*tuple.Tuple) bool) {
	if len(q.Prefix) < st.k {
		// Under-specified query: full scan with residual filter.
		st.Scan(func(t *tuple.Tuple) bool {
			if q.Matches(t) {
				return fn(t)
			}
			return true
		})
		return
	}
	kh, ok := st.hashPrefix(q.Prefix)
	if !ok {
		return // non-int prefix value: nothing can match
	}
	sh := st.shardFor(kh)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	st.selectKeyed(sh, kh, q, fn)
}

// SelectBatch pre-hashes every fully-specified prefix in one tight pass
// before probing, like the generic hash store, so hashing work overlaps
// the chain-walk cache misses.
func (st *intHashStore) SelectBatch(qs []Query, fn func(qi int, t *tuple.Tuple) bool) {
	hashes := make([]uint64, len(qs))
	hashable := make([]bool, len(qs))
	for i := range qs {
		if len(qs[i].Prefix) >= st.k {
			hashes[i], hashable[i] = st.hashPrefix(qs[i].Prefix)
		}
	}
	for i := range qs {
		q := qs[i]
		if len(q.Prefix) < st.k {
			st.Select(q, func(t *tuple.Tuple) bool { return fn(i, t) })
			continue
		}
		if !hashable[i] {
			continue
		}
		sh := st.shardFor(hashes[i])
		sh.mu.RLock()
		st.selectKeyed(sh, hashes[i], q, func(t *tuple.Tuple) bool { return fn(i, t) })
		sh.mu.RUnlock()
	}
}

// oaTable is a linear-probing open-addressing table mapping 64-bit hashes
// to row ids. Distinct keys may share a hash; find/put take an equality
// callback to disambiguate. The caller provides synchronisation.
type oaTable struct {
	hashes []uint64
	rows   []int32 // row id + 1; 0 marks an empty slot
	n      int
}

// find returns the row stored under (h, eq), or -1.
func (t *oaTable) find(h uint64, eq func(row int32) bool) int32 {
	if len(t.rows) == 0 {
		return -1
	}
	mask := uint64(len(t.rows) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		r := t.rows[i]
		if r == 0 {
			return -1
		}
		if t.hashes[i] == h && eq(r-1) {
			return r - 1
		}
	}
}

// put installs row under (h, eq). If an entry matching eq exists its row
// is replaced and the old row returned; otherwise -1 (growing the table at
// 3/4 load).
func (t *oaTable) put(h uint64, eq func(row int32) bool, row int32) int32 {
	if 4*(t.n+1) > 3*len(t.rows) {
		t.grow()
	}
	mask := uint64(len(t.rows) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		r := t.rows[i]
		if r == 0 {
			t.hashes[i] = h
			t.rows[i] = row + 1
			t.n++
			return -1
		}
		if t.hashes[i] == h && eq(r-1) {
			t.rows[i] = row + 1
			return r - 1
		}
	}
}

func (t *oaTable) grow() {
	size := 16
	if len(t.rows) > 0 {
		size = 2 * len(t.rows)
	}
	oldH, oldR := t.hashes, t.rows
	t.hashes = make([]uint64, size)
	t.rows = make([]int32, size)
	mask := uint64(size - 1)
	for i, r := range oldR {
		if r == 0 {
			continue
		}
		h := oldH[i]
		for j := h & mask; ; j = (j + 1) & mask {
			if t.rows[j] == 0 {
				t.hashes[j] = h
				t.rows[j] = r
				break
			}
		}
	}
}
