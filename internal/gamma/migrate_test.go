package gamma

import (
	"fmt"
	"sync"
	"testing"

	"github.com/jstar-lang/jstar/internal/tuple"
)

// scanSorted drains st into a field-sorted slice for content comparison.
func scanSorted(st Store) []*tuple.Tuple {
	var out []*tuple.Tuple
	st.Scan(func(t *tuple.Tuple) bool {
		out = append(out, t)
		return true
	})
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].CompareFields(out[j-1]) < 0; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func sameContents(t *testing.T, a, b []*tuple.Tuple) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("contents differ: %d vs %d tuples", len(a), len(b))
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("contents differ at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestMigratePreservesContents chains a registered table through every
// general-purpose backend and asserts the contents survive each swap.
func TestMigratePreservesContents(t *testing.T) {
	s := pvSchema()
	s.SetID(0)
	db := NewDB(NewTreeStore)
	db.Register([]*tuple.Schema{s})
	for i := int64(0); i < 500; i++ {
		db.Insert(pv(s, 2000+i%5, 1+i%12, 1+i%28, i))
	}
	want := scanSorted(db.Table(s))

	chain := []StoreFactory{
		NewSkipStore, NewHashStore(2), NewColumnarStore,
		NewIntHashStore(1), NewTreeStore,
	}
	var scratch []*tuple.Tuple
	for i, f := range chain {
		var err error
		scratch, err = db.Migrate(s, f, scratch)
		if err != nil {
			t.Fatalf("migrate step %d: %v", i, err)
		}
		got := scanSorted(db.Table(s))
		sameContents(t, want, got)
		if db.Table(s).Len() != len(want) {
			t.Fatalf("migrate step %d: Len = %d, want %d", i, db.Table(s).Len(), len(want))
		}
	}
	// The drained scratch is returned for recycling and holds the contents.
	if len(scratch) != len(want) {
		t.Fatalf("scratch holds %d tuples, want %d", len(scratch), len(want))
	}
}

// TestMigrateUnregisteredTable covers the map-path fallback (ad-hoc schemas
// never passed to Register).
func TestMigrateUnregisteredTable(t *testing.T) {
	s := pvSchema()
	db := NewDB(NewTreeStore)
	for i := int64(0); i < 64; i++ {
		db.Insert(pv(s, 2000, 1+i%12, 1+i%28, i))
	}
	want := scanSorted(db.Table(s))
	if _, err := db.Migrate(s, NewHashStore(1), nil); err != nil {
		t.Fatalf("migrate: %v", err)
	}
	if KindOf(db.Table(s)) != "hash:1" {
		t.Fatalf("kind after migrate = %s", KindOf(db.Table(s)))
	}
	sameContents(t, want, scanSorted(db.Table(s)))

	missing := tuple.MustSchema("Missing", []tuple.Column{{Name: "v", Kind: tuple.KindInt}}, nil)
	if _, err := db.Migrate(missing, NewTreeStore, nil); err == nil {
		t.Fatal("migrating a table with no store must error")
	}
}

// TestSetStoreAfterRegisterRebuilds is the regression test for the old
// silent no-op: SetStore on an already-registered table must rebuild it
// with the new factory, keeping the contents.
func TestSetStoreAfterRegisterRebuilds(t *testing.T) {
	s := pvSchema()
	s.SetID(0)
	db := NewDB(NewTreeStore)
	db.Register([]*tuple.Schema{s})
	for i := int64(0); i < 300; i++ {
		db.Insert(pv(s, 2000, 1+i%12, 1+i%28, i))
	}
	want := scanSorted(db.Table(s))
	if kind := KindOf(db.Table(s)); kind != "tree" {
		t.Fatalf("pre-SetStore kind = %s", kind)
	}
	if err := db.SetStore("PvWatts", NewHashStore(2)); err != nil {
		t.Fatalf("SetStore after Register: %v", err)
	}
	if kind := KindOf(db.Table(s)); kind != "hash:2" {
		t.Fatalf("SetStore after Register did not rebuild: kind = %s", kind)
	}
	sameContents(t, want, scanSorted(db.Table(s)))

	// Pre-Register calls stay hint-only and error-free.
	db2 := NewDB(NewTreeStore)
	if err := db2.SetStore("PvWatts", NewSkipStore); err != nil {
		t.Fatalf("SetStore before Register: %v", err)
	}
}

// TestMigrateConcurrentReaders hammers Query/Scan readers while the table
// migrates back and forth; every read must observe a complete store. Run
// under -race this also proves the swap is data-race free.
func TestMigrateConcurrentReaders(t *testing.T) {
	s := pvSchema()
	s.SetID(0)
	db := NewDB(NewTreeStore)
	db.Register([]*tuple.Schema{s})
	const n = 400
	for i := int64(0); i < n; i++ {
		db.Insert(pv(s, 2000+i%3, 1+i%12, 1+i%28, i))
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := db.Table(s)
				got := 0
				st.Scan(func(*tuple.Tuple) bool { got++; return true })
				if got != n {
					panic(fmt.Sprintf("reader %d saw %d of %d tuples", w, got, n))
				}
				st.Select(Query{Prefix: []tuple.Value{tuple.Int(2001), tuple.Int(4)}},
					func(*tuple.Tuple) bool { return true })
			}
		}(w)
	}
	kinds := []StoreFactory{NewSkipStore, NewHashStore(1), NewColumnarStore, NewIntHashStore(2), NewTreeStore}
	var scratch []*tuple.Tuple
	for round := 0; round < 20; round++ {
		var err error
		scratch, err = db.Migrate(s, kinds[round%len(kinds)], scratch)
		if err != nil {
			t.Fatalf("migrate round %d: %v", round, err)
		}
	}
	close(stop)
	wg.Wait()
}
