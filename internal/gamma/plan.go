package gamma

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/jstar-lang/jstar/internal/tuple"
)

// This file defines the store-planning vocabulary: named store kinds, the
// spec syntax that parameterises them, and StorePlan — a per-table mapping
// from table name to kind spec. A plan is the serialisable form of the
// paper's stage-4 data-structure hints: where GammaHint carries an opaque
// StoreFactory closure, a plan entry is a string like "hash:2" that can be
// validated up front, written to JSON by one run and replayed by the next
// (the profile-guided tuning loop), or emitted statically by the compiler.

// StorePlan maps table names to store-kind specs (see FactoryFor for the
// spec syntax). It is plain JSON — map[string]string — so plans round-trip
// through files and the BENCH artifacts unchanged. A nil plan means "no
// opinion"; tables absent from a plan keep whatever store they would
// otherwise get.
type StorePlan map[string]string

// Clone returns a copy of the plan (nil stays nil).
func (p StorePlan) Clone() StorePlan {
	if p == nil {
		return nil
	}
	out := make(StorePlan, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}

// StoreKinds lists the canonical store-kind names, in menu order —
// mirroring exec.StrategyNames, so command-line tools and validation
// errors build the legal set from exactly one place.
func StoreKinds() []string {
	return []string{"tree", "skip", "hash", "inthash", "columnar", "arrayhash", "dense3d", "rolling"}
}

// KindName returns the kind name of a spec without its parameters or
// owner-shard suffix ("hash:2@1" -> "hash").
func KindName(spec string) string {
	if i := strings.IndexByte(spec, '@'); i >= 0 {
		spec = spec[:i]
	}
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		return spec[:i]
	}
	return spec
}

// SplitShard splits an optional "@N" owner-shard suffix off a store-kind
// spec ("hash:2@1" -> "hash:2", 1) — the StorePlan syntax that overrides a
// table's hash-assigned Gamma shard under Options.TableAffinity. ok
// reports whether a suffix was present; a malformed suffix (non-integer or
// negative N) is an error, so Validate rejects it before a run is built. A
// spec may also be ownership-only ("@2"): the base comes back empty,
// meaning "keep the table's default store, only pin its owner shard".
func SplitShard(spec string) (base string, shard int, ok bool, err error) {
	i := strings.LastIndexByte(spec, '@')
	if i < 0 {
		return spec, 0, false, nil
	}
	n, perr := strconv.Atoi(strings.TrimSpace(spec[i+1:]))
	if perr != nil || n < 0 {
		return spec[:i], 0, true,
			fmt.Errorf("store spec %q: bad owner-shard suffix %q (want @N with N >= 0)", spec, spec[i+1:])
	}
	return spec[:i], n, true, nil
}

// kindNamer is the optional Store extension reporting which kind (and
// parameters) built a store, in replayable spec syntax.
type kindNamer interface{ StoreKind() string }

// KindOf reports the kind spec of a store ("skip", "hash:2",
// "dense3d:3,96,96", ...), or "custom" for stores from outside this
// package. For every store built by FactoryFor, FactoryFor(KindOf(st), s)
// rebuilds an equivalent store — the property saved plans rely on.
func KindOf(st Store) string {
	if k, ok := st.(kindNamer); ok {
		return k.StoreKind()
	}
	return "custom"
}

// parseSpec splits "name:a1,a2,..." into the kind name and integer args.
func parseSpec(spec string) (string, []int64, error) {
	name, rest, has := strings.Cut(spec, ":")
	if !has {
		return name, nil, nil
	}
	parts := strings.Split(rest, ",")
	args := make([]int64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return "", nil, fmt.Errorf("store kind %q: parameter %q is not an integer", spec, p)
		}
		args[i] = v
	}
	return name, args, nil
}

// AllIntColumns reports whether every column of s is an int — the
// suitability test for the int-specialised backends, shared by FactoryFor,
// the stats planner and the compiler's static hint pass.
func AllIntColumns(s *tuple.Schema) bool {
	for _, c := range s.Columns {
		if c.Kind != tuple.KindInt {
			return false
		}
	}
	return true
}

// FactoryFor resolves a store-kind spec against a schema, returning an
// error (never panicking) when the kind is unknown or unsuitable for the
// table — the validation seam Program.Validate uses so a bad plan is
// rejected before any run is built. The spec syntax is "kind" or
// "kind:p1,p2,...":
//
//	tree                 sequential NavigableSet (red-black tree)
//	skip                 concurrent NavigableSet (skip list)
//	hash[:k]             hash index on the first k columns (default 1)
//	inthash[:k]          int-specialised open-addressing store keyed on the
//	                     first k int columns (default: the primary-key
//	                     width, else 1); requires an all-int table
//	columnar             compressed append-only columnar store
//	arrayhash:col,lo,hi  array-of-hashsets over int column col in [lo,hi]
//	dense3d:na,nb,nc     flat native arrays for (int,int,int -> int)
//	rolling:n            two-iteration rolling array for (int,int -> double)
//
// Any spec may carry a "@N" owner-shard suffix (see SplitShard), which is
// validated and stripped here — ownership is the ShardMap's concern, not
// the store's. An ownership-only spec ("@2") yields a nil factory with a
// nil error: the caller keeps the table's default store.
func FactoryFor(spec string, s *tuple.Schema) (StoreFactory, error) {
	spec, _, hadShard, serr := SplitShard(spec)
	if serr != nil {
		return nil, serr
	}
	if spec == "" && hadShard {
		return nil, nil
	}
	name, args, err := parseSpec(spec)
	if err != nil {
		return nil, err
	}
	bad := func(format string, a ...any) (StoreFactory, error) {
		return nil, fmt.Errorf("store kind %q on table %s: %s", spec, s.Name, fmt.Sprintf(format, a...))
	}
	wantArgs := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("store kind %q: needs %d parameters, got %d", spec, n, len(args))
		}
		return nil
	}
	switch name {
	case "tree":
		if len(args) != 0 {
			return bad("takes no parameters")
		}
		return NewTreeStore, nil
	case "skip":
		if len(args) != 0 {
			return bad("takes no parameters")
		}
		return NewSkipStore, nil
	case "hash":
		k := int64(1)
		if len(args) > 1 {
			return bad("takes at most one parameter (k)")
		}
		if len(args) == 1 {
			k = args[0]
		}
		if k < 1 || k > int64(s.Arity()) {
			return bad("k=%d out of range [1,%d]", k, s.Arity())
		}
		return NewHashStore(int(k)), nil
	case "inthash":
		if !AllIntColumns(s) {
			return bad("requires all-int columns")
		}
		k := int64(len(s.KeyColumns()))
		if k < 1 {
			k = 1
		}
		if len(args) > 1 {
			return bad("takes at most one parameter (k)")
		}
		if len(args) == 1 {
			k = args[0]
		}
		if k < 1 || k > int64(s.Arity()) {
			return bad("k=%d out of range [1,%d]", k, s.Arity())
		}
		return NewIntHashStore(int(k)), nil
	case "columnar":
		if len(args) != 0 {
			return bad("takes no parameters")
		}
		return NewColumnarStore, nil
	case "arrayhash":
		if err := wantArgs(3); err != nil {
			return nil, err
		}
		col, lo, hi := args[0], args[1], args[2]
		if col < 0 || col >= int64(s.Arity()) || s.Columns[col].Kind != tuple.KindInt {
			return bad("column %d is not an int column", col)
		}
		if hi < lo {
			return bad("empty range [%d,%d]", lo, hi)
		}
		return NewArrayOfHashSets(int(col), lo, hi), nil
	case "dense3d":
		if err := wantArgs(3); err != nil {
			return nil, err
		}
		if s.Arity() != 4 || !AllIntColumns(s) {
			return bad("requires a 4-column all-int table")
		}
		if args[0] < 1 || args[1] < 1 || args[2] < 1 {
			return bad("dimensions must be positive")
		}
		return NewDense3D(int(args[0]), int(args[1]), int(args[2])), nil
	case "rolling":
		if err := wantArgs(1); err != nil {
			return nil, err
		}
		if s.Arity() != 3 || s.Columns[0].Kind != tuple.KindInt ||
			s.Columns[1].Kind != tuple.KindInt || s.Columns[2].Kind != tuple.KindFloat {
			return bad("requires an (int, int -> double) table")
		}
		if args[0] < 1 {
			return bad("size must be positive")
		}
		return NewRollingFloatArray(int(args[0])), nil
	}
	return nil, fmt.Errorf("unknown store kind %q (valid: %s)", spec, strings.Join(StoreKinds(), "|"))
}
