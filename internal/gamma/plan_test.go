package gamma

import (
	"strings"
	"testing"

	"github.com/jstar-lang/jstar/internal/tuple"
)

func TestFactoryForResolvesEveryKind(t *testing.T) {
	pv := pvSchema() // 4 int columns
	data := dataSchema()
	cases := []struct {
		spec string
		s    *tuple.Schema
		want string // expected KindOf of the built store
	}{
		{"tree", pv, "tree"},
		{"skip", pv, "skip"},
		{"hash", pv, "hash:1"},
		{"hash:2", pv, "hash:2"},
		{"inthash", pv, "inthash:1"},
		{"inthash:3", pv, "inthash:3"},
		{"columnar", pv, "columnar"},
		{"arrayhash:1,1,12", pv, "arrayhash:1,1,12"},
		{"dense3d:3,4,5", matSchema(), "dense3d:3,4,5"},
		{"rolling:8", data, "rolling:8"},
	}
	for _, c := range cases {
		f, err := FactoryFor(c.spec, c.s)
		if err != nil {
			t.Errorf("FactoryFor(%q): %v", c.spec, err)
			continue
		}
		if got := KindOf(f(c.s)); got != c.want {
			t.Errorf("FactoryFor(%q) built kind %q, want %q", c.spec, got, c.want)
		}
	}
}

// TestFactoryForKindOfRoundTrip: a store's reported kind must rebuild an
// equivalent store — the property saved plans rely on when replayed.
func TestFactoryForKindOfRoundTrip(t *testing.T) {
	s := pvSchema()
	for _, f := range []StoreFactory{
		NewTreeStore, NewSkipStore, NewHashStore(2), NewIntHashStore(2),
		NewColumnarStore, NewArrayOfHashSets(1, 1, 12),
	} {
		spec := KindOf(f(s))
		f2, err := FactoryFor(spec, s)
		if err != nil {
			t.Fatalf("round trip of %q: %v", spec, err)
		}
		if got := KindOf(f2(s)); got != spec {
			t.Errorf("round trip of %q rebuilt %q", spec, got)
		}
	}
}

func TestFactoryForRejections(t *testing.T) {
	pv := pvSchema()
	str := tuple.MustSchema("S",
		[]tuple.Column{{Name: "name", Kind: tuple.KindString}, {Name: "v", Kind: tuple.KindInt}}, nil)
	cases := []struct {
		spec string
		s    *tuple.Schema
		want string // substring of the error
	}{
		{"btree", pv, "unknown store kind"},
		{"btree", pv, "tree|skip|hash|inthash|columnar|arrayhash|dense3d|rolling"},
		{"tree:2", pv, "no parameters"}, // a typo'd "hash:2" must not silently run unindexed
		{"skip:1", pv, "no parameters"},
		{"hash:0", pv, "out of range"},
		{"hash:9", pv, "out of range"},
		{"hash:x", pv, "not an integer"},
		{"inthash", str, "all-int"},
		{"columnar:2", pv, "no parameters"},
		{"arrayhash:1", pv, "needs 3 parameters"},
		{"arrayhash:0,5,1", pv, "empty range"},
		{"dense3d:2,2,2", str, "4-column all-int"},
		{"rolling:4", pv, "(int, int -> double)"},
	}
	for _, c := range cases {
		_, err := FactoryFor(c.spec, c.s)
		if err == nil {
			t.Errorf("FactoryFor(%q, %s): expected error", c.spec, c.s.Name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("FactoryFor(%q) error %q missing %q", c.spec, err, c.want)
		}
	}
}

func TestKindNameAndKinds(t *testing.T) {
	if KindName("hash:2") != "hash" || KindName("tree") != "tree" {
		t.Error("KindName must strip parameters")
	}
	kinds := StoreKinds()
	if len(kinds) != 8 {
		t.Errorf("StoreKinds lists %d kinds, want 8", len(kinds))
	}
	for _, k := range kinds {
		if _, err := FactoryFor(k, pvSchema()); err != nil && KindName(k) == k &&
			k != "arrayhash" && k != "dense3d" && k != "rolling" {
			t.Errorf("parameterless kind %q must resolve on an all-int table: %v", k, err)
		}
	}
}

func TestColumnarStringDictionary(t *testing.T) {
	s := tuple.MustSchema("Log",
		[]tuple.Column{
			{Name: "level", Kind: tuple.KindString},
			{Name: "n", Kind: tuple.KindInt},
			{Name: "ok", Kind: tuple.KindBool},
			{Name: "f", Kind: tuple.KindFloat},
		}, nil)
	st := NewColumnarStore(s).(*colStore)
	for i := int64(0); i < 100; i++ {
		lvl := "info"
		if i%10 == 0 {
			lvl = "warn"
		}
		if !st.Insert(tuple.New(s, tuple.String_(lvl), tuple.Int(i), tuple.Bool(i%2 == 0), tuple.Float(float64(i)/2))) {
			t.Fatalf("insert %d", i)
		}
	}
	if st.Insert(tuple.New(s, tuple.String_("info"), tuple.Int(1), tuple.Bool(false), tuple.Float(0.5))) {
		t.Error("duplicate insert must return false")
	}
	if len(st.strs) != 2 {
		t.Errorf("dictionary holds %d strings, want 2 (info, warn)", len(st.strs))
	}
	n := 0
	st.Select(Query{Prefix: []tuple.Value{tuple.String_("warn")}}, func(tp *tuple.Tuple) bool {
		if tp.Str("level") != "warn" {
			t.Errorf("wrong tuple %v", tp)
		}
		n++
		return true
	})
	if n != 10 {
		t.Errorf("warn select matched %d, want 10", n)
	}
	// A string absent from the dictionary — and a prefix value of the wrong
	// kind for its column — can never match; both must short-circuit.
	for _, q := range []Query{
		{Prefix: []tuple.Value{tuple.String_("error")}},
		{Prefix: []tuple.Value{tuple.Int(3)}},
	} {
		n = 0
		st.Select(q, func(*tuple.Tuple) bool { n++; return true })
		if n != 0 {
			t.Errorf("impossible prefix %v matched %d rows", q.Prefix, n)
		}
	}
	if st.Len() != 100 {
		t.Errorf("Len = %d", st.Len())
	}
}

// TestIntHashGrowth forces open-addressing table growth and chain reuse.
func TestIntHashGrowth(t *testing.T) {
	s := pvSchema()
	st := NewIntHashStore(2)(s)
	const years, months, days = 20, 12, 28
	for y := int64(0); y < years; y++ {
		for m := int64(1); m <= months; m++ {
			for d := int64(1); d <= days; d++ {
				if !st.Insert(pv(s, y, m, d, y*100+m)) {
					t.Fatalf("insert (%d,%d,%d)", y, m, d)
				}
				if st.Insert(pv(s, y, m, d, y*100+m)) {
					t.Fatalf("duplicate (%d,%d,%d) accepted", y, m, d)
				}
			}
		}
	}
	if st.Len() != years*months*days {
		t.Fatalf("Len = %d, want %d", st.Len(), years*months*days)
	}
	for y := int64(0); y < years; y++ {
		n := 0
		st.Select(Query{Prefix: []tuple.Value{tuple.Int(y), tuple.Int(6)}},
			func(*tuple.Tuple) bool { n++; return true })
		if n != days {
			t.Fatalf("year %d month 6: %d tuples, want %d", y, n, days)
		}
	}
	// A non-int prefix value can never match an all-int table.
	n := 0
	st.Select(Query{Prefix: []tuple.Value{tuple.String_("x"), tuple.Int(6)}},
		func(*tuple.Tuple) bool { n++; return true })
	if n != 0 {
		t.Errorf("non-int prefix matched %d tuples", n)
	}
}
