package gamma

import (
	"fmt"

	"github.com/jstar-lang/jstar/internal/tuple"
)

// This file defines table ownership for the table-affine execution mode:
// every registered schema is assigned to exactly one of P owner shards, so
// a worker pinned to shard i can insert into and select from its tables
// with no cross-shard coordination beyond what the store itself needs.
// Ownership is a pure function of the dense schema ID (a Fibonacci hash),
// overridable per table through the same StorePlan strings that pick store
// kinds — a "@N" suffix pins the table to shard N (see SplitShard).

// ShardMap assigns each registered schema to one of Shards() owner shards.
// It is immutable after NewShardMap, so lookups are a bounds check plus an
// array load and need no synchronisation.
type ShardMap struct {
	shards int
	owner  []int32 // indexed by dense schema ID
}

// fibMult is the 64-bit Fibonacci multiplier (2^64/phi); multiplying the
// schema ID by it and taking high bits spreads consecutive IDs across
// shards far better than a plain modulus, which would stripe a program's
// tables in registration order.
const fibMult = 0x9E3779B97F4A7C15

// NewShardMap assigns every schema in schemas (indexed by dense ID, as
// registered with DB.Register) to one of `shards` owner shards by schema-ID
// hash. A plan entry with a "@N" shard suffix overrides the hash for that
// table (N is taken modulo the shard count, so a plan tuned for a wider
// machine still applies).
func NewShardMap(schemas []*tuple.Schema, shards int, plan StorePlan) *ShardMap {
	if shards < 1 {
		shards = 1
	}
	m := &ShardMap{shards: shards, owner: make([]int32, len(schemas))}
	for id, s := range schemas {
		if s == nil {
			continue
		}
		m.owner[id] = int32((uint64(id) * fibMult >> 32) % uint64(shards))
		if spec, ok := plan[s.Name]; ok {
			if _, sh, has, err := SplitShard(spec); has && err == nil {
				m.owner[id] = int32(sh % shards)
			}
		}
	}
	return m
}

// Shards returns the owner-shard count.
func (m *ShardMap) Shards() int { return m.shards }

// Owner returns the shard owning schema s.
func (m *ShardMap) Owner(s *tuple.Schema) int { return int(m.owner[s.ID()]) }

// OwnerID returns the shard owning the schema with dense ID id.
func (m *ShardMap) OwnerID(id int32) int { return int(m.owner[id]) }

// InsertBatch inserts the schema-homogeneous sorted run ts into shard's
// copy of the table, appending kept (non-duplicate) tuples to live — the
// shard-scoped twin of the package-level InsertBatch. It panics when the
// table is not owned by shard: affinity routing bugs must fail loudly, not
// silently serialise on a foreign shard's store.
func (m *ShardMap) InsertBatch(db *DB, shard int, ts []*tuple.Tuple, live []*tuple.Tuple) []*tuple.Tuple {
	if len(ts) == 0 {
		return live
	}
	s := ts[0].Schema()
	if got := m.Owner(s); got != shard {
		panic(fmt.Sprintf("gamma: shard %d asked to insert into table %s owned by shard %d", shard, s.Name, got))
	}
	return InsertBatch(db.Table(s), ts, live)
}

// SelectBatch runs the query batch qs against shard's copy of table s,
// with the same ownership panic as InsertBatch.
func (m *ShardMap) SelectBatch(db *DB, shard int, s *tuple.Schema, qs []Query, fn func(qi int, t *tuple.Tuple) bool) {
	if got := m.Owner(s); got != shard {
		panic(fmt.Sprintf("gamma: shard %d asked to select from table %s owned by shard %d", shard, s.Name, got))
	}
	SelectBatch(db.Table(s), qs, fn)
}
