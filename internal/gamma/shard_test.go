package gamma

import (
	"fmt"
	"slices"
	"strings"
	"testing"

	"github.com/jstar-lang/jstar/internal/tuple"
)

// shardSchemas builds n single-int-column schemas with dense IDs 0..n-1.
func shardSchemas(n int) []*tuple.Schema {
	out := make([]*tuple.Schema, n)
	for i := range out {
		s := tuple.MustSchema(fmt.Sprintf("T%d", i),
			[]tuple.Column{{Name: "v", Kind: tuple.KindInt}}, nil)
		s.SetID(int32(i))
		out[i] = s
	}
	return out
}

func TestShardMapAssignsAndOverrides(t *testing.T) {
	schemas := shardSchemas(16)
	m := NewShardMap(schemas, 4, StorePlan{
		"T3": "skip@2",   // store + ownership override
		"T5": "@1",       // ownership-only override
		"T7": "hash:1@9", // out-of-range shard wraps modulo the count
		"T9": "skip@x",   // malformed suffix: ignored, hash assignment kept
	})
	if m.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", m.Shards())
	}
	counts := make([]int, 4)
	for _, s := range schemas {
		o := m.Owner(s)
		if o < 0 || o >= 4 {
			t.Fatalf("table %s owner %d out of range", s.Name, o)
		}
		if o != m.OwnerID(s.ID()) {
			t.Fatalf("Owner and OwnerID disagree for %s", s.Name)
		}
		counts[o]++
	}
	if m.Owner(schemas[3]) != 2 {
		t.Errorf("T3 owner = %d, want pinned shard 2", m.Owner(schemas[3]))
	}
	if m.Owner(schemas[5]) != 1 {
		t.Errorf("T5 owner = %d, want pinned shard 1", m.Owner(schemas[5]))
	}
	if m.Owner(schemas[7]) != 9%4 {
		t.Errorf("T7 owner = %d, want %d (9 mod 4)", m.Owner(schemas[7]), 9%4)
	}
	// The hash must actually spread 16 tables over 4 shards: no shard may
	// be empty and none may own more than half the tables.
	for sh, c := range counts {
		if c == 0 || c > 8 {
			t.Errorf("shard %d owns %d of 16 tables; hash is not spreading", sh, c)
		}
	}
	// Determinism: the same inputs yield the same map.
	m2 := NewShardMap(schemas, 4, StorePlan{"T3": "skip@2", "T5": "@1", "T7": "hash:1@9", "T9": "skip@x"})
	for _, s := range schemas {
		if m.Owner(s) != m2.Owner(s) {
			t.Fatalf("shard map is not deterministic for %s", s.Name)
		}
	}
}

func TestShardMapInsertSelectBatch(t *testing.T) {
	schemas := shardSchemas(8)
	m := NewShardMap(schemas, 2, nil)
	db := NewDB(NewTreeStore)
	db.Register(schemas)
	s := schemas[4]
	own := m.Owner(s)
	run := []*tuple.Tuple{
		tuple.New(s, tuple.Int(1)),
		tuple.New(s, tuple.Int(2)),
		tuple.New(s, tuple.Int(2)), // duplicate: dropped, not echoed to live
	}
	live := m.InsertBatch(db, own, run, nil)
	if len(live) != 2 {
		t.Fatalf("kept %d tuples, want 2", len(live))
	}
	var got []int64
	m.SelectBatch(db, own, s, []Query{{}}, func(_ int, tp *tuple.Tuple) bool {
		got = append(got, tp.Int("v"))
		return true
	})
	slices.Sort(got)
	if !slices.Equal(got, []int64{1, 2}) {
		t.Fatalf("SelectBatch saw %v, want [1 2]", got)
	}
	// The ownership seam must fail loudly when routed to the wrong shard.
	for _, fn := range []func(){
		func() { m.InsertBatch(db, 1-own, []*tuple.Tuple{tuple.New(s, tuple.Int(9))}, nil) },
		func() { m.SelectBatch(db, 1-own, s, nil, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("cross-shard access did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestSplitShard(t *testing.T) {
	cases := []struct {
		spec, base string
		shard      int
		ok, bad    bool
	}{
		{"hash:2", "hash:2", 0, false, false},
		{"hash:2@1", "hash:2", 1, true, false},
		{"skip@0", "skip", 0, true, false},
		{"@2", "", 2, true, false},
		{"skip@x", "skip", 0, true, true},
		{"skip@-1", "skip", 0, true, true},
	}
	for _, c := range cases {
		base, shard, ok, err := SplitShard(c.spec)
		if base != c.base || ok != c.ok || (err != nil) != c.bad || (!c.bad && shard != c.shard) {
			t.Errorf("SplitShard(%q) = (%q, %d, %v, %v), want (%q, %d, %v, bad=%v)",
				c.spec, base, shard, ok, err, c.base, c.shard, c.ok, c.bad)
		}
	}
	if KindName("hash:2@1") != "hash" || KindName("skip@0") != "skip" {
		t.Error("KindName must strip the owner-shard suffix")
	}
	// FactoryFor strips the suffix, rejects malformed ones, and returns a
	// nil factory for ownership-only specs.
	s := shardSchemas(1)[0]
	if f, err := FactoryFor("skip@1", s); err != nil || KindOf(f(s)) != "skip" {
		t.Errorf("FactoryFor(skip@1) = (%v, %v), want skip factory", f, err)
	}
	if f, err := FactoryFor("@1", s); err != nil || f != nil {
		t.Errorf("FactoryFor(@1) = (%v, %v), want (nil, nil)", f, err)
	}
	if _, err := FactoryFor("skip@x", s); err == nil || !strings.Contains(err.Error(), "owner-shard") {
		t.Errorf("FactoryFor(skip@x) error = %v, want owner-shard complaint", err)
	}
}
