package lang

// This file defines the abstract syntax tree produced by the parser.

// File is a parsed JStar source file.
type File struct {
	Decls []Decl
}

// Decl is a top-level declaration.
type Decl interface{ declNode() }

// TableDecl is `table Name(cols -> cols) orderby (entries)`.
type TableDecl struct {
	Name    string
	Cols    []ColDecl
	OrderBy []OrderByEntry
	Line    int
}

// ColDecl is one `type name` column; Key marks columns left of `->`.
type ColDecl struct {
	Type string // int, double, String, boolean
	Name string
	Key  bool
}

// OrderByEntry mirrors tuple.OrderEntry at the syntax level.
type OrderByEntry struct {
	Kind string // "lit", "seq", "par"
	Name string // literal name or field name
}

// OrderDecl is `order A < B < C`.
type OrderDecl struct {
	Names []string
	Line  int
}

// PutDecl is a top-level `put new T(args)`.
type PutDecl struct {
	Expr *NewExpr
	Line int
}

// RuleDecl is `foreach (Table var) { body }`.
type RuleDecl struct {
	Table string
	Var   string
	Body  []Stmt
	Line  int
}

func (*TableDecl) declNode() {}
func (*OrderDecl) declNode() {}
func (*PutDecl) declNode()   {}
func (*RuleDecl) declNode()  {}

// Stmt is a rule-body statement.
type Stmt interface{ stmtNode() }

// IfStmt is `if (cond) {..} else {..}` (else optional).
type IfStmt struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
	Line int
}

// ValStmt is `val name = expr`.
type ValStmt struct {
	Name string
	Expr Expr
	Line int
}

// PutStmt is `put expr` where expr evaluates to a tuple.
type PutStmt struct {
	Expr Expr
	Line int
}

// PrintlnStmt is `println(expr)`.
type PrintlnStmt struct {
	Expr Expr
	Line int
}

// ForStmt is `for (v : get T(args)) { body }`.
type ForStmt struct {
	Var   string
	Query *GetExpr
	Body  []Stmt
	Line  int
}

// AccumStmt is `name += expr` (reducer accumulation).
type AccumStmt struct {
	Name string
	Expr Expr
	Line int
}

func (*IfStmt) stmtNode()      {}
func (*ValStmt) stmtNode()     {}
func (*PutStmt) stmtNode()     {}
func (*PrintlnStmt) stmtNode() {}
func (*ForStmt) stmtNode()     {}
func (*AccumStmt) stmtNode()   {}

// Expr is an expression.
type Expr interface{ exprNode() }

// IntLit is an integer literal.
type IntLit struct{ V int64 }

// FloatLit is a floating literal.
type FloatLit struct{ V float64 }

// StrLit is a string literal.
type StrLit struct{ V string }

// BoolLit is true/false.
type BoolLit struct{ V bool }

// NullLit is `null`.
type NullLit struct{}

// VarRef references a local val, the rule variable, or a lambda field.
type VarRef struct {
	Name string
	Line int
}

// FieldAccess is `var.field` (tuple field or reducer property).
type FieldAccess struct {
	X     Expr
	Field string
	Line  int
}

// Binary is a binary operator expression.
type Binary struct {
	Op   string
	L, R Expr
	Line int
}

// Unary is `-x` or `!x`.
type Unary struct {
	Op   string
	X    Expr
	Line int
}

// NewExpr is `new Table(args)` or `new Statistics()`.
type NewExpr struct {
	Table string
	Args  []Expr
	Line  int
}

// GetMode classifies query forms.
type GetMode int

const (
	// GetAll is the iterable form used in for loops.
	GetAll GetMode = iota
	// GetUniq is `get uniq? T(...)`: the unique match or null.
	GetUniq
	// GetMin is `get min T(...)`: the matching tuple with the smallest
	// orderby field.
	GetMin
	// GetCount is `get count T(...)`: an aggregate count.
	GetCount
)

// GetExpr is a database query.
type GetExpr struct {
	Mode   GetMode
	Table  string
	Args   []Expr // equality-prefix argument expressions
	Lambda Expr   // optional [predicate] over the queried tuple's fields
	Line   int
}

// CallExpr is a builtin call: min, max, abs.
type CallExpr struct {
	Fn   string
	Args []Expr
	Line int
}

func (*IntLit) exprNode()      {}
func (*FloatLit) exprNode()    {}
func (*StrLit) exprNode()      {}
func (*BoolLit) exprNode()     {}
func (*NullLit) exprNode()     {}
func (*VarRef) exprNode()      {}
func (*FieldAccess) exprNode() {}
func (*Binary) exprNode()      {}
func (*Unary) exprNode()       {}
func (*NewExpr) exprNode()     {}
func (*GetExpr) exprNode()     {}
func (*CallExpr) exprNode()    {}
