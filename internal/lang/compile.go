package lang

import (
	"fmt"

	"github.com/jstar-lang/jstar/internal/core"
	"github.com/jstar-lang/jstar/internal/gamma"
	"github.com/jstar-lang/jstar/internal/reduce"
	"github.com/jstar-lang/jstar/internal/tuple"
)

// Compile loads a parsed file onto a fresh engine Program. Name resolution
// and arity checks happen here (the static errors XText would report);
// value-level type errors surface at run time, as in the generated Java.
func Compile(f *File) (*core.Program, error) {
	c := &compiler{prog: core.NewProgram(), tables: map[string]*tuple.Schema{}}
	// Pass 1: tables and orders (rules may reference later tables).
	for _, d := range f.Decls {
		switch d := d.(type) {
		case *TableDecl:
			if err := c.table(d); err != nil {
				return nil, err
			}
		case *OrderDecl:
			if err := c.order(d); err != nil {
				return nil, err
			}
		}
	}
	// Pass 2: rules and puts.
	for _, d := range f.Decls {
		switch d := d.(type) {
		case *PutDecl:
			if err := c.topPut(d); err != nil {
				return nil, err
			}
		case *RuleDecl:
			if err := c.rule(d); err != nil {
				return nil, err
			}
		}
	}
	// Pass 3: static store-plan hints from the file's query patterns.
	c.emitPlanHints(f)
	return c.prog, nil
}

// CompileSource parses and compiles JStar source text.
func CompileSource(src string) (*core.Program, error) {
	f, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Compile(f)
}

type compiler struct {
	prog   *core.Program
	tables map[string]*tuple.Schema
	nrules int
}

func kindOf(ty string) tuple.Kind {
	switch ty {
	case "int":
		return tuple.KindInt
	case "double":
		return tuple.KindFloat
	case "String":
		return tuple.KindString
	case "boolean":
		return tuple.KindBool
	}
	return tuple.KindInvalid
}

func (c *compiler) table(d *TableDecl) error {
	if _, dup := c.tables[d.Name]; dup {
		return errf(d.Line, 1, "table %s declared twice", d.Name)
	}
	cols := make([]tuple.Column, len(d.Cols))
	for i, col := range d.Cols {
		cols[i] = tuple.Column{Name: col.Name, Kind: kindOf(col.Type), Key: col.Key}
	}
	var ob []tuple.OrderEntry
	for _, e := range d.OrderBy {
		switch e.Kind {
		case "lit":
			ob = append(ob, tuple.Lit(e.Name))
		case "seq":
			ob = append(ob, tuple.Seq(e.Name))
		case "par":
			ob = append(ob, tuple.Par(e.Name))
		}
	}
	s, err := tuple.NewSchema(d.Name, cols, ob)
	if err != nil {
		return errf(d.Line, 1, "%v", err)
	}
	// Register through the program so literal names are touched.
	c.tables[d.Name] = c.prog.Table(d.Name, s.Columns, s.OrderBy)
	return nil
}

func (c *compiler) order(d *OrderDecl) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = errf(d.Line, 1, "%v", p) // cyclic order declaration
		}
	}()
	c.prog.Order(d.Names...)
	return nil
}

func (c *compiler) schema(name string, line int) (*tuple.Schema, error) {
	s, ok := c.tables[name]
	if !ok {
		return nil, errf(line, 1, "unknown table %s", name)
	}
	return s, nil
}

func (c *compiler) topPut(d *PutDecl) error {
	s, err := c.schema(d.Expr.Table, d.Line)
	if err != nil {
		return err
	}
	if len(d.Expr.Args) != s.Arity() {
		return errf(d.Line, 1, "new %s: %d args, table has %d columns",
			s.Name, len(d.Expr.Args), s.Arity())
	}
	// Top-level puts may only use constant expressions.
	env := &env{}
	vals := make([]tuple.Value, len(d.Expr.Args))
	for i, a := range d.Expr.Args {
		v, err := c.eval(nil, env, a)
		if err != nil {
			return errf(d.Line, 1, "top-level put: %v", err)
		}
		vals[i], err = toValue(v, s.Columns[i].Kind)
		if err != nil {
			return errf(d.Line, 1, "top-level put field %s: %v", s.Columns[i].Name, err)
		}
	}
	c.prog.Put(tuple.New(s, vals...))
	return nil
}

// staticCheck walks rule bodies resolving table names and arities.
func (c *compiler) staticCheck(stmts []Stmt) error {
	var walkExpr func(e Expr) error
	walkExpr = func(e Expr) error {
		switch e := e.(type) {
		case *NewExpr:
			if e.Table == "Statistics" {
				if len(e.Args) != 0 {
					return errf(e.Line, 1, "new Statistics takes no arguments")
				}
				return nil
			}
			s, err := c.schema(e.Table, e.Line)
			if err != nil {
				return err
			}
			if len(e.Args) != s.Arity() {
				return errf(e.Line, 1, "new %s: %d args, table has %d columns",
					e.Table, len(e.Args), s.Arity())
			}
			for _, a := range e.Args {
				if err := walkExpr(a); err != nil {
					return err
				}
			}
		case *GetExpr:
			s, err := c.schema(e.Table, e.Line)
			if err != nil {
				return err
			}
			if len(e.Args) > s.Arity() {
				return errf(e.Line, 1, "get %s: %d args exceed %d columns",
					e.Table, len(e.Args), s.Arity())
			}
			for _, a := range e.Args {
				if err := walkExpr(a); err != nil {
					return err
				}
			}
			if e.Lambda != nil {
				if err := walkExpr(e.Lambda); err != nil {
					return err
				}
			}
		case *Binary:
			if err := walkExpr(e.L); err != nil {
				return err
			}
			return walkExpr(e.R)
		case *Unary:
			return walkExpr(e.X)
		case *FieldAccess:
			return walkExpr(e.X)
		case *CallExpr:
			for _, a := range e.Args {
				if err := walkExpr(a); err != nil {
					return err
				}
			}
		}
		return nil
	}
	var walkStmts func(ss []Stmt) error
	walkStmts = func(ss []Stmt) error {
		for _, s := range ss {
			switch s := s.(type) {
			case *IfStmt:
				if err := walkExpr(s.Cond); err != nil {
					return err
				}
				if err := walkStmts(s.Then); err != nil {
					return err
				}
				if err := walkStmts(s.Else); err != nil {
					return err
				}
			case *ValStmt:
				if err := walkExpr(s.Expr); err != nil {
					return err
				}
			case *PutStmt:
				if err := walkExpr(s.Expr); err != nil {
					return err
				}
			case *PrintlnStmt:
				if err := walkExpr(s.Expr); err != nil {
					return err
				}
			case *ForStmt:
				if err := walkExpr(s.Query); err != nil {
					return err
				}
				if err := walkStmts(s.Body); err != nil {
					return err
				}
			case *AccumStmt:
				if err := walkExpr(s.Expr); err != nil {
					return err
				}
			}
		}
		return nil
	}
	return walkStmts(stmts)
}

func (c *compiler) rule(d *RuleDecl) error {
	trig, err := c.schema(d.Table, d.Line)
	if err != nil {
		return err
	}
	if err := c.staticCheck(d.Body); err != nil {
		return err
	}
	c.nrules++
	name := fmt.Sprintf("foreach_%s_%d", d.Table, c.nrules)
	comp := c // capture
	r := c.prog.Rule(name, trig, func(ctx *core.Ctx, t *tuple.Tuple) {
		e := &env{}
		e.bind(d.Var, t)
		if err := comp.execBlock(ctx, e, d.Body); err != nil {
			panic(err)
		}
	})
	r.BatchBody = comp.batchBody(d)
	return nil
}

// exprHasGet reports whether e contains a database query.
func exprHasGet(e Expr) bool {
	switch e := e.(type) {
	case *GetExpr:
		return true
	case *Binary:
		return exprHasGet(e.L) || exprHasGet(e.R)
	case *Unary:
		return exprHasGet(e.X)
	case *FieldAccess:
		return exprHasGet(e.X)
	case *NewExpr:
		for _, a := range e.Args {
			if exprHasGet(a) {
				return true
			}
		}
	case *CallExpr:
		for _, a := range e.Args {
			if exprHasGet(a) {
				return true
			}
		}
	}
	return false
}

// stmtsHaveGet reports whether any statement in ss contains a query or a
// query loop.
func stmtsHaveGet(ss []Stmt) bool {
	for _, s := range ss {
		switch s := s.(type) {
		case *ForStmt:
			return true
		case *IfStmt:
			if exprHasGet(s.Cond) || stmtsHaveGet(s.Then) || stmtsHaveGet(s.Else) {
				return true
			}
		case *ValStmt:
			if exprHasGet(s.Expr) {
				return true
			}
		case *PutStmt:
			if exprHasGet(s.Expr) {
				return true
			}
		case *PrintlnStmt:
			if exprHasGet(s.Expr) {
				return true
			}
		case *AccumStmt:
			if exprHasGet(s.Expr) {
				return true
			}
		}
	}
	return false
}

// singleLookup matches the batched-probe rule shape: leading val
// declarations with no queries, exactly one `for (x : get T(prefix…))`
// loop whose prefix is a non-empty indexed lookup and whose body contains
// no further queries, then trailing query-free statements. Such a rule's
// only Gamma read is one indexed probe per firing, so a chunk of firings
// can issue its probes as one batched sequence.
func singleLookup(d *RuleDecl) (lead []Stmt, loop *ForStmt, tail []Stmt, ok bool) {
	for i, s := range d.Body {
		f, isFor := s.(*ForStmt)
		if !isFor {
			continue
		}
		if loop != nil {
			return nil, nil, nil, false // a second loop: not a single lookup
		}
		loop = f
		lead = d.Body[:i]
		tail = d.Body[i+1:]
	}
	if loop == nil || loop.Query.Mode != GetAll || len(loop.Query.Args) == 0 {
		return nil, nil, nil, false
	}
	for _, a := range loop.Query.Args {
		if exprHasGet(a) {
			return nil, nil, nil, false
		}
	}
	if loop.Query.Lambda != nil && exprHasGet(loop.Query.Lambda) {
		return nil, nil, nil, false
	}
	for _, s := range lead {
		v, isVal := s.(*ValStmt)
		if !isVal || exprHasGet(v.Expr) {
			return nil, nil, nil, false
		}
	}
	if stmtsHaveGet(loop.Body) || stmtsHaveGet(tail) {
		return nil, nil, nil, false
	}
	return lead, loop, tail, true
}

// batchBody compiles the rule's batch-aware firing path (core's
// Rule.BatchBody). Rules whose query pattern is a single indexed lookup
// get the batched-probe body: the chunk's queries are built up front and
// issued as one Ctx.ForEachBatch probe sequence, with each query's loop
// iterations run under its own firing environment. Every other rule gets
// the generic chunk loop, which amortises dispatch and environment
// allocation but executes each firing exactly as the per-tuple body would.
func (c *compiler) batchBody(d *RuleDecl) func(ctx *core.Ctx, ts []*tuple.Tuple) {
	lead, loop, tail, ok := singleLookup(d)
	if !ok {
		return func(ctx *core.Ctx, ts []*tuple.Tuple) {
			e := &env{}
			for _, t := range ts {
				ctx.Bind(t)
				e.names, e.vals = e.names[:0], e.vals[:0]
				e.bind(d.Var, t)
				if err := c.execBlock(ctx, e, d.Body); err != nil {
					panic(err)
				}
			}
		}
	}
	return func(ctx *core.Ctx, ts []*tuple.Tuple) {
		envs := make([]*env, len(ts))
		qs := make([]gamma.Query, len(ts))
		var sch *tuple.Schema
		for i, t := range ts {
			ctx.Bind(t)
			e := &env{}
			e.bind(d.Var, t)
			for _, s := range lead {
				if err := c.exec(ctx, e, s); err != nil {
					panic(err)
				}
			}
			q, s2, err := c.buildQuery(ctx, e, loop.Query)
			if err != nil {
				panic(err)
			}
			envs[i], qs[i], sch = e, q, s2
		}
		var loopErr error
		ctx.ForEachBatch(sch, qs, ts, func(qi int, t *tuple.Tuple) bool {
			if loopErr != nil {
				// A false return only ends the current query; keep the
				// first firing's error and skip the remaining queries too.
				return false
			}
			e := envs[qi]
			m := e.mark()
			e.bind(loop.Var, t)
			loopErr = c.execBlock(ctx, e, loop.Body)
			e.release(m)
			return loopErr == nil
		})
		if loopErr != nil {
			panic(loopErr)
		}
		for i, t := range ts {
			ctx.Bind(t)
			if err := c.execBlock(ctx, envs[i], tail); err != nil {
				panic(err)
			}
		}
	}
}

// tableUsage accumulates the statically visible access pattern of one
// table across every rule body and top-level put of a file.
type tableUsage struct {
	putInto   bool
	queried   bool
	scanned   bool // some get had an empty equality prefix
	minPrefix int  // shortest non-empty get prefix
}

// emitPlanHints is the compiler's static half of store planning: where
// PlanFromStats reads a finished run's counters, this pass reads the query
// shapes visible in the source and records conservative plan hints on the
// program (Program.PlanHint — the lowest-priority selection layer, so
// GammaHint and Options.StorePlan still win). Only two clear-cut shapes
// are hinted: tables whose every get carries an equality prefix become
// hash-indexed at the shortest prefix depth (int-specialised when all
// columns are ints — every such get then hits the keyed probe path), and
// tables that are put into but never queried become columnar (their store
// only ever absorbs appends and dedup).
func (c *compiler) emitPlanHints(f *File) {
	usage := map[string]*tableUsage{}
	use := func(name string) *tableUsage {
		u := usage[name]
		if u == nil {
			u = &tableUsage{}
			usage[name] = u
		}
		return u
	}
	var walkExpr func(e Expr)
	walkExpr = func(e Expr) {
		switch e := e.(type) {
		case *GetExpr:
			u := use(e.Table)
			u.queried = true
			if n := len(e.Args); n == 0 {
				u.scanned = true
			} else if !u.scanned && (u.minPrefix == 0 || n < u.minPrefix) {
				u.minPrefix = n
			}
			for _, a := range e.Args {
				walkExpr(a)
			}
			if e.Lambda != nil {
				walkExpr(e.Lambda)
			}
		case *NewExpr:
			for _, a := range e.Args {
				walkExpr(a)
			}
		case *Binary:
			walkExpr(e.L)
			walkExpr(e.R)
		case *Unary:
			walkExpr(e.X)
		case *FieldAccess:
			walkExpr(e.X)
		case *CallExpr:
			for _, a := range e.Args {
				walkExpr(a)
			}
		}
	}
	var walkStmts func(ss []Stmt)
	walkStmts = func(ss []Stmt) {
		for _, s := range ss {
			switch s := s.(type) {
			case *IfStmt:
				walkExpr(s.Cond)
				walkStmts(s.Then)
				walkStmts(s.Else)
			case *ValStmt:
				walkExpr(s.Expr)
			case *PutStmt:
				if n, ok := s.Expr.(*NewExpr); ok {
					use(n.Table).putInto = true
				}
				walkExpr(s.Expr)
			case *PrintlnStmt:
				walkExpr(s.Expr)
			case *ForStmt:
				walkExpr(s.Query)
				walkStmts(s.Body)
			case *AccumStmt:
				walkExpr(s.Expr)
			}
		}
	}
	for _, d := range f.Decls {
		switch d := d.(type) {
		case *PutDecl:
			use(d.Expr.Table).putInto = true
		case *RuleDecl:
			walkStmts(d.Body)
		}
	}
	for name, u := range usage {
		s, ok := c.tables[name]
		if !ok {
			continue
		}
		switch {
		case u.queried && !u.scanned && u.minPrefix >= 1:
			if gamma.AllIntColumns(s) {
				c.prog.PlanHint(name, fmt.Sprintf("inthash:%d", u.minPrefix))
			} else {
				c.prog.PlanHint(name, fmt.Sprintf("hash:%d", u.minPrefix))
			}
		case !u.queried && u.putInto:
			c.prog.PlanHint(name, "columnar")
		}
	}
}

// env is a lexically scoped variable environment for one rule firing.
type env struct {
	names []string
	vals  []any
}

func (e *env) bind(name string, v any) { e.names = append(e.names, name); e.vals = append(e.vals, v) }

func (e *env) lookup(name string) (any, bool) {
	for i := len(e.names) - 1; i >= 0; i-- {
		if e.names[i] == name {
			return e.vals[i], true
		}
	}
	return nil, false
}

func (e *env) set(name string, v any) bool {
	for i := len(e.names) - 1; i >= 0; i-- {
		if e.names[i] == name {
			e.vals[i] = v
			return true
		}
	}
	return false
}

func (e *env) mark() int     { return len(e.names) }
func (e *env) release(m int) { e.names = e.names[:m]; e.vals = e.vals[:m] }

func (c *compiler) execBlock(ctx *core.Ctx, e *env, stmts []Stmt) error {
	m := e.mark()
	defer e.release(m)
	for _, s := range stmts {
		if err := c.exec(ctx, e, s); err != nil {
			return err
		}
	}
	return nil
}

func (c *compiler) exec(ctx *core.Ctx, e *env, s Stmt) error {
	switch s := s.(type) {
	case *IfStmt:
		v, err := c.eval(ctx, e, s.Cond)
		if err != nil {
			return err
		}
		b, ok := v.(bool)
		if !ok {
			return errf(s.Line, 1, "if condition is not boolean (got %T)", v)
		}
		if b {
			return c.execBlock(ctx, e, s.Then)
		}
		return c.execBlock(ctx, e, s.Else)
	case *ValStmt:
		v, err := c.eval(ctx, e, s.Expr)
		if err != nil {
			return err
		}
		e.bind(s.Name, v)
		return nil
	case *PutStmt:
		v, err := c.eval(ctx, e, s.Expr)
		if err != nil {
			return err
		}
		t, ok := v.(*tuple.Tuple)
		if !ok {
			return errf(s.Line, 1, "put requires a tuple (got %T)", v)
		}
		ctx.Put(t)
		return nil
	case *PrintlnStmt:
		v, err := c.eval(ctx, e, s.Expr)
		if err != nil {
			return err
		}
		ctx.Println(render(v))
		return nil
	case *ForStmt:
		q, s2, err := c.buildQuery(ctx, e, s.Query)
		if err != nil {
			return err
		}
		var loopErr error
		ctx.ForEach(s2, q, func(t *tuple.Tuple) bool {
			m := e.mark()
			e.bind(s.Var, t)
			loopErr = c.execBlock(ctx, e, s.Body)
			e.release(m)
			return loopErr == nil
		})
		return loopErr
	case *AccumStmt:
		cur, ok := e.lookup(s.Name)
		if !ok {
			return errf(s.Line, 1, "unknown variable %s", s.Name)
		}
		v, err := c.eval(ctx, e, s.Expr)
		if err != nil {
			return err
		}
		switch acc := cur.(type) {
		case *reduce.Statistics:
			f, err := toFloat(v)
			if err != nil {
				return errf(s.Line, 1, "stats += : %v", err)
			}
			acc.Add(f)
			return nil
		case int64:
			i, ok := v.(int64)
			if !ok {
				return errf(s.Line, 1, "int accumulator += non-int %T", v)
			}
			e.set(s.Name, acc+i)
			return nil
		case float64:
			f, err := toFloat(v)
			if err != nil {
				return err
			}
			e.set(s.Name, acc+f)
			return nil
		default:
			return errf(s.Line, 1, "%s is not an accumulator (got %T)", s.Name, cur)
		}
	default:
		return fmt.Errorf("jstar: unknown statement %T", s)
	}
}

// buildQuery evaluates a GetExpr's prefix arguments and compiles its lambda.
func (c *compiler) buildQuery(ctx *core.Ctx, e *env, g *GetExpr) (gamma.Query, *tuple.Schema, error) {
	s, err := c.schema(g.Table, g.Line)
	if err != nil {
		return gamma.Query{}, nil, err
	}
	prefix := make([]tuple.Value, len(g.Args))
	for i, a := range g.Args {
		v, err := c.eval(ctx, e, a)
		if err != nil {
			return gamma.Query{}, nil, err
		}
		prefix[i], err = toValue(v, s.Columns[i].Kind)
		if err != nil {
			return gamma.Query{}, nil, errf(g.Line, 1, "get %s arg %d: %v", g.Table, i+1, err)
		}
	}
	q := gamma.Query{Prefix: prefix}
	if g.Lambda != nil {
		lam := g.Lambda
		q.Where = func(t *tuple.Tuple) bool {
			// Inside the lambda, unqualified names resolve to the queried
			// tuple's fields first, then to outer variables.
			le := &lambdaEnv{outer: e, tuple: t}
			v, err := c.eval(ctx, le, lam)
			if err != nil {
				panic(err)
			}
			b, ok := v.(bool)
			if !ok {
				panic(errf(g.Line, 1, "query lambda is not boolean"))
			}
			return b
		}
	}
	return q, s, nil
}

// evalGet runs a non-loop query expression.
func (c *compiler) evalGet(ctx *core.Ctx, e *env, g *GetExpr) (any, error) {
	q, s, err := c.buildQuery(ctx, e, g)
	if err != nil {
		return nil, err
	}
	switch g.Mode {
	case GetUniq:
		t := ctx.GetUniq(s, q)
		if t == nil {
			return nil, nil // null
		}
		return t, nil
	case GetMin:
		col := minColumn(s)
		t := ctx.GetMin(s, q, col)
		if t == nil {
			return nil, nil
		}
		return t, nil
	case GetCount:
		return int64(ctx.Count(s, q)), nil
	default:
		return nil, errf(g.Line, 1, "iterable get %s used outside a for loop", g.Table)
	}
}

// minColumn picks the field `get min` minimises: the table's first seq
// orderby field, else its first int/double column.
func minColumn(s *tuple.Schema) string {
	for i, e := range s.OrderBy {
		if e.Kind == tuple.OrderSeq {
			return s.Columns[s.OrderByColumn(i)].Name
		}
	}
	for _, c := range s.Columns {
		if c.Kind == tuple.KindInt || c.Kind == tuple.KindFloat {
			return c.Name
		}
	}
	return s.Columns[0].Name
}

// lambdaEnv resolves unqualified names against the queried tuple's fields,
// falling back to the outer environment.
type lambdaEnv struct {
	outer *env
	tuple *tuple.Tuple
}

func (le *lambdaEnv) lookup(name string) (any, bool) {
	if i := le.tuple.Schema().ColumnIndex(name); i >= 0 {
		return fromValue(le.tuple.Field(i)), true
	}
	return le.outer.lookup(name)
}
