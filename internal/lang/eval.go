package lang

import (
	"fmt"
	"math"
	"strconv"

	"github.com/jstar-lang/jstar/internal/core"
	"github.com/jstar-lang/jstar/internal/reduce"
	"github.com/jstar-lang/jstar/internal/tuple"
)

// Runtime values are represented as:
//
//	int64, float64, string, bool  — scalars
//	*tuple.Tuple                  — tuples (val x = get uniq? ...)
//	*reduce.Statistics            — reducer objects
//	nil                           — null
//
// scope resolves variable names during evaluation.
type scope interface {
	lookup(name string) (any, bool)
}

// eval evaluates an expression. ctx may be nil for top-level constant
// expressions (initial puts).
func (c *compiler) eval(ctx *core.Ctx, sc scope, e Expr) (any, error) {
	switch e := e.(type) {
	case *IntLit:
		return e.V, nil
	case *FloatLit:
		return e.V, nil
	case *StrLit:
		return e.V, nil
	case *BoolLit:
		return e.V, nil
	case *NullLit:
		return nil, nil
	case *VarRef:
		if v, ok := sc.lookup(e.Name); ok {
			return v, nil
		}
		return nil, errf(e.Line, 1, "unknown variable %s", e.Name)
	case *FieldAccess:
		x, err := c.eval(ctx, sc, e.X)
		if err != nil {
			return nil, err
		}
		return fieldOf(x, e.Field, e.Line)
	case *Unary:
		x, err := c.eval(ctx, sc, e.X)
		if err != nil {
			return nil, err
		}
		switch e.Op {
		case "-":
			switch v := x.(type) {
			case int64:
				return -v, nil
			case float64:
				return -v, nil
			}
			return nil, errf(e.Line, 1, "unary - on %T", x)
		case "!":
			b, ok := x.(bool)
			if !ok {
				return nil, errf(e.Line, 1, "unary ! on %T", x)
			}
			return !b, nil
		}
		return nil, errf(e.Line, 1, "unknown unary %s", e.Op)
	case *Binary:
		return c.evalBinary(ctx, sc, e)
	case *NewExpr:
		if e.Table == "Statistics" {
			return reduce.NewStatistics(), nil
		}
		s, err := c.schema(e.Table, e.Line)
		if err != nil {
			return nil, err
		}
		vals := make([]tuple.Value, len(e.Args))
		for i, a := range e.Args {
			v, err := c.eval(ctx, sc, a)
			if err != nil {
				return nil, err
			}
			vals[i], err = toValue(v, s.Columns[i].Kind)
			if err != nil {
				return nil, errf(e.Line, 1, "new %s field %s: %v", e.Table, s.Columns[i].Name, err)
			}
		}
		return tuple.New(s, vals...), nil
	case *GetExpr:
		if ctx == nil {
			return nil, errf(e.Line, 1, "get queries are not allowed in top-level puts")
		}
		env2, ok := sc.(*env)
		if !ok {
			return nil, errf(e.Line, 1, "nested get inside a query lambda is not supported")
		}
		return c.evalGet(ctx, env2, e)
	case *CallExpr:
		args := make([]any, len(e.Args))
		for i, a := range e.Args {
			v, err := c.eval(ctx, sc, a)
			if err != nil {
				return nil, err
			}
			args[i] = v
		}
		return callBuiltin(e, args)
	default:
		return nil, fmt.Errorf("jstar: unknown expression %T", e)
	}
}

func callBuiltin(e *CallExpr, args []any) (any, error) {
	binNum := func(f func(a, b float64) float64, g func(a, b int64) int64) (any, error) {
		if len(args) != 2 {
			return nil, errf(e.Line, 1, "%s takes 2 arguments", e.Fn)
		}
		ai, aInt := args[0].(int64)
		bi, bInt := args[1].(int64)
		if aInt && bInt {
			return g(ai, bi), nil
		}
		af, err := toFloat(args[0])
		if err != nil {
			return nil, err
		}
		bf, err := toFloat(args[1])
		if err != nil {
			return nil, err
		}
		return f(af, bf), nil
	}
	switch e.Fn {
	case "min":
		return binNum(math.Min, func(a, b int64) int64 {
			if a < b {
				return a
			}
			return b
		})
	case "max":
		return binNum(math.Max, func(a, b int64) int64 {
			if a > b {
				return a
			}
			return b
		})
	case "abs":
		if len(args) != 1 {
			return nil, errf(e.Line, 1, "abs takes 1 argument")
		}
		switch v := args[0].(type) {
		case int64:
			if v < 0 {
				return -v, nil
			}
			return v, nil
		case float64:
			return math.Abs(v), nil
		}
		return nil, errf(e.Line, 1, "abs on %T", args[0])
	}
	return nil, errf(e.Line, 1, "unknown function %s", e.Fn)
}

func (c *compiler) evalBinary(ctx *core.Ctx, sc scope, e *Binary) (any, error) {
	// Short-circuit logical operators.
	if e.Op == "&&" || e.Op == "||" {
		l, err := c.eval(ctx, sc, e.L)
		if err != nil {
			return nil, err
		}
		lb, ok := l.(bool)
		if !ok {
			return nil, errf(e.Line, 1, "%s on non-boolean %T", e.Op, l)
		}
		if e.Op == "&&" && !lb {
			return false, nil
		}
		if e.Op == "||" && lb {
			return true, nil
		}
		r, err := c.eval(ctx, sc, e.R)
		if err != nil {
			return nil, err
		}
		rb, ok := r.(bool)
		if !ok {
			return nil, errf(e.Line, 1, "%s on non-boolean %T", e.Op, r)
		}
		return rb, nil
	}
	l, err := c.eval(ctx, sc, e.L)
	if err != nil {
		return nil, err
	}
	r, err := c.eval(ctx, sc, e.R)
	if err != nil {
		return nil, err
	}
	switch e.Op {
	case "==", "!=":
		eq, err := equalVals(l, r)
		if err != nil {
			return nil, errf(e.Line, 1, "%v", err)
		}
		if e.Op == "!=" {
			return !eq, nil
		}
		return eq, nil
	}
	// String concatenation with +.
	if e.Op == "+" {
		if ls, ok := l.(string); ok {
			return ls + render(r), nil
		}
		if rs, ok := r.(string); ok {
			return render(l) + rs, nil
		}
	}
	li, lInt := l.(int64)
	ri, rInt := r.(int64)
	if lInt && rInt {
		switch e.Op {
		case "+":
			return li + ri, nil
		case "-":
			return li - ri, nil
		case "*":
			return li * ri, nil
		case "/":
			if ri == 0 {
				return nil, errf(e.Line, 1, "integer division by zero")
			}
			return li / ri, nil
		case "%":
			if ri == 0 {
				return nil, errf(e.Line, 1, "integer modulo by zero")
			}
			return li % ri, nil
		case "<":
			return li < ri, nil
		case "<=":
			return li <= ri, nil
		case ">":
			return li > ri, nil
		case ">=":
			return li >= ri, nil
		}
	}
	lf, lerr := toFloat(l)
	rf, rerr := toFloat(r)
	if lerr != nil || rerr != nil {
		// Allow string comparison.
		ls, lok := l.(string)
		rs, rok := r.(string)
		if lok && rok {
			switch e.Op {
			case "<":
				return ls < rs, nil
			case "<=":
				return ls <= rs, nil
			case ">":
				return ls > rs, nil
			case ">=":
				return ls >= rs, nil
			}
		}
		return nil, errf(e.Line, 1, "operator %s on %T and %T", e.Op, l, r)
	}
	switch e.Op {
	case "+":
		return lf + rf, nil
	case "-":
		return lf - rf, nil
	case "*":
		return lf * rf, nil
	case "/":
		return lf / rf, nil
	case "%":
		return math.Mod(lf, rf), nil
	case "<":
		return lf < rf, nil
	case "<=":
		return lf <= rf, nil
	case ">":
		return lf > rf, nil
	case ">=":
		return lf >= rf, nil
	}
	return nil, errf(e.Line, 1, "unknown operator %s", e.Op)
}

func equalVals(l, r any) (bool, error) {
	if l == nil || r == nil {
		return l == nil && r == nil, nil
	}
	if lt, ok := l.(*tuple.Tuple); ok {
		rt, ok := r.(*tuple.Tuple)
		if !ok {
			return false, nil
		}
		return lt.Equal(rt), nil
	}
	li, lInt := l.(int64)
	ri, rInt := r.(int64)
	if lInt && rInt {
		return li == ri, nil
	}
	lf, lerr := toFloat(l)
	rf, rerr := toFloat(r)
	if lerr == nil && rerr == nil {
		return lf == rf, nil
	}
	switch lv := l.(type) {
	case string:
		rv, ok := r.(string)
		return ok && lv == rv, nil
	case bool:
		rv, ok := r.(bool)
		return ok && lv == rv, nil
	}
	return false, fmt.Errorf("cannot compare %T and %T", l, r)
}

// fieldOf resolves x.field for tuples and reducer objects.
func fieldOf(x any, field string, line int) (any, error) {
	switch v := x.(type) {
	case *tuple.Tuple:
		i := v.Schema().ColumnIndex(field)
		if i < 0 {
			return nil, errf(line, 1, "table %s has no column %s", v.Schema().Name, field)
		}
		return fromValue(v.Field(i)), nil
	case *reduce.Statistics:
		switch field {
		case "mean":
			return v.Mean(), nil
		case "sum":
			return v.Sum, nil
		case "count":
			return v.N, nil
		case "min":
			return v.MinV, nil
		case "max":
			return v.MaxV, nil
		}
		return nil, errf(line, 1, "Statistics has no property %s", field)
	case nil:
		return nil, errf(line, 1, "field access .%s on null (guard with != null)", field)
	default:
		return nil, errf(line, 1, "field access .%s on %T", field, x)
	}
}

// fromValue converts a stored column value to a runtime value.
func fromValue(v tuple.Value) any {
	switch v.Kind() {
	case tuple.KindInt:
		return v.AsInt()
	case tuple.KindFloat:
		return v.AsFloat()
	case tuple.KindString:
		return v.AsString()
	case tuple.KindBool:
		return v.AsBool()
	}
	return nil
}

// toValue converts a runtime value into a column value of the given kind,
// applying Java-style int->double widening.
func toValue(v any, k tuple.Kind) (tuple.Value, error) {
	switch k {
	case tuple.KindInt:
		if i, ok := v.(int64); ok {
			return tuple.Int(i), nil
		}
	case tuple.KindFloat:
		switch x := v.(type) {
		case float64:
			return tuple.Float(x), nil
		case int64:
			return tuple.Float(float64(x)), nil
		}
	case tuple.KindString:
		if s, ok := v.(string); ok {
			return tuple.String_(s), nil
		}
	case tuple.KindBool:
		if b, ok := v.(bool); ok {
			return tuple.Bool(b), nil
		}
	}
	return tuple.Value{}, fmt.Errorf("cannot use %T as %v", v, k)
}

func toFloat(v any) (float64, error) {
	switch x := v.(type) {
	case float64:
		return x, nil
	case int64:
		return float64(x), nil
	}
	return 0, fmt.Errorf("not numeric: %T", v)
}

// render formats a runtime value for println and string concatenation.
func render(v any) string {
	switch x := v.(type) {
	case nil:
		return "null"
	case string:
		return x
	case int64:
		return strconv.FormatInt(x, 10)
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case bool:
		return strconv.FormatBool(x)
	case *tuple.Tuple:
		return x.String()
	case *reduce.Statistics:
		return fmt.Sprintf("Statistics(n=%d, mean=%g)", x.N, x.Mean())
	default:
		return fmt.Sprintf("%v", v)
	}
}
