package lang

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/jstar-lang/jstar/internal/core"
)

// TestExamplePrograms compiles and executes every .jstar file shipped under
// examples/programs, sequentially and in parallel, checking known outputs.
func TestExamplePrograms(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "programs")
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		t.Skipf("skipping golden programs: %s does not exist (source checkout without examples)", dir)
	}
	if err != nil {
		t.Fatalf("examples/programs unreadable: %v", err)
	}
	want := map[string]func(t *testing.T, out []string){
		"ship.jstar": func(t *testing.T, out []string) {
			if len(out) != 4 || !strings.Contains(out[3], "x=460") {
				t.Errorf("ship output = %q", out)
			}
		},
		"fibonacci.jstar": func(t *testing.T, out []string) {
			joined := strings.Join(out, "")
			if !strings.Contains(joined, "fib(30) = 832040") {
				t.Errorf("fibonacci output missing fib(30):\n%s", joined)
			}
		},
		"pvwatts_mini.jstar": func(t *testing.T, out []string) {
			joined := strings.Join(out, "")
			if !strings.Contains(joined, "1: 150") || !strings.Contains(joined, "2: 100") ||
				!strings.Contains(joined, "3: 999") {
				t.Errorf("pvwatts_mini output:\n%s", joined)
			}
		},
		"shortestpath.jstar": func(t *testing.T, out []string) {
			joined := strings.Join(out, "")
			// 0->2 (2), 2->1 (3) => 5; 1->3 (1) => 6.
			for _, line := range []string{
				"shortest path to 0 is 0", "shortest path to 2 is 2",
				"shortest path to 1 is 5", "shortest path to 3 is 6",
			} {
				if !strings.Contains(joined, line) {
					t.Errorf("missing %q in:\n%s", line, joined)
				}
			}
		},
	}
	covered := 0
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".jstar") {
			continue
		}
		check, ok := want[e.Name()]
		if !ok {
			t.Errorf("no golden check registered for %s", e.Name())
			continue
		}
		covered++
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for _, opts := range []core.Options{
			{Sequential: true, MaxSteps: 100000},
			{Threads: 4, MaxSteps: 100000},
		} {
			prog, err := CompileSource(string(src))
			if err != nil {
				t.Fatalf("%s: compile: %v", e.Name(), err)
			}
			run, err := prog.Execute(opts)
			if err != nil {
				t.Fatalf("%s (seq=%v): %v", e.Name(), opts.Sequential, err)
			}
			out := run.Output()
			// Parallel batches may reorder lines; sort-insensitive checks
			// only (the checks above use Contains).
			check(t, out)
		}
	}
	if covered != len(want) {
		t.Errorf("covered %d of %d registered programs", covered, len(want))
	}
}
