package lang

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"github.com/jstar-lang/jstar/internal/core"
	"github.com/jstar-lang/jstar/internal/exec"
	"github.com/jstar-lang/jstar/internal/tuple"
)

// run compiles src and executes it sequentially, returning the run.
func run(t *testing.T, src string, opts core.Options) *core.Run {
	t.Helper()
	p, err := CompileSource(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	r, err := p.Execute(opts)
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	return r
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex(`table Ship(int frame -> int x) orderby (Int, seq frame) // cmt
	put new Ship(0, 10) /* block
	comment */ "str\n" 3.5 <= != `)
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tok := range toks {
		if tok.Kind == TokEOF {
			break
		}
		texts = append(texts, tok.Text)
	}
	want := []string{"table", "Ship", "(", "int", "frame", "->", "int", "x", ")",
		"orderby", "(", "Int", ",", "seq", "frame", ")",
		"put", "new", "Ship", "(", "0", ",", "10", ")", "str\n", "3.5", "<=", "!="}
	if len(texts) != len(want) {
		t.Fatalf("tokens: %q", texts)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Fatalf("token %d = %q, want %q", i, texts[i], want[i])
		}
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{`"unterminated`, "/* unterminated", `"bad \q escape"`, "@"} {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) should fail", src)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("a\n  bb")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Line != 1 || toks[0].Col != 1 {
		t.Errorf("a at %d:%d", toks[0].Line, toks[0].Col)
	}
	if toks[1].Line != 2 || toks[1].Col != 3 {
		t.Errorf("bb at %d:%d", toks[1].Line, toks[1].Col)
	}
}

func TestParseShipProgram(t *testing.T) {
	src := `
	table Ship(int frame -> int x, int y, int dx, int dy) orderby (Int, seq frame)
	put new Ship(0, 10, 10, 150, 0)
	foreach (Ship s) {
	  if (s.x < 400) { put new Ship(s.frame+1, s.x+150, s.y, s.dx, s.dy) }
	}`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Decls) != 3 {
		t.Fatalf("decls = %d", len(f.Decls))
	}
	td := f.Decls[0].(*TableDecl)
	if td.Name != "Ship" || len(td.Cols) != 5 || !td.Cols[0].Key || td.Cols[1].Key {
		t.Errorf("table decl = %+v", td)
	}
	if len(td.OrderBy) != 2 || td.OrderBy[0].Kind != "lit" || td.OrderBy[1].Kind != "seq" {
		t.Errorf("orderby = %+v", td.OrderBy)
	}
	rd := f.Decls[2].(*RuleDecl)
	if rd.Table != "Ship" || rd.Var != "s" || len(rd.Body) != 1 {
		t.Errorf("rule = %+v", rd)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"table",                              // missing name
		"table T(int)",                       // missing column name
		"table T(float x)",                   // unknown type
		"order A",                            // single name
		"put 42",                             // put of non-new
		"foreach Ship s {}",                  // missing parens
		"foreach (Ship s) { if x {} }",       // if without parens
		"foreach (Ship s) { for (x : 3) {}}", // for over non-query
		"bogus",                              // unknown decl
		"foreach (Ship s) { put new T(1) ",   // unterminated block
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"table T(int a) table T(int a)", "declared twice"},
		{"put new Missing(1)", "unknown table"},
		{"table T(int a) put new T(1, 2)", "2 args"},
		{"table T(int a) foreach (Missing m) {}", "unknown table"},
		{"table T(int a) foreach (T t) { put new T(1,2) }", "2 args"},
		{"table T(int a) foreach (T t) { for (x : get U(1)) {} }", "unknown table"},
		{"table T(int a) orderby (seq b)", "unknown column"},
		{"order A < B order B < A", "contradicts"},
		{"order A < B order B < C order C < A", "contradicts"},
		{"table T(int a) foreach (T t) { val s = new Statistics(1) }", "no arguments"},
	}
	for _, c := range cases {
		_, err := CompileSource(c.src)
		if err == nil {
			t.Errorf("CompileSource(%q) should fail", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("CompileSource(%q) error %q, want contains %q", c.src, err, c.want)
		}
	}
}

func TestShipEndToEnd(t *testing.T) {
	src := `
	table Ship(int frame -> int x, int y, int dx, int dy) orderby (Int, seq frame)
	put new Ship(0, 10, 10, 150, 0)
	foreach (Ship s) {
	  if (s.x < 400) { put new Ship(s.frame+1, s.x+150, s.y, s.dx, s.dy) }
	}`
	r := run(t, src, core.Options{Sequential: true, CheckCausality: true})
	ship := findTable(t, r, "Ship")
	if r.Gamma().Table(ship).Len() != 4 {
		t.Errorf("Ship tuples = %d, want 4", r.Gamma().Table(ship).Len())
	}
}

func findTable(t *testing.T, r *core.Run, name string) *tuple.Schema {
	t.Helper()
	// The run's Gamma resolves by schema pointer; fetch via the program.
	for _, s := range r.Program().Tables() {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("table %s not found", name)
	return nil
}

func TestFibonacci(t *testing.T) {
	src := `
	table Fib(int n -> int value) orderby (Int, seq n)
	put new Fib(0, 0)
	put new Fib(1, 1)
	foreach (Fib f) {
	  if (f.n >= 1 && f.n < 20) {
	    val prev = get uniq? Fib(f.n - 1)
	    if (prev != null) {
	      put new Fib(f.n + 1, f.value + prev.value)
	    }
	  }
	}`
	r := run(t, src, core.Options{Sequential: true, CheckCausality: true})
	fib := findTable(t, r, "Fib")
	var last int64
	r.Gamma().Table(fib).Scan(func(tp *tuple.Tuple) bool {
		if tp.Int("n") == 20 {
			last = tp.Int("value")
		}
		return true
	})
	if last != 6765 {
		t.Errorf("fib(20) = %d, want 6765", last)
	}
}

func TestPvWattsStyleReduceAndLambda(t *testing.T) {
	src := `
	table Reading(int month, int power) orderby (Reading)
	table SumMonth(int month) orderby (SumMonth)
	order Reading < SumMonth
	put new Reading(1, 10)
	put new Reading(1, 20)
	put new Reading(2, 50)
	put new Reading(2, 70)
	foreach (Reading r) { put new SumMonth(r.month) }
	foreach (SumMonth s) {
	  val stats = new Statistics()
	  for (record : get Reading(s.month)) {
	    stats += record.power
	  }
	  println(s.month + ": " + stats.mean)
	}`
	r := run(t, src, core.Options{Sequential: true})
	out := r.Output()
	sort.Strings(out)
	if len(out) != 2 || !strings.HasPrefix(out[0], "1: 15") || !strings.HasPrefix(out[1], "2: 60") {
		t.Errorf("output = %q", out)
	}
}

func TestDijkstraStyleProgram(t *testing.T) {
	src := `
	table Edge(int from, int to, int value) orderby (Edge)
	table Estimate(int vertex, int distance) orderby (Int, seq distance, Estimate)
	table Done(int vertex -> int distance) orderby (Int, seq distance, Done)
	order Edge < Int
	order Estimate < Done
	put new Edge(0, 1, 4)
	put new Edge(0, 2, 1)
	put new Edge(2, 1, 1)
	put new Edge(1, 3, 2)
	put new Estimate(0, 0)
	foreach (Estimate dist) {
	  if (get uniq? Done(dist.vertex, [distance < dist.distance]) == null) {
	    put new Done(dist.vertex, dist.distance)
	    for (edge : get Edge(dist.vertex)) {
	      if (get uniq? Done(edge.to) == null) {
	        put new Estimate(edge.to, dist.distance + edge.value)
	      }
	    }
	  }
	}`
	r := run(t, src, core.Options{Sequential: true})
	done := findTable(t, r, "Done")
	got := map[int64]int64{}
	r.Gamma().Table(done).Scan(func(tp *tuple.Tuple) bool {
		got[tp.Int("vertex")] = tp.Int("distance")
		return true
	})
	want := map[int64]int64{0: 0, 1: 2, 2: 1, 3: 4}
	for v, d := range want {
		if got[v] != d {
			t.Errorf("dist[%d] = %d, want %d (got %v)", v, got[v], d, got)
		}
	}
}

func TestGetMinAndCount(t *testing.T) {
	src := `
	table Score(int player, int points) orderby (Score)
	table Ask(int q) orderby (Ask)
	order Score < Ask
	put new Score(1, 30)
	put new Score(1, 10)
	put new Score(2, 99)
	put new Ask(0)
	foreach (Ask a) {
	  val best = get min Score(1)
	  println("min " + best.points)
	  println("count " + get count Score(1))
	  println("all " + get count Score())
	}`
	r := run(t, src, core.Options{Sequential: true})
	out := strings.Join(r.Output(), "")
	if !strings.Contains(out, "min 10") || !strings.Contains(out, "count 2") ||
		!strings.Contains(out, "all 3") {
		t.Errorf("output = %q", out)
	}
}

func TestBuiltinsAndOperators(t *testing.T) {
	src := `
	table N(int v) orderby (N)
	put new N(7)
	foreach (N n) {
	  println(min(n.v, 3))
	  println(max(n.v, 3))
	  println(abs(0 - n.v))
	  println(n.v % 4)
	  println(n.v / 2)
	  println(n.v * 1.5)
	  println(n.v > 3 && n.v < 10)
	  println(n.v < 3 || n.v == 7)
	  println(!(n.v == 7))
	}`
	r := run(t, src, core.Options{Sequential: true})
	out := r.Output()
	want := []string{"3", "7", "7", "3", "3", "10.5", "true", "true", "false"}
	if len(out) != len(want) {
		t.Fatalf("output = %q", out)
	}
	for i := range want {
		if strings.TrimSpace(out[i]) != want[i] {
			t.Errorf("line %d = %q, want %q", i, out[i], want[i])
		}
	}
}

func TestRuntimeErrorsSurface(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"div0", `table N(int v) orderby (N)
			put new N(1)
			foreach (N n) { println(n.v / 0) }`, "division by zero"},
		{"nullfield", `table N(int v) orderby (Int, seq v)
			put new N(5)
			foreach (N n) {
				val q = get uniq? N(99)
				println(q.v)
			}`, "null"},
		{"badif", `table N(int v) orderby (N)
			put new N(1)
			foreach (N n) { if (n.v) {} }`, "boolean"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p, err := CompileSource(c.src)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			_, err = p.Execute(core.Options{Sequential: true})
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("error = %v, want contains %q", err, c.want)
			}
		})
	}
}

func TestParallelExecutionOfCompiledProgram(t *testing.T) {
	// Triangle numbers via self-join: parallel-safe, deterministic output.
	src := `
	table T(int n -> int total) orderby (Int, seq n)
	put new T(1, 1)
	foreach (T t) {
	  if (t.n < 50) {
	    put new T(t.n + 1, t.total + t.n + 1)
	  }
	}`
	p, err := CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	r, err := p.Execute(core.Options{Threads: 4, CheckCausality: true})
	if err != nil {
		t.Fatal(err)
	}
	tt := findTable(t, r, "T")
	var total int64
	r.Gamma().Table(tt).Scan(func(tp *tuple.Tuple) bool {
		if tp.Int("n") == 50 {
			total = tp.Int("total")
		}
		return true
	})
	if total != 50*51/2 {
		t.Errorf("T(50) = %d, want %d", total, 50*51/2)
	}
}

func TestStringConcatAndComparison(t *testing.T) {
	src := `
	table S(String name) orderby (S)
	put new S("beta")
	foreach (S s) {
	  println("name=" + s.name)
	  println(s.name < "gamma")
	  println(s.name == "beta")
	}`
	r := run(t, src, core.Options{Sequential: true})
	out := strings.Join(r.Output(), "")
	if !strings.Contains(out, "name=beta") || !strings.Contains(out, "true") {
		t.Errorf("output = %q", out)
	}
}

func TestElseIfChain(t *testing.T) {
	src := `
	table N(int v) orderby (Int, seq v)
	put new N(1)
	put new N(5)
	put new N(9)
	foreach (N n) {
	  if (n.v < 3) { println("small") }
	  else if (n.v < 7) { println("mid") }
	  else { println("big") }
	}`
	r := run(t, src, core.Options{Sequential: true})
	out := r.Output()
	if len(out) != 3 || !strings.Contains(out[0], "small") ||
		!strings.Contains(out[1], "mid") || !strings.Contains(out[2], "big") {
		t.Errorf("output = %q", out)
	}
}

// TestBatchedSingleLookup drives the compiler's batched-probe rule shape
// (leading vals, one indexed-lookup loop with a lambda, trailing puts)
// through a step batch large enough to straddle worker chunks, under both
// the sequential and parallel engines and with the runtime causality
// checker on — the emitted BatchBody must agree with per-tuple execution.
func TestBatchedSingleLookup(t *testing.T) {
	src := `
	table Item(int g, int v) orderby (Item)
	table Group(int g) orderby (Group)
	table Sum(int g, int total) orderby (Sum)
	order Item < Group < Sum

	foreach (Group grp) {
	  val acc = 0
	  for (it : get Item(grp.g, [v >= 10])) {
	    acc += it.v
	  }
	  put new Sum(grp.g, acc)
	}`
	var puts strings.Builder
	const groups = 60
	for g := 0; g < groups; g++ {
		// Two qualifying values (10+g, 20+g) and one filtered out (g%10).
		fmt.Fprintf(&puts, "put new Item(%d, %d)\nput new Item(%d, %d)\nput new Item(%d, %d)\nput new Group(%d)\n",
			g, 10+g, g, 20+g, g, g%10, g)
	}
	for _, opts := range []core.Options{
		{Sequential: true, CheckCausality: true},
		{Threads: 4, CheckCausality: true},
		{Strategy: exec.Pipelined, Threads: 3},
	} {
		p, err := CompileSource(src + puts.String())
		if err != nil {
			t.Fatal(err)
		}
		r, err := p.Execute(opts)
		if err != nil {
			t.Fatalf("opts %+v: %v", opts, err)
		}
		sumT := findTable(t, r, "Sum")
		got := make(map[int64]int64)
		r.Gamma().Table(sumT).Scan(func(tp *tuple.Tuple) bool {
			got[tp.Int("g")] = tp.Int("total")
			return true
		})
		if len(got) != groups {
			t.Fatalf("opts %+v: %d Sum tuples, want %d", opts, len(got), groups)
		}
		for g := int64(0); g < groups; g++ {
			if want := 30 + 2*g; got[g] != want {
				t.Errorf("opts %+v: Sum(%d) = %d, want %d", opts, g, got[g], want)
			}
		}
	}
}

// TestBatchedLookupErrorPropagates: a runtime error in one firing's loop
// body must fail the run even when later firings in the same chunk
// iterate successfully — a regression test for the batched single-lookup
// body swallowing all but the last query's error.
func TestBatchedLookupErrorPropagates(t *testing.T) {
	src := `
	table Item(int g, int v) orderby (Item)
	table Group(int g) orderby (Group)
	table Sum(int g, int total) orderby (Sum)
	order Item < Group < Sum

	foreach (Group grp) {
	  val acc = 0
	  for (it : get Item(grp.g)) {
	    if (grp.g == 0) {
	      if (it.v) { acc += 1 }
	    }
	    acc += it.v
	  }
	  put new Sum(grp.g, acc)
	}
	put new Item(0, 1)
	put new Item(1, 2)
	put new Item(2, 3)
	put new Group(0)
	put new Group(1)
	put new Group(2)`
	for _, opts := range []core.Options{
		{Sequential: true},
		{Threads: 4},
	} {
		p, err := CompileSource(src)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Execute(opts); err == nil ||
			!strings.Contains(err.Error(), "if condition is not boolean") {
			t.Errorf("opts %+v: err = %v, want the group-0 non-boolean-if error", opts, err)
		}
	}
}
