// Package lang implements a frontend for the JStar language: a lexer,
// recursive-descent parser, and a compiler that loads programs onto the
// execution engine (internal/core). The surface syntax follows the paper's
// examples (§3, Fig 4, Fig 5):
//
//	table Ship(int frame -> int x, int y, int dx, int dy) orderby (Int, seq frame)
//	order Req < PvWatts < SumMonth
//	put new Ship(0, 10, 10, 150, 0)
//	foreach (Ship s) {
//	  if (s.x < 400) { put new Ship(s.frame+1, s.x+150, s.y, s.dx, s.dy) }
//	}
//
// Rule bodies support val bindings, if/else, put, println, reducer
// accumulation (stats += e), for loops over positive queries
// (for (r : get T(args)) { ... }), and the query forms get uniq? / get min
// with optional [lambda] residual predicates.
package lang

import (
	"fmt"
	"strings"
	"unicode"
)

// TokKind classifies tokens.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokInt
	TokFloat
	TokString
	TokPunct // operators and delimiters
)

// Token is one lexeme with its source position.
type Token struct {
	Kind TokKind
	Text string
	Line int
	Col  int
}

func (t Token) String() string {
	if t.Kind == TokEOF {
		return "end of file"
	}
	return fmt.Sprintf("%q", t.Text)
}

// Error is a positioned frontend error.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("jstar:%d:%d: %s", e.Line, e.Col, e.Msg)
}

func errf(line, col int, format string, args ...any) *Error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

// multi-char punctuation, longest first.
var puncts = []string{
	"->", "+=", "==", "!=", "<=", ">=", "&&", "||",
	"(", ")", "{", "}", "[", "]", ",", ";", ".", ":",
	"+", "-", "*", "/", "%", "<", ">", "=", "!", "?",
}

// Lex tokenises src. Comments run // to end of line or /* */.
func Lex(src string) ([]Token, error) {
	var toks []Token
	line, col := 1, 1
	i := 0
	advance := func(n int) {
		for k := 0; k < n; k++ {
			if src[i] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
			i++
		}
	}
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			advance(1)
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				advance(1)
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '*':
			startLine, startCol := line, col
			advance(2)
			for {
				if i+1 >= len(src) {
					return nil, errf(startLine, startCol, "unterminated block comment")
				}
				if src[i] == '*' && src[i+1] == '/' {
					advance(2)
					break
				}
				advance(1)
			}
		case c == '"':
			startLine, startCol := line, col
			advance(1)
			var b strings.Builder
			for {
				if i >= len(src) || src[i] == '\n' {
					return nil, errf(startLine, startCol, "unterminated string literal")
				}
				if src[i] == '"' {
					advance(1)
					break
				}
				if src[i] == '\\' && i+1 < len(src) {
					switch src[i+1] {
					case 'n':
						b.WriteByte('\n')
					case 't':
						b.WriteByte('\t')
					case '\\':
						b.WriteByte('\\')
					case '"':
						b.WriteByte('"')
					default:
						return nil, errf(line, col, "unknown escape \\%c", src[i+1])
					}
					advance(2)
					continue
				}
				b.WriteByte(src[i])
				advance(1)
			}
			toks = append(toks, Token{Kind: TokString, Text: b.String(), Line: startLine, Col: startCol})
		case unicode.IsDigit(rune(c)):
			startLine, startCol := line, col
			j := i
			isFloat := false
			for j < len(src) && (unicode.IsDigit(rune(src[j])) || src[j] == '.') {
				if src[j] == '.' {
					// ".." or ".x" method access would stop the number; we
					// only accept a single dot followed by a digit.
					if isFloat || j+1 >= len(src) || !unicode.IsDigit(rune(src[j+1])) {
						break
					}
					isFloat = true
				}
				j++
			}
			kind := TokInt
			if isFloat {
				kind = TokFloat
			}
			text := src[i:j]
			advance(j - i)
			toks = append(toks, Token{Kind: kind, Text: text, Line: startLine, Col: startCol})
		case unicode.IsLetter(rune(c)) || c == '_':
			startLine, startCol := line, col
			j := i
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			text := src[i:j]
			advance(j - i)
			toks = append(toks, Token{Kind: TokIdent, Text: text, Line: startLine, Col: startCol})
		default:
			matched := false
			for _, p := range puncts {
				if strings.HasPrefix(src[i:], p) {
					toks = append(toks, Token{Kind: TokPunct, Text: p, Line: line, Col: col})
					advance(len(p))
					matched = true
					break
				}
			}
			if !matched {
				return nil, errf(line, col, "unexpected character %q", c)
			}
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Line: line, Col: col})
	return toks, nil
}
