package lang

import "strconv"

// Parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []Token
	pos  int
}

// Parse lexes and parses a JStar source file.
func Parse(src string) (*File, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	f := &File{}
	for !p.at(TokEOF, "") {
		d, err := p.decl()
		if err != nil {
			return nil, err
		}
		f.Decls = append(f.Decls, d)
	}
	return f, nil
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(kind TokKind, text string) bool {
	t := p.cur()
	return t.Kind == kind && (text == "" || t.Text == text)
}

func (p *parser) atIdent(text string) bool { return p.at(TokIdent, text) }

func (p *parser) accept(kind TokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind TokKind, text string) (Token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	t := p.cur()
	want := text
	if want == "" {
		switch kind {
		case TokIdent:
			want = "identifier"
		case TokInt:
			want = "integer"
		default:
			want = "token"
		}
	}
	return t, errf(t.Line, t.Col, "expected %s, found %s", want, t)
}

func (p *parser) semi() { p.accept(TokPunct, ";") }

func (p *parser) decl() (Decl, error) {
	t := p.cur()
	switch {
	case p.atIdent("table"):
		return p.tableDecl()
	case p.atIdent("order"):
		return p.orderDecl()
	case p.atIdent("put"):
		return p.putDecl()
	case p.atIdent("foreach"):
		return p.ruleDecl()
	default:
		return nil, errf(t.Line, t.Col, "expected table, order, put or foreach, found %s", t)
	}
}

var colTypes = map[string]bool{"int": true, "double": true, "String": true, "boolean": true}

func (p *parser) tableDecl() (Decl, error) {
	kw := p.next() // table
	name, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, "("); err != nil {
		return nil, err
	}
	d := &TableDecl{Name: name.Text, Line: kw.Line}
	sawArrow := false
	for {
		ty, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		if !colTypes[ty.Text] {
			return nil, errf(ty.Line, ty.Col, "unknown column type %q (int, double, String, boolean)", ty.Text)
		}
		cn, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		d.Cols = append(d.Cols, ColDecl{Type: ty.Text, Name: cn.Text})
		switch {
		case p.accept(TokPunct, ","):
			continue
		case p.accept(TokPunct, "->"):
			if sawArrow {
				t := p.cur()
				return nil, errf(t.Line, t.Col, "duplicate -> in table %s", d.Name)
			}
			sawArrow = true
			// Everything before the arrow is a key column.
			for i := range d.Cols {
				d.Cols[i].Key = true
			}
			continue
		case p.accept(TokPunct, ")"):
		default:
			t := p.cur()
			return nil, errf(t.Line, t.Col, "expected ',', '->' or ')' in table %s, found %s", d.Name, t)
		}
		break
	}
	if p.atIdent("orderby") {
		p.next()
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		for {
			e, err := p.orderByEntry()
			if err != nil {
				return nil, err
			}
			d.OrderBy = append(d.OrderBy, e)
			if p.accept(TokPunct, ",") {
				continue
			}
			if _, err := p.expect(TokPunct, ")"); err != nil {
				return nil, err
			}
			break
		}
	}
	p.semi()
	return d, nil
}

func (p *parser) orderByEntry() (OrderByEntry, error) {
	if p.atIdent("seq") || p.atIdent("par") {
		kw := p.next()
		f, err := p.expect(TokIdent, "")
		if err != nil {
			return OrderByEntry{}, err
		}
		return OrderByEntry{Kind: kw.Text, Name: f.Text}, nil
	}
	id, err := p.expect(TokIdent, "")
	if err != nil {
		return OrderByEntry{}, err
	}
	return OrderByEntry{Kind: "lit", Name: id.Text}, nil
}

func (p *parser) orderDecl() (Decl, error) {
	kw := p.next() // order
	d := &OrderDecl{Line: kw.Line}
	id, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	d.Names = append(d.Names, id.Text)
	for p.accept(TokPunct, "<") {
		id, err = p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		d.Names = append(d.Names, id.Text)
	}
	if len(d.Names) < 2 {
		return nil, errf(kw.Line, kw.Col, "order declaration needs at least two names")
	}
	p.semi()
	return d, nil
}

func (p *parser) putDecl() (Decl, error) {
	kw := p.next() // put
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	ne, ok := e.(*NewExpr)
	if !ok {
		return nil, errf(kw.Line, kw.Col, "top-level put requires a `new Table(...)` expression")
	}
	p.semi()
	return &PutDecl{Expr: ne, Line: kw.Line}, nil
}

func (p *parser) ruleDecl() (Decl, error) {
	kw := p.next() // foreach
	if _, err := p.expect(TokPunct, "("); err != nil {
		return nil, err
	}
	table, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	v, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, ")"); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &RuleDecl{Table: table.Text, Var: v.Text, Body: body, Line: kw.Line}, nil
}

func (p *parser) block() ([]Stmt, error) {
	if _, err := p.expect(TokPunct, "{"); err != nil {
		return nil, err
	}
	var out []Stmt
	for !p.accept(TokPunct, "}") {
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func (p *parser) stmt() (Stmt, error) {
	t := p.cur()
	switch {
	case p.atIdent("if"):
		p.next()
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		then, err := p.block()
		if err != nil {
			return nil, err
		}
		var els []Stmt
		if p.atIdent("else") {
			p.next()
			if p.atIdent("if") {
				s, err := p.stmt()
				if err != nil {
					return nil, err
				}
				els = []Stmt{s}
			} else {
				els, err = p.block()
				if err != nil {
					return nil, err
				}
			}
		}
		return &IfStmt{Cond: cond, Then: then, Else: els, Line: t.Line}, nil
	case p.atIdent("val"):
		p.next()
		name, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, "="); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		p.semi()
		return &ValStmt{Name: name.Text, Expr: e, Line: t.Line}, nil
	case p.atIdent("put"):
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		p.semi()
		return &PutStmt{Expr: e, Line: t.Line}, nil
	case p.atIdent("println"):
		p.next()
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		p.semi()
		return &PrintlnStmt{Expr: e, Line: t.Line}, nil
	case p.atIdent("for"):
		p.next()
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		v, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ":"); err != nil {
			return nil, err
		}
		q, err := p.expr()
		if err != nil {
			return nil, err
		}
		ge, ok := q.(*GetExpr)
		if !ok {
			return nil, errf(t.Line, t.Col, "for loop source must be a get query")
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &ForStmt{Var: v.Text, Query: ge, Body: body, Line: t.Line}, nil
	case t.Kind == TokIdent && p.toks[p.pos+1].Kind == TokPunct && p.toks[p.pos+1].Text == "+=":
		name := p.next()
		p.next() // +=
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		p.semi()
		return &AccumStmt{Name: name.Text, Expr: e, Line: t.Line}, nil
	default:
		return nil, errf(t.Line, t.Col, "expected statement, found %s", t)
	}
}

// Expression parsing with precedence climbing.

var binPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"==": 3, "!=": 3,
	"<": 4, "<=": 4, ">": 4, ">=": 4,
	"+": 5, "-": 5,
	"*": 6, "/": 6, "%": 6,
}

func (p *parser) expr() (Expr, error) { return p.binExpr(1) }

func (p *parser) binExpr(minPrec int) (Expr, error) {
	lhs, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind != TokPunct {
			return lhs, nil
		}
		prec, ok := binPrec[t.Text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.next()
		rhs, err := p.binExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{Op: t.Text, L: lhs, R: rhs, Line: t.Line}
	}
}

func (p *parser) unary() (Expr, error) {
	t := p.cur()
	if p.at(TokPunct, "-") || p.at(TokPunct, "!") {
		p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: t.Text, X: x, Line: t.Line}, nil
	}
	return p.postfix()
}

func (p *parser) postfix() (Expr, error) {
	e, err := p.primary()
	if err != nil {
		return nil, err
	}
	for p.at(TokPunct, ".") {
		dot := p.next()
		f, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		e = &FieldAccess{X: e, Field: f.Text, Line: dot.Line}
	}
	return e, nil
}

var builtins = map[string]bool{"min": true, "max": true, "abs": true}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch {
	case t.Kind == TokInt:
		p.next()
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, errf(t.Line, t.Col, "bad integer %s", t.Text)
		}
		return &IntLit{V: v}, nil
	case t.Kind == TokFloat:
		p.next()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, errf(t.Line, t.Col, "bad float %s", t.Text)
		}
		return &FloatLit{V: v}, nil
	case t.Kind == TokString:
		p.next()
		return &StrLit{V: t.Text}, nil
	case p.atIdent("true"):
		p.next()
		return &BoolLit{V: true}, nil
	case p.atIdent("false"):
		p.next()
		return &BoolLit{V: false}, nil
	case p.atIdent("null"):
		p.next()
		return &NullLit{}, nil
	case p.atIdent("new"):
		p.next()
		name, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		args, err := p.argList()
		if err != nil {
			return nil, err
		}
		return &NewExpr{Table: name.Text, Args: args, Line: t.Line}, nil
	case p.atIdent("get"):
		return p.getExpr()
	case p.at(TokPunct, "("):
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.Kind == TokIdent:
		p.next()
		if builtins[t.Text] && p.at(TokPunct, "(") {
			args, err := p.argList()
			if err != nil {
				return nil, err
			}
			return &CallExpr{Fn: t.Text, Args: args, Line: t.Line}, nil
		}
		return &VarRef{Name: t.Text, Line: t.Line}, nil
	default:
		return nil, errf(t.Line, t.Col, "expected expression, found %s", t)
	}
}

func (p *parser) getExpr() (Expr, error) {
	kw := p.next() // get
	mode := GetAll
	switch {
	case p.atIdent("uniq"):
		p.next()
		p.accept(TokPunct, "?")
		mode = GetUniq
	case p.atIdent("min"):
		p.next()
		mode = GetMin
	case p.atIdent("count"):
		p.next()
		mode = GetCount
	}
	table, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	ge := &GetExpr{Mode: mode, Table: table.Text, Line: kw.Line}
	if _, err := p.expect(TokPunct, "("); err != nil {
		return nil, err
	}
	if p.accept(TokPunct, ")") {
		return ge, nil
	}
	for {
		if p.at(TokPunct, "[") {
			p.next()
			lam, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokPunct, "]"); err != nil {
				return nil, err
			}
			ge.Lambda = lam
			if _, err := p.expect(TokPunct, ")"); err != nil {
				return nil, err
			}
			return ge, nil
		}
		a, err := p.expr()
		if err != nil {
			return nil, err
		}
		ge.Args = append(ge.Args, a)
		if p.accept(TokPunct, ",") {
			continue
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		return ge, nil
	}
}

func (p *parser) argList() ([]Expr, error) {
	if _, err := p.expect(TokPunct, "("); err != nil {
		return nil, err
	}
	var args []Expr
	if p.accept(TokPunct, ")") {
		return args, nil
	}
	for {
		a, err := p.expr()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
		if p.accept(TokPunct, ",") {
			continue
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		return args, nil
	}
}
