package lang

import (
	"testing"

	"github.com/jstar-lang/jstar/internal/core"
)

// TestCompilerEmitsStaticPlanHints: the compiler must derive store-plan
// hints from the statically visible query shapes — indexed all-int tables
// become open-addressing stores at the shortest get-prefix depth, tables
// with a non-int column get the generic hash index, write-only tables go
// columnar, and tables with any prefix-less get are left alone.
func TestCompilerEmitsStaticPlanHints(t *testing.T) {
	prog, err := CompileSource(`
table Edge(int from, int to, int value) orderby (Edge)
table Name(int id, String label) orderby (Name)
table Audit(int id, int code) orderby (Audit)
table Mixed(int a, int b) orderby (Mixed)
order Edge < Name < Audit < Mixed

put new Edge(0, 1, 2)
put new Name(0, "zero")
put new Mixed(1, 2)

foreach (Edge e) {
  for (o : get Edge(e.to)) {
    put new Audit(o.to, 1)
  }
  val n = get uniq? Name(e.from)
  for (m : get Mixed()) {
    put new Audit(m.a, 2)
  }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	hints := prog.PlanHints()
	want := map[string]string{
		"Edge":  "inthash:1", // all-int, every get has a 1-column prefix
		"Name":  "hash:1",    // indexed but has a String column
		"Audit": "columnar",  // put into, never queried
	}
	for table, kind := range want {
		if hints[table] != kind {
			t.Errorf("hint[%s] = %q, want %q (all hints: %v)", table, hints[table], kind, hints)
		}
	}
	if kind, ok := hints["Mixed"]; ok {
		t.Errorf("hint[Mixed] = %q, want no hint (scanned with an empty prefix)", kind)
	}
	// The hints are the lowest-priority selection layer but they are real:
	// a run built with no other configuration must use them.
	run, err := prog.Execute(core.Options{Sequential: true, Quiet: true, MaxSteps: 10000})
	if err != nil {
		t.Fatal(err)
	}
	kinds := run.Stats().StoreKinds
	for table, kind := range want {
		if kinds[table] != kind {
			t.Errorf("run chose %q for %s, want the static hint %q", kinds[table], table, kind)
		}
	}
	// ... and an explicit per-run plan still wins over them.
	prog2, err := CompileSource(`
table T(int a, int b) orderby (T)
put new T(1, 2)
foreach (T t) {
  val o = get uniq? T(t.b)
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if prog2.PlanHints()["T"] != "inthash:1" {
		t.Fatalf("T hint = %q", prog2.PlanHints()["T"])
	}
	run2, err := prog2.Execute(core.Options{
		Sequential: true, Quiet: true, MaxSteps: 1000,
		StorePlan: map[string]string{"T": "columnar"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := run2.Stats().StoreKinds["T"]; got != "columnar" {
		t.Errorf("Options.StorePlan lost to the static hint: %q", got)
	}
}
