package lang

import (
	"fmt"

	"github.com/jstar-lang/jstar/internal/causality"
	"github.com/jstar-lang/jstar/internal/tuple"
)

// This file extracts symbolic causality.RuleSpecs from parsed rules, so
// cmd/jstar-check can discharge the §4 proof obligations on real source.
// The extraction is a sound best-effort: put/query key components that are
// affine (c0 + c1*trigger.field ± ...) become linear expressions; anything
// else becomes a fresh unconstrained variable, and guards that are not
// affine comparisons are dropped — both choices only make obligations
// harder to prove, never easier.

// ExtractSpecs builds one RuleSpec per foreach rule in the file.
func ExtractSpecs(f *File) ([]causality.RuleSpec, error) {
	tables := map[string]*TableDecl{}
	for _, d := range f.Decls {
		if td, ok := d.(*TableDecl); ok {
			tables[td.Name] = td
		}
	}
	var specs []causality.RuleSpec
	n := 0
	for _, d := range f.Decls {
		rd, ok := d.(*RuleDecl)
		if !ok {
			continue
		}
		n++
		td, ok := tables[rd.Table]
		if !ok {
			return nil, errf(rd.Line, 1, "unknown table %s", rd.Table)
		}
		ex := &extractor{
			tables:  tables,
			trigVar: rd.Var,
			fresh:   0,
		}
		spec := causality.RuleSpec{
			Name:       fmt.Sprintf("foreach_%s_%d", rd.Table, n),
			Trigger:    rd.Table,
			TriggerKey: ex.schemaKey(td, rd.Var),
		}
		ex.walk(rd.Body, nil, &spec)
		specs = append(specs, spec)
	}
	return specs, nil
}

// ExtractSpecsSource parses src and extracts rule specs.
func ExtractSpecsSource(src string) ([]causality.RuleSpec, error) {
	f, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return ExtractSpecs(f)
}

type extractor struct {
	tables  map[string]*TableDecl
	trigVar string
	fresh   int
}

func (ex *extractor) freshVar(hint string) causality.Expr {
	ex.fresh++
	return causality.Var(fmt.Sprintf("$%s%d", hint, ex.fresh))
}

// schemaKey is the symbolic key of table td's own tuples bound to var v.
func (ex *extractor) schemaKey(td *TableDecl, v string) []causality.KeyExpr {
	var out []causality.KeyExpr
	for _, e := range td.OrderBy {
		if e.Kind == "lit" {
			out = append(out, causality.LitKey(e.Name))
		} else {
			out = append(out, causality.ExprKey(causality.Var(v+"."+e.Name)))
		}
	}
	return out
}

// affine converts an expression over the trigger tuple into a linear
// expression; ok is false for non-affine shapes.
func (ex *extractor) affine(e Expr) (causality.Expr, bool) {
	switch e := e.(type) {
	case *IntLit:
		return causality.Const(e.V), true
	case *FieldAccess:
		if vr, ok := e.X.(*VarRef); ok {
			// Any bound tuple variable's field is a symbolic variable;
			// the trigger variable's fields are what invariants and keys
			// typically constrain.
			return causality.Var(vr.Name + "." + e.Field), true
		}
		return causality.Expr{}, false
	case *VarRef:
		return causality.Var(e.Name), true
	case *Unary:
		if e.Op == "-" {
			if x, ok := ex.affine(e.X); ok {
				return x.Scale(-1), true
			}
		}
		return causality.Expr{}, false
	case *Binary:
		l, lok := ex.affine(e.L)
		r, rok := ex.affine(e.R)
		if !lok || !rok {
			return causality.Expr{}, false
		}
		switch e.Op {
		case "+":
			return l.Add(r), true
		case "-":
			return l.Sub(r), true
		case "*":
			// Affine only when one side is constant.
			if k, isConst := l.IsConst(); isConst && k.IsInt() {
				return r.Scale(k.Num().Int64()), true
			}
			if k, isConst := r.IsConst(); isConst && k.IsInt() {
				return l.Scale(k.Num().Int64()), true
			}
		}
		return causality.Expr{}, false
	default:
		return causality.Expr{}, false
	}
}

// guardConstraints converts a boolean condition into linear constraints
// (best effort: non-affine conjuncts are dropped).
func (ex *extractor) guardConstraints(cond Expr) []causality.Constraint {
	switch e := cond.(type) {
	case *Binary:
		switch e.Op {
		case "&&":
			return append(ex.guardConstraints(e.L), ex.guardConstraints(e.R)...)
		case "<", "<=", ">", ">=", "==":
			l, lok := ex.affine(e.L)
			r, rok := ex.affine(e.R)
			if !lok || !rok {
				return nil
			}
			switch e.Op {
			case "<":
				return []causality.Constraint{causality.LT(l, r)}
			case "<=":
				return []causality.Constraint{causality.LE(l, r)}
			case ">":
				return []causality.Constraint{causality.GT(l, r)}
			case ">=":
				return []causality.Constraint{causality.GE(l, r)}
			case "==":
				return causality.EQ(l, r)
			}
		}
	}
	return nil
}

// keyOfPut builds the symbolic key of a `new T(args)` put.
func (ex *extractor) keyOfPut(ne *NewExpr) []causality.KeyExpr {
	td, ok := ex.tables[ne.Table]
	if !ok {
		return nil
	}
	colIndex := map[string]int{}
	for i, c := range td.Cols {
		colIndex[c.Name] = i
	}
	var out []causality.KeyExpr
	for _, e := range td.OrderBy {
		if e.Kind == "lit" {
			out = append(out, causality.LitKey(e.Name))
			continue
		}
		idx, ok := colIndex[e.Name]
		if !ok || idx >= len(ne.Args) {
			out = append(out, causality.ExprKey(ex.freshVar("put")))
			continue
		}
		if a, ok := ex.affine(ne.Args[idx]); ok {
			out = append(out, causality.ExprKey(a))
		} else {
			out = append(out, causality.ExprKey(ex.freshVar("put")))
		}
	}
	return out
}

// keyOfQuery builds the symbolic key and guards of a get query. Prefix
// arguments bind the corresponding columns; lambda comparisons over a
// single queried field add guards through a q-variable.
func (ex *extractor) keyOfQuery(ge *GetExpr) ([]causality.KeyExpr, []causality.Constraint) {
	td, ok := ex.tables[ge.Table]
	if !ok {
		return nil, nil
	}
	ex.fresh++
	qv := fmt.Sprintf("q%d", ex.fresh)
	colIndex := map[string]int{}
	for i, c := range td.Cols {
		colIndex[c.Name] = i
	}
	var guards []causality.Constraint
	if ge.Lambda != nil {
		// Lambda fields are unqualified; qualify them with the q-variable.
		guards = ex.guardConstraints(qualify(ge.Lambda, colIndex, qv))
	}
	var out []causality.KeyExpr
	for _, e := range td.OrderBy {
		if e.Kind == "lit" {
			out = append(out, causality.LitKey(e.Name))
			continue
		}
		idx, ok := colIndex[e.Name]
		if ok && idx < len(ge.Args) {
			if a, aok := ex.affine(ge.Args[idx]); aok {
				out = append(out, causality.ExprKey(a))
				continue
			}
		}
		// Unbound orderby field: the q-variable (possibly constrained by
		// the lambda guards).
		out = append(out, causality.ExprKey(causality.Var(qv+"."+e.Name)))
	}
	return out, guards
}

// qualify rewrites unqualified field references in a lambda into
// qv.field references so they line up with the query key variables.
func qualify(e Expr, cols map[string]int, qv string) Expr {
	switch e := e.(type) {
	case *VarRef:
		if _, ok := cols[e.Name]; ok {
			return &FieldAccess{X: &VarRef{Name: qv}, Field: e.Name, Line: e.Line}
		}
		return e
	case *Binary:
		return &Binary{Op: e.Op, L: qualify(e.L, cols, qv), R: qualify(e.R, cols, qv), Line: e.Line}
	case *Unary:
		return &Unary{Op: e.Op, X: qualify(e.X, cols, qv), Line: e.Line}
	default:
		return e
	}
}

// walk visits statements gathering puts and queries under path guards.
func (ex *extractor) walk(stmts []Stmt, guards []causality.Constraint, spec *causality.RuleSpec) {
	for _, s := range stmts {
		switch s := s.(type) {
		case *IfStmt:
			thenGuards := append(append([]causality.Constraint{}, guards...),
				ex.guardConstraints(s.Cond)...)
			ex.walk(s.Then, thenGuards, spec)
			// Else branch: the negated guard is usually non-affine
			// (negation of a conjunction); drop it — sound.
			ex.walk(s.Else, guards, spec)
			ex.collectQueries(s.Cond, guards, spec)
		case *ValStmt:
			ex.collectQueries(s.Expr, guards, spec)
		case *PutStmt:
			if ne, ok := s.Expr.(*NewExpr); ok && ne.Table != "Statistics" {
				spec.Puts = append(spec.Puts, causality.PutSpec{
					Table: ne.Table,
					Guard: append([]causality.Constraint{}, guards...),
					Key:   ex.keyOfPut(ne),
				})
			}
			ex.collectQueries(s.Expr, guards, spec)
		case *PrintlnStmt:
			ex.collectQueries(s.Expr, guards, spec)
		case *ForStmt:
			ex.addQuery(s.Query, causality.Positive, guards, spec)
			ex.walk(s.Body, guards, spec)
		case *AccumStmt:
			ex.collectQueries(s.Expr, guards, spec)
		}
	}
}

// collectQueries finds get expressions nested in an expression.
func (ex *extractor) collectQueries(e Expr, guards []causality.Constraint, spec *causality.RuleSpec) {
	switch e := e.(type) {
	case *GetExpr:
		kind := causality.Positive
		switch e.Mode {
		case GetUniq:
			// `get uniq? T(...)` used as existence check; its result can
			// be invalidated by future puts, so it is a negative query.
			kind = causality.Negative
		case GetMin, GetCount:
			kind = causality.Aggregate
		}
		ex.addQuery(e, kind, guards, spec)
	case *Binary:
		ex.collectQueries(e.L, guards, spec)
		ex.collectQueries(e.R, guards, spec)
	case *Unary:
		ex.collectQueries(e.X, guards, spec)
	case *FieldAccess:
		ex.collectQueries(e.X, guards, spec)
	case *NewExpr:
		for _, a := range e.Args {
			ex.collectQueries(a, guards, spec)
		}
	case *CallExpr:
		for _, a := range e.Args {
			ex.collectQueries(a, guards, spec)
		}
	}
}

func (ex *extractor) addQuery(ge *GetExpr, kind causality.QueryKind,
	guards []causality.Constraint, spec *causality.RuleSpec) {
	key, qguards := ex.keyOfQuery(ge)
	spec.Queries = append(spec.Queries, causality.QuerySpec{
		Table: ge.Table,
		Kind:  kind,
		Guard: append(append([]causality.Constraint{}, guards...), qguards...),
		Key:   key,
	})
}

// SchemaKeyFor exposes schemaKey for tools that build specs from engine
// schemas rather than source (cmd/jstar-check's built-in suites).
func SchemaKeyFor(s *tuple.Schema, varName string) []causality.KeyExpr {
	return causality.KeyOfSchema(s, varName)
}
