package lang

import (
	"strings"
	"testing"

	"github.com/jstar-lang/jstar/internal/causality"
	"github.com/jstar-lang/jstar/internal/order"
)

func checkSource(t *testing.T, src string, orders ...[]string) []causality.Obligation {
	t.Helper()
	specs, err := ExtractSpecsSource(src)
	if err != nil {
		t.Fatalf("extract: %v", err)
	}
	po := order.NewPartialOrder()
	for _, o := range orders {
		if err := po.Declare(o...); err != nil {
			t.Fatal(err)
		}
	}
	return causality.NewChecker(po).Check(specs)
}

const shipSrc = `
table Ship(int frame -> int x, int y, int dx, int dy) orderby (Int, seq frame)
put new Ship(0, 10, 10, 150, 0)
foreach (Ship s) {
  if (s.x < 400) { put new Ship(s.frame+1, s.x+150, s.y, s.dx, s.dy) }
}`

func TestExtractShipProved(t *testing.T) {
	obs := checkSource(t, shipSrc)
	if len(obs) != 1 {
		t.Fatalf("obligations: %+v", obs)
	}
	if !obs[0].Proved {
		t.Errorf("ship put should be proved: %s", obs[0].Reason)
	}
}

func TestExtractTimeTravelRejected(t *testing.T) {
	src := `
	table Ship(int frame -> int x) orderby (Int, seq frame)
	foreach (Ship s) { put new Ship(s.frame - 1, s.x) }`
	obs := checkSource(t, src)
	if len(obs) != 1 || obs[0].Proved {
		t.Fatalf("frame-1 put must be rejected: %+v", obs)
	}
}

func TestExtractGuardedPut(t *testing.T) {
	// frame + dx is causal only under the guard dx >= 0.
	src := `
	table Ship(int frame -> int x, int dx) orderby (Int, seq frame)
	foreach (Ship s) {
	  if (s.dx >= 0) { put new Ship(s.frame + s.dx, s.x, s.dx) }
	}`
	obs := checkSource(t, src)
	if len(obs) != 1 || !obs[0].Proved {
		t.Fatalf("guarded put must be proved: %+v", obs)
	}
	// Without the guard it must fail.
	src2 := `
	table Ship(int frame -> int x, int dx) orderby (Int, seq frame)
	foreach (Ship s) { put new Ship(s.frame + s.dx, s.x, s.dx) }`
	obs = checkSource(t, src2)
	if obs[0].Proved {
		t.Fatal("unguarded frame+dx must fail")
	}
}

func TestExtractPvWattsStratification(t *testing.T) {
	src := `
	table PvWatts(int year, int month, int power) orderby (PvWatts)
	table SumMonth(int year, int month) orderby (SumMonth)
	foreach (PvWatts pv) { put new SumMonth(pv.year, pv.month) }`
	// With the order declaration: proved.
	obs := checkSource(t, src, []string{"Req", "PvWatts", "SumMonth"})
	if !obs[0].Proved {
		t.Fatalf("ordered PvWatts->SumMonth put must be proved: %+v", obs[0])
	}
	// Without it: the paper's "Stratification error".
	obs = checkSource(t, src)
	if obs[0].Proved || !strings.Contains(obs[0].Reason, "incomparable") {
		t.Fatalf("missing order declaration must fail: %+v", obs[0])
	}
}

const dijkstraSrc = `
table Edge(int from, int to, int value) orderby (Edge)
table Estimate(int vertex, int distance) orderby (Int, seq distance, Estimate)
table Done(int vertex -> int distance) orderby (Int, seq distance, Done)
foreach (Estimate dist) {
  if (get uniq? Done(dist.vertex, [distance < dist.distance]) == null) {
    put new Done(dist.vertex, dist.distance)
    for (edge : get Edge(dist.vertex)) {
      if (get uniq? Done(edge.to) == null) {
        put new Estimate(edge.to, dist.distance + edge.value)
      }
    }
  }
}`

func TestExtractDijkstra(t *testing.T) {
	obs := checkSource(t, dijkstraSrc,
		[]string{"Vertex", "Edge", "Int"}, []string{"Estimate", "Done"})
	byKind := map[string][]causality.Obligation{}
	for _, o := range obs {
		byKind[o.Kind+"/"+o.Target] = append(byKind[o.Kind+"/"+o.Target], o)
	}
	// put Done(dist.vertex, dist.distance): same distance, Estimate < Done.
	for _, o := range byKind["put/Done"] {
		if !o.Proved {
			t.Errorf("put Done should be proved: %s", o.Reason)
		}
	}
	// The first Done query is bounded by [distance < dist.distance]: proved.
	foundProvedDoneQuery := false
	for _, o := range byKind["query/Done"] {
		if o.Proved {
			foundProvedDoneQuery = true
		}
	}
	if !foundProvedDoneQuery {
		t.Error("lambda-bounded Done query should be proved")
	}
	// The second Done query (unbounded, on edge.to) is NOT provable —
	// matching the real situation: it is an optimisation the engine makes
	// safe via Delta-visibility, not via the static causality law.
	allProved := true
	for _, o := range byKind["query/Done"] {
		if !o.Proved {
			allProved = false
		}
	}
	if allProved {
		t.Error("unbounded Done(edge.to) query should not be provable")
	}
	// put Estimate(distance + edge.value): needs value >= 1, which the
	// extractor cannot know without an invariant — expect a warning.
	for _, o := range byKind["put/Estimate"] {
		if o.Proved {
			t.Error("Estimate put without the edge.value>=1 invariant should warn")
		}
	}
}

func TestExtractNonAffinePutFallsBack(t *testing.T) {
	src := `
	table T(int t -> int v) orderby (Int, seq t)
	foreach (T x) { put new T(x.t * x.v, 0) }`
	obs := checkSource(t, src)
	if obs[0].Proved {
		t.Fatal("non-affine put key must not be provable")
	}
}

func TestExtractConstTimesFieldIsAffine(t *testing.T) {
	src := `
	table T(int t -> int v) orderby (Int, seq t)
	foreach (T x) { put new T(2 * x.t + 1, 0) }`
	// 2t+1 >= t is not valid for negative t; without invariants it warns.
	obs := checkSource(t, src)
	if obs[0].Proved {
		t.Fatal("2t+1 >= t needs t >= -1; must warn without invariants")
	}
	// But with a guard t >= 0 it is proved.
	src2 := `
	table T(int t -> int v) orderby (Int, seq t)
	foreach (T x) {
	  if (x.t >= 0) { put new T(2 * x.t + 1, 0) }
	}`
	obs = checkSource(t, src2)
	if !obs[0].Proved {
		t.Fatalf("guarded 2t+1 put should be proved: %s", obs[0].Reason)
	}
}

func TestExtractAggregateQueries(t *testing.T) {
	src := `
	table A(int t) orderby (Int, seq t)
	table B(int t) orderby (Int, seq t)
	foreach (A a) {
	  val n = get count B(a.t - 1)
	  println(n)
	}`
	obs := checkSource(t, src)
	if len(obs) != 1 || !obs[0].Proved {
		t.Fatalf("count of strict past must be proved: %+v", obs)
	}
	// Count at the same timestamp is not a strict-past read.
	src2 := `
	table A(int t) orderby (Int, seq t)
	table B(int t) orderby (Int, seq t)
	foreach (A a) {
	  val n = get count B(a.t)
	  println(n)
	}`
	obs = checkSource(t, src2)
	if obs[0].Proved {
		t.Fatal("same-timestamp aggregate must warn")
	}
}

func TestReportOnExtractedSpecs(t *testing.T) {
	specs, err := ExtractSpecsSource(shipSrc)
	if err != nil {
		t.Fatal(err)
	}
	po := order.NewPartialOrder()
	rep := causality.Report(causality.NewChecker(po).Check(specs))
	if !strings.Contains(rep, "1/1 obligations proved") {
		t.Errorf("report:\n%s", rep)
	}
}
