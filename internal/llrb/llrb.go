// Package llrb implements a left-leaning red-black tree, the sequential
// ordered-container substrate of JStar (the analogue of Java's TreeMap /
// TreeSet used by the -sequential code generator, paper §5).
//
// The tree is generic over the element type with an explicit comparator, and
// supports the NavigableSet operations the Gamma database and Delta tree
// need: insert-if-absent, contains, min, delete-min, delete, ceiling, and
// in-order ascending iteration (optionally from a lower bound).
package llrb

const (
	red   = true
	black = false
)

type node[T any] struct {
	elem        T
	left, right *node[T]
	color       bool
}

// Tree is a left-leaning red-black BST. Not safe for concurrent use; the
// engine uses it only from the coordinator or within sequential programs.
type Tree[T any] struct {
	root *node[T]
	cmp  func(a, b T) int
	size int
}

// New returns an empty tree ordered by cmp.
func New[T any](cmp func(a, b T) int) *Tree[T] {
	return &Tree[T]{cmp: cmp}
}

// Len returns the number of elements.
func (t *Tree[T]) Len() int { return t.size }

func isRed[T any](n *node[T]) bool { return n != nil && n.color == red }

func rotateLeft[T any](h *node[T]) *node[T] {
	x := h.right
	h.right = x.left
	x.left = h
	x.color = h.color
	h.color = red
	return x
}

func rotateRight[T any](h *node[T]) *node[T] {
	x := h.left
	h.left = x.right
	x.right = h
	x.color = h.color
	h.color = red
	return x
}

func colorFlip[T any](h *node[T]) {
	h.color = !h.color
	if h.left != nil {
		h.left.color = !h.left.color
	}
	if h.right != nil {
		h.right.color = !h.right.color
	}
}

func fixUp[T any](h *node[T]) *node[T] {
	if isRed(h.right) && !isRed(h.left) {
		h = rotateLeft(h)
	}
	if isRed(h.left) && isRed(h.left.left) {
		h = rotateRight(h)
	}
	if isRed(h.left) && isRed(h.right) {
		colorFlip(h)
	}
	return h
}

// Insert adds elem if no equal element exists; it reports whether the tree
// changed. Equal elements (cmp == 0) are not replaced, matching Java's
// TreeSet.add semantics that JStar's set-oriented tables rely on.
func (t *Tree[T]) Insert(elem T) bool {
	var added bool
	t.root, added = t.insert(t.root, elem)
	t.root.color = black
	if added {
		t.size++
	}
	return added
}

func (t *Tree[T]) insert(h *node[T], elem T) (*node[T], bool) {
	if h == nil {
		return &node[T]{elem: elem, color: red}, true
	}
	var added bool
	switch c := t.cmp(elem, h.elem); {
	case c < 0:
		h.left, added = t.insert(h.left, elem)
	case c > 0:
		h.right, added = t.insert(h.right, elem)
	default:
		return h, false
	}
	return fixUp(h), added
}

// GetEqual returns the stored element equal to probe, if any.
func (t *Tree[T]) GetEqual(probe T) (T, bool) {
	n := t.root
	for n != nil {
		switch c := t.cmp(probe, n.elem); {
		case c < 0:
			n = n.left
		case c > 0:
			n = n.right
		default:
			return n.elem, true
		}
	}
	var zero T
	return zero, false
}

// Contains reports whether an element equal to probe is present.
func (t *Tree[T]) Contains(probe T) bool {
	_, ok := t.GetEqual(probe)
	return ok
}

// Min returns the smallest element.
func (t *Tree[T]) Min() (T, bool) {
	if t.root == nil {
		var zero T
		return zero, false
	}
	n := t.root
	for n.left != nil {
		n = n.left
	}
	return n.elem, true
}

// Max returns the largest element.
func (t *Tree[T]) Max() (T, bool) {
	if t.root == nil {
		var zero T
		return zero, false
	}
	n := t.root
	for n.right != nil {
		n = n.right
	}
	return n.elem, true
}

// Ceiling returns the smallest element >= probe.
func (t *Tree[T]) Ceiling(probe T) (T, bool) {
	var best *node[T]
	n := t.root
	for n != nil {
		if t.cmp(probe, n.elem) <= 0 {
			best = n
			n = n.left
		} else {
			n = n.right
		}
	}
	if best == nil {
		var zero T
		return zero, false
	}
	return best.elem, true
}

func moveRedLeft[T any](h *node[T]) *node[T] {
	colorFlip(h)
	if h.right != nil && isRed(h.right.left) {
		h.right = rotateRight(h.right)
		h = rotateLeft(h)
		colorFlip(h)
	}
	return h
}

func moveRedRight[T any](h *node[T]) *node[T] {
	colorFlip(h)
	if h.left != nil && isRed(h.left.left) {
		h = rotateRight(h)
		colorFlip(h)
	}
	return h
}

func deleteMin[T any](h *node[T]) *node[T] {
	if h.left == nil {
		return nil
	}
	if !isRed(h.left) && !isRed(h.left.left) {
		h = moveRedLeft(h)
	}
	h.left = deleteMin(h.left)
	return fixUp(h)
}

// DeleteMin removes and returns the smallest element.
func (t *Tree[T]) DeleteMin() (T, bool) {
	min, ok := t.Min()
	if !ok {
		return min, false
	}
	t.root = deleteMin(t.root)
	if t.root != nil {
		t.root.color = black
	}
	t.size--
	return min, true
}

// Delete removes the element equal to probe; it reports whether an element
// was removed.
func (t *Tree[T]) Delete(probe T) bool {
	if !t.Contains(probe) {
		return false
	}
	t.root = t.delete(t.root, probe)
	if t.root != nil {
		t.root.color = black
	}
	t.size--
	return true
}

func (t *Tree[T]) delete(h *node[T], probe T) *node[T] {
	if t.cmp(probe, h.elem) < 0 {
		if !isRed(h.left) && !isRed(h.left.left) {
			h = moveRedLeft(h)
		}
		h.left = t.delete(h.left, probe)
	} else {
		if isRed(h.left) {
			h = rotateRight(h)
		}
		if t.cmp(probe, h.elem) == 0 && h.right == nil {
			return nil
		}
		if !isRed(h.right) && !isRed(h.right.left) {
			h = moveRedRight(h)
		}
		if t.cmp(probe, h.elem) == 0 {
			// Replace with successor, delete successor from right subtree.
			succ := h.right
			for succ.left != nil {
				succ = succ.left
			}
			h.elem = succ.elem
			h.right = deleteMin(h.right)
		} else {
			h.right = t.delete(h.right, probe)
		}
	}
	return fixUp(h)
}

// Ascend calls fn on every element in order until fn returns false.
func (t *Tree[T]) Ascend(fn func(T) bool) {
	ascend(t.root, fn)
}

func ascend[T any](n *node[T], fn func(T) bool) bool {
	if n == nil {
		return true
	}
	if !ascend(n.left, fn) {
		return false
	}
	if !fn(n.elem) {
		return false
	}
	return ascend(n.right, fn)
}

// AscendFrom calls fn on every element >= lo in order until fn returns false.
func (t *Tree[T]) AscendFrom(lo T, fn func(T) bool) {
	ascendFrom(t.root, t.cmp, lo, fn)
}

func ascendFrom[T any](n *node[T], cmp func(a, b T) int, lo T, fn func(T) bool) bool {
	if n == nil {
		return true
	}
	c := cmp(lo, n.elem)
	if c < 0 {
		if !ascendFrom(n.left, cmp, lo, fn) {
			return false
		}
	}
	if c <= 0 {
		if !fn(n.elem) {
			return false
		}
	}
	return ascendFrom(n.right, cmp, lo, fn)
}

// Clear removes all elements.
func (t *Tree[T]) Clear() {
	t.root = nil
	t.size = 0
}
