package llrb

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func intTree() *Tree[int] {
	return New(func(a, b int) int { return a - b })
}

func TestInsertAndContains(t *testing.T) {
	tr := intTree()
	for _, v := range []int{5, 3, 8, 1, 4, 7, 9} {
		if !tr.Insert(v) {
			t.Errorf("Insert(%d) = false on fresh value", v)
		}
	}
	if tr.Len() != 7 {
		t.Errorf("Len = %d", tr.Len())
	}
	if tr.Insert(5) {
		t.Error("duplicate insert must return false (set semantics)")
	}
	if tr.Len() != 7 {
		t.Error("duplicate insert must not grow the tree")
	}
	for _, v := range []int{1, 3, 4, 5, 7, 8, 9} {
		if !tr.Contains(v) {
			t.Errorf("Contains(%d) = false", v)
		}
	}
	if tr.Contains(6) {
		t.Error("Contains(6) = true")
	}
}

func TestMinMaxEmpty(t *testing.T) {
	tr := intTree()
	if _, ok := tr.Min(); ok {
		t.Error("Min on empty")
	}
	if _, ok := tr.Max(); ok {
		t.Error("Max on empty")
	}
	if _, ok := tr.DeleteMin(); ok {
		t.Error("DeleteMin on empty")
	}
	if _, ok := tr.Ceiling(1); ok {
		t.Error("Ceiling on empty")
	}
}

func TestMinMaxCeiling(t *testing.T) {
	tr := intTree()
	for _, v := range []int{50, 20, 80, 10, 30} {
		tr.Insert(v)
	}
	if m, _ := tr.Min(); m != 10 {
		t.Errorf("Min = %d", m)
	}
	if m, _ := tr.Max(); m != 80 {
		t.Errorf("Max = %d", m)
	}
	if c, _ := tr.Ceiling(25); c != 30 {
		t.Errorf("Ceiling(25) = %d", c)
	}
	if c, _ := tr.Ceiling(30); c != 30 {
		t.Errorf("Ceiling(30) = %d", c)
	}
	if _, ok := tr.Ceiling(81); ok {
		t.Error("Ceiling above max should be absent")
	}
}

func TestDeleteMinDrains(t *testing.T) {
	tr := intTree()
	perm := rand.New(rand.NewSource(1)).Perm(500)
	for _, v := range perm {
		tr.Insert(v)
	}
	for i := 0; i < 500; i++ {
		m, ok := tr.DeleteMin()
		if !ok || m != i {
			t.Fatalf("DeleteMin #%d = %d, %v", i, m, ok)
		}
	}
	if tr.Len() != 0 {
		t.Error("tree should be empty")
	}
}

func TestDelete(t *testing.T) {
	tr := intTree()
	for i := 0; i < 100; i++ {
		tr.Insert(i)
	}
	if tr.Delete(1000) {
		t.Error("Delete of absent element must return false")
	}
	for i := 0; i < 100; i += 2 {
		if !tr.Delete(i) {
			t.Errorf("Delete(%d) failed", i)
		}
	}
	if tr.Len() != 50 {
		t.Errorf("Len = %d", tr.Len())
	}
	for i := 0; i < 100; i++ {
		want := i%2 == 1
		if tr.Contains(i) != want {
			t.Errorf("Contains(%d) = %v, want %v", i, !want, want)
		}
	}
}

func TestAscendOrder(t *testing.T) {
	tr := intTree()
	perm := rand.New(rand.NewSource(2)).Perm(1000)
	for _, v := range perm {
		tr.Insert(v)
	}
	var got []int
	tr.Ascend(func(v int) bool { got = append(got, v); return true })
	if !sort.IntsAreSorted(got) || len(got) != 1000 {
		t.Error("Ascend must visit all elements in order")
	}
}

func TestAscendEarlyStop(t *testing.T) {
	tr := intTree()
	for i := 0; i < 10; i++ {
		tr.Insert(i)
	}
	count := 0
	tr.Ascend(func(v int) bool { count++; return count < 3 })
	if count != 3 {
		t.Errorf("early stop visited %d", count)
	}
}

func TestAscendFrom(t *testing.T) {
	tr := intTree()
	for i := 0; i < 100; i += 10 {
		tr.Insert(i)
	}
	var got []int
	tr.AscendFrom(35, func(v int) bool { got = append(got, v); return true })
	want := []int{40, 50, 60, 70, 80, 90}
	if len(got) != len(want) {
		t.Fatalf("AscendFrom(35) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AscendFrom(35) = %v, want %v", got, want)
		}
	}
	// Inclusive lower bound.
	got = got[:0]
	tr.AscendFrom(40, func(v int) bool { got = append(got, v); return true })
	if len(got) != 6 || got[0] != 40 {
		t.Errorf("AscendFrom(40) = %v", got)
	}
}

func TestGetEqual(t *testing.T) {
	type kv struct{ k, v int }
	tr := New(func(a, b kv) int { return a.k - b.k })
	tr.Insert(kv{1, 100})
	got, ok := tr.GetEqual(kv{1, 0})
	if !ok || got.v != 100 {
		t.Error("GetEqual must return the stored element")
	}
	if _, ok := tr.GetEqual(kv{2, 0}); ok {
		t.Error("GetEqual on absent key")
	}
}

func TestClear(t *testing.T) {
	tr := intTree()
	for i := 0; i < 10; i++ {
		tr.Insert(i)
	}
	tr.Clear()
	if tr.Len() != 0 || tr.Contains(5) {
		t.Error("Clear")
	}
}

// TestRandomOpsAgainstMap cross-checks the tree against a reference map
// under a random operation mix.
func TestRandomOpsAgainstMap(t *testing.T) {
	tr := intTree()
	ref := make(map[int]bool)
	r := rand.New(rand.NewSource(42))
	for op := 0; op < 20000; op++ {
		v := r.Intn(300)
		switch r.Intn(3) {
		case 0:
			if tr.Insert(v) == ref[v] {
				t.Fatalf("op %d: Insert(%d) disagreed with reference", op, v)
			}
			ref[v] = true
		case 1:
			if tr.Delete(v) != ref[v] {
				t.Fatalf("op %d: Delete(%d) disagreed with reference", op, v)
			}
			delete(ref, v)
		default:
			if tr.Contains(v) != ref[v] {
				t.Fatalf("op %d: Contains(%d) disagreed with reference", op, v)
			}
		}
		if tr.Len() != len(ref) {
			t.Fatalf("op %d: Len %d != %d", op, tr.Len(), len(ref))
		}
	}
	// Final order check.
	var got []int
	tr.Ascend(func(v int) bool { got = append(got, v); return true })
	if !sort.IntsAreSorted(got) {
		t.Error("final traversal not sorted")
	}
}

// TestInsertSortedProperty: inserting any slice then ascending yields the
// sorted unique values (property-based).
func TestInsertSortedProperty(t *testing.T) {
	f := func(xs []int16) bool {
		tr := intTree()
		uniq := make(map[int]bool)
		for _, x := range xs {
			tr.Insert(int(x))
			uniq[int(x)] = true
		}
		var got []int
		tr.Ascend(func(v int) bool { got = append(got, v); return true })
		if len(got) != len(uniq) {
			return false
		}
		return sort.IntsAreSorted(got)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkLLRBInsert(b *testing.B) {
	tr := intTree()
	for i := 0; i < b.N; i++ {
		tr.Insert(i * 2654435761 % (1 << 30))
	}
}

func BenchmarkLLRBDeleteMin(b *testing.B) {
	tr := intTree()
	for i := 0; i < b.N; i++ {
		tr.Insert(i * 2654435761 % (1 << 30))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.DeleteMin()
	}
}
