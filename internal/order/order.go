// Package order implements JStar's causality ordering machinery: the partial
// order over literal names declared with `order A < B < C`, and the causal
// keys extracted from tuples via their table's orderby lists.
//
// The Delta tree is a multi-level priority queue sorted lexicographically by
// these keys (paper §5): level i of the tree is ordered by the ith entries of
// the orderby lists. Literal entries are ordered by the declared partial
// order (linearised to total ranks), `seq f` entries by the field value, and
// `par f` entries are unordered — tuples differing only in a par field are in
// the same causal equivalence class and may execute in parallel.
package order

import (
	"fmt"
	"sort"
	"sync"

	"github.com/jstar-lang/jstar/internal/tuple"
)

// PartialOrder records `order A < B` declarations over literal names and
// assigns each name a total rank consistent with the partial order
// (a deterministic topological linearisation).
//
// All methods are safe for concurrent use: Rank memoises lazily (first call
// after a mutation recomputes the linearisation), and it is reached
// concurrently from the Delta tree — concurrent Tree.Put and the sharded
// PutPart bulk load both resolve lit ranks mid-descent — so the memo state
// is guarded by an RWMutex with the settled read path taking only RLock.
type PartialOrder struct {
	mu    sync.RWMutex
	names map[string]int  // name -> node index
	list  []string        // node index -> name
	less  map[[2]int]bool // transitive closure: less[{a,b}] => a < b
	edges map[int][]int   // declared direct edges a -> b meaning a < b
	ranks map[string]int  // linearised total rank
	dirty bool            // ranks need recompute
}

// NewPartialOrder returns an empty order registry.
func NewPartialOrder() *PartialOrder {
	return &PartialOrder{
		names: make(map[string]int),
		less:  make(map[[2]int]bool),
		edges: make(map[int][]int),
		ranks: make(map[string]int),
	}
}

// Declare adds a chain `order a < b < c ...`. It returns an error if the
// declaration would create a cycle (which would make stratification
// impossible).
func (p *PartialOrder) Declare(chain ...string) error {
	if len(chain) < 2 {
		return fmt.Errorf("jstar: order declaration needs at least two names")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := 0; i+1 < len(chain); i++ {
		if err := p.addEdge(chain[i], chain[i+1]); err != nil {
			return err
		}
	}
	p.dirty = true
	return nil
}

// Touch registers a literal name without ordering constraints so it
// participates in rank assignment (tables whose orderby literal is never
// mentioned in an order declaration).
func (p *PartialOrder) Touch(name string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.node(name)
	p.dirty = true
}

func (p *PartialOrder) node(name string) int {
	if i, ok := p.names[name]; ok {
		return i
	}
	i := len(p.list)
	p.names[name] = i
	p.list = append(p.list, name)
	return i
}

func (p *PartialOrder) addEdge(a, b string) error {
	ai, bi := p.node(a), p.node(b)
	if ai == bi {
		return fmt.Errorf("jstar: order %s < %s is reflexive", a, b)
	}
	if p.less[[2]int{bi, ai}] {
		return fmt.Errorf("jstar: order %s < %s contradicts existing order %s < %s", a, b, b, a)
	}
	if p.less[[2]int{ai, bi}] {
		return nil // already known
	}
	p.edges[ai] = append(p.edges[ai], bi)
	// Update transitive closure: everything <= a is now < everything >= b.
	var below, above []int
	below = append(below, ai)
	above = append(above, bi)
	for x := range p.list {
		if p.less[[2]int{x, ai}] {
			below = append(below, x)
		}
		if p.less[[2]int{bi, x}] {
			above = append(above, x)
		}
	}
	for _, x := range below {
		for _, y := range above {
			if x == y {
				return fmt.Errorf("jstar: order %s < %s creates a cycle", a, b)
			}
			p.less[[2]int{x, y}] = true
		}
	}
	return nil
}

// Less reports whether a < b in the declared partial order.
func (p *PartialOrder) Less(a, b string) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	ai, aok := p.names[a]
	bi, bok := p.names[b]
	if !aok || !bok {
		return false
	}
	return p.less[[2]int{ai, bi}]
}

// Comparable reports whether a and b are ordered either way.
func (p *PartialOrder) Comparable(a, b string) bool {
	return a == b || p.Less(a, b) || p.Less(b, a)
}

// Rank returns the linearised total rank of a literal name. Unknown names
// are registered on the fly (rank assigned at next recompute). Ranks are a
// deterministic topological sort: ties broken alphabetically, so program
// output is independent of declaration order.
func (p *PartialOrder) Rank(name string) int {
	p.mu.RLock()
	if !p.dirty {
		if r, ok := p.ranks[name]; ok {
			p.mu.RUnlock()
			return r
		}
	}
	p.mu.RUnlock()
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.dirty {
		p.recompute()
	}
	r, ok := p.ranks[name]
	if !ok {
		p.node(name)
		p.recompute()
		r = p.ranks[name]
	}
	return r
}

func (p *PartialOrder) recompute() {
	// Kahn's algorithm with an alphabetical tie-break for determinism.
	indeg := make([]int, len(p.list))
	for _, outs := range p.edges {
		for _, b := range outs {
			indeg[b]++
		}
	}
	avail := make([]int, 0, len(p.list))
	for i, d := range indeg {
		if d == 0 {
			avail = append(avail, i)
		}
	}
	sortByName := func(xs []int) {
		sort.Slice(xs, func(i, j int) bool { return p.list[xs[i]] < p.list[xs[j]] })
	}
	sortByName(avail)
	rank := 0
	p.ranks = make(map[string]int, len(p.list))
	for len(avail) > 0 {
		n := avail[0]
		avail = avail[1:]
		p.ranks[p.list[n]] = rank
		rank++
		added := false
		for _, b := range p.edges[n] {
			indeg[b]--
			if indeg[b] == 0 {
				avail = append(avail, b)
				added = true
			}
		}
		if added {
			sortByName(avail)
		}
	}
	p.dirty = false
}

// Names returns all registered literal names, sorted by rank.
func (p *PartialOrder) Names() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.dirty {
		p.recompute()
	}
	out := append([]string(nil), p.list...)
	sort.Slice(out, func(i, j int) bool { return p.ranks[out[i]] < p.ranks[out[j]] })
	return out
}

// Component is one resolved component of a tuple's causal key.
type Component struct {
	Kind tuple.OrderKind
	Rank int         // literal rank when Kind == OrderLit
	Lit  string      // literal name (for display)
	Val  tuple.Value // field value when Kind == OrderSeq or OrderPar
}

// Key is a tuple's causal key: its orderby list resolved against the tuple's
// field values and the literal ranks. Keys from different tables are
// comparable component-by-component; this is what makes the Delta tree a
// single queue over many tables.
type Key struct {
	Components []Component
}

// KeyOf resolves the causal key of t under partial order p.
func KeyOf(p *PartialOrder, t *tuple.Tuple) Key {
	s := t.Schema()
	comps := make([]Component, len(s.OrderBy))
	for i, e := range s.OrderBy {
		switch e.Kind {
		case tuple.OrderLit:
			comps[i] = Component{Kind: tuple.OrderLit, Rank: p.Rank(e.Lit), Lit: e.Lit}
		default:
			comps[i] = Component{Kind: e.Kind, Val: t.Field(s.OrderByColumn(i))}
		}
	}
	return Key{Components: comps}
}

// Compare orders two causal keys lexicographically.
//
//   - Lit components compare by rank.
//   - Seq components compare by value.
//   - A Par component ends comparability: keys agreeing on every earlier
//     component are in the same equivalence class (result 0) regardless of
//     the par field values.
//   - A shorter key that is a prefix of a longer one compares first: tuples
//     whose orderby list ends at an interior Delta-tree node are extracted
//     before any tuple in the subtrees below that node.
//   - Mixed component kinds at the same level (ill-typed programs) order
//     Lit < Seq deterministically.
func Compare(a, b Key) int {
	n := len(a.Components)
	if len(b.Components) < n {
		n = len(b.Components)
	}
	for i := 0; i < n; i++ {
		ca, cb := a.Components[i], b.Components[i]
		if ca.Kind == tuple.OrderPar || cb.Kind == tuple.OrderPar {
			return 0
		}
		if ca.Kind != cb.Kind {
			if ca.Kind == tuple.OrderLit {
				return -1
			}
			return 1
		}
		if ca.Kind == tuple.OrderLit {
			switch {
			case ca.Rank < cb.Rank:
				return -1
			case ca.Rank > cb.Rank:
				return 1
			}
			continue
		}
		if c := tuple.Compare(ca.Val, cb.Val); c != 0 {
			return c
		}
	}
	switch {
	case len(a.Components) < len(b.Components):
		return -1
	case len(a.Components) > len(b.Components):
		return 1
	}
	return 0
}

// String renders the key for debugging and DOT labels.
func (k Key) String() string {
	out := "["
	for i, c := range k.Components {
		if i > 0 {
			out += ", "
		}
		switch c.Kind {
		case tuple.OrderLit:
			out += c.Lit
		case tuple.OrderSeq:
			out += c.Val.String()
		case tuple.OrderPar:
			out += "par " + c.Val.String()
		}
	}
	return out + "]"
}
