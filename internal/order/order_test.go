package order

import (
	"testing"

	"github.com/jstar-lang/jstar/internal/tuple"
)

func TestDeclareAndLess(t *testing.T) {
	p := NewPartialOrder()
	// order Req < PvWatts < SumMonth (paper Fig 4)
	if err := p.Declare("Req", "PvWatts", "SumMonth"); err != nil {
		t.Fatalf("Declare: %v", err)
	}
	if !p.Less("Req", "PvWatts") || !p.Less("PvWatts", "SumMonth") {
		t.Error("direct edges missing")
	}
	if !p.Less("Req", "SumMonth") {
		t.Error("transitive closure missing")
	}
	if p.Less("SumMonth", "Req") {
		t.Error("order is not symmetric")
	}
	if !p.Comparable("Req", "SumMonth") || !p.Comparable("Req", "Req") {
		t.Error("comparable")
	}
}

func TestDeclareCycleRejected(t *testing.T) {
	p := NewPartialOrder()
	if err := p.Declare("A", "B"); err != nil {
		t.Fatal(err)
	}
	if err := p.Declare("B", "C"); err != nil {
		t.Fatal(err)
	}
	if err := p.Declare("C", "A"); err == nil {
		t.Error("cycle must be rejected (stratification would fail)")
	}
	if err := p.Declare("A", "A"); err == nil {
		t.Error("reflexive order must be rejected")
	}
}

func TestDeclareTooShort(t *testing.T) {
	p := NewPartialOrder()
	if err := p.Declare("A"); err == nil {
		t.Error("single-name order declaration must fail")
	}
}

func TestRedundantDeclareOK(t *testing.T) {
	p := NewPartialOrder()
	if err := p.Declare("A", "B"); err != nil {
		t.Fatal(err)
	}
	if err := p.Declare("A", "B"); err != nil {
		t.Errorf("redundant declaration should be accepted: %v", err)
	}
}

func TestRanksRespectOrder(t *testing.T) {
	p := NewPartialOrder()
	if err := p.Declare("Vertex", "Edge", "Int"); err != nil {
		t.Fatal(err)
	}
	if err := p.Declare("Estimate", "Done"); err != nil {
		t.Fatal(err)
	}
	if !(p.Rank("Vertex") < p.Rank("Edge") && p.Rank("Edge") < p.Rank("Int")) {
		t.Error("ranks must respect declared order")
	}
	if !(p.Rank("Estimate") < p.Rank("Done")) {
		t.Error("ranks must respect second chain")
	}
}

func TestRanksDeterministic(t *testing.T) {
	build := func(declOrder [][]string) []int {
		p := NewPartialOrder()
		for _, d := range declOrder {
			if err := p.Declare(d...); err != nil {
				t.Fatal(err)
			}
		}
		return []int{p.Rank("A"), p.Rank("B"), p.Rank("X"), p.Rank("Y")}
	}
	r1 := build([][]string{{"A", "B"}, {"X", "Y"}})
	r2 := build([][]string{{"X", "Y"}, {"A", "B"}})
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("ranks depend on declaration order: %v vs %v", r1, r2)
		}
	}
}

func TestUnknownNameGetsRank(t *testing.T) {
	p := NewPartialOrder()
	r1 := p.Rank("Solo")
	r2 := p.Rank("Solo")
	if r1 != r2 {
		t.Error("rank must be stable")
	}
}

func TestNamesSortedByRank(t *testing.T) {
	p := NewPartialOrder()
	if err := p.Declare("C", "B", "A"); err != nil {
		t.Fatal(err)
	}
	names := p.Names()
	if len(names) != 3 || names[0] != "C" || names[1] != "B" || names[2] != "A" {
		t.Errorf("Names() = %v", names)
	}
}

func estimateSchema(t *testing.T) *tuple.Schema {
	t.Helper()
	// table Estimate(int vertex, int distance) orderby (Int, seq distance, Estimate)
	return tuple.MustSchema("Estimate",
		[]tuple.Column{{Name: "vertex", Kind: tuple.KindInt}, {Name: "distance", Kind: tuple.KindInt}},
		[]tuple.OrderEntry{tuple.Lit("Int"), tuple.Seq("distance"), tuple.Lit("Estimate")})
}

func TestKeyOfAndCompare(t *testing.T) {
	p := NewPartialOrder()
	if err := p.Declare("Estimate", "Done"); err != nil {
		t.Fatal(err)
	}
	es := estimateSchema(t)
	near := tuple.New(es, tuple.Int(1), tuple.Int(5))
	far := tuple.New(es, tuple.Int(2), tuple.Int(9))
	kNear, kFar := KeyOf(p, near), KeyOf(p, far)
	if Compare(kNear, kFar) >= 0 {
		t.Error("smaller distance must order first (Delta tree as Dijkstra PQ)")
	}
	if Compare(kNear, kNear) != 0 {
		t.Error("key compares equal to itself")
	}
	if Compare(kFar, kNear) <= 0 {
		t.Error("antisymmetry")
	}
}

func TestKeyCompareAcrossTables(t *testing.T) {
	p := NewPartialOrder()
	if err := p.Declare("Estimate", "Done"); err != nil {
		t.Fatal(err)
	}
	es := estimateSchema(t)
	ds := tuple.MustSchema("Done",
		[]tuple.Column{{Name: "vertex", Kind: tuple.KindInt, Key: true}, {Name: "distance", Kind: tuple.KindInt}},
		[]tuple.OrderEntry{tuple.Lit("Int"), tuple.Seq("distance"), tuple.Lit("Done")})
	est := tuple.New(es, tuple.Int(1), tuple.Int(5))
	done := tuple.New(ds, tuple.Int(1), tuple.Int(5))
	// Same Int level, same distance; Estimate < Done at level 3.
	if Compare(KeyOf(p, est), KeyOf(p, done)) >= 0 {
		t.Error("Estimate tuples must precede Done tuples at equal distance")
	}
	doneNearer := tuple.New(ds, tuple.Int(0), tuple.Int(3))
	if Compare(KeyOf(p, doneNearer), KeyOf(p, est)) >= 0 {
		t.Error("smaller distance dominates the literal level")
	}
}

func TestKeyParEndsComparability(t *testing.T) {
	p := NewPartialOrder()
	s := tuple.MustSchema("T",
		[]tuple.Column{{Name: "a", Kind: tuple.KindInt}, {Name: "b", Kind: tuple.KindInt}},
		[]tuple.OrderEntry{tuple.Seq("a"), tuple.Par("b")})
	t1 := tuple.New(s, tuple.Int(1), tuple.Int(10))
	t2 := tuple.New(s, tuple.Int(1), tuple.Int(99))
	t3 := tuple.New(s, tuple.Int(2), tuple.Int(0))
	if Compare(KeyOf(p, t1), KeyOf(p, t2)) != 0 {
		t.Error("tuples differing only in par field are one equivalence class")
	}
	if Compare(KeyOf(p, t1), KeyOf(p, t3)) >= 0 {
		t.Error("seq level still orders before the par level")
	}
}

func TestKeyPrefixEquivalence(t *testing.T) {
	p := NewPartialOrder()
	// Ship orderby (Int, seq frame): all Ships in one frame are equivalent.
	s := tuple.MustSchema("Ship",
		[]tuple.Column{{Name: "frame", Kind: tuple.KindInt}, {Name: "x", Kind: tuple.KindInt}},
		[]tuple.OrderEntry{tuple.Lit("Int"), tuple.Seq("frame")})
	a := tuple.New(s, tuple.Int(18), tuple.Int(10))
	b := tuple.New(s, tuple.Int(18), tuple.Int(700))
	if Compare(KeyOf(p, a), KeyOf(p, b)) != 0 {
		t.Error("multiple Ships within one frame are equivalent (paper §5)")
	}
}

func TestKeyString(t *testing.T) {
	p := NewPartialOrder()
	es := estimateSchema(t)
	k := KeyOf(p, tuple.New(es, tuple.Int(1), tuple.Int(5)))
	if k.String() != "[Int, 5, Estimate]" {
		t.Errorf("Key.String() = %q", k.String())
	}
}
