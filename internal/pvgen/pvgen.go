// Package pvgen generates synthetic PVWatts-style datasets.
//
// The paper's PvWatts case study reads a 192 MB CSV produced by NREL's
// PVWatts tool: 8,760,000 records of hourly solar output (year, month, day,
// hour, power). That file is not redistributable, so we synthesise records
// with the same schema and the two input orderings the paper benchmarks
// (§6.3, Fig 10):
//
//   - Unsorted (the default export): ordered by year then month, so long
//     runs of records hit the same per-month consumer — the skewed case.
//   - Sorted: ordered by day-of-month then hour, so months round-robin and
//     consumers load-balance — the paper's best case.
//
// Power values follow a deterministic diurnal curve with pseudo-random
// cloud noise, so every run (and the baseline vs JStar comparison) sees
// identical data.
package pvgen

import (
	"bytes"
	"strconv"

	"github.com/jstar-lang/jstar/internal/rng"
)

// Record is one hourly observation.
type Record struct {
	Year, Month, Day int32
	Hour             int32 // 0..23
	Power            int32 // watts
}

// daysIn returns the day count of a month (fixed 365-day year: the paper's
// dataset is hourly over whole years; leap handling is irrelevant noise).
func daysIn(month int32) int32 {
	switch month {
	case 2:
		return 28
	case 4, 6, 9, 11:
		return 30
	default:
		return 31
	}
}

// power computes the synthetic watt output for one hour: a clamped diurnal
// sine scaled by season, with multiplicative cloud noise.
func power(r *rng.SplitMix64, month, day, hour int32) int32 {
	// Daylight window 6..18 with noon peak.
	if hour < 6 || hour > 18 {
		return 0
	}
	x := int32(hour - 6) // 0..12
	// Triangle approximation of the sun curve, peak 1000 at x=6 (noon).
	base := 1000 - (x-6)*(x-6)*25
	if base < 0 {
		base = 0
	}
	// Seasonal factor: peak in June/July (northern-hemisphere shape).
	seasonal := 60 + 40*seasonCurve(month) // percent
	p := base * seasonal / 100
	// Cloud noise: 50%..100% of clear-sky.
	noise := 50 + int32(r.Intn(51))
	return p * noise / 100
}

// seasonCurve maps month 1..12 to 0..100 with a mid-year hump.
func seasonCurve(month int32) int32 {
	d := month - 7
	if d < 0 {
		d = -d
	}
	return (6 - d) * 100 / 6 // 1 -> 0, 7 -> 100
}

// Generate produces years' worth of hourly records starting at startYear,
// in the given ordering. Deterministic for a fixed seed.
func Generate(startYear, years int, sorted bool, seed uint64) []Record {
	r := rng.New(seed)
	var out []Record
	if sorted {
		// Sorted by (day, hour) then (year, month): months round-robin.
		for day := int32(1); day <= 31; day++ {
			for hour := int32(0); hour < 24; hour++ {
				for y := 0; y < years; y++ {
					for m := int32(1); m <= 12; m++ {
						if day > daysIn(m) {
							continue
						}
						out = append(out, Record{
							Year: int32(startYear + y), Month: m, Day: day, Hour: hour,
							Power: power(r, m, day, hour),
						})
					}
				}
			}
		}
		return out
	}
	for y := 0; y < years; y++ {
		for m := int32(1); m <= 12; m++ {
			for day := int32(1); day <= daysIn(m); day++ {
				for hour := int32(0); hour < 24; hour++ {
					out = append(out, Record{
						Year: int32(startYear + y), Month: m, Day: day, Hour: hour,
						Power: power(r, m, day, hour),
					})
				}
			}
		}
	}
	return out
}

// RecordsPerYear is the number of hourly records in one synthetic year.
const RecordsPerYear = 365 * 24

// CSV renders records in the PVWatts export format:
// year,month,day,hour,power — one line per record.
func CSV(recs []Record) []byte {
	var b bytes.Buffer
	b.Grow(len(recs) * 24)
	var tmp []byte
	for _, r := range recs {
		tmp = strconv.AppendInt(tmp[:0], int64(r.Year), 10)
		tmp = append(tmp, ',')
		tmp = strconv.AppendInt(tmp, int64(r.Month), 10)
		tmp = append(tmp, ',')
		tmp = strconv.AppendInt(tmp, int64(r.Day), 10)
		tmp = append(tmp, ',')
		tmp = strconv.AppendInt(tmp, int64(r.Hour), 10)
		tmp = append(tmp, ',')
		tmp = strconv.AppendInt(tmp, int64(r.Power), 10)
		tmp = append(tmp, '\n')
		b.Write(tmp)
	}
	return b.Bytes()
}

// MonthlyMeans computes the reference answer directly: mean power per
// (year, month). Baselines and tests compare against this.
func MonthlyMeans(recs []Record) map[[2]int32]float64 {
	sums := make(map[[2]int32]int64)
	counts := make(map[[2]int32]int64)
	for _, r := range recs {
		k := [2]int32{r.Year, r.Month}
		sums[k] += int64(r.Power)
		counts[k]++
	}
	out := make(map[[2]int32]float64, len(sums))
	for k, s := range sums {
		out[k] = float64(s) / float64(counts[k])
	}
	return out
}
