package pvgen

import (
	"testing"

	"github.com/jstar-lang/jstar/internal/fastcsv"
)

func TestGenerateCountAndDeterminism(t *testing.T) {
	recs := Generate(2000, 1, false, 1)
	if len(recs) != RecordsPerYear {
		t.Fatalf("records = %d, want %d", len(recs), RecordsPerYear)
	}
	again := Generate(2000, 1, false, 1)
	for i := range recs {
		if recs[i] != again[i] {
			t.Fatal("generation must be deterministic")
		}
	}
}

func TestGenerateFieldRanges(t *testing.T) {
	for _, r := range Generate(2000, 1, false, 2) {
		if r.Month < 1 || r.Month > 12 || r.Day < 1 || r.Day > 31 ||
			r.Hour < 0 || r.Hour > 23 || r.Power < 0 {
			t.Fatalf("bad record %+v", r)
		}
		if (r.Hour < 6 || r.Hour > 18) && r.Power != 0 {
			t.Fatalf("night power: %+v", r)
		}
	}
}

func TestSortedOrderingRoundRobins(t *testing.T) {
	// The sorted input must not have long same-month runs (that is the
	// whole point: consumers round-robin, Fig 10's best case).
	recs := Generate(2000, 1, true, 3)
	if len(recs) != RecordsPerYear {
		t.Fatalf("sorted records = %d", len(recs))
	}
	maxRun, run := 0, 0
	for i := 1; i < len(recs); i++ {
		if recs[i].Month == recs[i-1].Month {
			run++
			if run > maxRun {
				maxRun = run
			}
		} else {
			run = 0
		}
	}
	if maxRun > 2 {
		t.Errorf("sorted input has a same-month run of %d", maxRun)
	}
	// The unsorted input has very long runs (a month of hours).
	unsorted := Generate(2000, 1, false, 3)
	maxRun, run = 0, 0
	for i := 1; i < len(unsorted); i++ {
		if unsorted[i].Month == unsorted[i-1].Month {
			run++
			if run > maxRun {
				maxRun = run
			}
		} else {
			run = 0
		}
	}
	if maxRun < 24*28-1 {
		t.Errorf("unsorted input same-month run only %d", maxRun)
	}
}

func TestSortedAndUnsortedSameMultiset(t *testing.T) {
	// Same (year,month) means regardless of ordering (values differ per
	// record because the noise stream is consumed in a different order,
	// but counts per month must match).
	a := Generate(2000, 1, false, 4)
	b := Generate(2000, 1, true, 4)
	countA := map[[2]int32]int{}
	countB := map[[2]int32]int{}
	for _, r := range a {
		countA[[2]int32{r.Year, r.Month}]++
	}
	for _, r := range b {
		countB[[2]int32{r.Year, r.Month}]++
	}
	if len(countA) != 12 || len(countB) != 12 {
		t.Fatalf("months: %d vs %d", len(countA), len(countB))
	}
	for k, v := range countA {
		if countB[k] != v {
			t.Errorf("month %v: %d vs %d records", k, v, countB[k])
		}
	}
}

func TestSeasonalShape(t *testing.T) {
	means := MonthlyMeans(Generate(2000, 1, false, 5))
	june := means[[2]int32{2000, 6}]
	dec := means[[2]int32{2000, 12}]
	if june <= dec {
		t.Errorf("june mean %v must exceed december %v (seasonal curve)", june, dec)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	recs := Generate(2000, 1, false, 6)[:1000]
	buf := CSV(recs)
	i := 0
	err := fastcsv.ScanLines(buf, func(line []byte) error {
		fields := fastcsv.SplitFields(line, nil)
		if len(fields) != 5 {
			t.Fatalf("line %d has %d fields", i, len(fields))
		}
		y, _ := fastcsv.ParseInt(fields[0])
		m, _ := fastcsv.ParseInt(fields[1])
		p, _ := fastcsv.ParseInt(fields[4])
		if int32(y) != recs[i].Year || int32(m) != recs[i].Month || int32(p) != recs[i].Power {
			t.Fatalf("line %d mismatch: %s vs %+v", i, line, recs[i])
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != 1000 {
		t.Fatalf("scanned %d lines", i)
	}
}

func TestMonthlyMeansReference(t *testing.T) {
	recs := []Record{
		{Year: 2000, Month: 1, Power: 10},
		{Year: 2000, Month: 1, Power: 20},
		{Year: 2000, Month: 2, Power: 50},
	}
	m := MonthlyMeans(recs)
	if m[[2]int32{2000, 1}] != 15 || m[[2]int32{2000, 2}] != 50 {
		t.Errorf("means = %v", m)
	}
}
