// Package reduce provides JStar's reduce and scan operators with
// user-defined combining functions (paper §1.3). Reducers replace the
// common uses of sequential loops: because JStar bans mutable variables,
// a loop that accumulates must do so through a reducer object, whose
// associativity lets the runtime split the loop across tasks and combine
// partial results in a tree.
package reduce

import "math"

// Reducer accumulates values of type T into a result R and can merge with
// another reducer of the same kind (the tree-combine step).
type Reducer[T, R any] interface {
	Add(v T)
	Merge(other Reducer[T, R])
	Result() R
	// Fresh returns a new empty reducer of the same kind, used to create
	// per-task partials.
	Fresh() Reducer[T, R]
}

// Statistics is the standard JStar reducer used by the PvWatts program:
// count, sum, mean, min and max of a stream of float64 observations.
type Statistics struct {
	N    int64
	Sum  float64
	MinV float64
	MaxV float64
}

// NewStatistics returns an empty Statistics reducer.
func NewStatistics() *Statistics {
	return &Statistics{MinV: math.Inf(1), MaxV: math.Inf(-1)}
}

// Add accumulates one observation (stats += record.power).
func (s *Statistics) Add(v float64) {
	s.N++
	s.Sum += v
	if v < s.MinV {
		s.MinV = v
	}
	if v > s.MaxV {
		s.MaxV = v
	}
}

// Merge folds another Statistics into this one.
func (s *Statistics) Merge(other Reducer[float64, *Statistics]) {
	o := other.(*Statistics)
	s.N += o.N
	s.Sum += o.Sum
	if o.MinV < s.MinV {
		s.MinV = o.MinV
	}
	if o.MaxV > s.MaxV {
		s.MaxV = o.MaxV
	}
}

// Result returns the reducer itself (callers read Mean, Sum, ...).
func (s *Statistics) Result() *Statistics { return s }

// Fresh returns a new empty Statistics.
func (s *Statistics) Fresh() Reducer[float64, *Statistics] { return NewStatistics() }

// Mean returns the arithmetic mean, or NaN when empty.
func (s *Statistics) Mean() float64 {
	if s.N == 0 {
		return math.NaN()
	}
	return s.Sum / float64(s.N)
}

// SumInt is a summation reducer over int64, used by the MatrixMult dot
// product loop.
type SumInt struct{ V int64 }

// Add accumulates one term.
func (s *SumInt) Add(v int64) { s.V += v }

// Merge folds another SumInt into this one.
func (s *SumInt) Merge(other Reducer[int64, int64]) { s.V += other.(*SumInt).V }

// Result returns the sum.
func (s *SumInt) Result() int64 { return s.V }

// Fresh returns a new zero SumInt.
func (s *SumInt) Fresh() Reducer[int64, int64] { return &SumInt{} }

// MinInt keeps the minimum of a stream of int64 (identity: MaxInt64).
type MinInt struct {
	V    int64
	Seen bool
}

// Add accumulates one value.
func (m *MinInt) Add(v int64) {
	if !m.Seen || v < m.V {
		m.V, m.Seen = v, true
	}
}

// Merge folds another MinInt into this one.
func (m *MinInt) Merge(other Reducer[int64, int64]) {
	o := other.(*MinInt)
	if o.Seen {
		m.Add(o.V)
	}
}

// Result returns the minimum (MaxInt64 when empty).
func (m *MinInt) Result() int64 {
	if !m.Seen {
		return math.MaxInt64
	}
	return m.V
}

// Fresh returns a new empty MinInt.
func (m *MinInt) Fresh() Reducer[int64, int64] { return &MinInt{} }

// MaxInt keeps the maximum of a stream of int64 (identity: MinInt64).
type MaxInt struct {
	V    int64
	Seen bool
}

// Add accumulates one value.
func (m *MaxInt) Add(v int64) {
	if !m.Seen || v > m.V {
		m.V, m.Seen = v, true
	}
}

// Merge folds another MaxInt into this one.
func (m *MaxInt) Merge(other Reducer[int64, int64]) {
	o := other.(*MaxInt)
	if o.Seen {
		m.Add(o.V)
	}
}

// Result returns the maximum (MinInt64 when empty).
func (m *MaxInt) Result() int64 {
	if !m.Seen {
		return math.MinInt64
	}
	return m.V
}

// Fresh returns a new empty MaxInt.
func (m *MaxInt) Fresh() Reducer[int64, int64] { return &MaxInt{} }

// Fold is a generic user-defined-operator reducer built from an identity
// and an associative combine function, the JStar "reduce operations with
// user-defined operators".
type Fold[T any] struct {
	acc      T
	identity T
	op       func(a, b T) T
}

// NewFold returns a reducer folding with op from identity.
func NewFold[T any](identity T, op func(a, b T) T) *Fold[T] {
	return &Fold[T]{acc: identity, identity: identity, op: op}
}

// Add folds one value.
func (f *Fold[T]) Add(v T) { f.acc = f.op(f.acc, v) }

// Merge folds another Fold's accumulator into this one.
func (f *Fold[T]) Merge(other Reducer[T, T]) { f.acc = f.op(f.acc, other.(*Fold[T]).acc) }

// Result returns the accumulator.
func (f *Fold[T]) Result() T { return f.acc }

// Fresh returns a new empty Fold with the same operator.
func (f *Fold[T]) Fresh() Reducer[T, T] { return NewFold(f.identity, f.op) }
