package reduce

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStatisticsBasic(t *testing.T) {
	s := NewStatistics()
	if !math.IsNaN(s.Mean()) {
		t.Error("empty mean must be NaN")
	}
	for _, v := range []float64{1, 2, 3, 4} {
		s.Add(v)
	}
	if s.N != 4 || s.Sum != 10 || s.Mean() != 2.5 || s.MinV != 1 || s.MaxV != 4 {
		t.Errorf("stats = %+v", s)
	}
	if s.Result() != s {
		t.Error("Result must return the reducer")
	}
}

func TestStatisticsMergeEqualsSequential(t *testing.T) {
	// Tree-merge must give the same result as one sequential pass —
	// the property that lets JStar parallelise reducer loops (§5.2).
	f := func(xs, ys []float64) bool {
		clean := func(vs []float64) []float64 {
			out := vs[:0]
			for _, v := range vs {
				if !math.IsNaN(v) && !math.IsInf(v, 0) {
					// Fold huge magnitudes into a moderate range: float
					// addition is only approximately associative, and the
					// split/merge tolerance below assumes no catastrophic
					// cancellation (power readings are small positives).
					out = append(out, math.Mod(v, 1e6))
				}
			}
			return out
		}
		xs, ys = clean(xs), clean(ys)
		all := NewStatistics()
		for _, v := range append(append([]float64{}, xs...), ys...) {
			all.Add(v)
		}
		a, b := NewStatistics(), NewStatistics()
		for _, v := range xs {
			a.Add(v)
		}
		for _, v := range ys {
			b.Add(v)
		}
		a.Merge(b)
		if a.N != all.N || a.MinV != all.MinV || a.MaxV != all.MaxV {
			return false
		}
		return math.Abs(a.Sum-all.Sum) < 1e-9*(1+math.Abs(all.Sum))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStatisticsFresh(t *testing.T) {
	s := NewStatistics()
	s.Add(5)
	f := s.Fresh().(*Statistics)
	if f.N != 0 {
		t.Error("Fresh must be empty")
	}
}

func TestSumInt(t *testing.T) {
	s := &SumInt{}
	s.Add(3)
	s.Add(4)
	o := s.Fresh().(*SumInt)
	o.Add(10)
	s.Merge(o)
	if s.Result() != 17 {
		t.Errorf("sum = %d", s.Result())
	}
}

func TestMinMaxInt(t *testing.T) {
	mn, mx := &MinInt{}, &MaxInt{}
	if mn.Result() != math.MaxInt64 || mx.Result() != math.MinInt64 {
		t.Error("empty identities")
	}
	for _, v := range []int64{5, -2, 9} {
		mn.Add(v)
		mx.Add(v)
	}
	if mn.Result() != -2 || mx.Result() != 9 {
		t.Errorf("min=%d max=%d", mn.Result(), mx.Result())
	}
	// Merging an empty reducer is a no-op.
	mn.Merge(mn.Fresh())
	mx.Merge(mx.Fresh())
	if mn.Result() != -2 || mx.Result() != 9 {
		t.Error("merge with empty changed result")
	}
	o := &MinInt{}
	o.Add(-100)
	mn.Merge(o)
	if mn.Result() != -100 {
		t.Error("merge min")
	}
	o2 := &MaxInt{}
	o2.Add(100)
	mx.Merge(o2)
	if mx.Result() != 100 {
		t.Error("merge max")
	}
}

func TestFoldUserDefinedOperator(t *testing.T) {
	// gcd as a user-defined reduce operator.
	gcd := func(a, b int64) int64 {
		for b != 0 {
			a, b = b, a%b
		}
		if a < 0 {
			return -a
		}
		return a
	}
	f := NewFold(int64(0), gcd)
	for _, v := range []int64{12, 18, 30} {
		f.Add(v)
	}
	if f.Result() != 6 {
		t.Errorf("gcd fold = %d", f.Result())
	}
	g := f.Fresh().(*Fold[int64])
	if g.Result() != 0 {
		t.Error("fresh fold must hold identity")
	}
	g.Add(9)
	f.Merge(g)
	if f.Result() != 3 {
		t.Errorf("merged gcd = %d", f.Result())
	}
}
