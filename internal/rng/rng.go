// Package rng provides a splittable pseudo-random number generator
// (SplitMix64). The paper notes (§8 fn 15) that parallelising the random
// graph creation loop requires parallel random number generators: each of
// the 24 graph-generation tasks needs an independent, deterministic stream.
// SplitMix64 gives exactly that — split children are statistically
// independent and the whole program stays reproducible from one seed.
package rng

// SplitMix64 is a 64-bit splittable PRNG. The zero value is a valid
// generator seeded with 0.
type SplitMix64 struct {
	state uint64
	gamma uint64
}

const goldenGamma = 0x9e3779b97f4a7c15

// New returns a generator with the default stream constant.
func New(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed, gamma: goldenGamma}
}

func mix64(z uint64) uint64 {
	z = (z ^ (z >> 33)) * 0xff51afd7ed558ccd
	z = (z ^ (z >> 33)) * 0xc4ceb9fe1a85ec53
	return z ^ (z >> 33)
}

func mixGamma(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z = z ^ (z >> 31)
	z |= 1 // gammas must be odd
	// Require enough bit transitions; fix up weak gammas (Steele et al.).
	if popcount(z^(z>>1)) < 24 {
		z ^= 0xaaaaaaaaaaaaaaaa
	}
	return z
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// Uint64 returns the next 64 random bits.
func (r *SplitMix64) Uint64() uint64 {
	r.state += r.gamma
	return mix64(r.state)
}

// Split returns a new generator whose stream is independent of the parent's
// subsequent output — hand one to each parallel task.
func (r *SplitMix64) Split() *SplitMix64 {
	return &SplitMix64{state: r.Uint64(), gamma: mixGamma(r.Uint64())}
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *SplitMix64) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n with non-positive n")
	}
	// Rejection sampling to remove modulo bias.
	max := uint64(n)
	limit := (^uint64(0) / max) * max
	for {
		v := r.Uint64()
		if v < limit {
			return int64(v % max)
		}
	}
}

// Intn returns a uniform int in [0, n).
func (r *SplitMix64) Intn(n int) int { return int(r.Int63n(int64(n))) }

// Float64 returns a uniform float64 in [0, 1).
func (r *SplitMix64) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}
