package rng

import (
	"math"
	"testing"
)

func TestDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds collided %d/100 times", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	kids := make([]*SplitMix64, 24) // one per graph-generation task (§6.5)
	for i := range kids {
		kids[i] = parent.Split()
	}
	// Streams must not be identical between siblings.
	for i := 1; i < len(kids); i++ {
		same := 0
		a, b := *kids[0], *kids[i] // copies to not disturb state
		for j := 0; j < 50; j++ {
			if a.Uint64() == b.Uint64() {
				same++
			}
		}
		if same > 1 {
			t.Fatalf("sibling %d shares the parent stream", i)
		}
	}
	// Deterministic: re-splitting from the same seed reproduces children.
	parent2 := New(7)
	k0 := parent2.Split()
	a, b := *kids[0], *k0
	for j := 0; j < 50; j++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("split streams must be reproducible from the seed")
		}
	}
}

func TestInt63nRangeAndUniformity(t *testing.T) {
	r := New(1)
	const n = 10
	counts := make([]int, n)
	const draws = 100000
	for i := 0; i < draws; i++ {
		v := r.Int63n(n)
		if v < 0 || v >= n {
			t.Fatalf("Int63n out of range: %d", v)
		}
		counts[v]++
	}
	want := draws / n
	for i, c := range counts {
		if math.Abs(float64(c-want)) > float64(want)/5 {
			t.Errorf("bucket %d count %d deviates from %d", i, c, want)
		}
	}
}

func TestInt63nPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Int63n(0) must panic")
		}
	}()
	New(1).Int63n(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	var sum float64
	const draws = 100000
	for i := 0; i < draws; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
		sum += f
	}
	if mean := sum / draws; mean < 0.49 || mean > 0.51 {
		t.Errorf("mean %v far from 0.5", mean)
	}
}

func TestIntn(t *testing.T) {
	r := New(2)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(3); v < 0 || v > 2 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}
