package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// Client is a thin Go client for the serve API — what the jstar-bench
// load generator and the parity tests drive the server with. It is a
// convenience over net/http, not a required SDK: every endpoint is plain
// JSON (or the documented binary batch format) over HTTP.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTP is the underlying client; nil uses a dedicated client with
	// keep-alives (not http.DefaultClient, so tests don't share pools).
	HTTP *http.Client
}

// NewClient returns a Client for the server root base.
func NewClient(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/"), HTTP: &http.Client{}}
}

func (c *Client) httpc() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// apiError is the JSON error body the server writes on failures.
type apiError struct {
	Status int
	Body   string
}

func (e *apiError) Error() string {
	return fmt.Sprintf("serve: http %d: %s", e.Status, strings.TrimSpace(e.Body))
}

// IsStatus reports whether err is a server response with the given code.
func IsStatus(err error, status int) bool {
	ae, ok := err.(*apiError)
	return ok && ae.Status == status
}

func (c *Client) do(ctx context.Context, method, path, contentType string, body io.Reader, out any) error {
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, body)
	if err != nil {
		return err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := c.httpc().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 400 {
		return &apiError{Status: resp.StatusCode, Body: string(raw)}
	}
	if out != nil && len(raw) > 0 {
		return json.Unmarshal(raw, out)
	}
	return nil
}

// CreateTenant registers cfg and returns the server's tenant info.
func (c *Client) CreateTenant(ctx context.Context, cfg TenantConfig) (map[string]any, error) {
	body, err := json.Marshal(cfg)
	if err != nil {
		return nil, err
	}
	var out map[string]any
	err = c.do(ctx, http.MethodPost, "/v1/tenants", JSONContentType, bytes.NewReader(body), &out)
	return out, err
}

// CloseTenant deletes the named tenant, closing its session.
func (c *Client) CloseTenant(ctx context.Context, tenant string) error {
	return c.do(ctx, http.MethodDelete, "/v1/tenants/"+url.PathEscape(tenant), "", nil, nil)
}

// PutJSON ingests rows into table via the JSON format. Each row is a
// JSON-ready cell slice matching the table's column kinds.
func (c *Client) PutJSON(ctx context.Context, tenant, table string, rows [][]any) error {
	body, err := json.Marshal(map[string]any{"table": table, "rows": rows})
	if err != nil {
		return err
	}
	return c.do(ctx, http.MethodPost, "/v1/tenants/"+url.PathEscape(tenant)+"/put",
		JSONContentType, bytes.NewReader(body), nil)
}

// PutBinary ingests a pre-encoded binary batch stream (see AppendFrame).
func (c *Client) PutBinary(ctx context.Context, tenant string, frames []byte) error {
	return c.do(ctx, http.MethodPost, "/v1/tenants/"+url.PathEscape(tenant)+"/put",
		BinaryContentType, bytes.NewReader(frames), nil)
}

// QuiesceResult is the response of the quiesce endpoint.
type QuiesceResult struct {
	QuiesceNanos int64            `json:"quiesce_nanos"`
	Steps        int64            `json:"steps"`
	Versions     map[string]int64 `json:"versions"`
}

// Quiesce drives the tenant's session to a quiescent boundary.
func (c *Client) Quiesce(ctx context.Context, tenant string) (QuiesceResult, error) {
	var out QuiesceResult
	err := c.do(ctx, http.MethodPost, "/v1/tenants/"+url.PathEscape(tenant)+"/quiesce", "", nil, &out)
	return out, err
}

// Query runs a prefix query and returns the canonical rows JSON (see
// RowsJSON) exactly as served. prefix is a JSON array literal or "".
func (c *Client) Query(ctx context.Context, tenant, table, prefix string) ([]byte, error) {
	q := url.Values{"table": {table}}
	if prefix != "" {
		q.Set("prefix", prefix)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.Base+"/v1/tenants/"+url.PathEscape(tenant)+"/query?"+q.Encode(), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpc().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, &apiError{Status: resp.StatusCode, Body: string(raw)}
	}
	return raw, nil
}

// CheckpointResult is the response of the checkpoint endpoint.
type CheckpointResult struct {
	Seq          uint64 `json:"seq"`
	Tables       int    `json:"tables"`
	Tuples       int    `json:"tuples"`
	ElapsedNanos int64  `json:"elapsed_nanos"`
}

// Checkpoint forces a Gamma checkpoint on a durable tenant at its next
// quiescent boundary.
func (c *Client) Checkpoint(ctx context.Context, tenant string) (CheckpointResult, error) {
	var out CheckpointResult
	err := c.do(ctx, http.MethodPost, "/v1/tenants/"+url.PathEscape(tenant)+"/checkpoint", "", nil, &out)
	return out, err
}

// Migrate requests a live store migration for table to spec.
func (c *Client) Migrate(ctx context.Context, tenant, table, spec string) error {
	body, _ := json.Marshal(map[string]string{"table": table, "spec": spec})
	return c.do(ctx, http.MethodPost, "/v1/tenants/"+url.PathEscape(tenant)+"/migrate",
		JSONContentType, bytes.NewReader(body), nil)
}

// Subscription identifies a registered query subscription and the change
// generation current at registration.
type Subscription struct {
	ID      int64  `json:"id"`
	Table   string `json:"table"`
	Version int64  `json:"version"`
}

// Subscribe registers a table+prefix subscription.
func (c *Client) Subscribe(ctx context.Context, tenant, table, prefix string) (Subscription, error) {
	body, _ := json.Marshal(map[string]string{"table": table, "prefix": prefix})
	var out Subscription
	err := c.do(ctx, http.MethodPost, "/v1/tenants/"+url.PathEscape(tenant)+"/subscribe",
		JSONContentType, bytes.NewReader(body), &out)
	return out, err
}

// Poll long-polls subscription id until the table's quiesced state changes
// past since, the timeout elapses (returns ok=false), or ctx is done.
func (c *Client) Poll(ctx context.Context, tenant string, id, since int64, timeout time.Duration) (version int64, ok bool, err error) {
	q := url.Values{"since": {strconv.FormatInt(since, 10)}}
	if timeout > 0 {
		q.Set("timeout", timeout.String())
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.Base+"/v1/tenants/"+url.PathEscape(tenant)+"/subscriptions/"+strconv.FormatInt(id, 10)+"/poll?"+q.Encode(), nil)
	if err != nil {
		return 0, false, err
	}
	resp, err := c.httpc().Do(req)
	if err != nil {
		return 0, false, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, false, err
	}
	switch resp.StatusCode {
	case http.StatusNoContent:
		return since, false, nil
	case http.StatusOK:
		var out struct {
			Version int64 `json:"version"`
		}
		if err := json.Unmarshal(raw, &out); err != nil {
			return 0, false, err
		}
		return out.Version, true, nil
	default:
		return 0, false, &apiError{Status: resp.StatusCode, Body: string(raw)}
	}
}

// Unsubscribe removes subscription id.
func (c *Client) Unsubscribe(ctx context.Context, tenant string, id int64) error {
	return c.do(ctx, http.MethodDelete,
		"/v1/tenants/"+url.PathEscape(tenant)+"/subscriptions/"+strconv.FormatInt(id, 10), "", nil, nil)
}

// SSEEvent is one server-sent event from the events endpoint.
type SSEEvent struct {
	Event   string
	Table   string
	Version int64
}

// Events opens the SSE stream for subscription id and invokes fn per
// event until the stream ends or fn returns false. It blocks; cancel ctx
// to stop.
func (c *Client) Events(ctx context.Context, tenant string, id int64, fn func(SSEEvent) bool) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.Base+"/v1/tenants/"+url.PathEscape(tenant)+"/subscriptions/"+strconv.FormatInt(id, 10)+"/events", nil)
	if err != nil {
		return err
	}
	resp, err := c.httpc().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		return &apiError{Status: resp.StatusCode, Body: string(raw)}
	}
	sc := bufio.NewScanner(resp.Body)
	var ev SSEEvent
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			ev.Event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			var data struct {
				Table   string `json:"table"`
				Version int64  `json:"version"`
			}
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &data); err != nil {
				return err
			}
			ev.Table, ev.Version = data.Table, data.Version
		case line == "":
			if ev.Event != "" && !fn(ev) {
				return nil
			}
			ev = SSEEvent{}
		}
	}
	return sc.Err()
}
