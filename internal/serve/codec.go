package serve

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"

	"github.com/jstar-lang/jstar/internal/core"
	"github.com/jstar-lang/jstar/internal/tuple"
)

// Wire formats of the ingestion endpoint. JSON is the debuggable default;
// the binary batch format is the fast path: length-prefixed frames decoded
// straight into Session.PutBatch with a reused scratch row (tuple.New
// copies its fields, so the decoder allocates no per-tuple intermediates
// beyond the tuple itself).
//
//	frame = u8 nameLen | name | u32le rowCount | rowCount rows
//	row   = one field per schema column, in declaration order:
//	          int    8 bytes little-endian two's complement
//	          float  8 bytes little-endian IEEE-754
//	          bool   1 byte (0 or 1)
//	          string u32le byteLen | bytes
//
// A stream is any number of frames back to back; clean EOF between frames
// ends it. Frames may repeat tables and may interleave.
const (
	// BinaryContentType selects the binary batch format on the put endpoint.
	BinaryContentType = "application/x-jstar-batch"
	// JSONContentType selects the JSON put format: {"table": T, "rows": [[...], ...]}.
	JSONContentType = "application/json"

	// maxWireString caps a single string field on the wire (16 MiB) so a
	// corrupt length prefix cannot ask the decoder for gigabytes.
	maxWireString = 16 << 20
	// ingestFlushRows is how many decoded tuples accumulate before the
	// decoder flushes them into Session.PutBatch, bounding memory for
	// arbitrarily long streams.
	ingestFlushRows = 512
)

// AppendFrame appends one binary batch frame for sch holding rows to dst
// and returns the extended slice. Each row must match the schema's arity
// and column kinds; this is the client/load-generator side of the codec.
func AppendFrame(dst []byte, sch *tuple.Schema, rows [][]tuple.Value) ([]byte, error) {
	if len(sch.Name) > 255 {
		return dst, fmt.Errorf("serve: table name %q exceeds 255 bytes", sch.Name)
	}
	dst = append(dst, byte(len(sch.Name)))
	dst = append(dst, sch.Name...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(rows)))
	for _, row := range rows {
		if len(row) != sch.Arity() {
			return dst, fmt.Errorf("serve: row arity %d != %s arity %d", len(row), sch.Name, sch.Arity())
		}
		for i, col := range sch.Columns {
			v := row[i]
			if v.Kind() != col.Kind {
				return dst, fmt.Errorf("serve: %s.%s: field kind %v, want %v", sch.Name, col.Name, v.Kind(), col.Kind)
			}
			switch col.Kind {
			case tuple.KindInt:
				dst = binary.LittleEndian.AppendUint64(dst, uint64(v.AsInt()))
			case tuple.KindFloat:
				dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.AsFloat()))
			case tuple.KindBool:
				b := byte(0)
				if v.AsBool() {
					b = 1
				}
				dst = append(dst, b)
			case tuple.KindString:
				s := v.AsString()
				dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s)))
				dst = append(dst, s...)
			default:
				return dst, fmt.Errorf("serve: %s.%s: unsupported kind %v", sch.Name, col.Name, col.Kind)
			}
		}
	}
	return dst, nil
}

// binaryIngest decodes a binary batch stream from r, flushing decoded
// tuples into put in chunks of ingestFlushRows. It returns the tuple count
// absorbed. The scratch row is reused across tuples.
func binaryIngest(r io.Reader, prog *core.Program, put func(...*tuple.Tuple) error) (int64, error) {
	br := bufio.NewReaderSize(r, 64<<10)
	var (
		scratch []tuple.Value
		strbuf  []byte
		batch   = make([]*tuple.Tuple, 0, ingestFlushRows)
		nameBuf [255]byte
		total   int64
	)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if err := put(batch...); err != nil {
			return err
		}
		total += int64(len(batch))
		batch = batch[:0]
		return nil
	}
	for {
		nameLen, err := br.ReadByte()
		if err == io.EOF {
			return total, flush()
		}
		if err != nil {
			return total, err
		}
		name := nameBuf[:nameLen]
		if _, err := io.ReadFull(br, name); err != nil {
			return total, fmt.Errorf("serve: truncated frame header: %w", err)
		}
		sch := prog.Schema(string(name))
		if sch == nil {
			return total, fmt.Errorf("serve: frame for unknown table %q", name)
		}
		var cntBuf [4]byte
		if _, err := io.ReadFull(br, cntBuf[:]); err != nil {
			return total, fmt.Errorf("serve: truncated frame header: %w", err)
		}
		rowCount := binary.LittleEndian.Uint32(cntBuf[:])
		if cap(scratch) < sch.Arity() {
			scratch = make([]tuple.Value, sch.Arity())
		}
		scratch = scratch[:sch.Arity()]
		for row := uint32(0); row < rowCount; row++ {
			for i, col := range sch.Columns {
				switch col.Kind {
				case tuple.KindInt:
					var b [8]byte
					if _, err := io.ReadFull(br, b[:]); err != nil {
						return total, fmt.Errorf("serve: truncated %s row: %w", sch.Name, err)
					}
					scratch[i] = tuple.Int(int64(binary.LittleEndian.Uint64(b[:])))
				case tuple.KindFloat:
					var b [8]byte
					if _, err := io.ReadFull(br, b[:]); err != nil {
						return total, fmt.Errorf("serve: truncated %s row: %w", sch.Name, err)
					}
					scratch[i] = tuple.Float(math.Float64frombits(binary.LittleEndian.Uint64(b[:])))
				case tuple.KindBool:
					b, err := br.ReadByte()
					if err != nil {
						return total, fmt.Errorf("serve: truncated %s row: %w", sch.Name, err)
					}
					scratch[i] = tuple.Bool(b != 0)
				case tuple.KindString:
					var b [4]byte
					if _, err := io.ReadFull(br, b[:]); err != nil {
						return total, fmt.Errorf("serve: truncated %s row: %w", sch.Name, err)
					}
					n := binary.LittleEndian.Uint32(b[:])
					if n > maxWireString {
						return total, fmt.Errorf("serve: %s string field of %d bytes exceeds limit", sch.Name, n)
					}
					if cap(strbuf) < int(n) {
						strbuf = make([]byte, n)
					}
					strbuf = strbuf[:n]
					if _, err := io.ReadFull(br, strbuf); err != nil {
						return total, fmt.Errorf("serve: truncated %s row: %w", sch.Name, err)
					}
					scratch[i] = tuple.String_(string(strbuf))
				default:
					return total, fmt.Errorf("serve: %s.%s: unsupported kind", sch.Name, col.Name)
				}
			}
			batch = append(batch, tuple.New(sch, scratch...))
			if len(batch) == ingestFlushRows {
				if err := flush(); err != nil {
					return total, err
				}
			}
		}
	}
}

// jsonPut is the body of a JSON ingestion request.
type jsonPut struct {
	Table string            `json:"table"`
	Rows  []json.RawMessage `json:"rows"`
}

// jsonIngest decodes a JSON put body and flushes it into put, returning
// the tuple count absorbed.
func jsonIngest(r io.Reader, prog *core.Program, put func(...*tuple.Tuple) error) (int64, error) {
	dec := json.NewDecoder(r)
	dec.UseNumber()
	var body jsonPut
	if err := dec.Decode(&body); err != nil {
		return 0, fmt.Errorf("serve: bad put body: %w", err)
	}
	sch := prog.Schema(body.Table)
	if sch == nil {
		return 0, fmt.Errorf("serve: put to unknown table %q", body.Table)
	}
	var (
		total   int64
		scratch = make([]tuple.Value, sch.Arity())
		batch   = make([]*tuple.Tuple, 0, ingestFlushRows)
	)
	for _, raw := range body.Rows {
		if err := rowFromJSON(sch, raw, scratch); err != nil {
			return total, err
		}
		batch = append(batch, tuple.New(sch, scratch...))
		if len(batch) == ingestFlushRows {
			if err := put(batch...); err != nil {
				return total, err
			}
			total += int64(len(batch))
			batch = batch[:0]
		}
	}
	if len(batch) > 0 {
		if err := put(batch...); err != nil {
			return total, err
		}
		total += int64(len(batch))
	}
	return total, nil
}

// rowFromJSON decodes one JSON array row into dst following sch's kinds.
func rowFromJSON(sch *tuple.Schema, raw json.RawMessage, dst []tuple.Value) error {
	dec := json.NewDecoder(bytesReader(raw))
	dec.UseNumber()
	var cells []any
	if err := dec.Decode(&cells); err != nil {
		return fmt.Errorf("serve: bad row for %s: %w", sch.Name, err)
	}
	if len(cells) != sch.Arity() {
		return fmt.Errorf("serve: row arity %d != %s arity %d", len(cells), sch.Name, sch.Arity())
	}
	for i, col := range sch.Columns {
		v, err := valueFromJSON(col.Kind, cells[i])
		if err != nil {
			return fmt.Errorf("serve: %s.%s: %w", sch.Name, col.Name, err)
		}
		dst[i] = v
	}
	return nil
}

// valueFromJSON converts one decoded JSON cell to a tuple.Value of kind k.
func valueFromJSON(k tuple.Kind, cell any) (tuple.Value, error) {
	switch k {
	case tuple.KindInt:
		n, ok := cell.(json.Number)
		if !ok {
			return tuple.Value{}, fmt.Errorf("want int, got %T", cell)
		}
		i, err := n.Int64()
		if err != nil {
			return tuple.Value{}, err
		}
		return tuple.Int(i), nil
	case tuple.KindFloat:
		n, ok := cell.(json.Number)
		if !ok {
			return tuple.Value{}, fmt.Errorf("want float, got %T", cell)
		}
		f, err := n.Float64()
		if err != nil {
			return tuple.Value{}, err
		}
		return tuple.Float(f), nil
	case tuple.KindString:
		s, ok := cell.(string)
		if !ok {
			return tuple.Value{}, fmt.Errorf("want string, got %T", cell)
		}
		return tuple.String_(s), nil
	case tuple.KindBool:
		b, ok := cell.(bool)
		if !ok {
			return tuple.Value{}, fmt.Errorf("want bool, got %T", cell)
		}
		return tuple.Bool(b), nil
	}
	return tuple.Value{}, fmt.Errorf("unsupported kind %v", k)
}

// bytesReader avoids importing bytes just for NewReader in one spot.
func bytesReader(b []byte) io.Reader { return &sliceReader{b: b} }

type sliceReader struct{ b []byte }

func (r *sliceReader) Read(p []byte) (int, error) {
	if len(r.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.b)
	r.b = r.b[n:]
	return n, nil
}

// RowsJSON renders tuples as a canonical JSON array of row arrays, sorted
// by field order so the bytes are deterministic for a given tuple set —
// the representation both the query endpoint and the in-process side of
// the parity test use. Ints render as decimal, floats via strconv 'g',
// strings JSON-escaped, bools as true/false.
func RowsJSON(rows []*tuple.Tuple) []byte {
	sorted := make([]*tuple.Tuple, len(rows))
	copy(sorted, rows)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].CompareFields(sorted[j]) < 0 })
	out := []byte{'['}
	for ri, t := range sorted {
		if ri > 0 {
			out = append(out, ',')
		}
		out = append(out, '[')
		for i := 0; i < t.Schema().Arity(); i++ {
			if i > 0 {
				out = append(out, ',')
			}
			v := t.Field(i)
			switch v.Kind() {
			case tuple.KindInt:
				out = strconv.AppendInt(out, v.AsInt(), 10)
			case tuple.KindFloat:
				out = strconv.AppendFloat(out, v.AsFloat(), 'g', -1, 64)
			case tuple.KindBool:
				out = strconv.AppendBool(out, v.AsBool())
			case tuple.KindString:
				q, _ := json.Marshal(v.AsString())
				out = append(out, q...)
			}
		}
		out = append(out, ']')
	}
	return append(out, ']')
}

// prefixFromJSON decodes a query prefix (JSON array) against sch's leading
// column kinds.
func prefixFromJSON(sch *tuple.Schema, raw string) ([]tuple.Value, error) {
	if raw == "" {
		return nil, nil
	}
	dec := json.NewDecoder(bytesReader([]byte(raw)))
	dec.UseNumber()
	var cells []any
	if err := dec.Decode(&cells); err != nil {
		return nil, fmt.Errorf("serve: bad prefix: %w", err)
	}
	if len(cells) > sch.Arity() {
		return nil, fmt.Errorf("serve: prefix of %d values exceeds %s arity %d", len(cells), sch.Name, sch.Arity())
	}
	vals := make([]tuple.Value, len(cells))
	for i, cell := range cells {
		v, err := valueFromJSON(sch.Columns[i].Kind, cell)
		if err != nil {
			return nil, fmt.Errorf("serve: prefix[%d]: %w", i, err)
		}
		vals[i] = v
	}
	return vals, nil
}
