package serve

import (
	"strings"
	"testing"

	"github.com/jstar-lang/jstar/internal/core"
	"github.com/jstar-lang/jstar/internal/tuple"
)

// codecProgram declares one table of every supported kind.
func codecProgram() *core.Program {
	p := core.NewProgram()
	p.Table("Mixed", []tuple.Column{
		{Name: "i", Kind: tuple.KindInt},
		{Name: "f", Kind: tuple.KindFloat},
		{Name: "s", Kind: tuple.KindString},
		{Name: "b", Kind: tuple.KindBool},
	}, []tuple.OrderEntry{tuple.Lit("Mixed")})
	return p
}

func TestBinaryCodecRoundTrip(t *testing.T) {
	prog := codecProgram()
	sch := prog.Schema("Mixed")
	rows := [][]tuple.Value{
		{tuple.Int(-42), tuple.Float(3.25), tuple.String_("héllo, wörld"), tuple.Bool(true)},
		{tuple.Int(1 << 40), tuple.Float(-0.5), tuple.String_(""), tuple.Bool(false)},
	}
	// Two frames back to back for the same table.
	frames, err := AppendFrame(nil, sch, rows[:1])
	if err != nil {
		t.Fatal(err)
	}
	frames, err = AppendFrame(frames, sch, rows[1:])
	if err != nil {
		t.Fatal(err)
	}
	var got []*tuple.Tuple
	n, err := binaryIngest(bytesReader(frames), prog, func(ts ...*tuple.Tuple) error {
		got = append(got, ts...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || len(got) != 2 {
		t.Fatalf("decoded %d tuples (%d flushed), want 2", len(got), n)
	}
	for ri, row := range rows {
		for i, want := range row {
			if !got[ri].Field(i).Equal(want) {
				t.Errorf("row %d field %d = %v, want %v", ri, i, got[ri].Field(i), want)
			}
		}
	}
}

func TestBinaryIngestFlushesLongStreams(t *testing.T) {
	prog := codecProgram()
	sch := prog.Schema("Mixed")
	const rows = ingestFlushRows*2 + 7
	var frames []byte
	var err error
	for i := 0; i < rows; i++ {
		frames, err = AppendFrame(frames, sch, [][]tuple.Value{{
			tuple.Int(int64(i)), tuple.Float(0), tuple.String_("x"), tuple.Bool(false),
		}})
		if err != nil {
			t.Fatal(err)
		}
	}
	var flushes, total int
	n, err := binaryIngest(bytesReader(frames), prog, func(ts ...*tuple.Tuple) error {
		flushes++
		total += len(ts)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if int(n) != rows || total != rows {
		t.Fatalf("absorbed %d/%d, want %d", n, total, rows)
	}
	if flushes < 3 {
		t.Errorf("flushes = %d, want chunked (>= 3)", flushes)
	}
}

func TestBinaryIngestErrors(t *testing.T) {
	prog := codecProgram()
	sch := prog.Schema("Mixed")
	frames, err := AppendFrame(nil, sch, [][]tuple.Value{{
		tuple.Int(1), tuple.Float(1), tuple.String_("a"), tuple.Bool(true),
	}})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"unknown table":  append([]byte{4, 'N', 'o', 'p', 'e'}, 0, 0, 0, 0),
		"truncated row":  frames[:len(frames)-3],
		"truncated name": {200, 'x'},
	}
	for name, stream := range cases {
		if _, err := binaryIngest(bytesReader(stream), prog, func(...*tuple.Tuple) error { return nil }); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

func TestJSONIngestKindChecks(t *testing.T) {
	prog := codecProgram()
	put := func(...*tuple.Tuple) error { return nil }
	ok := `{"table":"Mixed","rows":[[1, 2.5, "s", true]]}`
	if n, err := jsonIngest(strings.NewReader(ok), prog, put); err != nil || n != 1 {
		t.Fatalf("valid row: n=%d err=%v", n, err)
	}
	for name, body := range map[string]string{
		"wrong kind":    `{"table":"Mixed","rows":[["not-int", 2.5, "s", true]]}`,
		"short row":     `{"table":"Mixed","rows":[[1, 2.5]]}`,
		"unknown table": `{"table":"Nope","rows":[[1]]}`,
		"not json":      `{{{`,
	} {
		if _, err := jsonIngest(strings.NewReader(body), prog, put); err == nil {
			t.Errorf("%s: ingested without error", name)
		}
	}
}

func TestRowsJSONDeterministic(t *testing.T) {
	prog := codecProgram()
	sch := prog.Schema("Mixed")
	a := tuple.New(sch, tuple.Int(2), tuple.Float(1.5), tuple.String_("b"), tuple.Bool(false))
	b := tuple.New(sch, tuple.Int(1), tuple.Float(0.25), tuple.String_("a \"q\""), tuple.Bool(true))
	fwd := RowsJSON([]*tuple.Tuple{a, b})
	rev := RowsJSON([]*tuple.Tuple{b, a})
	if string(fwd) != string(rev) {
		t.Errorf("RowsJSON depends on input order:\n%s\n%s", fwd, rev)
	}
	want := `[[1,0.25,"a \"q\"",true],[2,1.5,"b",false]]`
	if string(fwd) != want {
		t.Errorf("RowsJSON = %s, want %s", fwd, want)
	}
	if got := string(RowsJSON(nil)); got != "[]" {
		t.Errorf("empty RowsJSON = %s, want []", got)
	}
}

func TestPrefixFromJSON(t *testing.T) {
	prog := codecProgram()
	sch := prog.Schema("Mixed")
	vals, err := prefixFromJSON(sch, `[7, 1.5]`)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 2 || vals[0].AsInt() != 7 || vals[1].AsFloat() != 1.5 {
		t.Fatalf("prefix = %v", vals)
	}
	if vals, err := prefixFromJSON(sch, ""); err != nil || vals != nil {
		t.Fatalf("empty prefix: %v %v", vals, err)
	}
	for name, raw := range map[string]string{
		"too long":   `[1,2,"s",true,5]`,
		"wrong kind": `["s"]`,
		"not array":  `{"a":1}`,
	} {
		if _, err := prefixFromJSON(sch, raw); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
