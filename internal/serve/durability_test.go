package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/jstar-lang/jstar/internal/lang"
	"github.com/jstar-lang/jstar/internal/serve"
	"github.com/jstar-lang/jstar/internal/wal"
)

// ingestOneByOne streams evs to tenant one request per event — either
// codec — stopping silently once the session has crashed (puts start
// failing after the injected fault fires, which is the point).
func ingestOneByOne(t *testing.T, client *serve.Client, tenant, codec string, evs []event) {
	t.Helper()
	prog, err := lang.CompileSource(doubleSrc)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, ev := range evs {
		var perr error
		if codec == "binary" {
			perr = client.PutBinary(ctx, tenant, binaryFrames(t, prog, []event{ev}))
		} else {
			perr = client.PutJSON(ctx, tenant, ev.table, jsonRows([]event{ev}, ev.table))
		}
		if perr != nil {
			return // crashed tenant: expected mid-matrix
		}
	}
}

// recoveredEvents decodes the Event table's canonical rows JSON back into
// the event stream the recovered tenant holds.
func recoveredEvents(t *testing.T, raw []byte) []event {
	t.Helper()
	var rows [][]int64
	if err := json.Unmarshal(raw, &rows); err != nil {
		t.Fatalf("bad Event rows %s: %v", raw, err)
	}
	evs := make([]event, 0, len(rows))
	for _, r := range rows {
		evs = append(evs, event{"Event", r})
	}
	return evs
}

// TestServeCrashRecoveryParity is the satellite recovery matrix: crash
// points × {JSON, binary} ingest × all three strategies. Each case crashes
// a durable tenant mid-ingest at the kth fsync, recovers a fresh tenant
// from the power-loss view of its log, and demands the recovered quiesced
// snapshot equal what an uncrashed run over exactly the recovered input
// prefix would produce — never a half-applied step, never silent loss of
// acked-durable data.
func TestServeCrashRecoveryParity(t *testing.T) {
	const nEvents = 30
	evs := doubleEvents(nEvents)
	for _, strategy := range []string{"seq", "forkjoin", "pipelined"} {
		for _, codec := range []string{"json", "binary"} {
			for _, crashAt := range []int{1, 4, 9} {
				name := fmt.Sprintf("%s/%s/sync%d", strategy, codec, crashAt)
				t.Run(name, func(t *testing.T) {
					ff := wal.NewFaultFS()
					ff.CrashAtSync(crashAt)
					_, client := newTestServer(t, serve.Config{
						TestWALFS: func(string) wal.FS { return ff },
					})
					ctx := context.Background()
					if _, err := client.CreateTenant(ctx, serve.TenantConfig{
						Name: "crash", Source: doubleSrc, Strategy: strategy,
						// GroupCommitBytes 1: sync per absorbed group, so
						// crash points land between ingest requests.
						Durability: &serve.DurabilityConfig{GroupCommitBytes: 1},
					}); err != nil {
						t.Fatal(err)
					}
					ingestOneByOne(t, client, "crash", codec, evs)
					client.Quiesce(ctx, "crash") // may fail post-crash; fine
					if !ff.Crashed() {
						t.Fatalf("fault never fired (only %d syncs)", ff.Syncs())
					}

					// Reboot: a new server recovers a tenant from the
					// durable (power-loss) view of the same directory.
					rebooted := ff.Durable()
					_, client2 := newTestServer(t, serve.Config{
						TestWALFS: func(string) wal.FS { return rebooted },
					})
					info, err := client2.CreateTenant(ctx, serve.TenantConfig{
						Name: "crash", Source: doubleSrc, Strategy: strategy,
						Durability: &serve.DurabilityConfig{},
					})
					if err != nil {
						t.Fatalf("recovery failed: %v", err)
					}
					if info["durable"] != true {
						t.Fatalf("recovered tenant not marked durable: %v", info)
					}
					if _, err := client2.Quiesce(ctx, "crash"); err != nil {
						t.Fatal(err)
					}
					gotEvent, err := client2.Query(ctx, "crash", "Event", "")
					if err != nil {
						t.Fatal(err)
					}
					gotOut, err := client2.Query(ctx, "crash", "Out", "")
					if err != nil {
						t.Fatal(err)
					}

					// Parity: an uncrashed in-process run over exactly the
					// recovered Event prefix must yield identical rows.
					prefix := recoveredEvents(t, gotEvent)
					if len(prefix) > nEvents {
						t.Fatalf("recovered %d events, only %d were sent", len(prefix), nEvents)
					}
					want := runInProcess(t, doubleSrc, strategy, prefix, []string{"Event", "Out"})
					if !bytes.Equal(gotEvent, want["Event"]) || !bytes.Equal(gotOut, want["Out"]) {
						t.Fatalf("recovered snapshot != uncrashed covering prefix\n Event: %s\n  want: %s\n   Out: %s\n  want: %s",
							gotEvent, want["Event"], gotOut, want["Out"])
					}
				})
			}
		}
	}
}

// TestServeRecoveryOnCreate exercises the production path end to end on a
// real directory: durable tenant via wal_dir, explicit checkpoint over the
// wire, tenant closed, then re-created over the same directory — the new
// session must recover the old state before serving, and say so.
func TestServeRecoveryOnCreate(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	_, client := newTestServer(t, serve.Config{})
	cfg := serve.TenantConfig{
		Name: "dur", Source: doubleSrc,
		Durability: &serve.DurabilityConfig{WalDir: dir, GroupCommitMillis: 1},
	}
	if _, err := client.CreateTenant(ctx, cfg); err != nil {
		t.Fatal(err)
	}
	evs := doubleEvents(50)
	ingestOneByOne(t, client, "dur", "json", evs)
	if _, err := client.Quiesce(ctx, "dur"); err != nil {
		t.Fatal(err)
	}
	ck, err := client.Checkpoint(ctx, "dur")
	if err != nil {
		t.Fatal(err)
	}
	if ck.Seq != 50 || ck.Tuples != 100 {
		t.Fatalf("checkpoint = %+v, want seq 50 covering 100 tuples", ck)
	}
	want, err := client.Query(ctx, "dur", "Out", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := client.CloseTenant(ctx, "dur"); err != nil {
		t.Fatal(err)
	}

	// Same directory, fresh server process: creation recovers first.
	_, client2 := newTestServer(t, serve.Config{})
	info, err := client2.CreateTenant(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec, ok := info["recovery"].(map[string]any)
	if !ok {
		t.Fatalf("create response carries no recovery info: %v", info)
	}
	if rec["CheckpointSeq"] != float64(50) {
		t.Fatalf("recovery info = %v, want checkpoint seq 50", rec)
	}
	if _, err := client2.Quiesce(ctx, "dur"); err != nil {
		t.Fatal(err)
	}
	got, err := client2.Query(ctx, "dur", "Out", "")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("recovered Out differs:\n got: %s\nwant: %s", got, want)
	}
}

// TestServeIdentityGuard: a WAL directory belongs to the tenant named in
// its segment headers; re-attaching it under a different tenant name must
// be refused loudly, not replayed into the wrong program.
func TestServeIdentityGuard(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	_, client := newTestServer(t, serve.Config{})
	d := &serve.DurabilityConfig{WalDir: dir}
	if _, err := client.CreateTenant(ctx, serve.TenantConfig{
		Name: "alice", Source: doubleSrc, Durability: d,
	}); err != nil {
		t.Fatal(err)
	}
	ingestOneByOne(t, client, "alice", "json", doubleEvents(5))
	if _, err := client.Quiesce(ctx, "alice"); err != nil {
		t.Fatal(err)
	}
	if err := client.CloseTenant(ctx, "alice"); err != nil {
		t.Fatal(err)
	}
	_, err := client.CreateTenant(ctx, serve.TenantConfig{
		Name: "mallory", Source: doubleSrc, Durability: d,
	})
	if err == nil || !strings.Contains(err.Error(), "belongs to") {
		t.Fatalf("foreign wal dir accepted: %v", err)
	}
}

// TestServeWALMetrics: durable tenants surface WAL counters on /metrics.
func TestServeWALMetrics(t *testing.T) {
	ctx := context.Background()
	mem := wal.NewMemFS()
	srv, client := newTestServer(t, serve.Config{
		TestWALFS: func(string) wal.FS { return mem },
	})
	if _, err := client.CreateTenant(ctx, serve.TenantConfig{
		Name: "m", Source: doubleSrc,
		Durability: &serve.DurabilityConfig{},
	}); err != nil {
		t.Fatal(err)
	}
	ingestOneByOne(t, client, "m", "json", doubleEvents(20))
	if _, err := client.Quiesce(ctx, "m"); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Checkpoint(ctx, "m"); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	w := httptest.NewRecorder()
	srv.Handler().ServeHTTP(w, req)
	rec := w.Body.String()
	for _, want := range []string{
		`jstar_serve_wal_bytes_total{tenant="m"}`,
		`jstar_serve_wal_group_commits_total{tenant="m"}`,
		`jstar_serve_wal_last_checkpoint_age_seconds{tenant="m"}`,
	} {
		if !strings.Contains(rec, want) {
			t.Errorf("metrics missing %s\n%s", want, rec)
		}
	}
}

// TestServeCheckpointNonDurableRefused: the endpoint is 400 on a tenant
// without a durability config.
func TestServeCheckpointNonDurableRefused(t *testing.T) {
	ctx := context.Background()
	_, client := newTestServer(t, serve.Config{})
	if _, err := client.CreateTenant(ctx, serve.TenantConfig{Name: "plain", Source: doubleSrc}); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Checkpoint(ctx, "plain"); err == nil {
		t.Fatal("checkpoint on non-durable tenant must fail")
	}
}
