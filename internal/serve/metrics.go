package serve

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"github.com/jstar-lang/jstar/internal/stats"
)

// RequestMetrics is the flat per-request measurement every handler fills
// in: one struct per served request, no nesting, so a row maps 1:1 onto a
// CSV line and onto the aggregate counters behind /metrics. The nanos
// fields split the request's life along the ingestion pipeline: Enqueue is
// time spent publishing into the session's ingress ring (PutBatch),
// Quiesce is time blocked waiting for the quiescent boundary, Total is
// wall time in the handler.
type RequestMetrics struct {
	Start        time.Time
	Tenant       string
	Op           string
	Table        string
	Tuples       int64
	Bytes        int64
	Status       int
	EnqueueNanos int64
	QuiesceNanos int64
	TotalNanos   int64
}

// CSVHeader is the column list of the optional per-request CSV log, in the
// order csvLine writes them.
const CSVHeader = "start_unix_nanos,tenant,op,table,tuples,bytes,status,enqueue_nanos,quiesce_nanos,total_nanos"

func (m *RequestMetrics) csvLine() string {
	return fmt.Sprintf("%d,%s,%s,%s,%d,%d,%d,%d,%d,%d\n",
		m.Start.UnixNano(), m.Tenant, m.Op, m.Table,
		m.Tuples, m.Bytes, m.Status, m.EnqueueNanos, m.QuiesceNanos, m.TotalNanos)
}

// opCounters aggregates one (op, status) cell of the request counters.
type opCounters struct {
	requests int64
	tuples   int64
	bytes    int64
}

// metricsSink aggregates RequestMetrics rows into /metrics counters and
// latency histograms, and optionally appends each row to a CSV log.
// Histogram observation is lock-free; the counter map takes a short mutex.
type metricsSink struct {
	mu       sync.Mutex
	counters map[[2]string]*opCounters // key: {op, status}
	csv      io.Writer
	csvErr   error

	latency map[string]*stats.Histogram // per-op total nanos; under mu for map access
	enqueue stats.Histogram
	quiesce stats.Histogram

	notifications int64 // subscription wake-ups delivered; under mu
}

func newMetricsSink(csv io.Writer) *metricsSink {
	s := &metricsSink{
		counters: make(map[[2]string]*opCounters),
		latency:  make(map[string]*stats.Histogram),
		csv:      csv,
	}
	if csv != nil {
		_, s.csvErr = io.WriteString(csv, CSVHeader+"\n")
	}
	return s
}

// record folds one finished request into the aggregates and the CSV log.
func (s *metricsSink) record(m RequestMetrics) {
	s.mu.Lock()
	key := [2]string{m.Op, fmt.Sprintf("%d", m.Status)}
	c := s.counters[key]
	if c == nil {
		c = &opCounters{}
		s.counters[key] = c
	}
	c.requests++
	c.tuples += m.Tuples
	c.bytes += m.Bytes
	h := s.latency[m.Op]
	if h == nil {
		h = &stats.Histogram{}
		s.latency[m.Op] = h
	}
	if s.csv != nil && s.csvErr == nil {
		_, s.csvErr = io.WriteString(s.csv, m.csvLine())
	}
	s.mu.Unlock()

	h.Observe(m.TotalNanos)
	if m.EnqueueNanos > 0 {
		s.enqueue.Observe(m.EnqueueNanos)
	}
	if m.QuiesceNanos > 0 {
		s.quiesce.Observe(m.QuiesceNanos)
	}
}

func (s *metricsSink) noteNotification() {
	s.mu.Lock()
	s.notifications++
	s.mu.Unlock()
}

// requestsServed returns the total request count across all ops.
func (s *metricsSink) requestsServed() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int64
	for _, c := range s.counters {
		n += c.requests
	}
	return n
}

// writeProm renders the aggregates in Prometheus text exposition format.
// tenants is sampled by the caller (it lives in the registry).
func (s *metricsSink) writeProm(w io.Writer, tenants int) {
	s.mu.Lock()
	keys := make([][2]string, 0, len(s.counters))
	for k := range s.counters {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	ops := make([]string, 0, len(s.latency))
	for op := range s.latency {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	notifications := s.notifications
	type cell struct {
		k [2]string
		c opCounters
	}
	cells := make([]cell, 0, len(keys))
	for _, k := range keys {
		cells = append(cells, cell{k, *s.counters[k]})
	}
	hists := make(map[string]*stats.Histogram, len(ops))
	for _, op := range ops {
		hists[op] = s.latency[op]
	}
	s.mu.Unlock()

	fmt.Fprintf(w, "# TYPE jstar_serve_requests_total counter\n")
	for _, c := range cells {
		fmt.Fprintf(w, "jstar_serve_requests_total{op=%q,code=%q} %d\n", c.k[0], c.k[1], c.c.requests)
	}
	fmt.Fprintf(w, "# TYPE jstar_serve_tuples_total counter\n")
	for _, c := range cells {
		fmt.Fprintf(w, "jstar_serve_tuples_total{op=%q,code=%q} %d\n", c.k[0], c.k[1], c.c.tuples)
	}
	fmt.Fprintf(w, "# TYPE jstar_serve_bytes_total counter\n")
	for _, c := range cells {
		fmt.Fprintf(w, "jstar_serve_bytes_total{op=%q,code=%q} %d\n", c.k[0], c.k[1], c.c.bytes)
	}
	fmt.Fprintf(w, "# TYPE jstar_serve_request_nanos summary\n")
	for _, op := range ops {
		sum := hists[op].Summary()
		for _, q := range []struct {
			label string
			v     int64
		}{{"0.5", sum.P50Nanos}, {"0.99", sum.P99Nanos}, {"0.999", sum.P999Nanos}} {
			fmt.Fprintf(w, "jstar_serve_request_nanos{op=%q,quantile=%q} %d\n", op, q.label, q.v)
		}
		fmt.Fprintf(w, "jstar_serve_request_nanos_count{op=%q} %d\n", op, sum.Count)
	}
	for _, hn := range []struct {
		name string
		h    *stats.Histogram
	}{{"jstar_serve_enqueue_nanos", &s.enqueue}, {"jstar_serve_quiesce_nanos", &s.quiesce}} {
		name, h := hn.name, hn.h
		sum := h.Summary()
		fmt.Fprintf(w, "# TYPE %s summary\n", name)
		for _, q := range []struct {
			label string
			v     int64
		}{{"0.5", sum.P50Nanos}, {"0.99", sum.P99Nanos}, {"0.999", sum.P999Nanos}} {
			fmt.Fprintf(w, "%s{quantile=%q} %d\n", name, q.label, q.v)
		}
		fmt.Fprintf(w, "%s_count %d\n", name, sum.Count)
	}
	fmt.Fprintf(w, "# TYPE jstar_serve_tenants gauge\njstar_serve_tenants %d\n", tenants)
	fmt.Fprintf(w, "# TYPE jstar_serve_notifications_total counter\njstar_serve_notifications_total %d\n", notifications)
}

// writeWALProm renders per-tenant durability rows after the request
// aggregates: WAL bytes on disk, group commits performed, and the age of
// the newest checkpoint. Non-durable tenants emit nothing.
func writeWALProm(w io.Writer, tenants []*Tenant) {
	durable := tenants[:0:0]
	for _, t := range tenants {
		if _, ok := t.Session.WALStats(); ok {
			durable = append(durable, t)
		}
	}
	if len(durable) == 0 {
		return
	}
	fmt.Fprintf(w, "# TYPE jstar_serve_wal_bytes_total counter\n")
	for _, t := range durable {
		st, _ := t.Session.WALStats()
		fmt.Fprintf(w, "jstar_serve_wal_bytes_total{tenant=%q} %d\n", t.Name, st.Bytes)
	}
	fmt.Fprintf(w, "# TYPE jstar_serve_wal_group_commits_total counter\n")
	for _, t := range durable {
		st, _ := t.Session.WALStats()
		fmt.Fprintf(w, "jstar_serve_wal_group_commits_total{tenant=%q} %d\n", t.Name, st.GroupCommits)
	}
	fmt.Fprintf(w, "# TYPE jstar_serve_wal_last_checkpoint_age_seconds gauge\n")
	for _, t := range durable {
		st, _ := t.Session.WALStats()
		age := -1.0 // never checkpointed
		if !st.LastCheckpoint.IsZero() {
			age = time.Since(st.LastCheckpoint).Seconds()
		}
		fmt.Fprintf(w, "jstar_serve_wal_last_checkpoint_age_seconds{tenant=%q} %g\n", t.Name, age)
	}
}
