// Package serve puts the engine's online Session on the wire: a
// multi-tenant HTTP front-end hosting many named programs in one process.
// Each tenant is a compiled JStar program with its own live Session,
// engine options (strategy, store plan, ingress shards, re-plan cadence)
// and quotas; clients stream tuples in (JSON or the length-prefixed binary
// batch format), force quiescent boundaries, run prefix queries against
// the quiesced Gamma stores, trigger live store migrations, and register
// query subscriptions that fire when a table's quiesced state changes
// (long-poll or SSE, driven by the engine's per-table change generations).
//
// The server is plain net/http: over TLS the stdlib negotiates HTTP/2
// automatically; over cleartext sockets it speaks HTTP/1.1 (the repo adds
// no dependencies, so there is no h2c path). Every request is measured
// into a flat RequestMetrics row, aggregated on a Prometheus-style
// /metrics endpoint and optionally appended to a CSV log.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"github.com/jstar-lang/jstar/internal/core"
	"github.com/jstar-lang/jstar/internal/gamma"
	"github.com/jstar-lang/jstar/internal/tuple"
	"github.com/jstar-lang/jstar/internal/wal"
)

var (
	errTenantExists = errors.New("serve: tenant already exists")
	errTenantQuota  = errors.New("serve: tenant quota exceeded")
)

// Config tunes a Server. Zero values pick the documented defaults.
type Config struct {
	// MaxTenants caps concurrently hosted sessions (default 64).
	MaxTenants int
	// MaxInflightPuts is the per-tenant default cap on concurrent
	// ingestion requests (default 32); TenantConfig can override per
	// tenant. Excess puts are rejected with 429 rather than queued, so a
	// flooding client observes backpressure instead of unbounded memory.
	// This is the fallback cap behind AdmitPendingFraction.
	MaxInflightPuts int
	// AdmitPendingFraction is the per-tenant default ingress-backpressure
	// admission threshold: a put gets 429 when the session's unabsorbed
	// ingress backlog exceeds this fraction of the ring capacity (default
	// 0.75). TenantConfig can override per tenant; a negative value
	// disables the ring check, leaving only the inflight semaphore.
	AdmitPendingFraction float64
	// MetricsCSV, when non-nil, receives one CSV row per served request
	// (header first; see CSVHeader).
	MetricsCSV io.Writer
	// LongPollTimeout bounds a subscription poll with no explicit timeout
	// parameter (default 30s, capped at 2m).
	LongPollTimeout time.Duration
	// TestWALFS, when non-nil, supplies the WAL filesystem for durable
	// tenants whose config names no wal_dir — the crash-fault injection
	// hook for tests (wal.FaultFS). Production tenants always name a
	// directory; this is never settable over the wire.
	TestWALFS func(tenant string) wal.FS
}

// Server hosts the tenant registry and the HTTP API. Create with New,
// mount Handler on any http.Server, Close to shut every session down.
type Server struct {
	cfg    Config
	reg    *registry
	met    *metricsSink
	mux    *http.ServeMux
	ctx    context.Context // parent of every tenant session
	cancel context.CancelFunc
}

// New builds a Server with its routes registered.
func New(cfg Config) *Server {
	if cfg.MaxTenants == 0 {
		cfg.MaxTenants = 64
	}
	if cfg.MaxInflightPuts <= 0 {
		cfg.MaxInflightPuts = 32
	}
	if cfg.AdmitPendingFraction == 0 {
		cfg.AdmitPendingFraction = 0.75
	}
	if cfg.LongPollTimeout <= 0 {
		cfg.LongPollTimeout = 30 * time.Second
	}
	if cfg.LongPollTimeout > 2*time.Minute {
		cfg.LongPollTimeout = 2 * time.Minute
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:    cfg,
		reg:    newRegistry(cfg.MaxTenants, cfg.TestWALFS),
		met:    newMetricsSink(cfg.MetricsCSV),
		mux:    http.NewServeMux(),
		ctx:    ctx,
		cancel: cancel,
	}
	s.routes()
	return s
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// RequestsServed returns the total number of requests measured so far —
// the load generator's smoke gate.
func (s *Server) RequestsServed() int64 { return s.met.requestsServed() }

// Close shuts down every tenant session. The HTTP listener is the
// caller's to close (the Server is just a handler).
func (s *Server) Close() {
	s.cancel()
	s.reg.closeAll()
}

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok\n")
	})
	s.mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		s.met.writeProm(w, s.reg.count())
		writeWALProm(w, s.reg.list())
	})
	s.mux.HandleFunc("POST /v1/tenants", s.instrument("create", s.handleCreate))
	s.mux.HandleFunc("GET /v1/tenants", s.instrument("list", s.handleList))
	s.mux.HandleFunc("GET /v1/tenants/{tenant}", s.instrument("info", s.handleInfo))
	s.mux.HandleFunc("DELETE /v1/tenants/{tenant}", s.instrument("close", s.handleClose))
	s.mux.HandleFunc("POST /v1/tenants/{tenant}/put", s.instrument("put", s.handlePut))
	s.mux.HandleFunc("POST /v1/tenants/{tenant}/quiesce", s.instrument("quiesce", s.handleQuiesce))
	s.mux.HandleFunc("GET /v1/tenants/{tenant}/query", s.instrument("query", s.handleQuery))
	s.mux.HandleFunc("GET /v1/tenants/{tenant}/snapshot", s.instrument("snapshot", s.handleSnapshot))
	s.mux.HandleFunc("POST /v1/tenants/{tenant}/migrate", s.instrument("migrate", s.handleMigrate))
	s.mux.HandleFunc("POST /v1/tenants/{tenant}/checkpoint", s.instrument("checkpoint", s.handleCheckpoint))
	s.mux.HandleFunc("POST /v1/tenants/{tenant}/subscribe", s.instrument("subscribe", s.handleSubscribe))
	s.mux.HandleFunc("GET /v1/tenants/{tenant}/subscriptions/{id}/poll", s.instrument("poll", s.handlePoll))
	s.mux.HandleFunc("GET /v1/tenants/{tenant}/subscriptions/{id}/events", s.instrument("events", s.handleEvents))
	s.mux.HandleFunc("DELETE /v1/tenants/{tenant}/subscriptions/{id}", s.instrument("unsubscribe", s.handleUnsubscribe))
}

// instrument wraps a handler with the flat per-request measurement: the
// handler fills in the metrics row (tuples, bytes, pipeline nanos) and
// returns the status it wrote; instrument stamps Start/Total and records.
func (s *Server) instrument(op string, fn func(http.ResponseWriter, *http.Request, *RequestMetrics) int) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		m := RequestMetrics{Start: time.Now(), Op: op, Tenant: r.PathValue("tenant")}
		m.Status = fn(w, r, &m)
		m.TotalNanos = time.Since(m.Start).Nanoseconds()
		s.met.record(m)
	}
}

// writeJSON writes v with the given status and returns the status, so
// handlers can end with `return writeJSON(...)`.
func writeJSON(w http.ResponseWriter, status int, v any) int {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
	return status
}

// fail maps an error to an HTTP status and writes the JSON error body.
func fail(w http.ResponseWriter, status int, err error) int {
	return writeJSON(w, status, map[string]string{"error": err.Error()})
}

// failErr classifies common engine errors onto statuses.
func failErr(w http.ResponseWriter, err error) int {
	switch {
	case errors.Is(err, core.ErrSessionClosed):
		return fail(w, http.StatusGone, err)
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return fail(w, http.StatusRequestTimeout, err)
	default:
		return fail(w, http.StatusInternalServerError, err)
	}
}

// tenant resolves the {tenant} path segment, writing 404 when absent.
func (s *Server) tenant(w http.ResponseWriter, r *http.Request) (*Tenant, int) {
	name := r.PathValue("tenant")
	t := s.reg.get(name)
	if t == nil {
		return nil, fail(w, http.StatusNotFound, fmt.Errorf("serve: no tenant %q", name))
	}
	return t, 0
}

// ---- lifecycle ----

type tenantInfo struct {
	Name     string           `json:"name"`
	Strategy string           `json:"strategy,omitempty"`
	Tables   []string         `json:"tables"`
	Versions map[string]int64 `json:"versions"`
	Subs     int              `json:"subscriptions"`
	// Durable tenants additionally report WAL counters and, when the
	// session was created over an existing log directory, what recovery
	// found there.
	Durable  bool               `json:"durable,omitempty"`
	WAL      *walInfo           `json:"wal,omitempty"`
	Recovery *core.RecoveryInfo `json:"recovery,omitempty"`
}

// walInfo is the JSON view of wal.Stats for the info endpoint.
type walInfo struct {
	Appended          uint64  `json:"appended"`
	DurableSeq        uint64  `json:"durable_seq"`
	Bytes             int64   `json:"bytes"`
	GroupCommits      int64   `json:"group_commits"`
	Segments          int     `json:"segments"`
	CheckpointSeq     uint64  `json:"checkpoint_seq"`
	CheckpointAgeSecs float64 `json:"checkpoint_age_seconds,omitempty"`
}

func (s *Server) info(t *Tenant) tenantInfo {
	info := tenantInfo{
		Name:     t.Name,
		Strategy: t.Config.Strategy,
		Versions: make(map[string]int64),
		Subs:     t.subs.count(),
	}
	for _, sch := range t.Prog.Tables() {
		info.Tables = append(info.Tables, sch.Name)
		if v, err := t.Session.TableVersion(sch.Name); err == nil {
			info.Versions[sch.Name] = v
		}
	}
	if st, ok := t.Session.WALStats(); ok {
		info.Durable = true
		wi := &walInfo{
			Appended:      st.Appended,
			DurableSeq:    st.DurableSeq,
			Bytes:         st.Bytes,
			GroupCommits:  st.GroupCommits,
			Segments:      st.Segments,
			CheckpointSeq: st.CheckpointSeq,
		}
		if !st.LastCheckpoint.IsZero() {
			wi.CheckpointAgeSecs = time.Since(st.LastCheckpoint).Seconds()
		}
		info.WAL = wi
		info.Recovery = t.Session.Recovery()
	}
	return info
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request, m *RequestMetrics) int {
	var cfg TenantConfig
	if err := json.NewDecoder(io.LimitReader(r.Body, 4<<20)).Decode(&cfg); err != nil {
		return fail(w, http.StatusBadRequest, err)
	}
	m.Tenant = cfg.Name
	t, err := s.reg.create(s.ctx, cfg, s.cfg.MaxInflightPuts, s.cfg.AdmitPendingFraction)
	switch {
	case errors.Is(err, errTenantExists):
		return fail(w, http.StatusConflict, err)
	case errors.Is(err, errTenantQuota):
		return fail(w, http.StatusTooManyRequests, err)
	case err != nil:
		return fail(w, http.StatusBadRequest, err)
	}
	return writeJSON(w, http.StatusCreated, s.info(t))
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request, m *RequestMetrics) int {
	out := []tenantInfo{}
	for _, t := range s.reg.list() {
		out = append(out, s.info(t))
	}
	return writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request, m *RequestMetrics) int {
	t, status := s.tenant(w, r)
	if t == nil {
		return status
	}
	return writeJSON(w, http.StatusOK, s.info(t))
}

func (s *Server) handleClose(w http.ResponseWriter, r *http.Request, m *RequestMetrics) int {
	if !s.reg.remove(r.PathValue("tenant")) {
		return fail(w, http.StatusNotFound, fmt.Errorf("serve: no tenant %q", r.PathValue("tenant")))
	}
	return writeJSON(w, http.StatusOK, map[string]bool{"closed": true})
}

// ---- ingestion ----

// countingReader tracks bytes drained from a request body.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

func (s *Server) handlePut(w http.ResponseWriter, r *http.Request, m *RequestMetrics) int {
	t, status := s.tenant(w, r)
	if t == nil {
		return status
	}
	if err := t.admitPut(); err != nil {
		w.Header().Set("Retry-After", "1")
		return fail(w, http.StatusTooManyRequests, err)
	}
	defer t.releasePut()
	body := &countingReader{r: r.Body}
	put := func(ts ...*tuple.Tuple) error {
		t0 := time.Now()
		err := t.Session.PutBatch(ts...)
		m.EnqueueNanos += time.Since(t0).Nanoseconds()
		return err
	}
	var (
		tuples int64
		err    error
	)
	if r.Header.Get("Content-Type") == BinaryContentType {
		tuples, err = binaryIngest(body, t.Prog, put)
	} else {
		tuples, err = jsonIngest(body, t.Prog, put)
	}
	m.Tuples, m.Bytes = tuples, body.n
	if err != nil {
		if errors.Is(err, core.ErrSessionClosed) {
			return failErr(w, err)
		}
		return fail(w, http.StatusBadRequest, err)
	}
	return writeJSON(w, http.StatusOK, map[string]int64{
		"tuples":        tuples,
		"bytes":         body.n,
		"enqueue_nanos": m.EnqueueNanos,
	})
}

// ---- quiescence, query, migration ----

func (s *Server) handleQuiesce(w http.ResponseWriter, r *http.Request, m *RequestMetrics) int {
	t, status := s.tenant(w, r)
	if t == nil {
		return status
	}
	t0 := time.Now()
	err := t.Session.Quiesce(r.Context())
	m.QuiesceNanos = time.Since(t0).Nanoseconds()
	if err != nil {
		return failErr(w, err)
	}
	versions := make(map[string]int64)
	for _, sch := range t.Prog.Tables() {
		if v, verr := t.Session.TableVersion(sch.Name); verr == nil {
			versions[sch.Name] = v
		}
	}
	st := t.Session.Stats()
	return writeJSON(w, http.StatusOK, map[string]any{
		"quiesce_nanos": m.QuiesceNanos,
		"steps":         st.Steps,
		"versions":      versions,
	})
}

// queryTarget resolves the table/prefix query parameters shared by query
// and snapshot.
func (s *Server) queryTarget(w http.ResponseWriter, r *http.Request, t *Tenant) (*gamma.Query, *tuple.Schema, int) {
	name := r.URL.Query().Get("table")
	sch := t.Prog.Schema(name)
	if sch == nil {
		return nil, nil, fail(w, http.StatusNotFound, fmt.Errorf("serve: tenant %s has no table %q", t.Name, name))
	}
	prefix, err := prefixFromJSON(sch, r.URL.Query().Get("prefix"))
	if err != nil {
		return nil, nil, fail(w, http.StatusBadRequest, err)
	}
	return &gamma.Query{Prefix: prefix}, sch, 0
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request, m *RequestMetrics) int {
	t, status := s.tenant(w, r)
	if t == nil {
		return status
	}
	q, sch, status := s.queryTarget(w, r, t)
	if q == nil {
		return status
	}
	m.Table = sch.Name
	var rows []*tuple.Tuple
	t.Session.Query(sch, *q, func(tp *tuple.Tuple) bool {
		rows = append(rows, tp)
		return true
	})
	m.Tuples = int64(len(rows))
	if v, err := t.Session.TableVersion(sch.Name); err == nil {
		w.Header().Set("X-Jstar-Version", strconv.FormatInt(v, 10))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	out := RowsJSON(rows)
	m.Bytes = int64(len(out))
	w.Write(out)
	return http.StatusOK
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request, m *RequestMetrics) int {
	t, status := s.tenant(w, r)
	if t == nil {
		return status
	}
	name := r.URL.Query().Get("table")
	sch := t.Prog.Schema(name)
	if sch == nil {
		return fail(w, http.StatusNotFound, fmt.Errorf("serve: tenant %s has no table %q", t.Name, name))
	}
	m.Table = name
	rows := t.Session.Snapshot(sch)
	m.Tuples = int64(len(rows))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	out := RowsJSON(rows)
	m.Bytes = int64(len(out))
	w.Write(out)
	return http.StatusOK
}

func (s *Server) handleMigrate(w http.ResponseWriter, r *http.Request, m *RequestMetrics) int {
	t, status := s.tenant(w, r)
	if t == nil {
		return status
	}
	var body struct {
		Table string `json:"table"`
		Spec  string `json:"spec"`
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&body); err != nil {
		return fail(w, http.StatusBadRequest, err)
	}
	m.Table = body.Table
	if err := t.Session.Migrate(body.Table, body.Spec); err != nil {
		if errors.Is(err, core.ErrSessionClosed) {
			return failErr(w, err)
		}
		return fail(w, http.StatusBadRequest, err)
	}
	return writeJSON(w, http.StatusOK, map[string]string{"table": body.Table, "spec": body.Spec})
}

// handleCheckpoint forces a Gamma checkpoint at the next quiescent
// boundary and reports what it covered. Only durable tenants (created
// with a durability config) accept it.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request, m *RequestMetrics) int {
	t, status := s.tenant(w, r)
	if t == nil {
		return status
	}
	info, err := t.Session.Checkpoint(r.Context())
	if err != nil {
		if errors.Is(err, core.ErrSessionClosed) {
			return failErr(w, err)
		}
		return fail(w, http.StatusBadRequest, err)
	}
	m.Tuples = int64(info.Tuples)
	return writeJSON(w, http.StatusOK, map[string]any{
		"seq":           info.Seq,
		"tables":        info.Tables,
		"tuples":        info.Tuples,
		"elapsed_nanos": info.Elapsed.Nanoseconds(),
	})
}

// ---- subscriptions ----

func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request, m *RequestMetrics) int {
	t, status := s.tenant(w, r)
	if t == nil {
		return status
	}
	var body struct {
		Table  string `json:"table"`
		Prefix string `json:"prefix,omitempty"`
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&body); err != nil {
		return fail(w, http.StatusBadRequest, err)
	}
	m.Table = body.Table
	sch := t.Prog.Schema(body.Table)
	if sch == nil {
		return fail(w, http.StatusNotFound, fmt.Errorf("serve: tenant %s has no table %q", t.Name, body.Table))
	}
	prefix, err := prefixFromJSON(sch, body.Prefix)
	if err != nil {
		return fail(w, http.StatusBadRequest, err)
	}
	// A prefix subscriber arms the engine's per-bucket dirty tracking
	// before reading its watermark, so every window after the watermark
	// carries bucket information for the filter.
	if len(prefix) > 0 {
		t.Session.TrackPrefixes()
	}
	since, err := t.Session.TableVersion(body.Table)
	if err != nil {
		return failErr(w, err)
	}
	sub := t.subs.add(body.Table, body.Prefix, prefix, since)
	return writeJSON(w, http.StatusCreated, map[string]any{
		"id":      sub.ID,
		"table":   sub.Table,
		"version": since,
	})
}

// pollSub resolves the {id} path segment against the tenant's hub.
func pollSub(w http.ResponseWriter, r *http.Request, t *Tenant) (*subscription, int) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		return nil, fail(w, http.StatusBadRequest, fmt.Errorf("serve: bad subscription id %q", r.PathValue("id")))
	}
	sub := t.subs.get(id)
	if sub == nil {
		return nil, fail(w, http.StatusNotFound, fmt.Errorf("serve: tenant %s has no subscription %d", t.Name, id))
	}
	return sub, 0
}

func (s *Server) handlePoll(w http.ResponseWriter, r *http.Request, m *RequestMetrics) int {
	t, status := s.tenant(w, r)
	if t == nil {
		return status
	}
	sub, status := pollSub(w, r, t)
	if sub == nil {
		return status
	}
	m.Table = sub.Table
	since, err := sub.since(r.URL.Query().Get("since"))
	if err != nil {
		return fail(w, http.StatusBadRequest, err)
	}
	timeout := s.cfg.LongPollTimeout
	if raw := r.URL.Query().Get("timeout"); raw != "" {
		d, perr := time.ParseDuration(raw)
		if perr != nil || d <= 0 {
			return fail(w, http.StatusBadRequest, fmt.Errorf("serve: bad timeout %q", raw))
		}
		if d < timeout {
			timeout = d
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	v, err := sub.waitChange(ctx, t.Session, since)
	if errors.Is(err, context.DeadlineExceeded) {
		w.WriteHeader(http.StatusNoContent) // no change inside the window
		return http.StatusNoContent
	}
	if err != nil {
		return failErr(w, err)
	}
	sub.ack(v)
	s.met.noteNotification()
	return writeJSON(w, http.StatusOK, map[string]any{
		"id":      sub.ID,
		"table":   sub.Table,
		"version": v,
	})
}

// handleEvents streams subscription notifications as server-sent events:
// one `change` event per quiesced-state change of the table, carrying the
// new generation. The stream opens with a `hello` event naming the current
// generation so the client can detect changes it raced with.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request, m *RequestMetrics) int {
	t, status := s.tenant(w, r)
	if t == nil {
		return status
	}
	sub, status := pollSub(w, r, t)
	if sub == nil {
		return status
	}
	m.Table = sub.Table
	flusher, ok := w.(http.Flusher)
	if !ok {
		return fail(w, http.StatusNotImplemented, errors.New("serve: streaming unsupported"))
	}
	since, err := sub.since(r.URL.Query().Get("since"))
	if err != nil {
		return fail(w, http.StatusBadRequest, err)
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, "event: hello\ndata: {\"table\":%q,\"version\":%d}\n\n", sub.Table, since)
	flusher.Flush()
	for {
		v, err := sub.waitChange(r.Context(), t.Session, since)
		if err != nil {
			// Client gone, session closed, or failed: end the stream.
			return http.StatusOK
		}
		since = v
		sub.ack(v)
		s.met.noteNotification()
		fmt.Fprintf(w, "event: change\ndata: {\"table\":%q,\"version\":%d}\n\n", sub.Table, v)
		flusher.Flush()
	}
}

func (s *Server) handleUnsubscribe(w http.ResponseWriter, r *http.Request, m *RequestMetrics) int {
	t, status := s.tenant(w, r)
	if t == nil {
		return status
	}
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil || !t.subs.remove(id) {
		return fail(w, http.StatusNotFound, fmt.Errorf("serve: tenant %s has no subscription %s", t.Name, r.PathValue("id")))
	}
	return writeJSON(w, http.StatusOK, map[string]bool{"removed": true})
}
