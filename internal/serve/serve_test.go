package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/jstar-lang/jstar/internal/core"
	"github.com/jstar-lang/jstar/internal/exec"
	"github.com/jstar-lang/jstar/internal/gamma"
	"github.com/jstar-lang/jstar/internal/lang"
	"github.com/jstar-lang/jstar/internal/serve"
	"github.com/jstar-lang/jstar/internal/tuple"
)

// The two parity apps. Both are driven entirely by external puts, so the
// same event stream can feed a wire session and an in-process session.

// doubleSrc fans every Event(n) out to Out(n, 2n) — order-free ingestion.
const doubleSrc = `
table Event(int n) orderby (Event)
table Out(int n, int v) orderby (Out)
order Event < Out

foreach (Event e) {
  put new Out(e.n, e.n * 2)
}
`

// dijkstraSrc is the paper's §1.2 shortest path with the graph and source
// estimate supplied externally — exercises seq ordering and uniq queries
// behind the wire.
const dijkstraSrc = `
table Edge(int from, int to, int value) orderby (Edge)
table Estimate(int vertex, int distance) orderby (Int, seq distance, Estimate)
table Done(int vertex -> int distance) orderby (Int, seq distance, Done)
order Edge < Int
order Estimate < Done

foreach (Estimate dist) {
  if (get uniq? Done(dist.vertex, [distance < dist.distance]) == null) {
    put new Done(dist.vertex, dist.distance)
    for (edge : get Edge(dist.vertex)) {
      if (get uniq? Done(edge.to) == null) {
        put new Estimate(edge.to, dist.distance + edge.value)
      }
    }
  }
}
`

// event is one externally injected tuple, table + int fields.
type event struct {
	table string
	vals  []int64
}

func doubleEvents(n int) []event {
	evs := make([]event, 0, n)
	for i := 0; i < n; i++ {
		evs = append(evs, event{"Event", []int64{int64(i)}})
	}
	return evs
}

func dijkstraEvents() []event {
	return []event{
		{"Edge", []int64{0, 2, 2}},
		{"Edge", []int64{2, 1, 3}},
		{"Edge", []int64{1, 3, 1}},
		{"Edge", []int64{0, 3, 9}},
		{"Edge", []int64{3, 4, 1}},
		{"Estimate", []int64{0, 0}},
	}
}

// runInProcess drives src with evs through a plain in-process Session and
// returns each table's canonical rows JSON.
func runInProcess(t *testing.T, src, strategy string, evs []event, tables []string) map[string][]byte {
	t.Helper()
	prog, err := lang.CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.Options{Quiet: true}
	if strategy != "" {
		st, err := exec.ParseStrategy(strategy)
		if err != nil {
			t.Fatal(err)
		}
		opts.Strategy = st
	}
	sess, err := prog.Start(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	for _, ev := range evs {
		sch := prog.Schema(ev.table)
		fields := make([]tuple.Value, len(ev.vals))
		for i, v := range ev.vals {
			fields[i] = tuple.Int(v)
		}
		if err := sess.PutBatch(tuple.New(sch, fields...)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sess.Quiesce(context.Background()); err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]byte)
	for _, name := range tables {
		sch := prog.Schema(name)
		var rows []*tuple.Tuple
		sess.Query(sch, gamma.Query{}, func(tp *tuple.Tuple) bool {
			rows = append(rows, tp)
			return true
		})
		out[name] = serve.RowsJSON(rows)
	}
	return out
}

// binaryFrames encodes evs grouped into per-event frames (worst case:
// maximal frame count) using the wire codec.
func binaryFrames(t *testing.T, prog *core.Program, evs []event) []byte {
	t.Helper()
	var out []byte
	for _, ev := range evs {
		sch := prog.Schema(ev.table)
		row := make([]tuple.Value, len(ev.vals))
		for i, v := range ev.vals {
			row[i] = tuple.Int(v)
		}
		var err error
		out, err = serve.AppendFrame(out, sch, [][]tuple.Value{row})
		if err != nil {
			t.Fatal(err)
		}
	}
	return out
}

func jsonRows(evs []event, table string) [][]any {
	var rows [][]any
	for _, ev := range evs {
		if ev.table != table {
			continue
		}
		row := make([]any, len(ev.vals))
		for i, v := range ev.vals {
			row[i] = v
		}
		rows = append(rows, row)
	}
	return rows
}

func newTestServer(t *testing.T, cfg serve.Config) (*serve.Server, *serve.Client) {
	t.Helper()
	srv := serve.New(cfg)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { hs.Close(); srv.Close() })
	return srv, serve.NewClient(hs.URL)
}

// TestServeParity is the tentpole acceptance test: the same event stream
// through the wire (PutBatch → Quiesce → Query over real sockets) and
// through an in-process Session must produce byte-identical canonical
// rows, for two apps and all three strategies.
func TestServeParity(t *testing.T) {
	apps := []struct {
		name   string
		src    string
		evs    []event
		tables []string
	}{
		{"double", doubleSrc, doubleEvents(200), []string{"Event", "Out"}},
		{"dijkstra", dijkstraSrc, dijkstraEvents(), []string{"Edge", "Estimate", "Done"}},
	}
	for _, app := range apps {
		for _, strategy := range []string{"seq", "forkjoin", "pipelined"} {
			t.Run(app.name+"/"+strategy, func(t *testing.T) {
				_, client := newTestServer(t, serve.Config{})
				ctx := context.Background()
				tenant := app.name + "-" + strategy
				if _, err := client.CreateTenant(ctx, serve.TenantConfig{
					Name: tenant, Source: app.src, Strategy: strategy,
				}); err != nil {
					t.Fatal(err)
				}
				// Half the stream over the binary codec, half over JSON, so
				// both wire formats are on the parity path.
				prog, err := lang.CompileSource(app.src)
				if err != nil {
					t.Fatal(err)
				}
				half := len(app.evs) / 2
				if half > 0 {
					if err := client.PutBinary(ctx, tenant, binaryFrames(t, prog, app.evs[:half])); err != nil {
						t.Fatal(err)
					}
				}
				for _, table := range app.tables {
					rows := jsonRows(app.evs[half:], table)
					if len(rows) == 0 {
						continue
					}
					if err := client.PutJSON(ctx, tenant, table, rows); err != nil {
						t.Fatal(err)
					}
				}
				if _, err := client.Quiesce(ctx, tenant); err != nil {
					t.Fatal(err)
				}
				want := inProcessRows(t, app.src, strategy, app.evs, app.tables)
				for _, table := range app.tables {
					got, err := client.Query(ctx, tenant, table, "")
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(got, want[table]) {
						t.Errorf("%s: wire rows != in-process rows\n wire: %s\n proc: %s",
							table, got, want[table])
					}
				}
				if err := client.CloseTenant(ctx, tenant); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// inProcessRows mirrors the wire run with a local Session.
func inProcessRows(t *testing.T, src, strategy string, evs []event, tables []string) map[string][]byte {
	t.Helper()
	return runInProcess(t, src, strategy, evs, tables)
}

// TestServePrefixQuery checks prefix decoding and filtering over the wire.
func TestServePrefixQuery(t *testing.T) {
	_, client := newTestServer(t, serve.Config{})
	ctx := context.Background()
	if _, err := client.CreateTenant(ctx, serve.TenantConfig{Name: "t", Source: dijkstraSrc}); err != nil {
		t.Fatal(err)
	}
	if err := client.PutJSON(ctx, "t", "Edge", [][]any{{0, 1, 5}, {0, 2, 7}, {1, 2, 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Quiesce(ctx, "t"); err != nil {
		t.Fatal(err)
	}
	got, err := client.Query(ctx, "t", "Edge", "[0]")
	if err != nil {
		t.Fatal(err)
	}
	if want := `[[0,1,5],[0,2,7]]`; string(got) != want {
		t.Errorf("prefix query = %s, want %s", got, want)
	}
}

// TestServeSubscription drives the long-poll path: a subscriber registered
// mid-run is woken once per change and not woken without one.
func TestServeSubscription(t *testing.T) {
	_, client := newTestServer(t, serve.Config{})
	ctx := context.Background()
	if _, err := client.CreateTenant(ctx, serve.TenantConfig{Name: "t", Source: doubleSrc}); err != nil {
		t.Fatal(err)
	}
	// Establish some pre-subscription history the subscriber must not see.
	if err := client.PutJSON(ctx, "t", "Event", [][]any{{1}, {2}}); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Quiesce(ctx, "t"); err != nil {
		t.Fatal(err)
	}
	sub, err := client.Subscribe(ctx, "t", "Out", "")
	if err != nil {
		t.Fatal(err)
	}
	// No change since registration: the poll must time out, not fire.
	if _, ok, err := client.Poll(ctx, "t", sub.ID, sub.Version, 150*time.Millisecond); err != nil {
		t.Fatal(err)
	} else if ok {
		t.Fatal("phantom notification: poll fired with no change")
	}
	since := sub.Version
	for i := 0; i < 3; i++ {
		if err := client.PutJSON(ctx, "t", "Event", [][]any{{100 + i}}); err != nil {
			t.Fatal(err)
		}
		if _, err := client.Quiesce(ctx, "t"); err != nil {
			t.Fatal(err)
		}
		v, ok, err := client.Poll(ctx, "t", sub.ID, since, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("missed notification after change %d", i)
		}
		if v != since+1 {
			t.Fatalf("poll %d returned version %d, want %d", i, v, since+1)
		}
		since = v
	}
	// A duplicate put changes nothing in Gamma: no notification.
	if err := client.PutJSON(ctx, "t", "Event", [][]any{{100}}); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Quiesce(ctx, "t"); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := client.Poll(ctx, "t", sub.ID, since, 150*time.Millisecond); err != nil {
		t.Fatal(err)
	} else if ok {
		t.Fatal("phantom notification: duplicate put bumped the version")
	}
	if err := client.Unsubscribe(ctx, "t", sub.ID); err != nil {
		t.Fatal(err)
	}
	if _, _, err := client.Poll(ctx, "t", sub.ID, since, time.Second); !serve.IsStatus(err, http.StatusNotFound) {
		t.Fatalf("poll after unsubscribe: err = %v, want 404", err)
	}
}

// TestServeSSE streams change events while another client ingests.
func TestServeSSE(t *testing.T) {
	_, client := newTestServer(t, serve.Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := client.CreateTenant(ctx, serve.TenantConfig{Name: "t", Source: doubleSrc}); err != nil {
		t.Fatal(err)
	}
	sub, err := client.Subscribe(ctx, "t", "Out", "")
	if err != nil {
		t.Fatal(err)
	}
	events := make(chan serve.SSEEvent, 16)
	streamDone := make(chan error, 1)
	go func() {
		streamDone <- client.Events(ctx, "t", sub.ID, func(ev serve.SSEEvent) bool {
			events <- ev
			return ev.Event != "change" || ev.Version < 2
		})
	}()
	// First event is the hello with the registration version.
	ev := <-events
	if ev.Event != "hello" {
		t.Fatalf("first SSE event = %q, want hello", ev.Event)
	}
	for i := 0; i < 2; i++ {
		if err := client.PutJSON(ctx, "t", "Event", [][]any{{10 + i}}); err != nil {
			t.Fatal(err)
		}
		if _, err := client.Quiesce(ctx, "t"); err != nil {
			t.Fatal(err)
		}
		ev := <-events
		if ev.Event != "change" || ev.Table != "Out" || ev.Version != int64(i+1) {
			t.Fatalf("SSE event %d = %+v, want change Out v%d", i, ev, i+1)
		}
	}
	if err := <-streamDone; err != nil {
		t.Fatal(err)
	}
}

// TestServeLifecycleAndQuotas covers tenant duplicate/missing handling and
// both quota layers.
func TestServeLifecycleAndQuotas(t *testing.T) {
	_, client := newTestServer(t, serve.Config{MaxTenants: 2})
	ctx := context.Background()
	if _, err := client.CreateTenant(ctx, serve.TenantConfig{Name: "a", Source: doubleSrc}); err != nil {
		t.Fatal(err)
	}
	if _, err := client.CreateTenant(ctx, serve.TenantConfig{Name: "a", Source: doubleSrc}); !serve.IsStatus(err, http.StatusConflict) {
		t.Fatalf("duplicate create: err = %v, want 409", err)
	}
	if _, err := client.CreateTenant(ctx, serve.TenantConfig{Name: "bad", Source: "table ???"}); !serve.IsStatus(err, http.StatusBadRequest) {
		t.Fatalf("bad source: err = %v, want 400", err)
	}
	if _, err := client.CreateTenant(ctx, serve.TenantConfig{Name: "b", Source: doubleSrc}); err != nil {
		t.Fatal(err)
	}
	if _, err := client.CreateTenant(ctx, serve.TenantConfig{Name: "c", Source: doubleSrc}); !serve.IsStatus(err, http.StatusTooManyRequests) {
		t.Fatalf("tenant quota: err = %v, want 429", err)
	}
	if err := client.PutJSON(ctx, "nope", "Event", [][]any{{1}}); !serve.IsStatus(err, http.StatusNotFound) {
		t.Fatalf("put to missing tenant: err = %v, want 404", err)
	}
	if err := client.CloseTenant(ctx, "b"); err != nil {
		t.Fatal(err)
	}
	if err := client.CloseTenant(ctx, "b"); !serve.IsStatus(err, http.StatusNotFound) {
		t.Fatalf("double close: err = %v, want 404", err)
	}
	// Freed slot is reusable.
	if _, err := client.CreateTenant(ctx, serve.TenantConfig{Name: "c", Source: doubleSrc}); err != nil {
		t.Fatal(err)
	}
}

// TestServeMigrate round-trips a live store migration over the wire.
func TestServeMigrate(t *testing.T) {
	_, client := newTestServer(t, serve.Config{})
	ctx := context.Background()
	if _, err := client.CreateTenant(ctx, serve.TenantConfig{Name: "t", Source: doubleSrc}); err != nil {
		t.Fatal(err)
	}
	if err := client.PutJSON(ctx, "t", "Event", [][]any{{1}, {2}, {3}}); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Quiesce(ctx, "t"); err != nil {
		t.Fatal(err)
	}
	if err := client.Migrate(ctx, "t", "Out", "inthash:1"); err != nil {
		t.Fatal(err)
	}
	got, err := client.Query(ctx, "t", "Out", "")
	if err != nil {
		t.Fatal(err)
	}
	if want := `[[1,2],[2,4],[3,6]]`; string(got) != want {
		t.Errorf("post-migration query = %s, want %s", got, want)
	}
	if err := client.Migrate(ctx, "t", "Out", "nosuchkind"); !serve.IsStatus(err, http.StatusBadRequest) {
		t.Fatalf("bad spec: err = %v, want 400", err)
	}
}

// TestServeMetricsEndpoint checks the Prometheus rendering and the CSV log.
func TestServeMetricsEndpoint(t *testing.T) {
	var csv bytes.Buffer
	srv, client := newTestServer(t, serve.Config{MetricsCSV: &csv})
	ctx := context.Background()
	if _, err := client.CreateTenant(ctx, serve.TenantConfig{Name: "t", Source: doubleSrc}); err != nil {
		t.Fatal(err)
	}
	if err := client.PutJSON(ctx, "t", "Event", [][]any{{1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Quiesce(ctx, "t"); err != nil {
		t.Fatal(err)
	}
	resp, err := client.HTTP.Get(client.Base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		`jstar_serve_requests_total{op="put",code="200"} 1`,
		`jstar_serve_tuples_total{op="put",code="200"} 1`,
		`jstar_serve_tenants 1`,
		`jstar_serve_enqueue_nanos_count 1`,
		`jstar_serve_quiesce_nanos_count 1`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q\n%s", want, body)
		}
	}
	if srv.RequestsServed() < 3 {
		t.Errorf("RequestsServed = %d, want >= 3", srv.RequestsServed())
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if lines[0] != serve.CSVHeader {
		t.Errorf("CSV header = %q", lines[0])
	}
	if len(lines) < 4 {
		t.Errorf("CSV rows = %d, want >= 4\n%s", len(lines)-1, csv.String())
	}
	var putRow string
	for _, l := range lines[1:] {
		if strings.Contains(l, ",put,") {
			putRow = l
		}
	}
	if putRow == "" {
		t.Fatalf("no put row in CSV:\n%s", csv.String())
	}
	cols := strings.Split(putRow, ",")
	if len(cols) != len(strings.Split(serve.CSVHeader, ",")) {
		t.Errorf("put row has %d columns: %q", len(cols), putRow)
	}
}

// TestServeInflightQuota holds one slow put and checks a second is shed.
func TestServeInflightQuota(t *testing.T) {
	_, client := newTestServer(t, serve.Config{})
	ctx := context.Background()
	if _, err := client.CreateTenant(ctx, serve.TenantConfig{
		Name: "t", Source: doubleSrc, MaxInflightPuts: 1,
	}); err != nil {
		t.Fatal(err)
	}
	// A pipe body lets us hold the first put open inside the handler.
	pr, pw := io.Pipe()
	first := make(chan error, 1)
	go func() {
		req, _ := http.NewRequest(http.MethodPost, client.Base+"/v1/tenants/t/put", pr)
		req.Header.Set("Content-Type", serve.JSONContentType)
		resp, err := client.HTTP.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		first <- err
	}()
	// Wait for the first request to occupy the slot, then collide.
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := client.PutJSON(ctx, "t", "Event", [][]any{{1}})
		if serve.IsStatus(err, http.StatusTooManyRequests) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("never observed 429 while a put held the only slot")
		}
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Fprint(pw, `{"table":"Event","rows":[[42]]}`)
	pw.Close()
	if err := <-first; err != nil {
		t.Fatal(err)
	}
}

// TestServeBinaryRejectsGarbage: a corrupt stream must 400, not hang.
func TestServeBinaryRejectsGarbage(t *testing.T) {
	_, client := newTestServer(t, serve.Config{})
	ctx := context.Background()
	if _, err := client.CreateTenant(ctx, serve.TenantConfig{Name: "t", Source: doubleSrc}); err != nil {
		t.Fatal(err)
	}
	if err := client.PutBinary(ctx, "t", []byte{9, 'N', 'o', 'T'}); !serve.IsStatus(err, http.StatusBadRequest) {
		t.Fatalf("garbage stream: err = %v, want 400", err)
	}
}

// TestTenantInfoVersions: the info endpoint exposes change generations.
func TestTenantInfoVersions(t *testing.T) {
	_, client := newTestServer(t, serve.Config{})
	ctx := context.Background()
	if _, err := client.CreateTenant(ctx, serve.TenantConfig{
		Name: "t", Source: doubleSrc, Strategy: "seq",
		StorePlan: map[string]string{"Out": "hash:1"}, IngressShards: 2,
	}); err != nil {
		t.Fatal(err)
	}
	if err := client.PutJSON(ctx, "t", "Event", [][]any{{7}}); err != nil {
		t.Fatal(err)
	}
	res, err := client.Quiesce(ctx, "t")
	if err != nil {
		t.Fatal(err)
	}
	if res.Versions["Event"] != 1 || res.Versions["Out"] != 1 {
		t.Errorf("versions after first change = %v, want Event/Out at 1", res.Versions)
	}
	resp, err := client.HTTP.Get(client.Base + "/v1/tenants/t")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info struct {
		Versions map[string]int64 `json:"versions"`
		Tables   []string         `json:"tables"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.Versions["Out"] != 1 || len(info.Tables) != 2 {
		t.Errorf("info = %+v", info)
	}
}

// TestServePrefixFilteredSubscription pins the per-subscription prefix
// filter: a subscriber watching one key prefix must sleep through table
// changes that only touch other prefixes, and still wake for its own.
func TestServePrefixFilteredSubscription(t *testing.T) {
	_, client := newTestServer(t, serve.Config{})
	ctx := context.Background()
	if _, err := client.CreateTenant(ctx, serve.TenantConfig{Name: "t", Source: doubleSrc}); err != nil {
		t.Fatal(err)
	}
	// Pick two keys hashing to different prefix buckets, so the filter has
	// something to distinguish (bucket collisions wake spuriously by design).
	mine := int64(5)
	other := int64(-1)
	for v := int64(6); v < 200; v++ {
		if core.PrefixBucket(tuple.Int(v)) != core.PrefixBucket(tuple.Int(mine)) {
			other = v
			break
		}
	}
	if other < 0 {
		t.Fatal("no second prefix bucket found in 200 keys")
	}
	sub, err := client.Subscribe(ctx, "t", "Out", fmt.Sprintf("[%d]", mine))
	if err != nil {
		t.Fatal(err)
	}
	since := sub.Version
	// A change to a different prefix bumps the table version but must not
	// wake the filtered subscriber.
	if err := client.PutJSON(ctx, "t", "Event", [][]any{{other}}); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Quiesce(ctx, "t"); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := client.Poll(ctx, "t", sub.ID, since, 250*time.Millisecond); err != nil {
		t.Fatal(err)
	} else if ok {
		t.Fatal("filtered subscriber woke for a foreign-prefix change")
	}
	// A change to the watched prefix must wake it.
	if err := client.PutJSON(ctx, "t", "Event", [][]any{{mine}}); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Quiesce(ctx, "t"); err != nil {
		t.Fatal(err)
	}
	v, ok, err := client.Poll(ctx, "t", sub.ID, since, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("filtered subscriber missed a change to its own prefix")
	}
	if v <= since {
		t.Fatalf("poll version %d did not advance past %d", v, since)
	}
	// An unfiltered subscriber on the same table sees every change.
	all, err := client.Subscribe(ctx, "t", "Out", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := client.PutJSON(ctx, "t", "Event", [][]any{{other + 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Quiesce(ctx, "t"); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := client.Poll(ctx, "t", all.ID, all.Version, 5*time.Second); err != nil || !ok {
		t.Fatalf("unfiltered subscriber: ok=%v err=%v, want a wakeup", ok, err)
	}
}
