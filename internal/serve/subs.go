package serve

import (
	"context"
	"fmt"
	"sync"

	"github.com/jstar-lang/jstar/internal/core"
	"github.com/jstar-lang/jstar/internal/tuple"
)

// subscription is one registered query subscription: a table plus an
// optional prefix the client re-queries with, and the last change
// generation the client acknowledged. Notification granularity is the
// table's quiesced-change generation (Session.WaitChange): the client is
// woken when the table's quiesced state changes and then re-runs its
// prefix query, so it sees exactly the sequence of quiesced states after
// registration — the generation counter is monotonic and bumped before
// waiters wake, which rules out both missed and phantom notifications.
//
// A prefix subscription additionally filters wakeups through the engine's
// per-bucket dirty tracking (core.PrefixBucket over the leading prefix
// value): a table change whose quiescent window never touched the
// subscriber's bucket is swallowed instead of waking the client. The
// filter is conservative — bucket collisions or windows without bucket
// information wake spuriously, but a change to the prefix is never missed.
type subscription struct {
	ID     int64         `json:"id"`
	Table  string        `json:"table"`
	Prefix string        `json:"prefix,omitempty"` // raw JSON array, echoed back
	prefix []tuple.Value // decoded once at registration

	filtered bool // prefix given: gate wakeups on the bucket's generation
	bucket   int  // core.PrefixBucket of prefix[0]

	mu       sync.Mutex
	lastSeen int64 // highest generation acknowledged by a poll
}

// waitChange is Session.WaitChange with the subscription's prefix filter
// applied: table-generation wakeups whose prefix bucket has not changed
// past the caller's watermark re-arm instead of returning, so a filtered
// long-poll only completes when the subscriber's own key range did.
func (s *subscription) waitChange(ctx context.Context, sess *core.Session, since int64) (int64, error) {
	cur := since
	for {
		v, err := sess.WaitChange(ctx, s.Table, cur)
		if err != nil || !s.filtered {
			return v, err
		}
		if pv, perr := sess.PrefixVersion(s.Table, s.bucket); perr != nil || pv > since {
			return v, nil
		}
		cur = v
	}
}

// subHub is one tenant's subscription table.
type subHub struct {
	mu   sync.Mutex
	next int64
	subs map[int64]*subscription
}

func newSubHub() *subHub {
	return &subHub{subs: make(map[int64]*subscription)}
}

// add registers a subscription starting from generation since.
func (h *subHub) add(table, rawPrefix string, prefix []tuple.Value, since int64) *subscription {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.next++
	s := &subscription{
		ID:       h.next,
		Table:    table,
		Prefix:   rawPrefix,
		prefix:   prefix,
		lastSeen: since,
	}
	if len(prefix) > 0 {
		s.filtered = true
		s.bucket = core.PrefixBucket(prefix[0])
	}
	h.subs[s.ID] = s
	return s
}

func (h *subHub) get(id int64) *subscription {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.subs[id]
}

func (h *subHub) remove(id int64) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.subs[id]; !ok {
		return false
	}
	delete(h.subs, id)
	return true
}

func (h *subHub) count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// since returns the generation a poll should wait past: the explicit
// sinceParam when given, else the subscription's acknowledged position.
func (s *subscription) since(sinceParam string) (int64, error) {
	if sinceParam != "" {
		var v int64
		if _, err := fmt.Sscanf(sinceParam, "%d", &v); err != nil {
			return 0, fmt.Errorf("serve: bad since %q", sinceParam)
		}
		return v, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastSeen, nil
}

// ack records that the client has seen generation v (monotonic).
func (s *subscription) ack(v int64) {
	s.mu.Lock()
	if v > s.lastSeen {
		s.lastSeen = v
	}
	s.mu.Unlock()
}
