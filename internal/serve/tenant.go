package serve

import (
	"context"
	"fmt"
	"regexp"
	"sort"
	"sync"
	"time"

	"github.com/jstar-lang/jstar/internal/core"
	"github.com/jstar-lang/jstar/internal/exec"
	"github.com/jstar-lang/jstar/internal/gamma"
	"github.com/jstar-lang/jstar/internal/lang"
	"github.com/jstar-lang/jstar/internal/wal"
)

// TenantConfig is the JSON body of a create-tenant request: a named JStar
// program plus the per-tenant engine options and quotas. Source is
// compiled server-side, so a tenant is fully described by one POST.
type TenantConfig struct {
	Name   string `json:"name"`
	Source string `json:"source"`
	// Strategy is an exec strategy name ("auto", "seq", "forkjoin",
	// "pipelined"); empty means auto.
	Strategy string `json:"strategy,omitempty"`
	// StorePlan maps table names to gamma kind specs ("hash:2",
	// "columnar", ...), overriding the planner's defaults.
	StorePlan map[string]string `json:"store_plan,omitempty"`
	// IngressShards and ReplanEvery pass through to core.Options.
	IngressShards int `json:"ingress_shards,omitempty"`
	ReplanEvery   int `json:"replan_every,omitempty"`
	// MaxInflightPuts caps concurrent ingestion requests for this tenant
	// (further puts get 429); 0 uses the server default. Since admission is
	// primarily ring-driven (AdmitPendingFraction), this is the fallback
	// cap bounding request-handler goroutines rather than ring pressure.
	MaxInflightPuts int `json:"max_inflight_puts,omitempty"`
	// AdmitPendingFraction is the ingress-backpressure admission threshold:
	// a put is rejected with 429 when the session's pending (published but
	// unabsorbed) ingress events exceed this fraction of the ring capacity,
	// so a flooding client is shed *before* its requests block on a full
	// ring lane. 0 uses the server default; negative disables the ring
	// check, leaving only the inflight semaphore.
	AdmitPendingFraction float64 `json:"admit_pending_fraction,omitempty"`
	// Durability, when present, makes the tenant durable: ingested tuples
	// are journaled to a write-ahead log under WalDir, Gamma is
	// checkpointed on the configured cadence, and creating a tenant over
	// an existing WAL directory recovers its state before serving.
	Durability *DurabilityConfig `json:"durability,omitempty"`
}

// DurabilityConfig is the JSON form of core.DurabilityOptions for one
// tenant. The WAL's segment identity is the tenant name, so a directory
// cannot silently be re-attached to a different tenant.
type DurabilityConfig struct {
	// WalDir is the log directory (required).
	WalDir string `json:"wal_dir"`
	// GroupCommitMillis / GroupCommitBytes tune the group commit: a
	// pending group is fsynced when it reaches the byte threshold or the
	// deadline, whichever first. Zero means the engine defaults
	// (2ms / 64 KiB).
	GroupCommitMillis int `json:"group_commit_millis,omitempty"`
	GroupCommitBytes  int `json:"group_commit_bytes,omitempty"`
	// CheckpointEvery writes a Gamma checkpoint every N quiescent
	// boundaries that absorbed new input; 0 means checkpoint only on
	// demand (POST /v1/tenants/{name}/checkpoint).
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
	// SegmentBytes is the WAL segment rotation threshold (0 = 4 MiB).
	SegmentBytes int64 `json:"segment_bytes,omitempty"`
}

var tenantNameRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$`)

// Tenant is one hosted program: a compiled Program, its live Session, the
// ingestion quota semaphore, and the tenant's subscription hub.
type Tenant struct {
	Name    string
	Config  TenantConfig
	Prog    *core.Program
	Session *core.Session

	inflight  chan struct{} // fallback ingestion cap; acquire per put request
	admitFrac float64       // ring-backpressure admission threshold (<0 disables)
	subs      *subHub
}

// admitPut decides whether one ingestion request may proceed, without
// blocking. Admission is driven by ingress-ring backpressure: when the
// session's unabsorbed backlog exceeds admitFrac of the ring capacity the
// put is shed here, with an error naming the pressure, instead of letting
// the request block on a full ring lane deep inside PutBatch. The inflight
// semaphore remains as a fallback cap on concurrent put handlers. Release
// with releasePut on nil error.
func (t *Tenant) admitPut() error {
	if t.admitFrac >= 0 {
		if pending, capacity := t.Session.IngressBacklog(); float64(pending) > t.admitFrac*float64(capacity) {
			return fmt.Errorf("serve: tenant %s ingress backlog %d exceeds %.0f%% of ring capacity %d",
				t.Name, pending, t.admitFrac*100, capacity)
		}
	}
	select {
	case t.inflight <- struct{}{}:
		return nil
	default:
		return fmt.Errorf("serve: tenant %s ingestion quota exhausted", t.Name)
	}
}

func (t *Tenant) releasePut() { <-t.inflight }

// registry is the multi-tenant session table: name → Tenant, guarded by a
// mutex (creation compiles a program, but the critical section only
// reserves the name — compilation and session start run outside the lock).
type registry struct {
	mu         sync.Mutex
	tenants    map[string]*Tenant
	maxTenants int
	// walFS, when non-nil, supplies the WAL filesystem for durable
	// tenants whose config names no wal_dir — the crash-fault injection
	// hook (Config.TestWALFS). Production configs always name a dir.
	walFS func(tenant string) wal.FS
}

func newRegistry(maxTenants int, walFS func(string) wal.FS) *registry {
	return &registry{tenants: make(map[string]*Tenant), maxTenants: maxTenants, walFS: walFS}
}

// create compiles cfg.Source, starts a session with the tenant's options,
// and registers the tenant. The name is reserved before compiling so two
// concurrent creates of the same name cannot both win.
func (r *registry) create(ctx context.Context, cfg TenantConfig, defaultInflight int, defaultAdmit float64) (*Tenant, error) {
	if !tenantNameRE.MatchString(cfg.Name) {
		return nil, fmt.Errorf("serve: bad tenant name %q (want %s)", cfg.Name, tenantNameRE)
	}
	r.mu.Lock()
	if _, dup := r.tenants[cfg.Name]; dup {
		r.mu.Unlock()
		return nil, errTenantExists
	}
	if r.maxTenants > 0 && len(r.tenants) >= r.maxTenants {
		r.mu.Unlock()
		return nil, errTenantQuota
	}
	r.tenants[cfg.Name] = nil // reserve the name while compiling
	r.mu.Unlock()

	t, err := r.buildTenant(ctx, cfg, defaultInflight, defaultAdmit)
	r.mu.Lock()
	if err != nil {
		delete(r.tenants, cfg.Name)
	} else {
		r.tenants[cfg.Name] = t
	}
	r.mu.Unlock()
	return t, err
}

func (r *registry) buildTenant(ctx context.Context, cfg TenantConfig, defaultInflight int, defaultAdmit float64) (*Tenant, error) {
	prog, err := lang.CompileSource(cfg.Source)
	if err != nil {
		return nil, fmt.Errorf("serve: compile tenant %s: %w", cfg.Name, err)
	}
	opts := core.Options{
		Quiet:         true,
		IngressShards: cfg.IngressShards,
		ReplanEvery:   cfg.ReplanEvery,
	}
	if cfg.Strategy != "" {
		st, err := exec.ParseStrategy(cfg.Strategy)
		if err != nil {
			return nil, fmt.Errorf("serve: tenant %s: %w", cfg.Name, err)
		}
		opts.Strategy = st
	}
	if len(cfg.StorePlan) > 0 {
		opts.StorePlan = make(gamma.StorePlan, len(cfg.StorePlan))
		for k, v := range cfg.StorePlan {
			opts.StorePlan[k] = v
		}
	}
	if d := cfg.Durability; d != nil {
		var fs wal.FS
		if d.WalDir == "" && r.walFS != nil {
			fs = r.walFS(cfg.Name)
		}
		if d.WalDir == "" && fs == nil {
			return nil, fmt.Errorf("serve: tenant %s: durability.wal_dir is required", cfg.Name)
		}
		opts.Durability = &core.DurabilityOptions{
			Dir:             d.WalDir,
			FS:              fs,
			Identity:        cfg.Name,
			GroupBytes:      d.GroupCommitBytes,
			GroupInterval:   time.Duration(d.GroupCommitMillis) * time.Millisecond,
			SegmentBytes:    d.SegmentBytes,
			CheckpointEvery: d.CheckpointEvery,
		}
	}
	sess, err := prog.Start(ctx, opts)
	if err != nil {
		return nil, fmt.Errorf("serve: start tenant %s: %w", cfg.Name, err)
	}
	inflight := cfg.MaxInflightPuts
	if inflight <= 0 {
		inflight = defaultInflight
	}
	admit := cfg.AdmitPendingFraction
	if admit == 0 {
		admit = defaultAdmit
	}
	return &Tenant{
		Name:      cfg.Name,
		Config:    cfg,
		Prog:      prog,
		Session:   sess,
		inflight:  make(chan struct{}, inflight),
		admitFrac: admit,
		subs:      newSubHub(),
	}, nil
}

// get returns the named tenant, or nil if absent or still being created.
func (r *registry) get(name string) *Tenant {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tenants[name]
}

// remove unregisters and closes the named tenant, reporting whether it
// existed.
func (r *registry) remove(name string) bool {
	r.mu.Lock()
	t := r.tenants[name]
	if t != nil {
		delete(r.tenants, name)
	}
	r.mu.Unlock()
	if t == nil {
		return false
	}
	t.Session.Close()
	return true
}

// list returns the live tenants sorted by name.
func (r *registry) list() []*Tenant {
	r.mu.Lock()
	out := make([]*Tenant, 0, len(r.tenants))
	for _, t := range r.tenants {
		if t != nil {
			out = append(out, t)
		}
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func (r *registry) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.tenants)
}

// closeAll closes every tenant session (server shutdown).
func (r *registry) closeAll() {
	for _, t := range r.list() {
		t.Session.Close()
	}
}
