package serve

import (
	"context"
	"testing"

	"github.com/jstar-lang/jstar/internal/core"
	"github.com/jstar-lang/jstar/internal/tuple"
)

// TestAdmitPutRingBackpressure pins the admission-control contract: a put
// is shed as soon as the session's unabsorbed ingress backlog crosses the
// tenant's pending fraction, admits again once the ring drains, and the
// inflight semaphore survives as the fallback cap (admitFrac < 0).
func TestAdmitPutRingBackpressure(t *testing.T) {
	p := core.NewProgram()
	ev := p.Table("Event", []tuple.Column{{Name: "n", Kind: tuple.KindInt}},
		[]tuple.OrderEntry{tuple.Lit("Event"), tuple.Seq("n")})
	entered := make(chan struct{}, 1)
	block := make(chan struct{})
	p.Rule("block", ev, func(c *core.Ctx, tp *tuple.Tuple) {
		if tp.Int("n") == 0 {
			entered <- struct{}{}
			<-block
		}
	})
	sess, err := p.Start(context.Background(), core.Options{Sequential: true, Quiet: true, IngressRing: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	ten := &Tenant{Name: "t", Session: sess, inflight: make(chan struct{}, 4), admitFrac: 0.1}
	if err := ten.admitPut(); err != nil {
		t.Fatalf("empty ring must admit: %v", err)
	}
	ten.releasePut()
	// Park the coordinator inside a rule firing, then pile events into the
	// ring behind it: they stay published-but-unabsorbed.
	if err := sess.Put(tuple.New(ev, tuple.Int(0))); err != nil {
		t.Fatal(err)
	}
	<-entered
	for i := int64(1); i <= 4; i++ {
		if err := sess.Put(tuple.New(ev, tuple.Int(i))); err != nil {
			t.Fatal(err)
		}
	}
	if pending, capacity := sess.IngressBacklog(); pending < 4 || capacity != 16 {
		t.Fatalf("backlog = (%d, %d), want (>=4, 16)", pending, capacity)
	}
	if err := ten.admitPut(); err == nil {
		ten.releasePut()
		t.Fatal("admitPut admitted a put over a backlogged ring")
	}
	close(block)
	if err := sess.Quiesce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := ten.admitPut(); err != nil {
		t.Fatalf("drained ring must admit again: %v", err)
	}
	ten.releasePut()
	// admitFrac < 0 disables the ring check; the semaphore still caps.
	ten2 := &Tenant{Name: "t2", Session: sess, inflight: make(chan struct{}, 1), admitFrac: -1}
	if err := ten2.admitPut(); err != nil {
		t.Fatal(err)
	}
	if err := ten2.admitPut(); err == nil {
		t.Fatal("semaphore fallback must cap inflight puts")
	}
	ten2.releasePut()
}
