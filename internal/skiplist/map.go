package skiplist

// Entry is a key/value pair stored in a Map.
type Entry[K, V any] struct {
	Key K
	Val V
}

// Map is a concurrent sorted map built on List — the analogue of Java's
// ConcurrentSkipListMap<K,V> used for the Seq levels of the parallel Delta
// tree. Values are set once at key creation (GetOrCreate); JStar never
// overwrites a subtree, it only inserts into it.
type Map[K, V any] struct {
	list *List[Entry[K, V]]
}

// NewMap returns an empty concurrent map ordered by cmp over keys.
func NewMap[K, V any](cmp func(a, b K) int) *Map[K, V] {
	return &Map[K, V]{
		list: New(func(a, b Entry[K, V]) int { return cmp(a.Key, b.Key) }),
	}
}

// Len returns the number of entries.
func (m *Map[K, V]) Len() int { return m.list.Len() }

// GetOrCreate returns the value for key, invoking mk to create it if absent.
// Exactly one value survives per key even under races; losers' values are
// discarded (mk must be side-effect free until published).
func (m *Map[K, V]) GetOrCreate(key K, mk func() V) V {
	var zero V
	if e, ok := m.list.GetEqual(Entry[K, V]{Key: key, Val: zero}); ok {
		return e.Val
	}
	e, _ := m.list.GetOrInsert(Entry[K, V]{Key: key, Val: mk()})
	return e.Val
}

// Get returns the value for key, if present.
func (m *Map[K, V]) Get(key K) (V, bool) {
	var zero V
	e, ok := m.list.GetEqual(Entry[K, V]{Key: key, Val: zero})
	return e.Val, ok
}

// Min returns the entry with the smallest key.
func (m *Map[K, V]) Min() (K, V, bool) {
	e, ok := m.list.Min()
	return e.Key, e.Val, ok
}

// Delete removes the entry for key; reports whether removed.
func (m *Map[K, V]) Delete(key K) bool {
	var zero V
	return m.list.Delete(Entry[K, V]{Key: key, Val: zero})
}

// Ascend visits entries in ascending key order until fn returns false.
func (m *Map[K, V]) Ascend(fn func(K, V) bool) {
	m.list.Ascend(func(e Entry[K, V]) bool { return fn(e.Key, e.Val) })
}
