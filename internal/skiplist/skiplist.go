// Package skiplist implements a concurrent ordered set and map — the Go
// analogue of Java's ConcurrentSkipListSet/Map that JStar's parallel code
// generator uses for the Delta tree and Gamma tables (paper §5).
//
// The implementation follows the lazy optimistic skip list of Herlihy, Lev,
// Luchangco and Shavit ("A Simple Optimistic Skiplist Algorithm"): wait-free
// containment checks, and insert/delete that lock only the predecessor nodes
// of the affected element. Reads (Contains, Ascend, Min) never block.
package skiplist

import (
	"runtime"
	"sync"
	"sync/atomic"
)

const maxLevel = 32

type node[T any] struct {
	elem        T
	next        []atomic.Pointer[node[T]]
	mu          sync.Mutex
	marked      atomic.Bool
	fullyLinked atomic.Bool
	topLayer    int
	sentinel    bool
}

func newNode[T any](elem T, topLayer int, sentinel bool) *node[T] {
	return &node[T]{
		elem:     elem,
		next:     make([]atomic.Pointer[node[T]], topLayer+1),
		topLayer: topLayer,
		sentinel: sentinel,
	}
}

// List is a concurrent sorted set of T ordered by a comparator.
type List[T any] struct {
	head, tail *node[T]
	cmp        func(a, b T) int
	size       atomic.Int64
	rngState   atomic.Uint64
}

// New returns an empty concurrent set ordered by cmp.
func New[T any](cmp func(a, b T) int) *List[T] {
	var zero T
	l := &List[T]{cmp: cmp}
	l.head = newNode(zero, maxLevel-1, true)
	l.tail = newNode(zero, maxLevel-1, true)
	for i := 0; i < maxLevel; i++ {
		l.head.next[i].Store(l.tail)
	}
	l.head.fullyLinked.Store(true)
	l.tail.fullyLinked.Store(true)
	l.rngState.Store(0x9e3779b97f4a7c15)
	return l
}

// Len returns the current element count (approximate under concurrency).
func (l *List[T]) Len() int { return int(l.size.Load()) }

// randomLevel draws a geometric(1/2) level using a shared splitmix64 state.
// Contention on the counter is negligible next to node allocation.
func (l *List[T]) randomLevel() int {
	z := l.rngState.Add(0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	lvl := 0
	for z&1 == 1 && lvl < maxLevel-1 {
		lvl++
		z >>= 1
	}
	return lvl
}

// find locates probe, filling preds/succs per layer; returns the highest
// layer at which an equal element was found, or -1.
func (l *List[T]) find(probe T, preds, succs *[maxLevel]*node[T]) int {
	lFound := -1
	pred := l.head
	for layer := maxLevel - 1; layer >= 0; layer-- {
		curr := pred.next[layer].Load()
		for curr != l.tail && l.cmp(curr.elem, probe) < 0 {
			pred = curr
			curr = pred.next[layer].Load()
		}
		if lFound == -1 && curr != l.tail && l.cmp(curr.elem, probe) == 0 {
			lFound = layer
		}
		preds[layer] = pred
		succs[layer] = curr
	}
	return lFound
}

func unlockPreds[T any](preds *[maxLevel]*node[T], highestLocked int) {
	var prev *node[T]
	for layer := 0; layer <= highestLocked; layer++ {
		if preds[layer] != prev {
			preds[layer].mu.Unlock()
			prev = preds[layer]
		}
	}
}

// Insert adds elem if no equal element is present; reports whether added.
func (l *List[T]) Insert(elem T) bool {
	_, added := l.GetOrInsert(elem)
	return added
}

// GetOrInsert adds elem if absent. It returns the element now in the set
// (the existing one if already present) and whether an insert happened.
// This is the primitive the Delta tree uses to share interior nodes.
func (l *List[T]) GetOrInsert(elem T) (T, bool) {
	topLayer := l.randomLevel()
	var preds, succs [maxLevel]*node[T]
	for {
		if lFound := l.find(elem, &preds, &succs); lFound != -1 {
			found := succs[lFound]
			if !found.marked.Load() {
				for !found.fullyLinked.Load() {
					runtime.Gosched()
				}
				return found.elem, false
			}
			// Found but being deleted: retry until unlinked.
			runtime.Gosched()
			continue
		}
		highestLocked := -1
		var prevPred *node[T]
		valid := true
		for layer := 0; valid && layer <= topLayer; layer++ {
			pred, succ := preds[layer], succs[layer]
			if pred != prevPred {
				pred.mu.Lock()
				highestLocked = layer
				prevPred = pred
			}
			valid = !pred.marked.Load() && !succ.marked.Load() && pred.next[layer].Load() == succ
		}
		if !valid {
			unlockPreds(&preds, highestLocked)
			continue
		}
		n := newNode(elem, topLayer, false)
		for layer := 0; layer <= topLayer; layer++ {
			n.next[layer].Store(succs[layer])
		}
		for layer := 0; layer <= topLayer; layer++ {
			preds[layer].next[layer].Store(n)
		}
		n.fullyLinked.Store(true)
		unlockPreds(&preds, highestLocked)
		l.size.Add(1)
		return elem, true
	}
}

// Contains reports whether an element equal to probe is present. Wait-free.
func (l *List[T]) Contains(probe T) bool {
	_, ok := l.GetEqual(probe)
	return ok
}

// GetEqual returns the stored element equal to probe, if present. Wait-free.
func (l *List[T]) GetEqual(probe T) (T, bool) {
	pred := l.head
	for layer := maxLevel - 1; layer >= 0; layer-- {
		curr := pred.next[layer].Load()
		for curr != l.tail && l.cmp(curr.elem, probe) < 0 {
			pred = curr
			curr = pred.next[layer].Load()
		}
		if curr != l.tail && l.cmp(curr.elem, probe) == 0 {
			if curr.fullyLinked.Load() && !curr.marked.Load() {
				return curr.elem, true
			}
			var zero T
			return zero, false
		}
	}
	var zero T
	return zero, false
}

// Delete removes the element equal to probe; reports whether removed.
func (l *List[T]) Delete(probe T) bool {
	var victim *node[T]
	isMarked := false
	topLayer := -1
	var preds, succs [maxLevel]*node[T]
	for {
		lFound := l.find(probe, &preds, &succs)
		if lFound != -1 {
			victim = succs[lFound]
		}
		if !isMarked {
			if lFound == -1 || !victim.fullyLinked.Load() ||
				victim.topLayer != lFound || victim.marked.Load() {
				return false
			}
			topLayer = victim.topLayer
			victim.mu.Lock()
			if victim.marked.Load() {
				victim.mu.Unlock()
				return false
			}
			victim.marked.Store(true)
			isMarked = true
		}
		highestLocked := -1
		var prevPred *node[T]
		valid := true
		for layer := 0; valid && layer <= topLayer; layer++ {
			pred := preds[layer]
			if pred != prevPred {
				pred.mu.Lock()
				highestLocked = layer
				prevPred = pred
			}
			valid = !pred.marked.Load() && pred.next[layer].Load() == victim
		}
		if !valid {
			unlockPreds(&preds, highestLocked)
			continue
		}
		for layer := topLayer; layer >= 0; layer-- {
			preds[layer].next[layer].Store(victim.next[layer].Load())
		}
		victim.mu.Unlock()
		unlockPreds(&preds, highestLocked)
		l.size.Add(-1)
		return true
	}
}

// Min returns the smallest element. Wait-free; under concurrent inserts the
// result is a linearisable snapshot of some smallest element.
func (l *List[T]) Min() (T, bool) {
	for curr := l.head.next[0].Load(); curr != l.tail; curr = curr.next[0].Load() {
		if curr.fullyLinked.Load() && !curr.marked.Load() {
			return curr.elem, true
		}
	}
	var zero T
	return zero, false
}

// DeleteMin removes and returns the smallest element.
func (l *List[T]) DeleteMin() (T, bool) {
	for {
		min, ok := l.Min()
		if !ok {
			var zero T
			return zero, false
		}
		if l.Delete(min) {
			return min, true
		}
		// Someone else deleted it first; retry.
	}
}

// Ascend calls fn in ascending order until it returns false. The traversal
// is weakly consistent (like Java's concurrent collections): elements
// inserted behind the cursor during traversal are not revisited.
func (l *List[T]) Ascend(fn func(T) bool) {
	for curr := l.head.next[0].Load(); curr != l.tail; curr = curr.next[0].Load() {
		if !curr.fullyLinked.Load() || curr.marked.Load() {
			continue
		}
		if !fn(curr.elem) {
			return
		}
	}
}

// AscendFrom calls fn on elements >= lo in ascending order until fn returns
// false.
func (l *List[T]) AscendFrom(lo T, fn func(T) bool) {
	pred := l.head
	for layer := maxLevel - 1; layer >= 0; layer-- {
		curr := pred.next[layer].Load()
		for curr != l.tail && l.cmp(curr.elem, lo) < 0 {
			pred = curr
			curr = pred.next[layer].Load()
		}
	}
	for curr := pred.next[0].Load(); curr != l.tail; curr = curr.next[0].Load() {
		if !curr.fullyLinked.Load() || curr.marked.Load() {
			continue
		}
		if l.cmp(curr.elem, lo) < 0 {
			continue
		}
		if !fn(curr.elem) {
			return
		}
	}
}

// Clear removes all elements. Not atomic with respect to concurrent writers;
// callers quiesce first (the engine clears only between runs).
func (l *List[T]) Clear() {
	for i := 0; i < maxLevel; i++ {
		l.head.next[i].Store(l.tail)
	}
	l.size.Store(0)
}
